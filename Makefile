# Standard developer entry points. `make verify` is the gate a change
# must pass before review: build, vet, the full test suite, the race
# detector over the whole module (short mode keeps the race pass fast),
# and the docs checks (gofmt drift + relative-link rot in *.md).

GO ?= go

.PHONY: build vet test race bench docs-check verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench . -benchtime 1x -run ^$$ .

# docs-check fails on gofmt drift, vet findings, or broken relative
# links in the repository's Markdown (see docs_link_test.go).
docs-check:
	@drift="$$(gofmt -l .)"; if [ -n "$$drift" ]; then \
		echo "gofmt drift in:"; echo "$$drift"; exit 1; fi
	$(GO) vet ./...
	$(GO) test -run TestDocsLinks .

verify: build vet test race docs-check
