# Standard developer entry points. `make verify` is the gate a change
# must pass before review: build, vet, the full test suite, the race
# detector over the whole module (short mode keeps the race pass fast),
# a fuzz smoke pass over the untrusted-input parsers, and the docs
# checks (gofmt drift + relative-link rot in *.md).

GO ?= go
FUZZTIME ?= 10s

.PHONY: build vet test race bench fuzz-smoke docs-check verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench . -benchtime 1x -run ^$$ .

# fuzz-smoke runs each roadnet fuzz target for FUZZTIME (default 10s).
# Go allows one -fuzz target per invocation, so the targets run in
# sequence; seeds come from internal/roadnet/testdata plus the inline
# f.Add corpus. A crasher fails the run and is written to
# internal/roadnet/testdata/fuzz/ for triage.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzReadJSON$$' -fuzztime $(FUZZTIME) ./internal/roadnet
	$(GO) test -run '^$$' -fuzz '^FuzzReadGeoJSON$$' -fuzztime $(FUZZTIME) ./internal/roadnet
	$(GO) test -run '^$$' -fuzz '^FuzzReadDensitiesCSV$$' -fuzztime $(FUZZTIME) ./internal/roadnet

# docs-check fails on gofmt drift, vet findings, or broken relative
# links in the repository's Markdown (see docs_link_test.go).
docs-check:
	@drift="$$(gofmt -l .)"; if [ -n "$$drift" ]; then \
		echo "gofmt drift in:"; echo "$$drift"; exit 1; fi
	$(GO) vet ./...
	$(GO) test -run TestDocsLinks .

verify: build vet test race fuzz-smoke docs-check
