# Standard developer entry points. `make verify` is the gate a change
# must pass before review: build, vet, the full test suite, and the race
# detector over the whole module (short mode keeps the race pass fast).

GO ?= go

.PHONY: build vet test race bench verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench . -benchtime 1x -run ^$$ .

verify: build vet test race
