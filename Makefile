# Standard developer entry points. `make verify` is the gate a change
# must pass before review: build, vet, the full test suite, the race
# detector over the whole module (short mode keeps the race pass fast),
# a fuzz smoke pass over the untrusted-input parsers, a benchmark-harness
# smoke check (one short benchmark through cmd/benchdiff), a regression
# diff of the anchor benchmarks against the latest BENCH_<n>.json
# (bench-check), the XL-tier multilevel smoke (scale-smoke, see
# docs/SCALING.md), the job-durability chaos suite (chaos-smoke), the
# sharded-serving integration suite (cluster-smoke, docs/DISTRIBUTED.md),
# and the docs checks (gofmt drift + relative-link rot in *.md).

GO ?= go
FUZZTIME ?= 10s
BENCHTIME ?= 1x
BENCH ?= .
# bench-check knobs: the anchor subset it runs and the regression
# thresholds it tolerates. Single-run 1x numbers are noisy, so the
# defaults are deliberately loose; tighten them for interleaved runs on
# a quiet machine.
BENCH_CHECK ?= ^(BenchmarkFig7|BenchmarkTable3|BenchmarkSweepDeep|BenchmarkPartitionCached|BenchmarkIncrementalDelta|BenchmarkIncrementalFullRecompute)$$
BENCH_MAX_TIME ?= 0.50
BENCH_MAX_BYTES ?= 0.25
# The sweep-aware spectral core's performance gates. BENCH_TABLE3_GATE is
# a *negative* time threshold against the pre-spectral-core anchor
# (BENCH_TABLE3_ANCHOR): the diff fails unless BenchmarkTable3 is at
# least 40% faster than it recorded. BENCH_SWEEP_RATIO is the intra-run
# warm-vs-cold invariant on BenchmarkSweepDeep: the cold per-k sweep
# must be at least this many times slower than the shared warm-widened
# sweep (see docs/PERFORMANCE.md and docs/NUMERICS.md § Warm starts).
BENCH_TABLE3_ANCHOR ?= BENCH_4.json
BENCH_TABLE3_GATE ?= -0.40
BENCH_SWEEP_RATIO ?= 1.5

.PHONY: build vet test race bench bench-smoke bench-check bench-scale scale-smoke fuzz-smoke sse-smoke chaos-smoke cluster-smoke docs-check numerics-check verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# bench runs the paper-protocol benchmark suite with allocation stats and
# snapshots the results to the next free BENCH_<n>.json via cmd/benchdiff.
# Compare two snapshots with:
#   go run ./cmd/benchdiff BENCH_1.json BENCH_2.json
# See docs/PERFORMANCE.md for the workflow and thresholds.
bench:
	@n=1; while [ -e BENCH_$$n.json ]; do n=$$((n+1)); done; \
	$(GO) test -bench $(BENCH) -benchtime $(BENCHTIME) -benchmem -run '^$$' . \
		| tee /dev/stderr \
		| $(GO) run ./cmd/benchdiff -snapshot -o BENCH_$$n.json \
		&& echo "wrote BENCH_$$n.json"

# bench-smoke is the verify-gate check for the benchmark harness: one
# short benchmark runs with -benchmem, its text output round-trips
# through benchdiff's snapshot parser, and the snapshot self-compares
# cleanly. It proves the harness end to end without the cost of the
# full suite.
# bench-scale snapshots the scale-tier anchors (BenchmarkScale: S/M/L,
# time + peakMB, docs/SCALING.md) alongside the regular anchor subset to
# the next free BENCH_<n>.json, so the scaling table has a pinned
# history just like the paper-protocol benchmarks.
bench-scale:
	@n=1; while [ -e BENCH_$$n.json ]; do n=$$((n+1)); done; \
	tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) test -bench '$(BENCH_CHECK)' -benchtime $(BENCHTIME) -benchmem -run '^$$' . > "$$tmp/bench.txt" && \
	$(GO) test -bench '^BenchmarkScale$$' -benchtime $(BENCHTIME) -benchmem -run '^$$' . >> "$$tmp/bench.txt" && \
	$(GO) run ./cmd/benchdiff -snapshot -o BENCH_$$n.json "$$tmp/bench.txt" \
		&& echo "wrote BENCH_$$n.json"

# scale-smoke drives the XL tier (>= 1e6 directed segments) through the
# auto multilevel path once, end to end (TestScaleSmokeXL). ~15-60s.
scale-smoke:
	ROADPART_SCALE_SMOKE=1 $(GO) test -run '^TestScaleSmokeXL$$' -v -short -timeout 30m .

bench-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) test -bench '^BenchmarkEigenDense300$$' -benchtime 1x -benchmem -run '^$$' . > "$$tmp/bench.txt" && \
	$(GO) run ./cmd/benchdiff -snapshot -o "$$tmp/a.json" "$$tmp/bench.txt" && \
	$(GO) run ./cmd/benchdiff "$$tmp/a.json" "$$tmp/a.json" >/dev/null && \
	echo "bench-smoke: snapshot + self-compare OK"

# bench-check guards the anchor benchmarks against regressions: it runs
# the BENCH_CHECK subset once, snapshots it, and diffs against the most
# recent checked-in BENCH_<n>.json via cmd/benchdiff. Benchmarks present
# in only one side (suite growth) are reported but never failed.
# Override the thresholds per invocation, e.g.
#   make bench-check BENCH_MAX_TIME=0.10 BENCHTIME=5x
# bench-check also runs the BenchmarkScale/tier=L anchor (the multilevel
# path at >= 1e5 dual nodes, docs/SCALING.md) as a second `go test`
# invocation appended to the same results file: `go test` splits the
# -bench pattern on "/", so folding a sub-benchmark anchor into
# BENCH_CHECK's alternation would wrongly filter SweepDeep's cold/warm
# sub-benchmarks.
bench-check:
	@latest=$$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -1); \
	if [ -z "$$latest" ]; then echo "bench-check: no BENCH_<n>.json snapshot found"; exit 1; fi; \
	tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) test -bench '$(BENCH_CHECK)' -benchtime $(BENCHTIME) -benchmem -run '^$$' . > "$$tmp/bench.txt" && \
	$(GO) test -bench '^BenchmarkScale$$/^tier=L$$' -benchtime $(BENCHTIME) -benchmem -run '^$$' . >> "$$tmp/bench.txt" && \
	$(GO) run ./cmd/benchdiff -snapshot -o "$$tmp/new.json" "$$tmp/bench.txt" && \
	echo "bench-check: comparing against $$latest" && \
	$(GO) run ./cmd/benchdiff -max-time-regress $(BENCH_MAX_TIME) -max-bytes-regress $(BENCH_MAX_BYTES) \
		"$$latest" "$$tmp/new.json" && \
	echo "bench-check: Table 3 gate vs $(BENCH_TABLE3_ANCHOR) (>= 40% faster)" && \
	$(GO) run ./cmd/benchdiff -only '^BenchmarkTable3$$' \
		-max-time-regress $(BENCH_TABLE3_GATE) -max-bytes-regress 10 \
		"$(BENCH_TABLE3_ANCHOR)" "$$tmp/new.json" && \
	echo "bench-check: SweepDeep warm-vs-cold ratio (>= $(BENCH_SWEEP_RATIO)x)" && \
	$(GO) run ./cmd/benchdiff \
		-min-ratio 'BenchmarkSweepDeep/cold,BenchmarkSweepDeep/warm,$(BENCH_SWEEP_RATIO)' \
		"$$tmp/new.json"

# fuzz-smoke runs each roadnet fuzz target for FUZZTIME (default 10s).
# Go allows one -fuzz target per invocation, so the targets run in
# sequence; seeds come from internal/roadnet/testdata plus the inline
# f.Add corpus. A crasher fails the run and is written to
# internal/roadnet/testdata/fuzz/ for triage.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzReadJSON$$' -fuzztime $(FUZZTIME) ./internal/roadnet
	$(GO) test -run '^$$' -fuzz '^FuzzReadGeoJSON$$' -fuzztime $(FUZZTIME) ./internal/roadnet
	$(GO) test -run '^$$' -fuzz '^FuzzReadDensitiesCSV$$' -fuzztime $(FUZZTIME) ./internal/roadnet

# sse-smoke exercises the streaming daemon end to end under the race
# detector: POST /v1/densities establishes a stream and steps it by a
# sparse delta, and GET /v1/watch delivers the repartition events over
# SSE (replay on connect plus a live event), then disconnects cleanly.
sse-smoke:
	$(GO) test -race -run '^(TestDensitiesStream|TestWatchStreamsEvents|TestWatchDisconnectReleasesSubscriber)$$' ./internal/server

# cluster-smoke runs the sharded multi-daemon integration suite under
# the race detector: 3 in-process daemons over real listeners, pinning
# key affinity, byte-identical cross-shard responses, remote-hit cache
# semantics, fingerprint-routed job polls, unbuffered SSE through the
# forwarding hop, owner-death failover/rejoin and the rendezvous remap
# bound (see internal/server/cluster_test.go and docs/DISTRIBUTED.md).
cluster-smoke:
	$(GO) test -race -short -run '^(TestCluster|TestLatEWMA)' ./internal/server

# chaos-smoke runs the job-durability fault-injection suite under the
# race detector: the journal is killed between every pair of records
# and the manager restarted, asserting no acknowledged job is lost and
# none runs to completion twice; plus the unjournaled-submission and
# journal-failure-liveness invariants (see internal/jobs/chaos_test.go
# and docs/ARCHITECTURE.md § Jobs dataflow).
chaos-smoke:
	$(GO) test -race -short -run '^TestChaos' ./internal/jobs

# numerics-check pins docs/NUMERICS.md's golden-hash table of record to
# the hashes actually asserted by the test suite: the table in the doc
# and the map in internal/core/ctx_test.go must agree bit for bit, so
# neither can drift without the other (and the doc's re-pinning policy)
# being updated in the same change.
numerics-check:
	$(GO) test -run '^TestNumericsGoldenTable$$' .

# docs-check fails on gofmt drift, vet findings, or broken relative
# links in the repository's Markdown (see docs_link_test.go).
docs-check:
	@drift="$$(gofmt -l .)"; if [ -n "$$drift" ]; then \
		echo "gofmt drift in:"; echo "$$drift"; exit 1; fi
	$(GO) vet ./...
	$(GO) test -run TestDocsLinks .

verify: build vet test race fuzz-smoke bench-smoke bench-check scale-smoke sse-smoke chaos-smoke cluster-smoke docs-check numerics-check
