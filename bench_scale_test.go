// Scale-tier benchmarks: how partitioning cost grows from city-sized
// networks into the million-segment regime the multilevel path exists
// for (docs/SCALING.md). Each op is a full cold pipeline — dual graph,
// coarsening when it engages, spectral cut, projection, refinement —
// and each sub-benchmark reports the peak heap it observed as a peakMB
// metric, so BENCH_<n>.json snapshots pin memory alongside time.
package roadpart

import (
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"roadpart/internal/core"
	"roadpart/internal/gen"
	"roadpart/internal/roadnet"
	"roadpart/internal/traffic"
)

// scaleNets memoizes the tier fixtures process-wide: generating the L
// network once costs seconds and must not be attributed to the first
// benchmark iteration that needs it.
var scaleNets = struct {
	sync.Mutex
	m map[gen.Tier]*roadnet.Network
}{m: map[gen.Tier]*roadnet.Network{}}

func scaleNet(tb testing.TB, tier gen.Tier) *roadnet.Network {
	tb.Helper()
	scaleNets.Lock()
	defer scaleNets.Unlock()
	if net, ok := scaleNets.m[tier]; ok {
		return net
	}
	net, err := gen.ScaleTier(tier, 1)
	if err != nil {
		tb.Fatal(err)
	}
	snap, err := traffic.SyntheticField(net, traffic.FieldConfig{Hotspots: 5, Seed: 7919})
	if err != nil {
		tb.Fatal(err)
	}
	if err := traffic.ApplySnapshot(net, snap); err != nil {
		tb.Fatal(err)
	}
	scaleNets.m[tier] = net
	return net
}

// watchHeapPeak samples the heap high-water mark until the returned stop
// function is called, which reports it in MB. Sampling at 5ms catches
// the transient peaks (Lanczos blocks, contraction scratch) that a
// single end-of-run reading would miss.
func watchHeapPeak(b *testing.B) (stop func()) {
	var peak uint64
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		var ms runtime.MemStats
		ticker := time.NewTicker(5 * time.Millisecond)
		defer ticker.Stop()
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
			select {
			case <-done:
				return
			case <-ticker.C:
			}
		}
	}()
	return func() {
		close(done)
		<-finished
		b.ReportMetric(float64(peak)/1e6, "peakMB")
	}
}

// BenchmarkScale is the scaling anchor recorded in BENCH_6.json: a full
// cold partition (AG, k=8, Seed 7, auto multilevel) per op at each
// tier. S and M sit under the auto threshold and measure the flat
// spectral path at growing n; L crosses it and measures the multilevel
// path end to end. XL is not benchmarked in-loop — run `make
// scale-smoke` (TestScaleSmokeXL) for the million-segment check.
func BenchmarkScale(b *testing.B) {
	tiers := []struct {
		name string
		tier gen.Tier
	}{
		{"tier=S", gen.TierS},
		{"tier=M", gen.TierM},
		{"tier=L", gen.TierL},
	}
	for _, tc := range tiers {
		b.Run(tc.name, func(b *testing.B) {
			net := scaleNet(b, tc.tier)
			b.ReportAllocs()
			stop := watchHeapPeak(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, err := core.NewPipeline(net, core.Config{Scheme: core.AG, K: 8, Seed: 7})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := p.PartitionK(8); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			stop()
		})
	}
}

// TestScaleSmokeXL drives the XL tier — over a million directed
// segments, so over a million dual-graph nodes — through the auto
// multilevel path once, end to end. It is the acceptance check that the
// million-segment regime completes without dense n×n scratch; it runs
// only when ROADPART_SCALE_SMOKE=1 (see `make scale-smoke`) because
// generating and partitioning XL takes minutes, not test-suite seconds.
func TestScaleSmokeXL(t *testing.T) {
	if os.Getenv("ROADPART_SCALE_SMOKE") != "1" {
		t.Skip("set ROADPART_SCALE_SMOKE=1 (make scale-smoke) to run the XL smoke")
	}
	start := time.Now()
	net := scaleNet(t, gen.TierXL)
	st := net.Stats()
	t.Logf("XL network: %d intersections, %d segments (generated in %v)",
		st.Intersections, st.Segments, time.Since(start))
	if st.Segments < 1_000_000 {
		t.Fatalf("XL tier produced %d segments, want >= 1e6", st.Segments)
	}

	start = time.Now()
	p, err := core.NewPipeline(net, core.Config{Scheme: core.AG, K: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	build := time.Since(start)
	if lv := p.MultilevelLevels(); lv < 2 {
		t.Fatalf("XL pipeline built %d multilevel levels; auto mode did not engage", lv)
	}
	start = time.Now()
	res, err := p.PartitionK(8)
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 8 || len(res.Assign) != st.Segments {
		t.Fatalf("XL partition K=%d over %d nodes, want K=8 over %d", res.K, len(res.Assign), st.Segments)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	t.Logf("XL partition: levels=%d build=%v partition=%v ANS=%.4f K'=%d heap=%.0fMB",
		p.MultilevelLevels(), build, time.Since(start), res.Report.ANS, res.KPrime,
		float64(ms.HeapAlloc)/1e6)
}
