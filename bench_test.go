// Package roadpart's top-level benchmarks regenerate every table and
// figure of the paper's evaluation (via internal/experiments) and measure
// the substrate hot paths. Each experiment benchmark reports how long one
// full regeneration takes at ScaleSmall; run cmd/experiments -scale full
// for the paper-sized numbers.
package roadpart

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"roadpart/internal/core"
	"roadpart/internal/cut"
	"roadpart/internal/eigen"
	"roadpart/internal/experiments"
	"roadpart/internal/gen"
	"roadpart/internal/jiger"
	"roadpart/internal/linalg"
	"roadpart/internal/metrics"
	"roadpart/internal/render"
	"roadpart/internal/roadnet"
	"roadpart/internal/server"
	"roadpart/internal/supergraph"
	"roadpart/internal/temporal"
	"roadpart/internal/traffic"
)

// quick keeps experiment benchmarks fast while exercising the full path.
var quick = experiments.Options{Scale: experiments.ScaleSmall, Runs: 2, KMin: 2, KMax: 6}

// warmDatasets builds (and thereby memoizes, process-wide) every synthetic
// dataset before the timer starts, so each experiment benchmark measures
// the experiment protocol itself — not the one-off dataset construction —
// and its number no longer depends on which benchmarks happened to run
// earlier in the same process. This matters for `make bench-check`, which
// runs a subset: without the warm-up, the first experiment benchmark in
// the subset would absorb the build cost that a full-suite snapshot
// attributed to an earlier benchmark.
func warmDatasets(b *testing.B) {
	b.Helper()
	for _, name := range []string{"D1", "M1", "M2", "M3"} {
		if _, err := experiments.BuildDataset(name, experiments.ScaleSmall); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
}

// --- one benchmark per paper table/figure ---

func BenchmarkTable1(b *testing.B) {
	warmDatasets(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(quick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	warmDatasets(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(quick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	warmDatasets(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(quick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	warmDatasets(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(quick, "M1"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	warmDatasets(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(quick, "D1"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	warmDatasets(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(quick, "M1"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	warmDatasets(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(quick, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepWorkers measures the M1-scale k-sweep — the ANS-minimum
// selection loop, the system's hot path — at several worker counts. The
// sub-benchmarks produce identical sweeps (the determinism guarantee), so
// the ratio between workers=1 and workers=N is pure parallel speedup.
func BenchmarkSweepWorkers(b *testing.B) {
	ds, err := experiments.BuildDataset("M1", experiments.ScaleSmall)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(benchName("workers", workers), func(b *testing.B) {
			p, err := core.NewPipeline(ds.Net, core.Config{Scheme: core.ASG, Seed: 1, Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.SweepK(2, 12); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(prefix string, n int) string { return fmt.Sprintf("%s=%d", prefix, n) }

// BenchmarkSweepDeep measures the spectral core of a deep ascending
// k-sweep (k = 2..30) on the 2100-segment fixture's congestion-weighted
// road graph: the eigendecompositions backing every embedding the sweep
// needs, without the per-k k-means/reduction stages (those cost the same
// in both modes and would dilute the contrast).
//
//   - cold: a fresh ColdWiden cut.Spectral per k — every k pays a full
//     cold eigensolve, the naive per-k sweep protocol.
//   - warm: one cut.Spectral shared across the sweep — a handful of
//     widening solves (one per sweepHeadroom stride), each seeded from
//     the previous Ritz block.
//
// The cold/warm ratio is what the sweep-aware spectral core buys on the
// paper's ANS-minimum selection loop (docs/NUMERICS.md § Warm starts,
// docs/PERFORMANCE.md); `make bench-check` enforces warm ≥ 1.5× faster
// via benchdiff's -min-ratio.
func BenchmarkSweepDeep(b *testing.B) {
	net := benchNet(b)
	g, err := roadnet.DualGraph(net)
	if err != nil {
		b.Fatal(err)
	}
	wg := core.SimilarityWeighted(g, net.Densities())
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for k := 2; k <= 30; k++ {
				s := cut.NewSpectral(wg, cut.MethodAlphaCut, cut.Options{Seed: 1, ColdWiden: true})
				if err := s.Warm(k); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := cut.NewSpectral(wg, cut.MethodAlphaCut, cut.Options{Seed: 1})
			for k := 2; k <= 30; k++ {
				if err := s.Warm(k); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// --- ablation benchmarks (DESIGN.md §5) ---

func BenchmarkAblationStability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationStability(quick, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationWeighting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationWeighting(quick, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationReduction(quick, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate benchmarks ---

var (
	fixtureOnce sync.Once
	fixtureNet  *roadnet.Network
	fixtureErr  error
)

// benchNet returns a cached mid-size congested city (~2000 segments).
func benchNet(b *testing.B) *roadnet.Network {
	b.Helper()
	fixtureOnce.Do(func() {
		net, err := gen.City(gen.CityConfig{TargetIntersections: 1200, TargetSegments: 2100, Seed: 3})
		if err != nil {
			fixtureErr = err
			return
		}
		snap, err := traffic.SyntheticField(net, traffic.FieldConfig{Hotspots: 6, Seed: 4})
		if err != nil {
			fixtureErr = err
			return
		}
		fixtureErr = traffic.ApplySnapshot(net, snap)
		fixtureNet = net
	})
	if fixtureErr != nil {
		b.Fatal(fixtureErr)
	}
	return fixtureNet
}

func BenchmarkDualGraph(b *testing.B) {
	net := benchNet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := roadnet.DualGraph(net); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSupergraphMine(b *testing.B) {
	net := benchNet(b)
	g, err := roadnet.DualGraph(net)
	if err != nil {
		b.Fatal(err)
	}
	f := net.Densities()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := supergraph.Mine(g, f, supergraph.MineOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionAlphaCutSupergraph(b *testing.B) {
	net := benchNet(b)
	p, err := core.NewPipeline(net, core.Config{Scheme: core.ASG, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	k := 5
	if len(p.SG.Nodes) < k {
		k = len(p.SG.Nodes)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.PartitionK(k); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionNCutDirect(b *testing.B) {
	net := benchNet(b)
	g, err := roadnet.DualGraph(net)
	if err != nil {
		b.Fatal(err)
	}
	wg := core.SimilarityWeighted(g, net.Densities())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cut.Partition(wg, 5, cut.MethodNCut, cut.Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJiGerBaseline(b *testing.B) {
	net := benchNet(b)
	g, err := roadnet.DualGraph(net)
	if err != nil {
		b.Fatal(err)
	}
	f := net.Densities()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := jiger.Partition(g, f, 5, jiger.Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMetricsEvaluate(b *testing.B) {
	net := benchNet(b)
	res, err := core.Partition(net, core.Config{K: 5, Scheme: core.ASG, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	g, err := roadnet.DualGraph(net)
	if err != nil {
		b.Fatal(err)
	}
	f := net.Densities()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := metrics.Evaluate(f, res.Assign, g); err != nil {
			b.Fatal(err)
		}
	}
}

// randomSymDense builds a deterministic symmetric matrix for eigen benches.
func randomSymDense(n int) *linalg.Dense {
	rng := gen.NewRNG(uint64(n))
	m := linalg.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := 2*rng.Float64() - 1
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func BenchmarkEigenDense300(b *testing.B) {
	m := randomSymDense(300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eigen.SymEigen(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEigenLanczos3000(b *testing.B) {
	// The α-Cut operator at supergraph scale: sparse graph + rank-one.
	net := benchNet(b)
	g, err := roadnet.DualGraph(net)
	if err != nil {
		b.Fatal(err)
	}
	adj, err := core.SimilarityWeighted(g, net.Densities()).AdjacencyCSR()
	if err != nil {
		b.Fatal(err)
	}
	op, err := cut.NewAlphaCutOp(adj)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eigen.Lanczos(context.Background(), op, 6, eigen.LanczosOptions{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTemporalDistributed(b *testing.B) {
	net := benchNet(b)
	snaps, err := traffic.Simulate(net, traffic.SimConfig{Vehicles: 1500, Steps: 200, RecordEvery: 40, Seed: 6})
	if err != nil {
		b.Fatal(err)
	}
	at := []int{0, 2, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := temporal.Run(net, snaps, at, temporal.ModeDistributed, temporal.Config{Scheme: core.ASG, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// deltaTargetSegment picks the benchmark's delta target: a segment in
// the region whose size is closest to the balanced share n/k. The
// incremental engine's reuse grain is a region, so the measured speedup
// depends on how big the dirty region is. The global partition of the
// bench fixture is skewed (one region holds ~2/3 of the segments, three
// are singletons), and neither extreme is representative: hitting the
// giant re-splits most of the network, hitting a singleton does no
// clustering at all. The region nearest the balanced share models the
// typical localized congestion change the streaming API is for.
func deltaTargetSegment(assign []int, k int) int {
	sizes := map[int]int{}
	for _, l := range assign {
		sizes[l]++
	}
	share := len(assign) / k
	target, bestGap := -1, math.MaxInt
	for l, n := range sizes {
		if n < 4 { // splitRegion keeps smaller regions whole without clustering
			continue
		}
		gap := n - share
		if gap < 0 {
			gap = -gap
		}
		if gap < bestGap || (gap == bestGap && l < target) {
			target, bestGap = l, gap
		}
	}
	for seg, l := range assign {
		if l == target {
			return seg
		}
	}
	return 0
}

// BenchmarkIncrementalDelta measures the streaming hot path: advancing a
// warm temporal.Tracker by a small sparse delta, which recomputes only
// the region the delta touches. Compare against
// BenchmarkIncrementalFullRecompute — the same step with incremental
// reuse disabled — to see the speedup the drift-thresholded delta engine
// buys (the acceptance bar is ≥5×). Delta values vary per iteration so
// no step degenerates to the replay path.
func BenchmarkIncrementalDelta(b *testing.B) {
	net := benchNet(b)
	d0 := net.Densities()
	tr, err := temporal.NewTracker(net, temporal.ModeDistributed,
		temporal.Config{Scheme: core.ASG, K: 6, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	seed, err := tr.Step(ctx, d0)
	if err != nil {
		b.Fatal(err)
	}
	seg := deltaTargetSegment(seed.Assign, seed.K)
	// One throwaway delta populates every region cache (the first
	// re-split after the seed frame recomputes all of them).
	if _, err := tr.ApplyDelta(ctx, roadnet.DensityDelta{{Segment: seg, Density: d0[seg] + 1}}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		delta := roadnet.DensityDelta{{Segment: seg, Density: d0[seg] + 2 + float64(i%1024)/4096}}
		fr, err := tr.ApplyDelta(ctx, delta)
		if err != nil {
			b.Fatal(err)
		}
		if fr.Path != temporal.PathDelta {
			b.Fatalf("step %d took path %q, want %q", i, fr.Path, temporal.PathDelta)
		}
	}
}

// BenchmarkIncrementalFullRecompute is BenchmarkIncrementalDelta's
// baseline: the identical density step with incremental reuse disabled
// (DriftThreshold < 0), so every iteration re-splits every region from
// scratch — the legacy per-snapshot cost.
func BenchmarkIncrementalFullRecompute(b *testing.B) {
	net := benchNet(b)
	d0 := net.Densities()
	tr, err := temporal.NewTracker(net, temporal.ModeDistributed,
		temporal.Config{Scheme: core.ASG, K: 6, Seed: 1, DriftThreshold: -1})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	seed, err := tr.Step(ctx, d0)
	if err != nil {
		b.Fatal(err)
	}
	seg := deltaTargetSegment(seed.Assign, seed.K)
	f := append([]float64(nil), d0...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f[seg] = d0[seg] + 2 + float64(i%1024)/4096
		fr, err := tr.Step(ctx, f)
		if err != nil {
			b.Fatal(err)
		}
		if fr.Path != temporal.PathFull {
			b.Fatalf("step %d took path %q, want %q", i, fr.Path, temporal.PathFull)
		}
	}
}

func BenchmarkRenderPartitions(b *testing.B) {
	net := benchNet(b)
	res, err := core.Partition(net, core.Config{K: 5, Scheme: core.ASG, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sink bytes.Buffer
		if err := render.Partitions(&sink, net, res.Assign, render.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullScaleM1 runs the complete framework (modules 1–3, ASG,
// k=5) on the paper-sized M1 network — 10,096 intersections, 17,206
// segments, 25,246 vehicles — the Table 3 M1 row as a benchmark.
func BenchmarkFullScaleM1(b *testing.B) {
	ds, err := experiments.BuildDataset("M1", experiments.ScaleFull)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Partition(ds.Net, core.Config{K: 5, Scheme: core.ASG, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrafficSimulate(b *testing.B) {
	net := benchNet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := traffic.Simulate(net, traffic.SimConfig{Vehicles: 1000, Steps: 100, Seed: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShortestPath(b *testing.B) {
	net := benchNet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := traffic.ShortestPath(net, 0, len(net.Intersections)-1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartitionCached measures POST /v1/partition through the full
// HTTP handler, uncached versus served from the result cache. The hit
// path is the whole point of internal/resultcache: parse + fingerprint +
// replay should beat recomputing the pipeline by well over an order of
// magnitude.
func BenchmarkPartitionCached(b *testing.B) {
	net := benchNet(b)
	reqBody, err := json.Marshal(server.PartitionRequest{Network: net, K: 5, Scheme: "ASG", Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	post := func(h http.Handler) *httptest.ResponseRecorder {
		r := httptest.NewRequest(http.MethodPost, "/v1/partition", bytes.NewReader(reqBody))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		return w
	}

	b.Run("uncached", func(b *testing.B) {
		h := server.New()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if w := post(h); w.Code != http.StatusOK {
				b.Fatalf("status %d: %s", w.Code, w.Body.String())
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		h := server.NewWith(server.Config{CacheMaxBytes: 64 << 20})
		if w := post(h); w.Code != http.StatusOK { // warm the cache
			b.Fatalf("warm-up status %d: %s", w.Code, w.Body.String())
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w := post(h)
			if w.Code != http.StatusOK {
				b.Fatalf("status %d: %s", w.Code, w.Body.String())
			}
			if got := w.Header().Get(server.CacheHeader); got != "hit" {
				b.Fatalf("%s = %q, want hit", server.CacheHeader, got)
			}
		}
	})
}
