// Command benchdiff turns `go test -bench` text output into JSON
// snapshots and compares two snapshots against regression thresholds —
// the repository's benchmark-regression harness (see docs/PERFORMANCE.md).
//
// Snapshot mode parses benchmark text from stdin (or a file) and writes a
// BENCH_<n>.json-style snapshot:
//
//	go test -bench . -benchmem -run '^$' . | benchdiff -snapshot -o BENCH_1.json
//
// Compare mode diffs two snapshots and exits non-zero when any benchmark
// present in both regresses beyond the thresholds:
//
//	benchdiff -max-time-regress 0.02 -max-bytes-regress -0.30 BENCH_1.json BENCH_2.json
//
// A negative threshold demands an improvement: -0.30 fails unless the
// metric dropped by at least 30%. -only restricts the diff to matching
// benchmark names (for targeted gates such as the Table 3 speedup check),
// and -min-ratio asserts an intra-snapshot invariant — that one benchmark
// is at least R times slower than another — against the new snapshot:
//
//	benchdiff -only '^BenchmarkTable3$' -max-time-regress -0.40 BENCH_4.json BENCH_5.json
//	benchdiff -min-ratio 'BenchmarkSweepDeep/cold,BenchmarkSweepDeep/warm,1.5' BENCH_5.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is the persisted form of one benchmark run (the BENCH_<n>.json
// schema documented in docs/FORMATS.md).
type Snapshot struct {
	Schema     string      `json:"schema"` // "roadpart-bench/v1"
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one benchmark's measurements. Name has the -GOMAXPROCS
// suffix stripped so snapshots from differently sized machines compare.
// Custom b.ReportMetric units (e.g. BenchmarkScale's peakMB heap
// high-water) land in Metrics keyed by their unit string; they are
// recorded in snapshots but not threshold-gated.
type Benchmark struct {
	Name        string             `json:"name"`
	Pkg         string             `json:"pkg,omitempty"`
	Procs       int                `json:"procs,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

const schemaV1 = "roadpart-bench/v1"

// benchLine matches one result line of `go test -bench` output, e.g.
// "BenchmarkFig7-4  1  118969338 ns/op  9743360 B/op  22969 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

// procSuffix strips the trailing -GOMAXPROCS from a benchmark name.
var procSuffix = regexp.MustCompile(`-(\d+)$`)

// parseText reads `go test -bench` text output into a Snapshot.
func parseText(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{Schema: schemaV1}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			snap.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			snap.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			snap.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b := Benchmark{Name: m[1], Pkg: pkg}
		if pm := procSuffix.FindStringSubmatch(b.Name); pm != nil {
			b.Procs, _ = strconv.Atoi(pm[1])
			b.Name = procSuffix.ReplaceAllString(b.Name, "")
		}
		b.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		b.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		for _, metric := range strings.Split(strings.TrimSpace(m[4]), "\t") {
			fields := strings.Fields(metric)
			if len(fields) != 2 {
				continue
			}
			v, err := strconv.ParseFloat(fields[0], 64)
			if err != nil {
				continue
			}
			switch fields[1] {
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			default:
				// Custom ReportMetric unit: record it verbatim.
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[fields[1]] = v
			}
		}
		snap.Benchmarks = append(snap.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(snap.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found in input")
	}
	return snap, nil
}

func loadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if s.Schema != schemaV1 {
		return nil, fmt.Errorf("%s: unsupported schema %q (want %q)", path, s.Schema, schemaV1)
	}
	return &s, nil
}

// delta is the fractional change from old to new: +0.10 means new is 10%
// higher. A zero old with a nonzero new reports +Inf-like growth as 1.
func delta(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return 1
	}
	return (new - old) / old
}

// diffRow is one benchmark's comparison.
type diffRow struct {
	name                 string
	old, new             *Benchmark
	timeDelta, byteDelta float64
	failed               []string
}

// ratioSpec is one parsed -min-ratio assertion: NsPerOp(slow) must be at
// least Ratio times NsPerOp(fast) in the snapshot under check.
type ratioSpec struct {
	Slow, Fast string
	Ratio      float64
}

// parseRatio parses a -min-ratio value of the form "SlowName,FastName,R".
func parseRatio(s string) (ratioSpec, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return ratioSpec{}, fmt.Errorf("-min-ratio %q: want slow,fast,ratio", s)
	}
	r, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
	if err != nil || r <= 0 {
		return ratioSpec{}, fmt.Errorf("-min-ratio %q: bad ratio %q", s, parts[2])
	}
	return ratioSpec{Slow: strings.TrimSpace(parts[0]), Fast: strings.TrimSpace(parts[1]), Ratio: r}, nil
}

// checkRatio verifies one ratio assertion against a snapshot: the Slow
// benchmark's ns/op must be >= Ratio × the Fast benchmark's ns/op (i.e.
// Fast is at least Ratio× faster). Both benchmarks must be present.
func checkRatio(s *Snapshot, spec ratioSpec) error {
	var slow, fast *Benchmark
	for i := range s.Benchmarks {
		switch s.Benchmarks[i].Name {
		case spec.Slow:
			slow = &s.Benchmarks[i]
		case spec.Fast:
			fast = &s.Benchmarks[i]
		}
	}
	if slow == nil {
		return fmt.Errorf("min-ratio: benchmark %q not in snapshot", spec.Slow)
	}
	if fast == nil {
		return fmt.Errorf("min-ratio: benchmark %q not in snapshot", spec.Fast)
	}
	if fast.NsPerOp <= 0 {
		return fmt.Errorf("min-ratio: %q has non-positive ns/op", spec.Fast)
	}
	got := slow.NsPerOp / fast.NsPerOp
	if got < spec.Ratio {
		return fmt.Errorf("min-ratio: %s / %s = %.2fx < required %.2fx",
			spec.Slow, spec.Fast, got, spec.Ratio)
	}
	return nil
}

// compare diffs two snapshots. Rows are sorted by name; only benchmarks
// present in both snapshots are threshold-checked. A non-nil only
// restricts the diff to benchmarks whose name matches it.
func compare(oldS, newS *Snapshot, maxTime, maxBytes float64, only *regexp.Regexp) (rows []diffRow, failures int) {
	index := func(s *Snapshot) map[string]*Benchmark {
		m := make(map[string]*Benchmark, len(s.Benchmarks))
		for i := range s.Benchmarks {
			m[s.Benchmarks[i].Name] = &s.Benchmarks[i]
		}
		return m
	}
	oldM, newM := index(oldS), index(newS)
	names := map[string]bool{}
	for n := range oldM {
		names[n] = true
	}
	for n := range newM {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		if only != nil && !only.MatchString(n) {
			continue
		}
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		row := diffRow{name: n, old: oldM[n], new: newM[n]}
		if row.old != nil && row.new != nil {
			row.timeDelta = delta(row.old.NsPerOp, row.new.NsPerOp)
			row.byteDelta = delta(row.old.BytesPerOp, row.new.BytesPerOp)
			if row.timeDelta > maxTime {
				row.failed = append(row.failed, fmt.Sprintf("ns/op %+.1f%% > %+.1f%%", 100*row.timeDelta, 100*maxTime))
			}
			if row.byteDelta > maxBytes {
				row.failed = append(row.failed, fmt.Sprintf("B/op %+.1f%% > %+.1f%%", 100*row.byteDelta, 100*maxBytes))
			}
			if len(row.failed) > 0 {
				failures++
			}
		}
		rows = append(rows, row)
	}
	return rows, failures
}

func runSnapshot(out string, in io.Reader) error {
	snap, err := parseText(in)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" || out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

func runCompare(w io.Writer, oldPath, newPath string, maxTime, maxBytes float64, only *regexp.Regexp, ratios []ratioSpec) (int, error) {
	oldS, err := loadSnapshot(oldPath)
	if err != nil {
		return 1, err
	}
	newS, err := loadSnapshot(newPath)
	if err != nil {
		return 1, err
	}
	rows, failures := compare(oldS, newS, maxTime, maxBytes, only)
	fmt.Fprintf(w, "%-36s %14s %14s %9s %9s\n", "benchmark", "old ns/op", "new ns/op", "Δns", "ΔB/op")
	for _, r := range rows {
		switch {
		case r.old == nil:
			fmt.Fprintf(w, "%-36s %14s %14.0f %9s %9s  (added)\n", r.name, "-", r.new.NsPerOp, "-", "-")
		case r.new == nil:
			fmt.Fprintf(w, "%-36s %14.0f %14s %9s %9s  (removed)\n", r.name, r.old.NsPerOp, "-", "-", "-")
		default:
			status := ""
			if len(r.failed) > 0 {
				status = "  FAIL: " + strings.Join(r.failed, "; ")
			}
			fmt.Fprintf(w, "%-36s %14.0f %14.0f %+8.1f%% %+8.1f%%%s\n",
				r.name, r.old.NsPerOp, r.new.NsPerOp, 100*r.timeDelta, 100*r.byteDelta, status)
		}
	}
	// -min-ratio assertions run against the new snapshot: they express
	// intra-run invariants (warm must beat cold) rather than old-vs-new
	// regressions.
	for _, spec := range ratios {
		if err := checkRatio(newS, spec); err != nil {
			fmt.Fprintf(w, "FAIL: %v\n", err)
			failures++
		} else {
			fmt.Fprintf(w, "min-ratio OK: %s >= %.2fx %s\n", spec.Slow, spec.Ratio, spec.Fast)
		}
	}
	if failures > 0 {
		fmt.Fprintf(w, "\n%d benchmark(s) regressed beyond thresholds (ns/op %+.1f%%, B/op %+.1f%%)\n",
			failures, 100*maxTime, 100*maxBytes)
		return 1, nil
	}
	fmt.Fprintf(w, "\nall compared benchmarks within thresholds\n")
	return 0, nil
}

// runCheck is the single-snapshot mode: only -min-ratio assertions, no
// old-vs-new diff. Used to enforce intra-run invariants on a snapshot
// that has no meaningful baseline (e.g. warm-vs-cold sub-benchmarks).
func runCheck(w io.Writer, path string, ratios []ratioSpec) (int, error) {
	s, err := loadSnapshot(path)
	if err != nil {
		return 1, err
	}
	failures := 0
	for _, spec := range ratios {
		if err := checkRatio(s, spec); err != nil {
			fmt.Fprintf(w, "FAIL: %v\n", err)
			failures++
		} else {
			fmt.Fprintf(w, "min-ratio OK: %s >= %.2fx %s\n", spec.Slow, spec.Ratio, spec.Fast)
		}
	}
	if failures > 0 {
		return 1, nil
	}
	return 0, nil
}

func main() {
	snapshot := flag.Bool("snapshot", false, "parse `go test -bench` text (stdin or a file argument) into a JSON snapshot")
	out := flag.String("o", "-", "snapshot output path (- for stdout)")
	maxTime := flag.Float64("max-time-regress", 0.10, "maximum tolerated fractional ns/op increase (negative demands improvement)")
	maxBytes := flag.Float64("max-bytes-regress", 0.10, "maximum tolerated fractional B/op increase (negative demands improvement)")
	only := flag.String("only", "", "restrict the compare diff to benchmarks matching this regexp")
	var minRatios multiFlag
	flag.Var(&minRatios, "min-ratio", "assert ns/op(slow) >= R*ns/op(fast) in the new snapshot, as 'slow,fast,R' (repeatable)")
	flag.Parse()

	if *snapshot {
		in := io.Reader(os.Stdin)
		if flag.NArg() == 1 {
			f, err := os.Open(flag.Arg(0))
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchdiff:", err)
				os.Exit(1)
			}
			defer f.Close()
			in = f
		} else if flag.NArg() > 1 {
			fmt.Fprintln(os.Stderr, "benchdiff: -snapshot takes at most one input file")
			os.Exit(2)
		}
		if err := runSnapshot(*out, in); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}
		return
	}

	var ratios []ratioSpec
	for _, raw := range minRatios {
		spec, err := parseRatio(raw)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		ratios = append(ratios, spec)
	}
	var onlyRe *regexp.Regexp
	if *only != "" {
		re, err := regexp.Compile(*only)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff: -only:", err)
			os.Exit(2)
		}
		onlyRe = re
	}

	if flag.NArg() == 1 && len(ratios) > 0 {
		code, err := runCheck(os.Stdout, flag.Arg(0), ratios)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
		}
		os.Exit(code)
	}
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff -snapshot [-o out.json] [bench.txt]")
		fmt.Fprintln(os.Stderr, "       benchdiff [-max-time-regress F] [-max-bytes-regress F] [-only RE] [-min-ratio slow,fast,R] old.json new.json")
		fmt.Fprintln(os.Stderr, "       benchdiff -min-ratio slow,fast,R snap.json")
		os.Exit(2)
	}
	code, err := runCompare(os.Stdout, flag.Arg(0), flag.Arg(1), *maxTime, *maxBytes, onlyRe, ratios)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
	}
	os.Exit(code)
}

// multiFlag collects repeated string flag values.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ";") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }
