package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: roadpart
cpu: Some CPU @ 2.40GHz
BenchmarkFig7-4          	       1	118969338 ns/op	 9743360 B/op	   22969 allocs/op
BenchmarkTable3-4        	       1	578646637 ns/op	31152904 B/op	   73645 allocs/op
BenchmarkNorm2-4         	20000000	         3.25 ns/op
PASS
ok  	roadpart	12.3s
`

func TestParseText(t *testing.T) {
	snap, err := parseText(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Goos != "linux" || snap.Goarch != "amd64" {
		t.Fatalf("platform not parsed: %+v", snap)
	}
	if len(snap.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(snap.Benchmarks))
	}
	fig7 := snap.Benchmarks[0]
	if fig7.Name != "BenchmarkFig7" || fig7.Procs != 4 {
		t.Fatalf("name/procs not split: %+v", fig7)
	}
	if fig7.NsPerOp != 118969338 || fig7.BytesPerOp != 9743360 || fig7.AllocsPerOp != 22969 {
		t.Fatalf("metrics wrong: %+v", fig7)
	}
	if norm := snap.Benchmarks[2]; norm.NsPerOp != 3.25 || norm.BytesPerOp != 0 {
		t.Fatalf("ns-only line wrong: %+v", norm)
	}
}

func TestParseTextRejectsEmpty(t *testing.T) {
	if _, err := parseText(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Fatal("expected error for input without benchmarks")
	}
}

func mkSnap(name string, ns, bytes float64) *Snapshot {
	return &Snapshot{Schema: schemaV1, Benchmarks: []Benchmark{
		{Name: name, Iterations: 1, NsPerOp: ns, BytesPerOp: bytes},
	}}
}

func TestCompareWithinThreshold(t *testing.T) {
	rows, failures := compare(mkSnap("BenchmarkX", 100, 1000), mkSnap("BenchmarkX", 105, 900), 0.10, 0.10)
	if failures != 0 {
		t.Fatalf("unexpected failures: %+v", rows)
	}
	if rows[0].timeDelta != 0.05 {
		t.Fatalf("timeDelta = %v", rows[0].timeDelta)
	}
}

func TestCompareFailsOverThreshold(t *testing.T) {
	_, failures := compare(mkSnap("BenchmarkX", 100, 1000), mkSnap("BenchmarkX", 150, 1000), 0.10, 0.10)
	if failures != 1 {
		t.Fatalf("failures = %d, want 1", failures)
	}
}

func TestCompareNegativeThresholdDemandsImprovement(t *testing.T) {
	// -0.30 on bytes: a 20% reduction is not enough.
	_, failures := compare(mkSnap("BenchmarkX", 100, 1000), mkSnap("BenchmarkX", 100, 800), 0.10, -0.30)
	if failures != 1 {
		t.Fatalf("failures = %d, want 1 (20%% < required 30%% cut)", failures)
	}
	_, failures = compare(mkSnap("BenchmarkX", 100, 1000), mkSnap("BenchmarkX", 100, 600), 0.10, -0.30)
	if failures != 0 {
		t.Fatalf("failures = %d, want 0 (40%% cut clears -30%%)", failures)
	}
}

func TestCompareAddedRemovedNotFailures(t *testing.T) {
	old := mkSnap("BenchmarkGone", 100, 0)
	new := mkSnap("BenchmarkNew", 100, 0)
	rows, failures := compare(old, new, 0, 0)
	if failures != 0 {
		t.Fatalf("added/removed counted as failures: %+v", rows)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
}

func TestSnapshotCompareRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.json")
	if err := runSnapshot(path, strings.NewReader(sampleBench)); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	code, err := runCompare(&sb, path, path, 0.0, 0.0)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("self-compare exit %d:\n%s", code, sb.String())
	}
	if !strings.Contains(sb.String(), "BenchmarkFig7") {
		t.Fatalf("table missing benchmark:\n%s", sb.String())
	}
}

func TestLoadSnapshotRejectsBadSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema":"other/v9","benchmarks":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadSnapshot(path); err == nil {
		t.Fatal("expected schema error")
	}
}
