package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: roadpart
cpu: Some CPU @ 2.40GHz
BenchmarkFig7-4          	       1	118969338 ns/op	 9743360 B/op	   22969 allocs/op
BenchmarkTable3-4        	       1	578646637 ns/op	31152904 B/op	   73645 allocs/op
BenchmarkNorm2-4         	20000000	         3.25 ns/op
PASS
ok  	roadpart	12.3s
`

func TestParseText(t *testing.T) {
	snap, err := parseText(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Goos != "linux" || snap.Goarch != "amd64" {
		t.Fatalf("platform not parsed: %+v", snap)
	}
	if len(snap.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(snap.Benchmarks))
	}
	fig7 := snap.Benchmarks[0]
	if fig7.Name != "BenchmarkFig7" || fig7.Procs != 4 {
		t.Fatalf("name/procs not split: %+v", fig7)
	}
	if fig7.NsPerOp != 118969338 || fig7.BytesPerOp != 9743360 || fig7.AllocsPerOp != 22969 {
		t.Fatalf("metrics wrong: %+v", fig7)
	}
	if norm := snap.Benchmarks[2]; norm.NsPerOp != 3.25 || norm.BytesPerOp != 0 {
		t.Fatalf("ns-only line wrong: %+v", norm)
	}
}

func TestParseTextRejectsEmpty(t *testing.T) {
	if _, err := parseText(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Fatal("expected error for input without benchmarks")
	}
}

func mkSnap(name string, ns, bytes float64) *Snapshot {
	return &Snapshot{Schema: schemaV1, Benchmarks: []Benchmark{
		{Name: name, Iterations: 1, NsPerOp: ns, BytesPerOp: bytes},
	}}
}

func TestCompareWithinThreshold(t *testing.T) {
	rows, failures := compare(mkSnap("BenchmarkX", 100, 1000), mkSnap("BenchmarkX", 105, 900), 0.10, 0.10, nil)
	if failures != 0 {
		t.Fatalf("unexpected failures: %+v", rows)
	}
	if rows[0].timeDelta != 0.05 {
		t.Fatalf("timeDelta = %v", rows[0].timeDelta)
	}
}

func TestCompareFailsOverThreshold(t *testing.T) {
	_, failures := compare(mkSnap("BenchmarkX", 100, 1000), mkSnap("BenchmarkX", 150, 1000), 0.10, 0.10, nil)
	if failures != 1 {
		t.Fatalf("failures = %d, want 1", failures)
	}
}

func TestCompareNegativeThresholdDemandsImprovement(t *testing.T) {
	// -0.30 on bytes: a 20% reduction is not enough.
	_, failures := compare(mkSnap("BenchmarkX", 100, 1000), mkSnap("BenchmarkX", 100, 800), 0.10, -0.30, nil)
	if failures != 1 {
		t.Fatalf("failures = %d, want 1 (20%% < required 30%% cut)", failures)
	}
	_, failures = compare(mkSnap("BenchmarkX", 100, 1000), mkSnap("BenchmarkX", 100, 600), 0.10, -0.30, nil)
	if failures != 0 {
		t.Fatalf("failures = %d, want 0 (40%% cut clears -30%%)", failures)
	}
}

func TestCompareAddedRemovedNotFailures(t *testing.T) {
	old := mkSnap("BenchmarkGone", 100, 0)
	new := mkSnap("BenchmarkNew", 100, 0)
	rows, failures := compare(old, new, 0, 0, nil)
	if failures != 0 {
		t.Fatalf("added/removed counted as failures: %+v", rows)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
}

func TestSnapshotCompareRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.json")
	if err := runSnapshot(path, strings.NewReader(sampleBench)); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	code, err := runCompare(&sb, path, path, 0.0, 0.0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("self-compare exit %d:\n%s", code, sb.String())
	}
	if !strings.Contains(sb.String(), "BenchmarkFig7") {
		t.Fatalf("table missing benchmark:\n%s", sb.String())
	}
}

func TestLoadSnapshotRejectsBadSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema":"other/v9","benchmarks":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadSnapshot(path); err == nil {
		t.Fatal("expected schema error")
	}
}

// multiSnap builds a snapshot holding several benchmarks at given ns/op.
func multiSnap(ns map[string]float64) *Snapshot {
	s := &Snapshot{Schema: schemaV1}
	names := make([]string, 0, len(ns))
	for n := range ns {
		names = append(names, n)
	}
	// Deterministic order keeps failure messages stable.
	for len(names) > 0 {
		min := 0
		for i := range names {
			if names[i] < names[min] {
				min = i
			}
		}
		n := names[min]
		names = append(names[:min], names[min+1:]...)
		s.Benchmarks = append(s.Benchmarks, Benchmark{Name: n, Iterations: 1, NsPerOp: ns[n]})
	}
	return s
}

func TestCompareOnlyRestrictsChecks(t *testing.T) {
	old := multiSnap(map[string]float64{"BenchmarkA": 100, "BenchmarkB": 100})
	new := multiSnap(map[string]float64{"BenchmarkA": 100, "BenchmarkB": 500})
	// BenchmarkB regresses 5x, but -only excludes it from the diff.
	re := regexp.MustCompile(`^BenchmarkA$`)
	rows, failures := compare(old, new, 0.10, 0.10, re)
	if failures != 0 {
		t.Fatalf("failures = %d, want 0 with -only ^BenchmarkA$", failures)
	}
	if len(rows) != 1 || rows[0].name != "BenchmarkA" {
		t.Fatalf("rows = %+v, want only BenchmarkA", rows)
	}
	if _, failures = compare(old, new, 0.10, 0.10, nil); failures != 1 {
		t.Fatalf("without -only, failures = %d, want 1", failures)
	}
}

func TestParseRatio(t *testing.T) {
	spec, err := parseRatio("BenchmarkSweepDeep/cold,BenchmarkSweepDeep/warm,1.5")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Slow != "BenchmarkSweepDeep/cold" || spec.Fast != "BenchmarkSweepDeep/warm" || spec.Ratio != 1.5 {
		t.Fatalf("spec = %+v", spec)
	}
	for _, bad := range []string{"", "a,b", "a,b,c,d", "a,b,zero", "a,b,-1"} {
		if _, err := parseRatio(bad); err == nil {
			t.Fatalf("parseRatio(%q) accepted", bad)
		}
	}
}

func TestCheckRatio(t *testing.T) {
	s := multiSnap(map[string]float64{"Benchmark/cold": 300, "Benchmark/warm": 100})
	if err := checkRatio(s, ratioSpec{Slow: "Benchmark/cold", Fast: "Benchmark/warm", Ratio: 1.5}); err != nil {
		t.Fatalf("3x ratio failed a 1.5x requirement: %v", err)
	}
	if err := checkRatio(s, ratioSpec{Slow: "Benchmark/cold", Fast: "Benchmark/warm", Ratio: 5}); err == nil {
		t.Fatal("3x ratio passed a 5x requirement")
	}
	if err := checkRatio(s, ratioSpec{Slow: "Benchmark/missing", Fast: "Benchmark/warm", Ratio: 1}); err == nil {
		t.Fatal("missing slow benchmark passed")
	}
	if err := checkRatio(s, ratioSpec{Slow: "Benchmark/cold", Fast: "Benchmark/missing", Ratio: 1}); err == nil {
		t.Fatal("missing fast benchmark passed")
	}
}

func TestRunCheckSingleSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.json")
	data, err := json.MarshalIndent(multiSnap(map[string]float64{"B/cold": 200, "B/warm": 100}), "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	code, err := runCheck(&sb, path, []ratioSpec{{Slow: "B/cold", Fast: "B/warm", Ratio: 1.5}})
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v out=%s", code, err, sb.String())
	}
	sb.Reset()
	code, err = runCheck(&sb, path, []ratioSpec{{Slow: "B/cold", Fast: "B/warm", Ratio: 3}})
	if err != nil || code != 1 {
		t.Fatalf("under-ratio: code=%d err=%v out=%s", code, err, sb.String())
	}
}

func TestCompareMinRatioAgainstNewSnapshot(t *testing.T) {
	dir := t.TempDir()
	oldP, newP := filepath.Join(dir, "old.json"), filepath.Join(dir, "new.json")
	write := func(p string, s *Snapshot) {
		data, err := json.MarshalIndent(s, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(oldP, multiSnap(map[string]float64{"B/cold": 400, "B/warm": 100}))
	write(newP, multiSnap(map[string]float64{"B/cold": 120, "B/warm": 100}))
	var sb strings.Builder
	// Thresholds pass (both improved or equal), but the new snapshot's
	// ratio collapsed below 1.5x — the compare must fail on it.
	code, err := runCompare(&sb, oldP, newP, 0.10, 0.10,
		nil, []ratioSpec{{Slow: "B/cold", Fast: "B/warm", Ratio: 1.5}})
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("ratio collapse not failed: %s", sb.String())
	}
	if !strings.Contains(sb.String(), "min-ratio") {
		t.Fatalf("failure not attributed to min-ratio:\n%s", sb.String())
	}
}
