// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp all -scale small
//	experiments -exp fig4 -scale full -runs 11
//	experiments -exp table3 -scale full
//
// At -scale full the datasets match Table 1 exactly (79,487 segments for
// M3) and a complete run takes minutes; -scale small shrinks the large
// networks ~16× for second-scale smoke runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"roadpart/internal/experiments"
	"roadpart/internal/linalg"
	"roadpart/internal/obs"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: all, table1, table2, table3, fig4, fig5, fig6, fig7, ablations")
		scale   = flag.String("scale", "small", "dataset scale: small or full")
		runs    = flag.Int("runs", 0, "seeded runs per configuration (0 = experiment default)")
		kmin    = flag.Int("kmin", 0, "minimum k (0 = paper default)")
		kmax    = flag.Int("kmax", 0, "maximum k (0 = paper default)")
		csvTo   = flag.String("csv", "", "directory to write plot-ready CSV series into (figures only)")
		workers = flag.Int("workers", 0, "worker goroutines for parallel stages (0 = GOMAXPROCS; medians are identical for any value)")
		timings = flag.Bool("timings", false, "print the per-stage wall-clock breakdown after all experiments")
	)
	flag.Parse()
	linalg.SetWorkers(*workers)
	if *csvTo != "" {
		if err := os.MkdirAll(*csvTo, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	opts := experiments.Options{Runs: *runs, KMin: *kmin, KMax: *kmax, Workers: *workers}
	switch *scale {
	case "small":
		opts.Scale = experiments.ScaleSmall
	case "full":
		opts.Scale = experiments.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want small or full)\n", *scale)
		os.Exit(2)
	}

	run := func(name string) error {
		w := os.Stdout
		switch name {
		case "table1":
			d, err := experiments.Table1(opts)
			if err != nil {
				return err
			}
			d.Render(w)
		case "table2":
			d, err := experiments.Table2(opts)
			if err != nil {
				return err
			}
			d.Render(w)
		case "table3":
			d, err := experiments.Table3(opts, 0)
			if err != nil {
				return err
			}
			d.Render(w)
		case "fig4":
			d, err := experiments.Fig4(opts)
			if err != nil {
				return err
			}
			d.Render(w)
			if err := writeCSV(*csvTo, "fig4.csv", d.WriteCSV); err != nil {
				return err
			}
		case "fig5":
			d, err := experiments.Fig5(opts)
			if err != nil {
				return err
			}
			d.Render(w)
			if err := writeCSV(*csvTo, "fig5.csv", d.WriteCSV); err != nil {
				return err
			}
		case "fig6":
			d, err := experiments.Fig6(opts)
			if err != nil {
				return err
			}
			d.Render(w)
			if err := writeCSV(*csvTo, "fig6.csv", d.WriteCSV); err != nil {
				return err
			}
		case "fig7":
			d, err := experiments.Fig7(opts)
			if err != nil {
				return err
			}
			d.Render(w)
			if err := writeCSV(*csvTo, "fig7.csv", d.WriteCSV); err != nil {
				return err
			}
		case "ablations":
			for _, f := range []func() (*experiments.AblationData, error){
				func() (*experiments.AblationData, error) { return experiments.AblationStability(opts, 0) },
				func() (*experiments.AblationData, error) { return experiments.AblationWeighting(opts, 0) },
				func() (*experiments.AblationData, error) { return experiments.AblationReduction(opts, 0) },
				func() (*experiments.AblationData, error) { return experiments.AblationRefine(opts, 0) },
				func() (*experiments.AblationData, error) { return experiments.AblationEigen(0) },
				func() (*experiments.AblationData, error) { return experiments.AblationNoise(opts, 0) },
				func() (*experiments.AblationData, error) { return experiments.AblationKMeansInit(opts, 0) },
			} {
				d, err := f()
				if err != nil {
					return err
				}
				d.Render(w)
			}
		case "scaling":
			sizes := []int{1000, 2000, 4000, 8000}
			if opts.Scale == experiments.ScaleFull {
				sizes = append(sizes, 16000, 32000)
			}
			d, err := experiments.Scaling(0, sizes...)
			if err != nil {
				return err
			}
			d.Render(w)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		fmt.Fprintln(w)
		return nil
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"table1", "fig4", "table2", "fig5", "fig6", "fig7", "table3", "ablations", "scaling"}
	}
	for _, name := range names {
		fmt.Printf("=== %s (scale=%s) ===\n", strings.ToUpper(name), *scale)
		if err := run(name); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
	}
	if *timings {
		fmt.Println("=== STAGE TIMINGS (cumulative, this process) ===")
		if err := obs.WriteStageTable(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// writeCSV writes one experiment's CSV into dir; a no-op when dir is
// empty.
func writeCSV(dir, name string, emit func(io.Writer) error) error {
	if dir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
