// Command gennet generates synthetic city road networks with simulated
// traffic, in the JSON/CSV formats the other tools consume.
//
// Usage:
//
//	gennet -intersections 5000 -segments 9000 -vehicles 12000 -out city.json
//	gennet -preset M1 -out m1.json -densities m1.csv
//	gennet -tier L -out l.json
//
// -tier generates a gen.ScaleTier city (S, M, L or XL — up to ~10⁶
// directed segments, see docs/SCALING.md) with a synthetic hotspot
// density field instead of agent simulation, which would be prohibitive
// at the XL scale.
package main

import (
	"flag"
	"fmt"
	"os"

	"roadpart/internal/experiments"
	"roadpart/internal/gen"
	"roadpart/internal/roadnet"
	"roadpart/internal/traffic"
)

func main() {
	var (
		preset        = flag.String("preset", "", "preset dataset: D1, M1, M2, M3 (traffic included)")
		tier          = flag.String("tier", "", "scale-tier city: S, M, L, XL (Lämmer-style topology, synthetic density field; overrides the custom-city flags)")
		intersections = flag.Int("intersections", 1000, "intersection count for a custom city")
		segments      = flag.Int("segments", 1800, "directed segment count for a custom city")
		spacing       = flag.Float64("spacing", 100, "lattice pitch in metres")
		jitter        = flag.Float64("jitter", 0.15, "positional jitter fraction")
		vehicles      = flag.Int("vehicles", 0, "fleet size (0 = segments/2)")
		steps         = flag.Int("steps", 600, "simulation ticks")
		hotspots      = flag.Int("hotspots", 5, "congestion attractors")
		seed          = flag.Uint64("seed", 1, "random seed")
		outPath       = flag.String("out", "city.json", "network JSON output path")
		densPath      = flag.String("densities", "", "optional density CSV output path")
	)
	flag.Parse()

	var net *roadnet.Network
	if *tier != "" {
		t, err := gen.ParseTier(*tier)
		if err != nil {
			fatal(err)
		}
		net, err = gen.ScaleTier(t, *seed)
		if err != nil {
			fatal(err)
		}
		snap, err := traffic.SyntheticField(net, traffic.FieldConfig{Hotspots: *hotspots, Seed: *seed * 7919})
		if err != nil {
			fatal(err)
		}
		if err := traffic.ApplySnapshot(net, snap); err != nil {
			fatal(err)
		}
	} else if *preset != "" {
		ds, err := experiments.BuildDataset(*preset, experiments.ScaleFull)
		if err != nil {
			fatal(err)
		}
		net = ds.Net
	} else {
		var err error
		net, err = gen.City(gen.CityConfig{
			TargetIntersections: *intersections,
			TargetSegments:      *segments,
			Spacing:             *spacing,
			Jitter:              *jitter,
			Seed:                *seed,
		})
		if err != nil {
			fatal(err)
		}
		snaps, err := traffic.Simulate(net, traffic.SimConfig{
			Vehicles: *vehicles,
			Steps:    *steps,
			Hotspots: *hotspots,
			Seed:     *seed * 7919,
		})
		if err != nil {
			fatal(err)
		}
		if err := traffic.ApplySnapshot(net, snaps[len(snaps)-1]); err != nil {
			fatal(err)
		}
	}

	if err := net.SaveJSON(*outPath); err != nil {
		fatal(err)
	}
	st := net.Stats()
	fmt.Printf("wrote %s: %d intersections, %d segments, mean density %.5f veh/m\n",
		*outPath, st.Intersections, st.Segments, st.MeanDensity)

	if *densPath != "" {
		f, err := os.Create(*densPath)
		if err != nil {
			fatal(err)
		}
		if err := net.WriteDensitiesCSV(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *densPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gennet:", err)
	os.Exit(1)
}
