// Command partdiff compares two partition assignments (the CSV emitted by
// cmd/roadpart): Adjusted Rand Index, partition counts and the confusion
// summary — the tool for tracking how regions moved between two
// re-partitioning rounds.
//
//	partdiff morning.csv evening.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"

	"roadpart/internal/metrics"
)

func main() {
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: partdiff A.csv B.csv")
		os.Exit(2)
	}
	a, err := readAssignment(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	b, err := readAssignment(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	if len(a) != len(b) {
		fatal(fmt.Errorf("segment counts differ: %d vs %d", len(a), len(b)))
	}
	ari, err := metrics.ARI(a, b)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("segments: %d\n", len(a))
	fmt.Printf("partitions: %d vs %d\n", count(a), count(b))
	fmt.Printf("adjusted rand index: %.4f\n", ari)

	// Top region overlaps: for each A-region, where did it go?
	type move struct {
		from, to, n int
	}
	overlap := map[[2]int]int{}
	for i := range a {
		overlap[[2]int{a[i], b[i]}]++
	}
	var moves []move
	for k, n := range overlap {
		moves = append(moves, move{from: k[0], to: k[1], n: n})
	}
	sort.Slice(moves, func(i, j int) bool { return moves[i].n > moves[j].n })
	fmt.Println("largest region overlaps (A-region -> B-region: segments):")
	for i, m := range moves {
		if i >= 10 {
			break
		}
		fmt.Printf("  %3d -> %3d: %d\n", m.from, m.to, m.n)
	}
}

// readAssignment parses a segment_id,partition CSV (header optional); the
// assignment is returned indexed by segment id.
func readAssignment(path string) ([]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cr := csv.NewReader(f)
	cr.FieldsPerRecord = 2
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	byID := map[int]int{}
	maxID := -1
	for i, rec := range records {
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			if i == 0 {
				continue // header
			}
			return nil, fmt.Errorf("%s row %d: bad id %q", path, i+1, rec[0])
		}
		p, err := strconv.Atoi(rec[1])
		if err != nil || p < 0 {
			return nil, fmt.Errorf("%s row %d: bad partition %q", path, i+1, rec[1])
		}
		if _, dup := byID[id]; dup {
			return nil, fmt.Errorf("%s: duplicate segment %d", path, id)
		}
		byID[id] = p
		if id > maxID {
			maxID = id
		}
	}
	if len(byID) == 0 {
		return nil, fmt.Errorf("%s: no assignments", path)
	}
	if len(byID) != maxID+1 {
		return nil, fmt.Errorf("%s: segment ids not dense (%d ids, max %d)", path, len(byID), maxID)
	}
	out := make([]int, maxID+1)
	for id, p := range byID {
		out[id] = p
	}
	return out, nil
}

func count(assign []int) int {
	seen := map[int]bool{}
	for _, p := range assign {
		seen[p] = true
	}
	return len(seen)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "partdiff:", err)
	os.Exit(1)
}
