package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeCSV(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadAssignment(t *testing.T) {
	path := writeCSV(t, "a.csv", "segment_id,partition\n0,1\n2,0\n1,1\n")
	got, err := readAssignment(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("assignment = %v, want %v", got, want)
		}
	}
}

func TestReadAssignmentErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         "segment_id,partition\n",
		"duplicate":     "0,1\n0,2\n",
		"sparse ids":    "0,1\n5,0\n",
		"bad partition": "0,x\n",
		"negative":      "0,-2\n",
	}
	for name, content := range cases {
		path := writeCSV(t, "bad.csv", content)
		if _, err := readAssignment(path); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	if _, err := readAssignment("/definitely/missing.csv"); err == nil {
		t.Error("missing file should error")
	}
}

func TestCount(t *testing.T) {
	if c := count([]int{0, 1, 1, 3}); c != 3 {
		t.Fatalf("count = %d, want 3", c)
	}
}
