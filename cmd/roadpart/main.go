// Command roadpart partitions an urban road network by traffic congestion.
//
// Input is either a generated preset (-preset D1|M1|M2|M3, traffic
// included) or a network JSON file (-net) produced by cmd/gennet or by any
// tool emitting the roadnet schema, optionally with a separate density CSV
// (-densities).
//
// Usage:
//
//	roadpart -preset D1 -k 6 -scheme ASG
//	roadpart -net city.json -densities now.csv -k 8 -scheme AG -out parts.csv
//	roadpart -preset M1 -autok -kmax 15
//	roadpart -preset D1 -k 6 -timings   # per-stage breakdown (Table 3 layout)
//	roadpart -preset D1 -k 6 -cache-dir /var/cache/roadpart   # reuse results
//	roadpart -watch http://localhost:8080   # follow a daemon's repartition stream
//	roadpart -preset D1 -k 6 -submit http://localhost:8080 -wait   # durable async job
//	roadpart -poll http://localhost:8080/v1/jobs/j000001-8f... -wait
//
// -submit hands the work to a roadpartd daemon's async job queue
// (POST /v1/jobs) and prints the job's poll URL; -wait polls until the
// job is terminal and prints the result. -watch reconnects with capped
// exponential backoff when the stream drops, deduplicating the replayed
// event by sequence number (see docs/API.md § Async jobs).
//
// -cache-dir reads and writes roadpart-cache/v1 snapshot files — the same
// artifacts roadpartd's -cache-dir uses — so a result computed by either
// binary is a cache hit for the other (see docs/FORMATS.md).
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"roadpart/internal/core"
	"roadpart/internal/experiments"
	"roadpart/internal/linalg"
	"roadpart/internal/obs"
	"roadpart/internal/render"
	"roadpart/internal/resultcache"
	"roadpart/internal/roadnet"
	"roadpart/internal/server"
)

func main() {
	var (
		netPath  = flag.String("net", "", "network JSON file")
		densPath = flag.String("densities", "", "density CSV file (segment_id,density)")
		preset   = flag.String("preset", "", "generate a preset dataset with traffic: D1, M1, M2, M3")
		schemeN  = flag.String("scheme", "ASG", "partitioning scheme: AG, NG, ASG, NSG")
		k        = flag.Int("k", 6, "number of partitions")
		autoK    = flag.Bool("autok", false, "select k by the ANS minimum over [2, kmax]")
		kmax     = flag.Int("kmax", 12, "upper bound for -autok")
		stabEps  = flag.Float64("stability", 0, "supernode stability threshold in [0,1] (0 = off)")
		seed     = flag.Uint64("seed", 1, "random seed")
		workers  = flag.Int("workers", 0, "worker goroutines for parallel stages (0 = GOMAXPROCS, 1 = serial; same result either way)")
		mlevel   = flag.String("multilevel", "auto", "multilevel coarsening path: auto (engage above the node threshold), on, off (see docs/SCALING.md)")
		timings  = flag.Bool("timings", false, "print the per-stage wall-clock breakdown (paper Table 3 layout)")
		outPath  = flag.String("out", "", "write segment,partition CSV here")
		svgPath  = flag.String("svg", "", "write an SVG map of the partitions here")
		geoPath  = flag.String("geojson", "", "write a GeoJSON FeatureCollection with partition properties here")
		cacheDir = flag.String("cache-dir", "", "read/write roadpart-cache/v1 result snapshots here (shared with roadpartd -cache-dir)")
		watchURL = flag.String("watch", "", "subscribe to a roadpartd density stream (e.g. http://localhost:8080) and print repartition events until interrupted; all partitioning flags are ignored")
		watchTry = flag.Int("watch-retries", 0, "give up -watch after this many consecutive failed reconnect attempts (0 = retry forever)")
		jobBase  = flag.String("submit", "", "submit the partition (or, with -autok, the k sweep) to a roadpartd daemon (e.g. http://localhost:8080) as a durable async job instead of computing locally")
		jobPoll  = flag.String("poll", "", "poll an async job by URL (as printed by -submit) and print its state; other flags are ignored")
		jobWait  = flag.Bool("wait", false, "with -submit or -poll, keep polling until the job is terminal, then fetch and print its result")
	)
	flag.Parse()

	if *watchURL != "" {
		if err := watch(*watchURL, *watchTry, watchBackoff, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if *jobPoll != "" {
		if err := pollJob(*jobPoll, *jobWait); err != nil {
			fatal(err)
		}
		return
	}

	net, err := loadNetwork(*netPath, *densPath, *preset)
	if err != nil {
		fatal(err)
	}
	scheme, err := parseScheme(*schemeN)
	if err != nil {
		fatal(err)
	}
	multilevel, err := core.ParseMultilevelMode(*mlevel)
	if err != nil {
		fatal(err)
	}
	if *jobBase != "" {
		if err := submitJob(*jobBase, jobRequest(net, *schemeN, *k, *kmax, *autoK, *stabEps, *seed, *workers, *mlevel), *jobWait); err != nil {
			fatal(err)
		}
		return
	}
	var store *resultcache.Store
	if *cacheDir != "" {
		if store, err = resultcache.OpenStore(*cacheDir); err != nil {
			fatal(err)
		}
	}
	linalg.SetWorkers(*workers)
	cfg := core.Config{K: *k, Scheme: scheme, StabilityEps: *stabEps, Seed: *seed, Workers: *workers, Multilevel: multilevel}

	p, err := core.NewPipeline(net, cfg)
	if err != nil {
		fatal(err)
	}
	if *autoK {
		best, err := bestK(store, p, net, cfg, *kmax)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("selected k=%d by ANS minimum\n", best)
		cfg.K = best
	}
	resp, cacheState, err := partition(store, p, net, cfg)
	if err != nil {
		fatal(err)
	}

	st := net.Stats()
	fmt.Printf("network: %d intersections, %d segments\n", st.Intersections, st.Segments)
	fmt.Printf("scheme:  %v (k=%d, k'=%d)\n", scheme, resp.K, resp.KPrime)
	if store != nil {
		fmt.Printf("cache:   %s\n", cacheState)
	}
	fmt.Printf("quality: inter=%.4f intra=%.4f GDBI=%.4f ANS=%.4f\n",
		resp.Report.Inter, resp.Report.Intra, resp.Report.GDBI, resp.Report.ANS)
	fmt.Printf("timing:  module1=%v module2=%v module3=%v total=%v\n",
		msDur(resp.Timing.Module1Ms), msDur(resp.Timing.Module2Ms),
		msDur(resp.Timing.Module3Ms), msDur(resp.Timing.TotalMs))

	sizes := make(map[int]int)
	for _, p := range resp.Assign {
		sizes[p]++
	}
	fmt.Printf("partition sizes:")
	for i := 0; i < resp.K; i++ {
		fmt.Printf(" %d", sizes[i])
	}
	fmt.Println()

	if *timings {
		fmt.Println()
		if err := obs.WriteStageTable(os.Stdout); err != nil {
			fatal(err)
		}
	}

	if *outPath != "" {
		if err := writeAssignment(*outPath, resp.Assign); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *outPath)
	}
	if *svgPath != "" {
		if err := writeSVG(*svgPath, net, resp); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *svgPath)
	}
	if *geoPath != "" {
		f, err := os.Create(*geoPath)
		if err != nil {
			fatal(err)
		}
		if err := net.WriteGeoJSON(f, resp.Assign); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *geoPath)
	}
}

// partition produces the partition result as a server.PartitionResponse —
// the same artifact POST /v1/partition serves — so that a -cache-dir shared
// with roadpartd lets either binary reuse the other's work. The returned
// state is "hit", "miss" or "off".
func partition(store *resultcache.Store, p *core.Pipeline, net *roadnet.Network, cfg core.Config) (*server.PartitionResponse, string, error) {
	key := resultcache.PartitionKey(net, cfg)
	if store != nil {
		if body, ok, err := store.Read(key); err == nil && ok {
			var resp server.PartitionResponse
			if json.Unmarshal(body, &resp) == nil {
				return &resp, "hit", nil
			}
		}
	}
	t0 := time.Now()
	res, err := p.PartitionK(cfg.K)
	if err != nil {
		return nil, "", err
	}
	resp := &server.PartitionResponse{
		Assign: res.Assign,
		K:      res.K,
		KPrime: res.KPrime,
		Report: res.Report,
		Timing: server.TimingJSON{
			Module1Ms: float64(res.Timing.Module1) / float64(time.Millisecond),
			Module2Ms: float64(res.Timing.Module2) / float64(time.Millisecond),
			Module3Ms: float64(res.Timing.Module3) / float64(time.Millisecond),
			TotalMs:   float64(res.Timing.Total) / float64(time.Millisecond),
		},
		Elapsed: time.Since(t0).String(),
	}
	if store == nil {
		return resp, "off", nil
	}
	body, err := json.Marshal(resp)
	if err != nil {
		return nil, "", err
	}
	if err := store.Write(key, body); err != nil {
		fmt.Fprintf(os.Stderr, "roadpart: cache write: %v\n", err)
	}
	return resp, "miss", nil
}

// bestK selects k by the ANS minimum over [2, kmax], consulting and
// updating the shared sweep snapshot when a store is configured.
func bestK(store *resultcache.Store, p *core.Pipeline, net *roadnet.Network, cfg core.Config, kmax int) (int, error) {
	key := resultcache.SweepKey(net, cfg, 2, kmax)
	if store != nil {
		if body, ok, err := store.Read(key); err == nil && ok {
			var resp server.SweepResponse
			if json.Unmarshal(body, &resp) == nil && resp.BestK >= 2 {
				return resp.BestK, nil
			}
		}
	}
	best, sweep, err := p.BestKByANS(2, kmax)
	if err != nil {
		return 0, err
	}
	if store != nil {
		resp := server.SweepResponse{BestK: best}
		for _, pt := range sweep {
			resp.Points = append(resp.Points, server.SweepPointJSON{K: pt.K, Report: pt.Result.Report})
		}
		if body, err := json.Marshal(resp); err == nil {
			if err := store.Write(key, body); err != nil {
				fmt.Fprintf(os.Stderr, "roadpart: cache write: %v\n", err)
			}
		}
	}
	return best, nil
}

// msDur renders a millisecond count the way a time.Duration prints.
func msDur(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond)).Round(time.Microsecond)
}

func writeSVG(path string, net *roadnet.Network, resp *server.PartitionResponse) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	title := fmt.Sprintf("k=%d ANS=%.4f", resp.K, resp.Report.ANS)
	if err := render.Partitions(f, net, resp.Assign, render.Options{Title: title}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadNetwork(netPath, densPath, preset string) (*roadnet.Network, error) {
	switch {
	case preset != "" && netPath != "":
		return nil, fmt.Errorf("use either -preset or -net, not both")
	case preset != "":
		ds, err := experiments.BuildDataset(preset, experiments.ScaleFull)
		if err != nil {
			return nil, err
		}
		return ds.Net, nil
	case netPath != "":
		var net *roadnet.Network
		var err error
		if strings.HasSuffix(netPath, ".geojson") {
			f, ferr := os.Open(netPath)
			if ferr != nil {
				return nil, ferr
			}
			net, err = roadnet.ReadGeoJSON(f, 1)
			f.Close()
		} else {
			net, err = roadnet.LoadJSON(netPath)
		}
		if err != nil {
			return nil, err
		}
		if densPath != "" {
			f, err := os.Open(densPath)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			if err := net.ReadDensitiesCSV(f); err != nil {
				return nil, err
			}
		}
		return net, nil
	default:
		return nil, fmt.Errorf("provide -net FILE or -preset NAME (see -h)")
	}
}

func parseScheme(s string) (core.Scheme, error) {
	switch s {
	case "AG":
		return core.AG, nil
	case "NG":
		return core.NG, nil
	case "ASG":
		return core.ASG, nil
	case "NSG":
		return core.NSG, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q (want AG, NG, ASG or NSG)", s)
	}
}

func writeAssignment(path string, assign []int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write([]string{"segment_id", "partition"}); err != nil {
		f.Close()
		return err
	}
	for i, p := range assign {
		if err := w.Write([]string{strconv.Itoa(i), strconv.Itoa(p)}); err != nil {
			f.Close()
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "roadpart:", err)
	os.Exit(1)
}
