package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"roadpart/internal/core"
)

func TestParseScheme(t *testing.T) {
	cases := map[string]core.Scheme{"AG": core.AG, "NG": core.NG, "ASG": core.ASG, "NSG": core.NSG}
	for name, want := range cases {
		got, err := parseScheme(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got != want {
			t.Fatalf("%s parsed to %v", name, got)
		}
	}
	if _, err := parseScheme("XYZ"); err == nil {
		t.Fatal("unknown scheme should error")
	}
}

func TestWriteAssignment(t *testing.T) {
	path := filepath.Join(t.TempDir(), "parts.csv")
	if err := writeAssignment(path, []int{2, 0, 1}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want header + 3", len(lines))
	}
	if lines[0] != "segment_id,partition" || lines[1] != "0,2" {
		t.Fatalf("unexpected contents: %q", lines[:2])
	}
}

func TestLoadNetworkValidation(t *testing.T) {
	if _, err := loadNetwork("", "", ""); err == nil {
		t.Fatal("no input should error")
	}
	if _, err := loadNetwork("x.json", "", "D1"); err == nil {
		t.Fatal("both -net and -preset should error")
	}
	if _, err := loadNetwork("/definitely/missing.json", "", ""); err == nil {
		t.Fatal("missing file should error")
	}
}
