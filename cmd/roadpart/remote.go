package main

// Remote-daemon client paths: the -watch SSE follower and the
// -submit/-poll/-wait async job client. Both reuse the server's own
// JSON document types so the CLI cannot drift from the API, and both
// lean on internal/jobs.Backoff so the client's reconnect cadence
// matches the retry policy documented in docs/TUNING.md.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"roadpart/internal/jobs"
	"roadpart/internal/roadnet"
	"roadpart/internal/server"
)

// watchBackoff paces -watch reconnects: capped exponential with
// jitter, the same policy shape the daemon applies to job retries.
var watchBackoff = jobs.Backoff{Base: time.Second, Max: 30 * time.Second, Factor: 2, Jitter: 0.2, Seed: 1}

// errWatchFatal marks failures retrying cannot fix (4xx: wrong URL,
// wrong daemon); watch gives up immediately instead of backing off.
var errWatchFatal = errors.New("watch: permanent failure")

// watch follows a roadpartd daemon's /v1/watch SSE feed and prints one
// line per repartition event. A dropped connection (EOF, network error,
// daemon restart) reconnects with capped exponential backoff instead of
// exiting; the daemon replays its most recent event to each new
// subscriber, so events at or below the last printed sequence number
// are skipped. maxRetries bounds consecutive reconnect attempts that
// yield no events (0 = retry forever).
func watch(base string, maxRetries int, bo jobs.Backoff, out io.Writer) error {
	url := strings.TrimRight(base, "/") + "/v1/watch"
	lastSeq := 0
	failures := 0
	for {
		events, err := watchOnce(url, &lastSeq, out)
		if errors.Is(err, errWatchFatal) {
			return err
		}
		if events > 0 {
			failures = 0
		}
		failures++
		if maxRetries > 0 && failures > maxRetries {
			if err == nil {
				err = io.EOF
			}
			return fmt.Errorf("watch: giving up after %d reconnect attempts: %w", maxRetries, err)
		}
		delay := bo.Delay(0, failures)
		if err != nil {
			fmt.Fprintf(os.Stderr, "watch: disconnected (%v); reconnecting in %v\n", err, delay)
		} else {
			fmt.Fprintf(os.Stderr, "watch: stream ended; reconnecting in %v\n", delay)
		}
		time.Sleep(delay)
	}
}

// watchOnce runs a single /v1/watch connection to its end and reports
// how many repartition events arrived (including replayed duplicates —
// a duplicate still proves a live stream).
func watchOnce(url string, lastSeq *int, out io.Writer) (int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		err := fmt.Errorf("%s answered %s", url, resp.Status)
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return 0, fmt.Errorf("%w: %v", errWatchFatal, err)
		}
		return 0, err
	}
	fmt.Fprintf(out, "watching %s\n", url)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	events := 0
	var event string
	var data strings.Builder
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, ":"):
			// keep-alive comment
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data.WriteString(strings.TrimPrefix(line, "data: "))
		case line == "":
			if event == "repartition" && data.Len() > 0 {
				events++
				var ev server.RepartitionEvent
				if err := json.Unmarshal([]byte(data.String()), &ev); err != nil {
					fmt.Fprintf(os.Stderr, "watch: undecodable event: %v\n", err)
				} else if ev.Seq > *lastSeq {
					*lastSeq = ev.Seq
					printRepartition(out, ev)
				}
			}
			event = ""
			data.Reset()
		}
	}
	return events, sc.Err()
}

// printRepartition renders one SSE event as a log line. The first frame
// of a stream has no predecessor, so its ARI prints as a dash.
func printRepartition(out io.Writer, ev server.RepartitionEvent) {
	ari := "—"
	if !math.IsNaN(ev.Frame.ARIvsPrev) {
		ari = fmt.Sprintf("%.3f", ev.Frame.ARIvsPrev)
	}
	fmt.Fprintf(out, "seq=%-4d snapshot=%-4d k=%-3d ans=%.4f ari=%s path=%-7s density=%s\n",
		ev.Seq, ev.Frame.Snapshot, ev.Frame.K, ev.Frame.Report.ANS, ari, ev.Frame.Path, ev.Density)
}

// jobRequest assembles the POST /v1/jobs document from the CLI flags:
// the partition the run would have computed locally, or — with -autok —
// the [2, kmax] sweep whose ANS minimum selects k.
func jobRequest(net *roadnet.Network, scheme string, k, kmax int, autoK bool, stabEps float64, seed uint64, workers int, multilevel string) *server.JobSubmitRequest {
	if autoK {
		return &server.JobSubmitRequest{
			Op:    "sweep",
			Sweep: &server.SweepRequest{Network: net, KMin: 2, KMax: kmax, Scheme: scheme, Seed: seed, Workers: workers, Multilevel: multilevel},
		}
	}
	return &server.JobSubmitRequest{
		Op:        "partition",
		Partition: &server.PartitionRequest{Network: net, K: k, Scheme: scheme, StabilityEps: stabEps, Seed: seed, Workers: workers, Multilevel: multilevel},
	}
}

// submitJob posts the job and prints its id and poll URL; with -wait it
// then polls in place until the job is terminal.
func submitJob(base string, req *server.JobSubmitRequest, wait bool) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	base = strings.TrimRight(base, "/")
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("submit: %s (%s)", resp.Status, readErr(resp.Body))
	}
	var sub server.JobSubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		return fmt.Errorf("submit: undecodable response: %w", err)
	}
	pollURL := base + "/v1/jobs/" + sub.Job.ID
	if loc := resp.Header.Get("Location"); loc != "" {
		pollURL = base + loc
	}
	if sub.Deduplicated {
		fmt.Printf("job %s already active for this request (deduplicated)\n", sub.Job.ID)
	} else {
		fmt.Printf("job %s accepted (%s, attempt limit %d)\n", sub.Job.ID, sub.Job.Op, sub.Job.MaxAttempts)
	}
	if wait {
		return pollJob(pollURL, true)
	}
	fmt.Printf("poll with: roadpart -poll %s -wait\n", pollURL)
	return nil
}

// pollJob prints a job's state; with wait it keeps polling until the
// job is terminal, printing a line per state or attempt change, and
// fetches the result of a done job.
func pollJob(url string, wait bool) error {
	url = strings.TrimRight(url, "/")
	var last string
	for {
		st, err := getJobStatus(url)
		if err != nil {
			return err
		}
		line := fmt.Sprintf("job %s state=%s attempt=%d/%d", st.Job.ID, st.Job.State, st.Job.Attempt, st.Job.MaxAttempts)
		if st.Job.Error != "" {
			line += " error=" + strconv.Quote(st.Job.Error)
		}
		if st.Job.RetryInMs > 0 {
			line += fmt.Sprintf(" retry_in=%dms", st.Job.RetryInMs)
		}
		if line != last {
			fmt.Println(line)
			last = line
		}
		switch {
		case st.Job.State == jobs.StateDone:
			if wait {
				return printJobResult(url+"/result", st.Job.Op)
			}
			fmt.Printf("result: %s\n", url+"/result")
			return nil
		case st.Job.State.Terminal():
			return fmt.Errorf("job %s ended %s: %s", st.Job.ID, st.Job.State, st.Job.Error)
		case !wait:
			return nil
		}
		time.Sleep(500 * time.Millisecond)
	}
}

func getJobStatus(url string) (server.JobStatusResponse, error) {
	var st server.JobStatusResponse
	resp, err := http.Get(url)
	if err != nil {
		return st, fmt.Errorf("poll: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("poll: %s (%s)", resp.Status, readErr(resp.Body))
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("poll: undecodable response: %w", err)
	}
	return st, nil
}

// printJobResult fetches a done job's body and prints the same summary
// the local run would have: the body is byte-identical to the
// synchronous endpoint's, so the server response types decode it.
func printJobResult(url, op string) error {
	resp, err := http.Get(url)
	if err != nil {
		return fmt.Errorf("result: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("result: %s (%s)", resp.Status, readErr(resp.Body))
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("result: %w", err)
	}
	switch op {
	case "partition":
		var pr server.PartitionResponse
		if err := json.Unmarshal(body, &pr); err != nil {
			return fmt.Errorf("result: undecodable partition body: %w", err)
		}
		fmt.Printf("k=%d k'=%d quality: inter=%.4f intra=%.4f GDBI=%.4f ANS=%.4f\n",
			pr.K, pr.KPrime, pr.Report.Inter, pr.Report.Intra, pr.Report.GDBI, pr.Report.ANS)
	case "sweep":
		var sw server.SweepResponse
		if err := json.Unmarshal(body, &sw); err != nil {
			return fmt.Errorf("result: undecodable sweep body: %w", err)
		}
		fmt.Printf("best k=%d by ANS minimum over %d sweep points\n", sw.BestK, len(sw.Points))
	default:
		fmt.Printf("%s\n", body)
	}
	return nil
}

// readErr condenses an error response body to a single log-friendly
// line.
func readErr(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 4096))
	return strings.Join(strings.Fields(string(b)), " ")
}
