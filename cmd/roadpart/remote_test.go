package main

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"roadpart/internal/gen"
	"roadpart/internal/jobs"
	"roadpart/internal/roadnet"
	"roadpart/internal/server"
	"roadpart/internal/traffic"
)

// fastWatchBackoff keeps reconnect tests quick and deterministic.
var fastWatchBackoff = jobs.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond, Factor: 2, Jitter: -1, Seed: 1}

func sseEvent(w http.ResponseWriter, seq int) {
	fmt.Fprintf(w, "event: repartition\ndata: {\"seq\":%d,\"density\":\"t%d\",\"frame\":{\"snapshot\":%d,\"k\":4}}\n\n", seq, seq, seq)
}

// TestWatchReconnectAndDedupe drops the stream after each connection:
// watch must reconnect instead of exiting on the first EOF, must skip
// the replayed event it already printed, and must stop immediately on a
// permanent (4xx) answer.
func TestWatchReconnectAndDedupe(t *testing.T) {
	var conns atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/watch" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		switch conns.Add(1) {
		case 1:
			fmt.Fprint(w, ": subscribed\n\n")
			sseEvent(w, 1)
		case 2:
			sseEvent(w, 1) // replay-on-connect duplicate
			sseEvent(w, 2)
		default:
			http.Error(w, "stream gone", http.StatusNotFound)
		}
	}))
	defer srv.Close()

	var out bytes.Buffer
	err := watch(srv.URL, 0, fastWatchBackoff, &out)
	if !errors.Is(err, errWatchFatal) {
		t.Fatalf("watch err = %v, want errWatchFatal after the 404", err)
	}
	if got := conns.Load(); got != 3 {
		t.Fatalf("connections = %d, want 3 (two streams + the fatal answer)", got)
	}
	for seq, want := range map[string]int{"seq=1 ": 1, "seq=2 ": 1} {
		if got := strings.Count(out.String(), seq); got != want {
			t.Errorf("output has %d %q lines, want %d (replay must dedupe):\n%s", got, seq, want, out.String())
		}
	}
}

// TestWatchGivesUpAfterRetries bounds reconnection: consecutive
// attempts that yield no events stop after -watch-retries.
func TestWatchGivesUpAfterRetries(t *testing.T) {
	var conns atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conns.Add(1)
		http.Error(w, "warming up", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	var out bytes.Buffer
	err := watch(srv.URL, 2, fastWatchBackoff, &out)
	if err == nil || !strings.Contains(err.Error(), "giving up") {
		t.Fatalf("watch err = %v, want a giving-up error", err)
	}
	if got := conns.Load(); got != 3 {
		t.Fatalf("connections = %d, want the initial attempt + the retry budget of 2", got)
	}
}

func clientTestNet(t *testing.T) *roadnet.Network {
	t.Helper()
	net, err := gen.City(gen.CityConfig{TargetIntersections: 60, TargetSegments: 110, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := traffic.SyntheticField(net, traffic.FieldConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := traffic.ApplySnapshot(net, snap); err != nil {
		t.Fatal(err)
	}
	return net
}

// TestJobClientRoundTrip drives submitJob/pollJob against a real
// in-process daemon: submit accepts, wait polls to done, and the result
// fetch succeeds.
func TestJobClientRoundTrip(t *testing.T) {
	srv := httptest.NewServer(server.New())
	defer srv.Close()

	net := clientTestNet(t)
	req := jobRequest(net, "ASG", 4, 0, false, 0, 1, 1, "auto")
	if req.Op != "partition" || req.Partition == nil || req.Partition.K != 4 {
		t.Fatalf("jobRequest built %+v, want a k=4 partition", req)
	}
	if err := submitJob(srv.URL, req, true); err != nil {
		t.Fatalf("submit+wait: %v", err)
	}

	sweep := jobRequest(net, "ASG", 0, 5, true, 0, 1, 1, "auto")
	if sweep.Op != "sweep" || sweep.Sweep == nil || sweep.Sweep.KMax != 5 {
		t.Fatalf("jobRequest built %+v, want a k<=5 sweep", sweep)
	}
	if err := submitJob(srv.URL, sweep, true); err != nil {
		t.Fatalf("sweep submit+wait: %v", err)
	}

	if err := pollJob(srv.URL+"/v1/jobs/j999999-0000000000000000", false); err == nil {
		t.Fatal("polling an unknown job should error")
	}
}
