// Command roadpartd serves the partitioning framework over HTTP.
//
//	roadpartd -addr :8080
//
// Endpoints (JSON bodies; see internal/server and docs/API.md):
//
//	POST /v1/partition  — {"network": {...}, "k": 6, "scheme": "ASG"}
//	POST /v1/sweep      — {"network": {...}, "k_min": 2, "k_max": 12}
//	POST /v1/jobs       — {"op": "partition", "partition": {...}} → 202 +
//	                      job id; a bounded worker pool runs the compute
//	                      with retry/backoff and a dead-letter state
//	GET  /v1/jobs/{id}  — poll the job state machine; DELETE cancels;
//	                      GET /v1/jobs/{id}/result serves the finished body
//	POST /v1/render     — {"network": {...}, "assign": [...]} → SVG
//	POST /v1/densities  — {"network": {...}, "densities": [...]} then
//	                      {"updates": [{"segment": 17, "density": 0.4}]};
//	                      each call advances the incremental repartitioning
//	                      stream and returns the resulting frame
//	GET  /v1/watch      — Server-Sent Events feed of the stream's
//	                      repartition events (long-lived; raise or zero
//	                      -write-timeout for watchers that must outlive it)
//	GET  /v1/healthz
//	GET  /v1/metrics    — Prometheus text exposition
//	GET  /v1/stats      — JSON metrics snapshot + process info
//
// -pprof additionally mounts net/http/pprof under /debug/pprof/ for CPU
// and heap profiling of live sweeps (see docs/TUNING.md
// § Observability).
//
// The transport is guarded by -read-header-timeout, -read-timeout,
// -write-timeout and -idle-timeout; the compute behind each request by
// -request-timeout (clients may lower it per request with timeout_ms,
// capped at -max-request-timeout); and total load by -max-inflight,
// -max-queue and -queue-wait (admission control — 429/503 with
// Retry-After once saturated; off by default). docs/TUNING.md § Failure
// modes describes how these degrade under overload.
//
// Repeated identical partition/sweep requests are answered from a
// content-addressed result cache (-cache-max-bytes, 256 MiB by default;
// 0 disables) without consuming a compute slot; responses carry an
// X-Roadpart-Cache: hit|miss header. With -cache-dir the cache also
// persists roadpart-cache/v1 snapshot files and warms from them at
// startup, so a restarted daemon keeps its hot set (see docs/FORMATS.md
// and docs/TUNING.md § Result caching).
//
// With -self and -peers, N daemons form a shared-nothing cluster:
// rendezvous hashing over the result-cache fingerprints assigns each
// (structure, density, config) to exactly one shard, and the other
// shards forward matching requests there, so the cluster's aggregate
// hit rate matches one big daemon's instead of N cold caches. Responses
// crossing the hop carry X-Roadpart-Cache: remote-hit|remote-miss and
// X-Roadpart-Shard names the shard that computed. A dead peer degrades
// hit rate, not availability (the receiving shard computes locally).
// Clients need no changes — any shard answers any request correctly.
// See docs/DISTRIBUTED.md for ring semantics and failure modes.
//
// Async jobs are durable when -jobs-dir is set: submissions and state
// transitions are written to a roadpart-jobs/v1 journal before they are
// acknowledged, and a restarted daemon replays incomplete jobs. The pool
// is tuned by -jobs-workers, -jobs-queue-depth, -jobs-max-attempts,
// -jobs-attempt-timeout, -jobs-retry-base and -jobs-retry-max (see
// docs/TUNING.md § Retries & backoff).
//
// SIGINT or SIGTERM triggers a graceful shutdown: the listener closes
// immediately, in-flight requests get -drain to finish, the job
// subsystem checkpoints interrupted attempts back into the journal, then
// the process exits.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"roadpart/internal/core"
	"roadpart/internal/linalg"
	"roadpart/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "default worker count for parallel stages (0 = GOMAXPROCS)")
	drain := flag.Duration("drain", 30*time.Second, "grace period for in-flight requests on shutdown")
	withPprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")

	// Transport timeouts: protect the listener from slow or stalled
	// clients (slowloris headers, bodies that trickle, readers that
	// never drain the response).
	readHeaderTimeout := flag.Duration("read-header-timeout", 10*time.Second, "time limit for reading request headers")
	readTimeout := flag.Duration("read-timeout", 2*time.Minute, "time limit for reading an entire request")
	writeTimeout := flag.Duration("write-timeout", 10*time.Minute, "time limit for writing a response (large sweeps take a while)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "keep-alive idle connection limit")

	// Compute budgets and admission: bound the pipeline work behind
	// each request and shed load once saturated (see docs/API.md).
	requestTimeout := flag.Duration("request-timeout", 5*time.Minute, "default compute deadline per request; 0 = none")
	maxRequestTimeout := flag.Duration("max-request-timeout", 10*time.Minute, "cap for client-supplied timeout_ms")
	maxInFlight := flag.Int("max-inflight", 0, "max concurrently computing partition/sweep requests; 0 = unlimited")
	maxQueue := flag.Int("max-queue", 16, "max requests queued for a compute slot before shedding with 429")
	queueWait := flag.Duration("queue-wait", 5*time.Second, "max time a queued request waits for a slot before shedding with 503")

	// Result cache: repeated identical partition/sweep requests replay
	// the first response byte for byte instead of recomputing.
	cacheMaxBytes := flag.Int64("cache-max-bytes", 256<<20, "in-memory result cache budget in bytes; 0 disables caching")
	cacheDir := flag.String("cache-dir", "", "directory for roadpart-cache/v1 snapshots; warms the cache on restart (empty = memory only)")

	// Async jobs: POST /v1/jobs runs partitions and sweeps through a
	// bounded worker pool with retry/backoff, journaled for
	// crash-recovery when -jobs-dir is set.
	jobsDir := flag.String("jobs-dir", "", "directory for the roadpart-jobs/v1 journal; replays incomplete jobs on restart (empty = memory only, jobs die with the process)")
	jobWorkers := flag.Int("jobs-workers", 2, "async job worker pool size")
	jobQueueDepth := flag.Int("jobs-queue-depth", 64, "max queued+running async jobs before submissions shed with 429")
	jobMaxAttempts := flag.Int("jobs-max-attempts", 3, "attempts per async job before it dead-letters as failed")
	jobAttemptTimeout := flag.Duration("jobs-attempt-timeout", 0, "compute deadline per job attempt; 0 = inherit -request-timeout")
	jobRetryBase := flag.Duration("jobs-retry-base", time.Second, "base delay between job attempts (doubles per attempt, jittered)")
	jobRetryMax := flag.Duration("jobs-retry-max", time.Minute, "cap on the delay between job attempts")
	multilevel := flag.String("multilevel", "auto", "default multilevel coarsening path for requests that don't set it: auto, on, off (see docs/SCALING.md)")

	// Sharded multi-daemon mode: with -self and -peers set, every
	// content-addressed request is routed to the shard whose rendezvous
	// position owns its fingerprint (docs/DISTRIBUTED.md). Clients stay
	// dumb — any shard answers any request correctly.
	self := flag.String("self", "", "this daemon's advertised base URL, e.g. http://10.0.0.1:8080; enables sharded mode together with -peers")
	peerList := flag.String("peers", "", "comma-separated peer base URLs (the full cluster, with or without -self); every daemon must be started with the same set")
	peerTimeout := flag.Duration("peer-timeout", 0, "time limit for one forwarded peer exchange; 0 = -max-request-timeout plus headroom")
	flag.Parse()

	if _, err := core.ParseMultilevelMode(*multilevel); err != nil {
		log.Fatalf("roadpartd: %v", err)
	}
	var peerURLs []string
	for _, p := range strings.Split(*peerList, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerURLs = append(peerURLs, p)
		}
	}
	if len(peerURLs) > 0 && *self == "" {
		log.Fatalf("roadpartd: -peers requires -self (the daemon must know its own base URL to find itself on the ring)")
	}
	linalg.SetWorkers(*workers)
	svc, err := server.NewService(server.Config{
		Workers:           *workers,
		Multilevel:        *multilevel,
		DefaultTimeout:    *requestTimeout,
		MaxTimeout:        *maxRequestTimeout,
		MaxInFlight:       *maxInFlight,
		MaxQueue:          *maxQueue,
		QueueWait:         *queueWait,
		CacheMaxBytes:     *cacheMaxBytes,
		CacheDir:          *cacheDir,
		JobDir:            *jobsDir,
		JobWorkers:        *jobWorkers,
		JobQueueDepth:     *jobQueueDepth,
		JobMaxAttempts:    *jobMaxAttempts,
		JobAttemptTimeout: *jobAttemptTimeout,
		JobRetryBase:      *jobRetryBase,
		JobRetryMax:       *jobRetryMax,
		Self:              *self,
		Peers:             peerURLs,
		PeerTimeout:       *peerTimeout,
	})
	if err != nil {
		log.Fatalf("roadpartd: %v", err)
	}
	if *self != "" {
		log.Printf("roadpartd sharded mode: self=%s peers=%s", *self, *peerList)
	}
	if *jobsDir == "" {
		log.Printf("roadpartd jobs are memory-only (set -jobs-dir for a crash-recovery journal)")
	} else {
		log.Printf("roadpartd journaling jobs under %s", *jobsDir)
	}
	var handler http.Handler = svc
	if *withPprof {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Printf("roadpartd pprof enabled at /debug/pprof/")
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("roadpartd listening on %s", *addr)
		errCh <- srv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errCh:
		// ListenAndServe only returns on failure to serve (the graceful
		// path goes through Shutdown below), so this is always fatal.
		log.Fatal(err)
	case sig := <-sigCh:
		log.Printf("roadpartd received %v, draining for up to %v", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("roadpartd shutdown: %v", err)
			os.Exit(1)
		}
		// Drain the job pool: interrupted attempts checkpoint back into
		// the journal so a restarted daemon re-runs them without burning
		// their retry budget.
		if err := svc.Close(ctx); err != nil {
			log.Printf("roadpartd job drain: %v", err)
		}
		// Shutdown makes ListenAndServe return ErrServerClosed; collect it
		// so the serving goroutine finishes before we exit.
		if err := <-errCh; err != nil && err != http.ErrServerClosed {
			log.Printf("roadpartd serve: %v", err)
		}
		log.Printf("roadpartd shut down cleanly")
	}
}
