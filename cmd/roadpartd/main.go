// Command roadpartd serves the partitioning framework over HTTP.
//
//	roadpartd -addr :8080
//
// Endpoints (JSON bodies; see internal/server):
//
//	POST /v1/partition  — {"network": {...}, "k": 6, "scheme": "ASG"}
//	POST /v1/sweep      — {"network": {...}, "k_min": 2, "k_max": 12}
//	GET  /v1/healthz
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"roadpart/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	srv := &http.Server{
		Addr:         *addr,
		Handler:      server.New(),
		ReadTimeout:  2 * time.Minute,
		WriteTimeout: 10 * time.Minute, // large sweeps take a while
	}
	log.Printf("roadpartd listening on %s", *addr)
	if err := srv.ListenAndServe(); err != http.ErrServerClosed {
		log.Fatal(err)
	}
}
