// Package roadpart partitions large urban road networks into spatially
// connected regions of homogeneous traffic congestion, implementing the
// two-level spectral framework of Anwar, Liu, Vu and Leckie, "Spatial
// Partitioning of Large Urban Road Networks" (EDBT 2014): road-graph
// construction, road-supergraph mining, and the k-way α-Cut.
//
// This package is the public facade; the implementation lives under
// internal/. A minimal session:
//
//	net, _ := roadpart.GenerateCity(roadpart.CityConfig{
//		TargetIntersections: 400, TargetSegments: 750, Seed: 42,
//	})
//	snaps, _ := roadpart.SimulateTraffic(net, roadpart.TrafficConfig{Vehicles: 2000, Seed: 7})
//	roadpart.ApplyDensities(net, snaps[len(snaps)-1])
//
//	res, _ := roadpart.Partition(net, roadpart.Config{K: 6, Scheme: roadpart.ASG, Seed: 1})
//	for seg, region := range res.Assign { ... }
//
// Or let the framework pick k by the paper's ANS-minimum rule:
//
//	p, _ := roadpart.NewPipeline(net, roadpart.Config{Scheme: roadpart.ASG, Seed: 1})
//	k, _, _ := p.BestKByANS(2, 12)
//	res, _ := p.PartitionK(k)
//
// Networks round-trip through JSON (LoadNetwork/SaveNetwork) with
// densities in CSV, so real city exports plug in wherever the generators
// are used. See the examples/ directory for complete programs and
// DESIGN.md / EXPERIMENTS.md for the reproduction study.
package roadpart
