package roadpart

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links/images: [text](target). Reference
// definitions and autolinks are rare in this repo and external anyway.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)[^)]*\)`)

// TestDocsLinks walks every Markdown file in the repository (root and
// docs/) and fails on relative links whose target file does not exist.
// It is the link-rot gate behind `make docs-check`; external URLs are
// not fetched.
func TestDocsLinks(t *testing.T) {
	files := markdownFiles(t)
	checked := 0
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external; not fetched
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue // in-page anchor
			}
			resolved := filepath.Join(filepath.Dir(file), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken relative link %q (resolved %s)", file, m[1], resolved)
			}
			checked++
		}
	}
	t.Logf("checked %d relative links across %d markdown files", checked, len(files))
}

// markdownFiles returns every tracked Markdown file in the repository
// root and docs/ tree, failing the test if none are found.
func markdownFiles(t *testing.T) []string {
	t.Helper()
	var files []string
	for _, glob := range []string{"*.md", "docs/*.md", "docs/**/*.md"} {
		m, err := filepath.Glob(glob)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, m...)
	}
	if len(files) == 0 {
		t.Fatal("no markdown files found — test running from the wrong directory?")
	}
	return files
}

// makeMention matches `make <target>` inside a Markdown code span or
// fenced block. Restricting to word characters and dashes keeps prose
// like "make sure" out: those never appear as `make xyz` in backticks
// or as a command line.
var makeMention = regexp.MustCompile("(?m)(?:`|^[ \t]*\\$? ?)make ([a-z][a-z0-9-]*)")

// makefileTarget matches a rule definition line in the Makefile.
var makefileTarget = regexp.MustCompile(`(?m)^([a-z][a-z0-9-]*):`)

// TestDocsMakeTargetsExist cross-checks every `make <target>` mention in
// the repository's Markdown against the Makefile's actual rules, so docs
// cannot advertise a target that was renamed or removed.
func TestDocsMakeTargetsExist(t *testing.T) {
	mk, err := os.ReadFile("Makefile")
	if err != nil {
		t.Fatal(err)
	}
	targets := map[string]bool{}
	for _, m := range makefileTarget.FindAllStringSubmatch(string(mk), -1) {
		targets[m[1]] = true
	}
	if len(targets) == 0 {
		t.Fatal("no targets parsed from Makefile")
	}

	mentions := 0
	for _, file := range markdownFiles(t) {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range makeMention.FindAllStringSubmatch(string(data), -1) {
			mentions++
			if !targets[m[1]] {
				t.Errorf("%s mentions `make %s` but the Makefile has no %q target", file, m[1], m[1])
			}
		}
	}
	if mentions == 0 {
		t.Fatal("no `make <target>` mentions found in any markdown file — regex drift?")
	}
	t.Logf("checked %d make-target mentions against %d Makefile targets", mentions, len(targets))
}

// goldenDocRow matches a row of the golden-hash table of record in
// docs/NUMERICS.md: `| D1/AG | `0x…` |`.
var goldenDocRow = regexp.MustCompile("(?m)^\\|\\s*([DM]\\d+/[A-Z]+)\\s*\\|\\s*`(0x[0-9a-f]{1,16})`\\s*\\|")

// goldenSourceEntry matches an entry of the preContextGolden map in
// internal/core/ctx_test.go: `"D1/AG":  0xbfd57440d12e6bb4,`.
var goldenSourceEntry = regexp.MustCompile(`"([DM]\d+/[A-Z]+)":\s*(0x[0-9a-f]{1,16}),`)

// TestNumericsGoldenTable pins docs/NUMERICS.md's golden-hash table of
// record to the hashes the test suite actually asserts: every entry of
// the preContextGolden map in internal/core/ctx_test.go must appear in
// the doc's table with the identical hash, and vice versa. The goldens
// and their documented invariance argument can therefore only move
// together — `make numerics-check` runs exactly this test.
func TestNumericsGoldenTable(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("docs", "NUMERICS.md"))
	if err != nil {
		t.Fatal(err)
	}
	documented := map[string]string{}
	for _, m := range goldenDocRow.FindAllStringSubmatch(string(doc), -1) {
		documented[m[1]] = m[2]
	}
	if len(documented) == 0 {
		t.Fatal("docs/NUMERICS.md has no parsable golden-hash table rows — regex drift?")
	}

	src, err := os.ReadFile(filepath.Join("internal", "core", "ctx_test.go"))
	if err != nil {
		t.Fatal(err)
	}
	asserted := map[string]string{}
	for _, m := range goldenSourceEntry.FindAllStringSubmatch(string(src), -1) {
		asserted[m[1]] = m[2]
	}
	if len(asserted) == 0 {
		t.Fatal("internal/core/ctx_test.go has no parsable preContextGolden entries — regex drift?")
	}

	for key, hash := range asserted {
		switch got := documented[key]; got {
		case "":
			t.Errorf("sweep %s is pinned in ctx_test.go (%s) but missing from the NUMERICS.md table", key, hash)
		case hash:
		default:
			t.Errorf("sweep %s: NUMERICS.md documents %s but ctx_test.go asserts %s", key, got, hash)
		}
	}
	for key := range documented {
		if _, ok := asserted[key]; !ok {
			t.Errorf("sweep %s appears in the NUMERICS.md table but is not asserted in ctx_test.go", key)
		}
	}
	t.Logf("cross-checked %d golden hashes between docs/NUMERICS.md and ctx_test.go", len(asserted))
}

// numericsSymbol matches a backtick-quoted qualified Go identifier in
// docs/NUMERICS.md, e.g. `eigen.RankOneOp` or `core.Config.ColdWiden`.
// Only packages the doc actually covers are resolved.
var numericsSymbol = regexp.MustCompile("`(eigen|cut|core|kmeans|linalg|temporal)\\.([A-Z]\\w*)((?:\\.\\w+)*)`")

// checkDocSymbols verifies every qualified symbol the given regexp
// extracts from the doc against the source tree: the leading identifier
// must be declared in the named internal package (type, func, var,
// const or method), and any trailing selector components must at least
// occur as identifiers there. Documentation checked this way cannot
// drift to symbols that were renamed away.
func checkDocSymbols(t *testing.T, docPath string, symbol *regexp.Regexp) {
	t.Helper()
	doc, err := os.ReadFile(docPath)
	if err != nil {
		t.Fatal(err)
	}
	mentions := symbol.FindAllStringSubmatch(string(doc), -1)
	if len(mentions) == 0 {
		t.Fatalf("%s names no qualified symbols — regex drift?", docPath)
	}

	pkgSource := map[string]string{}
	source := func(pkg string) string {
		if src, ok := pkgSource[pkg]; ok {
			return src
		}
		files, err := filepath.Glob(filepath.Join("internal", pkg, "*.go"))
		if err != nil || len(files) == 0 {
			t.Fatalf("no Go sources for internal/%s (%v)", pkg, err)
		}
		var sb strings.Builder
		for _, f := range files {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			sb.Write(data)
			sb.WriteByte('\n')
		}
		pkgSource[pkg] = sb.String()
		return pkgSource[pkg]
	}

	checked := map[string]bool{}
	for _, m := range mentions {
		pkg, sym, rest := m[1], m[2], m[3]
		full := m[0]
		if checked[full] {
			continue
		}
		checked[full] = true
		src := source(pkg)
		decl := regexp.MustCompile(`(?m)^(?:func (?:\([^)]+\) )?|type |var |const )` + sym + `\b|^\t` + sym + ` `)
		if !decl.MatchString(src) {
			t.Errorf("%s mentions %s but internal/%s declares no %q", docPath, full, pkg, sym)
			continue
		}
		for _, part := range strings.Split(strings.TrimPrefix(rest, "."), ".") {
			if part == "" {
				continue
			}
			if !regexp.MustCompile(`\b` + part + `\b`).MatchString(src) {
				t.Errorf("%s mentions %s but %q does not occur in internal/%s", docPath, full, part, pkg)
			}
		}
	}
	t.Logf("resolved %d distinct qualified symbols from %s", len(checked), docPath)
}

// TestNumericsSymbolReferences applies checkDocSymbols to
// docs/NUMERICS.md.
func TestNumericsSymbolReferences(t *testing.T) {
	checkDocSymbols(t, filepath.Join("docs", "NUMERICS.md"), numericsSymbol)
}

// scalingSymbol matches a backtick-quoted qualified Go identifier in
// docs/SCALING.md, e.g. `coarsen.Build` or `core.Config.Multilevel`.
// Only packages the doc actually covers are resolved.
var scalingSymbol = regexp.MustCompile("`(coarsen|cut|core|gen|graph|traffic|metrics)\\.([A-Z]\\w*)((?:\\.\\w+)*)`")

// TestScalingSymbolReferences applies checkDocSymbols to
// docs/SCALING.md.
func TestScalingSymbolReferences(t *testing.T) {
	checkDocSymbols(t, filepath.Join("docs", "SCALING.md"), scalingSymbol)
}

// distributedSymbol matches a backtick-quoted qualified Go identifier
// in docs/DISTRIBUTED.md, e.g. `peers.Ring.Owner` or
// `jobs.FingerprintFromID`. Only packages the doc actually covers are
// resolved.
var distributedSymbol = regexp.MustCompile("`(peers|server|jobs|resultcache|obs)\\.([A-Z]\\w*)((?:\\.\\w+)*)`")

// TestDistributedSymbolReferences applies checkDocSymbols to
// docs/DISTRIBUTED.md, so the distributed-serving documentation cannot
// drift away from the ring, transport and forwarding symbols it names.
func TestDistributedSymbolReferences(t *testing.T) {
	checkDocSymbols(t, filepath.Join("docs", "DISTRIBUTED.md"), distributedSymbol)
}

// benchMention matches a Go benchmark identifier in prose or code,
// including sub-benchmark paths like `BenchmarkScale/tier=L`.
var benchMention = regexp.MustCompile(`\bBenchmark[A-Z]\w*(?:/[\w=.-]+)*`)

// benchDecl matches a benchmark function declaration in a _test.go file.
var benchDecl = regexp.MustCompile(`(?m)^func (Benchmark[A-Z]\w*)\(`)

// testSources concatenates every _test.go file in the repository
// (memoized per test run via the returned values being reused by the
// callers below) and collects the declared benchmark names.
func testSources(t *testing.T) (declared map[string]bool, allSource string) {
	t.Helper()
	declared = map[string]bool{}
	var sb strings.Builder
	err := filepath.Walk(".", func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			if name := info.Name(); name != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		sb.Write(data)
		sb.WriteByte('\n')
		for _, m := range benchDecl.FindAllStringSubmatch(string(data), -1) {
			declared[m[1]] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return declared, sb.String()
}

// checkDocBenchmarks verifies every benchmark named in the given doc
// against the test sources: the base name must be declared as a
// benchmark function, and each sub-benchmark path segment (the `tier=L`
// of `BenchmarkScale/tier=L`) must occur as a quoted string literal in
// some _test.go file — the b.Run name that produces it.
func checkDocBenchmarks(t *testing.T, docPath string) {
	t.Helper()
	doc, err := os.ReadFile(docPath)
	if err != nil {
		t.Fatal(err)
	}
	mentioned := map[string]bool{}
	for _, m := range benchMention.FindAllString(string(doc), -1) {
		mentioned[m] = true
	}
	if len(mentioned) == 0 {
		t.Fatalf("%s names no benchmarks — regex drift?", docPath)
	}

	declared, src := testSources(t)
	for name := range mentioned {
		segments := strings.Split(name, "/")
		if !declared[segments[0]] {
			t.Errorf("%s names %s but no _test.go file declares %s", docPath, name, segments[0])
			continue
		}
		for _, seg := range segments[1:] {
			if !strings.Contains(src, `"`+seg+`"`) {
				t.Errorf("%s names %s but no _test.go file contains the sub-benchmark literal %q", docPath, name, seg)
			}
		}
	}
	t.Logf("checked %d benchmark names from %s against %d declared benchmarks", len(mentioned), docPath, len(declared))
}

// TestPerformanceDocBenchmarksExist verifies that every benchmark named
// in docs/PERFORMANCE.md is declared in some _test.go file, so the
// performance documentation cannot reference benchmarks that no longer
// run under `make bench`.
func TestPerformanceDocBenchmarksExist(t *testing.T) {
	checkDocBenchmarks(t, filepath.Join("docs", "PERFORMANCE.md"))
}

// TestScalingDocBenchmarksExist applies the same gate to
// docs/SCALING.md, whose scale-tier table cites the BenchmarkScale
// sub-benchmarks by their full `tier=…` paths, and additionally checks
// the Test functions it cites (TestScaleSmokeXL and friends) exist.
func TestScalingDocBenchmarksExist(t *testing.T) {
	checkDocBenchmarks(t, filepath.Join("docs", "SCALING.md"))

	doc, err := os.ReadFile(filepath.Join("docs", "SCALING.md"))
	if err != nil {
		t.Fatal(err)
	}
	_, src := testSources(t)
	tests := 0
	for _, m := range regexp.MustCompile(`\bTest[A-Z]\w*`).FindAllString(string(doc), -1) {
		tests++
		if !regexp.MustCompile(`(?m)^func ` + m + `\(`).MatchString(src) {
			t.Errorf("docs/SCALING.md names %s but no _test.go file declares it", m)
		}
	}
	if tests == 0 {
		t.Fatal("docs/SCALING.md names no Test functions — regex drift?")
	}
}
