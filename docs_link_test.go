package roadpart

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links/images: [text](target). Reference
// definitions and autolinks are rare in this repo and external anyway.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)[^)]*\)`)

// TestDocsLinks walks every Markdown file in the repository (root and
// docs/) and fails on relative links whose target file does not exist.
// It is the link-rot gate behind `make docs-check`; external URLs are
// not fetched.
func TestDocsLinks(t *testing.T) {
	var files []string
	for _, glob := range []string{"*.md", "docs/*.md", "docs/**/*.md"} {
		m, err := filepath.Glob(glob)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, m...)
	}
	if len(files) == 0 {
		t.Fatal("no markdown files found — test running from the wrong directory?")
	}

	checked := 0
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external; not fetched
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue // in-page anchor
			}
			resolved := filepath.Join(filepath.Dir(file), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken relative link %q (resolved %s)", file, m[1], resolved)
			}
			checked++
		}
	}
	t.Logf("checked %d relative links across %d markdown files", checked, len(files))
}
