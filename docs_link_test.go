package roadpart

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links/images: [text](target). Reference
// definitions and autolinks are rare in this repo and external anyway.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)[^)]*\)`)

// TestDocsLinks walks every Markdown file in the repository (root and
// docs/) and fails on relative links whose target file does not exist.
// It is the link-rot gate behind `make docs-check`; external URLs are
// not fetched.
func TestDocsLinks(t *testing.T) {
	files := markdownFiles(t)
	checked := 0
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external; not fetched
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue // in-page anchor
			}
			resolved := filepath.Join(filepath.Dir(file), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken relative link %q (resolved %s)", file, m[1], resolved)
			}
			checked++
		}
	}
	t.Logf("checked %d relative links across %d markdown files", checked, len(files))
}

// markdownFiles returns every tracked Markdown file in the repository
// root and docs/ tree, failing the test if none are found.
func markdownFiles(t *testing.T) []string {
	t.Helper()
	var files []string
	for _, glob := range []string{"*.md", "docs/*.md", "docs/**/*.md"} {
		m, err := filepath.Glob(glob)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, m...)
	}
	if len(files) == 0 {
		t.Fatal("no markdown files found — test running from the wrong directory?")
	}
	return files
}

// makeMention matches `make <target>` inside a Markdown code span or
// fenced block. Restricting to word characters and dashes keeps prose
// like "make sure" out: those never appear as `make xyz` in backticks
// or as a command line.
var makeMention = regexp.MustCompile("(?m)(?:`|^[ \t]*\\$? ?)make ([a-z][a-z0-9-]*)")

// makefileTarget matches a rule definition line in the Makefile.
var makefileTarget = regexp.MustCompile(`(?m)^([a-z][a-z0-9-]*):`)

// TestDocsMakeTargetsExist cross-checks every `make <target>` mention in
// the repository's Markdown against the Makefile's actual rules, so docs
// cannot advertise a target that was renamed or removed.
func TestDocsMakeTargetsExist(t *testing.T) {
	mk, err := os.ReadFile("Makefile")
	if err != nil {
		t.Fatal(err)
	}
	targets := map[string]bool{}
	for _, m := range makefileTarget.FindAllStringSubmatch(string(mk), -1) {
		targets[m[1]] = true
	}
	if len(targets) == 0 {
		t.Fatal("no targets parsed from Makefile")
	}

	mentions := 0
	for _, file := range markdownFiles(t) {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range makeMention.FindAllStringSubmatch(string(data), -1) {
			mentions++
			if !targets[m[1]] {
				t.Errorf("%s mentions `make %s` but the Makefile has no %q target", file, m[1], m[1])
			}
		}
	}
	if mentions == 0 {
		t.Fatal("no `make <target>` mentions found in any markdown file — regex drift?")
	}
	t.Logf("checked %d make-target mentions against %d Makefile targets", mentions, len(targets))
}

// benchMention matches a Go benchmark identifier in prose or code.
var benchMention = regexp.MustCompile(`\bBenchmark[A-Z]\w*`)

// benchDecl matches a benchmark function declaration in a _test.go file.
var benchDecl = regexp.MustCompile(`(?m)^func (Benchmark[A-Z]\w*)\(`)

// TestPerformanceDocBenchmarksExist verifies that every benchmark named
// in docs/PERFORMANCE.md is declared in some _test.go file, so the
// performance documentation cannot reference benchmarks that no longer
// run under `make bench`.
func TestPerformanceDocBenchmarksExist(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("docs", "PERFORMANCE.md"))
	if err != nil {
		t.Fatal(err)
	}
	mentioned := map[string]bool{}
	for _, m := range benchMention.FindAllString(string(doc), -1) {
		mentioned[m] = true
	}
	if len(mentioned) == 0 {
		t.Fatal("docs/PERFORMANCE.md names no benchmarks — regex drift?")
	}

	declared := map[string]bool{}
	err = filepath.Walk(".", func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			if name := info.Name(); name != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range benchDecl.FindAllStringSubmatch(string(data), -1) {
			declared[m[1]] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	for name := range mentioned {
		if !declared[name] {
			t.Errorf("docs/PERFORMANCE.md names %s but no _test.go file declares it", name)
		}
	}
	t.Logf("checked %d benchmark names against %d declared benchmarks", len(mentioned), len(declared))
}
