package roadpart_test

import (
	"fmt"
	"log"

	"roadpart"
)

// ExamplePartition shows the one-call path: fixed k, default α-Cut
// supergraph scheme.
func ExamplePartition() {
	net, err := roadpart.GenerateCity(roadpart.CityConfig{
		TargetIntersections: 150, TargetSegments: 280, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	snap, err := roadpart.SynthesizeField(net, roadpart.FieldConfig{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	if err := roadpart.ApplyDensities(net, snap); err != nil {
		log.Fatal(err)
	}

	res, err := roadpart.Partition(net, roadpart.Config{K: 3, Scheme: roadpart.ASG, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("regions:", res.K)
	// Output: regions: 3
}

// ExampleNewPipeline shows automatic selection of the partition count by
// the paper's ANS-minimum rule, reusing one pipeline across the sweep.
func ExampleNewPipeline() {
	net, err := roadpart.GenerateCity(roadpart.CityConfig{
		TargetIntersections: 150, TargetSegments: 280, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	snap, err := roadpart.SynthesizeField(net, roadpart.FieldConfig{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	if err := roadpart.ApplyDensities(net, snap); err != nil {
		log.Fatal(err)
	}

	p, err := roadpart.NewPipeline(net, roadpart.Config{Scheme: roadpart.ASG, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	bestK, _, err := p.BestKByANS(2, 6)
	if err != nil {
		log.Fatal(err)
	}
	res, err := p.PartitionK(bestK)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("segments assigned:", len(res.Assign) == len(net.Segments))
	// Output: segments assigned: true
}

// ExampleValidatePartition demonstrates checking conditions C.1–C.2 on an
// arbitrary assignment.
func ExampleValidatePartition() {
	net, err := roadpart.GenerateCity(roadpart.CityConfig{
		TargetIntersections: 30, TargetSegments: 50, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	g, err := roadpart.DualGraph(net)
	if err != nil {
		log.Fatal(err)
	}
	all := make([]int, len(net.Segments)) // the trivial single partition
	fmt.Println("trivial partition valid:", roadpart.ValidatePartition(g, all) == nil)
	// Output: trivial partition valid: true
}
