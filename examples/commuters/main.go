// Commuters: a monocentric ring-and-spoke city under origin–destination
// commuter traffic. Vehicles follow shortest routes to hotspot
// destinations (SimulateOD), which concentrates congestion on arterials —
// a different regime from the lattice examples — and the partitioner
// recovers the congested core and calmer periphery.
//
// Run with:
//
//	go run ./examples/commuters
package main

import (
	"fmt"
	"log"
	"math"
	"roadpart"
)

func main() {
	net, err := roadpart.GenerateRadialCity(roadpart.RadialConfig{
		Rings:  12,
		Spokes: 18,
		TwoWay: true,
		Jitter: 0.05,
		Seed:   3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("radial city: %d intersections, %d directed segments\n",
		len(net.Intersections), len(net.Segments))

	snaps, err := roadpart.SimulateODTraffic(net, roadpart.ODTrafficConfig{
		Vehicles:    1800,
		Steps:       500,
		Hotspots:    3,
		HotspotBias: 0.7,
		Seed:        11,
	})
	if err != nil {
		log.Fatal(err)
	}
	snap, err := roadpart.AverageDensities(snaps, 5)
	if err != nil {
		log.Fatal(err)
	}
	if err := roadpart.ApplyDensities(net, snap); err != nil {
		log.Fatal(err)
	}

	p, err := roadpart.NewPipeline(net, roadpart.Config{Scheme: roadpart.ASG, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	bestK, _, err := p.BestKByANS(2, 8)
	if err != nil {
		log.Fatal(err)
	}
	res, err := p.PartitionK(bestK)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("partitioned into %d regions (ANS=%.4f)\n\n", res.K, res.Report.ANS)
	fmt.Printf("%8s %10s %14s %16s\n", "region", "segments", "mean density", "mean radius (m)")
	type agg struct {
		n      int
		dens   float64
		radius float64
	}
	stats := make([]agg, res.K)
	for seg, part := range res.Assign {
		x, y := net.SegmentMidpoint(seg)
		stats[part].n++
		stats[part].dens += net.Segments[seg].Density
		stats[part].radius += math.Hypot(x, y)
	}
	for i, s := range stats {
		fmt.Printf("%8d %10d %14.4f %16.0f\n",
			i, s.n, s.dens/float64(s.n), s.radius/float64(s.n))
	}
	fmt.Println("\ncongested regions sit at smaller mean radius: commuter flow")
	fmt.Println("jams the core, and the partitioner separates core from periphery.")
}
