// Compare: run every partitioning scheme — the paper's α-Cut variants
// (AG, ASG), the normalized-cut variants (NG, NSG) and the
// Ji & Geroliminis baseline — on the same congested city and compare all
// four quality measures side by side.
//
// Run with:
//
//	go run ./examples/compare
package main

import (
	"fmt"
	"log"
	"time"

	"roadpart"
)

func main() {
	net, err := roadpart.GenerateCity(roadpart.CityConfig{
		TargetIntersections: 300,
		TargetSegments:      550,
		Jitter:              0.15,
		Seed:                13,
	})
	if err != nil {
		log.Fatal(err)
	}
	snaps, err := roadpart.SimulateTraffic(net, roadpart.TrafficConfig{Vehicles: 1800, Hotspots: 6, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	if err := roadpart.ApplyDensities(net, snaps[len(snaps)-1]); err != nil {
		log.Fatal(err)
	}

	const k = 6
	fmt.Printf("partitioning %d segments into k=%d regions\n\n", len(net.Segments), k)
	fmt.Printf("%-16s %8s %8s %8s %8s %10s\n", "scheme", "inter", "intra", "GDBI", "ANS", "time")

	for _, scheme := range []roadpart.Scheme{roadpart.AG, roadpart.NG, roadpart.ASG, roadpart.NSG} {
		res, err := roadpart.Partition(net, roadpart.Config{K: k, Scheme: scheme, Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16v %8.4f %8.4f %8.4f %8.4f %10v\n",
			scheme, res.Report.Inter, res.Report.Intra, res.Report.GDBI,
			res.Report.ANS, res.Timing.Total.Round(time.Millisecond))
	}

	// The Ji & Geroliminis baseline works on the road graph directly.
	g, err := roadpart.DualGraph(net)
	if err != nil {
		log.Fatal(err)
	}
	f := net.Densities()
	t0 := time.Now()
	assign, err := roadpart.BaselineJiGeroliminis(g, f, k, 3)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := roadpart.Evaluate(f, assign, g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-16s %8.4f %8.4f %8.4f %8.4f %10v\n",
		"Ji&Geroliminis", rep.Inter, rep.Intra, rep.GDBI, rep.ANS,
		time.Since(t0).Round(time.Millisecond))

	fmt.Println("\nhigher inter and lower intra/GDBI/ANS are better; the α-Cut")
	fmt.Println("schemes should dominate normalized cut, as in the paper's Table 2.")
}
