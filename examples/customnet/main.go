// Custom network: build a road network by hand (as you would from your own
// city's GIS export), attach observed densities, round-trip it through the
// JSON/CSV formats, and partition it — the integration path for real data.
//
// Run with:
//
//	go run ./examples/customnet
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"roadpart"
)

func main() {
	// A toy arterial corridor: two parallel avenues (two-way) joined by
	// cross streets, with the western half congested.
	net := &roadpart.Network{}
	const cols = 8
	for r := 0; r < 2; r++ {
		for c := 0; c < cols; c++ {
			net.Intersections = append(net.Intersections, roadpart.Intersection{
				ID: r*cols + c, X: float64(c) * 150, Y: float64(r) * 200,
			})
		}
	}
	addTwoWay := func(a, b int, length float64) {
		for _, dir := range [][2]int{{a, b}, {b, a}} {
			net.Segments = append(net.Segments, roadpart.Segment{
				ID: len(net.Segments), From: dir[0], To: dir[1], Length: length,
			})
		}
	}
	for r := 0; r < 2; r++ {
		for c := 0; c+1 < cols; c++ {
			addTwoWay(r*cols+c, r*cols+c+1, 150)
		}
	}
	for c := 0; c < cols; c++ {
		addTwoWay(c, cols+c, 200)
	}

	// Observed densities: jammed west, free-flowing east.
	densities := make([]float64, len(net.Segments))
	for i := range net.Segments {
		x, _ := net.SegmentMidpoint(i)
		if x < 150*float64(cols)/2 {
			densities[i] = 0.09 + 0.01*float64(i%3)
		} else {
			densities[i] = 0.01 + 0.002*float64(i%3)
		}
	}
	if err := net.SetDensities(densities); err != nil {
		log.Fatal(err)
	}

	// Round-trip through the on-disk formats.
	dir, err := os.MkdirTemp("", "customnet")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	netPath := filepath.Join(dir, "corridor.json")
	if err := net.SaveJSON(netPath); err != nil {
		log.Fatal(err)
	}
	loaded, err := roadpart.LoadNetwork(netPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round-tripped %s: %d intersections, %d segments\n",
		netPath, len(loaded.Intersections), len(loaded.Segments))

	// Partition with α-Cut directly on the road graph (AG) — the right
	// choice for networks this small.
	res, err := roadpart.Partition(loaded, roadpart.Config{K: 2, Scheme: roadpart.AG, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k=2 partition quality: inter=%.4f intra=%.4f ANS=%.4f\n",
		res.Report.Inter, res.Report.Intra, res.Report.ANS)

	// The jammed and free halves should separate.
	west, east := map[int]int{}, map[int]int{}
	for seg, part := range res.Assign {
		x, _ := loaded.SegmentMidpoint(seg)
		if x < 150*float64(cols)/2 {
			west[part]++
		} else {
			east[part]++
		}
	}
	fmt.Printf("western (jammed) segments by partition: %v\n", west)
	fmt.Printf("eastern (free) segments by partition:   %v\n", east)
}
