// Distributed: the sharded multi-daemon serving tier (docs/DISTRIBUTED.md).
// Three in-process roadpartd-equivalent daemons form a cluster via
// rendezvous hashing over the result-cache fingerprints; the demo sends
// the same partition request through every shard and shows that one
// shard owns the fingerprint (key affinity), the others answer from its
// cache across the forwarding hop (remote-hit), and killing the owner
// degrades to a correct local compute instead of an error. It closes
// with the rendezvous remap bound: how many of 1000 keys change owner
// when one of three shards leaves.
//
// The assertions this demo prints live as a real integration test in
// internal/server/cluster_test.go (`make cluster-smoke`).
//
// Run with:
//
//	go run ./examples/distributed
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"roadpart"
	"roadpart/internal/peers"
	"roadpart/internal/server"
)

func main() {
	nw, err := roadpart.GenerateCity(roadpart.CityConfig{
		TargetIntersections: 300,
		TargetSegments:      520,
		Jitter:              0.15,
		Seed:                55,
	})
	if err != nil {
		log.Fatal(err)
	}
	snap, err := roadpart.SynthesizeField(nw, roadpart.FieldConfig{Hotspots: 4, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	if err := roadpart.ApplyDensities(nw, snap); err != nil {
		log.Fatal(err)
	}

	// Start a 3-shard cluster: bind all listeners first so every daemon
	// is configured with the full membership, exactly like
	// `roadpartd -self ... -peers ...` per host.
	const n = 3
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	servers := make([]*http.Server, n)
	for i := range lns {
		svc, err := server.NewService(server.Config{
			Self:          urls[i],
			Peers:         urls,
			CacheMaxBytes: 64 << 20,
			PeerTimeout:   30 * time.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		servers[i] = &http.Server{Handler: svc}
		go servers[i].Serve(lns[i])
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	fmt.Println("== 3-shard cluster")
	for i, u := range urls {
		fmt.Printf("  shard %d  %s\n", i, u)
	}

	body, err := json.Marshal(map[string]interface{}{
		"network": nw, "k": 3, "scheme": "AG", "seed": 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The same request through every shard: one owner computes (miss),
	// every other entry point relays its cached bytes (remote-hit).
	fmt.Println("\n== one fingerprint, three entry shards")
	var first []byte
	for i := range urls {
		resp, b := post(urls[i]+"/v1/partition", body)
		fmt.Printf("  via shard %d: %-11s owner=%s\n",
			i, resp.Header.Get("X-Roadpart-Cache"), resp.Header.Get("X-Roadpart-Shard"))
		if first == nil {
			first = b
		} else if !bytes.Equal(first, b) {
			log.Fatal("bodies differ between entry shards")
		}
	}
	fmt.Println("  bodies byte-identical across all entry shards")

	// Kill the owner: the receiving shard computes locally — the cache
	// affinity degrades, availability does not.
	ring, err := peers.NewRing(urls[0], urls)
	if err != nil {
		log.Fatal(err)
	}
	var ownerIdx, entryIdx int
	resp, _ := post(urls[0]+"/v1/partition", body)
	owner := resp.Header.Get("X-Roadpart-Shard")
	for i, u := range urls {
		if u == owner {
			ownerIdx = i
		} else {
			entryIdx = i
		}
	}
	fmt.Printf("\n== failover: killing owner shard %d\n", ownerIdx)
	servers[ownerIdx].Close()
	resp, _ = post(urls[entryIdx]+"/v1/partition", body)
	fmt.Printf("  via shard %d: %-11s served-by=%s (local fallback)\n",
		entryIdx, resp.Header.Get("X-Roadpart-Cache"), resp.Header.Get("X-Roadpart-Shard"))

	// The rendezvous bound: a departed shard strands only its own share
	// of the keyspace (~1/N), never a full reshuffle.
	after, err := peers.NewRing(urls[0], urls[:2])
	if err != nil {
		log.Fatal(err)
	}
	moved := 0
	for key := uint64(0); key < 1000; key++ {
		if ring.Owner(key) != after.Owner(key) {
			moved++
		}
	}
	fmt.Printf("\n== remap bound: %d of 1000 keys changed owner when 1 of %d shards left (expect ~%d)\n",
		moved, n, 1000/n)
}

func post(url string, body []byte) (*http.Response, []byte) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("POST %s: %d %s", url, resp.StatusCode, b)
	}
	return resp, b
}
