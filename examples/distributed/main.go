// Distributed: the real-time regime the paper proposes in Section 6.4 —
// partition the whole network once, then re-partition each region
// independently as congestion evolves, and compare the cost and partition
// drift against full global re-partitioning.
//
// Run with:
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"math"
	"roadpart"
	"time"
)

func main() {
	net, err := roadpart.GenerateCity(roadpart.CityConfig{
		TargetIntersections: 500,
		TargetSegments:      900,
		Jitter:              0.15,
		Seed:                55,
	})
	if err != nil {
		log.Fatal(err)
	}
	snaps, err := roadpart.SimulateTraffic(net, roadpart.TrafficConfig{
		Vehicles:    2600,
		Steps:       1200,
		RecordEvery: 12,
		Hotspots:    6,
		Seed:        4,
	})
	if err != nil {
		log.Fatal(err)
	}

	at := []int{20, 40, 60, 80, 99}
	cfg := roadpart.TemporalConfig{Scheme: roadpart.ASG, Seed: 1}

	for _, mode := range []struct {
		name string
		m    roadpart.TemporalMode
	}{
		{"global re-partitioning", roadpart.ModeGlobal},
		{"distributed re-partitioning", roadpart.ModeDistributed},
	} {
		frames, err := roadpart.Repartition(net, snaps, at, mode.m, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s\n", mode.name)
		fmt.Printf("%6s %4s %8s %10s %12s\n", "t", "k", "ANS", "ARI", "elapsed")
		var total time.Duration
		for _, fr := range frames {
			// The first frame has no predecessor: its ARI is undefined
			// (NaN), not 1.0 — print a dash and keep it out of the mean.
			ari := "         —"
			if !math.IsNaN(fr.ARIvsPrev) {
				ari = fmt.Sprintf("%10.3f", fr.ARIvsPrev)
			}
			fmt.Printf("%6d %4d %8.4f %s %12v\n",
				fr.Snapshot, fr.K, fr.Report.ANS, ari, fr.Elapsed.Round(time.Millisecond))
			total += fr.Elapsed
		}
		fmt.Printf("mean ARI vs previous frame: %.3f\n", roadpart.MeanARI(frames))
		fmt.Printf("total partitioning time: %v\n\n", total.Round(time.Millisecond))
	}

	fmt.Println("distributed frames re-use the first frame's regions, so later")
	fmt.Println("rounds are cheaper and drift (1−ARI) stays bounded — the")
	fmt.Println("trade-off Section 6.4 proposes for real-time deployment.")
}
