// Districts: hierarchical congestion partitioning — the whole city splits
// into top-level regions, each region into districts, districts into
// corridors, and the tree can be cut at any depth depending on how
// fine-grained the traffic-management decision is.
//
// Run with:
//
//	go run ./examples/districts
package main

import (
	"fmt"
	"log"

	"roadpart"
)

func main() {
	net, err := roadpart.GenerateCity(roadpart.CityConfig{
		TargetIntersections: 500,
		TargetSegments:      950,
		Jitter:              0.15,
		Seed:                61,
	})
	if err != nil {
		log.Fatal(err)
	}
	snaps, err := roadpart.SimulateTraffic(net, roadpart.TrafficConfig{
		Vehicles: 3200,
		Hotspots: 6,
		Seed:     2,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := roadpart.ApplyDensities(net, snaps[len(snaps)-1]); err != nil {
		log.Fatal(err)
	}

	root, err := roadpart.BuildHierarchy(net, roadpart.HierarchyConfig{
		Scheme:   roadpart.ASG,
		MaxDepth: 3,
		MinSize:  40,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("region tree:", root.Describe())

	g, err := roadpart.DualGraph(net)
	if err != nil {
		log.Fatal(err)
	}
	f := net.Densities()
	fmt.Printf("\n%6s %8s %10s\n", "level", "regions", "ANS")
	for level := 1; level <= 3; level++ {
		assign, k := root.FlattenLevel(level)
		rep, err := roadpart.Evaluate(f, assign, g)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d %8d %10.4f\n", level, k, rep.ANS)
	}

	fmt.Println("\nleaf regions by congestion:")
	for i, leaf := range root.Leaves() {
		if i >= 8 {
			fmt.Printf("  … and %d more\n", len(root.Leaves())-8)
			break
		}
		fmt.Printf("  depth %d: %4d segments, mean density %.4f veh/m\n",
			leaf.Depth, len(leaf.Members), leaf.MeanDensity)
	}
}
