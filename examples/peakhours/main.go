// Peak hours: the paper's motivating scenario — congestion patterns shift
// over the day, so the network is re-partitioned at regular intervals and
// the regions move with the traffic. This example simulates a morning
// ramp-up, partitions the network at several timestamps using one mined
// pipeline per snapshot, and reports how the optimal regions and their
// congestion evolve.
//
// Run with:
//
//	go run ./examples/peakhours
package main

import (
	"fmt"
	"log"
	"roadpart"
)

func main() {
	net, err := roadpart.GenerateCity(roadpart.CityConfig{
		TargetIntersections: 350,
		TargetSegments:      640,
		Jitter:              0.15,
		Seed:                21,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A long simulation with recorded snapshots stands in for a day of
	// detector data: early snapshots are the quiet ramp-up, late ones the
	// fully developed peak.
	snaps, err := roadpart.SimulateTraffic(net, roadpart.TrafficConfig{
		Vehicles:    2200,
		Steps:       1200,
		RecordEvery: 12, // 100 snapshots
		Hotspots:    6,
		Seed:        9,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("re-partitioning the network as congestion develops:")
	fmt.Printf("%6s %12s %8s %8s %14s\n", "t", "mean dens", "best k", "ANS", "supernodes")

	const k = 2 // sweep start
	for _, t := range []int{4, 24, 49, 74, 99} {
		// Smooth each evaluation instant over a short window, like a
		// 5-minute detector aggregate.
		window := 3
		lo := t - window + 1
		if lo < 0 {
			lo = 0
		}
		snap, err := roadpart.AverageDensities(snaps[lo:t+1], 0)
		if err != nil {
			log.Fatal(err)
		}
		if err := roadpart.ApplyDensities(net, snap); err != nil {
			log.Fatal(err)
		}

		p, err := roadpart.NewPipeline(net, roadpart.Config{Scheme: roadpart.ASG, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		kmax := 9
		if len(p.SG.Nodes) < kmax {
			kmax = len(p.SG.Nodes)
		}
		if kmax < k {
			fmt.Printf("%6d %12.5f %8s %8s %14d (too uniform to partition)\n",
				t, mean(snap), "-", "-", len(p.SG.Nodes))
			continue
		}
		bestK, sweep, err := p.BestKByANS(k, kmax)
		if err != nil {
			log.Fatal(err)
		}
		var bestANS float64
		for _, pt := range sweep {
			if pt.K == bestK {
				bestANS = pt.Result.Report.ANS
			}
		}
		fmt.Printf("%6d %12.5f %8d %8.4f %14d\n", t, mean(snap), bestK, bestANS, len(p.SG.Nodes))
	}

	fmt.Println("\nthe optimal region count and the supergraph granularity track the")
	fmt.Println("developing congestion — the repeated-partitioning regime of Section 1.")
}

func mean(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}
