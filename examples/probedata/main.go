// Probe data: the paper's actual data pipeline, end to end. MNTG gave the
// authors raw vehicle trajectories; "a self-designed program" mapped the
// positions onto road segments and computed densities (Section 6.1). Here
// the simulator emits noisy GPS trajectories, the mapmatch substrate
// reconstructs per-segment densities from them, and the partition computed
// from reconstructed densities is compared against the one computed from
// ground truth.
//
// Run with:
//
//	go run ./examples/probedata
package main

import (
	"fmt"
	"log"
	"math"

	"roadpart"
)

func main() {
	net, err := roadpart.GenerateCity(roadpart.CityConfig{
		TargetIntersections: 300,
		TargetSegments:      540,
		Jitter:              0.1,
		Seed:                27,
	})
	if err != nil {
		log.Fatal(err)
	}

	cfg := roadpart.TrafficConfig{
		Vehicles:    1600,
		Steps:       400,
		RecordEvery: 4, // 100 recorded timestamps, like MNTG
		Hotspots:    5,
		Seed:        3,
	}

	// Ground truth densities straight from the simulator.
	truthSnaps, err := roadpart.SimulateTraffic(net, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The same simulation, but observed only through 8 m-noise GPS
	// trajectories.
	trajs, err := roadpart.SimulateTrajectories(net, cfg, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet: %d probe vehicles, %d samples each\n", len(trajs), len(trajs[0]))

	// Map-match the trajectories back onto segments and rebuild the
	// density field.
	maxT := len(truthSnaps) - 1
	recSnaps, err := roadpart.MatchDensities(net, trajs, maxT, 40)
	if err != nil {
		log.Fatal(err)
	}

	// Compare the two density fields at the evaluation instant.
	at := maxT * 71 / 100 // the paper's t=71-style snapshot
	truth, rec := truthSnaps[at], recSnaps[at]
	var num, denTruth float64
	for i := range truth {
		d := truth[i] - rec[i]
		num += d * d
		denTruth += truth[i] * truth[i]
	}
	fmt.Printf("density reconstruction relative RMS error: %.1f%%\n",
		100*math.Sqrt(num/denTruth))

	// Partition both and compare the regions.
	partition := func(name string, snap roadpart.Snapshot) []int {
		if err := roadpart.ApplyDensities(net, snap); err != nil {
			log.Fatal(err)
		}
		res, err := roadpart.Partition(net, roadpart.Config{K: 5, Scheme: roadpart.ASG, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s ANS=%.4f inter=%.4f intra=%.4f\n",
			name, res.Report.ANS, res.Report.Inter, res.Report.Intra)
		return res.Assign
	}
	truthAssign := partition("ground-truth density:", truth)
	recAssign := partition("map-matched density:", rec)

	ari, err := roadpart.PartitionSimilarity(truthAssign, recAssign)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nregion agreement (ARI): %.3f — noisy probe data recovers\n", ari)
	fmt.Println("nearly the same congestion regions as perfect detectors.")
}
