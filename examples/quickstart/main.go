// Quickstart: generate a small city, simulate traffic, partition it by
// congestion with the α-Cut supergraph framework, and inspect the result.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"roadpart"
)

func main() {
	// 1. A city: 400 intersections, 750 directed road segments.
	net, err := roadpart.GenerateCity(roadpart.CityConfig{
		TargetIntersections: 400,
		TargetSegments:      750,
		Jitter:              0.15,
		Seed:                42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Traffic: 2,000 vehicles drawn to 5 hotspots for 600 ticks; the
	// instantaneous density snapshot becomes the congestion feature of
	// every road segment.
	snaps, err := roadpart.SimulateTraffic(net, roadpart.TrafficConfig{
		Vehicles: 2000,
		Hotspots: 5,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := roadpart.ApplyDensities(net, snaps[len(snaps)-1]); err != nil {
		log.Fatal(err)
	}

	// 3. Partition: the two-level framework (supergraph mining + α-Cut),
	// selecting k automatically by the ANS minimum.
	p, err := roadpart.NewPipeline(net, roadpart.Config{Scheme: roadpart.ASG, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mined supergraph: %d supernodes from %d road segments\n",
		len(p.SG.Nodes), len(net.Segments))

	bestK, sweep, err := p.BestKByANS(2, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n  k    ANS   (lower is better)")
	for _, pt := range sweep {
		marker := ""
		if pt.K == bestK {
			marker = "  <- optimal"
		}
		fmt.Printf("%3d  %.4f%s\n", pt.K, pt.Result.Report.ANS, marker)
	}

	res, err := p.PartitionK(bestK)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Inspect: per-partition size and mean congestion.
	fmt.Printf("\npartitioned into %d connected regions:\n", res.K)
	sizes := make([]int, res.K)
	sums := make([]float64, res.K)
	for seg, part := range res.Assign {
		sizes[part]++
		sums[part] += net.Segments[seg].Density
	}
	for i := 0; i < res.K; i++ {
		fmt.Printf("  region %d: %3d segments, mean density %.4f veh/m\n",
			i, sizes[i], sums[i]/float64(sizes[i]))
	}
	fmt.Printf("\nquality: inter=%.4f intra=%.4f GDBI=%.4f ANS=%.4f\n",
		res.Report.Inter, res.Report.Intra, res.Report.GDBI, res.Report.ANS)
}
