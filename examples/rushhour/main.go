// Rush hour: Section 2.1's motivation for modelling the two directions of
// a two-way road as separate segments — morning traffic flows toward the
// centre, evening traffic away from it, so the same physical road can be
// jammed in one direction and free in the other, and the optimal
// congestion regions differ between the peaks.
//
// Run with:
//
//	go run ./examples/rushhour
package main

import (
	"fmt"
	"log"
	"math"

	"roadpart"
)

func main() {
	// A city where every road is two-way: segment pairs (i, j) with
	// i.From == j.To and i.To == j.From are the two directions.
	net, err := roadpart.GenerateCity(roadpart.CityConfig{
		TargetIntersections: 250,
		TargetSegments:      900, // ≈ all roads two-way
		Jitter:              0.1,
		Seed:                19,
	})
	if err != nil {
		log.Fatal(err)
	}

	simulate := func(outbound bool) roadpart.Snapshot {
		snaps, err := roadpart.SimulateTraffic(net, roadpart.TrafficConfig{
			Vehicles:   2200,
			Hotspots:   3,
			WanderFrac: 0.25,
			Outbound:   outbound,
			Seed:       6, // same fleet, opposite intent
		})
		if err != nil {
			log.Fatal(err)
		}
		snap, err := roadpart.AverageDensities(snaps, 5)
		if err != nil {
			log.Fatal(err)
		}
		return snap
	}
	morning := simulate(false) // toward the hotspots
	evening := simulate(true)  // away from them

	// Directional asymmetry: compare the two directions of each two-way
	// road within one peak.
	type key struct{ a, b int }
	reverse := map[key]int{}
	for i, s := range net.Segments {
		reverse[key{s.From, s.To}] = i
	}
	var pairs, asymMorning float64
	for i, s := range net.Segments {
		j, ok := reverse[key{s.To, s.From}]
		if !ok || j <= i {
			continue
		}
		pairs++
		asymMorning += math.Abs(morning[i] - morning[j])
	}
	fmt.Printf("two-way road pairs: %.0f\n", pairs)
	fmt.Printf("mean |density(dir1) - density(dir2)| in the morning peak: %.4f veh/m\n", asymMorning/pairs)

	// Partition each peak and compare the regions.
	partition := func(name string, snap roadpart.Snapshot) []int {
		if err := roadpart.ApplyDensities(net, snap); err != nil {
			log.Fatal(err)
		}
		p, err := roadpart.NewPipeline(net, roadpart.Config{Scheme: roadpart.ASG, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		kmax := 8
		if len(p.SG.Nodes) < kmax {
			kmax = len(p.SG.Nodes)
		}
		bestK, _, err := p.BestKByANS(2, kmax)
		if err != nil {
			log.Fatal(err)
		}
		res, err := p.PartitionK(bestK)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s peak: k=%d ANS=%.4f\n", name, res.K, res.Report.ANS)
		return res.Assign
	}
	am := partition("morning", morning)
	pm := partition("evening", evening)

	ari, err := roadpart.PartitionSimilarity(am, pm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmorning vs evening region agreement (ARI): %.3f\n", ari)
	fmt.Println("the peaks need different partitions — the repeated-partitioning")
	fmt.Println("regime the paper proposes, driven by directional traffic.")
}
