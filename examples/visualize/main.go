// Visualize: render a congested city and its congestion-based partitions
// as SVG files you can open in any browser — the visual counterpart of
// the paper's partition maps.
//
// Run with:
//
//	go run ./examples/visualize
//
// It writes density.svg and partitions.svg in the working directory.
package main

import (
	"bufio"
	"fmt"
	"log"
	"os"
	"roadpart"
)

func main() {
	net, err := roadpart.GenerateCity(roadpart.CityConfig{
		TargetIntersections: 600,
		TargetSegments:      1100,
		Jitter:              0.2,
		Seed:                77,
	})
	if err != nil {
		log.Fatal(err)
	}
	snaps, err := roadpart.SimulateTraffic(net, roadpart.TrafficConfig{Vehicles: 3000, Hotspots: 5, Seed: 8})
	if err != nil {
		log.Fatal(err)
	}
	if err := roadpart.ApplyDensities(net, snaps[len(snaps)-1]); err != nil {
		log.Fatal(err)
	}

	p, err := roadpart.NewPipeline(net, roadpart.Config{Scheme: roadpart.ASG, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	bestK, _, err := p.BestKByANS(2, 9)
	if err != nil {
		log.Fatal(err)
	}
	res, err := p.PartitionK(bestK)
	if err != nil {
		log.Fatal(err)
	}

	write := func(path string, draw func(w *bufio.Writer) error) {
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		w := bufio.NewWriter(f)
		if err := draw(w); err != nil {
			log.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", path)
	}
	write("density.svg", func(w *bufio.Writer) error {
		return roadpart.RenderDensitiesSVG(w, net, "traffic density (red = congested)")
	})
	write("partitions.svg", func(w *bufio.Writer) error {
		return roadpart.RenderPartitionsSVG(w, net, res.Assign,
			fmt.Sprintf("congestion partitions (k=%d, ANS=%.3f)", res.K, res.Report.ANS))
	})
}
