module roadpart

go 1.22
