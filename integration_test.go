package roadpart

import (
	"sort"
	"testing"

	"roadpart/internal/core"
	"roadpart/internal/experiments"
	"roadpart/internal/gen"
	"roadpart/internal/jiger"
	"roadpart/internal/metrics"
	"roadpart/internal/roadnet"
	"roadpart/internal/traffic"
)

// These integration tests assert the paper's qualitative results — who
// wins, in which direction curves move — end to end at reduced scale, so
// a regression in any module that silently degrades partitioning quality
// breaks the build, not just the benchmark numbers.

// d1small builds the D1-like dataset once per test run.
func d1small(t *testing.T) *roadnet.Network {
	t.Helper()
	ds, err := experiments.BuildDataset("D1", experiments.ScaleFull) // D1 is small even at full scale
	if err != nil {
		t.Fatal(err)
	}
	return ds.Net
}

func medianOf(xs []float64) float64 {
	sort.Float64s(xs)
	return xs[len(xs)/2]
}

// bestANSOverK returns the median-over-seeds ANS minimum over k for one
// scheme.
func bestANSOverK(t *testing.T, net *roadnet.Network, scheme core.Scheme, seeds, kMax int) float64 {
	t.Helper()
	best := -1.0
	for k := 2; k <= kMax; k++ {
		var vals []float64
		for seed := 1; seed <= seeds; seed++ {
			p, err := core.NewPipeline(net, core.Config{Scheme: scheme, Seed: uint64(seed)})
			if err != nil {
				t.Fatal(err)
			}
			kk := k
			if p.SG != nil && len(p.SG.Nodes) < kk {
				kk = len(p.SG.Nodes)
			}
			res, err := p.PartitionK(kk)
			if err != nil {
				t.Fatal(err)
			}
			vals = append(vals, res.Report.ANS)
		}
		if m := medianOf(vals); best < 0 || m < best {
			best = m
		}
	}
	return best
}

func TestPaperShapeAlphaCutBeatsNormalizedCut(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep in -short mode")
	}
	net := d1small(t)
	const seeds, kMax = 5, 10
	agBest := bestANSOverK(t, net, core.AG, seeds, kMax)
	asgBest := bestANSOverK(t, net, core.ASG, seeds, kMax)
	ngBest := bestANSOverK(t, net, core.NG, seeds, kMax)
	// Table 2's ordering: both α-Cut schemes beat normalized cut.
	if agBest >= ngBest {
		t.Errorf("AG best ANS %.4f should beat NG %.4f", agBest, ngBest)
	}
	if asgBest >= ngBest {
		t.Errorf("ASG best ANS %.4f should beat NG %.4f", asgBest, ngBest)
	}
}

func TestPaperShapeBaselineBetweenSchemes(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep in -short mode")
	}
	net := d1small(t)
	g, err := roadnet.DualGraph(net)
	if err != nil {
		t.Fatal(err)
	}
	f := net.Densities()
	// Ji & Geroliminis improves on plain NG (its adjustments exist for a
	// reason) — Table 2 has it between the α-Cut schemes and NG.
	best := -1.0
	for k := 2; k <= 8; k++ {
		var vals []float64
		for seed := 1; seed <= 3; seed++ {
			res, err := jiger.Partition(g, f, k, jiger.Options{Seed: uint64(seed)})
			if err != nil {
				t.Fatal(err)
			}
			ans, err := metrics.ANS(f, res.Assign, g)
			if err != nil {
				t.Fatal(err)
			}
			vals = append(vals, ans)
		}
		if m := medianOf(vals); best < 0 || m < best {
			best = m
		}
	}
	asgBest := bestANSOverK(t, net, core.ASG, 3, 8)
	if best <= asgBest/4 {
		t.Errorf("baseline ANS %.4f implausibly better than ASG %.4f", best, asgBest)
	}
}

func TestFrameworkScalesMonotonically(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep in -short mode")
	}
	// Total partitioning time should grow with network size (Table 3's
	// shape), and all partitions must validate on every size.
	var prev float64
	for _, size := range []int{300, 900, 2700} {
		net, err := gen.City(gen.CityConfig{TargetIntersections: size, TargetSegments: size * 9 / 5, Seed: uint64(size)})
		if err != nil {
			t.Fatal(err)
		}
		snap, err := traffic.SyntheticField(net, traffic.FieldConfig{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := traffic.ApplySnapshot(net, snap); err != nil {
			t.Fatal(err)
		}
		res, err := core.Partition(net, core.Config{K: 5, Scheme: core.ASG, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		g, err := roadnet.DualGraph(net)
		if err != nil {
			t.Fatal(err)
		}
		if err := metrics.ValidatePartition(g, res.Assign); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		secs := res.Timing.Total.Seconds()
		// Only flag order-of-magnitude inversions; timers jitter.
		if prev > 0 && secs < prev/20 {
			t.Errorf("size %d took %.3fs, implausibly faster than smaller network (%.3fs)", size, secs, prev)
		}
		prev = secs
	}
}

func TestStressSchemesAcrossNetworks(t *testing.T) {
	if testing.Short() {
		t.Skip("stress sweep in -short mode")
	}
	// Many random networks × all schemes × several k: everything must
	// produce valid partitions with the requested count.
	for _, seed := range []uint64{11, 22, 33} {
		net, err := gen.City(gen.CityConfig{
			TargetIntersections: 180 + int(seed),
			TargetSegments:      330 + 2*int(seed),
			Jitter:              0.15,
			Seed:                seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		snap, err := traffic.SyntheticField(net, traffic.FieldConfig{Hotspots: 5, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if err := traffic.ApplySnapshot(net, snap); err != nil {
			t.Fatal(err)
		}
		g, err := roadnet.DualGraph(net)
		if err != nil {
			t.Fatal(err)
		}
		for _, scheme := range []core.Scheme{core.AG, core.NG, core.ASG, core.NSG} {
			p, err := core.NewPipeline(net, core.Config{Scheme: scheme, Seed: seed})
			if err != nil {
				t.Fatalf("seed=%d %v: %v", seed, scheme, err)
			}
			for _, k := range []int{2, 5, 9} {
				kk := k
				if p.SG != nil && len(p.SG.Nodes) < kk {
					kk = len(p.SG.Nodes)
				}
				res, err := p.PartitionK(kk)
				if err != nil {
					t.Fatalf("seed=%d %v k=%d: %v", seed, scheme, kk, err)
				}
				if res.K != kk {
					t.Fatalf("seed=%d %v: K=%d, want %d", seed, scheme, res.K, kk)
				}
				if err := metrics.ValidatePartition(g, res.Assign); err != nil {
					t.Fatalf("seed=%d %v k=%d: %v", seed, scheme, kk, err)
				}
			}
		}
	}
}

func TestMCGElbowExistsOnLargeNetworks(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep in -short mode")
	}
	// Figure 5's shape: the supernode count at the MCG elbow is a small
	// fraction of the segment count (that reduction is the whole point of
	// the supergraph).
	data, err := experiments.Fig5(experiments.Options{Scale: experiments.ScaleSmall, KMin: 2, KMax: 10}, "M1")
	if err != nil {
		t.Fatal(err)
	}
	s := data.Series[0]
	ds, err := experiments.BuildDataset("M1", experiments.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if s.ElbowSupernodes <= 0 || s.ElbowSupernodes >= len(ds.Net.Segments) {
		t.Fatalf("elbow supernodes = %d of %d segments", s.ElbowSupernodes, len(ds.Net.Segments))
	}
}
