package cluster

import (
	"math"
	"testing"

	"roadpart/internal/kmeans"
)

// twoBlob returns scalar data with two well-separated groups.
func twoBlob() []float64 {
	var data []float64
	for i := 0; i < 20; i++ {
		data = append(data, 1+0.01*float64(i))
	}
	for i := 0; i < 20; i++ {
		data = append(data, 100+0.01*float64(i))
	}
	return data
}

func clusterWith(t *testing.T, data []float64, k int) ([]int, []float64) {
	t.Helper()
	res, err := kmeans.OneD(data, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	means := make([]float64, k)
	for c := 0; c < k; c++ {
		means[c] = res.Mean1(c)
	}
	return res.Assign, means
}

func TestMeasurePerfectSplit(t *testing.T) {
	data := twoBlob()
	assign, means := clusterWith(t, data, 2)
	st, err := Measure(data, assign, means, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.MCG <= 0 {
		t.Fatalf("MCG = %v, want > 0 for a clean split", st.MCG)
	}
	if st.Gain <= 0 {
		t.Fatalf("Gain = %v, want > 0", st.Gain)
	}
	// Tight clusters: intra error tiny relative to inter.
	if st.IntraError > st.InterError/100 {
		t.Fatalf("intra %v should be tiny vs inter %v", st.IntraError, st.InterError)
	}
	// Θ2 ≈ 1 for tight clusters, so MCG ≈ Gain.
	if math.Abs(st.MCG-st.Gain) > 0.01*st.Gain {
		t.Fatalf("MCG %v should approach Gain %v for tight clusters", st.MCG, st.Gain)
	}
}

func TestMCGElbowAtTrueK(t *testing.T) {
	// Three separated blobs. As in the paper's Figure 5, MCG rises steeply
	// up to the true cluster count and changes little after it, so the
	// elbow rule must land on κ=3 even if the raw maximum drifts higher.
	var data []float64
	for _, c := range []float64{0, 50, 100} {
		for i := 0; i < 30; i++ {
			data = append(data, c+0.05*float64(i))
		}
	}
	vals := map[int]float64{}
	for k := 2; k <= 6; k++ {
		assign, means := clusterWith(t, data, k)
		v, err := MCG(data, assign, means, k)
		if err != nil {
			t.Fatal(err)
		}
		vals[k] = v
	}
	rise := vals[3] - vals[2]
	if rise <= 0 {
		t.Fatalf("MCG should rise from κ=2 (%v) to κ=3 (%v)", vals[2], vals[3])
	}
	for k := 4; k <= 6; k++ {
		if math.Abs(vals[k]-vals[3]) > 0.25*rise {
			t.Fatalf("MCG should flatten after κ=3: κ=%d is %v vs %v (rise %v)", k, vals[k], vals[3], rise)
		}
	}
}

func TestMeasureSingleClusterAtGlobalMean(t *testing.T) {
	// One cluster: μ_q = μ_0, so Gain and MCG are exactly zero.
	data := []float64{1, 2, 3, 4}
	st, err := Measure(data, []int{0, 0, 0, 0}, []float64{2.5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Gain != 0 || st.MCG != 0 {
		t.Fatalf("single cluster should have zero gain/MCG, got %+v", st)
	}
	if st.IntraError == 0 {
		t.Fatal("intra error should be positive")
	}
}

func TestMeasureErrors(t *testing.T) {
	if _, err := Measure([]float64{1}, []int{0, 0}, []float64{1}, 1); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := Measure([]float64{1}, []int{5}, []float64{1}, 1); err == nil {
		t.Fatal("out-of-range assignment should error")
	}
	if _, err := Measure([]float64{1}, []int{0}, []float64{1, 2}, 1); err == nil {
		t.Fatal("means/k mismatch should error")
	}
}

func TestMeasureEmptyData(t *testing.T) {
	st, err := Measure(nil, nil, []float64{0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.MCG != 0 {
		t.Fatal("empty data should yield zero MCG")
	}
}

func TestTheta2Clamped(t *testing.T) {
	// A sloppy cluster far from compact: intra error >> separation, so the
	// raw Θ2 is negative and must clamp to 0 — MCG stays non-negative.
	data := []float64{-100, 100, 0.9, 1.1}
	assign := []int{0, 0, 1, 1}
	means := []float64{0, 1}
	st, err := Measure(data, assign, means, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.MCG < 0 {
		t.Fatalf("MCG should never be negative, got %v", st.MCG)
	}
}

func TestClusteringBalanceMinimumNearTrueK(t *testing.T) {
	// Jung et al.'s claim: clustering balance (intra + inter error sum)
	// reaches its minimum around the natural cluster count. Two blobs →
	// balance at κ=2 below κ=1-equivalent and below large κ.
	data := twoBlob()
	balance := map[int]float64{}
	for k := 2; k <= 8; k++ {
		assign, means := clusterWith(t, data, k)
		st, err := Measure(data, assign, means, k)
		if err != nil {
			t.Fatal(err)
		}
		balance[k] = st.Balance
	}
	for k := 3; k <= 8; k++ {
		if balance[2] > balance[k]*(1+1e-9) {
			t.Fatalf("balance should be minimal at the true κ=2: balance[2]=%v > balance[%d]=%v",
				balance[2], k, balance[k])
		}
	}
}

func TestSweepKappaShortlistAndOptimal(t *testing.T) {
	data := twoBlob()
	sw, err := SweepKappa(data, SweepOptions{KappaMax: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 5 { // κ = 2..6
		t.Fatalf("expected 5 sweep points, got %d", len(sw.Points))
	}
	opt := sw.OptimalKappa()
	if opt < 2 || opt > 6 {
		t.Fatalf("optimal κ = %d out of range", opt)
	}
	short := sw.Shortlist(0)
	if len(short) != 5 {
		t.Fatalf("threshold 0 should shortlist everything, got %v", short)
	}
	// An impossible threshold still returns the best single κ.
	short = sw.Shortlist(math.Inf(1))
	if len(short) != 1 || short[0] != opt {
		t.Fatalf("fallback shortlist = %v, want [%d]", short, opt)
	}
}

func TestSweepKappaSampling(t *testing.T) {
	data := make([]float64, 5000)
	for i := range data {
		data[i] = float64(i % 7)
	}
	sw, err := SweepKappa(data, SweepOptions{KappaMax: 4, SampleSize: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sw.SampleN != 500 {
		t.Fatalf("SampleN = %d, want 500", sw.SampleN)
	}
	// Deterministic in seed.
	sw2, err := SweepKappa(data, SweepOptions{KappaMax: 4, SampleSize: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sw.Points {
		if sw.Points[i].Stats.MCG != sw2.Points[i].Stats.MCG {
			t.Fatal("sweep should be deterministic in seed")
		}
	}
}

func TestSweepKappaErrors(t *testing.T) {
	if _, err := SweepKappa([]float64{1}, SweepOptions{}); err == nil {
		t.Fatal("one point should error")
	}
}

func TestElbowKappa(t *testing.T) {
	data := twoBlob()
	sw, err := SweepKappa(data, SweepOptions{KappaMax: 8})
	if err != nil {
		t.Fatal(err)
	}
	elbow := sw.ElbowKappa(0.9)
	if elbow < 2 || elbow > 8 {
		t.Fatalf("elbow κ = %d out of range", elbow)
	}
	// The elbow is never later than the maximum.
	if elbow > sw.OptimalKappa() {
		t.Fatalf("elbow %d after optimum %d", elbow, sw.OptimalKappa())
	}
}

func TestLocalMaxima(t *testing.T) {
	sw := &Sweep{Points: []SweepPoint{
		{Kappa: 2, Stats: Stats{MCG: 1}},
		{Kappa: 3, Stats: Stats{MCG: 5}}, // local max
		{Kappa: 4, Stats: Stats{MCG: 2}},
		{Kappa: 5, Stats: Stats{MCG: 7}}, // endpoint max
	}}
	got := sw.LocalMaxima()
	if len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("LocalMaxima = %v, want [3 5]", got)
	}
}

func TestFullKMeans(t *testing.T) {
	data := twoBlob()
	assign, means, err := FullKMeans(data, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != len(data) || len(means) != 2 {
		t.Fatalf("shapes wrong: %d assigns, %d means", len(assign), len(means))
	}
	if _, _, err := FullKMeans(data, 0); err == nil {
		t.Fatal("κ=0 should error")
	}
}

func TestSampleWithoutReplacementDistinct(t *testing.T) {
	data := make([]float64, 100)
	for i := range data {
		data[i] = float64(i)
	}
	got := sampleWithoutReplacement(data, 50, 7)
	seen := map[float64]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("duplicate sample value %v", v)
		}
		seen[v] = true
	}
}
