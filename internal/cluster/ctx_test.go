package cluster

import (
	"context"
	"errors"
	"testing"
)

// TestSweepKappaCtxPreCancelled asserts the κ-sweep stops before its
// first κ under a done context, wrapping the context error.
func TestSweepKappaCtxPreCancelled(t *testing.T) {
	data := make([]float64, 60)
	for i := range data {
		data[i] = float64(i % 3)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SweepKappaCtx(ctx, data, SweepOptions{KappaMax: 8})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}

// TestSweepKappaCtxUncancelledMatchesSweepKappa pins that threading a
// live context changes nothing about the sweep.
func TestSweepKappaCtxUncancelledMatchesSweepKappa(t *testing.T) {
	data := make([]float64, 60)
	for i := range data {
		data[i] = float64(i%5) * 1.5
	}
	opts := SweepOptions{KappaMax: 6, Seed: 3}
	want, err := SweepKappa(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SweepKappaCtx(context.Background(), data, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Points) != len(want.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(got.Points), len(want.Points))
	}
	for i := range want.Points {
		if got.Points[i] != want.Points[i] {
			t.Fatalf("sweep point %d differs: %+v vs %+v", i, got.Points[i], want.Points[i])
		}
	}
}
