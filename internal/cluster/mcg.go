// Package cluster implements the cluster-count selection machinery of
// Section 4 of the paper: Jung et al.'s clustering gain and clustering
// balance, the paper's Moderated Clustering Gain (MCG, Equation 1), and the
// sampled κ-sweep that shortlists candidate cluster counts against the
// optimality threshold ε_θ.
package cluster

import (
	"fmt"
	"math"
)

// Stats bundles the quality measures of one clustering configuration.
type Stats struct {
	// K is the number of clusters in the configuration.
	K int
	// Gain is Jung et al.'s clustering gain Δ(C) = Σ_q (|C_q|−1)·‖μ_q−μ_0‖².
	// Larger is better; its maximum over κ indicates the optimal count.
	Gain float64
	// Balance is Jung et al.'s clustering balance: the equally weighted sum
	// of the intra-cluster and inter-cluster error sums. Smaller is better.
	Balance float64
	// MCG is the paper's moderated clustering gain Θ(C) (Equation 1).
	// Larger is better.
	MCG float64
	// IntraError is Σ_q Σ_{d∈C_q} ‖d−μ_q‖².
	IntraError float64
	// InterError is Σ_q |C_q|·‖μ_q−μ_0‖².
	InterError float64
}

// Measure computes Stats for scalar data under the given assignment into k
// clusters. means[c] must be the centroid of cluster c (as produced by
// kmeans.OneD). It returns an error on inconsistent inputs.
//
// The MCG formula follows Equation 1: for each cluster,
//
//	Θ1 = (|C_q|−1)·(μ_q−μ_0)²
//	Θ2 = 1 − log₂(1 + intra_q / (|C_q|·(μ_q−μ_0)²))
//
// with Θ2 clamped to [0, 1] (the paper states Θ2 ∈ [0,1]; the raw formula
// goes negative when the intra-cluster error exceeds the cluster's
// separation, and clamping realizes the stated range). A cluster whose mean
// coincides with the global mean contributes 0: Θ1 is already 0 there and
// the clamp avoids the 0/0 in Θ2.
func Measure(data []float64, assign []int, means []float64, k int) (Stats, error) {
	n := len(data)
	if len(assign) != n {
		return Stats{}, fmt.Errorf("cluster: assign length %d != data length %d", len(assign), n)
	}
	if len(means) != k {
		return Stats{}, fmt.Errorf("cluster: means length %d != k %d", len(means), k)
	}
	if n == 0 {
		return Stats{K: k}, nil
	}
	var mu0 float64
	for _, v := range data {
		mu0 += v
	}
	mu0 /= float64(n)

	sizes := make([]int, k)
	intra := make([]float64, k)
	for i, v := range data {
		c := assign[i]
		if c < 0 || c >= k {
			return Stats{}, fmt.Errorf("cluster: assignment %d out of range [0,%d)", c, k)
		}
		sizes[c]++
		d := v - means[c]
		intra[c] += d * d
	}

	s := Stats{K: k}
	for c := 0; c < k; c++ {
		if sizes[c] == 0 {
			continue
		}
		sep := (means[c] - mu0) * (means[c] - mu0)
		t1 := float64(sizes[c]-1) * sep
		s.Gain += t1
		s.IntraError += intra[c]
		s.InterError += float64(sizes[c]) * sep
		if sep == 0 {
			continue // Θ1 = 0; Θ2 undefined (0/0) — contributes nothing
		}
		t2 := 1 - math.Log2(1+intra[c]/(float64(sizes[c])*sep))
		if t2 < 0 {
			t2 = 0
		} else if t2 > 1 {
			t2 = 1
		}
		s.MCG += t1 * t2
	}
	s.Balance = 0.5*s.IntraError + 0.5*s.InterError
	return s, nil
}

// MCG is a convenience wrapper returning only the moderated clustering gain.
func MCG(data []float64, assign []int, means []float64, k int) (float64, error) {
	s, err := Measure(data, assign, means, k)
	if err != nil {
		return 0, err
	}
	return s.MCG, nil
}
