package cluster

import (
	"context"
	"fmt"

	"roadpart/internal/kmeans"
)

// SweepOptions configures a κ-sweep.
type SweepOptions struct {
	// KappaMin and KappaMax bound the sweep (inclusive). Zero values
	// select 2 and min(25, n−1), matching the paper's practice of sweeping
	// small κ where MCG has already flattened.
	KappaMin, KappaMax int
	// SampleSize caps the number of data points the sweep clusters. The
	// paper applies repetitive clustering to a random sample "much smaller
	// than the actual dataset" to keep the sweep cheap. 0 selects
	// min(n, 2000). Sampling is deterministic in Seed.
	SampleSize int
	// Seed drives the sampling.
	Seed uint64
}

// SweepPoint records the measures at one κ.
type SweepPoint struct {
	Kappa int
	Stats Stats
}

// Sweep holds the result of a κ-sweep over a (possibly sampled) dataset.
type Sweep struct {
	Points []SweepPoint
	// SampleN is the number of points the sweep actually clustered.
	SampleN int
}

// SweepKappa runs kmeans.OneD for each κ in [KappaMin, KappaMax] on a random
// sample of data and records the quality measures. It implements the
// shortlisting stage of Algorithm 1 (lines 3–9): the caller filters the
// resulting points with Shortlist and re-clusters the full dataset only for
// the surviving κ values.
func SweepKappa(data []float64, opts SweepOptions) (*Sweep, error) {
	return SweepKappaCtx(context.Background(), data, opts)
}

// SweepKappaCtx is SweepKappa with cooperative cancellation: the sweep
// checks ctx before clustering each κ (one κ's k-means run is the
// cancellation grain) and returns ctx's error once it is done.
func SweepKappaCtx(ctx context.Context, data []float64, opts SweepOptions) (*Sweep, error) {
	n := len(data)
	if n < 2 {
		return nil, fmt.Errorf("cluster: SweepKappa needs at least 2 points, got %d", n)
	}
	lo := opts.KappaMin
	if lo < 2 {
		lo = 2
	}
	hi := opts.KappaMax
	if hi == 0 {
		hi = 25
	}
	if hi > n-1 {
		hi = n - 1
	}
	if lo > hi {
		lo = hi
	}

	sampleN := opts.SampleSize
	if sampleN <= 0 {
		sampleN = 2000
	}
	sample := data
	if sampleN < n {
		sample = sampleWithoutReplacement(data, sampleN, opts.Seed)
	} else {
		sampleN = n
	}

	// One clustering scratch and one means buffer serve the whole sweep;
	// Measure reads them and retains nothing, so per-κ allocations are
	// limited to the recorded SweepPoint.
	sw := &Sweep{SampleN: sampleN}
	var ks kmeans.Scratch
	meansBuf := make([]float64, hi)
	for kappa := lo; kappa <= hi; kappa++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("cluster: κ-sweep interrupted at κ=%d: %w", kappa, err)
		}
		res, err := ks.OneD(sample, kappa, 0)
		if err != nil {
			return nil, fmt.Errorf("cluster: κ=%d: %w", kappa, err)
		}
		means := meansBuf[:kappa]
		for c := 0; c < kappa; c++ {
			means[c] = res.Mean1(c)
		}
		st, err := Measure(sample, res.Assign, means, kappa)
		if err != nil {
			return nil, err
		}
		sw.Points = append(sw.Points, SweepPoint{Kappa: kappa, Stats: st})
	}
	return sw, nil
}

// Shortlist returns the κ values whose MCG is at least epsTheta, in
// ascending order — Algorithm 1's candidate set for supernode creation.
// If none qualify, the single best κ is returned so the pipeline always
// has a configuration to work with.
func (s *Sweep) Shortlist(epsTheta float64) []int {
	var out []int
	for _, p := range s.Points {
		if p.Stats.MCG >= epsTheta {
			out = append(out, p.Kappa)
		}
	}
	if len(out) == 0 && len(s.Points) > 0 {
		out = []int{s.OptimalKappa()}
	}
	return out
}

// OptimalKappa returns the κ with the maximum MCG (the global optimality
// maximum θ of Section 4.1). It returns 0 for an empty sweep.
func (s *Sweep) OptimalKappa() int {
	best, bestV := 0, 0.0
	for i, p := range s.Points {
		if i == 0 || p.Stats.MCG > bestV {
			best, bestV = p.Kappa, p.Stats.MCG
		}
	}
	return best
}

// LocalMaxima returns the κ values whose MCG exceeds both neighbors' —
// the local optimality maxima of Section 4.1's incremental test. Endpoint
// κ values qualify when they exceed their single neighbor.
func (s *Sweep) LocalMaxima() []int {
	var out []int
	for i, p := range s.Points {
		left := i == 0 || p.Stats.MCG > s.Points[i-1].Stats.MCG
		right := i == len(s.Points)-1 || p.Stats.MCG > s.Points[i+1].Stats.MCG
		if left && right {
			out = append(out, p.Kappa)
		}
	}
	return out
}

// ElbowKappa returns the smallest κ whose MCG is at least frac (e.g. 0.9)
// of the sweep's maximum MCG. The paper picks "the value of κ after which
// there is little increase in MCG" to keep the supernode count small; this
// captures that rule. It returns 0 for an empty sweep.
func (s *Sweep) ElbowKappa(frac float64) int {
	if len(s.Points) == 0 {
		return 0
	}
	maxV := s.Points[0].Stats.MCG
	for _, p := range s.Points {
		if p.Stats.MCG > maxV {
			maxV = p.Stats.MCG
		}
	}
	for _, p := range s.Points {
		if p.Stats.MCG >= frac*maxV {
			return p.Kappa
		}
	}
	return s.Points[len(s.Points)-1].Kappa
}

// FullKMeans clusters the complete dataset at a fixed κ with the
// deterministic 1-D solver and returns the assignment and cluster means —
// the full-data re-clustering step that follows shortlisting in
// Algorithm 1, also used standalone by the Figure 5 experiment.
func FullKMeans(data []float64, kappa int) ([]int, []float64, error) {
	res, err := kmeans.OneD(data, kappa, 0)
	if err != nil {
		return nil, nil, err
	}
	means := make([]float64, kappa)
	for c := 0; c < kappa; c++ {
		means[c] = res.Mean1(c)
	}
	return res.Assign, means, nil
}

// sampleWithoutReplacement draws m distinct elements of data, deterministic
// in seed, using a partial Fisher–Yates over an index permutation.
func sampleWithoutReplacement(data []float64, m int, seed uint64) []float64 {
	n := len(data)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	rng := sm64{state: seed ^ 0xd1b54a32d192ed03}
	out := make([]float64, m)
	for i := 0; i < m; i++ {
		j := i + rng.intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
		out[i] = data[idx[i]]
	}
	return out
}

type sm64 struct{ state uint64 }

func (s *sm64) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *sm64) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(s.next() % uint64(n))
}
