// Package coarsen implements the contraction side of the multilevel
// partitioning path (docs/SCALING.md): deterministic heavy-edge matching
// builds a hierarchy of successively smaller graphs with density-weighted
// vertex and edge aggregation, the spectral α-Cut core solves on the
// coarsest level, and ProjectToFinest maps the labels back down through
// every level with a boundary-local refinement pass at each step.
//
// Contraction invariants (asserted by the package tests):
//   - node counts strictly decrease level to level, by at least
//     Options.MinShrink per round (the stall guard ends contraction
//     otherwise);
//   - vertex weights are conserved: every level's weights sum to the
//     finest node count;
//   - cross-partition edge weight is conserved: a coarse edge carries the
//     summed weight of every fine edge between its two clusters, and only
//     intra-cluster (contracted) weight is dropped;
//   - matched pairs are always adjacent in their level's graph;
//   - connected components are preserved, so a k-way partition feasible on
//     the finest graph stays feasible on every coarser one;
//   - the whole hierarchy is a pure function of (graph, features,
//     Options.Seed) — repeated Builds are identical.
package coarsen

import (
	"context"
	"fmt"
	"sort"

	"roadpart/internal/cut"
	"roadpart/internal/graph"
	"roadpart/internal/linalg"
	"roadpart/internal/obs"
)

// Multilevel pipeline observability: stage timers for the three phases
// (project/refine run inside the spectral_cut stage, once per
// uncoarsening step) and counters for level/contraction/move totals.
var (
	stageCoarsen = obs.StageTimer("coarsen")
	stageProject = obs.StageTimer("project")
	stageRefine  = obs.StageTimer("refine")

	mlHelp        = "Multilevel coarsening pipeline event totals by kind."
	ctrLevels     = obs.Default().Counter("roadpart_multilevel_total", mlHelp, "event", "levels")
	ctrContracted = obs.Default().Counter("roadpart_multilevel_total", mlHelp, "event", "contracted")
	ctrMoves      = obs.Default().Counter("roadpart_multilevel_total", mlHelp, "event", "refine_moves")
)

// Options tunes hierarchy construction. The zero value selects the
// defaults documented per field (docs/TUNING.md § Multilevel & scale).
type Options struct {
	// TargetNodes is the spectral core's comfort zone: contraction stops
	// once a level has at most this many nodes. 0 selects 2048.
	TargetNodes int
	// MaxLevels caps the number of contraction rounds. 0 selects 24.
	MaxLevels int
	// MinShrink is the stall guard: a round must shrink the node count by
	// at least this fraction or contraction stops (heavy-edge matching
	// finds almost no pairs on degenerate graphs). 0 selects 0.05.
	MinShrink float64
	// Seed drives the matching visit order; the hierarchy is a pure
	// function of (graph, features, Seed).
	Seed int64
	// RefinePasses bounds the boundary-refinement sweeps per uncoarsening
	// step. 0 selects 4; negative disables refinement.
	RefinePasses int
}

func (o Options) normalized() Options {
	if o.TargetNodes <= 0 {
		o.TargetNodes = 2048
	}
	if o.MaxLevels <= 0 {
		o.MaxLevels = 24
	}
	if o.MinShrink <= 0 {
		o.MinShrink = 0.05
	}
	if o.RefinePasses == 0 {
		o.RefinePasses = 4
	}
	return o
}

// Hierarchy is a contraction hierarchy, finest level first. It
// implements cut.Level: Graph returns the coarsest graph for the
// spectral core to factor, and ProjectToFinest maps coarse labels back
// to the finest graph, refining at each step.
var _ cut.Level = (*Hierarchy)(nil)

type Hierarchy struct {
	opts    Options
	graphs  []*graph.Graph // graphs[0] is the finest (input) graph
	feats   [][]float64    // aggregated density feature per node; nil throughout when none supplied
	weights [][]float64    // aggregated fine-vertex count per node
	maps    [][]int        // maps[i][v] = node of graphs[i+1] that absorbed v
}

// Build constructs the hierarchy for g, contracting until the coarsest
// level fits Options.TargetNodes (or a round stalls). f is the per-node
// density feature aggregated through the levels as a weighted mean; it
// may be nil. Build observes ctx between levels and returns its error
// unwrapped when cancelled mid-coarsening.
func Build(ctx context.Context, g *graph.Graph, f []float64, opts Options) (*Hierarchy, error) {
	if g == nil || g.N() == 0 {
		return nil, fmt.Errorf("coarsen: empty graph")
	}
	if f != nil && len(f) != g.N() {
		return nil, fmt.Errorf("coarsen: %d features for %d nodes", len(f), g.N())
	}
	opts = opts.normalized()
	sp := stageCoarsen.Start()
	defer sp.End()

	w := make([]float64, g.N())
	for i := range w {
		w[i] = 1
	}
	h := &Hierarchy{
		opts:    opts,
		graphs:  []*graph.Graph{g},
		feats:   [][]float64{f},
		weights: [][]float64{w},
	}
	for len(h.maps) < opts.MaxLevels {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cur := h.graphs[len(h.graphs)-1]
		if cur.N() <= opts.TargetNodes {
			break
		}
		cid, nc := matchLevel(cur, opts.Seed, len(h.maps))
		if float64(nc) > float64(cur.N())*(1-opts.MinShrink) {
			break // stall guard
		}
		cg, cf, cw, err := contract(cur, h.feats[len(h.feats)-1], h.weights[len(h.weights)-1], cid, nc)
		if err != nil {
			return nil, err
		}
		h.maps = append(h.maps, cid)
		h.graphs = append(h.graphs, cg)
		h.feats = append(h.feats, cf)
		h.weights = append(h.weights, cw)
		ctrLevels.Inc()
		ctrContracted.Add(uint64(cur.N() - nc))
	}
	return h, nil
}

// Levels returns the number of levels in the hierarchy (1 when no
// contraction happened).
func (h *Hierarchy) Levels() int { return len(h.graphs) }

// NodeCounts returns the per-level node counts, finest first.
func (h *Hierarchy) NodeCounts() []int {
	out := make([]int, len(h.graphs))
	for i, g := range h.graphs {
		out[i] = g.N()
	}
	return out
}

// Finest returns the input graph.
func (h *Hierarchy) Finest() *graph.Graph { return h.graphs[0] }

// Graph returns the coarsest graph — the one the spectral core factors
// (cut.Level).
func (h *Hierarchy) Graph() *graph.Graph { return h.graphs[len(h.graphs)-1] }

// Features returns the coarsest level's aggregated density features
// (nil when Build received none).
func (h *Hierarchy) Features() []float64 { return h.feats[len(h.feats)-1] }

// ProjectToFinest maps a labeling of the coarsest graph down to the
// finest one (cut.Level). At each uncoarsening step every fine node
// inherits its coarse cluster's label, then a boundary-local
// Fiduccia–Mattheyses pass (cut.RefineAlphaCutBoundary) re-evaluates
// frontier vertices against that level's graph. Every coarse cluster is
// non-empty, projection is surjective and refinement never empties a
// partition, so k is preserved exactly. The projection is deterministic;
// ctx is observed once per level.
func (h *Hierarchy) ProjectToFinest(ctx context.Context, labels []int, k int) ([]int, int, error) {
	if len(labels) != h.Graph().N() {
		return nil, 0, fmt.Errorf("coarsen: %d labels for coarsest level of %d nodes", len(labels), h.Graph().N())
	}
	cur := labels
	for i := len(h.graphs) - 2; i >= 0; i-- {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		fineG := h.graphs[i]
		cid := h.maps[i]
		sp := stageProject.Start()
		fine := make([]int, fineG.N())
		for v := range fine {
			fine[v] = cur[cid[v]]
		}
		sp.End()
		if h.opts.RefinePasses > 0 {
			spr := stageRefine.Start()
			moves, err := cut.RefineAlphaCutBoundary(fineG, fine, k, cut.BoundaryRefineOptions{MaxPasses: h.opts.RefinePasses})
			spr.End()
			if err != nil {
				return nil, 0, err
			}
			ctrMoves.Add(uint64(moves))
		}
		cur = fine
	}
	return cur, k, nil
}

// splitMix64 is the SplitMix64 step — the same generator family
// internal/gen uses, inlined so coarsen depends only on graph/cut.
func splitMix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// matchLevel computes one round of heavy-edge matching on g and returns
// the fine→coarse cluster map plus the coarse node count. Unmatched
// vertices carry over as singleton clusters. The visit order is a
// seed-and-level-keyed permutation; within a visit the heaviest
// unmatched neighbor wins, ties broken toward the smallest index, so the
// matching is deterministic.
func matchLevel(g *graph.Graph, seed int64, level int) ([]int, int) {
	n := g.N()
	mate := linalg.GetInts(n)
	perm := linalg.GetInts(n)
	acc := linalg.GetVec(n)
	stamp := linalg.GetInts(n)
	defer func() {
		linalg.PutInts(mate)
		linalg.PutInts(perm)
		linalg.PutVec(acc)
		linalg.PutInts(stamp)
	}()
	for i := range mate {
		mate[i] = -1
	}
	// Seed-keyed Fisher–Yates visit order, mixed per level so successive
	// rounds do not replay the same order.
	s := uint64(seed)*0x9e3779b97f4a7c15 + uint64(level)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := int(splitMix64(&s) % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}

	var nbrs []int
	for _, u := range perm {
		if mate[u] >= 0 {
			continue
		}
		// Accumulate parallel-edge weight per unmatched neighbor.
		nbrs = nbrs[:0]
		for _, e := range g.Neighbors(u) {
			v := e.To
			if v == u || mate[v] >= 0 {
				continue
			}
			if stamp[v] != u+1 {
				stamp[v] = u + 1
				acc[v] = 0
				nbrs = append(nbrs, v)
			}
			acc[v] += e.W
		}
		best := -1
		var bestW float64
		for _, v := range nbrs {
			if best < 0 || acc[v] > bestW || (acc[v] == bestW && v < best) {
				best, bestW = v, acc[v]
			}
		}
		if best >= 0 {
			mate[u], mate[best] = best, u
		} else {
			mate[u] = u
		}
	}

	// Coarse ids in ascending fine-id order: scan order, not match order,
	// decides numbering, so the ids are independent of the permutation.
	cid := make([]int, n)
	for i := range cid {
		cid[i] = -1
	}
	nc := 0
	for u := 0; u < n; u++ {
		if cid[u] >= 0 {
			continue
		}
		cid[u] = nc
		if m := mate[u]; m != u && cid[m] < 0 {
			cid[m] = nc
		}
		nc++
	}
	return cid, nc
}

// contract builds the coarse graph plus aggregated features and vertex
// weights for one cluster map. Edge weights between two clusters are the
// sums over all fine edges between them (parallel fine edges included);
// intra-cluster edges contract away (graph.Graph holds no self-loops).
// Features aggregate as the vertex-weight-weighted mean — the coarse
// density is the mean density of the fine vertices it represents, which
// keeps the α-Cut similarity scale intact across levels. The coarse
// adjacency is emitted in sorted neighbor order from a Reserve'd
// one-allocation build.
func contract(g *graph.Graph, feat, w []float64, cid []int, nc int) (*graph.Graph, []float64, []float64, error) {
	n := g.N()
	start := linalg.GetInts(nc + 1)
	members := linalg.GetInts(n)
	cursor := linalg.GetInts(nc)
	acc := linalg.GetVec(nc)
	stamp := linalg.GetInts(nc)
	deg := linalg.GetInts(nc)
	defer func() {
		linalg.PutInts(start)
		linalg.PutInts(members)
		linalg.PutInts(cursor)
		linalg.PutVec(acc)
		linalg.PutInts(stamp)
		linalg.PutInts(deg)
	}()

	// Member buckets by counting sort.
	for _, c := range cid {
		start[c+1]++
	}
	for c := 1; c <= nc; c++ {
		start[c] += start[c-1]
	}
	copy(cursor, start[:nc])
	for u := 0; u < n; u++ {
		c := cid[u]
		members[cursor[c]] = u
		cursor[c]++
	}

	// Pass A: distinct coarse-neighbor counts, so the coarse graph is
	// built with one Reserve'd allocation (the XL tier would otherwise
	// churn through append regrowth on millions of adjacency slots).
	epoch := 0
	for c := 0; c < nc; c++ {
		epoch++
		cnt := 0
		for i := start[c]; i < start[c+1]; i++ {
			for _, e := range g.Neighbors(members[i]) {
				cc := cid[e.To]
				if cc == c {
					continue
				}
				if stamp[cc] != epoch {
					stamp[cc] = epoch
					cnt++
				}
			}
		}
		deg[c] = cnt
	}
	cg := graph.New(nc)
	cg.Reserve(deg[:nc])

	// Pass B: accumulate cross-cluster weight and emit each coarse edge
	// once, from its lower endpoint, in ascending neighbor order.
	var nbrs []int
	for c := 0; c < nc; c++ {
		epoch++
		nbrs = nbrs[:0]
		for i := start[c]; i < start[c+1]; i++ {
			for _, e := range g.Neighbors(members[i]) {
				cc := cid[e.To]
				if cc == c {
					continue
				}
				if stamp[cc] != epoch {
					stamp[cc] = epoch
					acc[cc] = 0
					nbrs = append(nbrs, cc)
				}
				acc[cc] += e.W
			}
		}
		sort.Ints(nbrs)
		for _, cc := range nbrs {
			if cc > c {
				if err := cg.AddEdge(c, cc, acc[cc]); err != nil {
					return nil, nil, nil, err
				}
			}
		}
	}

	cw := make([]float64, nc)
	var cf []float64
	if feat != nil {
		cf = make([]float64, nc)
	}
	for u := 0; u < n; u++ {
		c := cid[u]
		cw[c] += w[u]
		if feat != nil {
			cf[c] += w[u] * feat[u]
		}
	}
	if feat != nil {
		for c := range cf {
			cf[c] /= cw[c] // every cluster is non-empty, cw[c] >= 1
		}
	}
	return cg, cf, cw, nil
}
