package coarsen

import (
	"context"
	"math"
	"testing"

	"roadpart/internal/gen"
	"roadpart/internal/graph"
	"roadpart/internal/roadnet"
	"roadpart/internal/traffic"
)

// testGraph builds a city-sized dual graph with a synthetic density
// field — the shape the multilevel path sees in production.
func testGraph(tb testing.TB) (*graph.Graph, []float64) {
	tb.Helper()
	net, err := gen.City(gen.CityConfig{TargetIntersections: 1200, TargetSegments: 2300, Jitter: 0.15, Seed: 3})
	if err != nil {
		tb.Fatal(err)
	}
	snap, err := traffic.SyntheticField(net, traffic.FieldConfig{Seed: 9})
	if err != nil {
		tb.Fatal(err)
	}
	if err := traffic.ApplySnapshot(net, snap); err != nil {
		tb.Fatal(err)
	}
	g, err := roadnet.DualGraph(net)
	if err != nil {
		tb.Fatal(err)
	}
	return g, net.Densities()
}

// components counts connected components with a plain BFS, independent
// of the graph package's pooled helpers.
func components(g *graph.Graph) int {
	seen := make([]bool, g.N())
	queue := make([]int, 0, g.N())
	n := 0
	for s := 0; s < g.N(); s++ {
		if seen[s] {
			continue
		}
		n++
		seen[s] = true
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, e := range g.Neighbors(u) {
				if !seen[e.To] {
					seen[e.To] = true
					queue = append(queue, e.To)
				}
			}
		}
	}
	return n
}

func TestBuildInvariants(t *testing.T) {
	g, f := testGraph(t)
	opts := Options{TargetNodes: 64, Seed: 11}
	h, err := Build(context.Background(), g, f, opts)
	if err != nil {
		t.Fatal(err)
	}
	if h.Levels() < 3 {
		t.Fatalf("expected several levels coarsening %d nodes to 64, got %d", g.N(), h.Levels())
	}
	counts := h.NodeCounts()
	for i := 1; i < len(counts); i++ {
		if counts[i] >= counts[i-1] {
			t.Fatalf("level %d has %d nodes, not fewer than the %d above it", i, counts[i], counts[i-1])
		}
	}
	if last := counts[len(counts)-1]; last > opts.TargetNodes {
		// The stall guard may stop early, but not on this graph: grids
		// match densely.
		t.Errorf("coarsest level has %d nodes, want <= %d", last, opts.TargetNodes)
	}

	for lvl := 0; lvl+1 < len(h.graphs); lvl++ {
		fine, coarse, cid := h.graphs[lvl], h.graphs[lvl+1], h.maps[lvl]

		// Vertex-weight conservation: every level aggregates exactly the
		// finest vertices.
		var sum float64
		for _, w := range h.weights[lvl+1] {
			sum += w
		}
		if sum != float64(g.N()) {
			t.Errorf("level %d weights sum to %v, want %d", lvl+1, sum, g.N())
		}

		// Edge-weight conservation: coarse total = fine total minus the
		// contracted (intra-cluster) weight.
		var intra float64
		for u := 0; u < fine.N(); u++ {
			for _, e := range fine.Neighbors(u) {
				if e.To > u && cid[e.To] == cid[u] {
					intra += e.W
				}
			}
		}
		wantTotal := fine.TotalWeight() - intra
		if got := coarse.TotalWeight(); math.Abs(got-wantTotal) > 1e-6*math.Max(1, wantTotal) {
			t.Errorf("level %d coarse weight %v, want %v", lvl+1, got, wantTotal)
		}

		// Matched pairs are adjacent: any two fine vertices sharing a
		// coarse id must share an edge.
		first := make(map[int]int)
		for u := 0; u < fine.N(); u++ {
			v, ok := first[cid[u]]
			if !ok {
				first[cid[u]] = u
				continue
			}
			adjacent := false
			for _, e := range fine.Neighbors(v) {
				if e.To == u {
					adjacent = true
					break
				}
			}
			if !adjacent {
				t.Fatalf("level %d: cluster %d merged non-adjacent vertices %d and %d", lvl, cid[u], v, u)
			}
		}

		// Contraction preserves connectivity structure.
		if cf, cc := components(fine), components(coarse); cf != cc {
			t.Errorf("level %d has %d components, coarse level %d", lvl, cf, cc)
		}
	}

	// Density aggregation: the weighted mean of coarse features equals
	// the mean of fine features at every level.
	var want float64
	for _, x := range f {
		want += x
	}
	for lvl := range h.graphs {
		var got float64
		for i, x := range h.feats[lvl] {
			got += x * h.weights[lvl][i]
		}
		if math.Abs(got-want) > 1e-6*math.Max(1, math.Abs(want)) {
			t.Errorf("level %d weighted feature mass %v, want %v", lvl, got, want)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	g, f := testGraph(t)
	opts := Options{TargetNodes: 64, Seed: 5}
	a, err := Build(context.Background(), g, f, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(context.Background(), g, f, opts)
	if err != nil {
		t.Fatal(err)
	}
	if la, lb := a.Levels(), b.Levels(); la != lb {
		t.Fatalf("levels %d vs %d across identical Builds", la, lb)
	}
	for lvl := range a.maps {
		for v := range a.maps[lvl] {
			if a.maps[lvl][v] != b.maps[lvl][v] {
				t.Fatalf("level %d: cluster map differs at vertex %d across identical Builds", lvl, v)
			}
		}
	}
	// A different seed visits in a different order and (almost surely)
	// produces a different matching.
	c, err := Build(context.Background(), g, f, Options{TargetNodes: 64, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	same := c.Levels() == a.Levels()
	if same {
		for lvl := range a.maps {
			for v := range a.maps[lvl] {
				if a.maps[lvl][v] != c.maps[lvl][v] {
					same = false
					break
				}
			}
		}
	}
	if same {
		t.Error("seeds 5 and 6 produced identical hierarchies; the seed is not reaching the matching")
	}
}

func TestProjectToFinest(t *testing.T) {
	g, f := testGraph(t)
	h, err := Build(context.Background(), g, f, Options{TargetNodes: 64, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	const k = 3
	coarse := make([]int, h.Graph().N())
	for i := range coarse {
		coarse[i] = i % k
	}
	fine, gotK, err := h.ProjectToFinest(context.Background(), coarse, k)
	if err != nil {
		t.Fatal(err)
	}
	if gotK != k {
		t.Fatalf("projection changed k: %d -> %d", k, gotK)
	}
	if len(fine) != g.N() {
		t.Fatalf("projected %d labels for %d finest nodes", len(fine), g.N())
	}
	present := make([]bool, k)
	for v, l := range fine {
		if l < 0 || l >= k {
			t.Fatalf("label %d at vertex %d outside [0,%d)", l, v, k)
		}
		present[l] = true
	}
	for l, ok := range present {
		if !ok {
			t.Errorf("projection emptied partition %d", l)
		}
	}
	// Determinism of the full project+refine path.
	again, _, err := h.ProjectToFinest(context.Background(), coarse, k)
	if err != nil {
		t.Fatal(err)
	}
	for v := range fine {
		if fine[v] != again[v] {
			t.Fatalf("projection differs at vertex %d across identical calls", v)
		}
	}
}

func TestBuildCancelled(t *testing.T) {
	g, f := testGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Build(ctx, g, f, Options{TargetNodes: 64}); err != context.Canceled {
		t.Fatalf("Build with cancelled ctx: %v, want context.Canceled", err)
	}
}

func TestBuildErrors(t *testing.T) {
	g, f := testGraph(t)
	if _, err := Build(context.Background(), graph.New(0), nil, Options{}); err == nil {
		t.Error("empty graph accepted")
	}
	if _, err := Build(context.Background(), g, f[:3], Options{}); err == nil {
		t.Error("mismatched feature length accepted")
	}
	h, err := Build(context.Background(), g, f, Options{TargetNodes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.ProjectToFinest(context.Background(), make([]int, 1), 1); err == nil {
		t.Error("mismatched label length accepted")
	}
}

// TestBuildBelowTarget pins the degenerate case: a graph already inside
// the comfort zone yields a one-level hierarchy whose projection is the
// identity, so MultilevelOn on a small network equals the flat path.
func TestBuildBelowTarget(t *testing.T) {
	g, f := testGraph(t)
	h, err := Build(context.Background(), g, f, Options{TargetNodes: g.N()})
	if err != nil {
		t.Fatal(err)
	}
	if h.Levels() != 1 {
		t.Fatalf("got %d levels for a graph already below TargetNodes", h.Levels())
	}
	labels := make([]int, g.N())
	for i := range labels {
		labels[i] = i % 2
	}
	out, k, err := h.ProjectToFinest(context.Background(), labels, 2)
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 {
		t.Fatalf("identity projection changed k to %d", k)
	}
	for i := range labels {
		if out[i] != labels[i] {
			t.Fatal("identity projection changed labels")
		}
	}
}
