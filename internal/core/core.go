// Package core assembles the paper's complete spatial partitioning
// framework (Figure 2): road graph construction (module 1), road
// supergraph mining (module 2) and supergraph partitioning by α-Cut or
// normalized cut (module 3), with the per-module timing breakdown the
// paper reports in Table 3.
//
// The four evaluation schemes of Section 6.3 are exposed directly:
//
//	AG  — α-Cut directly on the road graph
//	NG  — normalized cut directly on the road graph (the baseline)
//	ASG — α-Cut on the supergraph
//	NSG — normalized cut on the supergraph
//
// A Pipeline separates the k-independent stages (modules 1–2) from the
// k-dependent partitioning so that sweeps over k — how the paper selects
// the optimal partition count via the ANS minimum — do not repeat the
// mining work.
package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"roadpart/internal/coarsen"
	"roadpart/internal/cut"
	"roadpart/internal/graph"
	"roadpart/internal/metrics"
	"roadpart/internal/obs"
	"roadpart/internal/parallel"
	"roadpart/internal/roadnet"
	"roadpart/internal/supergraph"
)

// Stage timers for the pipeline hot path (see docs/TUNING.md
// § Observability). Cached here so recording is one atomic update.
var (
	stageRoadGraph = obs.StageTimer("road_graph_build")
	stageSpectral  = obs.StageTimer("spectral_cut")
	stageRefine    = obs.StageTimer("alpha_cut_refine")
	stageSweep     = obs.StageTimer("k_sweep")
)

// Scheme selects the partitioning configuration of Section 6.3.
type Scheme int

const (
	// AG applies α-Cut directly on the road graph.
	AG Scheme = iota
	// NG applies normalized cut directly on the road graph.
	NG
	// ASG applies α-Cut on the mined road supergraph.
	ASG
	// NSG applies normalized cut on the mined road supergraph.
	NSG
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case AG:
		return "AG"
	case NG:
		return "NG"
	case ASG:
		return "ASG"
	case NSG:
		return "NSG"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// usesSupergraph reports whether the scheme runs module 2.
func (s Scheme) usesSupergraph() bool { return s == ASG || s == NSG }

// method maps the scheme to its spectral cut.
func (s Scheme) method() cut.Method {
	if s == AG || s == ASG {
		return cut.MethodAlphaCut
	}
	return cut.MethodNCut
}

// Config parameterizes the framework.
type Config struct {
	// K is the desired number of partitions.
	K int
	// Scheme selects the cut and whether the supergraph level runs.
	Scheme Scheme
	// StabilityEps is the supernode stability threshold ε_η in [0,1];
	// 0 skips Algorithm 2 (the paper's plain ASG/NSG).
	StabilityEps float64
	// EpsTheta is the absolute MCG shortlisting threshold ε_θ; 0 uses
	// EpsThetaFrac of the sweep maximum instead.
	EpsTheta float64
	// EpsThetaFrac is the relative MCG threshold; 0 selects 0.8.
	EpsThetaFrac float64
	// KappaMax bounds the κ-sweep; 0 selects 25.
	KappaMax int
	// SampleSize caps the κ-sweep sample; 0 selects 2000.
	SampleSize int
	// Restarts is the k-means best-of-n on the spectral embedding;
	// 0 selects 5.
	Restarts int
	// DenseCutoff switches the eigensolver from dense to Lanczos; 0
	// selects 900.
	DenseCutoff int
	// Weighting selects the superlink weight formula (Eq. 3 by default).
	Weighting supergraph.WeightMode
	// Refine applies α-Cut boundary refinement (cut.RefineAlphaCut) to
	// the final road-segment partition — an optional post-processing
	// extension analogous to Ji & Geroliminis's adjustment step.
	Refine bool
	// Seed drives all randomized stages.
	Seed uint64
	// Workers bounds the goroutines used by the parallel stages (the
	// k-sweep fan-out and the k-means restarts beneath each partition):
	// 0 selects GOMAXPROCS, 1 forces serial execution. Results are
	// bit-identical for every worker count at the same Seed.
	Workers int
	// ColdWiden disables the warm-started widening of the cached
	// spectral decomposition — every solve starts from the seeded
	// random basis instead of the previous Ritz block. Partitions are
	// identical either way (docs/NUMERICS.md § Warm starts); the knob
	// exists for warm-vs-cold benchmarks and the tests pinning that
	// equivalence.
	ColdWiden bool
	// Multilevel selects the coarsen → solve → project path for module 3
	// (docs/SCALING.md). The zero value, MultilevelAuto, engages it only
	// when the module-3 graph reaches MultilevelThreshold nodes, so small
	// networks stay on the flat path bit for bit.
	Multilevel MultilevelMode
	// MultilevelThreshold is the module-3 node count at or above which
	// MultilevelAuto engages; 0 selects DefaultMultilevelThreshold. It is
	// never read when Multilevel is Off or On.
	MultilevelThreshold int
}

// Normalized returns the config with every zero-value "use a default"
// field replaced by the default the pipeline actually applies downstream
// (the κ-sweep bounds inside cluster.SweepKappa, the MCG threshold
// inside supergraph.Mine, the spectral options inside cut). Two configs
// with equal Normalized forms drive identical pipelines on the same
// inputs, which is exactly what content-addressed result caching keys
// on (internal/resultcache); the pinned values are cross-checked against
// the downstream packages by TestNormalizedMatchesDownstreamDefaults.
//
// Fields that do not influence the output are canonicalized away:
// Workers is forced to 0 (worker count never changes results — the
// determinism guarantee), and for schemes that skip module 2 the mining
// parameters are zeroed because they are never read.
func (c Config) Normalized() Config {
	if c.Scheme.usesSupergraph() {
		if c.EpsTheta != 0 {
			c.EpsThetaFrac = 0 // ignored when the absolute threshold is set
		} else if c.EpsThetaFrac == 0 {
			c.EpsThetaFrac = 0.8
		}
		if c.KappaMax == 0 {
			c.KappaMax = 25
		}
		if c.SampleSize == 0 {
			c.SampleSize = 2000
		}
	} else {
		c.EpsTheta = 0
		c.EpsThetaFrac = 0
		c.KappaMax = 0
		c.SampleSize = 0
		c.StabilityEps = 0
		c.Weighting = 0
	}
	if c.Restarts == 0 {
		c.Restarts = 5
	}
	if c.DenseCutoff == 0 {
		c.DenseCutoff = 900
	}
	if c.Multilevel == MultilevelAuto {
		if c.MultilevelThreshold == 0 {
			c.MultilevelThreshold = DefaultMultilevelThreshold
		}
	} else {
		c.MultilevelThreshold = 0 // never read when the mode is forced
	}
	c.Workers = 0
	return c
}

// Timing is the per-module wall-clock breakdown of Table 3.
type Timing struct {
	Module1 time.Duration // road graph construction
	Module2 time.Duration // supergraph mining (zero for AG/NG)
	Module3 time.Duration // spectral partitioning
	Total   time.Duration
}

// Result is one partitioning outcome.
type Result struct {
	// Assign is the partition id per road segment, dense in [0, K).
	Assign []int
	// K is the achieved partition count.
	K int
	// KPrime is the disjoint partition count before the k′→k reduction.
	KPrime int
	// Timing is the module breakdown.
	Timing Timing
	// Report carries the four evaluation measures for this result.
	Report metrics.Report
}

// Pipeline holds the k-independent state: the road graph (module 1) and,
// for supergraph schemes, the mined supergraph (module 2).
type Pipeline struct {
	cfg Config
	// G is the dual road graph (unit adjacency weights).
	G *graph.Graph
	// F is the per-segment density vector.
	F []float64
	// SG is the mined supergraph, nil for direct schemes.
	SG *supergraph.Supergraph
	// simG is the congestion-affinity road graph used by the direct
	// schemes: Definition 3 requires cut affinities to measure congestion
	// similarity, so adjacency edges carry the Gaussian similarity of
	// their endpoint densities (the same kernel Equation 3 applies to
	// supernode features).
	simG *graph.Graph
	// spec caches the spectral decomposition of the module-3 graph so a
	// sweep over k (the ANS-minimum selection) pays for the eigenproblem
	// once.
	spec *cut.Spectral
	// hier is the contraction hierarchy when the multilevel path engaged
	// (Config.Multilevel, docs/SCALING.md), nil on the flat path. spec
	// then factors hier's coarsest graph and projects labels back down.
	hier *coarsen.Hierarchy

	m1, m2 time.Duration
}

// SimilarityWeighted reweights every edge of g with the Gaussian density
// similarity exp(−(f_u−f_v)²/(2σ²)) of its endpoints. The bandwidth σ² is
// the mean squared density difference across edges — the local scale —
// rather than the global feature variance: adjacent segments differ far
// less than arbitrary segment pairs, and a global bandwidth would map
// every edge weight to ≈1, making the cut blind to congestion. A graph
// whose adjacent features never differ yields unit weights.
func SimilarityWeighted(g *graph.Graph, f []float64) *graph.Graph {
	var sigma2 float64
	var m int
	for u := 0; u < g.N(); u++ {
		for _, e := range g.Neighbors(u) {
			if e.To > u {
				d := f[u] - f[e.To]
				sigma2 += d * d
				m++
			}
		}
	}
	if m > 0 {
		sigma2 /= float64(m)
	}
	if sigma2 == 0 {
		return g.Reweighted(func(u, v int, w float64) float64 { return 1 })
	}
	return g.Reweighted(func(u, v int, w float64) float64 {
		d := f[u] - f[v]
		return math.Exp(-d * d / (2 * sigma2))
	})
}

// NewPipeline runs modules 1 and 2 for the network under cfg.
func NewPipeline(net *roadnet.Network, cfg Config) (*Pipeline, error) {
	return NewPipelineCtx(context.Background(), net, cfg)
}

// NewPipelineCtx is NewPipeline with cooperative cancellation of the
// mining stages (module 2 observes ctx between clustering runs and
// stability splits). An uncancelled call builds a pipeline bit-identical
// to NewPipeline's.
func NewPipelineCtx(ctx context.Context, net *roadnet.Network, cfg Config) (*Pipeline, error) {
	sp := stageRoadGraph.Start()
	t0 := time.Now()
	g, err := roadnet.DualGraph(net)
	if err != nil {
		return nil, err
	}
	f := net.Densities()
	m1 := time.Since(t0)
	sp.End()
	return newPipelineFromGraph(ctx, g, f, cfg, m1)
}

// NewPipelineFromGraph builds a pipeline directly from a road graph and
// its feature vector, for callers that construct graphs themselves.
func NewPipelineFromGraph(g *graph.Graph, f []float64, cfg Config) (*Pipeline, error) {
	return newPipelineFromGraph(context.Background(), g, f, cfg, 0)
}

// NewPipelineFromGraphCtx is NewPipelineFromGraph with cooperative
// cancellation of the mining stages.
func NewPipelineFromGraphCtx(ctx context.Context, g *graph.Graph, f []float64, cfg Config) (*Pipeline, error) {
	return newPipelineFromGraph(ctx, g, f, cfg, 0)
}

func newPipelineFromGraph(ctx context.Context, g *graph.Graph, f []float64, cfg Config, m1 time.Duration) (*Pipeline, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("core: empty road graph")
	}
	if len(f) != g.N() {
		return nil, fmt.Errorf("core: %d features for %d nodes", len(f), g.N())
	}
	p := &Pipeline{cfg: cfg, G: g, F: f, m1: m1}
	if !cfg.Scheme.usesSupergraph() {
		p.simG = SimilarityWeighted(g, f)
	}
	if cfg.Scheme.usesSupergraph() {
		t0 := time.Now()
		sg, err := supergraph.MineCtx(ctx, g, f, supergraph.MineOptions{
			EpsTheta:     cfg.EpsTheta,
			EpsThetaFrac: cfg.EpsThetaFrac,
			KappaMax:     cfg.KappaMax,
			SampleSize:   cfg.SampleSize,
			StabilityEps: cfg.StabilityEps,
			Weighting:    cfg.Weighting,
			Seed:         cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		p.SG = sg
		p.m2 = time.Since(t0)
	}
	opts := cut.Options{Seed: cfg.Seed, Restarts: cfg.Restarts, DenseCutoff: cfg.DenseCutoff, Workers: cfg.Workers, ColdWiden: cfg.ColdWiden}
	// Module-3 graph and its per-node density feature: the mined
	// supergraph for ASG/NSG, the similarity-weighted road graph
	// otherwise.
	g3, f3 := p.simG, f
	if p.SG != nil {
		g3, f3 = p.SG.Links, p.SG.Features()
	}
	norm := cfg.Normalized()
	multilevel := norm.Multilevel == MultilevelOn ||
		(norm.Multilevel == MultilevelAuto && g3.N() >= norm.MultilevelThreshold)
	if multilevel {
		hier, err := coarsen.Build(ctx, g3, f3, coarsen.Options{Seed: int64(cfg.Seed)})
		if err != nil {
			return nil, err
		}
		p.hier = hier
		p.spec = cut.NewSpectralLevel(hier, cfg.Scheme.method(), opts)
	} else {
		p.spec = cut.NewSpectral(g3, cfg.Scheme.method(), opts)
	}
	return p, nil
}

// PartitionK runs module 3 for the given k and evaluates the result.
func (p *Pipeline) PartitionK(k int) (*Result, error) {
	return p.PartitionKCtx(context.Background(), k)
}

// PartitionKCtx is PartitionK with cooperative cancellation: the spectral
// embedding, k-means and reduction stages observe ctx between work items
// and the call returns ctx's error once it is done. An uncancelled call
// is bit-identical to PartitionK at the same configuration.
func (p *Pipeline) PartitionKCtx(ctx context.Context, k int) (*Result, error) {
	spCut := stageSpectral.Start()
	t0 := time.Now()
	var assign []int
	var kPrime int
	if p.SG != nil {
		if k > len(p.SG.Nodes) {
			return nil, fmt.Errorf("core: k=%d exceeds %d supernodes", k, len(p.SG.Nodes))
		}
		res, err := p.spec.PartitionCtx(ctx, k)
		if err != nil {
			return nil, err
		}
		kPrime = res.KPrime
		assign, err = p.SG.ExpandAssign(res.Assign)
		if err != nil {
			return nil, err
		}
	} else {
		res, err := p.spec.PartitionCtx(ctx, k)
		if err != nil {
			return nil, err
		}
		assign, kPrime = res.Assign, res.KPrime
	}
	// Final C.2 enforcement (recursive bipartitioning can, rarely, leave a
	// merged group disconnected).
	assign, kk, err := cut.RepairConnectivity(p.G, p.F, assign, k)
	if err != nil {
		return nil, err
	}
	spCut.End()
	if p.cfg.Refine {
		spRef := stageRefine.Start()
		// Refinement optimizes congestion affinities, so it runs on the
		// similarity-weighted road graph (built lazily for supergraph
		// schemes, which otherwise never need it).
		simG := p.simG
		if simG == nil {
			simG = SimilarityWeighted(p.G, p.F)
		}
		assign, kk, _, err = cut.RefineAlphaCut(simG, p.F, assign, cut.RefineOptions{})
		if err != nil {
			return nil, err
		}
		spRef.End()
	}
	m3 := time.Since(t0)

	rep, err := metrics.Evaluate(p.F, assign, p.G)
	if err != nil {
		return nil, err
	}
	return &Result{
		Assign: assign,
		K:      kk,
		KPrime: kPrime,
		Timing: Timing{Module1: p.m1, Module2: p.m2, Module3: m3, Total: p.m1 + p.m2 + m3},
		Report: rep,
	}, nil
}

// Partition runs the full framework once: modules 1–3 for cfg.K.
func Partition(net *roadnet.Network, cfg Config) (*Result, error) {
	return PartitionCtx(context.Background(), net, cfg)
}

// PartitionCtx is Partition with cooperative cancellation across all
// three modules.
func PartitionCtx(ctx context.Context, net *roadnet.Network, cfg Config) (*Result, error) {
	p, err := NewPipelineCtx(ctx, net, cfg)
	if err != nil {
		return nil, err
	}
	return p.PartitionKCtx(ctx, cfg.K)
}

// SweepPoint is one k of a sweep.
type SweepPoint struct {
	K      int
	Result *Result
}

// MaxK returns the largest k the pipeline can produce: the supernode
// count for supergraph schemes, the road-graph order otherwise. When the
// multilevel path engaged, the coarsest level's order is the cap — the
// spectral core partitions that graph.
func (p *Pipeline) MaxK() int {
	max := p.G.N()
	if p.SG != nil {
		max = len(p.SG.Nodes)
	}
	if p.hier != nil {
		if n := p.hier.Graph().N(); n < max {
			max = n
		}
	}
	return max
}

// MultilevelLevels returns the depth of the contraction hierarchy the
// pipeline built, or 0 when module 3 runs on the flat path — the
// observable for "did multilevel engage" (docs/SCALING.md).
func (p *Pipeline) MultilevelLevels() int {
	if p.hier == nil {
		return 0
	}
	return p.hier.Levels()
}

// Spectral exposes the pipeline's cached spectral partitioner, the hook
// the temporal tracker uses to carry an eigenbasis across successive
// pipelines: read WarmVector() from the finished pipeline, hand it to the
// successor's SetWarmStart before partitioning.
func (p *Pipeline) Spectral() *cut.Spectral { return p.spec }

// SweepK partitions for every k in [kMin, kMax], reusing modules 1–2.
// kMax is clamped to MaxK(), so callers can pass an ambitious upper bound
// without knowing how condensed the mined supergraph came out.
//
// The per-k partitions run concurrently on Config.Workers goroutines
// after the shared decomposition is warmed to kMax, and the sweep output
// is identical for every worker count at the same Seed.
func (p *Pipeline) SweepK(kMin, kMax int) ([]SweepPoint, error) {
	return p.SweepKCtx(context.Background(), kMin, kMax)
}

// SweepKCtx is SweepK with cooperative cancellation: the fan-out workers
// observe ctx between per-k partitions (one PartitionK is the
// cancellation grain), started partitions drain before the call returns
// — no goroutine outlives a cancelled sweep — and ctx's error is
// returned. An uncancelled sweep is bit-identical to SweepK at the same
// seed and worker count.
func (p *Pipeline) SweepKCtx(ctx context.Context, kMin, kMax int) ([]SweepPoint, error) {
	if kMin < 1 || kMax < kMin {
		return nil, fmt.Errorf("core: bad sweep range [%d,%d]", kMin, kMax)
	}
	if max := p.MaxK(); kMax > max {
		kMax = max
	}
	if kMax < kMin {
		return nil, fmt.Errorf("core: pipeline supports at most k=%d, below the requested minimum %d", p.MaxK(), kMin)
	}
	// Warm the decomposition to the sweep maximum before fanning out, on
	// the serial path too: the Lanczos cache width depends on the first k
	// that computes it, so warming is what keeps every worker count —
	// including Workers=1 — embedding against identical eigenpairs.
	sp := stageSweep.Start()
	defer sp.End()
	if err := p.spec.WarmCtx(ctx, kMax); err != nil {
		return nil, fmt.Errorf("core: warming decomposition to k=%d: %w", kMax, err)
	}
	return parallel.MapCtx(ctx, kMax-kMin+1, p.cfg.Workers, func(i int) (SweepPoint, error) {
		k := kMin + i
		res, err := p.PartitionKCtx(ctx, k)
		if err != nil {
			return SweepPoint{}, fmt.Errorf("core: k=%d: %w", k, err)
		}
		return SweepPoint{K: k, Result: res}, nil
	})
}

// BestKByANS sweeps k and returns the k with the minimum ANS — the
// paper's rule for selecting the optimal number of partitions — along
// with the full sweep.
func (p *Pipeline) BestKByANS(kMin, kMax int) (int, []SweepPoint, error) {
	return p.BestKByANSCtx(context.Background(), kMin, kMax)
}

// BestKByANSCtx is BestKByANS with cooperative cancellation of the
// underlying sweep.
func (p *Pipeline) BestKByANSCtx(ctx context.Context, kMin, kMax int) (int, []SweepPoint, error) {
	sweep, err := p.SweepKCtx(ctx, kMin, kMax)
	if err != nil {
		return 0, nil, err
	}
	best := sweep[0]
	for _, pt := range sweep[1:] {
		if pt.Result.Report.ANS < best.Result.Report.ANS {
			best = pt
		}
	}
	return best.K, sweep, nil
}
