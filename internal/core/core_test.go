package core

import (
	"testing"

	"roadpart/internal/cut"
	"roadpart/internal/gen"
	"roadpart/internal/metrics"
	"roadpart/internal/roadnet"
	"roadpart/internal/traffic"
)

// testNetwork returns a small city with hotspot traffic applied.
func testNetwork(t *testing.T) *roadnet.Network {
	t.Helper()
	net, err := gen.City(gen.CityConfig{TargetIntersections: 150, TargetSegments: 280, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := traffic.SyntheticField(net, traffic.FieldConfig{Hotspots: 3, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if err := traffic.ApplySnapshot(net, snap); err != nil {
		t.Fatal(err)
	}
	return net
}

func TestPartitionAllSchemes(t *testing.T) {
	net := testNetwork(t)
	for _, scheme := range []Scheme{AG, NG, ASG, NSG} {
		cfg := Config{K: 4, Scheme: scheme, Seed: 1}
		res, err := Partition(net, cfg)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if res.K != 4 {
			t.Fatalf("%v: K = %d, want 4", scheme, res.K)
		}
		if len(res.Assign) != len(net.Segments) {
			t.Fatalf("%v: assignment covers %d of %d segments", scheme, len(res.Assign), len(net.Segments))
		}
		g, err := roadnet.DualGraph(net)
		if err != nil {
			t.Fatal(err)
		}
		if err := metrics.ValidatePartition(g, res.Assign); err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if res.Report.K != 4 {
			t.Fatalf("%v: report K = %d", scheme, res.Report.K)
		}
	}
}

func TestSupergraphSchemesRecordModule2(t *testing.T) {
	net := testNetwork(t)
	res, err := Partition(net, Config{K: 3, Scheme: ASG, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Timing.Module2 == 0 {
		t.Fatal("ASG should record module 2 time")
	}
	direct, err := Partition(net, Config{K: 3, Scheme: AG, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if direct.Timing.Module2 != 0 {
		t.Fatal("AG should not run module 2")
	}
	if direct.Timing.Total < direct.Timing.Module1+direct.Timing.Module3 {
		t.Fatal("total time should include all modules")
	}
}

func TestPipelineReusesMining(t *testing.T) {
	net := testNetwork(t)
	p, err := NewPipeline(net, Config{Scheme: ASG, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if p.SG == nil {
		t.Fatal("pipeline should mine the supergraph for ASG")
	}
	if len(p.SG.Nodes) >= p.G.N() {
		t.Fatalf("supergraph (%d) should be smaller than road graph (%d)", len(p.SG.Nodes), p.G.N())
	}
	sweep, err := p.SweepK(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 4 {
		t.Fatalf("sweep has %d points, want 4", len(sweep))
	}
	for _, pt := range sweep {
		if pt.Result.K != pt.K {
			t.Fatalf("sweep point k=%d produced K=%d", pt.K, pt.Result.K)
		}
	}
}

func TestBestKByANS(t *testing.T) {
	net := testNetwork(t)
	p, err := NewPipeline(net, Config{Scheme: AG, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	best, sweep, err := p.BestKByANS(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if best < 2 || best > 6 {
		t.Fatalf("best k = %d outside sweep range", best)
	}
	for _, pt := range sweep {
		if pt.K == best {
			for _, other := range sweep {
				if other.Result.Report.ANS < pt.Result.Report.ANS {
					t.Fatal("BestKByANS did not return the minimum")
				}
			}
		}
	}
}

func TestSchemeString(t *testing.T) {
	if AG.String() != "AG" || NG.String() != "NG" || ASG.String() != "ASG" || NSG.String() != "NSG" {
		t.Fatal("scheme names wrong")
	}
	if Scheme(9).String() == "" {
		t.Fatal("unknown scheme should still print")
	}
}

func TestPartitionErrors(t *testing.T) {
	net := testNetwork(t)
	if _, err := Partition(net, Config{K: 0, Scheme: AG}); err == nil {
		t.Fatal("k=0 should error")
	}
	p, err := NewPipeline(net, Config{Scheme: ASG, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.PartitionK(len(p.SG.Nodes) + 1); err == nil {
		t.Fatal("k above supernode count should error")
	}
	if _, err := p.SweepK(3, 2); err == nil {
		t.Fatal("inverted sweep range should error")
	}
}

func TestSweepKClampsToMaxK(t *testing.T) {
	net := testNetwork(t)
	p, err := NewPipeline(net, Config{Scheme: ASG, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	max := p.MaxK()
	sweep, err := p.SweepK(2, max+50)
	if err != nil {
		t.Fatal(err)
	}
	if last := sweep[len(sweep)-1].K; last != max {
		t.Fatalf("sweep should clamp at MaxK=%d, ended at %d", max, last)
	}
	if _, err := p.SweepK(max+1, max+5); err == nil {
		t.Fatal("sweep entirely above MaxK should error")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	net := testNetwork(t)
	a, err := Partition(net, Config{K: 4, Scheme: ASG, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(net, Config{K: 4, Scheme: ASG, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("framework should be deterministic in seed")
		}
	}
}

func TestRefineConfigImprovesOrMatches(t *testing.T) {
	net := testNetwork(t)
	plain, err := Partition(net, Config{K: 4, Scheme: ASG, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := Partition(net, Config{K: 4, Scheme: ASG, Seed: 3, Refine: true})
	if err != nil {
		t.Fatal(err)
	}
	if refined.K != 4 {
		t.Fatalf("refined K = %d, want 4", refined.K)
	}
	g, err := roadnet.DualGraph(net)
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.ValidatePartition(g, refined.Assign); err != nil {
		t.Fatal(err)
	}
	// Refinement optimizes the α-Cut objective on the similarity graph;
	// verify it did not worsen it.
	simG := SimilarityWeighted(g, net.Densities())
	before, err := cut.AlphaCutValue(simG, plain.Assign)
	if err != nil {
		t.Fatal(err)
	}
	after, err := cut.AlphaCutValue(simG, refined.Assign)
	if err != nil {
		t.Fatal(err)
	}
	if after > before+1e-9 {
		t.Fatalf("refinement worsened the α-Cut: %v -> %v", before, after)
	}
}

func TestStabilityThresholdGrowsSupergraph(t *testing.T) {
	net := testNetwork(t)
	plain, err := NewPipeline(net, Config{Scheme: ASG, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := NewPipeline(net, Config{Scheme: ASG, Seed: 6, StabilityEps: 0.999})
	if err != nil {
		t.Fatal(err)
	}
	if len(strict.SG.Nodes) < len(plain.SG.Nodes) {
		t.Fatalf("stability check should not shrink the supergraph: %d vs %d",
			len(strict.SG.Nodes), len(plain.SG.Nodes))
	}
}
