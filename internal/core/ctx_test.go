package core_test

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"testing"
	"time"

	"roadpart/internal/core"
	"roadpart/internal/experiments"
)

// preContextGolden pins the exact output of the pipeline: FNV-64a over
// (k, K, K′, ANS bits, assignments) of SweepK(2,6) at Seed 7 on the
// small-scale D1/M1 datasets. A live, never-cancelled context must
// reproduce them bit for bit at every worker count.
//
// Originally captured from the pre-context-propagation tree, these were
// re-pinned exactly once, when the partitioner switched from the dense
// eigensolver to the matrix-free block Lanczos solver (the invariance
// argument — same eigenspace, different basis rotation, identical
// partitions after k-means canonicalization — is docs/NUMERICS.md
// § Golden re-pinning policy; these hashes are the table of record
// there, cross-checked by TestNumericsGoldenTable). D1/AG survived the
// solver switch unchanged — its partitions are basis-invariant.
var preContextGolden = map[string]uint64{
	"D1/AG":  0xbfd57440d12e6bb4,
	"D1/ASG": 0x73ba533b85341045,
	"M1/AG":  0xec18e7ab29342133,
	"M1/ASG": 0x48f8e97f8ef2839d,
}

func sweepHash(sweep []core.SweepPoint) uint64 {
	h := fnv.New64a()
	for _, pt := range sweep {
		fmt.Fprintf(h, "k=%d K=%d KPrime=%d ANS=%x ", pt.K, pt.Result.K, pt.Result.KPrime, pt.Result.Report.ANS)
		for _, a := range pt.Result.Assign {
			fmt.Fprintf(h, "%d,", a)
		}
	}
	return h.Sum64()
}

// TestSweepKCtxBitIdenticalToPreContext is the refactor's compatibility
// contract: threading an uncancelled context through every stage changes
// nothing observable — the full sweep output matches the golden hashes
// captured before the refactor, for both the legacy and the Ctx entry
// points, serial and parallel.
func TestSweepKCtxBitIdenticalToPreContext(t *testing.T) {
	schemes := map[string]core.Scheme{"AG": core.AG, "ASG": core.ASG}
	for _, name := range []string{"D1", "M1"} {
		ds, err := experiments.BuildDataset(name, experiments.ScaleSmall)
		if err != nil {
			t.Fatal(err)
		}
		for schemeName, scheme := range schemes {
			want := preContextGolden[name+"/"+schemeName]
			for _, workers := range []int{1, 4} {
				cfg := core.Config{Scheme: scheme, Seed: 7, Workers: workers}

				p, err := core.NewPipeline(ds.Net, cfg)
				if err != nil {
					t.Fatal(err)
				}
				sweep, err := p.SweepK(2, 6)
				if err != nil {
					t.Fatal(err)
				}
				if got := sweepHash(sweep); got != want {
					t.Errorf("%s/%s workers=%d: SweepK hash %#x, want pre-context %#x",
						name, schemeName, workers, got, want)
				}

				pc, err := core.NewPipelineCtx(context.Background(), ds.Net, cfg)
				if err != nil {
					t.Fatal(err)
				}
				sweepCtx, err := pc.SweepKCtx(context.Background(), 2, 6)
				if err != nil {
					t.Fatal(err)
				}
				if got := sweepHash(sweepCtx); got != want {
					t.Errorf("%s/%s workers=%d: SweepKCtx hash %#x, want pre-context %#x",
						name, schemeName, workers, got, want)
				}
			}
		}
	}
}

// TestSweepKCtxCancelsPromptly cancels a sweep mid-flight and asserts it
// stops within the one-work-item grain rather than finishing the sweep:
// the call must return the context error well before a full sweep's
// runtime, and reliably once the first partition completed.
func TestSweepKCtxCancelsPromptly(t *testing.T) {
	ds, err := experiments.BuildDataset("D1", experiments.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Scheme: core.ASG, Seed: 7, Workers: 1}
	p, err := core.NewPipelineCtx(context.Background(), ds.Net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Time the uncancelled sweep to scale the promptness bound to the
	// machine instead of hard-coding milliseconds.
	start := time.Now()
	if _, err := p.SweepKCtx(context.Background(), 2, 12); err != nil {
		t.Fatal(err)
	}
	full := time.Since(start)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start = time.Now()
	_, err = p.SweepKCtx(ctx, 2, 12)
	cancelled := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// A pre-cancelled sweep re-runs at most the items workers had in
	// hand — nothing, here — so it must come in far under the full
	// sweep. Allow a generous factor for timer noise on a busy machine.
	if full > 50*time.Millisecond && cancelled > full/2 {
		t.Fatalf("cancelled sweep took %v of an uncancelled %v", cancelled, full)
	}
}

// TestCancelledSweepLeavesNoGoroutines asserts repeated cancelled sweeps
// drain all their workers: the goroutine count returns to baseline.
func TestCancelledSweepLeavesNoGoroutines(t *testing.T) {
	ds, err := experiments.BuildDataset("D1", experiments.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Scheme: core.ASG, Seed: 7, Workers: 4}
	p, err := core.NewPipelineCtx(context.Background(), ds.Net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	for round := 0; round < 5; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(time.Duration(round) * 2 * time.Millisecond)
			cancel()
		}()
		_, _ = p.SweepKCtx(ctx, 2, 12)
		cancel()
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked after cancelled sweeps: %d > baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}
