package core

import (
	"fmt"
	"strings"
)

// MultilevelMode selects whether module 3 partitions the flat graph
// directly or through the coarsen → solve → project multilevel path
// (internal/coarsen, docs/SCALING.md).
type MultilevelMode int

const (
	// MultilevelAuto (the zero value) engages the multilevel path when
	// the module-3 graph has at least Config.MultilevelThreshold nodes —
	// small networks keep the flat path's bit-identical goldens, large
	// ones get the contraction hierarchy without opting in.
	MultilevelAuto MultilevelMode = iota
	// MultilevelOff always partitions the flat graph: the legacy path,
	// bit-identical to the pre-multilevel pipeline.
	MultilevelOff
	// MultilevelOn always coarsens first, regardless of graph size.
	MultilevelOn
)

// DefaultMultilevelThreshold is the module-3 node count at which
// MultilevelAuto engages when Config.MultilevelThreshold is zero. Every
// paper-protocol fixture (D1–M3) sits below it; the gen.ScaleTier L and
// XL cities sit above it (docs/SCALING.md § Auto-enable).
const DefaultMultilevelThreshold = 100000

// String returns the flag spelling: "auto", "off" or "on".
func (m MultilevelMode) String() string {
	switch m {
	case MultilevelOff:
		return "off"
	case MultilevelOn:
		return "on"
	default:
		return "auto"
	}
}

// ParseMultilevelMode parses the flag spelling used by roadpart,
// roadpartd and the server API: "auto" (or empty), "off", "on".
func ParseMultilevelMode(s string) (MultilevelMode, error) {
	switch strings.ToLower(s) {
	case "", "auto":
		return MultilevelAuto, nil
	case "off":
		return MultilevelOff, nil
	case "on":
		return MultilevelOn, nil
	default:
		return 0, fmt.Errorf("core: unknown multilevel mode %q (want auto, on or off)", s)
	}
}
