package core_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"roadpart/internal/core"
	"roadpart/internal/experiments"
)

// TestMultilevelOffAndAutoMatchGoldens is the flat-path compatibility
// contract for the multilevel refactor: with Multilevel off — or in auto
// mode on graphs below the threshold, which is every benchmark dataset —
// the sweep output still matches the pre-context golden hashes bit for
// bit, at every worker count. The multilevel plumbing (Level interface,
// projection hook, MaxK clamp) must be invisible on the legacy path.
func TestMultilevelOffAndAutoMatchGoldens(t *testing.T) {
	schemes := map[string]core.Scheme{"AG": core.AG, "ASG": core.ASG}
	for _, name := range []string{"D1", "M1"} {
		ds, err := experiments.BuildDataset(name, experiments.ScaleSmall)
		if err != nil {
			t.Fatal(err)
		}
		for schemeName, scheme := range schemes {
			want := preContextGolden[name+"/"+schemeName]
			for _, mode := range []core.MultilevelMode{core.MultilevelOff, core.MultilevelAuto} {
				for _, workers := range []int{1, 4} {
					cfg := core.Config{Scheme: scheme, Seed: 7, Workers: workers, Multilevel: mode}
					p, err := core.NewPipeline(ds.Net, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if lv := p.MultilevelLevels(); lv != 0 {
						t.Fatalf("%s/%s mode=%v: %d multilevel levels on the flat path", name, schemeName, mode, lv)
					}
					sweep, err := p.SweepK(2, 6)
					if err != nil {
						t.Fatal(err)
					}
					if got := sweepHash(sweep); got != want {
						t.Errorf("%s/%s mode=%v workers=%d: hash %#x, want golden %#x",
							name, schemeName, mode, workers, got, want)
					}
				}
			}
		}
	}
}

// TestMultilevelOnSmallGraphIsIdentity pins the degenerate forced-on
// case: D1's 420 dual nodes sit inside the coarsener's comfort zone, so
// MultilevelOn builds a one-level hierarchy whose projection is the
// identity — the goldens must still hold exactly.
func TestMultilevelOnSmallGraphIsIdentity(t *testing.T) {
	ds, err := experiments.BuildDataset("D1", experiments.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	for schemeName, scheme := range map[string]core.Scheme{"AG": core.AG, "ASG": core.ASG} {
		cfg := core.Config{Scheme: scheme, Seed: 7, Multilevel: core.MultilevelOn}
		p, err := core.NewPipeline(ds.Net, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if lv := p.MultilevelLevels(); lv != 1 {
			t.Fatalf("D1 MultilevelOn: %d levels, want the 1-level identity hierarchy", lv)
		}
		sweep, err := p.SweepK(2, 6)
		if err != nil {
			t.Fatal(err)
		}
		want := preContextGolden["D1/"+schemeName]
		if got := sweepHash(sweep); got != want {
			t.Errorf("D1/%s MultilevelOn: hash %#x, want golden %#x (identity hierarchy must not perturb output)",
				schemeName, got, want)
		}
	}
}

// TestMultilevelQualityWithinBound bounds the quality cost of
// coarsening: on M1 at full scale (17k dual nodes, 5 levels down to the
// spectral comfort zone) the multilevel ANS must stay within 10% of the
// flat spectral ANS. Measured at pinning time the multilevel path was
// actually *better* (0.88–0.90 vs 0.96–0.98 — coarse spectral cuts plus
// boundary refinement avoid the fragmentation the flat path repairs away
// into K'≈700 islands), so the bound has real slack without being loose.
func TestMultilevelQualityWithinBound(t *testing.T) {
	if testing.Short() {
		t.Skip("M1 full-scale partition in -short mode")
	}
	ds, err := experiments.BuildDataset("M1", experiments.ScaleFull)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := core.NewPipeline(ds.Net, core.Config{Scheme: core.AG, Seed: 7, Multilevel: core.MultilevelOff})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := core.NewPipeline(ds.Net, core.Config{Scheme: core.AG, Seed: 7, Multilevel: core.MultilevelOn})
	if err != nil {
		t.Fatal(err)
	}
	if lv := multi.MultilevelLevels(); lv < 2 {
		t.Fatalf("M1 full MultilevelOn built only %d levels; coarsening is not engaging", lv)
	}
	for _, k := range []int{4, 8} {
		fr, err := flat.PartitionK(k)
		if err != nil {
			t.Fatal(err)
		}
		mr, err := multi.PartitionK(k)
		if err != nil {
			t.Fatal(err)
		}
		if mr.K != k {
			t.Fatalf("k=%d: multilevel produced K=%d", k, mr.K)
		}
		if len(mr.Assign) != len(fr.Assign) {
			t.Fatalf("k=%d: multilevel assigned %d nodes, flat %d", k, len(mr.Assign), len(fr.Assign))
		}
		if mr.Report.ANS > fr.Report.ANS*1.10 {
			t.Errorf("k=%d: multilevel ANS %.4f exceeds flat %.4f by more than 10%%",
				k, mr.Report.ANS, fr.Report.ANS)
		}
	}
}

// TestMultilevelDeterministic requires the full multilevel path —
// matching, contraction, coarse spectral cut, projection, boundary
// refinement — to be a pure function of (network, config): identical
// across repeated runs and across worker counts.
func TestMultilevelDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("M1 full-scale partitions in -short mode")
	}
	ds, err := experiments.BuildDataset("M1", experiments.ScaleFull)
	if err != nil {
		t.Fatal(err)
	}
	var ref []int
	for run := 0; run < 2; run++ {
		for _, workers := range []int{1, 4} {
			cfg := core.Config{Scheme: core.AG, Seed: 7, Workers: workers, Multilevel: core.MultilevelOn}
			p, err := core.NewPipeline(ds.Net, cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := p.PartitionK(6)
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = res.Assign
				continue
			}
			for i := range ref {
				if res.Assign[i] != ref[i] {
					t.Fatalf("run=%d workers=%d: assignment differs at node %d", run, workers, i)
				}
			}
		}
	}
}

// TestMultilevelCancelledBuild asserts a cancelled context stops the
// pipeline during coarsening — before any spectral work — and that
// repeated cancelled multilevel runs leave no goroutines behind.
func TestMultilevelCancelledBuild(t *testing.T) {
	ds, err := experiments.BuildDataset("M1", experiments.ScaleFull)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Scheme: core.AG, Seed: 7, Workers: 4, Multilevel: core.MultilevelOn}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := core.NewPipelineCtx(ctx, ds.Net, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled NewPipelineCtx: %v, want context.Canceled", err)
	}

	base := runtime.NumGoroutine()
	for round := 0; round < 4; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(time.Duration(round) * time.Millisecond)
			cancel()
		}()
		p, err := core.NewPipelineCtx(ctx, ds.Net, cfg)
		if err == nil {
			_, _ = p.SweepKCtx(ctx, 2, 8)
		}
		cancel()
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked after cancelled multilevel runs: %d > baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestMultilevelModeParsing(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want core.MultilevelMode
	}{
		{"", core.MultilevelAuto}, {"auto", core.MultilevelAuto}, {"AUTO", core.MultilevelAuto},
		{"off", core.MultilevelOff}, {"Off", core.MultilevelOff},
		{"on", core.MultilevelOn}, {"ON", core.MultilevelOn},
	} {
		got, err := core.ParseMultilevelMode(tc.in)
		if err != nil {
			t.Errorf("ParseMultilevelMode(%q): %v", tc.in, err)
		} else if got != tc.want {
			t.Errorf("ParseMultilevelMode(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if _, err := core.ParseMultilevelMode("maybe"); err == nil {
		t.Error(`ParseMultilevelMode("maybe") accepted`)
	}
	for mode, want := range map[core.MultilevelMode]string{
		core.MultilevelAuto: "auto", core.MultilevelOff: "off", core.MultilevelOn: "on",
	} {
		if got := mode.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", mode, got, want)
		}
	}
}
