package core

import (
	"testing"

	"roadpart/internal/cut"
)

// TestNormalizedMatchesDownstreamDefaults cross-checks the values pinned
// inside Config.Normalized against the packages that actually apply
// them, so a default changed downstream cannot silently desynchronize
// the cache-key canonicalization.
func TestNormalizedMatchesDownstreamDefaults(t *testing.T) {
	n := Config{Scheme: ASG}.Normalized()
	// supergraph.Mine: EpsThetaFrac 0 → 0.8; cluster.SweepKappa:
	// KappaMax 0 → 25, SampleSize 0 → 2000. Pinned literals there.
	if n.EpsThetaFrac != 0.8 || n.KappaMax != 25 || n.SampleSize != 2000 {
		t.Fatalf("mining defaults = (%v, %d, %d), want (0.8, 25, 2000)",
			n.EpsThetaFrac, n.KappaMax, n.SampleSize)
	}
	// cut.Options.normalized is exported enough to check directly.
	co := cut.Options{}.Normalized()
	if n.Restarts != co.Restarts {
		t.Fatalf("Restarts default %d, cut uses %d", n.Restarts, co.Restarts)
	}
	if n.DenseCutoff != co.DenseCutoff {
		t.Fatalf("DenseCutoff default %d, cut uses %d", n.DenseCutoff, co.DenseCutoff)
	}
}

func TestNormalizedCanonicalizesIrrelevantFields(t *testing.T) {
	// Workers never changes output, so it must never split cache keys.
	a := Config{Scheme: ASG, K: 4, Workers: 1}.Normalized()
	b := Config{Scheme: ASG, K: 4, Workers: 8}.Normalized()
	if a != b {
		t.Fatalf("worker count split normalized configs: %+v vs %+v", a, b)
	}
	// AG/NG never run module 2, so mining knobs must not split keys.
	ag1 := Config{Scheme: AG, K: 4, KappaMax: 10, EpsThetaFrac: 0.5, StabilityEps: 0.2}.Normalized()
	ag2 := Config{Scheme: AG, K: 4}.Normalized()
	if ag1 != ag2 {
		t.Fatalf("unused mining fields split AG configs: %+v vs %+v", ag1, ag2)
	}
	// An absolute EpsTheta makes the fraction dead; it must be dropped.
	abs1 := Config{Scheme: ASG, EpsTheta: 0.4, EpsThetaFrac: 0.7}.Normalized()
	abs2 := Config{Scheme: ASG, EpsTheta: 0.4}.Normalized()
	if abs1 != abs2 {
		t.Fatalf("dead EpsThetaFrac split configs: %+v vs %+v", abs1, abs2)
	}
}

func TestNormalizedPreservesMeaningfulFields(t *testing.T) {
	c := Config{Scheme: NSG, K: 7, StabilityEps: 0.3, Refine: true, Seed: 99,
		Restarts: 2, DenseCutoff: -1}
	n := c.Normalized()
	if n.K != 7 || n.Scheme != NSG || n.StabilityEps != 0.3 || !n.Refine || n.Seed != 99 {
		t.Fatalf("meaningful fields mutated: %+v", n)
	}
	if n.Restarts != 2 {
		t.Fatalf("explicit Restarts overridden: %d", n.Restarts)
	}
	if n.DenseCutoff != -1 {
		t.Fatalf("negative DenseCutoff sentinel overridden: %d", n.DenseCutoff)
	}
}

func TestNormalizedCanonicalizesMultilevel(t *testing.T) {
	// Auto mode resolves the threshold default so two spellings of "auto
	// at the default threshold" share a cache key.
	auto := Config{Scheme: AG}.Normalized()
	if auto.Multilevel != MultilevelAuto || auto.MultilevelThreshold != DefaultMultilevelThreshold {
		t.Fatalf("auto normalized to (%v, %d), want (auto, %d)",
			auto.Multilevel, auto.MultilevelThreshold, DefaultMultilevelThreshold)
	}
	explicit := Config{Scheme: AG, MultilevelThreshold: DefaultMultilevelThreshold}.Normalized()
	if auto != explicit {
		t.Fatalf("default vs explicit threshold split configs: %+v vs %+v", auto, explicit)
	}
	// Off and On never read the threshold, so it must be zeroed out of
	// the key.
	off1 := Config{Scheme: AG, Multilevel: MultilevelOff, MultilevelThreshold: 5}.Normalized()
	off2 := Config{Scheme: AG, Multilevel: MultilevelOff}.Normalized()
	if off1 != off2 {
		t.Fatalf("dead threshold split Off configs: %+v vs %+v", off1, off2)
	}
	on := Config{Scheme: AG, Multilevel: MultilevelOn, MultilevelThreshold: 5}.Normalized()
	if on.MultilevelThreshold != 0 {
		t.Fatalf("On kept dead threshold %d", on.MultilevelThreshold)
	}
}
