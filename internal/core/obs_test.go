package core

import (
	"testing"

	"roadpart/internal/gen"
	"roadpart/internal/obs"
	"roadpart/internal/traffic"
)

// TestObservabilityDoesNotPerturbOutput pins that instrumentation is
// purely observational: a full sweep with recording enabled and one with
// recording disabled produce bit-identical assignments at every k, for
// both serial and parallel execution. This is the determinism guarantee
// from the parallel-execution layer extended over the obs layer.
func TestObservabilityDoesNotPerturbOutput(t *testing.T) {
	net, err := gen.City(gen.CityConfig{TargetIntersections: 120, TargetSegments: 220, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := traffic.SyntheticField(net, traffic.FieldConfig{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if err := traffic.ApplySnapshot(net, snap); err != nil {
		t.Fatal(err)
	}

	sweep := func(workers int) [][]int {
		cfg := Config{Scheme: ASG, Seed: 5, Refine: true, Workers: workers}
		p, err := NewPipeline(net, cfg)
		if err != nil {
			t.Fatal(err)
		}
		pts, err := p.SweepK(2, 6)
		if err != nil {
			t.Fatal(err)
		}
		out := make([][]int, len(pts))
		for i, pt := range pts {
			out[i] = pt.Result.Assign
		}
		return out
	}

	obs.SetEnabled(true)
	onSerial := sweep(1)
	onParallel := sweep(4)

	obs.SetEnabled(false)
	offSerial := sweep(1)
	obs.SetEnabled(true)

	for i := range onSerial {
		if !equalInts(onSerial[i], offSerial[i]) {
			t.Fatalf("k=%d: assignments differ with obs on vs off", i+2)
		}
		if !equalInts(onSerial[i], onParallel[i]) {
			t.Fatalf("k=%d: assignments differ serial vs parallel with obs on", i+2)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
