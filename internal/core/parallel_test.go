package core_test

import (
	"testing"

	"roadpart/internal/core"
	"roadpart/internal/experiments"
)

// TestSweepKDeterministicAcrossWorkers is the tentpole guarantee at the
// framework layer: a full k-sweep on a D1-scale network produces
// byte-identical assignments for Workers=1 and Workers=8 at the same
// seed, for direct and supergraph schemes alike.
func TestSweepKDeterministicAcrossWorkers(t *testing.T) {
	ds, err := experiments.BuildDataset("D1", experiments.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []core.Scheme{core.AG, core.NG, core.ASG} {
		cfg := core.Config{Scheme: scheme, Seed: 7}

		cfg.Workers = 1
		serial, err := core.NewPipeline(ds.Net, cfg)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		ref, err := serial.SweepK(2, 6)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}

		cfg.Workers = 8
		par, err := core.NewPipeline(ds.Net, cfg)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		got, err := par.SweepK(2, 6)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}

		if len(got) != len(ref) {
			t.Fatalf("%v: %d sweep points, want %d", scheme, len(got), len(ref))
		}
		for i := range ref {
			if got[i].K != ref[i].K {
				t.Fatalf("%v: point %d has k=%d, want %d", scheme, i, got[i].K, ref[i].K)
			}
			a, b := ref[i].Result, got[i].Result
			if a.K != b.K || a.KPrime != b.KPrime {
				t.Fatalf("%v k=%d: K/KPrime %d/%d vs %d/%d", scheme, ref[i].K, a.K, a.KPrime, b.K, b.KPrime)
			}
			if a.Report.ANS != b.Report.ANS {
				t.Fatalf("%v k=%d: ANS %v != %v", scheme, ref[i].K, a.Report.ANS, b.Report.ANS)
			}
			for s := range a.Assign {
				if a.Assign[s] != b.Assign[s] {
					t.Fatalf("%v k=%d: Workers=1 and Workers=8 assignments differ at segment %d", scheme, ref[i].K, s)
				}
			}
		}
	}
}

// TestSweepKWorkersZeroMatchesSerial checks the default (Workers=0,
// GOMAXPROCS) against explicit serial on one scheme — the configuration
// every CLI and server request hits unless overridden.
func TestSweepKWorkersZeroMatchesSerial(t *testing.T) {
	ds, err := experiments.BuildDataset("D1", experiments.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) []core.SweepPoint {
		t.Helper()
		p, err := core.NewPipeline(ds.Net, core.Config{Scheme: core.AG, Seed: 13, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		sweep, err := p.SweepK(2, 5)
		if err != nil {
			t.Fatal(err)
		}
		return sweep
	}
	ref, got := run(1), run(0)
	for i := range ref {
		for s := range ref[i].Result.Assign {
			if got[i].Result.Assign[s] != ref[i].Result.Assign[s] {
				t.Fatalf("k=%d: Workers=0 differs from Workers=1 at segment %d", ref[i].K, s)
			}
		}
	}
}
