package core

import (
	"math"
	"testing"

	"roadpart/internal/graph"
)

func TestSimilarityWeightedDiscriminates(t *testing.T) {
	// Path with one density jump: the boundary edge must be much weaker
	// than the within-region edges.
	g := graph.New(6)
	for i := 0; i+1 < 6; i++ {
		g.AddEdge(i, i+1, 1)
	}
	f := []float64{1, 1.01, 1.02, 9, 9.01, 9.02}
	wg := SimilarityWeighted(g, f)
	var boundary, within float64
	for _, e := range wg.Neighbors(2) {
		if e.To == 3 {
			boundary = e.W
		}
		if e.To == 1 {
			within = e.W
		}
	}
	if boundary >= within {
		t.Fatalf("boundary weight %v should be below within weight %v", boundary, within)
	}
	if boundary <= 0 || within > 1 {
		t.Fatalf("weights out of range: boundary=%v within=%v", boundary, within)
	}
}

func TestSimilarityWeightedUniformFeatures(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	wg := SimilarityWeighted(g, []float64{5, 5, 5})
	for _, e := range wg.Neighbors(1) {
		if e.W != 1 {
			t.Fatalf("uniform features should give unit weights, got %v", e.W)
		}
	}
}

func TestSimilarityWeightedLocalBandwidth(t *testing.T) {
	// The bandwidth is the mean squared *edge* difference, so a smooth
	// gradient still yields weights spread below 1 rather than all ≈1.
	const n = 50
	g := graph.New(n)
	f := make([]float64, n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, 1)
	}
	for i := range f {
		f[i] = float64(i) * 0.001 // tiny local steps, large global range
	}
	// One sharp jump in the middle.
	for i := n / 2; i < n; i++ {
		f[i] += 0.05
	}
	wg := SimilarityWeighted(g, f)
	var jump float64
	minOther := math.Inf(1)
	for u := 0; u < n; u++ {
		for _, e := range wg.Neighbors(u) {
			if e.To != u+1 {
				continue
			}
			if u == n/2-1 {
				jump = e.W
			} else if e.W < minOther {
				minOther = e.W
			}
		}
	}
	if jump >= minOther {
		t.Fatalf("jump edge (%v) should be the weakest (others >= %v)", jump, minOther)
	}
}
