package core_test

import (
	"testing"

	"roadpart/internal/core"
	"roadpart/internal/experiments"
)

// TestSweepKColdWidenMatchesWarmGoldens pins the warm-start invariance
// contract at the pipeline level (docs/NUMERICS.md § Warm starts): a
// sweep whose spectral cache widens cold (ColdWiden) produces partitions
// bit-identical to the default warm-started widening, for both datasets,
// both schemes and serial/parallel workers. The expected hashes are the
// preContextGolden table — the warm path's table of record — so warm and
// cold are pinned to each other through a single source of truth.
func TestSweepKColdWidenMatchesWarmGoldens(t *testing.T) {
	schemes := map[string]core.Scheme{"AG": core.AG, "ASG": core.ASG}
	for _, name := range []string{"D1", "M1"} {
		ds, err := experiments.BuildDataset(name, experiments.ScaleSmall)
		if err != nil {
			t.Fatal(err)
		}
		for schemeName, scheme := range schemes {
			want := preContextGolden[name+"/"+schemeName]
			for _, workers := range []int{1, 4} {
				cfg := core.Config{Scheme: scheme, Seed: 7, Workers: workers, ColdWiden: true}
				p, err := core.NewPipeline(ds.Net, cfg)
				if err != nil {
					t.Fatal(err)
				}
				sweep, err := p.SweepK(2, 6)
				if err != nil {
					t.Fatal(err)
				}
				if got := sweepHash(sweep); got != want {
					t.Errorf("%s/%s workers=%d: ColdWiden sweep hash %#x, want warm-path golden %#x",
						name, schemeName, workers, got, want)
				}
			}
		}
	}
}
