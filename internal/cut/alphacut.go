// Package cut implements the paper's novel k-way α-Cut (Section 5), its
// spectral relaxation (Algorithm 3), the normalized-cut baseline it is
// evaluated against, and the cut-value/modularity diagnostics used in the
// empirical study.
package cut

import (
	"fmt"

	"roadpart/internal/eigen"
	"roadpart/internal/graph"
	"roadpart/internal/linalg"
)

// AlphaCutOp is the α-Cut matrix M = (d·dᵀ)/s − A of Equation 6 presented
// as a matrix-free operator: d is the weighted degree vector of the
// (super)graph, s = 1ᵀD1 the total degree, and A its weighted adjacency.
// It is a thin wrapper around eigen.RankOneOp (U = d, S = s, zero
// diagonal; docs/NUMERICS.md § The sparse-plus-rank-one matvec), so one
// product costs O(nnz + n) and M is never materialized — which is what
// makes the partitioning stage scale to the large-network supergraphs.
//
// M equals the negative of Newman's modularity matrix (Section 7), so
// minimizing α-Cut approximately maximizes modularity.
type AlphaCutOp struct {
	eigen.RankOneOp
}

// NewAlphaCutOp wraps the symmetric weighted adjacency matrix adj.
func NewAlphaCutOp(adj *linalg.CSR) (*AlphaCutOp, error) {
	d := adj.RowSums()
	ro, err := eigen.NewRankOneOp(adj, nil, d, linalg.Sum(d))
	if err != nil {
		return nil, fmt.Errorf("cut: %w", err)
	}
	return &AlphaCutOp{RankOneOp: *ro}, nil
}

// Dense materializes M — a diagnostic for tests and the dense-vs-Lanczos
// ablation; the partitioning pipeline itself stays matrix-free.
func (op *AlphaCutOp) Dense() *linalg.Dense {
	n := op.Dim()
	m := linalg.NewDense(n, n)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		if op.S != 0 {
			di := op.U[i]
			for j := 0; j < n; j++ {
				row[j] = di * op.U[j] / op.S
			}
		}
		op.A.Range(i, func(j int, v float64) { row[j] -= v })
	}
	return m
}

// ScalarAlphaOp is the α-Cut matrix for a *constant* balance factor α
// instead of the paper's dynamic vector α_i = W(P_i,V)/W(V,V): substituting
// a scalar α into Equation 5 gives Σ_i c_iᵀ(αD − A)c_i / |P_i|, so the
// matrix is simply αD − A — an eigen.RankOneOp with precomputed diagonal
// α·d and no rank-one term. Kept for the ablation comparing the dynamic α
// against fixed balances.
type ScalarAlphaOp struct {
	eigen.RankOneOp
	Alpha float64
}

// NewScalarAlphaOp wraps the adjacency matrix with a fixed α ∈ [0,1].
func NewScalarAlphaOp(adj *linalg.CSR, alpha float64) (*ScalarAlphaOp, error) {
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("cut: alpha %v outside [0,1]", alpha)
	}
	diag := adj.RowSums()
	for i, d := range diag {
		diag[i] = alpha * d
	}
	ro, err := eigen.NewRankOneOp(adj, diag, nil, 0)
	if err != nil {
		return nil, fmt.Errorf("cut: %w", err)
	}
	return &ScalarAlphaOp{RankOneOp: *ro, Alpha: alpha}, nil
}

// Dense materializes αD − A — a diagnostic for tests; the pipeline stays
// matrix-free.
func (op *ScalarAlphaOp) Dense() *linalg.Dense {
	n := op.Dim()
	m := linalg.NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, op.Diag[i])
		op.A.Range(i, func(j int, v float64) { m.Add(i, j, -v) })
	}
	return m
}

// partitionWeights accumulates W(P_i, P_i) and W(P_i, V) for every
// partition of the labeling over g; volumes are in "sum over ordered node
// pairs" form, i.e. W(P_i,P_i) counts each internal edge twice and
// W(P_i,V) is the total weighted degree of the partition, matching the
// matrix forms c_iᵀA c_i and 1ᵀD c_i of Equation 6.
func partitionWeights(g *graph.Graph, assign []int, k int) (within, volume []float64, sizes []int) {
	within = make([]float64, k)
	volume = make([]float64, k)
	sizes = make([]int, k)
	for u := 0; u < g.N(); u++ {
		pu := assign[u]
		sizes[pu]++
		for _, e := range g.Neighbors(u) {
			volume[pu] += e.W
			if assign[e.To] == pu {
				within[pu] += e.W
			}
		}
	}
	return within, volume, sizes
}

// AlphaCutValue evaluates the α-Cut objective of Equation 5 for the given
// partition assignment over g, with the paper's dynamic
// α_i = W(P_i, V)/W(V, V). Lower is better. It returns an error if the
// assignment is malformed.
func AlphaCutValue(g *graph.Graph, assign []int) (float64, error) {
	k, err := validateAssign(g, assign)
	if err != nil {
		return 0, err
	}
	within, volume, sizes := partitionWeights(g, assign, k)
	total := 2 * g.TotalWeight() // W(V,V) over ordered pairs
	if total == 0 {
		return 0, nil
	}
	var val float64
	for i := 0; i < k; i++ {
		if sizes[i] == 0 {
			continue
		}
		// α_i·cut/|P_i| − (1−α_i)·assoc/|P_i| simplified per Section 5.3:
		// (W(P_i,V)²/W(V,V) − W(P_i,P_i)) / |P_i|.
		val += (volume[i]*volume[i]/total - within[i]) / float64(sizes[i])
	}
	return val, nil
}

// Modularity returns Newman's weighted modularity
// Q = Σ_i (W(P_i,P_i) − W(P_i,V)²/W(V,V)) / W(V,V) for the assignment.
// Higher is better; included because minimizing α-Cut approximately
// maximizes Q (the matrices are negatives of each other).
func Modularity(g *graph.Graph, assign []int) (float64, error) {
	k, err := validateAssign(g, assign)
	if err != nil {
		return 0, err
	}
	within, volume, _ := partitionWeights(g, assign, k)
	total := 2 * g.TotalWeight()
	if total == 0 {
		return 0, nil
	}
	var q float64
	for i := 0; i < k; i++ {
		q += within[i]/total - (volume[i]/total)*(volume[i]/total)
	}
	return q, nil
}

// NCutValue evaluates the normalized-cut objective
// Σ_i W(P_i, ~P_i)/W(P_i, V). Lower is better. Partitions with zero
// volume contribute nothing.
func NCutValue(g *graph.Graph, assign []int) (float64, error) {
	k, err := validateAssign(g, assign)
	if err != nil {
		return 0, err
	}
	within, volume, _ := partitionWeights(g, assign, k)
	var val float64
	for i := 0; i < k; i++ {
		if volume[i] == 0 {
			continue
		}
		val += (volume[i] - within[i]) / volume[i]
	}
	return val, nil
}

// validateAssign checks the labeling covers g with ids in [0, k) and
// returns k = max id + 1.
func validateAssign(g *graph.Graph, assign []int) (int, error) {
	if len(assign) != g.N() {
		return 0, fmt.Errorf("cut: assignment length %d != %d nodes", len(assign), g.N())
	}
	k := 0
	for i, a := range assign {
		if a < 0 {
			return 0, fmt.Errorf("cut: negative partition id at node %d", i)
		}
		if a+1 > k {
			k = a + 1
		}
	}
	if k == 0 {
		return 0, fmt.Errorf("cut: empty assignment")
	}
	return k, nil
}

// interface checks
var (
	_ eigen.Op = (*AlphaCutOp)(nil)
	_ eigen.Op = (*ScalarAlphaOp)(nil)
)
