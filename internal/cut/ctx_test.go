package cut

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestPartitionCtxPreCancelled asserts the cached partitioner stops at
// its first checkpoint under a done context.
func TestPartitionCtxPreCancelled(t *testing.T) {
	g := barbell(6, 1, 0.05)
	s := NewSpectral(g, MethodAlphaCut, Options{Seed: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.PartitionCtx(ctx, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("PartitionCtx err = %v, want context.Canceled", err)
	}
	if err := s.WarmCtx(ctx, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("WarmCtx err = %v, want context.Canceled", err)
	}
}

// TestPartitionCtxUncancelledMatchesPartition pins that a live context
// leaves the cached path bit-identical to the legacy entry point.
func TestPartitionCtxUncancelledMatchesPartition(t *testing.T) {
	g := barbell(6, 1, 0.05)
	for _, k := range []int{2, 3, 4} {
		want, err := NewSpectral(g, MethodAlphaCut, Options{Seed: 1}).Partition(k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := NewSpectral(g, MethodAlphaCut, Options{Seed: 1}).PartitionCtx(context.Background(), k)
		if err != nil {
			t.Fatal(err)
		}
		if got.K != want.K || got.KPrime != want.KPrime {
			t.Fatalf("k=%d: (K=%d,K'=%d) vs (K=%d,K'=%d)", k, got.K, got.KPrime, want.K, want.KPrime)
		}
		for i := range want.Assign {
			if got.Assign[i] != want.Assign[i] {
				t.Fatalf("k=%d: assignment differs at node %d", k, i)
			}
		}
	}
}

// TestCancelledWarmDoesNotPoisonCache asserts the cache recovers after a
// cancelled call: a fresh Warm and Partition succeed as if the cancelled
// attempt never happened.
func TestCancelledWarmDoesNotPoisonCache(t *testing.T) {
	g := barbell(8, 1, 0.05)
	s := NewSpectral(g, MethodAlphaCut, Options{Seed: 3})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.WarmCtx(ctx, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled WarmCtx err = %v", err)
	}
	if err := s.Warm(4); err != nil {
		t.Fatalf("Warm after cancelled attempt: %v", err)
	}
	if _, err := s.Partition(3); err != nil {
		t.Fatalf("Partition after cancelled attempt: %v", err)
	}
}

// TestFlightCancelPromotesWaiter drives the single-flight protocol's
// waiter-promotion path deterministically: a waiter blocks on a flight
// that lands with its owner's cancellation error, and because that error
// is never cached or propagated, the waiter promotes itself to a fresh
// flight and succeeds under its own live context.
func TestFlightCancelPromotesWaiter(t *testing.T) {
	g := barbell(8, 1, 0.05)
	s := NewSpectral(g, MethodAlphaCut, Options{Seed: 5})

	// Install a fake in-progress flight, as if another goroutine were
	// mid-eigensolve.
	f := &specFlight{want: 4, done: make(chan struct{})}
	s.mu.Lock()
	s.flight = f
	s.mu.Unlock()

	var wg sync.WaitGroup
	wg.Add(1)
	var waiterErr error
	go func() {
		defer wg.Done()
		waiterErr = s.WarmCtx(context.Background(), 4)
	}()

	// Let the waiter reach its wait on f.done, then land the flight with
	// the computing goroutine's cancellation error.
	time.Sleep(20 * time.Millisecond)
	s.mu.Lock()
	s.flight = nil
	f.err = context.Canceled
	s.mu.Unlock()
	close(f.done)

	wg.Wait()
	if waiterErr != nil {
		t.Fatalf("waiter with live ctx got %v after computer cancel; promotion failed", waiterErr)
	}
	if s.dec == nil || len(s.dec.Values) < 4 {
		t.Fatal("promoted waiter did not populate the cache")
	}
}

// TestWaiterStopsWaitingOnOwnCancel asserts a waiter abandons a stuck
// flight the moment its own context expires — it neither blocks on the
// flight nor disturbs it.
func TestWaiterStopsWaitingOnOwnCancel(t *testing.T) {
	g := barbell(8, 1, 0.05)
	s := NewSpectral(g, MethodAlphaCut, Options{Seed: 5})
	f := &specFlight{want: 4, done: make(chan struct{})} // never closed: a stuck flight
	s.mu.Lock()
	s.flight = f
	s.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := s.WarmCtx(ctx, 4)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("waiter took %v to honor its deadline", elapsed)
	}
	// The stuck flight is untouched for its (hypothetical) owner.
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.flight != f {
		t.Fatal("waiter cancellation disturbed the in-progress flight")
	}
}

// TestPartitionCtxLeavesNoGoroutines asserts a cancelled cached
// partition drains every worker it started.
func TestPartitionCtxLeavesNoGoroutines(t *testing.T) {
	g := barbell(10, 1, 0.05)
	base := runtime.NumGoroutine()
	for round := 0; round < 5; round++ {
		s := NewSpectral(g, MethodAlphaCut, Options{Seed: 2, Restarts: 8, Workers: 4})
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := s.PartitionCtx(ctx, 3); err == nil {
			t.Fatal("cancelled PartitionCtx returned nil error")
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}
