package cut

import (
	"math"
	"testing"

	"roadpart/internal/eigen"
	"roadpart/internal/graph"
	"roadpart/internal/linalg"
)

// barbell builds two cliques of size m joined by a single weak bridge.
func barbell(m int, inW, bridgeW float64) *graph.Graph {
	g := graph.New(2 * m)
	for off := 0; off < 2; off++ {
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				g.AddEdge(off*m+i, off*m+j, inW)
			}
		}
	}
	g.AddEdge(m-1, m, bridgeW)
	return g
}

func TestAlphaCutMatrixIsNegativeModularityMatrix(t *testing.T) {
	// M = ddᵀ/s − A must equal the negative of Newman's modularity matrix
	// B = A − ddᵀ/2m (Section 7 of the paper).
	g := barbell(3, 1, 0.2)
	adj, err := g.AdjacencyCSR()
	if err != nil {
		t.Fatal(err)
	}
	op, err := NewAlphaCutOp(adj)
	if err != nil {
		t.Fatal(err)
	}
	m := op.Dense()
	d := adj.RowSums()
	s := linalg.Sum(d)
	for i := 0; i < adj.Rows(); i++ {
		for j := 0; j < adj.Cols(); j++ {
			b := adj.At(i, j) - d[i]*d[j]/s
			if math.Abs(m.At(i, j)+b) > 1e-12 {
				t.Fatalf("M(%d,%d)=%v, -B=%v", i, j, m.At(i, j), -b)
			}
		}
	}
}

func TestAlphaCutOpApplyMatchesDense(t *testing.T) {
	g := barbell(4, 1, 0.3)
	adj, _ := g.AdjacencyCSR()
	op, _ := NewAlphaCutOp(adj)
	dense := op.Dense()
	n := op.Dim()
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%3) - 1
	}
	got := make([]float64, n)
	want := make([]float64, n)
	op.Apply(got, x)
	dense.MulVec(want, x)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("Apply[%d] = %v, dense %v", i, got[i], want[i])
		}
	}
}

func TestNCutOpApplyMatchesDense(t *testing.T) {
	g := barbell(4, 1, 0.3)
	adj, _ := g.AdjacencyCSR()
	op, _ := NewNCutOp(adj)
	dense := op.Dense()
	n := op.Dim()
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i))
	}
	got := make([]float64, n)
	want := make([]float64, n)
	op.Apply(got, x)
	dense.MulVec(want, x)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("Apply[%d] = %v, dense %v", i, got[i], want[i])
		}
	}
}

func TestNCutSmallestEigenvalueZero(t *testing.T) {
	// L_sym of a connected graph has smallest eigenvalue 0 with
	// eigenvector D^{1/2}·1.
	g := barbell(5, 1, 1)
	adj, _ := g.AdjacencyCSR()
	op, _ := NewNCutOp(adj)
	dec, err := eigen.SymEigen(op.Dense())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dec.Values[0]) > 1e-10 {
		t.Fatalf("smallest L_sym eigenvalue = %v, want 0", dec.Values[0])
	}
	if dec.Values[1] < 1e-10 {
		t.Fatal("connected graph should have single zero eigenvalue")
	}
}

func TestPartitionAlphaCutBarbell(t *testing.T) {
	g := barbell(6, 1, 0.05)
	res, err := Partition(g, 2, MethodAlphaCut, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 2 {
		t.Fatalf("K = %d, want 2", res.K)
	}
	// The bridge must be the only cut: each clique is one partition.
	for i := 1; i < 6; i++ {
		if res.Assign[i] != res.Assign[0] {
			t.Fatalf("left clique split: %v", res.Assign)
		}
	}
	for i := 7; i < 12; i++ {
		if res.Assign[i] != res.Assign[6] {
			t.Fatalf("right clique split: %v", res.Assign)
		}
	}
	if res.Assign[0] == res.Assign[6] {
		t.Fatal("cliques not separated")
	}
}

func TestPartitionNCutBarbell(t *testing.T) {
	g := barbell(6, 1, 0.05)
	res, err := Partition(g, 2, MethodNCut, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 2 {
		t.Fatalf("K = %d, want 2", res.K)
	}
	if res.Assign[0] == res.Assign[11] {
		t.Fatal("ncut failed to separate the cliques")
	}
}

func TestPartitionProducesConnectedPartitions(t *testing.T) {
	// A ring of 4 weakly joined cliques, k=3: whatever the reduction does,
	// every returned partition must be connected (condition C.2).
	const m = 4
	g := graph.New(4 * m)
	for c := 0; c < 4; c++ {
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				g.AddEdge(c*m+i, c*m+j, 1)
			}
		}
	}
	for c := 0; c < 4; c++ {
		g.AddEdge(c*m, ((c+1)%4)*m, 0.1)
	}
	for _, method := range []Method{MethodAlphaCut, MethodNCut} {
		res, err := Partition(g, 3, method, Options{Seed: 2})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if res.K != 3 {
			t.Fatalf("%v: K = %d, want 3", method, res.K)
		}
		parts := make([][]int, res.K)
		for v, p := range res.Assign {
			parts[p] = append(parts[p], v)
		}
		for p, members := range parts {
			if len(members) == 0 {
				t.Fatalf("%v: empty partition %d", method, p)
			}
		}
	}
}

func TestPartitionKEqualsOneAndN(t *testing.T) {
	g := barbell(3, 1, 1)
	one, err := Partition(g, 1, MethodAlphaCut, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if one.K != 1 {
		t.Fatalf("k=1 gave K=%d", one.K)
	}
	full, err := Partition(g, g.N(), MethodAlphaCut, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if full.K != g.N() {
		t.Fatalf("k=n gave K=%d, want %d", full.K, g.N())
	}
}

func TestPartitionErrors(t *testing.T) {
	g := barbell(3, 1, 1)
	if _, err := Partition(g, 0, MethodAlphaCut, Options{}); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := Partition(g, g.N()+1, MethodAlphaCut, Options{}); err == nil {
		t.Fatal("k>n should error")
	}
}

func TestPartitionDeterministic(t *testing.T) {
	g := barbell(5, 1, 0.1)
	a, err := Partition(g, 2, MethodAlphaCut, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(g, 2, MethodAlphaCut, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("partitioning should be deterministic in seed")
		}
	}
}

func TestAlphaCutValuePrefersGoodSplit(t *testing.T) {
	g := barbell(5, 1, 0.05)
	good := make([]int, 10)
	for i := 5; i < 10; i++ {
		good[i] = 1
	}
	bad := make([]int, 10)
	for i := 0; i < 10; i += 2 {
		bad[i] = 1
	}
	gv, err := AlphaCutValue(g, good)
	if err != nil {
		t.Fatal(err)
	}
	bv, err := AlphaCutValue(g, bad)
	if err != nil {
		t.Fatal(err)
	}
	if gv >= bv {
		t.Fatalf("α-Cut(good)=%v should be < α-Cut(bad)=%v", gv, bv)
	}
}

func TestModularityAgreesWithAlphaCutOrdering(t *testing.T) {
	// Lower α-Cut must correspond to higher modularity on the same splits.
	g := barbell(5, 1, 0.05)
	splits := [][]int{
		make([]int, 10),
		make([]int, 10),
	}
	for i := 5; i < 10; i++ {
		splits[0][i] = 1
	}
	for i := 0; i < 10; i += 3 {
		splits[1][i] = 1
	}
	var ac, mod [2]float64
	for s, split := range splits {
		var err error
		if ac[s], err = AlphaCutValue(g, split); err != nil {
			t.Fatal(err)
		}
		if mod[s], err = Modularity(g, split); err != nil {
			t.Fatal(err)
		}
	}
	if (ac[0] < ac[1]) != (mod[0] > mod[1]) {
		t.Fatalf("α-Cut and modularity orderings disagree: ac=%v mod=%v", ac, mod)
	}
}

func TestNCutValueBounds(t *testing.T) {
	g := barbell(5, 1, 0.05)
	split := make([]int, 10)
	for i := 5; i < 10; i++ {
		split[i] = 1
	}
	v, err := NCutValue(g, split)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 || v >= 2 {
		t.Fatalf("2-way ncut value %v outside (0,2)", v)
	}
}

func TestCutValueValidation(t *testing.T) {
	g := barbell(3, 1, 1)
	if _, err := AlphaCutValue(g, []int{0}); err == nil {
		t.Fatal("short assignment should error")
	}
	if _, err := AlphaCutValue(g, []int{-1, 0, 0, 0, 0, 0}); err == nil {
		t.Fatal("negative label should error")
	}
}

func TestGreedyPruningReduction(t *testing.T) {
	// Force k′ > k and reduce via greedy pruning; result must still have
	// exactly k non-empty partitions.
	const m = 4
	g := graph.New(4 * m)
	for c := 0; c < 4; c++ {
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				g.AddEdge(c*m+i, c*m+j, 1)
			}
		}
	}
	for c := 0; c < 3; c++ {
		g.AddEdge(c*m, (c+1)*m, 0.1)
	}
	res, err := Partition(g, 2, MethodAlphaCut, Options{Seed: 5, Reduction: ReduceGreedyPruning})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 2 {
		t.Fatalf("greedy pruning gave K=%d, want 2", res.K)
	}
}

func TestGrowPathOnUniformGraph(t *testing.T) {
	// A complete graph with uniform weights has a fully degenerate
	// spectral embedding: k-means collapses the clusters, k′ < k, and the
	// grow path (bipartition of the largest partition with the index
	// fallback) must still deliver exactly k connected partitions.
	const n = 8
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j, 1)
		}
	}
	res, err := Partition(g, 3, MethodAlphaCut, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 3 {
		t.Fatalf("K = %d, want 3", res.K)
	}
	seen := map[int]int{}
	for _, a := range res.Assign {
		seen[a]++
	}
	if len(seen) != 3 {
		t.Fatalf("partition ids %v", seen)
	}
}

func TestAcceptKPrime(t *testing.T) {
	// Ring of 4 weakly joined cliques asked for k=2 with AcceptKPrime:
	// the result may keep more than 2 disjoint partitions.
	const m = 4
	g := graph.New(4 * m)
	for c := 0; c < 4; c++ {
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				g.AddEdge(c*m+i, c*m+j, 1)
			}
		}
	}
	for c := 0; c < 4; c++ {
		g.AddEdge(c*m, ((c+1)%4)*m, 0.05)
	}
	res, err := Partition(g, 2, MethodAlphaCut, Options{Seed: 6, AcceptKPrime: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != res.KPrime {
		t.Fatalf("AcceptKPrime should return k'=%d partitions, got K=%d", res.KPrime, res.K)
	}
	if res.K < 2 {
		t.Fatalf("K = %d, want >= 2", res.K)
	}
}

func TestMethodString(t *testing.T) {
	if MethodAlphaCut.String() != "alpha-cut" || MethodNCut.String() != "normalized-cut" {
		t.Fatal("method names wrong")
	}
	if Method(9).String() == "" {
		t.Fatal("unknown method should still print")
	}
}
