package cut

import (
	"sync"

	"roadpart/internal/obs"
)

// embedBuf backs one spectral embedding — n rows of k coordinates in a
// single flat array — so every Partition call (and every bipartition of
// the k′→k reduction) reuses the same memory instead of allocating n
// small row slices. The embedding is dead once k-means has clustered it
// (plus the degenerate-embedding fallback in bipartition), so callers
// return the buffer to the pool immediately afterwards; k-means results
// never alias it.
type embedBuf struct {
	back []float64
	rows [][]float64
}

// shape sizes the buffer for an n×k embedding and returns the row views.
// Contents are unspecified; the embedding pass overwrites every row.
func (b *embedBuf) shape(n, k int) [][]float64 {
	if cap(b.back) < n*k {
		b.back = make([]float64, n*k)
	}
	b.back = b.back[:n*k]
	if cap(b.rows) < n {
		b.rows = make([][]float64, n)
	}
	b.rows = b.rows[:n]
	for i := 0; i < n; i++ {
		b.rows[i] = b.back[i*k : (i+1)*k]
	}
	return b.rows
}

// footprint returns the buffer capacity in bytes, for the pool's
// bytes-reused accounting.
func (b *embedBuf) footprint() int {
	return 8 * cap(b.back)
}

var (
	embedPool  sync.Pool
	embedTally = obs.NewPoolTally("cut_embed")
)

func getEmbedBuf() *embedBuf {
	if b, ok := embedPool.Get().(*embedBuf); ok {
		embedTally.Hit(b.footprint())
		return b
	}
	embedTally.Miss()
	return &embedBuf{}
}

func putEmbedBuf(b *embedBuf) {
	embedPool.Put(b)
}
