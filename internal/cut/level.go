package cut

import (
	"context"

	"roadpart/internal/graph"
)

// Level abstracts the graph a Spectral solver operates on. The flat
// (legacy) path solves directly on the finest graph; the multilevel
// path (internal/coarsen, docs/SCALING.md) solves on the coarsest graph
// of a contraction hierarchy and projects the labels back down.
//
// Graph returns the graph the spectral stages actually factor — for a
// hierarchy this is the coarsest level. ProjectToFinest maps a labeling
// of Graph()'s nodes onto the finest graph, refining along the way if
// the level supports it. Implementations must be deterministic: the
// same labels must always project to the same finest labeling.
type Level interface {
	Graph() *graph.Graph
	ProjectToFinest(ctx context.Context, labels []int, k int) ([]int, int, error)
}

// FlatLevel is the identity Level: a single flat graph with no
// coarsening. ProjectToFinest returns its inputs verbatim, which keeps
// the legacy path bit-identical to the pre-multilevel pipeline.
type FlatLevel struct {
	g *graph.Graph
}

// Flat wraps g as a single-level hierarchy.
func Flat(g *graph.Graph) FlatLevel { return FlatLevel{g: g} }

// Graph returns the wrapped graph.
func (l FlatLevel) Graph() *graph.Graph { return l.g }

// ProjectToFinest is the identity projection.
func (l FlatLevel) ProjectToFinest(_ context.Context, labels []int, k int) ([]int, int, error) {
	return labels, k, nil
}
