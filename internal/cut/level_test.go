package cut

import (
	"context"
	"testing"
)

// TestFlatLevelIdentity pins the flat-path contract: NewSpectralLevel
// over a FlatLevel must return bit-identical results to NewSpectral on
// the same graph — ProjectToFinest is the identity, so the multilevel
// plumbing cannot perturb legacy outputs.
func TestFlatLevelIdentity(t *testing.T) {
	g := barbell(6, 1, 0.25)
	for _, method := range []Method{MethodAlphaCut, MethodNCut} {
		direct := NewSpectral(g, method, Options{Seed: 3})
		viaLevel := NewSpectralLevel(Flat(g), method, Options{Seed: 3})
		for k := 1; k <= 4; k++ {
			a, err := direct.Partition(k)
			if err != nil {
				t.Fatal(err)
			}
			b, err := viaLevel.Partition(k)
			if err != nil {
				t.Fatal(err)
			}
			if a.K != b.K || a.KPrime != b.KPrime {
				t.Fatalf("method %v k=%d: (K,K')=(%d,%d) direct vs (%d,%d) via FlatLevel",
					method, k, a.K, a.KPrime, b.K, b.KPrime)
			}
			for i := range a.Assign {
				if a.Assign[i] != b.Assign[i] {
					t.Fatalf("method %v k=%d: assignment differs at %d", method, k, i)
				}
			}
		}
	}
}

func TestFlatLevelProjectIsIdentity(t *testing.T) {
	g := barbell(4, 1, 0.3)
	lv := Flat(g)
	if lv.Graph() != g {
		t.Fatal("FlatLevel.Graph() is not the wrapped graph")
	}
	labels := []int{0, 1, 0, 1, 2, 2, 0, 1}
	out, k, err := lv.ProjectToFinest(context.Background(), labels, 3)
	if err != nil {
		t.Fatal(err)
	}
	if k != 3 {
		t.Fatalf("identity projection changed k to %d", k)
	}
	for i := range labels {
		if out[i] != labels[i] {
			t.Fatal("identity projection changed labels")
		}
	}
}
