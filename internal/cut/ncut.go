package cut

import (
	"fmt"
	"math"

	"roadpart/internal/eigen"
	"roadpart/internal/linalg"
)

// NCutOp is the symmetric normalized Laplacian
// L_sym = I − D^{−1/2} A D^{−1/2}, whose k smallest eigenvectors yield the
// relaxed normalized-cut indicator vectors (Shi–Malik / NJW). Isolated
// nodes (zero degree) get an identity row, so they surface as their own
// trivial components.
type NCutOp struct {
	A       *linalg.CSR
	invSqrt []float64 // D^{-1/2}, 0 for isolated nodes
	tmp     []float64 // scratch for Apply; an op serves one eigensolve at a time
}

// NewNCutOp wraps the symmetric weighted adjacency matrix adj.
func NewNCutOp(adj *linalg.CSR) (*NCutOp, error) {
	if adj.Rows() != adj.Cols() {
		return nil, fmt.Errorf("cut: adjacency must be square, got %dx%d", adj.Rows(), adj.Cols())
	}
	d := adj.RowSums()
	inv := make([]float64, len(d))
	for i, v := range d {
		if v > 0 {
			inv[i] = 1 / math.Sqrt(v)
		}
	}
	return &NCutOp{A: adj, invSqrt: inv, tmp: make([]float64, adj.Rows())}, nil
}

// Dim returns the operator order.
func (op *NCutOp) Dim() int { return op.A.Rows() }

// Apply computes dst = x − D^{−1/2} A D^{−1/2} x. The op-owned scratch
// keeps Apply allocation-free; like the operator's cached degree vector,
// it makes a single NCutOp unsafe for concurrent Apply calls (each
// eigensolve builds its own op, so the pipeline never shares one).
func (op *NCutOp) Apply(dst, x []float64) {
	n := op.Dim()
	tmp := op.tmp
	for i := 0; i < n; i++ {
		tmp[i] = op.invSqrt[i] * x[i]
	}
	op.A.MulVec(dst, tmp)
	for i := 0; i < n; i++ {
		dst[i] = x[i] - op.invSqrt[i]*dst[i]
	}
}

// Dense materializes L_sym for the dense eigensolver path.
func (op *NCutOp) Dense() *linalg.Dense {
	n := op.Dim()
	m := linalg.NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
		op.A.Range(i, func(j int, v float64) {
			m.Add(i, j, -op.invSqrt[i]*op.invSqrt[j]*v)
		})
	}
	return m
}

var _ eigen.Op = (*NCutOp)(nil)
