package cut

import (
	"sync"
	"testing"

	"roadpart/internal/graph"
)

// grid builds a deterministic w×h lattice with mildly varying weights,
// large enough to make concurrent decomposition interesting.
func grid(w, h int) *graph.Graph {
	g := graph.New(w * h)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			wgt := 1 + 0.1*float64((x*7+y*13)%5)
			if x+1 < w {
				_ = g.AddEdge(id(x, y), id(x+1, y), wgt)
			}
			if y+1 < h {
				_ = g.AddEdge(id(x, y), id(x, y+1), wgt)
			}
		}
	}
	return g
}

// TestSpectralConcurrentPartition hammers one Spectral from many
// goroutines with mixed k values — the shape of the parallel k-sweep —
// and checks every concurrent result against a serial reference computed
// on a warmed cache. Run under -race this also proves the single-flight
// decomposition and the compute-outside-lock restructuring are
// race-clean.
func TestSpectralConcurrentPartition(t *testing.T) {
	g := grid(8, 8) // 64 nodes: dense path, schedule-independent embeddings
	ks := []int{2, 3, 4, 5, 6}

	// Serial reference on an identically-configured warmed partitioner.
	ref := map[int]*Result{}
	serial := NewSpectral(g, MethodAlphaCut, Options{Seed: 3})
	if err := serial.Warm(ks[len(ks)-1]); err != nil {
		t.Fatal(err)
	}
	for _, k := range ks {
		res, err := serial.Partition(k)
		if err != nil {
			t.Fatal(err)
		}
		ref[k] = res
	}

	s := NewSpectral(g, MethodAlphaCut, Options{Seed: 3})
	if err := s.Warm(ks[len(ks)-1]); err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				k := ks[(gi+rep)%len(ks)]
				res, err := s.Partition(k)
				if err != nil {
					errs[gi] = err
					return
				}
				want := ref[k]
				if res.K != want.K {
					t.Errorf("goroutine %d k=%d: K=%d, want %d", gi, k, res.K, want.K)
					return
				}
				for i := range want.Assign {
					if res.Assign[i] != want.Assign[i] {
						t.Errorf("goroutine %d k=%d: assignment differs at node %d", gi, k, i)
						return
					}
				}
			}
		}(gi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestSpectralConcurrentColdCache starts many goroutines against a cold
// cache asking for the same k: the single-flight guard must produce one
// decomposition every caller shares, with no duplicate eigensolves
// (observable as a consistent cache) and no races under -race.
func TestSpectralConcurrentColdCache(t *testing.T) {
	g := grid(7, 7)
	s := NewSpectral(g, MethodNCut, Options{Seed: 9})
	const goroutines = 12
	results := make([]*Result, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			results[gi], errs[gi] = s.Partition(4)
		}(gi)
	}
	wg.Wait()
	for gi, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", gi, err)
		}
	}
	first := results[0]
	for gi, res := range results[1:] {
		if res.K != first.K {
			t.Fatalf("goroutine %d: K=%d, others got %d", gi+1, res.K, first.K)
		}
		for i := range first.Assign {
			if res.Assign[i] != first.Assign[i] {
				t.Fatalf("goroutine %d: assignment differs at node %d", gi+1, i)
			}
		}
	}
}

// TestPartitionWorkersDeterministic pins the cut-layer guarantee: the
// one-shot Partition produces the identical result for Workers=1 and
// Workers=8 at the same seed.
func TestPartitionWorkersDeterministic(t *testing.T) {
	g := grid(9, 6)
	for _, method := range []Method{MethodAlphaCut, MethodNCut} {
		serial, err := Partition(g, 5, method, Options{Seed: 21, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		par, err := Partition(g, 5, method, Options{Seed: 21, Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if serial.K != par.K || serial.KPrime != par.KPrime {
			t.Fatalf("%v: K/KPrime %d/%d vs %d/%d", method, serial.K, serial.KPrime, par.K, par.KPrime)
		}
		for i := range serial.Assign {
			if serial.Assign[i] != par.Assign[i] {
				t.Fatalf("%v: Workers=1 and Workers=8 differ at node %d", method, i)
			}
		}
	}
}
