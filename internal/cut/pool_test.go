package cut

import (
	"sync"
	"testing"
)

// TestConcurrentPartitionPoolIsolation drives Partition concurrently on
// differently sized graphs so the shared scratch pools (eigen
// workspaces, k-means restart scratches, embedding buffers, component
// label buffers) are constantly recycled across mismatched shapes.
// Every result must match its serial reference bit for bit: a pooled
// buffer leaking state — or two calls sharing a workspace — would show
// up here, and -race turns any actual sharing into a hard failure.
func TestConcurrentPartitionPoolIsolation(t *testing.T) {
	shapes := []struct {
		w, h, k int
	}{
		{8, 8, 4}, {10, 6, 3}, {12, 12, 5}, {5, 5, 2},
	}
	refs := make([]*Result, len(shapes))
	for i, s := range shapes {
		res, err := Partition(grid(s.w, s.h), s.k, MethodAlphaCut, Options{Seed: 17})
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = res
	}

	const rounds = 6
	var wg sync.WaitGroup
	errs := make(chan error, rounds*len(shapes))
	for r := 0; r < rounds; r++ {
		for i, s := range shapes {
			wg.Add(1)
			go func(i int, w, h, k int) {
				defer wg.Done()
				res, err := Partition(grid(w, h), k, MethodAlphaCut, Options{Seed: 17})
				if err != nil {
					errs <- err
					return
				}
				want := refs[i]
				if res.K != want.K || res.KPrime != want.KPrime {
					t.Errorf("shape %d: K/KPrime drifted under concurrency", i)
					return
				}
				for v := range want.Assign {
					if res.Assign[v] != want.Assign[v] {
						t.Errorf("shape %d: Assign[%d] drifted under concurrency", i, v)
						return
					}
				}
			}(i, s.w, s.h, s.k)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
