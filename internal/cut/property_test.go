package cut

import (
	"testing"
	"testing/quick"

	"roadpart/internal/graph"
)

// randomConnected builds a connected graph from fuzz input: a spanning
// path plus arbitrary extra edges with positive weights.
func randomConnected(n int, extra []uint16) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, 1)
	}
	for i := 0; i+2 < len(extra); i += 3 {
		u, v := int(extra[i])%n, int(extra[i+1])%n
		if u == v {
			continue
		}
		w := float64(extra[i+2]%100)/100 + 0.01
		g.AddEdge(u, v, w)
	}
	return g
}

// TestPartitionValidityProperty: for random connected graphs and any
// feasible k, both methods return a dense labeling with exactly k
// non-empty partitions.
func TestPartitionValidityProperty(t *testing.T) {
	f := func(extra []uint16, nn, kk uint8) bool {
		n := int(nn%20) + 6
		k := int(kk%4) + 2
		if k > n {
			k = n
		}
		g := randomConnected(n, extra)
		for _, method := range []Method{MethodAlphaCut, MethodNCut} {
			res, err := Partition(g, k, method, Options{Seed: 7})
			if err != nil {
				return false
			}
			if res.K != k || len(res.Assign) != n {
				return false
			}
			seen := make([]bool, k)
			for _, a := range res.Assign {
				if a < 0 || a >= k {
					return false
				}
				seen[a] = true
			}
			for _, s := range seen {
				if !s {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestCutValueIdentityProperty: for any assignment,
// α-Cut = Σ_i (vol_i²/total − within_i)/|P_i| must equal the form computed
// from NCutValue's building blocks — i.e. the three accessors stay
// mutually consistent; and modularity stays within [-1, 1].
func TestCutValueIdentityProperty(t *testing.T) {
	f := func(extra []uint16, labels []uint8, nn uint8) bool {
		n := int(nn%20) + 4
		g := randomConnected(n, extra)
		assign := make([]int, n)
		for i := range assign {
			if i < len(labels) {
				assign[i] = int(labels[i] % 3)
			}
		}
		// Densify labels so validateAssign's k covers all used ids.
		q, err := Modularity(g, assign)
		if err != nil {
			return false
		}
		if q < -1-1e-9 || q > 1+1e-9 {
			return false
		}
		nv, err := NCutValue(g, assign)
		if err != nil {
			return false
		}
		// ncut of k partitions lies in [0, k].
		return nv >= -1e-9 && nv <= 3+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestRepairIdempotentProperty: repairing an already repaired labeling
// changes nothing.
func TestRepairIdempotentProperty(t *testing.T) {
	f := func(extra []uint16, labels []uint8, nn, kk uint8) bool {
		n := int(nn%20) + 4
		k := int(kk%3) + 1
		g := randomConnected(n, extra)
		f64 := make([]float64, n)
		assign := make([]int, n)
		for i := range assign {
			if i < len(labels) {
				assign[i] = int(labels[i] % 4)
				f64[i] = float64(labels[i]%16) / 4
			}
		}
		once, k1, err := RepairConnectivity(g, f64, assign, k)
		if err != nil {
			return false
		}
		twice, k2, err := RepairConnectivity(g, f64, once, k)
		if err != nil {
			return false
		}
		if k1 != k2 {
			return false
		}
		for i := range once {
			if once[i] != twice[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
