package cut

import (
	"fmt"

	"roadpart/internal/graph"
)

// RefineOptions tunes the local boundary refinement.
type RefineOptions struct {
	// MaxPasses bounds the sweeps over the node set. 0 selects 8.
	MaxPasses int
}

// RefineAlphaCut improves an existing partitioning by greedy local moves:
// each pass scans boundary nodes and relocates one to a spatially adjacent
// partition whenever the move strictly lowers the α-Cut objective
// (Equation 5 with the dynamic α). It is the α-Cut analogue of the
// boundary-adjustment step Ji & Geroliminis bolt onto normalized cut,
// offered as an optional post-processing extension.
//
// Moves never empty a partition; a final connectivity repair (which needs
// the feature vector f) restores condition C.2 and the partition count.
// It returns the refined labeling, its partition count, and the number of
// moves performed.
func RefineAlphaCut(g *graph.Graph, f []float64, assign []int, opts RefineOptions) ([]int, int, int, error) {
	k, err := validateAssign(g, assign)
	if err != nil {
		return nil, 0, 0, err
	}
	if len(f) != g.N() {
		return nil, 0, 0, fmt.Errorf("cut: refine: %d features for %d nodes", len(f), g.N())
	}
	passes := opts.MaxPasses
	if passes <= 0 {
		passes = 8
	}

	labels := make([]int, len(assign))
	copy(labels, assign)
	within, volume, sizes := partitionWeights(g, labels, k)
	total := 2 * g.TotalWeight()
	if total == 0 {
		return labels, k, 0, nil
	}

	// contribution of partition i to the α-Cut objective.
	contrib := func(i int) float64 {
		if sizes[i] == 0 {
			return 0
		}
		return (volume[i]*volume[i]/total - within[i]) / float64(sizes[i])
	}

	moves := 0
	for pass := 0; pass < passes; pass++ {
		improved := 0
		for v := 0; v < g.N(); v++ {
			a := labels[v]
			if sizes[a] <= 1 {
				continue
			}
			// Weighted degree of v and its weight into each adjacent
			// partition (ordered-pair convention: both directions).
			var dv float64
			wTo := map[int]float64{}
			for _, e := range g.Neighbors(v) {
				dv += e.W
				wTo[labels[e.To]] += e.W
			}
			base := contrib(a)
			bestDelta := -1e-12 // strict improvement only
			bestB := -1
			for b := range wTo {
				if b == a {
					continue
				}
				baseB := contrib(b)
				// Apply the tentative move to the aggregates.
				volume[a] -= dv
				volume[b] += dv
				within[a] -= 2 * wTo[a]
				within[b] += 2 * wTo[b]
				sizes[a]--
				sizes[b]++
				delta := contrib(a) + contrib(b) - base - baseB
				// Roll back.
				volume[a] += dv
				volume[b] -= dv
				within[a] += 2 * wTo[a]
				within[b] -= 2 * wTo[b]
				sizes[a]++
				sizes[b]--
				if delta < bestDelta {
					bestDelta = delta
					bestB = b
				}
			}
			if bestB >= 0 {
				volume[a] -= dv
				volume[bestB] += dv
				within[a] -= 2 * wTo[a]
				within[bestB] += 2 * wTo[bestB]
				sizes[a]--
				sizes[bestB]++
				labels[v] = bestB
				improved++
			}
		}
		moves += improved
		if improved == 0 {
			break
		}
	}

	out, kk, err := RepairConnectivity(g, f, labels, k)
	if err != nil {
		return nil, 0, 0, err
	}
	return out, kk, moves, nil
}
