package cut

import (
	"fmt"
	"sort"

	"roadpart/internal/graph"
	"roadpart/internal/linalg"
)

// BoundaryRefineOptions tunes the frontier-local refinement used at each
// uncoarsening step of the multilevel path (docs/SCALING.md).
type BoundaryRefineOptions struct {
	// MaxPasses bounds the frontier sweeps. 0 selects 4.
	MaxPasses int
}

// RefineAlphaCutBoundary improves labels in place by Fiduccia–Mattheyses
// style local moves restricted to the partition frontier: only vertices
// with a neighbor in another partition are evaluated, and a successful
// move re-activates just the moved vertex's neighborhood for the next
// pass — on a projected labeling (where almost every vertex agrees with
// its neighbors) each pass touches a thin boundary band, not the whole
// graph. The move gain is the same α-Cut delta RefineAlphaCut computes
// (Equation 5 with the dynamic α), evaluated against incrementally
// maintained per-partition aggregates.
//
// Contract: labels must be a dense labeling in [0,k); the refinement is
// deterministic (vertices are visited in ascending id per pass, adjacent
// partitions considered in ascending id, strict-improvement moves only),
// never empties a partition, and never increases the α-Cut objective. It
// performs no connectivity repair — the multilevel path runs
// RepairConnectivity once, on the finest graph, after projection. The
// returned count is the number of moves performed.
func RefineAlphaCutBoundary(g *graph.Graph, labels []int, k int, opts BoundaryRefineOptions) (int, error) {
	n := g.N()
	if len(labels) != n {
		return 0, fmt.Errorf("cut: boundary refine: %d labels for %d nodes", len(labels), n)
	}
	if k < 1 {
		return 0, fmt.Errorf("cut: boundary refine: k=%d out of range", k)
	}
	used := make([]bool, k)
	for v, l := range labels {
		if l < 0 || l >= k {
			return 0, fmt.Errorf("cut: boundary refine: label %d at node %d out of range [0,%d)", l, v, k)
		}
		used[l] = true
	}
	for l, ok := range used {
		if !ok && n > 0 {
			return 0, fmt.Errorf("cut: boundary refine: partition %d is empty (labels must be dense in [0,%d))", l, k)
		}
	}
	passes := opts.MaxPasses
	if passes <= 0 {
		passes = 4
	}
	if k == 1 || n == 0 {
		return 0, nil
	}
	within, volume, sizes := partitionWeights(g, labels, k)
	total := 2 * g.TotalWeight()
	if total == 0 {
		return 0, nil
	}
	contrib := func(i int) float64 {
		if sizes[i] == 0 {
			return 0
		}
		return (volume[i]*volume[i]/total - within[i]) / float64(sizes[i])
	}

	// Frontier worklists and scratch, all pooled (PR 4 discipline). seen
	// is epoch-stamped so the per-vertex adjacent-partition scan needs no
	// clearing between vertices.
	cur := linalg.GetInts(n)[:0]
	nxt := linalg.GetInts(n)[:0]
	inNext := linalg.GetInts(n)
	wTo := linalg.GetVec(k)
	seen := linalg.GetInts(k)
	defer func() {
		linalg.PutInts(cur)
		linalg.PutInts(nxt)
		linalg.PutInts(inNext)
		linalg.PutVec(wTo)
		linalg.PutInts(seen)
	}()
	parts := make([]int, 0, k)
	epoch := 0

	// Seed the frontier with every boundary vertex, in ascending order.
	for v := 0; v < n; v++ {
		for _, e := range g.Neighbors(v) {
			if labels[e.To] != labels[v] {
				cur = append(cur, v)
				break
			}
		}
	}

	moves := 0
	for pass := 1; pass <= passes && len(cur) > 0; pass++ {
		nxt = nxt[:0]
		improved := 0
		for _, v := range cur {
			a := labels[v]
			if sizes[a] <= 1 {
				continue
			}
			// Weighted degree of v and its weight into each adjacent
			// partition (ordered-pair convention: both directions).
			epoch++
			var dv float64
			parts = parts[:0]
			for _, e := range g.Neighbors(v) {
				dv += e.W
				b := labels[e.To]
				if seen[b] != epoch {
					seen[b] = epoch
					wTo[b] = 0
					parts = append(parts, b)
				}
				wTo[b] += e.W
			}
			sort.Ints(parts)
			var wA float64
			if seen[a] == epoch {
				wA = wTo[a]
			}
			base := contrib(a)
			bestDelta := -1e-12 // strict improvement only
			bestB := -1
			for _, b := range parts {
				if b == a {
					continue
				}
				baseB := contrib(b)
				// Apply the tentative move to the aggregates.
				volume[a] -= dv
				volume[b] += dv
				within[a] -= 2 * wA
				within[b] += 2 * wTo[b]
				sizes[a]--
				sizes[b]++
				delta := contrib(a) + contrib(b) - base - baseB
				// Roll back.
				volume[a] += dv
				volume[b] -= dv
				within[a] += 2 * wA
				within[b] -= 2 * wTo[b]
				sizes[a]++
				sizes[b]--
				if delta < bestDelta {
					bestDelta = delta
					bestB = b
				}
			}
			if bestB >= 0 {
				volume[a] -= dv
				volume[bestB] += dv
				within[a] -= 2 * wA
				within[bestB] += 2 * wTo[bestB]
				sizes[a]--
				sizes[bestB]++
				labels[v] = bestB
				improved++
				moves++
				// Only the moved vertex's neighborhood can have gained a
				// profitable move — re-activate it for the next pass.
				if inNext[v] != pass {
					inNext[v] = pass
					nxt = append(nxt, v)
				}
				for _, e := range g.Neighbors(v) {
					if inNext[e.To] != pass {
						inNext[e.To] = pass
						nxt = append(nxt, e.To)
					}
				}
			}
		}
		if improved == 0 {
			break
		}
		sort.Ints(nxt)
		cur, nxt = nxt, cur
	}
	return moves, nil
}
