package cut

import (
	"math/rand"
	"testing"
)

func TestBoundaryRefineNeverWorsens(t *testing.T) {
	g := barbell(8, 1, 0.3)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		labels := make([]int, g.N())
		for i := range labels {
			labels[i] = i / 8 // natural halves
		}
		// Flip a few vertices across the cut.
		for f := 0; f < 3; f++ {
			v := rng.Intn(g.N())
			labels[v] = 1 - labels[v]
		}
		// Guard against a flip emptying a side.
		counts := [2]int{}
		for _, l := range labels {
			counts[l]++
		}
		if counts[0] == 0 || counts[1] == 0 {
			continue
		}
		before, err := AlphaCutValue(g, labels)
		if err != nil {
			t.Fatal(err)
		}
		moves, err := RefineAlphaCutBoundary(g, labels, 2, BoundaryRefineOptions{})
		if err != nil {
			t.Fatal(err)
		}
		after, err := AlphaCutValue(g, labels)
		if err != nil {
			t.Fatal(err)
		}
		if after > before+1e-12 {
			t.Fatalf("trial %d: boundary refinement worsened αCut %v -> %v (%d moves)", trial, before, after, moves)
		}
	}
}

func TestBoundaryRefineRecoversBarbellSplit(t *testing.T) {
	// One vertex on the wrong side of a clean barbell: refinement must
	// move it back (the clique pull dominates the bridge).
	g := barbell(8, 1, 0.1)
	labels := make([]int, g.N())
	for i := range labels {
		labels[i] = i / 8
	}
	labels[3] = 1
	moves, err := RefineAlphaCutBoundary(g, labels, 2, BoundaryRefineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if moves == 0 {
		t.Fatal("no moves on an obviously misassigned vertex")
	}
	for i := 0; i < 8; i++ {
		if labels[i] != labels[0] {
			t.Fatalf("left clique split after refinement: %v", labels[:8])
		}
	}
	for i := 8; i < 16; i++ {
		if labels[i] != labels[8] {
			t.Fatalf("right clique split after refinement: %v", labels[8:])
		}
	}
	if labels[0] == labels[8] {
		t.Fatal("refinement merged the barbell halves")
	}
}

func TestBoundaryRefinePreservesAllParts(t *testing.T) {
	g := barbell(5, 1, 0.2)
	labels := make([]int, g.N())
	for i := range labels {
		labels[i] = i % 3
	}
	if _, err := RefineAlphaCutBoundary(g, labels, 3, BoundaryRefineOptions{MaxPasses: 8}); err != nil {
		t.Fatal(err)
	}
	present := make([]bool, 3)
	for _, l := range labels {
		present[l] = true
	}
	for p, ok := range present {
		if !ok {
			t.Fatalf("boundary refinement emptied partition %d", p)
		}
	}
}

func TestBoundaryRefineDeterministic(t *testing.T) {
	g := barbell(7, 1, 0.4)
	mk := func() []int {
		labels := make([]int, g.N())
		for i := range labels {
			labels[i] = (i * 5) % 2
		}
		return labels
	}
	a, b := mk(), mk()
	ma, err := RefineAlphaCutBoundary(g, a, 2, BoundaryRefineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mb, err := RefineAlphaCutBoundary(g, b, 2, BoundaryRefineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ma != mb {
		t.Fatalf("move counts differ across identical runs: %d vs %d", ma, mb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("labels differ at %d across identical runs", i)
		}
	}
}

func TestBoundaryRefineValidation(t *testing.T) {
	g := barbell(4, 1, 0.3)
	if _, err := RefineAlphaCutBoundary(g, make([]int, 3), 2, BoundaryRefineOptions{}); err == nil {
		t.Error("short label slice accepted")
	}
	bad := make([]int, g.N())
	bad[0] = 5
	if _, err := RefineAlphaCutBoundary(g, bad, 2, BoundaryRefineOptions{}); err == nil {
		t.Error("out-of-range label accepted")
	}
	sparse := make([]int, g.N())
	for i := range sparse {
		sparse[i] = 2 // label 0,1 unused
	}
	if _, err := RefineAlphaCutBoundary(g, sparse, 3, BoundaryRefineOptions{}); err == nil {
		t.Error("non-dense labels accepted")
	}
}
