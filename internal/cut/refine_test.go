package cut

import (
	"testing"

	"roadpart/internal/graph"
	"roadpart/internal/metrics"
)

func TestRefineRecoversPerturbedBarbell(t *testing.T) {
	g := barbell(6, 1, 0.05)
	f := make([]float64, 12)
	for i := range f {
		if i >= 6 {
			f[i] = 1
		}
	}
	// The clean split with two nodes swapped across the bridge.
	perturbed := make([]int, 12)
	for i := 6; i < 12; i++ {
		perturbed[i] = 1
	}
	perturbed[5] = 1
	perturbed[6] = 0

	before, err := AlphaCutValue(g, perturbed)
	if err != nil {
		t.Fatal(err)
	}
	refined, k, moves, err := RefineAlphaCut(g, f, perturbed, RefineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if moves == 0 {
		t.Fatal("expected at least one improving move")
	}
	if k != 2 {
		t.Fatalf("k = %d, want 2", k)
	}
	after, err := AlphaCutValue(g, refined)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Fatalf("refinement did not lower α-Cut: %v -> %v", before, after)
	}
	// The clean split: cliques pure again.
	for i := 1; i < 6; i++ {
		if refined[i] != refined[0] {
			t.Fatalf("left clique still split: %v", refined)
		}
	}
	for i := 7; i < 12; i++ {
		if refined[i] != refined[6] {
			t.Fatalf("right clique still split: %v", refined)
		}
	}
}

func TestRefineLeavesOptimumAlone(t *testing.T) {
	g := barbell(5, 1, 0.05)
	f := make([]float64, 10)
	clean := make([]int, 10)
	for i := 5; i < 10; i++ {
		clean[i] = 1
		f[i] = 1
	}
	refined, k, moves, err := RefineAlphaCut(g, f, clean, RefineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if moves != 0 {
		t.Fatalf("clean split should need no moves, did %d", moves)
	}
	if k != 2 {
		t.Fatalf("k = %d, want 2", k)
	}
	for i := range clean {
		if refined[i] != clean[i] {
			t.Fatal("refinement changed an optimal partition")
		}
	}
}

func TestRefineKeepsConnectivity(t *testing.T) {
	// A ring with noisy initial labels: after refinement + repair, every
	// partition must be connected.
	const n = 24
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n, 1)
	}
	f := make([]float64, n)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = (i * 7 % 3)
		f[i] = float64(i % 3)
	}
	refined, k, _, err := RefineAlphaCut(g, f, assign, RefineOptions{MaxPasses: 4})
	if err != nil {
		t.Fatal(err)
	}
	if k < 1 {
		t.Fatalf("k = %d", k)
	}
	if err := metrics.ValidatePartition(g, refined); err != nil {
		t.Fatal(err)
	}
}

func TestRefineErrors(t *testing.T) {
	g := barbell(3, 1, 1)
	if _, _, _, err := RefineAlphaCut(g, []float64{1}, make([]int, 6), RefineOptions{}); err == nil {
		t.Fatal("feature mismatch should error")
	}
	if _, _, _, err := RefineAlphaCut(g, make([]float64, 6), []int{0}, RefineOptions{}); err == nil {
		t.Fatal("assignment mismatch should error")
	}
}
