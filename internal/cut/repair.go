package cut

import (
	"fmt"
	"math"

	"roadpart/internal/graph"
)

// RepairConnectivity enforces condition C.2 on an assignment: every
// partition label must induce a connected subgraph. Components beyond the
// target count k are merged — smallest first — into the spatially adjacent
// partition whose mean feature is closest, until exactly k connected
// partitions remain (or the graph's own component count, if larger, since
// disconnected graphs cannot do better). The returned labeling is dense in
// [0, K).
//
// Both the framework (whose recursive bipartitioning can in rare cases
// produce disconnected groups) and the Ji–Geroliminis baseline (whose
// boundary adjustment moves nodes freely) use this as their final step.
func RepairConnectivity(g *graph.Graph, f []float64, assign []int, k int) ([]int, int, error) {
	if len(assign) != g.N() || len(f) != g.N() {
		return nil, 0, fmt.Errorf("cut: repair sizes differ: %d nodes, %d assignments, %d features", g.N(), len(assign), len(f))
	}
	if k < 1 {
		return nil, 0, fmt.Errorf("cut: repair target k=%d", k)
	}
	// Split every label into its connected components.
	labels, count := g.GroupComponents(assign)

	_, graphComponents := g.Components()
	floor := k
	if graphComponents > floor {
		floor = graphComponents
	}

	for count > floor {
		// Component stats.
		size := make([]int, count)
		sum := make([]float64, count)
		for v, l := range labels {
			size[l]++
			sum[l] += f[v]
		}
		// Smallest component.
		smallest := 0
		for l := 1; l < count; l++ {
			if size[l] < size[smallest] {
				smallest = l
			}
		}
		// Adjacent component with the closest mean.
		muS := sum[smallest] / float64(size[smallest])
		best, bestD := -1, math.Inf(1)
		for v, l := range labels {
			if l != smallest {
				continue
			}
			for _, e := range g.Neighbors(v) {
				t := labels[e.To]
				if t == smallest {
					continue
				}
				d := math.Abs(sum[t]/float64(size[t]) - muS)
				if d < bestD {
					best, bestD = t, d
				}
			}
		}
		if best < 0 {
			break // isolated component of the graph itself; cannot merge
		}
		for v, l := range labels {
			if l == smallest {
				labels[v] = best
			}
		}
		labels, count = g.GroupComponents(labels) // renumber densely
	}
	dense, kk := renumber(labels)
	return dense, kk, nil
}
