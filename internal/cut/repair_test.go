package cut

import (
	"testing"

	"roadpart/internal/graph"
)

func TestRepairConnectivitySplitsAndMerges(t *testing.T) {
	// Path 0-1-2-3-4-5 with label pattern 0,1,0,0,1,1: label 0 and 1 are
	// both disconnected. Repair to k=2 must yield 2 connected partitions.
	g := graph.New(6)
	for i := 0; i+1 < 6; i++ {
		g.AddEdge(i, i+1, 1)
	}
	f := []float64{1, 1, 1, 5, 5, 5}
	assign := []int{0, 1, 0, 0, 1, 1}
	out, k, err := RepairConnectivity(g, f, assign, 2)
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 {
		t.Fatalf("k = %d, want 2", k)
	}
	// Each label must induce a connected set.
	parts := map[int][]int{}
	for v, l := range out {
		parts[l] = append(parts[l], v)
	}
	for l, members := range parts {
		if !g.IsConnectedSubset(members) {
			t.Fatalf("partition %d disconnected: %v", l, members)
		}
	}
	// Node 1 (feature 1) should have been absorbed by the low-density
	// side, node 0's group, not the high side.
	if out[1] != out[0] || out[1] != out[2] {
		t.Fatalf("merge ignored feature proximity: %v", out)
	}
}

func TestRepairConnectivityAlreadyGood(t *testing.T) {
	g := graph.New(4)
	for i := 0; i+1 < 4; i++ {
		g.AddEdge(i, i+1, 1)
	}
	f := []float64{1, 1, 9, 9}
	assign := []int{0, 0, 1, 1}
	out, k, err := RepairConnectivity(g, f, assign, 2)
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 {
		t.Fatalf("k = %d, want 2", k)
	}
	if out[0] != out[1] || out[2] != out[3] || out[0] == out[2] {
		t.Fatalf("repair changed a valid partition: %v", out)
	}
}

func TestRepairConnectivityDisconnectedGraphFloor(t *testing.T) {
	// Two disjoint edges: the graph itself has 2 components, so k=1 is
	// unachievable; repair must stop at 2.
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	out, k, err := RepairConnectivity(g, []float64{1, 1, 2, 2}, []int{0, 0, 0, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 {
		t.Fatalf("k = %d, want 2 (graph component floor)", k)
	}
	if out[0] != out[1] || out[2] != out[3] {
		t.Fatalf("components mislabeled: %v", out)
	}
}

func TestRepairConnectivityErrors(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 1)
	if _, _, err := RepairConnectivity(g, []float64{1}, []int{0, 0}, 1); err == nil {
		t.Fatal("feature length mismatch should error")
	}
	if _, _, err := RepairConnectivity(g, []float64{1, 1}, []int{0, 0}, 0); err == nil {
		t.Fatal("k=0 should error")
	}
}

func TestScalarAlphaOpMatchesDense(t *testing.T) {
	g := barbell(4, 1, 0.3)
	adj, _ := g.AdjacencyCSR()
	op, err := NewScalarAlphaOp(adj, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	dense := op.Dense()
	n := op.Dim()
	x := make([]float64, n)
	for i := range x {
		x[i] = float64((i*3)%5) - 2
	}
	got := make([]float64, n)
	want := make([]float64, n)
	op.Apply(got, x)
	dense.MulVec(want, x)
	for i := range got {
		if d := got[i] - want[i]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("Apply[%d] = %v, dense %v", i, got[i], want[i])
		}
	}
}

func TestScalarAlphaOpValidation(t *testing.T) {
	g := barbell(3, 1, 1)
	adj, _ := g.AdjacencyCSR()
	if _, err := NewScalarAlphaOp(adj, -0.1); err == nil {
		t.Fatal("alpha < 0 should error")
	}
	if _, err := NewScalarAlphaOp(adj, 1.1); err == nil {
		t.Fatal("alpha > 1 should error")
	}
}

func TestPartitionScalarAlphaBarbell(t *testing.T) {
	g := barbell(6, 1, 0.05)
	res, err := Partition(g, 2, MethodScalarAlpha, Options{Seed: 1, Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 2 {
		t.Fatalf("K = %d, want 2", res.K)
	}
	if res.Assign[0] == res.Assign[11] {
		t.Fatal("scalar α-Cut failed to separate the cliques")
	}
}
