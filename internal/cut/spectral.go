package cut

import (
	"context"
	"fmt"
	"math"
	"sort"

	"roadpart/internal/graph"
	"roadpart/internal/kmeans"
	"roadpart/internal/linalg"
)

// Method selects the graph cut driving the spectral partitioner.
type Method int

const (
	// MethodAlphaCut is the paper's α-Cut (Algorithm 3) with the dynamic
	// α_i = W(P_i,V)/W(V,V).
	MethodAlphaCut Method = iota
	// MethodNCut is the normalized-cut baseline (Shi–Malik).
	MethodNCut
	// MethodScalarAlpha is α-Cut with a constant balance factor
	// (Options.Alpha, default 0.5) — the ablation against the paper's
	// dynamic vector α.
	MethodScalarAlpha
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodAlphaCut:
		return "alpha-cut"
	case MethodNCut:
		return "normalized-cut"
	case MethodScalarAlpha:
		return "scalar-alpha-cut"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Options tunes the spectral partitioner. The zero value selects defaults.
type Options struct {
	// Seed drives eigensolver start vectors and k-means.
	Seed uint64
	// Restarts is the best-of-n k-means restarts on the spectral
	// embedding. 0 selects 5; a restart count below 1 is meaningless, so
	// no sentinel exists (the zero value intentionally cannot mean "no
	// restarts").
	Restarts int
	// DenseCutoff is retained for configuration-fingerprint compatibility
	// (internal/resultcache hashes it) but no longer selects a solver:
	// the partitioner is always matrix-free through eigen.RankOneOp and
	// the block Lanczos iteration (docs/NUMERICS.md § The Lanczos
	// variant). 0 still normalizes to 900 and negative values to -1, so
	// existing fingerprints keep their meaning.
	DenseCutoff int
	// Reduction selects how k′ > k partitions are brought down to k.
	Reduction Reduction
	// Alpha is the constant balance for MethodScalarAlpha; 0 selects 0.5.
	// The degenerate α=0 (no balance term at all) is intentionally not
	// expressible — it reduces the objective to a plain min-cut.
	Alpha float64
	// AcceptKPrime skips the k′→k reduction and returns the k′ disjoint
	// partitions as the final result — Section 5.4 notes they "may be
	// accepted" when an exact k is not required. Growth toward k when
	// k′ < k still happens.
	AcceptKPrime bool
	// Workers bounds the goroutines used by the randomized stages
	// (k-means restarts): 0 selects GOMAXPROCS, 1 forces serial. The
	// partition produced is identical for every worker count at the same
	// seed — this is purely a resource knob.
	Workers int
	// ColdWiden disables the warm-started widening of a cached Spectral:
	// every decomposition that outgrows the cache restarts the Lanczos
	// iteration cold instead of seeding from the cached Ritz block. The
	// knob exists for benchmarks and ablations that measure the warm-start
	// win (BenchmarkSweepDeep); it does not change results — warm and cold
	// widening converge to the same eigenspace and the same partitions
	// (docs/NUMERICS.md § Warm starts) — and it is deliberately not part
	// of the configuration fingerprint.
	ColdWiden bool
}

// Normalized returns o with every zero-value field replaced by its
// default — the options the partitioner will actually run with. Exposed
// so callers that fingerprint configurations (internal/resultcache via
// core.Config.Normalized) can canonicalize against the same source of
// truth the partitioner uses.
func (o Options) Normalized() Options { return o.normalized() }

// normalized returns o with every zero-value field replaced by its
// default. It is the single source of option defaults: Partition and
// NewSpectral both normalize through here, so a cached sweep and a
// one-shot call can never silently apply different Restarts/DenseCutoff/
// Alpha values to the same graph.
func (o Options) normalized() Options {
	if o.Restarts == 0 {
		o.Restarts = 5
	}
	if o.DenseCutoff == 0 {
		o.DenseCutoff = 900
	}
	if o.Alpha == 0 {
		o.Alpha = 0.5
	}
	return o
}

// kmeansOptions maps the partitioner options onto the embedding
// clustering step, shared by the cached and one-shot paths.
func (o Options) kmeansOptions() kmeans.NDOptions {
	return kmeans.NDOptions{Seed: o.Seed, Restarts: o.Restarts, Workers: o.Workers}
}

// Reduction selects the k′→k strategy of Section 5.4.
type Reduction int

const (
	// ReduceRecursiveBipartition is the paper's choice: build the k′×k′
	// partition-connectivity matrix and recursively bipartition it.
	ReduceRecursiveBipartition Reduction = iota
	// ReduceGreedyPruning iteratively merges the two most strongly
	// connected partitions — the alternative the paper describes and
	// rejects for large k′; kept for the ablation benchmarks. On a
	// disconnected graph it can stop above k (mutually disconnected
	// groups cannot merge).
	ReduceGreedyPruning
)

// Result of a spectral partitioning run.
type Result struct {
	// Assign is the partition id per graph node, dense in [0, K).
	Assign []int
	// K is the number of partitions in Assign.
	K int
	// KPrime is the number of disjoint connected partitions that existed
	// after spectral clustering and component extraction, before the
	// reduction to k (k′ of Section 5.4).
	KPrime int
}

// Partition splits g into k spatially connected partitions using the
// selected spectral method, following Algorithm 3: embed nodes with the k
// smallest eigenvectors, row-normalize, cluster with k-means, extract
// connected components (k′ partitions), then reduce k′ to k by global
// recursive bipartitioning (or grow toward k by splitting the largest
// partitions when k-means left clusters empty).
func Partition(g *graph.Graph, k int, method Method, opts Options) (*Result, error) {
	return PartitionCtx(context.Background(), g, k, method, opts)
}

// PartitionCtx is Partition with cooperative cancellation: ctx is
// observed between the algorithm's work items — Lanczos steps and k-means
// restarts inside the embedding, and each bipartition of the k′→k
// reduction — and PartitionCtx returns ctx's error once it is done. An
// uncancelled run is bit-identical to Partition at the same options.
func PartitionCtx(ctx context.Context, g *graph.Graph, k int, method Method, opts Options) (*Result, error) {
	n := g.N()
	if k < 1 {
		return nil, fmt.Errorf("cut: k must be >= 1, got %d", k)
	}
	if k > n {
		return nil, fmt.Errorf("cut: k=%d exceeds %d nodes", k, n)
	}
	opts = opts.normalized()
	if k == 1 {
		return &Result{Assign: make([]int, n), K: 1, KPrime: 1}, nil
	}

	eb := getEmbedBuf()
	want := k + sweepHeadroom
	if want > n {
		want = n
	}
	rows, err := embed(ctx, g, k, want, method, opts, eb)
	if err != nil {
		putEmbedBuf(eb)
		return nil, err
	}
	km, err := kmeans.NDCtx(ctx, rows, k, opts.kmeansOptions())
	putEmbedBuf(eb) // the embedding is dead once clustered
	if err != nil {
		return nil, err
	}

	// Alg. 3 line 11: connected components inside each spectral cluster
	// become disjoint partitions.
	lbuf := linalg.GetInts(n)
	defer linalg.PutInts(lbuf)
	kPrime := g.GroupComponentsInto(km.Assign, lbuf)
	labels := lbuf
	res := &Result{KPrime: kPrime}

	switch {
	case kPrime > k && !opts.AcceptKPrime:
		labels, err = reduce(ctx, g, labels, kPrime, k, method, opts)
		if err != nil {
			return nil, err
		}
	case kPrime < k:
		labels, err = grow(ctx, g, labels, kPrime, k, method, opts)
		if err != nil {
			return nil, err
		}
	}
	res.Assign, res.K = renumber(labels)
	return res, nil
}

// embed computes the row-normalized spectral embedding Z (Alg. 3 lines
// 1–8): n rows of k coordinates from the k smallest eigenvectors of the
// method's matrix, where the eigensolve computes want >= k pairs and the
// embedding keeps the first k. The top-level one-shot path passes the
// same want the cached Spectral would use, so Partition and
// Spectral.Partition run the same eigensolve; the recursive bipartition
// passes want = k = 2 for lean solves on the small meta-graphs. The rows
// live in eb, which the caller returns to the pool once the embedding
// has been consumed.
func embed(ctx context.Context, g *graph.Graph, k, want int, method Method, opts Options, eb *embedBuf) ([][]float64, error) {
	dec, err := decompose(ctx, g, want, method, opts, nil)
	if err != nil {
		return nil, err
	}
	cols := len(dec.Values)
	rows := eb.shape(g.N(), k)
	for i := range rows {
		copy(rows[i], dec.Vectors[i*cols:i*cols+k])
		linalg.Normalize(rows[i]) // Equation 8 row normalization
	}
	return rows, nil
}

// reduce implements global recursive bipartitioning (Alg. 3 lines 12–24):
// the k′ partitions become nodes of a connectivity meta-graph with weights
// A′(i,j) = sqrt(Σ w² / numadj) over the cross-partition edges, which is
// recursively bipartitioned FIFO until k groups remain; each group's
// partitions merge.
func reduce(ctx context.Context, g *graph.Graph, labels []int, kPrime, k int, method Method, opts Options) ([]int, error) {
	meta, err := connectivityGraph(g, labels, kPrime)
	if err != nil {
		return nil, err
	}
	var groups [][]int
	switch opts.Reduction {
	case ReduceGreedyPruning:
		groups = greedyPrune(meta, k)
	default:
		groups, err = recursiveBipartition(ctx, meta, k, method, opts)
		if err != nil {
			return nil, err
		}
	}
	groupOf := make([]int, kPrime)
	for gi, members := range groups {
		for _, m := range members {
			groupOf[m] = gi
		}
	}
	out := make([]int, len(labels))
	for v, l := range labels {
		out[v] = groupOf[l]
	}
	return out, nil
}

// connectivityGraph builds the k′-node meta-graph of partition
// connectivity strengths.
func connectivityGraph(g *graph.Graph, labels []int, kPrime int) (*graph.Graph, error) {
	type pair struct{ a, b int }
	sum := map[pair]float64{}
	cnt := map[pair]int{}
	for u := 0; u < g.N(); u++ {
		for _, e := range g.Neighbors(u) {
			if e.To <= u {
				continue
			}
			a, b := labels[u], labels[e.To]
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			p := pair{a, b}
			sum[p] += e.W * e.W
			cnt[p]++
		}
	}
	// Sorted insertion keeps adjacency order — and thus every tie-break
	// downstream — deterministic across runs.
	keys := make([]pair, 0, len(sum))
	for p := range sum {
		keys = append(keys, p)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	meta := graph.New(kPrime)
	for _, p := range keys {
		w := math.Sqrt(sum[p] / float64(cnt[p]))
		if err := meta.AddEdge(p.a, p.b, w); err != nil {
			return nil, err
		}
	}
	return meta, nil
}

// recursiveBipartition splits the meta-graph's node set into k groups by
// FIFO bipartitioning, as the paper's queue-based loop does.
func recursiveBipartition(ctx context.Context, meta *graph.Graph, k int, method Method, opts Options) ([][]int, error) {
	all := make([]int, meta.N())
	for i := range all {
		all[i] = i
	}
	queue := [][]int{all}
	var done [][]int
	for len(queue)+len(done) < k {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("cut: recursive bipartitioning interrupted: %w", err)
		}
		// Find the first splittable group, preserving FIFO order.
		idx := -1
		for i, grp := range queue {
			if len(grp) >= 2 {
				idx = i
				break
			}
		}
		if idx < 0 {
			break // nothing left to split; fewer than k groups is the best we can do
		}
		grp := queue[idx]
		queue = append(queue[:idx], queue[idx+1:]...)

		sub, orig, err := meta.Induced(grp)
		if err != nil {
			return nil, err
		}
		half, err := bipartition(ctx, sub, method, opts)
		if err != nil {
			return nil, err
		}
		var left, right []int
		for i, side := range half {
			if side == 0 {
				left = append(left, orig[i])
			} else {
				right = append(right, orig[i])
			}
		}
		queue = append(queue, left, right)
		// Move no-longer-splittable singletons out of the queue.
		var still [][]int
		for _, q := range queue {
			if len(q) == 1 {
				done = append(done, q)
			} else {
				still = append(still, q)
			}
		}
		queue = still
	}
	return append(done, queue...), nil
}

// bipartition splits a (small) graph into two non-empty halves using the
// spectral method with k=2, with deterministic fallbacks for degenerate
// embeddings.
func bipartition(ctx context.Context, g *graph.Graph, method Method, opts Options) ([]int, error) {
	n := g.N()
	if n < 2 {
		return nil, fmt.Errorf("cut: cannot bipartition %d nodes", n)
	}
	if n == 2 {
		return []int{0, 1}, nil
	}
	eb := getEmbedBuf()
	defer putEmbedBuf(eb) // the degenerate fallback below still reads rows
	rows, err := embed(ctx, g, 2, 2, method, opts, eb)
	if err != nil {
		return nil, err
	}
	km, err := kmeans.NDCtx(ctx, rows, 2, opts.kmeansOptions())
	if err != nil {
		return nil, err
	}
	if km.Sizes[0] > 0 && km.Sizes[1] > 0 {
		return km.Assign, nil
	}
	// Degenerate embedding (all rows identical): split by the second
	// eigencoordinate's median order, else by index.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return rows[idx[a]][1] < rows[idx[b]][1] })
	half := make([]int, n)
	for r := n / 2; r < n; r++ {
		half[idx[r]] = 1
	}
	return half, nil
}

// greedyPrune repeatedly merges the pair of groups with the strongest
// meta-connectivity until k groups remain — the paper's rejected
// alternative, kept for ablation.
func greedyPrune(meta *graph.Graph, k int) [][]int {
	groupOf := make([]int, meta.N())
	groups := make([][]int, meta.N())
	for i := range groups {
		groups[i] = []int{i}
		groupOf[i] = i
	}
	alive := meta.N()
	for alive > k {
		// Strongest connection between two distinct groups.
		bestA, bestB, bestW := -1, -1, -1.0
		for u := 0; u < meta.N(); u++ {
			for _, e := range meta.Neighbors(u) {
				a, b := groupOf[u], groupOf[e.To]
				if a == b {
					continue
				}
				if e.W > bestW {
					bestA, bestB, bestW = a, b, e.W
				}
			}
		}
		if bestA < 0 {
			break // remaining groups are mutually disconnected
		}
		groups[bestA] = append(groups[bestA], groups[bestB]...)
		for _, m := range groups[bestB] {
			groupOf[m] = bestA
		}
		groups[bestB] = nil
		alive--
	}
	var out [][]int
	for _, grp := range groups {
		if grp != nil {
			out = append(out, grp)
		}
	}
	return out
}

// grow splits the largest partitions until the count reaches k, keeping
// every partition connected (bipartition + component extraction). Needed
// when k-means leaves clusters empty so k′ < k.
func grow(ctx context.Context, g *graph.Graph, labels []int, kPrime, k int, method Method, opts Options) ([]int, error) {
	out := make([]int, len(labels))
	copy(out, labels)
	count := kPrime
	for count < k {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("cut: partition growth interrupted: %w", err)
		}
		// Largest partition with at least 2 nodes; ties break to the
		// smallest label so the choice is deterministic.
		sizes := map[int][]int{}
		maxL := 0
		for v, l := range out {
			sizes[l] = append(sizes[l], v)
			if l > maxL {
				maxL = l
			}
		}
		target, best := -1, 1
		for l := 0; l <= maxL; l++ {
			if members, ok := sizes[l]; ok && len(members) > best {
				best, target = len(members), l
			}
		}
		if target < 0 {
			break // all singletons
		}
		members := sizes[target]
		sub, orig, err := g.Induced(members)
		if err != nil {
			return nil, err
		}
		half, err := bipartition(ctx, sub, method, opts)
		if err != nil {
			return nil, err
		}
		// Component extraction inside each half keeps C.2 intact.
		comp, nComp := sub.GroupComponents(half)
		if nComp < 2 {
			break // could not split further
		}
		next := maxLabel(out) + 1
		for i, c := range comp {
			if c == 0 {
				continue // component 0 keeps the old label
			}
			out[orig[i]] = next + c - 1
		}
		count += nComp - 1
	}
	if count > k {
		dense, kk := renumber(out)
		return reduce(ctx, g, dense, kk, k, method, opts)
	}
	return out, nil
}

func maxLabel(labels []int) int {
	m := 0
	for _, l := range labels {
		if l > m {
			m = l
		}
	}
	return m
}

// renumber maps labels to a dense range [0, K) in order of first
// appearance and returns the new labeling and K.
func renumber(labels []int) ([]int, int) {
	remap := map[int]int{}
	out := make([]int, len(labels))
	for i, l := range labels {
		id, ok := remap[l]
		if !ok {
			id = len(remap)
			remap[l] = id
		}
		out[i] = id
	}
	return out, len(remap)
}
