package cut

import (
	"fmt"
	"sync"

	"roadpart/internal/eigen"
	"roadpart/internal/graph"
	"roadpart/internal/kmeans"
	"roadpart/internal/linalg"
)

// Spectral partitions one fixed graph for many values of k, caching the
// eigendecomposition across calls. The paper's protocol sweeps k (2–20 or
// 2–25) to find the ANS minimum; recomputing the eigenproblem per k would
// dominate that sweep, while the decomposition only depends on the graph
// and the method.
//
// A Spectral is safe for concurrent use.
type Spectral struct {
	g      *graph.Graph
	method Method
	opts   Options

	mu  sync.Mutex
	dec *eigen.Decomposition // nil until first use; len(Values) grows as needed
}

// NewSpectral prepares a cached spectral partitioner for g. Options are
// normalized the same way Partition normalizes them.
func NewSpectral(g *graph.Graph, method Method, opts Options) *Spectral {
	if opts.Restarts == 0 {
		opts.Restarts = 5
	}
	if opts.DenseCutoff == 0 {
		opts.DenseCutoff = 900
	}
	return &Spectral{g: g, method: method, opts: opts}
}

// Partition splits the graph into k partitions, reusing the cached
// decomposition when it already has at least k eigenpairs.
func (s *Spectral) Partition(k int) (*Result, error) {
	n := s.g.N()
	if k < 1 || k > n {
		return nil, fmt.Errorf("cut: k=%d out of range [1,%d]", k, n)
	}
	if k == 1 {
		return &Result{Assign: make([]int, n), K: 1, KPrime: 1}, nil
	}
	rows, err := s.rows(k)
	if err != nil {
		return nil, err
	}
	km, err := kmeans.ND(rows, k, kmeans.NDOptions{Seed: s.opts.Seed, Restarts: s.opts.Restarts})
	if err != nil {
		return nil, err
	}
	labels, kPrime := s.g.GroupComponents(km.Assign)
	res := &Result{KPrime: kPrime}
	switch {
	case kPrime > k && !s.opts.AcceptKPrime:
		labels, err = reduce(s.g, labels, kPrime, k, s.method, s.opts)
		if err != nil {
			return nil, err
		}
	case kPrime < k:
		labels, err = grow(s.g, labels, kPrime, k, s.method, s.opts)
		if err != nil {
			return nil, err
		}
	}
	res.Assign, res.K = renumber(labels)
	return res, nil
}

// rows returns the row-normalized k-column spectral embedding, extending
// the cached decomposition when it is too narrow.
func (s *Spectral) rows(k int) ([][]float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dec == nil || len(s.dec.Values) < k {
		want := k
		if s.g.N() > s.opts.DenseCutoff {
			// Lanczos path: grab headroom so a k-sweep triggers only a
			// few recomputations (dense path returns everything anyway).
			want = 2 * k
			if want > s.g.N() {
				want = s.g.N()
			}
		}
		dec, err := decompose(s.g, want, s.method, s.opts)
		if err != nil {
			return nil, err
		}
		s.dec = dec
	}
	cols := len(s.dec.Values)
	n := s.g.N()
	rows := make([][]float64, n)
	for i := 0; i < n; i++ {
		r := make([]float64, k)
		copy(r, s.dec.Vectors[i*cols:i*cols+k])
		linalg.Normalize(r)
		rows[i] = r
	}
	return rows, nil
}

// decompose computes the k smallest eigenpairs of the method's matrix.
func decompose(g *graph.Graph, k int, method Method, opts Options) (*eigen.Decomposition, error) {
	adj, err := g.AdjacencyCSR()
	if err != nil {
		return nil, err
	}
	var op eigen.Op
	var dense *linalg.Dense
	switch method {
	case MethodNCut:
		o, err := NewNCutOp(adj)
		if err != nil {
			return nil, err
		}
		op = o
		if g.N() <= opts.DenseCutoff {
			dense = o.Dense()
		}
	case MethodScalarAlpha:
		alpha := opts.Alpha
		if alpha == 0 {
			alpha = 0.5
		}
		o, err := NewScalarAlphaOp(adj, alpha)
		if err != nil {
			return nil, err
		}
		op = o
		if g.N() <= opts.DenseCutoff {
			dense = o.Dense()
		}
	default:
		o, err := NewAlphaCutOp(adj)
		if err != nil {
			return nil, err
		}
		op = o
		if g.N() <= opts.DenseCutoff {
			dense = o.Dense()
		}
	}
	return eigen.SmallestK(op, dense, k, opts.Seed)
}
