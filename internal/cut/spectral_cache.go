package cut

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"roadpart/internal/eigen"
	"roadpart/internal/graph"
	"roadpart/internal/kmeans"
	"roadpart/internal/linalg"
	"roadpart/internal/obs"
)

// Single-flight cache accounting: a hit reads a warm decomposition, a
// miss computes one, a wait blocked on another goroutine's in-progress
// compute (a waiting lookup later resolves as a hit once the flight
// lands, so one lookup can count both a wait and a hit). The
// eigendecompose stage timer covers the compute itself.
var (
	specCacheHelp = "Spectral decomposition single-flight cache events by kind."
	specHits      = obs.Default().Counter("roadpart_spectral_cache_total", specCacheHelp, "result", "hit")
	specMisses    = obs.Default().Counter("roadpart_spectral_cache_total", specCacheHelp, "result", "miss")
	specWaits     = obs.Default().Counter("roadpart_spectral_cache_total", specCacheHelp, "result", "wait")
	stageEigen    = obs.StageTimer("eigendecompose")
)

// Spectral partitions one fixed graph for many values of k, caching the
// eigendecomposition across calls. The paper's protocol sweeps k (2–20 or
// 2–25) to find the ANS minimum; recomputing the eigenproblem per k would
// dominate that sweep, while the decomposition only depends on the graph
// and the method.
//
// A Spectral is safe for concurrent use. The decomposition is guarded by
// a single-flight protocol: the eigensolve runs outside the mutex (the
// lock is never held across O(n³) work), exactly one goroutine computes
// it while every other caller that needs it waits on the flight, and a
// warm cache is read with only a brief lock acquisition — a concurrent
// k-sweep against a warm cache never serializes.
//
// Cancellation composes with the single flight without poisoning the
// cache: a waiter whose context expires stops waiting immediately (the
// flight keeps computing for its owner), and when the computing
// goroutine's own context expires its cancellation error is never
// cached — surviving waiters promote one of themselves to a fresh
// flight under their own, still-live contexts.
type Spectral struct {
	level  Level
	g      *graph.Graph // level.Graph(), cached — the graph the solver factors
	method Method
	opts   Options

	mu     sync.Mutex
	dec    *eigen.Decomposition // nil until first use; len(Values) grows as needed
	flight *specFlight          // in-progress decomposition, nil when idle
	warm   [][]float64          // external warm-start block (SetWarmStartBlock), consumed by the next successful solve
}

// specFlight is one in-progress decomposition. Waiters block on done;
// err is written exactly once, before done is closed.
type specFlight struct {
	want int // eigenpair count being computed
	done chan struct{}
	err  error
}

// NewSpectral prepares a cached spectral partitioner for g. Options are
// normalized through the same Options.normalized as Partition, so the
// cached and one-shot paths can never apply different defaults.
func NewSpectral(g *graph.Graph, method Method, opts Options) *Spectral {
	return NewSpectralLevel(Flat(g), method, opts)
}

// NewSpectralLevel prepares a cached spectral partitioner over an
// abstract graph level: the eigendecomposition, clustering and k-repair
// stages run on level.Graph() (for a multilevel hierarchy, the coarsest
// graph), and every result is mapped back to the finest graph through
// level.ProjectToFinest before it is returned (docs/SCALING.md).
// NewSpectral is the Flat special case.
func NewSpectralLevel(level Level, method Method, opts Options) *Spectral {
	return &Spectral{level: level, g: level.Graph(), method: method, opts: opts.normalized()}
}

// Partition splits the graph into k partitions, reusing the cached
// decomposition when it already has at least k eigenpairs.
func (s *Spectral) Partition(k int) (*Result, error) {
	return s.PartitionCtx(context.Background(), k)
}

// PartitionCtx is Partition with cooperative cancellation: the embedding,
// k-means and reduction stages observe ctx between work items, and a
// cancelled call never leaves the shared cache in a worse state than
// before it ran. An uncancelled call is bit-identical to Partition.
func (s *Spectral) PartitionCtx(ctx context.Context, k int) (*Result, error) {
	n := s.g.N()
	if k < 1 || k > n {
		return nil, fmt.Errorf("cut: k=%d out of range [1,%d]", k, n)
	}
	if k == 1 {
		fine, fineK, err := s.level.ProjectToFinest(ctx, make([]int, n), 1)
		if err != nil {
			return nil, err
		}
		return &Result{Assign: fine, K: fineK, KPrime: 1}, nil
	}
	eb := getEmbedBuf()
	rows, err := s.rows(ctx, k, eb)
	if err != nil {
		putEmbedBuf(eb)
		return nil, err
	}
	km, err := kmeans.NDCtx(ctx, rows, k, s.opts.kmeansOptions())
	putEmbedBuf(eb) // the embedding is dead once clustered
	if err != nil {
		return nil, err
	}
	lbuf := linalg.GetInts(n)
	defer linalg.PutInts(lbuf)
	kPrime := s.g.GroupComponentsInto(km.Assign, lbuf)
	labels := lbuf
	res := &Result{KPrime: kPrime}
	switch {
	case kPrime > k && !s.opts.AcceptKPrime:
		labels, err = reduce(ctx, s.g, labels, kPrime, k, s.method, s.opts)
		if err != nil {
			return nil, err
		}
	case kPrime < k:
		labels, err = grow(ctx, s.g, labels, kPrime, k, s.method, s.opts)
		if err != nil {
			return nil, err
		}
	}
	res.Assign, res.K = renumber(labels)
	// Map the (possibly coarse) labeling down to the finest graph. For the
	// flat path this is the identity and the result above is returned
	// unchanged bit for bit.
	fine, fineK, err := s.level.ProjectToFinest(ctx, res.Assign, res.K)
	if err != nil {
		return nil, err
	}
	res.Assign, res.K = fine, fineK
	return res, nil
}

// SetWarmStart seeds the next eigendecomposition from the single vector
// v — the legacy single-vector form of SetWarmStartBlock, equivalent to a
// one-row block. A nil or wrong-length v clears any pending warm state.
func (s *Spectral) SetWarmStart(v []float64) {
	if v == nil {
		s.SetWarmStartBlock(nil)
		return
	}
	s.SetWarmStartBlock([][]float64{v})
}

// SetWarmStartBlock seeds the next eigendecomposition from a whole block
// of vectors — the warm-start hook of the incremental repartitioning
// path: a tracker that just solved a nearly identical operator hands the
// previous solve's Ritz block to the successor Spectral, and the block
// Lanczos iteration starts inside (near-)converged territory instead of
// from a random vector (docs/NUMERICS.md § Warm starts).
//
// The block is copied. Rows whose length does not match the graph order
// (the graph changed size — e.g. a re-mined supergraph) are dropped; an
// empty surviving block clears the warm state and the next solve starts
// cold. The block is consumed by the next *successful* decomposition: a
// solve cancelled mid-flight leaves it pending, so a retry warm-starts
// exactly as the cancelled attempt would have — cancellation never leaves
// half-consumed warm state behind.
//
// Warm starts trade bit-reproducibility for convergence speed: a warm
// solve converges to the same eigenspace but not the same basis bits as
// a cold one. Callers that need byte-identical replays simply never call
// this.
func (s *Spectral) SetWarmStartBlock(block [][]float64) {
	n := s.g.N()
	var keep [][]float64
	for _, v := range block {
		if len(v) != n {
			continue
		}
		cp := make([]float64, n)
		copy(cp, v)
		keep = append(keep, cp)
	}
	s.mu.Lock()
	s.warm = keep
	s.mu.Unlock()
}

// WarmBlock returns a copy of the cached decomposition's Ritz vectors —
// the block a successor Spectral wants for SetWarmStartBlock. It returns
// nil when nothing is cached.
func (s *Spectral) WarmBlock() [][]float64 {
	s.mu.Lock()
	dec := s.dec
	s.mu.Unlock()
	return ritzBlock(dec)
}

// WarmVector aggregates the cached decomposition's Ritz vectors into one
// start direction for a successor solve — the legacy single-vector
// counterpart of WarmBlock, kept for callers that persist one vector. It
// returns nil when nothing is cached.
func (s *Spectral) WarmVector() []float64 {
	s.mu.Lock()
	dec := s.dec
	s.mu.Unlock()
	if dec == nil || len(dec.Values) == 0 {
		return nil
	}
	cols := len(dec.Values)
	v := make([]float64, dec.N)
	for i := 0; i < dec.N; i++ {
		for j := 0; j < cols; j++ {
			v[i] += dec.Vectors[i*cols+j]
		}
	}
	if linalg.Normalize(v) == 0 {
		return nil
	}
	return v
}

// ritzBlock unpacks a decomposition's eigenvectors into freshly allocated
// row vectors — the eigen.LanczosOptions.StartBlock shape. A nil or empty
// decomposition yields nil.
func ritzBlock(dec *eigen.Decomposition) [][]float64 {
	if dec == nil || len(dec.Values) == 0 {
		return nil
	}
	blk := make([][]float64, len(dec.Values))
	for j := range blk {
		blk[j] = dec.Vector(j)
	}
	return blk
}

// Warm ensures the cached decomposition holds at least k eigenpairs,
// computing it (once) if needed. A sweep that warms to its largest k
// before fanning out guarantees every Partition call embeds against the
// same eigenpairs regardless of worker count or arrival order — the
// foundation of the Workers=1 ≡ Workers=N determinism guarantee.
func (s *Spectral) Warm(k int) error {
	return s.WarmCtx(context.Background(), k)
}

// WarmCtx is Warm with cooperative cancellation of the eigensolve.
func (s *Spectral) WarmCtx(ctx context.Context, k int) error {
	if k < 2 {
		return nil // k=1 never touches the decomposition
	}
	if n := s.g.N(); k > n {
		k = n
	}
	_, err := s.decomposition(ctx, k)
	return err
}

// rows returns the row-normalized k-column spectral embedding, extending
// the cached decomposition when it is too narrow. The rows live in eb,
// which the caller repools once the embedding has been consumed.
func (s *Spectral) rows(ctx context.Context, k int, eb *embedBuf) ([][]float64, error) {
	dec, err := s.decomposition(ctx, k)
	if err != nil {
		return nil, err
	}
	cols := len(dec.Values)
	n := s.g.N()
	rows := eb.shape(n, k)
	for i := 0; i < n; i++ {
		copy(rows[i], dec.Vectors[i*cols:i*cols+k])
		linalg.Normalize(rows[i])
	}
	return rows, nil
}

// ctxErr reports whether err is (or wraps) a context cancellation or
// deadline error — the class of failures that must never poison the
// single-flight cache for callers whose own contexts are still live.
func ctxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// decomposition returns a cached decomposition with at least k
// eigenpairs. Cache hits take the lock only long enough to read the
// pointer. On a miss, exactly one goroutine computes the decomposition
// outside the lock while every other caller needing it waits on the
// flight — concurrent sweeps trigger no duplicate eigensolves and no
// lock-held O(n³) work.
//
// Cancellation semantics: a waiter stops waiting the moment its own ctx
// is done. When a flight lands with a context error (its owner was
// cancelled mid-eigensolve) the error is not cached and not propagated
// to waiters with live contexts — each such waiter loops, finds no
// flight, and one of them becomes the next computer. Only a flight's
// non-context error (a genuine solver failure, equally fatal for every
// caller) is propagated to its waiters.
func (s *Spectral) decomposition(ctx context.Context, k int) (*eigen.Decomposition, error) {
	s.mu.Lock()
	for {
		if err := ctx.Err(); err != nil {
			s.mu.Unlock()
			return nil, err
		}
		if s.dec != nil && len(s.dec.Values) >= k {
			dec := s.dec
			s.mu.Unlock()
			specHits.Inc()
			return dec, nil
		}
		if f := s.flight; f != nil {
			specWaits.Inc()
			// A decomposition is already being computed. Wait for it —
			// even when it is too narrow for this k, we wait and re-check
			// rather than start a second concurrent eigensolve.
			s.mu.Unlock()
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-f.done:
			}
			if f.err != nil && !ctxErr(f.err) {
				return nil, f.err
			}
			// Success, or the computer was cancelled: re-check under the
			// lock. Our own ctx is vetted at the top of the loop.
			s.mu.Lock()
			continue
		}

		// Uniform headroom: solve for a few eigenpairs beyond k so a
		// k-sweep widens the cache in a handful of steps, each of which
		// warm-starts from the previous Ritz block below.
		want := k + sweepHeadroom
		if n := s.g.N(); want > n {
			want = n
		}
		f := &specFlight{want: want, done: make(chan struct{})}
		s.flight = f
		// Seed priority: an externally supplied warm block (the
		// incremental-tracker hand-off) wins; otherwise a cached, too
		// narrow decomposition seeds its own widening — unless ColdWiden
		// asks for a cold restart (the ablation knob).
		warm := s.warm
		external := len(warm) > 0
		if !external && !s.opts.ColdWiden {
			warm = ritzBlock(s.dec)
		}
		s.mu.Unlock()

		specMisses.Inc()
		sp := stageEigen.Start()
		dec, err := decompose(ctx, s.g, want, s.method, s.opts, warm)
		sp.End()

		s.mu.Lock()
		s.flight = nil
		if err != nil {
			f.err = err
			close(f.done)
			s.mu.Unlock()
			return nil, err
		}
		if external {
			// Consume the external warm block only on success: a
			// cancelled flight leaves it pending so a retry starts from
			// the same seeds the cancelled attempt had.
			s.warm = nil
		}
		if s.dec == nil || len(dec.Values) > len(s.dec.Values) {
			s.dec = dec
		}
		close(f.done)
		if len(s.dec.Values) < k {
			s.mu.Unlock()
			return nil, fmt.Errorf("cut: decomposition produced %d of %d requested eigenpairs", len(s.dec.Values), k)
		}
		// Loop re-reads s.dec, which now satisfies k.
	}
}

// sweepHeadroom is the extra eigenpairs a decomposition computes beyond
// the k that triggered it, so a deepening sweep widens the cache in
// strides instead of one solve per k.
const sweepHeadroom = 8

// decompose computes the k smallest eigenpairs of the method's matrix,
// always matrix-free: every method is an eigen.RankOneOp-shaped operator
// (or the normalized Laplacian for the ncut baseline) handed to the block
// Lanczos solver — the α-Cut matrix is never materialized
// (docs/NUMERICS.md § The sparse-plus-rank-one matvec). startBlock, when
// non-empty, seeds the iteration (docs/NUMERICS.md § Warm starts).
func decompose(ctx context.Context, g *graph.Graph, k int, method Method, opts Options, startBlock [][]float64) (*eigen.Decomposition, error) {
	adj, err := g.AdjacencyCSR()
	if err != nil {
		return nil, err
	}
	var op eigen.Op
	switch method {
	case MethodNCut:
		op, err = NewNCutOp(adj)
	case MethodScalarAlpha:
		// opts reached here through Options.normalized, so Alpha is set.
		op, err = NewScalarAlphaOp(adj, opts.Alpha)
	default:
		op, err = NewAlphaCutOp(adj)
	}
	if err != nil {
		return nil, err
	}
	return eigen.Lanczos(ctx, op, k, eigen.LanczosOptions{Seed: opts.Seed, StartBlock: startBlock})
}
