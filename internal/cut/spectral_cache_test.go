package cut

import (
	"testing"
)

func TestSpectralMatchesPartition(t *testing.T) {
	g := barbell(6, 1, 0.05)
	s := NewSpectral(g, MethodAlphaCut, Options{Seed: 1})
	for _, k := range []int{2, 3, 4} {
		cached, err := s.Partition(k)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := Partition(g, k, MethodAlphaCut, Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if cached.K != direct.K {
			t.Fatalf("k=%d: cached K=%d vs direct K=%d", k, cached.K, direct.K)
		}
		for i := range cached.Assign {
			if cached.Assign[i] != direct.Assign[i] {
				t.Fatalf("k=%d: cached and direct assignments differ at node %d", k, i)
			}
		}
	}
}

// TestSpectralMatchesPartitionOptions repeats the cached-vs-one-shot pin
// with non-default options. Both paths apply defaults through the shared
// Options.normalized, so explicit and defaulted values must agree — this
// catches any future drift between NewSpectral and Partition.
func TestSpectralMatchesPartitionOptions(t *testing.T) {
	g := barbell(6, 1, 0.05)
	cases := []Options{
		{Seed: 7, Restarts: 3},
		{Seed: 7, Restarts: 5, DenseCutoff: 900}, // explicit defaults
		{Seed: 11, Workers: 4},
	}
	for ci, opts := range cases {
		s := NewSpectral(g, MethodNCut, opts)
		for _, k := range []int{2, 3} {
			cached, err := s.Partition(k)
			if err != nil {
				t.Fatal(err)
			}
			direct, err := Partition(g, k, MethodNCut, opts)
			if err != nil {
				t.Fatal(err)
			}
			if cached.K != direct.K {
				t.Fatalf("case %d k=%d: cached K=%d vs direct K=%d", ci, k, cached.K, direct.K)
			}
			for i := range cached.Assign {
				if cached.Assign[i] != direct.Assign[i] {
					t.Fatalf("case %d k=%d: assignments differ at node %d", ci, k, i)
				}
			}
		}
	}
}

func TestSpectralCacheReuse(t *testing.T) {
	// After a k=4 call the decomposition is wide enough for k=2..4; the
	// cached object must stay internally consistent when asked downward.
	g := barbell(6, 1, 0.05)
	s := NewSpectral(g, MethodNCut, Options{Seed: 2})
	if _, err := s.Partition(4); err != nil {
		t.Fatal(err)
	}
	width := len(s.dec.Values)
	if width < 4 {
		t.Fatalf("cache width %d after k=4", width)
	}
	res, err := s.Partition(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.dec.Values) != width {
		t.Fatal("downward k should not recompute the decomposition")
	}
	if res.K != 2 {
		t.Fatalf("K = %d, want 2", res.K)
	}
	if res.Assign[0] == res.Assign[11] {
		t.Fatal("cached ncut failed to separate the cliques")
	}
}

func TestSpectralErrors(t *testing.T) {
	g := barbell(3, 1, 1)
	s := NewSpectral(g, MethodAlphaCut, Options{})
	if _, err := s.Partition(0); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := s.Partition(g.N() + 1); err == nil {
		t.Fatal("k>n should error")
	}
	one, err := s.Partition(1)
	if err != nil || one.K != 1 {
		t.Fatalf("k=1: %v %v", one, err)
	}
}
