package cut

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"roadpart/internal/graph"
)

// assignEqual fails the test unless the two results carry bit-identical
// partitions.
func assignEqual(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.K != want.K {
		t.Fatalf("%s: K=%d, want %d", label, got.K, want.K)
	}
	for i := range want.Assign {
		if got.Assign[i] != want.Assign[i] {
			t.Fatalf("%s: assignments differ at node %d (%d vs %d)",
				label, i, got.Assign[i], want.Assign[i])
		}
	}
}

// irregular builds a deterministic connected graph with road-network-like
// irregularity: a weighted ring plus pseudorandom chords, every weight
// distinct-ish. Unlike the symmetric grid fixture, its operator spectrum
// has well-separated eigenvalues, so k-means cluster boundaries are
// robust to the low-order-bit basis differences between warm- and
// cold-seeded solves — the regime the warm-start invariance contract
// actually promises bit-identity in (docs/NUMERICS.md § Warm starts).
func irregular(n, chords int, seed uint64) *graph.Graph {
	g := graph.New(n)
	rng := seed
	next := func() uint64 { // splitmix64, matching the repo's PRNG idiom
		rng += 0x9e3779b97f4a7c15
		z := rng
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	w := func() float64 { return 0.5 + float64(next()%1000)/1000.0 }
	for i := 0; i < n; i++ {
		_ = g.AddEdge(i, (i+1)%n, w())
	}
	for c := 0; c < chords; c++ {
		u := int(next() % uint64(n))
		v := int(next() % uint64(n))
		if u == v || u == (v+1)%n || v == (u+1)%n {
			continue
		}
		_ = g.AddEdge(u, v, w())
	}
	return g
}

// TestSpectralWarmWideningMatchesCold pins the warm-start invariance at
// the cut level (docs/NUMERICS.md § Warm starts): a shared Spectral whose
// cache widens through an ascending k-sequence — each solve seeded by the
// previous Ritz block — produces partitions bit-identical to a ColdWiden
// twin that re-seeds every solve from the cold random basis. Widening is
// genuinely exercised: with sweepHeadroom 8, the final k outgrows the
// k=2 solve's cached want=10 decomposition.
//
// The k-sequence deliberately stays in the paper's sweep range. Warm and
// cold solves agree on the eigenspace to the solver tolerance (1e-8),
// not bit-for-bit on the basis, so partitions coincide exactly only
// while every k-means boundary margin exceeds that tolerance — which
// holds here and on the evaluation datasets, but degrades for very deep
// k on small graphs where margins shrink toward the noise floor
// (docs/NUMERICS.md § Warm starts spells out this regime). One-shot
// Partition is likewise not compared here: a fresh want=k+8 solve can
// stop at a different Krylov depth than the cached wider solve, so
// cached ≡ one-shot bit-identity is only promised for small graphs —
// see TestSpectralMatchesPartition.
func TestSpectralWarmWideningMatchesCold(t *testing.T) {
	g := irregular(240, 120, 0x3a9b)
	ks := []int{2, 6, 12} // 12 > 2+sweepHeadroom: the last step widens

	warm := NewSpectral(g, MethodAlphaCut, Options{Seed: 3})
	cold := NewSpectral(g, MethodAlphaCut, Options{Seed: 3, ColdWiden: true})
	for _, k := range ks {
		wres, err := warm.Partition(k)
		if err != nil {
			t.Fatal(err)
		}
		cres, err := cold.Partition(k)
		if err != nil {
			t.Fatal(err)
		}
		assignEqual(t, fmt.Sprintf("warm vs cold widening k=%d", k), cres, wres)
	}
}

// countdownCtx is a deterministic mid-solve cancellation trigger: Err()
// reports nil for the first `fuel` polls and context.Canceled after.
// The Lanczos iteration polls ctx.Err() once per basis column, so a
// small fuel cancels a solve a fixed number of columns in — no timers,
// no races, same abort point on every run.
type countdownCtx struct {
	context.Context
	fuel int
}

func (c *countdownCtx) Err() error {
	if c.fuel > 0 {
		c.fuel--
		return nil
	}
	return context.Canceled
}

// TestSpectralCancelLeavesWarmPending pins the consume-on-success
// contract of SetWarmStartBlock: a solve cancelled mid-flight — whether
// before the eigensolve starts or a few Lanczos columns in — leaves the
// external warm block pending and unmodified, so a retry warm-starts
// exactly as the cancelled attempt would have. The proof of "no stale
// warm state" is bit-identity: the retry's partition must equal that of
// a control Spectral given the same block and never cancelled.
func TestSpectralCancelLeavesWarmPending(t *testing.T) {
	g := grid(12, 12)
	const k = 4

	// Donor: a converged solve on the same graph supplies the block the
	// incremental-repartitioning path would hand over.
	donor := NewSpectral(g, MethodAlphaCut, Options{Seed: 9})
	if err := donor.Warm(k); err != nil {
		t.Fatal(err)
	}
	blk := donor.WarmBlock()
	if len(blk) == 0 {
		t.Fatal("donor WarmBlock is empty")
	}

	// Control: warm block applied, never cancelled.
	control := NewSpectral(g, MethodAlphaCut, Options{Seed: 9})
	control.SetWarmStartBlock(blk)
	want, err := control.Partition(k)
	if err != nil {
		t.Fatal(err)
	}

	cancelled := context.Background()
	{
		ctx, cancel := context.WithCancel(cancelled)
		cancel()
		cancelled = ctx
	}
	for _, tc := range []struct {
		name string
		ctx  context.Context
	}{
		{"pre-cancelled", cancelled},
		{"mid-solve", &countdownCtx{Context: context.Background(), fuel: 6}},
	} {
		s := NewSpectral(g, MethodAlphaCut, Options{Seed: 9})
		s.SetWarmStartBlock(blk)
		if _, err := s.PartitionCtx(tc.ctx, k); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", tc.name, err)
		}
		// The warm block must still be pending: the retry's solve seeds
		// from it and lands on the control's exact bits.
		got, err := s.Partition(k)
		if err != nil {
			t.Fatalf("%s retry: %v", tc.name, err)
		}
		assignEqual(t, tc.name+" retry vs uncancelled control", got, want)
	}
}
