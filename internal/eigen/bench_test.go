package eigen

import (
	"context"
	"testing"

	"roadpart/internal/linalg"
)

func BenchmarkSymEigen200(b *testing.B) {
	a := randomSym(200, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SymEigen(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLanczosRing5k(b *testing.B) {
	// Ring-graph Laplacian: the canonical sparse symmetric operator.
	const n = 5000
	bld := linalg.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		bld.AddSym(i, i, 2)
		bld.AddSym(i, (i+1)%n, -1)
	}
	m, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Lanczos(context.Background(), CSROp{m}, 6, LanczosOptions{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSymTridEigen2k(b *testing.B) {
	const n = 2000
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := make([]float64, n)
		e := make([]float64, n)
		for j := range d {
			d[j] = float64(j % 11)
			e[j] = 1
		}
		b.StartTimer()
		if err := SymTridEigen(d, e, nil, n); err != nil {
			b.Fatal(err)
		}
	}
}
