package eigen

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"roadpart/internal/linalg"
)

// zeroOp is the Laplacian of an edgeless graph: the fully degenerate
// case where every vector is an eigenvector with eigenvalue 0, so the
// Krylov space collapses after one step and Lanczos lives in its
// invariant-subspace restart path.
type zeroOp struct{ n int }

func (o zeroOp) Dim() int { return o.n }
func (o zeroOp) Apply(dst, x []float64) {
	for i := range dst {
		dst[i] = 0
	}
}

// slowOp wraps an operator with a per-application delay, standing in for
// a pathologically expensive matvec.
type slowOp struct {
	Op
	delay time.Duration
}

func (o slowOp) Apply(dst, x []float64) {
	time.Sleep(o.delay)
	o.Op.Apply(dst, x)
}

// TestLanczosDegenerateTerminates is the regression test for the
// near-degenerate-Laplacian budget: on a fully degenerate operator the
// restart logic must terminate on its own (bounded restart attempts)
// even with no deadline, returning the k zero eigenvalues.
func TestLanczosDegenerateTerminates(t *testing.T) {
	done := make(chan struct{})
	var dec *Decomposition
	var err error
	go func() {
		defer close(done)
		dec, err = Lanczos(context.Background(), zeroOp{n: 50}, 3, LanczosOptions{Seed: 1})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Lanczos did not terminate on a degenerate operator")
	}
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range dec.Values {
		if v < -1e-9 || v > 1e-9 {
			t.Fatalf("eigenvalue %d = %v, want 0 on the zero operator", i, v)
		}
	}
}

// TestLanczosDeadlineStopsSlowOperator asserts the threaded context is a
// real iteration budget: a slow operator under a short deadline degrades
// to a clean wrapped error instead of running its full step count.
func TestLanczosDeadlineStopsSlowOperator(t *testing.T) {
	op := slowOp{Op: zeroOp{n: 400}, delay: 5 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := Lanczos(ctx, op, 4, LanczosOptions{MaxSteps: 400, Seed: 1})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapped DeadlineExceeded", err)
	}
	if !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("error %q does not describe the interruption", err)
	}
	// 400 steps x 5ms would be 2s; the deadline plus one step of overrun
	// must come in far below that.
	if elapsed > time.Second {
		t.Fatalf("Lanczos ran %v past a 25ms deadline", elapsed)
	}
}

// TestSmallestKPreCancelledDense asserts the dense path refuses to start
// an eigensolve under a done context.
func TestSmallestKPreCancelledDense(t *testing.T) {
	const n = 12
	a := linalg.NewDense(n, n)
	for i := 0; i < n; i++ {
		deg := 2.0
		if i == 0 || i == n-1 {
			deg = 1
		}
		a.Set(i, i, deg)
		if i+1 < n {
			a.Set(i, i+1, -1)
			a.Set(i+1, i, -1)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SmallestK(ctx, DenseOp{M: a}, a, 3, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}
