package eigen

import (
	"fmt"
	"math"

	"roadpart/internal/linalg"
)

// Decomposition holds the result of a symmetric eigendecomposition:
// Values[j] is the j-th smallest eigenvalue and the j-th column of Vectors
// is its (unit-norm) eigenvector. Vectors is row-major n×len(Values).
type Decomposition struct {
	N       int
	Values  []float64
	Vectors []float64
}

// Vector returns the eigenvector for Values[j] as a freshly allocated slice.
func (d *Decomposition) Vector(j int) []float64 {
	if j < 0 || j >= len(d.Values) {
		panic(fmt.Sprintf("eigen: vector index %d out of range %d", j, len(d.Values)))
	}
	v := make([]float64, d.N)
	cols := len(d.Values)
	for i := 0; i < d.N; i++ {
		v[i] = d.Vectors[i*cols+j]
	}
	return v
}

// SymEigen computes the full eigendecomposition of the symmetric matrix a.
// The matrix is not modified. Eigenvalues are returned in ascending order
// with orthonormal eigenvectors in the corresponding columns.
//
// SymEigen does not verify symmetry; only the full matrix is read and the
// result is meaningful only for (numerically) symmetric input. Use
// (*linalg.Dense).IsSymmetric to check beforehand when in doubt.
func SymEigen(a *linalg.Dense) (*Decomposition, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("eigen: SymEigen requires a square matrix, got %dx%d", a.Rows(), a.Cols())
	}
	n := a.Rows()
	v := make([]float64, n*n)
	for i := 0; i < n; i++ {
		copy(v[i*n:(i+1)*n], a.Row(i))
	}
	d := make([]float64, n)
	e := make([]float64, n)
	tred2(v, d, e, n)
	if err := SymTridEigen(d, e, v, n); err != nil {
		return nil, err
	}
	return &Decomposition{N: n, Values: d, Vectors: v}, nil
}

// symEigenK computes the k smallest eigenpairs of the symmetric matrix a
// through the dense solver, keeping the O(n²) working matrix in the
// linalg scratch pool instead of allocating it per call. The returned
// values and vectors are bit-identical to truncating SymEigen's full
// decomposition to its first k columns, and are freshly allocated — they
// never alias pooled memory.
func symEigenK(a *linalg.Dense, k int) (*Decomposition, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("eigen: SymEigen requires a square matrix, got %dx%d", a.Rows(), a.Cols())
	}
	n := a.Rows()
	if k >= n {
		return SymEigen(a)
	}
	v := linalg.GetVec(n * n)
	d := linalg.GetVec(n)
	e := linalg.GetVec(n)
	defer func() {
		linalg.PutVec(v)
		linalg.PutVec(d)
		linalg.PutVec(e)
	}()
	for i := 0; i < n; i++ {
		copy(v[i*n:(i+1)*n], a.Row(i))
	}
	tred2(v, d, e, n)
	if err := SymTridEigen(d, e, v, n); err != nil {
		return nil, err
	}
	vals := make([]float64, k)
	copy(vals, d[:k])
	vec := make([]float64, n*k)
	for i := 0; i < n; i++ {
		copy(vec[i*k:(i+1)*k], v[i*n:i*n+k])
	}
	return &Decomposition{N: n, Values: vals, Vectors: vec}, nil
}

// tred2 reduces the symmetric matrix stored row-major in v (n×n) to
// tridiagonal form by orthogonal Householder similarity transformations.
// On exit d holds the diagonal, e[0..n-2] the sub-diagonal (e[i] couples
// rows i and i+1), and v the accumulated orthogonal transformation.
//
// The implementation follows the EISPACK/JAMA tred2 routine (which stores
// the coupling of rows i-1,i in e[i]); the final loop converts to this
// package's e[i]-couples-(i,i+1) convention.
func tred2(v, d, e []float64, n int) {
	for j := 0; j < n; j++ {
		d[j] = v[(n-1)*n+j]
	}

	// Householder reduction to tridiagonal form.
	for i := n - 1; i > 0; i-- {
		// Scale to avoid under/overflow.
		var scale, h float64
		for k := 0; k < i; k++ {
			scale += math.Abs(d[k])
		}
		if scale == 0 {
			e[i] = d[i-1]
			for j := 0; j < i; j++ {
				d[j] = v[(i-1)*n+j]
				v[i*n+j] = 0
				v[j*n+i] = 0
			}
		} else {
			// Generate the Householder vector.
			for k := 0; k < i; k++ {
				d[k] /= scale
				h += d[k] * d[k]
			}
			f := d[i-1]
			g := math.Sqrt(h)
			if f > 0 {
				g = -g
			}
			e[i] = scale * g
			h -= f * g
			d[i-1] = f - g
			for j := 0; j < i; j++ {
				e[j] = 0
			}

			// Apply similarity transformation to remaining columns.
			for j := 0; j < i; j++ {
				f = d[j]
				v[j*n+i] = f
				g = e[j] + v[j*n+j]*f
				for k := j + 1; k <= i-1; k++ {
					g += v[k*n+j] * d[k]
					e[k] += v[k*n+j] * f
				}
				e[j] = g
			}
			f = 0
			for j := 0; j < i; j++ {
				e[j] /= h
				f += e[j] * d[j]
			}
			hh := f / (h + h)
			for j := 0; j < i; j++ {
				e[j] -= hh * d[j]
			}
			for j := 0; j < i; j++ {
				f = d[j]
				g = e[j]
				for k := j; k <= i-1; k++ {
					v[k*n+j] -= f*e[k] + g*d[k]
				}
				d[j] = v[(i-1)*n+j]
				v[i*n+j] = 0
			}
		}
		d[i] = h
	}

	// Accumulate transformations.
	for i := 0; i < n-1; i++ {
		v[(n-1)*n+i] = v[i*n+i]
		v[i*n+i] = 1
		h := d[i+1]
		if h != 0 {
			for k := 0; k <= i; k++ {
				d[k] = v[k*n+i+1] / h
			}
			for j := 0; j <= i; j++ {
				var g float64
				for k := 0; k <= i; k++ {
					g += v[k*n+i+1] * v[k*n+j]
				}
				for k := 0; k <= i; k++ {
					v[k*n+j] -= g * d[k]
				}
			}
		}
		for k := 0; k <= i; k++ {
			v[k*n+i+1] = 0
		}
	}
	for j := 0; j < n; j++ {
		d[j] = v[(n-1)*n+j]
		v[(n-1)*n+j] = 0
	}
	v[(n-1)*n+n-1] = 1

	// Convert e to the e[i]-couples-(i,i+1) convention used by SymTridEigen.
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0
}
