package eigen

import (
	"context"
	"math"
	"testing"

	"roadpart/internal/linalg"
)

// randomSym returns a deterministic pseudo-random symmetric n×n matrix.
func randomSym(n int, seed uint64) *linalg.Dense {
	rng := splitmix64{state: seed}
	m := linalg.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := 2*rng.float64() - 1
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func checkDecomposition(t *testing.T, a *linalg.Dense, dec *Decomposition, tol float64) {
	t.Helper()
	n := a.Rows()
	k := len(dec.Values)
	// Ascending order.
	for j := 1; j < k; j++ {
		if dec.Values[j] < dec.Values[j-1]-tol {
			t.Fatalf("eigenvalues not ascending: %v", dec.Values)
		}
	}
	// Residuals and orthonormality.
	for j := 0; j < k; j++ {
		v := dec.Vector(j)
		if r := Residual(DenseOp{a}, dec.Values[j], v); r > tol {
			t.Errorf("residual for eigenpair %d = %g > %g (λ=%g)", j, r, tol, dec.Values[j])
		}
		if d := math.Abs(linalg.Norm2(v) - 1); d > tol {
			t.Errorf("eigenvector %d not unit norm: off by %g", j, d)
		}
		for l := j + 1; l < k; l++ {
			if d := math.Abs(linalg.Dot(v, dec.Vector(l))); d > tol {
				t.Errorf("eigenvectors %d,%d not orthogonal: dot=%g", j, l, d)
			}
		}
	}
	_ = n
}

func TestSymEigenDiagonal(t *testing.T) {
	a := linalg.NewDenseFrom(3, 3, []float64{
		3, 0, 0,
		0, -1, 0,
		0, 0, 2,
	})
	dec, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-1, 2, 3}
	for i, w := range want {
		if math.Abs(dec.Values[i]-w) > 1e-12 {
			t.Fatalf("Values = %v, want %v", dec.Values, want)
		}
	}
	checkDecomposition(t, a, dec, 1e-10)
}

func TestSymEigen2x2Analytic(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := linalg.NewDenseFrom(2, 2, []float64{2, 1, 1, 2})
	dec, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dec.Values[0]-1) > 1e-12 || math.Abs(dec.Values[1]-3) > 1e-12 {
		t.Fatalf("Values = %v, want [1 3]", dec.Values)
	}
	checkDecomposition(t, a, dec, 1e-12)
}

func TestSymEigenPathLaplacian(t *testing.T) {
	// The Laplacian of a path graph P_n has eigenvalues 2-2cos(πk/n).
	const n = 10
	a := linalg.NewDense(n, n)
	for i := 0; i < n; i++ {
		deg := 2.0
		if i == 0 || i == n-1 {
			deg = 1
		}
		a.Set(i, i, deg)
		if i+1 < n {
			a.Set(i, i+1, -1)
			a.Set(i+1, i, -1)
		}
	}
	dec, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < n; k++ {
		want := 2 - 2*math.Cos(math.Pi*float64(k)/float64(n))
		if math.Abs(dec.Values[k]-want) > 1e-10 {
			t.Fatalf("eigenvalue %d = %.12f, want %.12f", k, dec.Values[k], want)
		}
	}
	checkDecomposition(t, a, dec, 1e-9)
}

func TestSymEigenRandomMatrices(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 20, 60} {
		a := randomSym(n, uint64(n)*977)
		dec, err := SymEigen(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(dec.Values) != n {
			t.Fatalf("n=%d: got %d eigenvalues", n, len(dec.Values))
		}
		checkDecomposition(t, a, dec, 1e-8)
		// Trace is preserved.
		if d := math.Abs(linalg.Sum(dec.Values) - a.Trace()); d > 1e-8*float64(n) {
			t.Errorf("n=%d: trace mismatch %g", n, d)
		}
	}
}

func TestSymEigenIdentity(t *testing.T) {
	// Fully degenerate spectrum: every eigenvalue 1, any orthonormal
	// basis acceptable.
	const n = 8
	a := linalg.NewDense(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
	}
	dec, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range dec.Values {
		if math.Abs(v-1) > 1e-12 {
			t.Fatalf("identity eigenvalue %v", v)
		}
	}
	checkDecomposition(t, a, dec, 1e-10)
}

func TestSymEigenRepeatedBlocks(t *testing.T) {
	// Two identical 2x2 blocks: eigenvalues 1 and 3, each twice.
	a := linalg.NewDenseFrom(4, 4, []float64{
		2, 1, 0, 0,
		1, 2, 0, 0,
		0, 0, 2, 1,
		0, 0, 1, 2,
	})
	dec, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 3, 3}
	for i, w := range want {
		if math.Abs(dec.Values[i]-w) > 1e-12 {
			t.Fatalf("values = %v, want %v", dec.Values, want)
		}
	}
	checkDecomposition(t, a, dec, 1e-10)
}

func TestSymEigenZeroMatrix(t *testing.T) {
	a := linalg.NewDense(5, 5)
	dec, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range dec.Values {
		if v != 0 {
			t.Fatalf("zero matrix eigenvalue %v", v)
		}
	}
	checkDecomposition(t, a, dec, 1e-12)
}

func TestSymEigenReconstruction(t *testing.T) {
	// A = V·Λ·Vᵀ elementwise, on a random symmetric matrix.
	const n = 25
	a := randomSym(n, 321)
	dec, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	v := linalg.NewDenseFrom(n, n, dec.Vectors)
	lam := linalg.NewDense(n, n)
	for i, val := range dec.Values {
		lam.Set(i, i, val)
	}
	rec := v.Mul(lam).Mul(v.Transpose())
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if d := math.Abs(rec.At(i, j) - a.At(i, j)); d > 1e-9 {
				t.Fatalf("reconstruction off by %g at (%d,%d)", d, i, j)
			}
		}
	}
}

func TestSymEigenRejectsNonSquare(t *testing.T) {
	if _, err := SymEigen(linalg.NewDense(2, 3)); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}

func TestSymTridEigenKnown(t *testing.T) {
	// Tridiagonal [[1,1,0],[1,1,1],[0,1,1]] = 1 + adjacency of P3;
	// eigenvalues 1-√2, 1, 1+√2.
	d := []float64{1, 1, 1}
	e := []float64{1, 1}
	z := identity(3)
	if err := SymTridEigen(d, e, z, 3); err != nil {
		t.Fatal(err)
	}
	want := []float64{1 - math.Sqrt2, 1, 1 + math.Sqrt2}
	for i := range want {
		if math.Abs(d[i]-want[i]) > 1e-12 {
			t.Fatalf("values %v, want %v", d, want)
		}
	}
}

func TestSymTridEigenSizeZeroOne(t *testing.T) {
	if err := SymTridEigen(nil, nil, nil, 0); err != nil {
		t.Fatal(err)
	}
	d := []float64{42}
	if err := SymTridEigen(d, nil, nil, 1); err != nil {
		t.Fatal(err)
	}
	if d[0] != 42 {
		t.Fatalf("1x1 eigenvalue = %v, want 42", d[0])
	}
}

func TestLanczosMatchesDense(t *testing.T) {
	for _, n := range []int{12, 40, 120} {
		a := randomSym(n, uint64(n)+5)
		full, err := SymEigen(a)
		if err != nil {
			t.Fatal(err)
		}
		k := 4
		dec, err := Lanczos(context.Background(), DenseOp{a}, k, LanczosOptions{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < k; j++ {
			if math.Abs(dec.Values[j]-full.Values[j]) > 1e-6 {
				t.Errorf("n=%d: Lanczos value %d = %.9f, dense %.9f", n, j, dec.Values[j], full.Values[j])
			}
		}
		checkDecomposition(t, a, dec, 1e-5)
	}
}

func TestLanczosDeterministic(t *testing.T) {
	a := randomSym(30, 9)
	d1, err := Lanczos(context.Background(), DenseOp{a}, 3, LanczosOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Lanczos(context.Background(), DenseOp{a}, 3, LanczosOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range d1.Values {
		if d1.Values[i] != d2.Values[i] {
			t.Fatal("Lanczos with the same seed should be bit-identical")
		}
	}
}

func TestLanczosDisconnectedLaplacian(t *testing.T) {
	// Block-diagonal Laplacian of two disjoint triangles: eigenvalue 0 has
	// multiplicity 2. Full reorthogonalization + restart must find both.
	b := linalg.NewBuilder(6, 6)
	tri := func(off int) {
		for i := 0; i < 3; i++ {
			b.AddSym(off+i, off+i, 2)
			for j := i + 1; j < 3; j++ {
				b.AddSym(off+i, off+j, -1)
			}
		}
	}
	tri(0)
	tri(3)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Lanczos(context.Background(), CSROp{m}, 3, LanczosOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dec.Values[0]) > 1e-9 || math.Abs(dec.Values[1]) > 1e-9 {
		t.Fatalf("two zero eigenvalues expected, got %v", dec.Values)
	}
	if math.Abs(dec.Values[2]-3) > 1e-8 {
		t.Fatalf("third eigenvalue = %v, want 3", dec.Values[2])
	}
}

func TestLanczosErrors(t *testing.T) {
	a := randomSym(4, 1)
	if _, err := Lanczos(context.Background(), DenseOp{a}, 0, LanczosOptions{}); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := Lanczos(context.Background(), DenseOp{a}, 5, LanczosOptions{}); err == nil {
		t.Fatal("k>n should error")
	}
}

func TestSmallestKChoosesCorrectly(t *testing.T) {
	a := randomSym(25, 77)
	dec, err := SmallestK(context.Background(), DenseOp{a}, a, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Values) != 3 {
		t.Fatalf("want 3 values, got %d", len(dec.Values))
	}
	full, _ := SymEigen(a)
	for j := 0; j < 3; j++ {
		if math.Abs(dec.Values[j]-full.Values[j]) > 1e-10 {
			t.Fatal("SmallestK dense path disagrees with SymEigen")
		}
	}
}

func TestRayleighQuotient(t *testing.T) {
	a := linalg.NewDenseFrom(2, 2, []float64{2, 0, 0, 5})
	if r := RayleighQuotient(DenseOp{a}, []float64{1, 0}); r != 2 {
		t.Fatalf("RayleighQuotient = %v, want 2", r)
	}
}
