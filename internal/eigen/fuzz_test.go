package eigen

import (
	"math"
	"testing"
)

// FuzzSymTridEigen asserts the tridiagonal solver never panics, always
// returns sorted eigenvalues, and conserves the trace for arbitrary
// (finite) tridiagonal input.
func FuzzSymTridEigen(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{255, 0, 255, 0, 255})
	f.Fuzz(func(t *testing.T, raw []byte) {
		n := len(raw) / 2
		if n < 1 || n > 40 {
			return
		}
		d := make([]float64, n)
		e := make([]float64, n)
		var trace float64
		for i := 0; i < n; i++ {
			d[i] = float64(int(raw[i])-128) / 8
			trace += d[i]
			if i+n < len(raw) {
				e[i] = float64(int(raw[i+n])-128) / 8
			}
		}
		if err := SymTridEigen(d, e, nil, n); err != nil {
			return // non-convergence reported, not panicked
		}
		var sum float64
		for i := 0; i < n; i++ {
			if math.IsNaN(d[i]) {
				t.Fatalf("NaN eigenvalue at %d", i)
			}
			if i > 0 && d[i] < d[i-1]-1e-9 {
				t.Fatalf("eigenvalues not sorted: %v", d)
			}
			sum += d[i]
		}
		if math.Abs(sum-trace) > 1e-6*(1+math.Abs(trace)) {
			t.Fatalf("trace not conserved: %v vs %v", sum, trace)
		}
	})
}
