package eigen

import (
	"context"
	"fmt"

	"roadpart/internal/linalg"
)

// Op is a symmetric linear operator presented through matrix–vector
// products. Implementations must compute dst = A·x without retaining either
// slice; dst and x never alias.
type Op interface {
	// Dim returns the order n of the operator.
	Dim() int
	// Apply computes dst = A·x. Both slices have length Dim().
	Apply(dst, x []float64)
}

// DenseOp adapts a dense symmetric matrix to the Op interface.
type DenseOp struct{ M *linalg.Dense }

// Dim returns the order of the wrapped matrix.
func (o DenseOp) Dim() int { return o.M.Rows() }

// Apply computes dst = M·x.
func (o DenseOp) Apply(dst, x []float64) { o.M.MulVec(dst, x) }

// CSROp adapts a sparse symmetric matrix to the Op interface.
type CSROp struct{ M *linalg.CSR }

// Dim returns the order of the wrapped matrix.
func (o CSROp) Dim() int { return o.M.Rows() }

// Apply computes dst = M·x.
func (o CSROp) Apply(dst, x []float64) { o.M.MulVec(dst, x) }

// LanczosOptions tunes the iterative solver. The zero value selects
// reasonable defaults.
type LanczosOptions struct {
	// MaxSteps caps the Krylov dimension. 0 selects
	// min(n, max(4k+30, 80)).
	MaxSteps int
	// Tol is the residual tolerance for declaring a Ritz pair converged.
	// 0 selects 1e-8 (relative to the spectral scale of T).
	Tol float64
	// Seed drives the deterministic start vector. The same seed always
	// yields the same decomposition.
	Seed uint64
	// Start, when its length equals the operator order, seeds the
	// iteration from this vector (normalized) instead of the
	// deterministic random start — the warm-start hook the temporal
	// tracker uses to begin the Krylov recurrence inside the subspace a
	// previous, slightly different operator converged to. A warm start
	// also arms residual-based early termination under Tol: the
	// iteration stops as soon as the k requested Ritz pairs are
	// converged instead of always running MaxSteps. Both effects change
	// which floating-point operations run, so warm-started results are
	// numerically equivalent but not bit-identical to cold ones; leave
	// Start nil (or mismatched) and the solver is byte-for-byte the
	// classic deterministic iteration.
	Start []float64
}

// Lanczos computes the k algebraically smallest eigenpairs of the symmetric
// operator a using the Lanczos iteration with full reorthogonalization.
//
// Full reorthogonalization costs O(m²n) for m steps but eliminates the
// ghost-eigenvalue problem entirely, which matters here: the α-Cut spectrum
// has tight clusters near its lower end, exactly where spurious copies
// appear with selective reorthogonalization. For the supergraph sizes the
// framework produces (10²–10⁴ supernodes) this cost is far below the O(n³)
// of the dense solver.
//
// If the Krylov space exhausts the operator (an invariant subspace is found)
// the iteration restarts with a fresh vector orthogonal to everything found
// so far, so disconnected graphs are handled correctly.
//
// ctx is the iteration budget: the loop checks it before every Krylov
// step (each step is one operator application plus O(m·n) work) and
// returns a clean error wrapping ctx.Err() when it expires, so a
// pathological operator under a deadline degrades to an error instead of
// spinning. The step count itself is always bounded by MaxSteps, and the
// invariant-subspace restart tries at most five fresh directions, so even
// with context.Background() the iteration terminates.
//
// Lanczos draws its scratch from the package workspace pool, so
// steady-state runs allocate only the returned Decomposition; pass an
// explicit workspace to LanczosWS to manage reuse yourself.
func Lanczos(ctx context.Context, a Op, k int, opts LanczosOptions) (*Decomposition, error) {
	return LanczosWS(ctx, a, k, opts, nil)
}

// LanczosWS is Lanczos computing in the given workspace. ws may be dirty
// (every buffer read is first overwritten or zeroed, so reuse is
// bit-identical to a fresh workspace) but must not be shared by
// concurrent calls. A nil ws borrows one from the package pool for the
// duration of the call.
func LanczosWS(ctx context.Context, a Op, k int, opts LanczosOptions, ws *Workspace) (*Decomposition, error) {
	n := a.Dim()
	if k <= 0 {
		return nil, fmt.Errorf("eigen: Lanczos needs k >= 1, got %d", k)
	}
	if k > n {
		return nil, fmt.Errorf("eigen: Lanczos k=%d exceeds operator order %d", k, n)
	}
	m := opts.MaxSteps
	if m == 0 {
		m = 4*k + 30
		if m < 80 {
			m = 80
		}
	}
	if m > n {
		m = n
	}
	if m < k {
		m = k
	}
	tol := opts.Tol
	if tol == 0 {
		tol = 1e-8
	}
	rng := splitmix64{state: opts.Seed ^ 0x9e3779b97f4a7c15}

	if ws == nil {
		ws = getWorkspace()
		defer putWorkspace(ws)
	}
	ws.reset(n, m)
	alpha := ws.alpha[:0]
	beta := ws.beta[:0] // beta[i] couples steps i and i+1

	warm := false
	if len(opts.Start) == n {
		copy(ws.v, opts.Start)
		if linalg.Normalize(ws.v) > 0 {
			warm = true
		}
	}
	if !warm {
		randUnitInto(&rng, ws.v)
	}
	steps := 0
	for steps < m {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("eigen: Lanczos interrupted after %d of %d steps: %w", steps, m, err)
		}
		j := steps
		steps++ // basis row j is occupied by ws.step

		var betaPrev float64
		if j > 0 {
			betaPrev = beta[j-1]
		}
		al, b := ws.step(a, j, betaPrev)
		alpha = append(alpha, al)

		if j+1 == m {
			break
		}
		if b < 1e-12 {
			// Invariant subspace found: restart with a fresh direction
			// orthogonal to the current basis.
			if !ws.restart(&rng, j) {
				break // the whole space is spanned; T is complete
			}
			beta = append(beta, 0)
			copy(ws.v, ws.w)
			continue
		}
		beta = append(beta, b)
		for i := range ws.w {
			ws.v[i] = ws.w[i] / b
		}

		// Warm starts arm residual-based early termination: once the k
		// requested Ritz pairs are converged (|β_j · s_last| bounds each
		// pair's residual) the remaining steps are pure overhead. Only
		// the warm path checks, so a cold run executes exactly the
		// historical operation sequence and stays bit-identical.
		if warm && steps >= k+2 && steps%8 == 0 && ritzConverged(ws, alpha, beta, b, k, tol) {
			break
		}
	}

	// Solve the tridiagonal Ritz problem T s = θ s.
	d := ws.d[:steps]
	copy(d, alpha)
	e := ws.e[:steps]
	for i := range e {
		e[i] = 0
	}
	copy(e, beta)
	z := ws.z[:steps*steps]
	for i := range z {
		z[i] = 0
	}
	for i := 0; i < steps; i++ {
		z[i*steps+i] = 1
	}
	if err := SymTridEigen(d, e, z, steps); err != nil {
		return nil, err
	}
	if k > steps {
		k = steps
	}

	// Assemble the k smallest Ritz pairs: y_j = Q · s_j. The outputs are
	// freshly allocated — a Decomposition outlives (and is cached beyond)
	// the workspace that produced it.
	vec := make([]float64, n*k)
	col := ws.col
	for j := 0; j < k; j++ {
		for i := range col {
			col[i] = 0
		}
		for i := 0; i < steps; i++ {
			linalg.Axpy(z[i*steps+j], ws.q[i], col)
		}
		linalg.Normalize(col)
		for i := 0; i < n; i++ {
			vec[i*k+j] = col[i]
		}
	}
	vals := make([]float64, k)
	copy(vals, d[:k])
	// On the cold path convergence is guaranteed by steps ≥ 4k+30 or a
	// full Krylov space; the warm path may additionally have stopped
	// early once ritzConverged certified the k pairs under tol.
	return &Decomposition{N: n, Values: vals, Vectors: vec}, nil
}

// ritzConverged solves the current tridiagonal Ritz problem in the
// workspace's scratch buffers and reports whether the k smallest Ritz
// pairs all satisfy the classic Lanczos residual bound
// ‖A·y − θ·y‖ = |β_j · s_{j,last}| ≤ tol · spectral scale. The scratch
// (ws.d, ws.e, ws.z) is dead between Krylov steps — the final Ritz solve
// after the loop rewrites it from alpha/beta — so the check allocates
// nothing.
func ritzConverged(ws *Workspace, alpha, beta []float64, betaLast float64, k int, tol float64) bool {
	steps := len(alpha)
	if k > steps {
		return false
	}
	d := ws.d[:steps]
	copy(d, alpha)
	e := ws.e[:steps]
	for i := range e {
		e[i] = 0
	}
	copy(e, beta)
	z := ws.z[:steps*steps]
	for i := range z {
		z[i] = 0
	}
	for i := 0; i < steps; i++ {
		z[i*steps+i] = 1
	}
	if err := SymTridEigen(d, e, z, steps); err != nil {
		return false
	}
	scale := 0.0
	for _, v := range d {
		if a := abs(v); a > scale {
			scale = a
		}
	}
	if scale == 0 {
		scale = 1
	}
	for j := 0; j < k; j++ {
		if abs(betaLast*z[(steps-1)*steps+j]) > tol*scale {
			return false
		}
	}
	return true
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// SmallestK returns the k smallest eigenpairs of op, choosing between the
// dense solver and Lanczos based on the operator size. denseMat may be nil;
// when non-nil and small enough it is decomposed directly. ctx bounds the
// work: the Lanczos path checks it between Krylov steps and the dense
// path checks it before starting (one dense solve is the cancellation
// grain — its O(n³) is bounded by the cutoff).
func SmallestK(ctx context.Context, op Op, denseMat *linalg.Dense, k int, seed uint64) (*Decomposition, error) {
	return SmallestKFrom(ctx, op, denseMat, k, seed, nil)
}

// SmallestKFrom is SmallestK with an optional warm-start vector for the
// Lanczos path (see LanczosOptions.Start). The dense path is a direct
// factorization with no iteration to seed, so start is ignored below the
// cutoff — which keeps dense-sized solves bit-identical whether or not a
// caller offers a warm start. A nil or wrong-length start degrades to the
// deterministic cold start.
func SmallestKFrom(ctx context.Context, op Op, denseMat *linalg.Dense, k int, seed uint64, start []float64) (*Decomposition, error) {
	n := op.Dim()
	const denseCutoff = 900
	if denseMat != nil && n <= denseCutoff {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("eigen: dense solve not started: %w", err)
		}
		return symEigenK(denseMat, k)
	}
	return Lanczos(ctx, op, k, LanczosOptions{Seed: seed, Start: start})
}

// identity returns a new n×n row-major identity matrix.
func identity(n int) []float64 {
	z := make([]float64, n*n)
	for i := 0; i < n; i++ {
		z[i*n+i] = 1
	}
	return z
}

// splitmix64 is a tiny deterministic PRNG, sufficient for start vectors.
type splitmix64 struct{ state uint64 }

func (s *splitmix64) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmix64) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

func randUnit(rng *splitmix64, n int) []float64 {
	v := make([]float64, n)
	randUnitInto(rng, v)
	return v
}

// randUnitInto fills v with a deterministic pseudo-random unit vector,
// overwriting any previous contents. It allocates nothing.
func randUnitInto(rng *splitmix64, v []float64) {
	for i := range v {
		v[i] = 2*rng.float64() - 1
		if v[i] == 0 {
			v[i] = 0.5
		}
	}
	if linalg.Normalize(v) == 0 {
		v[0] = 1
	}
}

// Residual returns ‖A·v − λ·v‖₂ for diagnostic and test use.
func Residual(a Op, lambda float64, v []float64) float64 {
	w := make([]float64, a.Dim())
	a.Apply(w, v)
	linalg.Axpy(-lambda, v, w)
	return linalg.Norm2(w)
}

// RayleighQuotient returns vᵀAv / vᵀv.
func RayleighQuotient(a Op, v []float64) float64 {
	w := make([]float64, a.Dim())
	a.Apply(w, v)
	return linalg.Dot(v, w) / linalg.Dot(v, v)
}
