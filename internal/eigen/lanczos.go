package eigen

import (
	"context"
	"fmt"
	"math"

	"roadpart/internal/linalg"
)

// Op is a symmetric linear operator presented through matrix–vector
// products. Implementations must compute dst = A·x without retaining either
// slice; dst and x never alias.
type Op interface {
	// Dim returns the order n of the operator.
	Dim() int
	// Apply computes dst = A·x. Both slices have length Dim().
	Apply(dst, x []float64)
}

// DenseOp adapts a dense symmetric matrix to the Op interface.
type DenseOp struct{ M *linalg.Dense }

// Dim returns the order of the wrapped matrix.
func (o DenseOp) Dim() int { return o.M.Rows() }

// Apply computes dst = M·x.
func (o DenseOp) Apply(dst, x []float64) { o.M.MulVec(dst, x) }

// CSROp adapts a sparse symmetric matrix to the Op interface.
type CSROp struct{ M *linalg.CSR }

// Dim returns the order of the wrapped matrix.
func (o CSROp) Dim() int { return o.M.Rows() }

// Apply computes dst = M·x.
func (o CSROp) Apply(dst, x []float64) { o.M.MulVec(dst, x) }

// deflationTol is the residual norm below which a Krylov direction is
// treated as contained in the current basis (an invariant subspace was
// found) and the chain restarts from a fresh orthogonal direction.
const deflationTol = 1e-12

// LanczosOptions tunes the iterative solver (the block Lanczos variant
// with full reorthogonalization and an explicit Rayleigh–Ritz projection;
// docs/NUMERICS.md § The Lanczos variant). The zero value selects
// reasonable defaults.
type LanczosOptions struct {
	// MaxSteps caps the basis dimension (seed columns, Krylov expansions
	// and restarts combined). 0 selects min(n, max(4k+30, 80)).
	MaxSteps int
	// Tol is the residual tolerance for declaring a Ritz pair converged:
	// the iteration stops at the first periodic check where all k
	// requested pairs satisfy ‖M·y − θ·y‖ ≤ Tol·max|θ| (the residual is
	// computed exactly from the Rayleigh matrix's tail couplings, so
	// seeded bases are certified correctly; docs/NUMERICS.md
	// § Early termination). 0 selects 1e-8.
	Tol float64
	// Seed drives the deterministic start vector and every
	// invariant-subspace restart direction. The same seed always yields
	// the same decomposition (docs/NUMERICS.md § Determinism).
	Seed uint64
	// Start, when its length equals the operator order, seeds the
	// iteration from this vector (normalized) instead of the
	// deterministic random start — the single-vector warm-start hook
	// (equivalent to a one-row StartBlock). Ignored when StartBlock
	// seeds at least one column. A nil or wrong-length Start degrades to
	// the deterministic cold start.
	Start []float64
	// StartBlock seeds the basis with a whole block of vectors — the
	// Ritz vectors of a previous, closely related solve (a narrower
	// decomposition of the same operator, or the same graph under
	// slightly different densities). Rows are orthonormalized in order;
	// rows of the wrong length or (numerically) dependent on earlier
	// rows are dropped. Warm-started solves run the same algorithm from
	// a different basis, so they converge to the same eigenspace but are
	// not bit-identical to cold solves (docs/NUMERICS.md § Warm starts).
	StartBlock [][]float64
	// Block is the cold-start block size: the number of deterministic
	// random orthonormal start vectors when no Start/StartBlock is
	// given. Values < 1 select 1. A block > 1 resolves eigenvalue
	// clusters of multiplicity up to the block size faster; the default
	// single chain still finds them through full reorthogonalization and
	// restarts.
	Block int
}

// Lanczos computes the k algebraically smallest eigenpairs of the symmetric
// operator a with a block Lanczos iteration: full reorthogonalization
// against the whole basis (two passes), an explicit dense Rayleigh–Ritz
// projection H = QᵀAQ solved by Householder tridiagonalization + QL, and
// residual-based early termination. It implements the eigensolver step of
// the paper's Algorithm 3 (line 5); the numerical contract — variant
// choice, restart policy, warm-start and determinism semantics — is
// specified in docs/NUMERICS.md.
//
// Full reorthogonalization costs O(m²n) for an m-column basis but
// eliminates the ghost-eigenvalue problem entirely, which matters here:
// the α-Cut spectrum has tight clusters near its lower end, exactly where
// spurious copies appear with selective reorthogonalization. The explicit
// Rayleigh matrix (rather than the classic three-term tridiagonal) is what
// lets a solve start from an arbitrary seed block — previous Ritz vectors
// — and still certify convergence with an exact residual bound.
//
// If the Krylov space exhausts the operator (an invariant subspace is
// found) the iteration restarts with a fresh deterministic direction
// orthogonal to everything found so far, so disconnected graphs are
// handled correctly.
//
// ctx is the iteration budget: the loop checks it before every basis
// column (one operator application plus O(m·n) orthogonalization) and
// returns a clean error wrapping ctx.Err() when it expires, so a
// pathological operator under a deadline degrades to an error instead of
// spinning. The column count is always bounded by MaxSteps, and the
// invariant-subspace restart tries at most five fresh directions, so even
// with context.Background() the iteration terminates.
//
// Lanczos draws its scratch from the package workspace pool, so
// steady-state runs allocate only the returned Decomposition; pass an
// explicit workspace to LanczosWS to manage reuse yourself.
func Lanczos(ctx context.Context, a Op, k int, opts LanczosOptions) (*Decomposition, error) {
	return LanczosWS(ctx, a, k, opts, nil)
}

// LanczosWS is Lanczos computing in the given workspace. ws may be dirty
// (every buffer read is first overwritten or zeroed, so reuse is
// bit-identical to a fresh workspace) but must not be shared by
// concurrent calls. A nil ws borrows one from the package pool for the
// duration of the call.
func LanczosWS(ctx context.Context, a Op, k int, opts LanczosOptions, ws *Workspace) (*Decomposition, error) {
	n := a.Dim()
	if k <= 0 {
		return nil, fmt.Errorf("eigen: Lanczos needs k >= 1, got %d", k)
	}
	if k > n {
		return nil, fmt.Errorf("eigen: Lanczos k=%d exceeds operator order %d", k, n)
	}
	m := opts.MaxSteps
	if m == 0 {
		m = 4*k + 30
		if m < 80 {
			m = 80
		}
	}
	if m > n {
		m = n
	}
	if m < k {
		m = k
	}
	tol := opts.Tol
	if tol == 0 {
		tol = 1e-8
	}
	rng := splitmix64{state: opts.Seed ^ 0x9e3779b97f4a7c15}

	if ws == nil {
		ws = getWorkspace()
		defer putWorkspace(ws)
	}
	ws.reset(n, m)

	// Seed the basis: StartBlock rows first (orthonormalized in order,
	// degenerate rows dropped), else the legacy single Start vector, else
	// a deterministic random block of opts.Block columns.
	cnt := 0
	seeded := false
	for _, s := range opts.StartBlock {
		if len(s) != n || cnt == m {
			continue
		}
		if ws.seed(s, cnt) {
			cnt++
			seeded = true
		}
	}
	if !seeded && len(opts.Start) == n {
		if ws.seed(opts.Start, 0) {
			cnt = 1
			seeded = true
		}
	}
	if cnt == 0 {
		randUnitInto(&rng, ws.v)
		copy(ws.q[0], ws.v)
		cnt = 1
	}
	if !seeded {
		for cnt < opts.Block && cnt < m {
			if !ws.restartRows(&rng, cnt) {
				break
			}
			cnt++
		}
	}

	// Process basis columns in order. Each column j contributes one
	// operator application, one Rayleigh-matrix column (H[i][j] = the
	// first orthogonalization pass's coefficients, β on the appended
	// residual row) and, unless the residual deflates or the basis is
	// full, one new basis column. The loop ends when every column is
	// processed (proc == cnt with no replenishment possible) or a
	// periodic Rayleigh–Ritz solve certifies the k requested pairs under
	// tol.
	proc := 0
	solved := false
	for proc < cnt {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("eigen: Lanczos interrupted after %d of %d columns: %w", proc, m, err)
		}
		j := proc
		beta := ws.columnStep(a, j, cnt)
		ws.offres[j] = beta
		if beta > deflationTol && cnt < m {
			qn := ws.q[cnt]
			for i, wv := range ws.w {
				qn[i] = wv / beta
			}
			ws.h[cnt*m+j] = beta
			ws.h[j*m+cnt] = beta
			ws.offres[j] = 0 // residual captured as basis row cnt
			cnt++
		}
		proc++
		if proc == cnt && cnt < m {
			// Invariant subspace found: restart with a fresh direction
			// orthogonal to the current basis.
			if ws.restartRows(&rng, cnt) {
				cnt++
			}
		}
		if proc >= k+2 && proc%8 == 0 && ws.converged(proc, cnt, k, tol) {
			solved = true
			break
		}
	}

	p := proc
	if !solved {
		if err := ws.ritzSolve(p); err != nil {
			return nil, err
		}
	}
	if k > p {
		k = p
	}

	// Assemble the k smallest Ritz pairs: y_j = Q · s_j. The outputs are
	// freshly allocated — a Decomposition outlives (and is cached beyond)
	// the workspace that produced it.
	z := ws.z[:p*p]
	vec := make([]float64, n*k)
	col := ws.col
	for j := 0; j < k; j++ {
		for i := range col {
			col[i] = 0
		}
		for i := 0; i < p; i++ {
			linalg.Axpy(z[i*p+j], ws.q[i], col)
		}
		linalg.Normalize(col)
		for i := 0; i < n; i++ {
			vec[i*k+j] = col[i]
		}
	}
	vals := make([]float64, k)
	copy(vals, ws.d[:k])
	return &Decomposition{N: n, Values: vals, Vectors: vec}, nil
}

// ritzSolve computes the eigendecomposition of the p×p leading principal
// block of the Rayleigh matrix H = QᵀAQ in the workspace's scratch: on
// return ws.d[:p] holds the Ritz values ascending and ws.z[:p*p] the
// Ritz coordinate vectors (row-major, vectors in columns). It allocates
// nothing.
func (ws *Workspace) ritzSolve(p int) error {
	m := ws.m
	z := ws.z[:p*p]
	for i := 0; i < p; i++ {
		copy(z[i*p:(i+1)*p], ws.h[i*m:i*m+p])
	}
	d := ws.d[:p]
	e := ws.e[:p]
	tred2(z, d, e, p)
	return SymTridEigen(d, e, z, p)
}

// converged solves the Rayleigh–Ritz problem over the p processed columns
// and reports whether the k smallest Ritz pairs are all converged under
// tol. The residual of a Ritz pair (θ, y = Q_p·s) is computed exactly
// from the stored couplings: A·Q_p = Q_cnt·H[:, :p] up to the off-basis
// deflation remainders, so
//
//	‖A·y − θ·y‖² = Σ_{r=p}^{cnt-1} (H[r, :p]·s)² + Σ_{c<p} (offres[c]·s_c)²
//
// — the first sum covers residual rows and seed couplings still outside
// the processed prefix, the second the deflated (or basis-capped)
// directions that never became rows. This bound stays valid for seeded
// (warm-started) bases, where the classic tridiagonal |β·s_last| bound
// does not apply. It allocates nothing.
func (ws *Workspace) converged(p, cnt, k int, tol float64) bool {
	if k > p {
		return false
	}
	if ws.ritzSolve(p) != nil {
		return false
	}
	d := ws.d[:p]
	scale := 0.0
	for _, v := range d {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	if scale == 0 {
		scale = 1
	}
	z := ws.z[:p*p]
	m := ws.m
	bound := tol * scale
	for j := 0; j < k; j++ {
		r2 := 0.0
		for r := p; r < cnt; r++ {
			hr := ws.h[r*m : r*m+p]
			dot := 0.0
			for c, s := range hr {
				dot += s * z[c*p+j]
			}
			r2 += dot * dot
		}
		for c := 0; c < p; c++ {
			t := ws.offres[c] * z[c*p+j]
			r2 += t * t
		}
		if r2 > bound*bound {
			return false
		}
	}
	return true
}

// SmallestK returns the k smallest eigenpairs of op, choosing between the
// dense solver and Lanczos based on the operator size. denseMat may be nil;
// when non-nil and small enough it is decomposed directly. ctx bounds the
// work: the Lanczos path checks it between basis columns and the dense
// path checks it before starting (one dense solve is the cancellation
// grain — its O(n³) is bounded by the cutoff).
//
// The partitioning pipeline no longer materializes its operators (cut's
// decompose is always matrix-free via RankOneOp; docs/NUMERICS.md § The
// sparse-plus-rank-one matvec); SmallestK remains for callers that hold a
// dense matrix anyway, such as the dense-vs-Lanczos ablation.
func SmallestK(ctx context.Context, op Op, denseMat *linalg.Dense, k int, seed uint64) (*Decomposition, error) {
	return SmallestKFrom(ctx, op, denseMat, k, seed, nil)
}

// SmallestKFrom is SmallestK with an optional warm-start vector for the
// Lanczos path (see LanczosOptions.Start). The dense path is a direct
// factorization with no iteration to seed, so start is ignored below the
// cutoff — which keeps dense-sized solves bit-identical whether or not a
// caller offers a warm start. A nil or wrong-length start degrades to the
// deterministic cold start.
func SmallestKFrom(ctx context.Context, op Op, denseMat *linalg.Dense, k int, seed uint64, start []float64) (*Decomposition, error) {
	n := op.Dim()
	const denseCutoff = 900
	if denseMat != nil && n <= denseCutoff {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("eigen: dense solve not started: %w", err)
		}
		return symEigenK(denseMat, k)
	}
	return Lanczos(ctx, op, k, LanczosOptions{Seed: seed, Start: start})
}

// identity returns a new n×n row-major identity matrix.
func identity(n int) []float64 {
	z := make([]float64, n*n)
	for i := 0; i < n; i++ {
		z[i*n+i] = 1
	}
	return z
}

// splitmix64 is a tiny deterministic PRNG, sufficient for start vectors.
type splitmix64 struct{ state uint64 }

func (s *splitmix64) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmix64) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

func randUnit(rng *splitmix64, n int) []float64 {
	v := make([]float64, n)
	randUnitInto(rng, v)
	return v
}

// randUnitInto fills v with a deterministic pseudo-random unit vector,
// overwriting any previous contents. It allocates nothing.
func randUnitInto(rng *splitmix64, v []float64) {
	for i := range v {
		v[i] = 2*rng.float64() - 1
		if v[i] == 0 {
			v[i] = 0.5
		}
	}
	if linalg.Normalize(v) == 0 {
		v[0] = 1
	}
}

// Residual returns ‖A·v − λ·v‖₂ for diagnostic and test use.
func Residual(a Op, lambda float64, v []float64) float64 {
	w := make([]float64, a.Dim())
	a.Apply(w, v)
	linalg.Axpy(-lambda, v, w)
	return linalg.Norm2(w)
}

// RayleighQuotient returns vᵀAv / vᵀv.
func RayleighQuotient(a Op, v []float64) float64 {
	w := make([]float64, a.Dim())
	a.Apply(w, v)
	return linalg.Dot(v, w) / linalg.Dot(v, v)
}
