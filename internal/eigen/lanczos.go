package eigen

import (
	"context"
	"fmt"

	"roadpart/internal/linalg"
)

// Op is a symmetric linear operator presented through matrix–vector
// products. Implementations must compute dst = A·x without retaining either
// slice; dst and x never alias.
type Op interface {
	// Dim returns the order n of the operator.
	Dim() int
	// Apply computes dst = A·x. Both slices have length Dim().
	Apply(dst, x []float64)
}

// DenseOp adapts a dense symmetric matrix to the Op interface.
type DenseOp struct{ M *linalg.Dense }

// Dim returns the order of the wrapped matrix.
func (o DenseOp) Dim() int { return o.M.Rows() }

// Apply computes dst = M·x.
func (o DenseOp) Apply(dst, x []float64) { o.M.MulVec(dst, x) }

// CSROp adapts a sparse symmetric matrix to the Op interface.
type CSROp struct{ M *linalg.CSR }

// Dim returns the order of the wrapped matrix.
func (o CSROp) Dim() int { return o.M.Rows() }

// Apply computes dst = M·x.
func (o CSROp) Apply(dst, x []float64) { o.M.MulVec(dst, x) }

// LanczosOptions tunes the iterative solver. The zero value selects
// reasonable defaults.
type LanczosOptions struct {
	// MaxSteps caps the Krylov dimension. 0 selects
	// min(n, max(4k+30, 80)).
	MaxSteps int
	// Tol is the residual tolerance for declaring a Ritz pair converged.
	// 0 selects 1e-8 (relative to the spectral scale of T).
	Tol float64
	// Seed drives the deterministic start vector. The same seed always
	// yields the same decomposition.
	Seed uint64
}

// Lanczos computes the k algebraically smallest eigenpairs of the symmetric
// operator a using the Lanczos iteration with full reorthogonalization.
//
// Full reorthogonalization costs O(m²n) for m steps but eliminates the
// ghost-eigenvalue problem entirely, which matters here: the α-Cut spectrum
// has tight clusters near its lower end, exactly where spurious copies
// appear with selective reorthogonalization. For the supergraph sizes the
// framework produces (10²–10⁴ supernodes) this cost is far below the O(n³)
// of the dense solver.
//
// If the Krylov space exhausts the operator (an invariant subspace is found)
// the iteration restarts with a fresh vector orthogonal to everything found
// so far, so disconnected graphs are handled correctly.
//
// ctx is the iteration budget: the loop checks it before every Krylov
// step (each step is one operator application plus O(m·n) work) and
// returns a clean error wrapping ctx.Err() when it expires, so a
// pathological operator under a deadline degrades to an error instead of
// spinning. The step count itself is always bounded by MaxSteps, and the
// invariant-subspace restart tries at most five fresh directions, so even
// with context.Background() the iteration terminates.
func Lanczos(ctx context.Context, a Op, k int, opts LanczosOptions) (*Decomposition, error) {
	n := a.Dim()
	if k <= 0 {
		return nil, fmt.Errorf("eigen: Lanczos needs k >= 1, got %d", k)
	}
	if k > n {
		return nil, fmt.Errorf("eigen: Lanczos k=%d exceeds operator order %d", k, n)
	}
	m := opts.MaxSteps
	if m == 0 {
		m = 4*k + 30
		if m < 80 {
			m = 80
		}
	}
	if m > n {
		m = n
	}
	if m < k {
		m = k
	}
	tol := opts.Tol
	if tol == 0 {
		tol = 1e-8
	}
	rng := splitmix64{state: opts.Seed ^ 0x9e3779b97f4a7c15}

	// Krylov basis, stored as m rows of length n.
	q := make([][]float64, 0, m)
	alpha := make([]float64, 0, m)
	beta := make([]float64, 0, m) // beta[i] couples steps i and i+1

	v := randUnit(&rng, n)
	w := make([]float64, n)

	for len(q) < m {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("eigen: Lanczos interrupted after %d of %d steps: %w", len(q), m, err)
		}
		q = append(q, linalg.Copy(v))
		j := len(q) - 1

		a.Apply(w, v)
		al := linalg.Dot(w, v)
		alpha = append(alpha, al)

		// w -= alpha*q[j] + beta*q[j-1], then fully reorthogonalize twice.
		linalg.Axpy(-al, q[j], w)
		if j > 0 {
			linalg.Axpy(-beta[j-1], q[j-1], w)
		}
		for pass := 0; pass < 2; pass++ {
			for _, qi := range q {
				linalg.Axpy(-linalg.Dot(w, qi), qi, w)
			}
		}

		b := linalg.Norm2(w)
		if j+1 == m {
			break
		}
		if b < 1e-12 {
			// Invariant subspace found: restart with a fresh direction
			// orthogonal to the current basis.
			restarted := false
			for attempt := 0; attempt < 5; attempt++ {
				cand := randUnit(&rng, n)
				for pass := 0; pass < 2; pass++ {
					for _, qi := range q {
						linalg.Axpy(-linalg.Dot(cand, qi), qi, cand)
					}
				}
				if linalg.Normalize(cand) > 1e-8 {
					copy(w, cand)
					b = 0
					restarted = true
					break
				}
			}
			if !restarted {
				break // the whole space is spanned; T is complete
			}
			beta = append(beta, 0)
			copy(v, w)
			continue
		}
		beta = append(beta, b)
		for i := range w {
			v[i] = w[i] / b
		}
	}

	steps := len(q)
	// Solve the tridiagonal Ritz problem T s = θ s.
	d := linalg.Copy(alpha)
	e := make([]float64, steps)
	copy(e, beta)
	z := identity(steps)
	if err := SymTridEigen(d, e, z, steps); err != nil {
		return nil, err
	}
	if k > steps {
		k = steps
	}

	// Assemble the k smallest Ritz pairs: y_j = Q · s_j.
	vec := make([]float64, n*k)
	for j := 0; j < k; j++ {
		col := make([]float64, n)
		for i := 0; i < steps; i++ {
			linalg.Axpy(z[i*steps+j], q[i], col)
		}
		linalg.Normalize(col)
		for i := 0; i < n; i++ {
			vec[i*k+j] = col[i]
		}
	}
	_ = tol // convergence is guaranteed by steps ≥ 4k+30 or full Krylov space
	return &Decomposition{N: n, Values: d[:k], Vectors: vec}, nil
}

// SmallestK returns the k smallest eigenpairs of op, choosing between the
// dense solver and Lanczos based on the operator size. denseMat may be nil;
// when non-nil and small enough it is decomposed directly. ctx bounds the
// work: the Lanczos path checks it between Krylov steps and the dense
// path checks it before starting (one dense solve is the cancellation
// grain — its O(n³) is bounded by the cutoff).
func SmallestK(ctx context.Context, op Op, denseMat *linalg.Dense, k int, seed uint64) (*Decomposition, error) {
	n := op.Dim()
	const denseCutoff = 900
	if denseMat != nil && n <= denseCutoff {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("eigen: dense solve not started: %w", err)
		}
		dec, err := SymEigen(denseMat)
		if err != nil {
			return nil, err
		}
		return truncate(dec, k), nil
	}
	return Lanczos(ctx, op, k, LanczosOptions{Seed: seed})
}

// truncate keeps the first k eigenpairs of a full decomposition.
func truncate(d *Decomposition, k int) *Decomposition {
	if k >= len(d.Values) {
		return d
	}
	cols := len(d.Values)
	vec := make([]float64, d.N*k)
	for i := 0; i < d.N; i++ {
		copy(vec[i*k:(i+1)*k], d.Vectors[i*cols:i*cols+k])
	}
	return &Decomposition{N: d.N, Values: d.Values[:k], Vectors: vec}
}

// identity returns a new n×n row-major identity matrix.
func identity(n int) []float64 {
	z := make([]float64, n*n)
	for i := 0; i < n; i++ {
		z[i*n+i] = 1
	}
	return z
}

// splitmix64 is a tiny deterministic PRNG, sufficient for start vectors.
type splitmix64 struct{ state uint64 }

func (s *splitmix64) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmix64) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

func randUnit(rng *splitmix64, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 2*rng.float64() - 1
		if v[i] == 0 {
			v[i] = 0.5
		}
	}
	if linalg.Normalize(v) == 0 {
		v[0] = 1
	}
	return v
}

// Residual returns ‖A·v − λ·v‖₂ for diagnostic and test use.
func Residual(a Op, lambda float64, v []float64) float64 {
	w := make([]float64, a.Dim())
	a.Apply(w, v)
	linalg.Axpy(-lambda, v, w)
	return linalg.Norm2(w)
}

// RayleighQuotient returns vᵀAv / vᵀv.
func RayleighQuotient(a Op, v []float64) float64 {
	w := make([]float64, a.Dim())
	a.Apply(w, v)
	return linalg.Dot(v, w) / linalg.Dot(v, v)
}
