package eigen

import (
	"context"
	"math"
	"testing"

	"roadpart/internal/linalg"
)

// tripleBlockMatrix builds a 3b×3b block-diagonal matrix of three
// identical b×b path-graph Laplacians: every eigenvalue of the block
// appears with multiplicity exactly 3 in the full matrix.
func tripleBlockMatrix(b int) *linalg.Dense {
	n := 3 * b
	a := linalg.NewDense(n, n)
	for c := 0; c < 3; c++ {
		off := c * b
		for i := 0; i < b; i++ {
			deg := 2.0
			if i == 0 || i == b-1 {
				deg = 1.0
			}
			a.Set(off+i, off+i, deg)
			if i+1 < b {
				a.Set(off+i, off+i+1, -1)
				a.Set(off+i+1, off+i, -1)
			}
		}
	}
	return a
}

// TestLanczosEigenvalueMultiplicityThree is the block-solver regression
// for degenerate spectra: a single Krylov sequence cannot, in exact
// arithmetic, resolve an eigenvalue of multiplicity m > 1 — recovering
// all copies relies on the solver's invariant-subspace restarts
// injecting fresh random directions (docs/NUMERICS.md § Restart policy).
// Three identical path-Laplacian blocks give every eigenvalue
// multiplicity exactly 3; the solver must return each smallest
// eigenvalue three times, with the basis of each degenerate eigenspace
// orthonormal to 1e-10.
func TestLanczosEigenvalueMultiplicityThree(t *testing.T) {
	const b = 10
	a := tripleBlockMatrix(b)
	const k = 8 // two full triples (λ0, λ1) plus part of the λ2 triple

	// Dense reference for the true spectrum.
	ref, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}

	dec, err := Lanczos(context.Background(), DenseOp{a}, k, LanczosOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Values) != k {
		t.Fatalf("got %d eigenpairs, want %d", len(dec.Values), k)
	}
	for j := 0; j < k; j++ {
		if d := math.Abs(dec.Values[j] - ref.Values[j]); d > 1e-8 {
			t.Errorf("eigenvalue %d = %.12g, dense reference %.12g (off by %g)",
				j, dec.Values[j], ref.Values[j], d)
		}
	}
	// The degenerate copies must agree with each other, not just with the
	// reference: positions {0,1,2} and {3,4,5} are exact triples.
	for _, triple := range [][3]int{{0, 1, 2}, {3, 4, 5}} {
		lo, hi := dec.Values[triple[0]], dec.Values[triple[2]]
		if hi-lo > 1e-8 {
			t.Errorf("triple %v spreads [%.12g, %.12g]: multiplicity not resolved",
				triple, lo, hi)
		}
	}
	// Residuals at the solver tolerance; orthonormality to 1e-10 — within
	// a degenerate eigenspace orthogonality is entirely the solver's
	// doing (any basis of the eigenspace has zero residual).
	for j := 0; j < k; j++ {
		v := dec.Vector(j)
		if r := Residual(DenseOp{a}, dec.Values[j], v); r > 1e-7 {
			t.Errorf("residual for eigenpair %d = %g (λ=%g)", j, r, dec.Values[j])
		}
		if d := math.Abs(linalg.Norm2(v) - 1); d > 1e-10 {
			t.Errorf("eigenvector %d not unit norm: off by %g", j, d)
		}
		for l := j + 1; l < k; l++ {
			if d := math.Abs(linalg.Dot(v, dec.Vector(l))); d > 1e-10 {
				t.Errorf("eigenvectors %d,%d not orthogonal: dot=%g", j, l, d)
			}
		}
	}

	// A warm-seeded re-solve from the converged Ritz block must resolve
	// the same degenerate triples (the warm path skips the random seeds
	// the cold path relied on, so degeneracy handling must not depend on
	// which seeding produced the basis).
	blk := make([][]float64, k)
	for j := range blk {
		blk[j] = dec.Vector(j)
	}
	warm, err := Lanczos(context.Background(), DenseOp{a}, k, LanczosOptions{Seed: 5, StartBlock: blk})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < k; j++ {
		if d := math.Abs(warm.Values[j] - ref.Values[j]); d > 1e-8 {
			t.Errorf("warm eigenvalue %d = %.12g, dense reference %.12g (off by %g)",
				j, warm.Values[j], ref.Values[j], d)
		}
	}
}
