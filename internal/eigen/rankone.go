package eigen

import (
	"fmt"

	"roadpart/internal/linalg"
)

// RankOneOp is the sparse-plus-rank-one symmetric operator
//
//	M·x = Diag∘x + U·(Uᵀx)/S − A·x
//
// presented through matrix–vector products only; M is never materialized.
// It is the solver-side form of the paper's α-Cut matrix family
// (Equation 6 and its scalar-α ablation; see docs/NUMERICS.md § The
// sparse-plus-rank-one matvec):
//
//   - α-Cut (Eq. 6): M = (d·dᵀ)/s − A with d the weighted degree vector
//     and s = 1ᵀD1 — Diag nil, U = d, S = s.
//   - scalar α-Cut: M = αD − A — Diag = α·d, U nil.
//
// One Apply costs O(nnz + n): one sparse matvec, one pass for the
// diagonal/negation, and two dot-product-shaped passes for the rank-one
// term. S = 0 or a nil U disables the rank-one term; a nil Diag means a
// zero diagonal part (plain −A plus the rank-one term).
//
// The arithmetic order is fixed (sparse product, then diagonal/negation,
// then rank-one axpy) and is part of the determinism contract of
// docs/NUMERICS.md: every solve over the same operator runs the same
// floating-point sequence.
type RankOneOp struct {
	// A is the sparse symmetric part, subtracted from the rest.
	A *linalg.CSR
	// Diag is the optional diagonal term Diag∘x; nil means zero.
	Diag []float64
	// U is the optional rank-one factor; nil disables the rank-one term.
	U []float64
	// S is the rank-one denominator: the term applied is U·(Uᵀx)/S.
	// S = 0 disables the rank-one term (a graph with no edges has s = 0,
	// and Equation 6's rank-one part vanishes with it).
	S float64
}

// NewRankOneOp validates the operator's shapes against the sparse part.
func NewRankOneOp(a *linalg.CSR, diag, u []float64, s float64) (*RankOneOp, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("eigen: RankOneOp needs a square sparse part, got %dx%d", a.Rows(), a.Cols())
	}
	n := a.Rows()
	if diag != nil && len(diag) != n {
		return nil, fmt.Errorf("eigen: RankOneOp diagonal length %d != order %d", len(diag), n)
	}
	if u != nil && len(u) != n {
		return nil, fmt.Errorf("eigen: RankOneOp rank-one factor length %d != order %d", len(u), n)
	}
	return &RankOneOp{A: a, Diag: diag, U: u, S: s}, nil
}

// Dim returns the operator order.
func (op *RankOneOp) Dim() int { return op.A.Rows() }

// Apply computes dst = Diag∘x + U·(Uᵀx)/S − A·x in O(nnz + n) without
// materializing the operator. dst and x must not alias.
func (op *RankOneOp) Apply(dst, x []float64) {
	op.A.MulVec(dst, x)
	if op.Diag != nil {
		for i := range dst {
			dst[i] = op.Diag[i]*x[i] - dst[i]
		}
	} else {
		for i := range dst {
			dst[i] = -dst[i]
		}
	}
	if op.U != nil && op.S != 0 {
		linalg.Axpy(linalg.Dot(op.U, x)/op.S, op.U, dst)
	}
}

var _ Op = (*RankOneOp)(nil)
