// Package eigen implements symmetric eigensolvers in pure Go.
//
// The paper's partitioning stage (Algorithm 3) needs the k smallest
// eigenpairs of the symmetric α-Cut matrix M, and the normalized-cut
// baseline needs the smallest eigenpairs of the symmetric normalized
// Laplacian. The authors used Matlab's block-reduction eigensolver
// (Dongarra et al. [3]); Go has no linear-algebra standard library, so this
// package provides the same capability from scratch:
//
//   - SymEigen: full dense decomposition by Householder tridiagonalization
//     (tred2) followed by the implicit-shift QL algorithm (tql2). O(n³),
//     suitable up to a few thousand rows.
//   - Lanczos: iterative extraction of extremal eigenpairs of any linear
//     operator given only matrix–vector products, with full
//     reorthogonalization. This exploits that the α-Cut matrix is a
//     rank-one update of a sparse matrix, so each product costs O(nnz+n).
//
// Both solvers return eigenvalues in ascending order with orthonormal
// eigenvectors.
package eigen

import (
	"fmt"
	"math"
)

// maxQLIterations bounds the implicit-shift QL sweeps per eigenvalue; 60 is
// far above what well-conditioned tridiagonals need (typically < 10).
const maxQLIterations = 60

// eps is the unit roundoff used for deflation tests.
const eps = 2.220446049250313e-16

// SymTridEigen computes all eigenvalues and, optionally, eigenvectors of
// the symmetric tridiagonal matrix with diagonal d (length n) and
// sub-diagonal e, where e[i] couples rows i and i+1 for i in [0, n-2]
// (e may have length n-1 or n; a trailing element is ignored).
//
// On return d holds the eigenvalues in ascending order and e is destroyed.
// If z is non-nil it must be an n×n row-major matrix; on entry it should
// hold the orthogonal transformation that produced the tridiagonal form
// (the identity for a plain tridiagonal problem) and on exit column j of z
// is the eigenvector for d[j].
//
// The implementation follows the EISPACK/JAMA tql2 routine.
func SymTridEigen(d, e []float64, z []float64, n int) error {
	if len(d) < n {
		return fmt.Errorf("eigen: SymTridEigen needs d of length >= %d, got %d", n, len(d))
	}
	if n > 1 && len(e) < n-1 {
		return fmt.Errorf("eigen: SymTridEigen needs e of length >= %d, got %d", n-1, len(e))
	}
	if z != nil && len(z) < n*n {
		return fmt.Errorf("eigen: SymTridEigen z must hold %d elements, got %d", n*n, len(z))
	}
	if n == 0 {
		return nil
	}
	// Work on e padded so that e[n-1] exists and is zero — in place when
	// the caller provided the extra element (e is documented as destroyed,
	// and the in-place path keeps hot-loop convergence checks
	// allocation-free), via a copy otherwise.
	var sub []float64
	if len(e) >= n {
		sub = e[:n]
		sub[n-1] = 0
	} else {
		sub = make([]float64, n)
		copy(sub, e[:n-1])
	}

	var f, tst1 float64
	for l := 0; l < n; l++ {
		if t := math.Abs(d[l]) + math.Abs(sub[l]); t > tst1 {
			tst1 = t
		}
		m := l
		for m < n && math.Abs(sub[m]) > eps*tst1 {
			m++
		}
		if m > l {
			for iter := 0; ; iter++ {
				if iter >= maxQLIterations {
					return fmt.Errorf("eigen: QL failed to converge for eigenvalue %d after %d iterations", l, maxQLIterations)
				}
				// Compute the implicit shift.
				g := d[l]
				p := (d[l+1] - g) / (2 * sub[l])
				r := pythag(p, 1)
				if p < 0 {
					r = -r
				}
				d[l] = sub[l] / (p + r)
				d[l+1] = sub[l] * (p + r)
				dl1 := d[l+1]
				h := g - d[l]
				for i := l + 2; i < n; i++ {
					d[i] -= h
				}
				f += h

				// Implicit QL transformation.
				p = d[m]
				c, c2, c3 := 1.0, 1.0, 1.0
				el1 := sub[l+1]
				s, s2 := 0.0, 0.0
				for i := m - 1; i >= l; i-- {
					c3, c2, s2 = c2, c, s
					g = c * sub[i]
					h = c * p
					r = pythag(p, sub[i])
					sub[i+1] = s * r
					s = sub[i] / r
					c = p / r
					p = c*d[i] - s*g
					d[i+1] = h + s*(c*g+s*d[i])
					if z != nil {
						for k := 0; k < n; k++ {
							h := z[k*n+i+1]
							z[k*n+i+1] = s*z[k*n+i] + c*h
							z[k*n+i] = c*z[k*n+i] - s*h
						}
					}
				}
				p = -s * s2 * c3 * el1 * sub[l] / dl1
				sub[l] = s * p
				d[l] = c * p
				if math.Abs(sub[l]) <= eps*tst1 {
					break
				}
			}
		}
		d[l] += f
		sub[l] = 0
	}

	// Sort eigenvalues ascending, permuting eigenvector columns to match.
	for i := 0; i < n-1; i++ {
		k := i
		p := d[i]
		for j := i + 1; j < n; j++ {
			if d[j] < p {
				k = j
				p = d[j]
			}
		}
		if k != i {
			d[k] = d[i]
			d[i] = p
			if z != nil {
				for r := 0; r < n; r++ {
					z[r*n+i], z[r*n+k] = z[r*n+k], z[r*n+i]
				}
			}
		}
	}
	return nil
}

// pythag returns sqrt(a²+b²) without destructive underflow or overflow.
func pythag(a, b float64) float64 {
	aa, ab := math.Abs(a), math.Abs(b)
	switch {
	case aa > ab:
		r := ab / aa
		return aa * math.Sqrt(1+r*r)
	case ab == 0:
		return 0
	default:
		r := aa / ab
		return ab * math.Sqrt(1+r*r)
	}
}
