package eigen

import (
	"context"
	"math"
	"testing"

	"roadpart/internal/linalg"
)

// TestLanczosWarmStartMatchesCold: a warm-started iteration must converge
// to the same eigenvalues (and residual quality) as the cold one — the
// start vector steers which operations run, never which subspace is
// correct.
func TestLanczosWarmStartMatchesCold(t *testing.T) {
	a := randomSym(60, 11)
	op := DenseOp{a}
	k := 4
	cold, err := Lanczos(context.Background(), op, k, LanczosOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Warm-start from the sum of the converged eigenvectors — the shape
	// the temporal tracker seeds successor solves with.
	start := make([]float64, 60)
	for j := 0; j < k; j++ {
		linalg.Axpy(1, cold.Vector(j), start)
	}
	warm, err := Lanczos(context.Background(), op, k, LanczosOptions{Seed: 3, Start: start})
	if err != nil {
		t.Fatal(err)
	}
	checkDecomposition(t, a, warm, 1e-7)
	for j := 0; j < k; j++ {
		if d := math.Abs(warm.Values[j] - cold.Values[j]); d > 1e-7 {
			t.Fatalf("eigenvalue %d: warm %v vs cold %v (Δ=%g)", j, warm.Values[j], cold.Values[j], d)
		}
	}
}

// TestLanczosMismatchedStartIsCold: a wrong-length (or nil) Start must
// leave the solver byte-for-byte on the deterministic cold path.
func TestLanczosMismatchedStartIsCold(t *testing.T) {
	a := randomSym(40, 5)
	op := DenseOp{a}
	cold, err := Lanczos(context.Background(), op, 3, LanczosOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	short, err := Lanczos(context.Background(), op, 3, LanczosOptions{Seed: 9, Start: make([]float64, 7)})
	if err != nil {
		t.Fatal(err)
	}
	zero, err := Lanczos(context.Background(), op, 3, LanczosOptions{Seed: 9, Start: make([]float64, 40)})
	if err != nil {
		t.Fatal(err)
	}
	for j := range cold.Values {
		if cold.Values[j] != short.Values[j] || cold.Values[j] != zero.Values[j] {
			t.Fatalf("degraded warm starts are not bit-identical to cold: %v vs %v vs %v",
				cold.Values, short.Values, zero.Values)
		}
	}
	for i := range cold.Vectors {
		if cold.Vectors[i] != short.Vectors[i] || cold.Vectors[i] != zero.Vectors[i] {
			t.Fatal("degraded warm starts produced different eigenvectors")
		}
	}
}

// TestSmallestKFromDenseIgnoresStart: below the dense cutoff the direct
// factorization runs regardless of the start vector, so warm-started and
// cold calls are bit-identical — the property that keeps the default
// temporal goldens stable even with warm starts enabled.
func TestSmallestKFromDenseIgnoresStart(t *testing.T) {
	a := randomSym(30, 21)
	op := DenseOp{a}
	start := make([]float64, 30)
	for i := range start {
		start[i] = float64(i + 1)
	}
	plain, err := SmallestK(context.Background(), op, a, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	seeded, err := SmallestKFrom(context.Background(), op, a, 3, 1, start)
	if err != nil {
		t.Fatal(err)
	}
	for j := range plain.Values {
		if plain.Values[j] != seeded.Values[j] {
			t.Fatal("dense path consulted the start vector")
		}
	}
	for i := range plain.Vectors {
		if plain.Vectors[i] != seeded.Vectors[i] {
			t.Fatal("dense path consulted the start vector")
		}
	}
}
