package eigen

import (
	"sync"

	"roadpart/internal/linalg"
	"roadpart/internal/obs"
)

// Workspace holds every scratch buffer a block Lanczos run needs — the
// basis (seed block plus Krylov expansions), the iteration vectors, the
// dense Rayleigh matrix H = QᵀAQ with its Ritz solve scratch, and the
// column assembly buffer — so repeated eigensolves (sweep after sweep,
// request after request) reuse memory instead of reallocating O(m·n)
// per call.
//
// Ownership and reset rules (the memory-discipline contract of
// docs/PERFORMANCE.md):
//
//   - A Workspace may be reused across calls and may contain arbitrary
//     garbage between them — LanczosWS fully overwrites or zeroes every
//     buffer it reads, so a dirty workspace never changes results:
//     pooled and fresh-workspace runs are bit-identical.
//   - A Workspace must not be shared by concurrent LanczosWS calls.
//     Callers that want automatic per-worker reuse pass nil and let the
//     package's sync.Pool hand each concurrent solve its own workspace.
//   - Decomposition outputs are always freshly allocated; they never
//     alias workspace memory, so results stay valid after the workspace
//     is reused or repooled.
//
// The zero value is ready to use; buffers grow on demand and are
// retained for the next run.
type Workspace struct {
	n, m int

	kryl   []float64   // m×n row-major basis backing store
	q      [][]float64 // row views into kryl, q[j] = kryl[j*n:(j+1)*n]
	v      []float64   // seed staging vector, length n
	w      []float64   // operator product / residual, length n
	cand   []float64   // restart / extra-block candidate, length n
	h      []float64   // m×m Rayleigh matrix H = QᵀAQ, zeroed by reset
	offres []float64   // per-column off-basis residual norms, capacity m
	d      []float64   // Ritz eigenvalues, capacity m
	e      []float64   // Ritz tridiagonal scratch, capacity m
	z      []float64   // Ritz solve scratch matrix, capacity m×m
	col    []float64   // Ritz column assembly buffer, length n
}

// reset sizes the workspace for an order-n operator and an m-column
// basis, growing buffers as needed. The Rayleigh matrix h is zeroed —
// unwritten couplings must read as exactly zero for the residual bound —
// while every other buffer's contents are unspecified; LanczosWS
// overwrites everything else it reads.
func (ws *Workspace) reset(n, m int) {
	ws.n, ws.m = n, m
	if cap(ws.kryl) < m*n {
		ws.kryl = make([]float64, m*n)
	}
	ws.kryl = ws.kryl[:m*n]
	if cap(ws.q) < m {
		ws.q = make([][]float64, m)
	}
	ws.q = ws.q[:m]
	for j := 0; j < m; j++ {
		ws.q[j] = ws.kryl[j*n : (j+1)*n]
	}
	ws.v = grow(ws.v, n)
	ws.w = grow(ws.w, n)
	ws.cand = grow(ws.cand, n)
	ws.col = grow(ws.col, n)
	ws.h = grow(ws.h, m*m)
	for i := range ws.h {
		ws.h[i] = 0
	}
	ws.offres = grow(ws.offres, m)
	ws.d = grow(ws.d, m)
	ws.e = grow(ws.e, m)
	ws.z = grow(ws.z, m*m)
}

// grow returns s resized to length n, reallocating only when the
// capacity is insufficient. Contents are unspecified.
func grow(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// footprint returns the workspace's buffer capacity in bytes, for the
// pool's bytes-reused accounting.
func (ws *Workspace) footprint() int {
	floats := cap(ws.kryl) + cap(ws.v) + cap(ws.w) + cap(ws.cand) + cap(ws.col) +
		cap(ws.h) + cap(ws.offres) + cap(ws.d) + cap(ws.e) + cap(ws.z)
	return 8 * floats
}

// columnStep processes basis column j against the cnt current basis rows:
// it applies the operator to q[j], records the first orthogonalization
// pass's coefficients as Rayleigh-matrix column j (mirrored, so H stays
// symmetric), fully reorthogonalizes the product against the whole basis
// (a second pass), and returns the residual norm β_j.
//
// The kernel allocates nothing — it is the Lanczos-iteration
// allocation-free pin of docs/PERFORMANCE.md.
func (ws *Workspace) columnStep(a Op, j, cnt int) float64 {
	a.Apply(ws.w, ws.q[j])
	m := ws.m
	for i := 0; i < cnt; i++ {
		qi := ws.q[i]
		c := linalg.Dot(ws.w, qi)
		ws.h[i*m+j] = c
		ws.h[j*m+i] = c
		linalg.Axpy(-c, qi, ws.w)
	}
	for i := 0; i < cnt; i++ {
		qi := ws.q[i]
		linalg.Axpy(-linalg.Dot(ws.w, qi), qi, ws.w)
	}
	return linalg.Norm2(ws.w)
}

// seed stages vector s as basis row cnt: it copies s, orthogonalizes it
// against rows 0..cnt-1 (two passes) and normalizes. It reports whether
// the direction survived — a zero vector or one (numerically) dependent
// on earlier rows is rejected.
func (ws *Workspace) seed(s []float64, cnt int) bool {
	copy(ws.v, s)
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < cnt; i++ {
			qi := ws.q[i]
			linalg.Axpy(-linalg.Dot(ws.v, qi), qi, ws.v)
		}
	}
	if linalg.Normalize(ws.v) <= 1e-8 {
		return false
	}
	copy(ws.q[cnt], ws.v)
	return true
}

// restartRows installs a fresh deterministic random direction orthogonal
// to basis rows 0..cnt-1 as row cnt, for the invariant-subspace restart
// and for cold-start blocks. It reports whether a usable direction was
// found within five attempts.
func (ws *Workspace) restartRows(rng *splitmix64, cnt int) bool {
	for attempt := 0; attempt < 5; attempt++ {
		randUnitInto(rng, ws.cand)
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < cnt; i++ {
				qi := ws.q[i]
				linalg.Axpy(-linalg.Dot(ws.cand, qi), qi, ws.cand)
			}
		}
		if linalg.Normalize(ws.cand) > 1e-8 {
			copy(ws.q[cnt], ws.cand)
			return true
		}
	}
	return false
}

// Workspace pool: Lanczos (and LanczosWS with a nil workspace) draws
// from here, so the steady-state population is bounded by the number of
// concurrent eigensolves — at most one per worker.
var (
	wsPool  sync.Pool
	wsTally = obs.NewPoolTally("eigen_workspace")
)

func getWorkspace() *Workspace {
	if ws, ok := wsPool.Get().(*Workspace); ok {
		wsTally.Hit(ws.footprint())
		return ws
	}
	wsTally.Miss()
	return &Workspace{}
}

func putWorkspace(ws *Workspace) {
	wsPool.Put(ws)
}
