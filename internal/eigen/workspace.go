package eigen

import (
	"sync"

	"roadpart/internal/linalg"
	"roadpart/internal/obs"
)

// Workspace holds every scratch buffer a Lanczos run needs — the Krylov
// basis, the iteration vectors, the tridiagonal Ritz problem and the
// column assembly buffer — so repeated eigensolves (sweep after sweep,
// request after request) reuse memory instead of reallocating O(m·n)
// per call.
//
// Ownership and reset rules (the memory-discipline contract of
// docs/PERFORMANCE.md):
//
//   - A Workspace may be reused across calls and may contain arbitrary
//     garbage between them — LanczosWS fully overwrites or zeroes every
//     buffer it reads, so a dirty workspace never changes results:
//     pooled and fresh-workspace runs are bit-identical.
//   - A Workspace must not be shared by concurrent LanczosWS calls.
//     Callers that want automatic per-worker reuse pass nil and let the
//     package's sync.Pool hand each concurrent solve its own workspace.
//   - Decomposition outputs are always freshly allocated; they never
//     alias workspace memory, so results stay valid after the workspace
//     is reused or repooled.
//
// The zero value is ready to use; buffers grow on demand and are
// retained for the next run.
type Workspace struct {
	n, m int

	kryl  []float64   // m×n row-major Krylov basis backing store
	q     [][]float64 // row views into kryl, q[j] = kryl[j*n:(j+1)*n]
	v     []float64   // current Lanczos vector, length n
	w     []float64   // operator product / residual, length n
	cand  []float64   // invariant-subspace restart candidate, length n
	alpha []float64   // tridiagonal diagonal, capacity m
	beta  []float64   // tridiagonal sub-diagonal, capacity m
	d     []float64   // Ritz eigenvalues, capacity m
	e     []float64   // Ritz sub-diagonal scratch, capacity m
	z     []float64   // Ritz eigenvector matrix, capacity m×m
	col   []float64   // Ritz column assembly buffer, length n
}

// reset sizes the workspace for an order-n operator and an m-step
// iteration, growing buffers as needed. Contents are unspecified after
// reset; LanczosWS overwrites everything it reads.
func (ws *Workspace) reset(n, m int) {
	ws.n, ws.m = n, m
	if cap(ws.kryl) < m*n {
		ws.kryl = make([]float64, m*n)
	}
	ws.kryl = ws.kryl[:m*n]
	if cap(ws.q) < m {
		ws.q = make([][]float64, m)
	}
	ws.q = ws.q[:m]
	for j := 0; j < m; j++ {
		ws.q[j] = ws.kryl[j*n : (j+1)*n]
	}
	ws.v = grow(ws.v, n)
	ws.w = grow(ws.w, n)
	ws.cand = grow(ws.cand, n)
	ws.col = grow(ws.col, n)
	ws.alpha = grow(ws.alpha, m)
	ws.beta = grow(ws.beta, m)
	ws.d = grow(ws.d, m)
	ws.e = grow(ws.e, m)
	ws.z = grow(ws.z, m*m)
}

// grow returns s resized to length n, reallocating only when the
// capacity is insufficient. Contents are unspecified.
func grow(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// footprint returns the workspace's buffer capacity in bytes, for the
// pool's bytes-reused accounting.
func (ws *Workspace) footprint() int {
	floats := cap(ws.kryl) + cap(ws.v) + cap(ws.w) + cap(ws.cand) + cap(ws.col) +
		cap(ws.alpha) + cap(ws.beta) + cap(ws.d) + cap(ws.e) + cap(ws.z)
	return 8 * floats
}

// step performs Krylov step j of the iteration with full
// reorthogonalization: it stores the current Lanczos vector as basis row
// j, applies the operator, orthogonalizes the product against the whole
// basis (two passes), and returns the step's diagonal entry α_j and the
// residual norm β_j. betaPrev is β_{j−1} (ignored at j = 0).
//
// The kernel allocates nothing — it is the Lanczos-iteration
// allocation-free pin of docs/PERFORMANCE.md — and its arithmetic order
// is exactly the historical inline loop's, so workspace reuse is
// bit-identical to per-call allocation.
func (ws *Workspace) step(a Op, j int, betaPrev float64) (al, b float64) {
	copy(ws.q[j], ws.v)
	a.Apply(ws.w, ws.v)
	al = linalg.Dot(ws.w, ws.v)
	// w -= alpha*q[j] + beta*q[j-1], then fully reorthogonalize twice.
	linalg.Axpy(-al, ws.q[j], ws.w)
	if j > 0 {
		linalg.Axpy(-betaPrev, ws.q[j-1], ws.w)
	}
	for pass := 0; pass < 2; pass++ {
		for i := 0; i <= j; i++ {
			qi := ws.q[i]
			linalg.Axpy(-linalg.Dot(ws.w, qi), qi, ws.w)
		}
	}
	return al, linalg.Norm2(ws.w)
}

// restart replaces ws.w with a fresh random direction orthogonal to
// basis rows 0..j, for the invariant-subspace restart. It reports
// whether a usable direction was found within five attempts.
func (ws *Workspace) restart(rng *splitmix64, j int) bool {
	for attempt := 0; attempt < 5; attempt++ {
		randUnitInto(rng, ws.cand)
		for pass := 0; pass < 2; pass++ {
			for i := 0; i <= j; i++ {
				qi := ws.q[i]
				linalg.Axpy(-linalg.Dot(ws.cand, qi), qi, ws.cand)
			}
		}
		if linalg.Normalize(ws.cand) > 1e-8 {
			copy(ws.w, ws.cand)
			return true
		}
	}
	return false
}

// Workspace pool: Lanczos (and LanczosWS with a nil workspace) draws
// from here, so the steady-state population is bounded by the number of
// concurrent eigensolves — at most one per worker.
var (
	wsPool  sync.Pool
	wsTally = obs.NewPoolTally("eigen_workspace")
)

func getWorkspace() *Workspace {
	if ws, ok := wsPool.Get().(*Workspace); ok {
		wsTally.Hit(ws.footprint())
		return ws
	}
	wsTally.Miss()
	return &Workspace{}
}

func putWorkspace(ws *Workspace) {
	wsPool.Put(ws)
}
