package eigen

import (
	"context"
	"math"
	"sync"
	"testing"

	"roadpart/internal/linalg"
)

// pathOp builds the CSR adjacency of a weighted path graph for tests; its
// size stays below the matvec parallel cutoff so Apply is serial.
func pathOp(t *testing.T, n int) *linalg.CSR {
	t.Helper()
	b := linalg.NewBuilder(n, n)
	for i := 0; i+1 < n; i++ {
		b.AddSym(i, i+1, 1+float64(i%3))
	}
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func decompEqual(t *testing.T, a, b *Decomposition) {
	t.Helper()
	if a.N != b.N || len(a.Values) != len(b.Values) {
		t.Fatalf("shape mismatch: N %d vs %d, k %d vs %d", a.N, b.N, len(a.Values), len(b.Values))
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatalf("value %d: %v != %v", i, a.Values[i], b.Values[i])
		}
	}
	for i := range a.Vectors {
		if a.Vectors[i] != b.Vectors[i] {
			t.Fatalf("vector entry %d: %v != %v", i, a.Vectors[i], b.Vectors[i])
		}
	}
}

// TestLanczosWSDirtyWorkspaceBitIdentical is the dirty-workspace reset
// test: a workspace left full of garbage by a previous (differently
// sized) run must produce the same bits as a fresh solve.
func TestLanczosWSDirtyWorkspaceBitIdentical(t *testing.T) {
	opts := LanczosOptions{Seed: 42}
	big := CSROp{M: pathOp(t, 300)}
	small := CSROp{M: pathOp(t, 120)}

	fresh, err := Lanczos(context.Background(), small, 4, opts)
	if err != nil {
		t.Fatal(err)
	}

	ws := &Workspace{}
	if _, err := LanczosWS(context.Background(), big, 6, opts, ws); err != nil {
		t.Fatal(err)
	}
	// Poison everything the previous run left behind.
	for i := range ws.kryl {
		ws.kryl[i] = math.NaN()
	}
	for _, s := range [][]float64{ws.v, ws.w, ws.cand, ws.col, ws.h, ws.offres, ws.d, ws.e, ws.z} {
		for i := range s {
			s[i] = math.Inf(1)
		}
	}
	reused, err := LanczosWS(context.Background(), small, 4, opts, ws)
	if err != nil {
		t.Fatal(err)
	}
	decompEqual(t, fresh, reused)
}

// TestLanczosNilWorkspacePoolIdentical checks that the pool-backed path
// (Lanczos, nil workspace) matches an explicit workspace bit for bit.
func TestLanczosNilWorkspacePoolIdentical(t *testing.T) {
	op := CSROp{M: pathOp(t, 200)}
	opts := LanczosOptions{Seed: 7}
	pooled, err := Lanczos(context.Background(), op, 5, opts)
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := LanczosWS(context.Background(), op, 5, opts, &Workspace{})
	if err != nil {
		t.Fatal(err)
	}
	decompEqual(t, pooled, explicit)
}

// TestLanczosStepAllocFree pins the Lanczos iteration kernel at zero
// allocations — one of the three allocation-free hot-path pins of
// docs/PERFORMANCE.md. ws.columnStep only writes H column 0 and w, so
// repeating column 0 with the same basis row is a faithful steady-state
// probe; the Rayleigh–Ritz convergence check is pinned alongside it
// because it runs between columns on the same hot path.
func TestLanczosStepAllocFree(t *testing.T) {
	op := CSROp{M: pathOp(t, 256)}
	ws := &Workspace{}
	ws.reset(op.Dim(), 12)
	rng := splitmix64{state: 99}
	randUnitInto(&rng, ws.v)
	copy(ws.q[0], ws.v)
	allocs := testing.AllocsPerRun(50, func() { ws.columnStep(op, 0, 1) })
	if allocs != 0 {
		t.Fatalf("Workspace.columnStep allocates %v per call, want 0", allocs)
	}
	// Process a few columns for real so the convergence check has a
	// meaningful prefix, then pin it at zero allocations too.
	ws.reset(op.Dim(), 12)
	randUnitInto(&rng, ws.v)
	copy(ws.q[0], ws.v)
	cnt := 1
	for j := 0; j < 6; j++ {
		beta := ws.columnStep(op, j, cnt)
		ws.offres[j] = beta
		if beta > deflationTol && cnt < ws.m {
			for i, wv := range ws.w {
				ws.q[cnt][i] = wv / beta
			}
			ws.h[cnt*ws.m+j] = beta
			ws.h[j*ws.m+cnt] = beta
			ws.offres[j] = 0
			cnt++
		}
	}
	allocs = testing.AllocsPerRun(50, func() { ws.converged(6, cnt, 2, 1e-30) })
	if allocs != 0 {
		t.Fatalf("Workspace.converged allocates %v per call, want 0", allocs)
	}
}

// TestLanczosConcurrentPooledIdentical runs many pool-backed solves in
// parallel; under -race this proves pooled workspaces are never shared,
// and the output check proves reuse cannot perturb results.
func TestLanczosConcurrentPooledIdentical(t *testing.T) {
	op := CSROp{M: pathOp(t, 180)}
	opts := LanczosOptions{Seed: 3}
	want, err := Lanczos(context.Background(), op, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 16)
	got := make([]*Decomposition, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got[g], errs[g] = Lanczos(context.Background(), op, 4, opts)
		}(g)
	}
	wg.Wait()
	for g := 0; g < 16; g++ {
		if errs[g] != nil {
			t.Fatal(errs[g])
		}
		decompEqual(t, want, got[g])
	}
}

// TestSymEigenKMatchesTruncatedFull pins the pooled dense path against
// the reference full decomposition: the first k columns must agree bit
// for bit, and k >= n must fall back to the full solve.
func TestSymEigenKMatchesTruncatedFull(t *testing.T) {
	n := 40
	a := linalg.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := float64((i*7+j*3)%11) - 5
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	full, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 3, n - 1, n, n + 5} {
		got, err := symEigenK(a, k)
		if err != nil {
			t.Fatal(err)
		}
		kk := k
		if kk > n {
			kk = n
		}
		if len(got.Values) != kk {
			t.Fatalf("k=%d: got %d values", k, len(got.Values))
		}
		for i := 0; i < kk; i++ {
			if got.Values[i] != full.Values[i] {
				t.Fatalf("k=%d value %d: %v != %v", k, i, got.Values[i], full.Values[i])
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < kk; j++ {
				if got.Vectors[i*kk+j] != full.Vectors[i*n+j] {
					t.Fatalf("k=%d vector (%d,%d): %v != %v", k, i, j, got.Vectors[i*kk+j], full.Vectors[i*n+j])
				}
			}
		}
	}
}
