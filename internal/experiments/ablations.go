package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"roadpart/internal/core"
	"roadpart/internal/cut"
	"roadpart/internal/eigen"
	"roadpart/internal/gen"
	"roadpart/internal/kmeans"
	"roadpart/internal/metrics"
	"roadpart/internal/roadnet"
	"roadpart/internal/supergraph"
	"roadpart/internal/traffic"
)

// AblationRow is one configuration's outcome in an ablation study.
type AblationRow struct {
	Config  string
	ANS     float64
	GDBI    float64
	Extra   string
	Elapsed time.Duration
}

// AblationData is one ablation study's rows.
type AblationData struct {
	Title string
	Rows  []AblationRow
}

// Render prints the study.
func (d *AblationData) Render(w io.Writer) {
	fmt.Fprintln(w, d.Title)
	fmt.Fprintf(w, "%-34s %8s %8s %12s  %s\n", "Config", "ANS", "GDBI", "Elapsed", "Notes")
	for _, r := range d.Rows {
		fmt.Fprintf(w, "%-34s %8.4f %8.4f %12s  %s\n", r.Config, r.ANS, r.GDBI, r.Elapsed.Round(time.Millisecond), r.Extra)
	}
	fmt.Fprintln(w)
}

// AblationStability sweeps the supernode stability threshold ε_η from 0
// (plain ASG) toward 1 (approaching AG), reporting supergraph size and
// quality — the continuum discussed around Figure 6.
func AblationStability(opts Options, k int) (*AblationData, error) {
	ds, err := BuildDataset("D1", opts.Scale)
	if err != nil {
		return nil, err
	}
	if k == 0 {
		k = 6
	}
	data := &AblationData{Title: fmt.Sprintf("Ablation: stability threshold ε_η (D1, ASG, k=%d)", k)}
	for _, eps := range []float64{0, 0.90, 0.95, 0.99, 0.999, 1} {
		t0 := time.Now()
		p, err := core.NewPipeline(ds.Net, core.Config{Scheme: core.ASG, StabilityEps: eps, Seed: 1})
		if err != nil {
			return nil, err
		}
		kk := k
		if len(p.SG.Nodes) < kk {
			kk = len(p.SG.Nodes)
		}
		res, err := p.PartitionK(kk)
		if err != nil {
			return nil, err
		}
		data.Rows = append(data.Rows, AblationRow{
			Config:  fmt.Sprintf("eps_eta=%g", eps),
			ANS:     res.Report.ANS,
			GDBI:    res.Report.GDBI,
			Extra:   fmt.Sprintf("supernodes=%d splits=%d", len(p.SG.Nodes), p.SG.Stats.Splits),
			Elapsed: time.Since(t0),
		})
	}
	return data, nil
}

// AblationWeighting compares the literal Equation 3 superlink weight
// (which algebraically reduces to the supernode-feature Gaussian) against
// the per-link endpoint-feature variant realizing the paper's stated
// intent.
func AblationWeighting(opts Options, k int) (*AblationData, error) {
	ds, err := BuildDataset("D1", opts.Scale)
	if err != nil {
		return nil, err
	}
	if k == 0 {
		k = 6
	}
	data := &AblationData{Title: fmt.Sprintf("Ablation: superlink weighting (D1, ASG, k=%d)", k)}
	for _, cfg := range []struct {
		name string
		mode supergraph.WeightMode
	}{
		{"Eq3 (supernode features)", supergraph.WeightEq3},
		{"per-link (endpoint features)", supergraph.WeightPerLink},
	} {
		t0 := time.Now()
		p, err := core.NewPipeline(ds.Net, core.Config{Scheme: core.ASG, Weighting: cfg.mode, Seed: 1})
		if err != nil {
			return nil, err
		}
		kk := k
		if len(p.SG.Nodes) < kk {
			kk = len(p.SG.Nodes)
		}
		res, err := p.PartitionK(kk)
		if err != nil {
			return nil, err
		}
		data.Rows = append(data.Rows, AblationRow{
			Config: cfg.name, ANS: res.Report.ANS, GDBI: res.Report.GDBI,
			Extra:   fmt.Sprintf("K=%d", res.K),
			Elapsed: time.Since(t0),
		})
	}
	return data, nil
}

// AblationRefine measures the effect of the optional α-Cut boundary
// refinement (cut.RefineAlphaCut) on both direct and supergraph schemes.
func AblationRefine(opts Options, k int) (*AblationData, error) {
	ds, err := BuildDataset("D1", opts.Scale)
	if err != nil {
		return nil, err
	}
	if k == 0 {
		k = 6
	}
	data := &AblationData{Title: fmt.Sprintf("Ablation: boundary refinement (D1, k=%d)", k)}
	for _, cfg := range []struct {
		name   string
		scheme core.Scheme
		refine bool
	}{
		{"AG", core.AG, false},
		{"AG + refine", core.AG, true},
		{"ASG", core.ASG, false},
		{"ASG + refine", core.ASG, true},
	} {
		t0 := time.Now()
		p, err := core.NewPipeline(ds.Net, core.Config{Scheme: cfg.scheme, Refine: cfg.refine, Seed: 1})
		if err != nil {
			return nil, err
		}
		kk := k
		if p.SG != nil && len(p.SG.Nodes) < kk {
			kk = len(p.SG.Nodes)
		}
		res, err := p.PartitionK(kk)
		if err != nil {
			return nil, err
		}
		data.Rows = append(data.Rows, AblationRow{
			Config: cfg.name, ANS: res.Report.ANS, GDBI: res.Report.GDBI,
			Extra:   fmt.Sprintf("K=%d intra=%.4f", res.K, res.Report.Intra),
			Elapsed: time.Since(t0),
		})
	}
	return data, nil
}

// AblationEigen locates the dense-versus-Lanczos crossover for the α-Cut
// eigenproblem: at each operator size it times both solvers for the k
// smallest eigenpairs and reports their agreement, justifying the
// framework's DenseCutoff default.
func AblationEigen(k int, sizes ...int) (*AblationData, error) {
	if k == 0 {
		k = 6
	}
	if len(sizes) == 0 {
		// Sizes are intersection targets; operator order ≈ 1.8× that.
		// The largest default keeps the dense solver under ~half a
		// minute; pass explicit sizes to push the crossover further.
		sizes = []int{200, 500, 900}
	}
	data := &AblationData{Title: fmt.Sprintf("Ablation: dense vs Lanczos eigensolver (α-Cut matrix, k=%d)", k)}
	for _, n := range sizes {
		net, err := gen.City(gen.CityConfig{TargetIntersections: n, TargetSegments: n * 9 / 5, Seed: uint64(n)})
		if err != nil {
			return nil, err
		}
		snap, err := traffic.SyntheticField(net, traffic.FieldConfig{Seed: 1})
		if err != nil {
			return nil, err
		}
		if err := traffic.ApplySnapshot(net, snap); err != nil {
			return nil, err
		}
		g, err := roadnet.DualGraph(net)
		if err != nil {
			return nil, err
		}
		adj, err := core.SimilarityWeighted(g, net.Densities()).AdjacencyCSR()
		if err != nil {
			return nil, err
		}
		op, err := cut.NewAlphaCutOp(adj)
		if err != nil {
			return nil, err
		}

		t0 := time.Now()
		denseDec, err := eigen.SymEigen(op.Dense())
		if err != nil {
			return nil, err
		}
		denseTime := time.Since(t0)

		t0 = time.Now()
		lancDec, err := eigen.Lanczos(context.Background(), op, k, eigen.LanczosOptions{Seed: 1})
		if err != nil {
			return nil, err
		}
		lancTime := time.Since(t0)

		var maxGap float64
		for j := 0; j < k; j++ {
			gap := lancDec.Values[j] - denseDec.Values[j]
			if gap < 0 {
				gap = -gap
			}
			if gap > maxGap {
				maxGap = gap
			}
		}
		data.Rows = append(data.Rows, AblationRow{
			Config:  fmt.Sprintf("n=%d dense", op.Dim()),
			Elapsed: denseTime,
			Extra:   fmt.Sprintf("lanczos=%v speedup=%.1fx max|Δλ|=%.2e", lancTime.Round(time.Millisecond), float64(denseTime)/float64(lancTime), maxGap),
		})
	}
	return data, nil
}

// AblationKMeansInit compares the paper's deterministic sorted-interval
// 1-D k-means initialization against classic random (Forgy) starts on the
// D1 densities: the WCSS of the sorted init versus the spread of WCSS
// across random seeds. The sorted init should match or beat the random
// median while being run-to-run stable, which is why Section 4.1 adopts
// it.
func AblationKMeansInit(opts Options, kappa int) (*AblationData, error) {
	ds, err := BuildDataset("D1", opts.Scale)
	if err != nil {
		return nil, err
	}
	if kappa == 0 {
		kappa = 5
	}
	f := ds.Net.Densities()
	data := &AblationData{Title: fmt.Sprintf("Ablation: 1-D k-means initialization (D1 densities, κ=%d)", kappa)}

	t0 := time.Now()
	sorted, err := kmeans.OneD(f, kappa, 0)
	if err != nil {
		return nil, err
	}
	data.Rows = append(data.Rows, AblationRow{
		Config:  "sorted-interval (paper)",
		Extra:   fmt.Sprintf("WCSS=%.6f iters=%d deterministic", sorted.WCSS, sorted.Iterations),
		Elapsed: time.Since(t0),
	})

	var wcss []float64
	t0 = time.Now()
	const runs = 11
	for seed := uint64(1); seed <= runs; seed++ {
		r, err := kmeans.OneDRandomInit(f, kappa, 0, seed)
		if err != nil {
			return nil, err
		}
		wcss = append(wcss, r.WCSS)
	}
	med := median(wcss)
	lo, hi := wcss[0], wcss[0]
	for _, v := range wcss {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	data.Rows = append(data.Rows, AblationRow{
		Config:  fmt.Sprintf("random (Forgy), %d seeds", runs),
		Extra:   fmt.Sprintf("WCSS median=%.6f min=%.6f max=%.6f", med, lo, hi),
		Elapsed: time.Since(t0),
	})
	return data, nil
}

// AblationReduction compares the paper's global recursive bipartitioning
// against greedy pruning for reducing k′ partitions to k, and the dynamic
// vector α against fixed scalar balances.
func AblationReduction(opts Options, k int) (*AblationData, error) {
	ds, err := BuildDataset("D1", opts.Scale)
	if err != nil {
		return nil, err
	}
	if k == 0 {
		k = 6
	}
	g, err := roadnet.DualGraph(ds.Net)
	if err != nil {
		return nil, err
	}
	f := ds.Net.Densities()
	wg := core.SimilarityWeighted(g, f)

	data := &AblationData{Title: fmt.Sprintf("Ablation: reduction strategy and α (D1 road graph, k=%d)", k)}
	type variant struct {
		name   string
		method cut.Method
		opts   cut.Options
	}
	variants := []variant{
		{"dynamic α + recursive bipart.", cut.MethodAlphaCut, cut.Options{Seed: 1}},
		{"dynamic α + greedy pruning", cut.MethodAlphaCut, cut.Options{Seed: 1, Reduction: cut.ReduceGreedyPruning}},
		{"scalar α=0.3", cut.MethodScalarAlpha, cut.Options{Seed: 1, Alpha: 0.3}},
		{"scalar α=0.5", cut.MethodScalarAlpha, cut.Options{Seed: 1, Alpha: 0.5}},
		{"scalar α=0.7", cut.MethodScalarAlpha, cut.Options{Seed: 1, Alpha: 0.7}},
	}
	for _, v := range variants {
		t0 := time.Now()
		res, err := cut.Partition(wg, k, v.method, v.opts)
		if err != nil {
			return nil, err
		}
		assign, _, err := cut.RepairConnectivity(g, f, res.Assign, k)
		if err != nil {
			return nil, err
		}
		rep, err := metrics.Evaluate(f, assign, g)
		if err != nil {
			return nil, err
		}
		data.Rows = append(data.Rows, AblationRow{
			Config: v.name, ANS: rep.ANS, GDBI: rep.GDBI,
			Extra:   fmt.Sprintf("kprime=%d", res.KPrime),
			Elapsed: time.Since(t0),
		})
	}
	return data, nil
}
