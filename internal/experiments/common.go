package experiments

import (
	"fmt"
	"io"
	"sort"

	"roadpart/internal/core"
	"roadpart/internal/metrics"
	"roadpart/internal/parallel"
	"roadpart/internal/roadnet"
)

// Options tunes an experiment run.
type Options struct {
	// Scale selects dataset sizes.
	Scale Scale
	// Runs is the number of seeded executions whose median each reported
	// value is (the paper uses 100; 0 selects 11 for D1-sized runs and 3
	// for the large networks).
	Runs int
	// KMin and KMax bound k sweeps; zero values select the paper's 2–20
	// for D1 and 2–25 for the large networks (clamped to what the mined
	// supergraph supports).
	KMin, KMax int
	// Workers bounds the goroutines fanning out over seeds, schemes and
	// datasets: 0 selects GOMAXPROCS, 1 forces serial. Reported medians
	// are identical for every worker count.
	Workers int
}

func (o Options) runs(def int) int {
	if o.Runs > 0 {
		return o.Runs
	}
	return def
}

func (o Options) kRange(defMin, defMax int) (int, int) {
	lo, hi := o.KMin, o.KMax
	if lo == 0 {
		lo = defMin
	}
	if hi == 0 {
		hi = defMax
	}
	return lo, hi
}

// Curve holds per-k median metric values for one scheme.
type Curve struct {
	Scheme string
	K      []int
	Inter  []float64
	Intra  []float64
	GDBI   []float64
	ANS    []float64
}

// BestANS returns the minimum ANS on the curve and its k.
func (c *Curve) BestANS() (k int, ans float64) {
	ans = c.ANS[0]
	k = c.K[0]
	for i := range c.K {
		if c.ANS[i] < ans {
			ans = c.ANS[i]
			k = c.K[i]
		}
	}
	return k, ans
}

// schemeCurve sweeps k for one scheme on one network, reporting the median
// of each metric over `runs` seeded executions — the paper's protocol of
// taking medians over repeated runs of the randomized spectral stage.
// Modules 1–2 are k- and seed-independent per seed, so each seed reuses
// one pipeline across the whole k range; seeds are independent and run
// concurrently on `workers` goroutines (the inner pipelines run serial,
// since the per-seed fan-out already saturates the workers). Each seed's
// reports depend only on (net, scheme, seed), so the medians are the same
// for every worker count.
func schemeCurve(net *roadnet.Network, scheme core.Scheme, kMin, kMax, runs, workers int) (*Curve, error) {
	type seedResult struct {
		hi      int
		reports []metrics.Report // index k-kMin
	}
	results := make([]seedResult, runs)
	err := parallel.ForErr(runs, workers, func(i int) error {
		seed := i + 1
		out := &results[i]
		p, err := core.NewPipeline(net, core.Config{Scheme: scheme, Seed: uint64(seed), Workers: 1})
		if err != nil {
			return err
		}
		hi := kMax
		if p.SG != nil && len(p.SG.Nodes) < hi {
			hi = len(p.SG.Nodes) // the supergraph caps the reachable k
		}
		out.hi = hi
		out.reports = make([]metrics.Report, hi-kMin+1)
		for k := kMin; k <= hi; k++ {
			res, err := p.PartitionK(k)
			if err != nil {
				return fmt.Errorf("%v k=%d seed=%d: %w", scheme, k, seed, err)
			}
			out.reports[k-kMin] = res.Report
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	type cell struct{ inter, intra, gdbi, ans []float64 }
	cells := make([]cell, kMax-kMin+1)
	effectiveMax := kMax
	for _, r := range results {
		if r.hi < effectiveMax {
			effectiveMax = r.hi
		}
		for i, rep := range r.reports {
			c := &cells[i]
			c.inter = append(c.inter, rep.Inter)
			c.intra = append(c.intra, rep.Intra)
			c.gdbi = append(c.gdbi, rep.GDBI)
			c.ans = append(c.ans, rep.ANS)
		}
	}
	if effectiveMax < kMin {
		return nil, fmt.Errorf("experiments: %v supports no k in [%d,%d]", scheme, kMin, kMax)
	}
	cv := &Curve{Scheme: scheme.String()}
	for k := kMin; k <= effectiveMax; k++ {
		c := &cells[k-kMin]
		if len(c.ans) == 0 {
			continue
		}
		cv.K = append(cv.K, k)
		cv.Inter = append(cv.Inter, median(c.inter))
		cv.Intra = append(cv.Intra, median(c.intra))
		cv.GDBI = append(cv.GDBI, median(c.gdbi))
		cv.ANS = append(cv.ANS, median(c.ans))
	}
	return cv, nil
}

// median returns the middle value of xs (the mean of the middle two for
// even lengths). xs is reordered.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// renderCurves prints aligned per-k series for one metric across schemes.
func renderCurves(w io.Writer, title, metric string, curves []*Curve, pick func(*Curve) []float64) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%4s", "k")
	for _, c := range curves {
		fmt.Fprintf(w, " %12s", c.Scheme)
	}
	fmt.Fprintln(w)
	// Union of k values, aligned by position per curve.
	idx := map[int]map[string]float64{}
	var ks []int
	for _, c := range curves {
		vals := pick(c)
		for i, k := range c.K {
			if idx[k] == nil {
				idx[k] = map[string]float64{}
				ks = append(ks, k)
			}
			idx[k][c.Scheme] = vals[i]
		}
	}
	sort.Ints(ks)
	for _, k := range ks {
		fmt.Fprintf(w, "%4d", k)
		for _, c := range curves {
			if v, ok := idx[k][c.Scheme]; ok {
				fmt.Fprintf(w, " %12.4f", v)
			} else {
				fmt.Fprintf(w, " %12s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	_ = metric
}
