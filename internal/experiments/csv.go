package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// The WriteCSV methods emit plot-ready series for each figure, so the
// paper's plots can be regenerated with any charting tool from the
// harness output.

// WriteCSV emits the Figure 4 panels as long-form rows:
// metric,scheme,k,value.
func (d *Fig4Data) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"metric", "scheme", "k", "value"}); err != nil {
		return err
	}
	panels := []struct {
		name string
		pick func(*Curve) []float64
	}{
		{"inter", func(c *Curve) []float64 { return c.Inter }},
		{"intra", func(c *Curve) []float64 { return c.Intra }},
		{"gdbi", func(c *Curve) []float64 { return c.GDBI }},
		{"ans", func(c *Curve) []float64 { return c.ANS }},
	}
	for _, p := range panels {
		for _, c := range d.Curves {
			vals := p.pick(c)
			for i, k := range c.K {
				rec := []string{p.name, c.Scheme, strconv.Itoa(k), fmtF(vals[i])}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the Figure 5 series: dataset,kappa,mcg,supernodes.
func (d *Fig5Data) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "kappa", "mcg", "supernodes"}); err != nil {
		return err
	}
	for _, s := range d.Series {
		for i, kappa := range s.Kappa {
			rec := []string{s.Dataset, strconv.Itoa(kappa), fmtF(s.MCG[i]), strconv.Itoa(s.Supernodes[i])}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the Figure 6 stability profiles: dataset,rank,stability.
func (d *Fig6Data) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "rank", "stability"}); err != nil {
		return err
	}
	for _, s := range d.Series {
		for i, eta := range s.Stability {
			if err := cw.Write([]string{s.Dataset, strconv.Itoa(i), fmtF(eta)}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the Figure 7 panels: dataset,metric,k,value.
func (d *Fig7Data) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "metric", "k", "value"}); err != nil {
		return err
	}
	for _, s := range d.Series {
		c := s.Curve
		for i, k := range c.K {
			for _, p := range []struct {
				name string
				v    float64
			}{
				{"inter", c.Inter[i]}, {"intra", c.Intra[i]}, {"gdbi", c.GDBI[i]}, {"ans", c.ANS[i]},
			} {
				if err := cw.Write([]string{s.Dataset, p.name, strconv.Itoa(k), fmtF(p.v)}); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtF(v float64) string { return fmt.Sprintf("%.6g", v) }
