// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6). Each experiment is a function that computes the
// underlying data and renders the same rows or series the paper reports;
// the cmd/experiments binary and the repository's top-level benchmarks are
// thin wrappers around this package.
//
// The datasets substitute synthetic equivalents for the paper's
// proprietary inputs (see DESIGN.md §3): D1 is a Downtown-San-Francisco-
// scale one-way grid with a multi-hotspot microsimulated density snapshot
// (the analogue of the shared microsimulation at t = 71), and M1–M3 are
// Melbourne-scale lattices carrying MNTG-style random-walk traffic at the
// paper's exact fleet sizes.
package experiments

import (
	"fmt"
	"sync"

	"roadpart/internal/gen"
	"roadpart/internal/roadnet"
	"roadpart/internal/traffic"
)

// Scale selects dataset sizes: Full reproduces Table 1 exactly; Small
// shrinks the large networks ~16× so sweeps finish in seconds (benchmarks
// and smoke runs).
type Scale int

const (
	// ScaleSmall shrinks M1–M3 for fast runs; D1 is always full size.
	ScaleSmall Scale = iota
	// ScaleFull reproduces the Table 1 sizes exactly.
	ScaleFull
)

// Dataset is a named road network with densities applied.
type Dataset struct {
	Name string
	Net  *roadnet.Network
}

// datasetSpec mirrors Table 1 plus the traffic configuration used to
// populate each network.
type datasetSpec struct {
	name          string
	intersections int
	segments      int
	vehicles      int
	smallDivisor  int // Small scale shrinks counts by this factor
	hotspots      int
	seed          uint64
}

var specs = []datasetSpec{
	// D1: 420 segments, microsimulation analogue. The paper's D1 traffic
	// comes from a 4-hour microsimulation; 2500 vehicles on a 237-node
	// one-way downtown grid gives comparable per-segment densities.
	{name: "D1", intersections: 237, segments: 420, vehicles: 2500, smallDivisor: 1, hotspots: 8, seed: 0xD1},
	// M1–M3: MNTG fleet sizes from Section 6.1.
	{name: "M1", intersections: 10096, segments: 17206, vehicles: 25246, smallDivisor: 16, hotspots: 6, seed: 0x41},
	{name: "M2", intersections: 28465, segments: 53494, vehicles: 62300, smallDivisor: 16, hotspots: 7, seed: 0x42},
	{name: "M3", intersections: 42321, segments: 79487, vehicles: 84999, smallDivisor: 16, hotspots: 8, seed: 0x43},
}

// BuildDataset constructs one of D1, M1, M2, M3 at the given scale,
// with traffic simulated and the density snapshot applied.
//
// Builds are deterministic in (name, scale), so the expensive city
// generation and traffic microsimulation run once per pair and later
// calls are served from a process-wide cache. Every call returns a
// fresh Network clone, so callers may mutate densities (noise
// experiments, rescaling) without affecting each other.
func BuildDataset(name string, scale Scale) (*Dataset, error) {
	for _, sp := range specs {
		if sp.name == name {
			return cachedBuild(sp, scale)
		}
	}
	return nil, fmt.Errorf("experiments: unknown dataset %q (want D1, M1, M2 or M3)", name)
}

// buildKey identifies one deterministic dataset build.
type buildKey struct {
	name  string
	scale Scale
}

var (
	buildMu    sync.Mutex
	buildCache = map[buildKey]*Dataset{}
)

// cachedBuild memoizes buildFromSpec per (name, scale) and hands out a
// clone of the cached master network on every call. The master is never
// exposed, so no caller mutation can poison the cache. Failed builds are
// not cached (they are configuration errors and cheap to re-fail).
func cachedBuild(sp datasetSpec, scale Scale) (*Dataset, error) {
	key := buildKey{name: sp.name, scale: scale}
	buildMu.Lock()
	master, ok := buildCache[key]
	buildMu.Unlock()
	if !ok {
		built, err := buildFromSpec(sp, scale)
		if err != nil {
			return nil, err
		}
		buildMu.Lock()
		// A concurrent builder may have won the race; keep the first
		// entry so every clone descends from the same master.
		if existing, again := buildCache[key]; again {
			master = existing
		} else {
			buildCache[key] = built
			master = built
		}
		buildMu.Unlock()
	}
	return &Dataset{Name: master.Name, Net: master.Net.Clone()}, nil
}

// DatasetNames lists the available dataset names in paper order.
func DatasetNames() []string {
	out := make([]string, len(specs))
	for i, sp := range specs {
		out[i] = sp.name
	}
	return out
}

func buildFromSpec(sp datasetSpec, scale Scale) (*Dataset, error) {
	div := 1
	if scale == ScaleSmall {
		div = sp.smallDivisor
	}
	ni := sp.intersections / div
	ns := sp.segments / div
	veh := sp.vehicles / div
	net, err := gen.City(gen.CityConfig{
		TargetIntersections: ni,
		TargetSegments:      ns,
		Spacing:             100,
		Jitter:              0.15,
		Seed:                sp.seed,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: building %s: %w", sp.name, err)
	}
	snaps, err := traffic.Simulate(net, traffic.SimConfig{
		Vehicles:    veh,
		Steps:       600,
		RecordEvery: 6, // 100 recorded timestamps, like MNTG
		Hotspots:    sp.hotspots,
		WanderFrac:  0.35,
		Seed:        sp.seed * 7919,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: simulating %s: %w", sp.name, err)
	}
	// The paper evaluates at a single timestamp (t = 71 of 120 for D1);
	// we use the analogous late-simulation instantaneous snapshot.
	snap := snaps[(len(snaps)-1)*71/100]
	if err := traffic.ApplySnapshot(net, snap); err != nil {
		return nil, err
	}
	return &Dataset{Name: sp.name, Net: net}, nil
}
