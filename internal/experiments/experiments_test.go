package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// All experiment tests run at ScaleSmall with few runs so the suite stays
// fast; the full-scale reproduction lives in cmd/experiments and the
// top-level benchmarks.

func TestBuildDatasetNames(t *testing.T) {
	names := DatasetNames()
	if len(names) != 4 || names[0] != "D1" || names[3] != "M3" {
		t.Fatalf("dataset names = %v", names)
	}
	if _, err := BuildDataset("bogus", ScaleSmall); err == nil {
		t.Fatal("unknown dataset should error")
	}
}

func TestBuildDatasetFullD1MatchesTable1(t *testing.T) {
	ds, err := BuildDataset("D1", ScaleFull)
	if err != nil {
		t.Fatal(err)
	}
	st := ds.Net.Stats()
	if st.Intersections != 237 || st.Segments != 420 {
		t.Fatalf("D1 = %d/%d, want 237/420", st.Intersections, st.Segments)
	}
	if st.MeanDensity <= 0 {
		t.Fatal("D1 should carry traffic")
	}
}

func TestBuildDatasetSmallM1(t *testing.T) {
	ds, err := BuildDataset("M1", ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	st := ds.Net.Stats()
	if st.Segments >= 17206 {
		t.Fatalf("small M1 should shrink, got %d segments", st.Segments)
	}
	if st.Segments < 500 {
		t.Fatalf("small M1 too small: %d segments", st.Segments)
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("median odd = %v", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("median even = %v", m)
	}
	if m := median(nil); m != 0 {
		t.Fatalf("median empty = %v", m)
	}
}

func TestFig4SmallRun(t *testing.T) {
	data, err := Fig4(Options{Scale: ScaleSmall, Runs: 2, KMin: 2, KMax: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Curves) != 3 {
		t.Fatalf("want 3 curves, got %d", len(data.Curves))
	}
	for _, c := range data.Curves {
		if len(c.K) == 0 {
			t.Fatalf("curve %s empty", c.Scheme)
		}
		for i := range c.K {
			if c.ANS[i] < 0 || c.GDBI[i] < 0 || c.Inter[i] < 0 || c.Intra[i] < 0 {
				t.Fatalf("negative metric in %s", c.Scheme)
			}
		}
	}
	var buf bytes.Buffer
	data.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Figure 4(a)", "Figure 4(d)", "AG", "NG", "ANS minimum"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTable2SmallRun(t *testing.T) {
	data, err := Table2(Options{Scale: ScaleSmall, Runs: 2, KMin: 2, KMax: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Rows) != 5 {
		t.Fatalf("want 5 rows (AG, ASG, NG, NSG, Ji&Ger), got %d", len(data.Rows))
	}
	for _, r := range data.Rows {
		if r.ANS <= 0 || r.K < 2 {
			t.Fatalf("suspicious row %+v", r)
		}
	}
	var buf bytes.Buffer
	data.Render(&buf)
	if !strings.Contains(buf.String(), "Ji&Geroliminis") {
		t.Fatal("render missing baseline row")
	}
}

func TestFig5SmallRun(t *testing.T) {
	data, err := Fig5(Options{Scale: ScaleSmall, KMin: 2, KMax: 8}, "M1")
	if err != nil {
		t.Fatal(err)
	}
	s := data.Series[0]
	if len(s.Kappa) != 7 {
		t.Fatalf("kappa points = %d, want 7", len(s.Kappa))
	}
	// Supernode counts grow (weakly) with κ.
	for i := 1; i < len(s.Supernodes); i++ {
		if s.Supernodes[i] < s.Supernodes[i-1] {
			// Mild non-monotonicity can occur on tiny data, but a big
			// drop means the counting is broken.
			if s.Supernodes[i-1]-s.Supernodes[i] > s.Supernodes[i-1]/2 {
				t.Fatalf("supernode counts collapse: %v", s.Supernodes)
			}
		}
	}
	if s.ElbowKappa < 2 {
		t.Fatalf("elbow κ = %d", s.ElbowKappa)
	}
	var buf bytes.Buffer
	data.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 5 (M1)") {
		t.Fatal("render missing header")
	}
}

func TestFig6SmallRun(t *testing.T) {
	data, err := Fig6(Options{Scale: ScaleSmall}, "D1")
	if err != nil {
		t.Fatal(err)
	}
	s := data.Series[0]
	if len(s.Stability) == 0 {
		t.Fatal("no supernodes profiled")
	}
	for _, eta := range s.Stability {
		if eta < 0 || eta > 1 {
			t.Fatalf("stability %v outside [0,1]", eta)
		}
	}
	if s.Fraction(0) != 1 {
		t.Fatal("Fraction(0) should be 1")
	}
	if s.Fraction(1.1) != 0 {
		t.Fatal("Fraction above max should be 0")
	}
}

func TestFig7SmallRun(t *testing.T) {
	data, err := Fig7(Options{Scale: ScaleSmall, Runs: 1, KMin: 2, KMax: 5}, "M1")
	if err != nil {
		t.Fatal(err)
	}
	s := data.Series[0]
	if s.BestK < 2 || s.BestANS <= 0 {
		t.Fatalf("suspicious best: k=%d ans=%v", s.BestK, s.BestANS)
	}
	var buf bytes.Buffer
	data.Render(&buf)
	if !strings.Contains(buf.String(), "best ANS") {
		t.Fatal("render missing best line")
	}
}

func TestWriteCSVForms(t *testing.T) {
	fig5, err := Fig5(Options{Scale: ScaleSmall, KMin: 2, KMax: 4}, "M1")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fig5.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "dataset,kappa,mcg,supernodes" {
		t.Fatalf("fig5 header = %q", lines[0])
	}
	if len(lines) != 4 { // header + κ=2..4
		t.Fatalf("fig5 rows = %d, want 4", len(lines))
	}

	fig6, err := Fig6(Options{Scale: ScaleSmall}, "D1")
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := fig6.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "dataset,rank,stability") {
		t.Fatal("fig6 header wrong")
	}

	fig7, err := Fig7(Options{Scale: ScaleSmall, Runs: 1, KMin: 2, KMax: 3}, "M1")
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := fig7.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ans") || !strings.Contains(buf.String(), "gdbi") {
		t.Fatal("fig7 CSV missing metrics")
	}
}

func TestTable1SmallRun(t *testing.T) {
	data, err := Table1(Options{Scale: ScaleSmall})
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(data.Rows))
	}
	var buf bytes.Buffer
	data.Render(&buf)
	if !strings.Contains(buf.String(), "Table 1") {
		t.Fatal("render missing title")
	}
}

func TestTable3SmallRun(t *testing.T) {
	data, err := Table3(Options{Scale: ScaleSmall}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(data.Rows))
	}
	for _, r := range data.Rows {
		if r.Total <= 0 || r.Total < r.Module3 {
			t.Fatalf("timing inconsistent: %+v", r)
		}
	}
}

func TestScalingStudy(t *testing.T) {
	data, err := Scaling(4, 300, 600, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(data.Points))
	}
	for i := 1; i < len(data.Points); i++ {
		if data.Points[i].Segments <= data.Points[i-1].Segments {
			t.Fatal("sizes should increase")
		}
	}
	// The exponent must be finite and plausible (sub-cubic).
	if data.Exponent < -1 || data.Exponent > 3.5 {
		t.Fatalf("growth exponent %v implausible", data.Exponent)
	}
	var buf bytes.Buffer
	data.Render(&buf)
	if !strings.Contains(buf.String(), "growth exponent") {
		t.Fatal("render missing exponent line")
	}
}

func TestAblationsSmallRun(t *testing.T) {
	for name, run := range map[string]func() (*AblationData, error){
		"stability": func() (*AblationData, error) { return AblationStability(Options{Scale: ScaleSmall}, 4) },
		"weighting": func() (*AblationData, error) { return AblationWeighting(Options{Scale: ScaleSmall}, 4) },
		"reduction": func() (*AblationData, error) { return AblationReduction(Options{Scale: ScaleSmall}, 4) },
		"refine":    func() (*AblationData, error) { return AblationRefine(Options{Scale: ScaleSmall}, 4) },
		"eigen":     func() (*AblationData, error) { return AblationEigen(4, 150, 300) },
		"noise":     func() (*AblationData, error) { return AblationNoise(Options{Scale: ScaleSmall}, 4) },
		"kminit":    func() (*AblationData, error) { return AblationKMeansInit(Options{Scale: ScaleSmall}, 5) },
	} {
		data, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(data.Rows) < 2 {
			t.Fatalf("%s: only %d rows", name, len(data.Rows))
		}
		var buf bytes.Buffer
		data.Render(&buf)
		if !strings.Contains(buf.String(), "Ablation") {
			t.Fatalf("%s: render missing title", name)
		}
	}
}
