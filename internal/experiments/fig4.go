package experiments

import (
	"fmt"
	"io"

	"roadpart/internal/core"
	"roadpart/internal/parallel"
)

// Fig4Data holds the four panels of Figure 4: inter, intra, GDBI and ANS
// versus k on the small network D1 for the schemes AG, ASG and NG.
type Fig4Data struct {
	Curves []*Curve
}

// Fig4 reproduces Figure 4: road graph and supergraph partitioning
// quality on the small network across k, medians over seeded runs.
//
// Paper shape: AG and ASG outperform NG on GDBI and ANS at all k; AG
// outperforms NG on inter at all k except 2 and on intra at all k; the
// ANS minima (optimal k) fall at small k.
func Fig4(opts Options) (*Fig4Data, error) {
	ds, err := BuildDataset("D1", opts.Scale)
	if err != nil {
		return nil, err
	}
	kMin, kMax := opts.kRange(2, 20)
	runs := opts.runs(11)
	schemes := []core.Scheme{core.AG, core.ASG, core.NG}
	curves, err := parallel.Map(len(schemes), opts.Workers, func(i int) (*Curve, error) {
		return schemeCurve(ds.Net, schemes[i], kMin, kMax, runs, opts.Workers)
	})
	if err != nil {
		return nil, err
	}
	return &Fig4Data{Curves: curves}, nil
}

// Render prints the four panels in the paper's order.
func (d *Fig4Data) Render(w io.Writer) {
	renderCurves(w, "Figure 4(a): inter-partition distance vs k (higher is better)", "inter", d.Curves, func(c *Curve) []float64 { return c.Inter })
	fmt.Fprintln(w)
	renderCurves(w, "Figure 4(b): intra-partition distance vs k (lower is better)", "intra", d.Curves, func(c *Curve) []float64 { return c.Intra })
	fmt.Fprintln(w)
	renderCurves(w, "Figure 4(c): GDBI vs k (lower is better)", "gdbi", d.Curves, func(c *Curve) []float64 { return c.GDBI })
	fmt.Fprintln(w)
	renderCurves(w, "Figure 4(d): ANS vs k (lower is better; minimum selects optimal k)", "ans", d.Curves, func(c *Curve) []float64 { return c.ANS })
	for _, c := range d.Curves {
		k, ans := c.BestANS()
		fmt.Fprintf(w, "%s: ANS minimum %.4f at k=%d\n", c.Scheme, ans, k)
	}
}
