package experiments

import (
	"fmt"
	"io"

	"roadpart/internal/cluster"
	"roadpart/internal/graph"
	"roadpart/internal/roadnet"
)

// Fig5Series is the MCG curve and supernode counts for one dataset.
type Fig5Series struct {
	Dataset    string
	Kappa      []int
	MCG        []float64
	Supernodes []int
	// ElbowKappa is the κ the framework selects (little MCG increase
	// beyond it), and ElbowSupernodes the supernode count there — the
	// paper's κ=5 with 2,081 / 5,391 / 9,179 supernodes on M1/M2/M3.
	ElbowKappa      int
	ElbowSupernodes int
}

// Fig5Data holds the Figure 5 series for the requested datasets.
type Fig5Data struct {
	Series []Fig5Series
}

// Fig5 reproduces Figure 5: the MCG measure and the number of obtained
// supernodes as functions of κ on the large networks.
//
// Paper shape: MCG rises steeply at small κ and then flattens (maxima can
// sit far right of the elbow), while the supernode count grows
// monotonically with κ — so the framework picks the elbow κ to keep the
// supergraph small.
func Fig5(opts Options, datasets ...string) (*Fig5Data, error) {
	if len(datasets) == 0 {
		datasets = []string{"M1", "M2"}
	}
	kMin, kMax := opts.kRange(2, 25)
	var out Fig5Data
	for _, name := range datasets {
		ds, err := BuildDataset(name, opts.Scale)
		if err != nil {
			return nil, err
		}
		s, err := fig5Series(ds, kMin, kMax)
		if err != nil {
			return nil, err
		}
		out.Series = append(out.Series, *s)
	}
	return &out, nil
}

func fig5Series(ds *Dataset, kMin, kMax int) (*Fig5Series, error) {
	g, err := roadnet.DualGraph(ds.Net)
	if err != nil {
		return nil, err
	}
	f := ds.Net.Densities()
	s := &Fig5Series{Dataset: ds.Name}
	for kappa := kMin; kappa <= kMax; kappa++ {
		n, mcg, err := supernodesAt(g, f, kappa)
		if err != nil {
			return nil, err
		}
		s.Kappa = append(s.Kappa, kappa)
		s.MCG = append(s.MCG, mcg)
		s.Supernodes = append(s.Supernodes, n)
	}
	// The elbow rule: smallest κ with ≥90% of the maximum MCG.
	maxMCG := s.MCG[0]
	for _, v := range s.MCG {
		if v > maxMCG {
			maxMCG = v
		}
	}
	for i, v := range s.MCG {
		if v >= 0.9*maxMCG {
			s.ElbowKappa = s.Kappa[i]
			s.ElbowSupernodes = s.Supernodes[i]
			break
		}
	}
	return s, nil
}

// supernodesAt clusters the full feature set at a fixed κ and counts the
// resulting connected components (supernodes), plus the full-data MCG.
func supernodesAt(g *graph.Graph, f []float64, kappa int) (int, float64, error) {
	res, means, err := cluster.FullKMeans(f, kappa)
	if err != nil {
		return 0, 0, err
	}
	mcg, err := cluster.MCG(f, res, means, kappa)
	if err != nil {
		return 0, 0, err
	}
	_, count := g.GroupComponents(res)
	return count, mcg, nil
}

// Render prints one aligned table per dataset.
func (d *Fig5Data) Render(w io.Writer) {
	for _, s := range d.Series {
		fmt.Fprintf(w, "Figure 5 (%s): MCG measure and number of supernodes vs κ\n", s.Dataset)
		fmt.Fprintf(w, "%6s %14s %12s\n", "kappa", "MCG", "supernodes")
		for i := range s.Kappa {
			fmt.Fprintf(w, "%6d %14.2f %12d\n", s.Kappa[i], s.MCG[i], s.Supernodes[i])
		}
		fmt.Fprintf(w, "elbow: κ=%d with %d supernodes\n\n", s.ElbowKappa, s.ElbowSupernodes)
	}
}
