package experiments

import (
	"fmt"
	"io"
	"sort"

	"roadpart/internal/roadnet"
	"roadpart/internal/supergraph"
)

// Fig6Series is the stability profile of one dataset's supernodes.
type Fig6Series struct {
	Dataset string
	// Stability holds η(ς) for every supernode, ascending.
	Stability []float64
}

// Fraction returns the share of supernodes with stability at least eta.
func (s *Fig6Series) Fraction(eta float64) float64 {
	if len(s.Stability) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(s.Stability, eta)
	return float64(len(s.Stability)-i) / float64(len(s.Stability))
}

// Fig6Data holds the Figure 6 panels.
type Fig6Data struct {
	Series []Fig6Series
}

// Fig6 reproduces Figure 6: the stability measure η(ς) of the mined
// supernodes, for D1 (panel a) and M2 (panel b).
//
// Paper shape: most supernodes are highly stable (η near 1), with a small
// unstable tail — which is why the plain supergraph (no stability pass)
// already partitions well.
func Fig6(opts Options, datasets ...string) (*Fig6Data, error) {
	if len(datasets) == 0 {
		datasets = []string{"D1", "M2"}
	}
	var out Fig6Data
	for _, name := range datasets {
		ds, err := BuildDataset(name, opts.Scale)
		if err != nil {
			return nil, err
		}
		g, err := roadnet.DualGraph(ds.Net)
		if err != nil {
			return nil, err
		}
		f := ds.Net.Densities()
		sg, err := supergraph.Mine(g, f, supergraph.MineOptions{})
		if err != nil {
			return nil, err
		}
		etas := sg.StabilityProfile(f)
		sort.Float64s(etas)
		out.Series = append(out.Series, Fig6Series{Dataset: ds.Name, Stability: etas})
	}
	return &out, nil
}

// Render prints a compact distribution summary per dataset.
func (d *Fig6Data) Render(w io.Writer) {
	for _, s := range d.Series {
		fmt.Fprintf(w, "Figure 6 (%s): stability of %d supernodes\n", s.Dataset, len(s.Stability))
		if len(s.Stability) == 0 {
			continue
		}
		q := func(p float64) float64 {
			i := int(p * float64(len(s.Stability)-1))
			return s.Stability[i]
		}
		fmt.Fprintf(w, "  min=%.4f p25=%.4f median=%.4f p75=%.4f max=%.4f\n",
			s.Stability[0], q(0.25), q(0.50), q(0.75), s.Stability[len(s.Stability)-1])
		for _, eta := range []float64{0.90, 0.95, 0.99} {
			fmt.Fprintf(w, "  share with η ≥ %.2f: %.1f%%\n", eta, 100*s.Fraction(eta))
		}
		fmt.Fprintln(w)
	}
}
