package experiments

import (
	"fmt"
	"io"

	"roadpart/internal/core"
	"roadpart/internal/parallel"
)

// Fig7Series holds the per-k quality curves for one large dataset.
type Fig7Series struct {
	Dataset string
	Curve   *Curve
	// BestK and BestANS identify the ANS minimum — the optimal partition
	// count the paper reports (4, 5 and 5 for M1, M2, M3).
	BestK   int
	BestANS float64
}

// Fig7Data holds the Figure 7 panels.
type Fig7Data struct {
	Series []Fig7Series
}

// Fig7 reproduces Figure 7: supergraph partitioning quality (inter,
// intra, GDBI, ANS) versus k on the large networks M1–M3, using the
// scalable ASG configuration the framework targets at that size.
//
// Paper shape: best ANS values are worse than the small network's but far
// better than the small-network baselines (NG, Ji&Ger); quality degrades
// slightly as the network grows; ANS fluctuates at small k and settles at
// larger k.
func Fig7(opts Options, datasets ...string) (*Fig7Data, error) {
	if len(datasets) == 0 {
		datasets = []string{"M1", "M2", "M3"}
	}
	kMin, kMax := opts.kRange(2, 25)
	runs := opts.runs(3)
	// Datasets are independent, so they run concurrently; the per-seed
	// fan-out inside each curve shares the same worker budget.
	series, err := parallel.Map(len(datasets), opts.Workers, func(i int) (Fig7Series, error) {
		ds, err := BuildDataset(datasets[i], opts.Scale)
		if err != nil {
			return Fig7Series{}, err
		}
		c, err := schemeCurve(ds.Net, core.ASG, kMin, kMax, runs, opts.Workers)
		if err != nil {
			return Fig7Series{}, err
		}
		bestK, bestANS := c.BestANS()
		return Fig7Series{Dataset: ds.Name, Curve: c, BestK: bestK, BestANS: bestANS}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig7Data{Series: series}, nil
}

// Render prints one table per dataset with all four metrics.
func (d *Fig7Data) Render(w io.Writer) {
	for _, s := range d.Series {
		fmt.Fprintf(w, "Figure 7 (%s): supergraph partitioning quality vs k\n", s.Dataset)
		fmt.Fprintf(w, "%4s %10s %10s %10s %10s\n", "k", "inter", "intra", "GDBI", "ANS")
		for i, k := range s.Curve.K {
			fmt.Fprintf(w, "%4d %10.4f %10.4f %10.4f %10.4f\n",
				k, s.Curve.Inter[i], s.Curve.Intra[i], s.Curve.GDBI[i], s.Curve.ANS[i])
		}
		fmt.Fprintf(w, "best ANS %.4f at k=%d\n\n", s.BestANS, s.BestK)
	}
}
