package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"roadpart/internal/core"
	"roadpart/internal/gen"
	"roadpart/internal/metrics"
	"roadpart/internal/traffic"
)

// ScalingPoint is the framework cost at one network size.
type ScalingPoint struct {
	Segments int
	Module1  time.Duration
	Module2  time.Duration
	Module3  time.Duration
	Total    time.Duration
}

// ScalingData is the empirical scaling study behind Table 3's shape
// claims: per-module cost as the network grows, with the fitted growth
// exponent of the total (slope of log T vs log n).
type ScalingData struct {
	K        int
	Points   []ScalingPoint
	Exponent float64
}

// Scaling measures the framework's cost on generated cities of increasing
// size (ASG, fixed k), verifying that total time grows polynomially with
// a small exponent — the scalability argument of Sections 4 and 6.4.
func Scaling(k int, sizes ...int) (*ScalingData, error) {
	if k == 0 {
		k = 5
	}
	if len(sizes) == 0 {
		sizes = []int{1000, 2000, 4000, 8000, 16000}
	}
	data := &ScalingData{K: k}
	for _, nSeg := range sizes {
		net, err := gen.City(gen.CityConfig{
			TargetIntersections: nSeg * 5 / 9,
			TargetSegments:      nSeg,
			Seed:                uint64(nSeg),
		})
		if err != nil {
			return nil, err
		}
		snap, err := traffic.SyntheticField(net, traffic.FieldConfig{Hotspots: 6, Seed: 1})
		if err != nil {
			return nil, err
		}
		if err := traffic.ApplySnapshot(net, snap); err != nil {
			return nil, err
		}
		res, err := core.Partition(net, core.Config{K: k, Scheme: core.ASG, Seed: 1})
		if err != nil {
			return nil, fmt.Errorf("scaling at %d segments: %w", nSeg, err)
		}
		data.Points = append(data.Points, ScalingPoint{
			Segments: len(net.Segments),
			Module1:  res.Timing.Module1,
			Module2:  res.Timing.Module2,
			Module3:  res.Timing.Module3,
			Total:    res.Timing.Total,
		})
	}
	data.Exponent = fitExponent(data.Points)
	return data, nil
}

// fitExponent least-squares fits log T = a + b·log n and returns b.
func fitExponent(pts []ScalingPoint) float64 {
	if len(pts) < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(pts))
	for _, p := range pts {
		x := math.Log(float64(p.Segments))
		y := math.Log(p.Total.Seconds() + 1e-9)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

// Render prints the study.
func (d *ScalingData) Render(w io.Writer) {
	fmt.Fprintf(w, "Scaling study (ASG, k=%d): per-module cost vs network size\n", d.K)
	fmt.Fprintf(w, "%10s %12s %12s %12s %12s\n", "segments", "module1", "module2", "module3", "total")
	for _, p := range d.Points {
		fmt.Fprintf(w, "%10d %12s %12s %12s %12s\n",
			p.Segments, p.Module1.Round(time.Millisecond), p.Module2.Round(time.Millisecond),
			p.Module3.Round(time.Millisecond), p.Total.Round(time.Millisecond))
	}
	fmt.Fprintf(w, "fitted growth exponent of total time: %.2f (log-log slope)\n", d.Exponent)
}

// AblationNoise measures partition robustness: the D1 densities are
// perturbed with multiplicative noise of increasing amplitude and the
// partition's agreement with the noise-free result (ARI) is reported.
// A method whose regions collapse under small measurement noise would be
// useless on real detector data.
func AblationNoise(opts Options, k int) (*AblationData, error) {
	ds, err := BuildDataset("D1", opts.Scale)
	if err != nil {
		return nil, err
	}
	if k == 0 {
		k = 6
	}
	clean := ds.Net.Densities()
	p, err := core.NewPipeline(ds.Net, core.Config{Scheme: core.ASG, Seed: 1})
	if err != nil {
		return nil, err
	}
	kk := k
	if len(p.SG.Nodes) < kk {
		kk = len(p.SG.Nodes)
	}
	base, err := p.PartitionK(kk)
	if err != nil {
		return nil, err
	}

	data := &AblationData{Title: fmt.Sprintf("Ablation: density noise robustness (D1, ASG, k=%d; ARI vs clean)", kk)}
	rng := gen.NewRNG(99)
	for _, amp := range []float64{0.02, 0.05, 0.10, 0.20, 0.40} {
		noisy := make([]float64, len(clean))
		for i, v := range clean {
			noisy[i] = v * (1 + amp*(2*rng.Float64()-1))
			if noisy[i] < 0 {
				noisy[i] = 0
			}
		}
		if err := ds.Net.SetDensities(noisy); err != nil {
			return nil, err
		}
		t0 := time.Now()
		np, err := core.NewPipeline(ds.Net, core.Config{Scheme: core.ASG, Seed: 1})
		if err != nil {
			return nil, err
		}
		nk := kk
		if len(np.SG.Nodes) < nk {
			nk = len(np.SG.Nodes)
		}
		res, err := np.PartitionK(nk)
		if err != nil {
			return nil, err
		}
		ari, err := metrics.ARI(base.Assign, res.Assign)
		if err != nil {
			return nil, err
		}
		data.Rows = append(data.Rows, AblationRow{
			Config:  fmt.Sprintf("noise ±%.0f%%", amp*100),
			ANS:     res.Report.ANS,
			GDBI:    res.Report.GDBI,
			Extra:   fmt.Sprintf("ARI=%.3f K=%d", ari, res.K),
			Elapsed: time.Since(t0),
		})
	}
	if err := ds.Net.SetDensities(clean); err != nil {
		return nil, err
	}
	return data, nil
}
