package experiments

import (
	"fmt"
	"io"

	"roadpart/internal/core"
	"roadpart/internal/jiger"
	"roadpart/internal/metrics"
	"roadpart/internal/parallel"
	"roadpart/internal/roadnet"
)

// Table2Row is one scheme's best (lowest) ANS and the k achieving it.
type Table2Row struct {
	Scheme string
	ANS    float64
	K      int
}

// Table2Data is the overall-quality comparison of Table 2.
type Table2Data struct {
	Rows []Table2Row
}

// Table2 reproduces Table 2: the optimal (minimum over k) ANS for the
// schemes AG, ASG, NG, NSG and the Ji & Geroliminis baseline on D1.
//
// Paper shape: AG (0.3392 @ k=6) and ASG (0.3526 @ k=6) are far better
// than NG (0.9362 @ k=8), with Ji & Geroliminis in between (0.6210 @ k=3).
func Table2(opts Options) (*Table2Data, error) {
	ds, err := BuildDataset("D1", opts.Scale)
	if err != nil {
		return nil, err
	}
	kMin, kMax := opts.kRange(2, 20)
	runs := opts.runs(11)

	schemes := []core.Scheme{core.AG, core.ASG, core.NG, core.NSG}
	rows, err := parallel.Map(len(schemes), opts.Workers, func(i int) (Table2Row, error) {
		c, err := schemeCurve(ds.Net, schemes[i], kMin, kMax, runs, opts.Workers)
		if err != nil {
			return Table2Row{}, err
		}
		k, ans := c.BestANS()
		return Table2Row{Scheme: c.Scheme, ANS: ans, K: k}, nil
	})
	if err != nil {
		return nil, err
	}
	row, err := jigerBest(ds.Net, kMin, kMax, runs)
	if err != nil {
		return nil, err
	}
	return &Table2Data{Rows: append(rows, row)}, nil
}

// jigerBest sweeps k for the Ji & Geroliminis baseline and returns its
// best median ANS.
func jigerBest(net *roadnet.Network, kMin, kMax, runs int) (Table2Row, error) {
	g, err := roadnet.DualGraph(net)
	if err != nil {
		return Table2Row{}, err
	}
	f := net.Densities()
	bestK, bestANS := 0, 0.0
	for k := kMin; k <= kMax; k++ {
		var vals []float64
		for seed := 1; seed <= runs; seed++ {
			res, err := jiger.Partition(g, f, k, jiger.Options{Seed: uint64(seed)})
			if err != nil {
				return Table2Row{}, fmt.Errorf("jiger k=%d: %w", k, err)
			}
			ans, err := metrics.ANS(f, res.Assign, g)
			if err != nil {
				return Table2Row{}, err
			}
			vals = append(vals, ans)
		}
		m := median(vals)
		if bestK == 0 || m < bestANS {
			bestK, bestANS = k, m
		}
	}
	return Table2Row{Scheme: "Ji&Geroliminis", ANS: bestANS, K: bestK}, nil
}

// Render prints the table in the paper's layout.
func (d *Table2Data) Render(w io.Writer) {
	fmt.Fprintln(w, "Table 2: Overall quality of partitioning (best ANS; lower is better)")
	fmt.Fprintf(w, "%-16s %8s %4s\n", "Scheme", "ANS", "k")
	for _, r := range d.Rows {
		fmt.Fprintf(w, "%-16s %8.4f %4d\n", r.Scheme, r.ANS, r.K)
	}
}
