package experiments

import (
	"fmt"
	"io"
	"time"

	"roadpart/internal/core"
)

// Table1Row is one dataset's statistics.
type Table1Row struct {
	Dataset       string
	Intersections int
	Segments      int
	MeanDensity   float64
	MaxDensity    float64
}

// Table1Data is the dataset-statistics table.
type Table1Data struct {
	Rows []Table1Row
}

// Table1 reproduces Table 1: the statistics of the four datasets as
// actually generated (at ScaleFull the intersection and segment counts
// equal the paper's exactly).
func Table1(opts Options) (*Table1Data, error) {
	var out Table1Data
	for _, name := range DatasetNames() {
		ds, err := BuildDataset(name, opts.Scale)
		if err != nil {
			return nil, err
		}
		st := ds.Net.Stats()
		out.Rows = append(out.Rows, Table1Row{
			Dataset:       name,
			Intersections: st.Intersections,
			Segments:      st.Segments,
			MeanDensity:   st.MeanDensity,
			MaxDensity:    st.MaxDensity,
		})
	}
	return &out, nil
}

// Render prints the table.
func (d *Table1Data) Render(w io.Writer) {
	fmt.Fprintln(w, "Table 1: Dataset statistics")
	fmt.Fprintf(w, "%-8s %14s %10s %14s %14s\n", "Dataset", "Intersections", "Segments", "MeanDensity", "MaxDensity")
	for _, r := range d.Rows {
		fmt.Fprintf(w, "%-8s %14d %10d %14.5f %14.5f\n", r.Dataset, r.Intersections, r.Segments, r.MeanDensity, r.MaxDensity)
	}
}

// Table3Row is the per-module running time of the framework on one
// dataset.
type Table3Row struct {
	Dataset string
	Module1 time.Duration
	Module2 time.Duration
	Module3 time.Duration
	Total   time.Duration
}

// Table3Data is the running-time table.
type Table3Data struct {
	Rows []Table3Row
	K    int
}

// Table3 reproduces Table 3: wall-clock time of each framework module on
// every dataset, running the scalable ASG configuration at a fixed k.
//
// Paper shape: module 1 (graph construction) is cheapest, module 3
// (eigen-decomposition and spectral clustering) dominates, and total time
// grows superlinearly with network size.
func Table3(opts Options, k int) (*Table3Data, error) {
	if k == 0 {
		k = 5
	}
	out := Table3Data{K: k}
	for _, name := range DatasetNames() {
		ds, err := BuildDataset(name, opts.Scale)
		if err != nil {
			return nil, err
		}
		res, err := core.Partition(ds.Net, core.Config{K: k, Scheme: core.ASG, Seed: 1})
		if err != nil {
			return nil, fmt.Errorf("table 3 (%s): %w", name, err)
		}
		out.Rows = append(out.Rows, Table3Row{
			Dataset: name,
			Module1: res.Timing.Module1,
			Module2: res.Timing.Module2,
			Module3: res.Timing.Module3,
			Total:   res.Timing.Total,
		})
	}
	return &out, nil
}

// Render prints the table.
func (d *Table3Data) Render(w io.Writer) {
	fmt.Fprintf(w, "Table 3: Running time per module (ASG, k=%d)\n", d.K)
	fmt.Fprintf(w, "%-8s %12s %12s %12s %12s\n", "Dataset", "Module1", "Module2", "Module3", "Total")
	for _, r := range d.Rows {
		fmt.Fprintf(w, "%-8s %12s %12s %12s %12s\n",
			r.Dataset, r.Module1.Round(time.Millisecond), r.Module2.Round(time.Millisecond),
			r.Module3.Round(time.Millisecond), r.Total.Round(time.Millisecond))
	}
}
