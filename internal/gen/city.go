package gen

import (
	"fmt"
	"math"

	"roadpart/internal/roadnet"
)

// CityConfig describes a synthetic city network. The generator lays out a
// jittered lattice of TargetIntersections points (a rectangle with part of
// its last row carved away to hit the count exactly), connects lattice
// neighbors with physical roads, removes non-bridging minor roads until the
// directed segment count hits TargetSegments, and emits one-way segments in
// the alternating pattern of real downtown grids — promoting roads to
// two-way (two opposing segments) when the target demands more segments
// than there are roads.
type CityConfig struct {
	// TargetIntersections is the exact number of intersections to produce.
	TargetIntersections int
	// TargetSegments is the desired number of directed road segments. The
	// generator hits it exactly whenever it lies between the spanning-tree
	// minimum and twice the road count; otherwise it gets as close as the
	// topology allows.
	TargetSegments int
	// Spacing is the lattice pitch in metres. 0 selects 100 m.
	Spacing float64
	// Jitter perturbs intersection positions by ±Jitter·Spacing in each
	// axis. Negative values are treated as 0; the default 0 keeps a clean
	// grid, 0.2 looks like an organically grown city.
	Jitter float64
	// Seed drives all randomness.
	Seed uint64
}

// City generates a synthetic road network per cfg. Densities are zero;
// populate them with the traffic package.
func City(cfg CityConfig) (*roadnet.Network, error) {
	ni := cfg.TargetIntersections
	if ni < 2 {
		return nil, fmt.Errorf("gen: need at least 2 intersections, got %d", ni)
	}
	spacing := cfg.Spacing
	if spacing <= 0 {
		spacing = 100
	}
	jitter := cfg.Jitter
	if jitter < 0 {
		jitter = 0
	}
	rng := NewRNG(cfg.Seed)

	// Lattice shape: near-square, carving the tail of the last row.
	cols := int(math.Ceil(math.Sqrt(float64(ni))))
	rows := (ni + cols - 1) / cols
	// Node (r, c) exists iff r*cols+c < ni.
	exists := func(r, c int) bool {
		return r >= 0 && c >= 0 && r < rows && c < cols && r*cols+c < ni
	}
	id := func(r, c int) int { return r*cols + c }

	net := &roadnet.Network{}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if !exists(r, c) {
				continue
			}
			net.Intersections = append(net.Intersections, roadnet.Intersection{
				ID: id(r, c),
				X:  float64(c)*spacing + jitter*spacing*(2*rng.Float64()-1),
				Y:  float64(r)*spacing + jitter*spacing*(2*rng.Float64()-1),
			})
		}
	}

	// Physical roads between lattice neighbors.
	type road struct {
		a, b       int
		horizontal bool
		r, c       int // lattice position of endpoint a
	}
	var roads []road
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if !exists(r, c) {
				continue
			}
			if exists(r, c+1) {
				roads = append(roads, road{a: id(r, c), b: id(r, c+1), horizontal: true, r: r, c: c})
			}
			if exists(r+1, c) {
				roads = append(roads, road{a: id(r, c), b: id(r+1, c), r: r, c: c})
			}
		}
	}

	// Spanning tree over the roads (union–find) to know which roads are
	// removable without disconnecting the city.
	parent := make([]int, ni)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	tree := make([]bool, len(roads))
	treeCount := 0
	for i, rd := range roads {
		ra, rb := find(rd.a), find(rd.b)
		if ra != rb {
			parent[ra] = rb
			tree[i] = true
			treeCount++
		}
	}
	if treeCount != ni-1 {
		return nil, fmt.Errorf("gen: internal error: lattice not connected (%d tree edges for %d nodes)", treeCount, ni)
	}

	// Decide how many roads to keep and how many become two-way.
	target := cfg.TargetSegments
	if target <= 0 {
		target = len(roads)
	}
	keep := len(roads)
	twoWay := 0
	switch {
	case target < len(roads):
		keep = target
		if keep < treeCount {
			keep = treeCount // connectivity floor
		}
	case target > len(roads):
		twoWay = target - len(roads)
		if twoWay > len(roads) {
			twoWay = len(roads) // everything two-way is the ceiling
		}
	}

	// Remove random non-tree roads until only `keep` remain.
	removed := make([]bool, len(roads))
	var removable []int
	for i := range roads {
		if !tree[i] {
			removable = append(removable, i)
		}
	}
	perm := rng.Perm(len(removable))
	for i := 0; i < len(roads)-keep && i < len(removable); i++ {
		removed[removable[perm[i]]] = true
	}

	// Promote random kept roads to two-way.
	var kept []int
	for i := range roads {
		if !removed[i] {
			kept = append(kept, i)
		}
	}
	isTwoWay := make([]bool, len(roads))
	perm = rng.Perm(len(kept))
	for i := 0; i < twoWay && i < len(kept); i++ {
		isTwoWay[kept[perm[i]]] = true
	}

	// Emit directed segments. One-way roads alternate direction by lattice
	// row/column parity like real downtown grids.
	pos := make(map[int][2]float64, ni)
	for _, p := range net.Intersections {
		pos[p.ID] = [2]float64{p.X, p.Y}
	}
	dist := func(a, b int) float64 {
		pa, pb := pos[a], pos[b]
		dx, dy := pa[0]-pb[0], pa[1]-pb[1]
		d := math.Hypot(dx, dy)
		if d < 1 {
			d = 1
		}
		return d
	}
	addSeg := func(from, to int) {
		net.Segments = append(net.Segments, roadnet.Segment{
			ID: len(net.Segments), From: from, To: to, Length: dist(from, to),
		})
	}
	for i, rd := range roads {
		if removed[i] {
			continue
		}
		from, to := rd.a, rd.b
		if rd.horizontal {
			if rd.r%2 == 1 {
				from, to = to, from
			}
		} else if rd.c%2 == 1 {
			from, to = to, from
		}
		addSeg(from, to)
		if isTwoWay[i] {
			addSeg(to, from)
		}
	}

	// Intersection IDs must equal their slice index; the carve keeps
	// row-major order so only a remap of IDs is needed when the lattice is
	// rectangular-with-carve (ids are already dense row-major: position
	// r*cols+c < ni, so they are exactly 0..ni-1 in order).
	for i := range net.Intersections {
		if net.Intersections[i].ID != i {
			return nil, fmt.Errorf("gen: internal error: non-dense intersection ids")
		}
	}
	if err := net.Validate(); err != nil {
		return nil, fmt.Errorf("gen: generated network invalid: %w", err)
	}
	return net, nil
}
