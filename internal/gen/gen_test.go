package gen

import (
	"math"
	"testing"

	"roadpart/internal/roadnet"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed should give same stream")
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(3)
	const n = 20000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(1)
	p := r.Perm(30)
	seen := make([]bool, 30)
	for _, v := range p {
		if seen[v] {
			t.Fatal("Perm is not a permutation")
		}
		seen[v] = true
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	NewRNG(0).Intn(0)
}

// dualConnected reports whether the network's dual road graph is connected.
func dualConnected(t *testing.T, net *roadnet.Network) bool {
	t.Helper()
	g, err := roadnet.DualGraph(net)
	if err != nil {
		t.Fatal(err)
	}
	_, count := g.Components()
	return count == 1
}

func TestCityExactCounts(t *testing.T) {
	net, err := City(CityConfig{TargetIntersections: 200, TargetSegments: 350, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Intersections) != 200 {
		t.Fatalf("intersections = %d, want 200", len(net.Intersections))
	}
	if len(net.Segments) != 350 {
		t.Fatalf("segments = %d, want 350", len(net.Segments))
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCityPromotesTwoWayWhenTargetHigh(t *testing.T) {
	// Target above the road count forces two-way promotion.
	net, err := City(CityConfig{TargetIntersections: 100, TargetSegments: 300, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Segments) != 300 {
		t.Fatalf("segments = %d, want 300", len(net.Segments))
	}
	// Count opposing pairs.
	type key struct{ a, b int }
	fwd := map[key]bool{}
	pairs := 0
	for _, s := range net.Segments {
		if fwd[key{s.To, s.From}] {
			pairs++
		}
		fwd[key{s.From, s.To}] = true
	}
	if pairs == 0 {
		t.Fatal("expected two-way pairs when target exceeds road count")
	}
}

func TestCityStaysConnected(t *testing.T) {
	// Aggressive removal must not disconnect the dual graph.
	net, err := City(CityConfig{TargetIntersections: 150, TargetSegments: 149, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !dualConnected(t, net) {
		t.Fatal("spanning-tree city should have a connected dual")
	}
}

func TestCityDeterministic(t *testing.T) {
	a, err := City(CityConfig{TargetIntersections: 120, TargetSegments: 200, Seed: 9, Jitter: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := City(CityConfig{TargetIntersections: 120, TargetSegments: 200, Seed: 9, Jitter: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Segments {
		if a.Segments[i] != b.Segments[i] {
			t.Fatal("same seed should give identical network")
		}
	}
}

func TestCityErrors(t *testing.T) {
	if _, err := City(CityConfig{TargetIntersections: 1}); err == nil {
		t.Fatal("tiny city should error")
	}
}

func TestD1PresetMatchesTable1(t *testing.T) {
	net, err := D1()
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Intersections) != 237 {
		t.Fatalf("D1 intersections = %d, want 237", len(net.Intersections))
	}
	if len(net.Segments) != 420 {
		t.Fatalf("D1 segments = %d, want 420", len(net.Segments))
	}
	if !dualConnected(t, net) {
		t.Fatal("D1 dual should be connected")
	}
}

func TestM1PresetMatchesTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("large network generation in -short mode")
	}
	net, err := M1()
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Intersections) != 10096 || len(net.Segments) != 17206 {
		t.Fatalf("M1 = %d/%d, want 10096/17206", len(net.Intersections), len(net.Segments))
	}
	if !dualConnected(t, net) {
		t.Fatal("M1 dual should be connected")
	}
}
