package gen

import "roadpart/internal/roadnet"

// The presets reproduce the Table 1 dataset statistics exactly
// (intersection and segment counts); see DESIGN.md for the substitution
// rationale. Seeds are fixed so every run of the experiment harness sees
// the same networks.

// D1 is the Downtown-San-Francisco-scale network: 237 intersections and
// 420 directed road segments over ~2.5 sq mi. Downtown SF is dominated by
// one-way streets, which the alternating one-way lattice mirrors.
func D1() (*roadnet.Network, error) {
	return City(CityConfig{
		TargetIntersections: 237,
		TargetSegments:      420,
		Spacing:             120,
		Jitter:              0.15,
		Seed:                0xD1,
	})
}

// M1 is the Melbourne-CBD-scale network: 10,096 intersections and 17,206
// segments over ~6.6 sq mi.
func M1() (*roadnet.Network, error) {
	return City(CityConfig{
		TargetIntersections: 10096,
		TargetSegments:      17206,
		Spacing:             80,
		Jitter:              0.15,
		Seed:                0x41,
	})
}

// M2 is the extended-CBD-scale network: 28,465 intersections and 53,494
// segments over ~31.5 sq mi.
func M2() (*roadnet.Network, error) {
	return City(CityConfig{
		TargetIntersections: 28465,
		TargetSegments:      53494,
		Spacing:             90,
		Jitter:              0.15,
		Seed:                0x42,
	})
}

// M3 is the metropolitan-Melbourne-scale network: 42,321 intersections and
// 79,487 segments over ~42 sq mi.
func M3() (*roadnet.Network, error) {
	return City(CityConfig{
		TargetIntersections: 42321,
		TargetSegments:      79487,
		Spacing:             95,
		Jitter:              0.15,
		Seed:                0x43,
	})
}
