package gen

import (
	"fmt"
	"math"

	"roadpart/internal/roadnet"
)

// RadialConfig describes a ring-and-spoke city: concentric ring roads
// crossed by radial arterials, the classic European/monocentric layout, as
// a counterpoint to the North-American lattice of City.
type RadialConfig struct {
	// Rings is the number of concentric rings. Minimum 1.
	Rings int
	// Spokes is the number of radial arterials. Minimum 3.
	Spokes int
	// RingSpacing is the radial distance between rings in metres.
	// 0 selects 150.
	RingSpacing float64
	// TwoWay emits both directions for every road when true; otherwise
	// rings alternate orientation and spokes alternate in/outbound.
	TwoWay bool
	// Seed drives positional jitter.
	Seed uint64
	// Jitter perturbs intersection positions by ±Jitter·RingSpacing.
	Jitter float64
}

// Radial generates a ring-and-spoke road network. The center is a single
// intersection joined to the first ring by every spoke; intersection
// (r, s) sits on ring r at spoke s.
func Radial(cfg RadialConfig) (*roadnet.Network, error) {
	if cfg.Rings < 1 {
		return nil, fmt.Errorf("gen: Radial needs at least 1 ring, got %d", cfg.Rings)
	}
	if cfg.Spokes < 3 {
		return nil, fmt.Errorf("gen: Radial needs at least 3 spokes, got %d", cfg.Spokes)
	}
	spacing := cfg.RingSpacing
	if spacing <= 0 {
		spacing = 150
	}
	jitter := cfg.Jitter
	if jitter < 0 {
		jitter = 0
	}
	rng := NewRNG(cfg.Seed)

	net := &roadnet.Network{}
	// Center is intersection 0; ring r spoke s is 1 + (r-1)*Spokes + s.
	net.Intersections = append(net.Intersections, roadnet.Intersection{ID: 0})
	id := func(r, s int) int { return 1 + (r-1)*cfg.Spokes + s }
	for r := 1; r <= cfg.Rings; r++ {
		for s := 0; s < cfg.Spokes; s++ {
			angle := 2 * math.Pi * float64(s) / float64(cfg.Spokes)
			radius := float64(r) * spacing
			net.Intersections = append(net.Intersections, roadnet.Intersection{
				ID: id(r, s),
				X:  radius*math.Cos(angle) + jitter*spacing*(2*rng.Float64()-1),
				Y:  radius*math.Sin(angle) + jitter*spacing*(2*rng.Float64()-1),
			})
		}
	}

	dist := func(a, b int) float64 {
		pa, pb := net.Intersections[a], net.Intersections[b]
		d := math.Hypot(pa.X-pb.X, pa.Y-pb.Y)
		if d < 1 {
			d = 1
		}
		return d
	}
	addRoad := func(a, b int, forward bool) {
		from, to := a, b
		if !forward {
			from, to = b, a
		}
		net.Segments = append(net.Segments, roadnet.Segment{
			ID: len(net.Segments), From: from, To: to, Length: dist(a, b),
		})
		if cfg.TwoWay {
			net.Segments = append(net.Segments, roadnet.Segment{
				ID: len(net.Segments), From: to, To: from, Length: dist(a, b),
			})
		}
	}

	// Spokes: center to ring 1, then outward ring to ring. One-way spokes
	// alternate inbound/outbound.
	for s := 0; s < cfg.Spokes; s++ {
		outbound := s%2 == 0
		addRoad(0, id(1, s), outbound)
		for r := 1; r < cfg.Rings; r++ {
			addRoad(id(r, s), id(r+1, s), outbound)
		}
	}
	// Rings: consecutive spokes on the same ring. One-way rings alternate
	// clockwise/counter-clockwise.
	for r := 1; r <= cfg.Rings; r++ {
		clockwise := r%2 == 0
		for s := 0; s < cfg.Spokes; s++ {
			addRoad(id(r, s), id(r, (s+1)%cfg.Spokes), clockwise)
		}
	}

	if err := net.Validate(); err != nil {
		return nil, fmt.Errorf("gen: radial network invalid: %w", err)
	}
	return net, nil
}
