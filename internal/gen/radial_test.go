package gen

import (
	"testing"

	"roadpart/internal/roadnet"
)

func TestRadialCounts(t *testing.T) {
	net, err := Radial(RadialConfig{Rings: 3, Spokes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(net.Intersections), 1+3*8; got != want {
		t.Fatalf("intersections = %d, want %d", got, want)
	}
	// One-way: spokes contribute Rings*Spokes roads, rings Rings*Spokes.
	if got, want := len(net.Segments), 2*3*8; got != want {
		t.Fatalf("segments = %d, want %d", got, want)
	}
}

func TestRadialTwoWayDoubles(t *testing.T) {
	one, err := Radial(RadialConfig{Rings: 2, Spokes: 6})
	if err != nil {
		t.Fatal(err)
	}
	two, err := Radial(RadialConfig{Rings: 2, Spokes: 6, TwoWay: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(two.Segments) != 2*len(one.Segments) {
		t.Fatalf("two-way should double segments: %d vs %d", len(two.Segments), len(one.Segments))
	}
}

func TestRadialDualConnected(t *testing.T) {
	net, err := Radial(RadialConfig{Rings: 4, Spokes: 10, Jitter: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	g, err := roadnet.DualGraph(net)
	if err != nil {
		t.Fatal(err)
	}
	if _, count := g.Components(); count != 1 {
		t.Fatalf("radial dual should be connected, got %d components", count)
	}
}

func TestRadialValidation(t *testing.T) {
	if _, err := Radial(RadialConfig{Rings: 0, Spokes: 5}); err == nil {
		t.Fatal("0 rings should error")
	}
	if _, err := Radial(RadialConfig{Rings: 1, Spokes: 2}); err == nil {
		t.Fatal("2 spokes should error")
	}
}

func TestRadialDeterministic(t *testing.T) {
	a, err := Radial(RadialConfig{Rings: 2, Spokes: 5, Jitter: 0.2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Radial(RadialConfig{Rings: 2, Spokes: 5, Jitter: 0.2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Intersections {
		if a.Intersections[i] != b.Intersections[i] {
			t.Fatal("same seed should give identical layout")
		}
	}
}
