// Package gen produces the synthetic road networks that stand in for the
// paper's proprietary datasets (Section 6.1, Table 1).
//
// The paper evaluates on Downtown San Francisco (D1, 420 segments, shared
// privately by the authors of [5]) and three Melbourne exports (M1–M3, up
// to 79,487 segments). Neither is redistributable, so this package builds
// perturbed-lattice city networks with carved boundaries, mixed one-way
// and two-way roads and removable minor roads, sized to exactly the
// Table 1 statistics. The dual-graph topology class (grid cliques, linear
// chains) and the scale are what the partitioning framework is sensitive
// to; the precise street geometry is not.
//
// Beyond the Table-1 replicas (City), ScaleTier generates S/M/L/XL
// cities up to ~10⁶ directed segments following the degree and
// segment-length scaling laws of Lämmer et al. — mean intersection
// degree ≈ 3.1 and heavy-tailed log-normal block lengths — for the
// multilevel scale benchmarks (docs/SCALING.md, docs/EXPERIMENTS.md).
package gen

import "math"

// RNG is a small deterministic pseudo-random generator (SplitMix64 core)
// used everywhere randomness is needed, so every network, trip table and
// density field is reproducible from its seed.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed ^ 0x6a09e667f3bcc909}
}

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 { return float64(r.Uint64()>>11) / (1 << 53) }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("gen: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *RNG) NormFloat64() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
