package gen

import (
	"fmt"
	"math"
	"strings"

	"roadpart/internal/roadnet"
)

// Tier names a synthetic-city scale class (docs/SCALING.md). ScaleTier
// cities follow the empirical scaling laws of Lämmer et al. (PAPERS.md)
// rather than the clean Table-1 grids: mean intersection degree ≈ 3.1
// and heavy-tailed (log-normal) segment lengths, so the scale benchmarks
// exercise realistic topology, not an artifact of uniform lattices.
type Tier int

const (
	// TierS is a district: ~1.25e3 intersections, ~2.5e3 directed segments.
	TierS Tier = iota
	// TierM is a town: ~1.25e4 intersections, ~2.5e4 segments.
	TierM
	// TierL is a metropolis: ~6.5e4 intersections, ~1.3e5 segments —
	// above core.DefaultMultilevelThreshold, so partitioning it engages
	// the multilevel path automatically.
	TierL
	// TierXL is a megacity: ~5.25e5 intersections, ~1.06e6 segments —
	// the million-node tier of docs/SCALING.md.
	TierXL
)

// tierIntersections maps each tier to its intersection count. With the
// fixed degree law (2·1.55 ≈ 3.1 road endpoints per intersection) and
// ~30% two-way promotion, the directed segment count comes out at
// ≈ 2.015× the intersection count.
func (t Tier) intersections() int {
	switch t {
	case TierS:
		return 1250
	case TierM:
		return 12500
	case TierL:
		return 65000
	case TierXL:
		return 525000
	default:
		return 0
	}
}

// String returns the tier spelling used by flags and benchmark names:
// "S", "M", "L", "XL".
func (t Tier) String() string {
	switch t {
	case TierS:
		return "S"
	case TierM:
		return "M"
	case TierL:
		return "L"
	case TierXL:
		return "XL"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// ParseTier parses a tier spelling ("S", "M", "L", "XL", any case).
func ParseTier(s string) (Tier, error) {
	switch strings.ToUpper(s) {
	case "S":
		return TierS, nil
	case "M":
		return TierM, nil
	case "L":
		return TierL, nil
	case "XL":
		return TierXL, nil
	default:
		return 0, fmt.Errorf("gen: unknown scale tier %q (want S, M, L or XL)", s)
	}
}

// ScaleTier generates the synthetic city for one scale tier. The layout
// is a lattice with log-normal row and column pitches — segment lengths
// inherit the heavy tail Lämmer et al. measure in real cities — thinned
// to a mean intersection degree of ≈ 3.1 by removing random non-bridging
// roads, with ≈ 30% of the kept roads promoted to two-way and the rest
// emitted one-way in alternating downtown fashion. Densities are zero;
// populate them with traffic.SyntheticField or traffic.Simulate. The
// network is a pure function of (t, seed).
func ScaleTier(t Tier, seed uint64) (*roadnet.Network, error) {
	ni := t.intersections()
	if ni == 0 {
		return nil, fmt.Errorf("gen: unknown scale tier %d", int(t))
	}
	rng := NewRNG(seed)

	// Lattice shape, as in City: near-square with the tail of the last
	// row carved away so the intersection count is hit exactly.
	cols := int(math.Ceil(math.Sqrt(float64(ni))))
	rows := (ni + cols - 1) / cols
	exists := func(r, c int) bool {
		return r >= 0 && c >= 0 && r < rows && c < cols && r*cols+c < ni
	}
	id := func(r, c int) int { return r*cols + c }

	// Heavy-tailed geometry: each row and column carries its own
	// log-normal pitch (median 80 m, σ = 0.9), so block lengths span
	// roughly an order of magnitude like the empirical length
	// distributions, while the lattice stays planar.
	const pitchMedian, pitchSigma = 80.0, 0.9
	colX := make([]float64, cols)
	rowY := make([]float64, rows)
	for c := 1; c < cols; c++ {
		colX[c] = colX[c-1] + pitchMedian*math.Exp(pitchSigma*rng.NormFloat64())
	}
	for r := 1; r < rows; r++ {
		rowY[r] = rowY[r-1] + pitchMedian*math.Exp(pitchSigma*rng.NormFloat64())
	}

	net := &roadnet.Network{Intersections: make([]roadnet.Intersection, 0, ni)}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if !exists(r, c) {
				continue
			}
			net.Intersections = append(net.Intersections, roadnet.Intersection{
				ID: id(r, c),
				X:  colX[c] + 0.1*pitchMedian*(2*rng.Float64()-1),
				Y:  rowY[r] + 0.1*pitchMedian*(2*rng.Float64()-1),
			})
		}
	}

	type road struct {
		a, b       int
		horizontal bool
		r, c       int
	}
	roads := make([]road, 0, 2*ni)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if !exists(r, c) {
				continue
			}
			if exists(r, c+1) {
				roads = append(roads, road{a: id(r, c), b: id(r, c+1), horizontal: true, r: r, c: c})
			}
			if exists(r+1, c) {
				roads = append(roads, road{a: id(r, c), b: id(r+1, c), r: r, c: c})
			}
		}
	}

	// Spanning tree (union–find) marks the roads that must survive the
	// degree thinning.
	parent := make([]int, ni)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	tree := make([]bool, len(roads))
	treeCount := 0
	for i, rd := range roads {
		ra, rb := find(rd.a), find(rd.b)
		if ra != rb {
			parent[ra] = rb
			tree[i] = true
			treeCount++
		}
	}
	if treeCount != ni-1 {
		return nil, fmt.Errorf("gen: internal error: lattice not connected (%d tree edges for %d nodes)", treeCount, ni)
	}

	// Degree law: keep 1.55·ni roads so the mean intersection degree is
	// 2·keep/ni ≈ 3.1; promote 30% of them to two-way, putting the
	// directed segment count at ≈ 2.015·ni.
	keep := int(1.55 * float64(ni))
	if keep < treeCount {
		keep = treeCount
	}
	if keep > len(roads) {
		keep = len(roads)
	}
	twoWay := int(0.30 * float64(keep))

	removed := make([]bool, len(roads))
	var removable []int
	for i := range roads {
		if !tree[i] {
			removable = append(removable, i)
		}
	}
	perm := rng.Perm(len(removable))
	for i := 0; i < len(roads)-keep && i < len(removable); i++ {
		removed[removable[perm[i]]] = true
	}

	var kept []int
	for i := range roads {
		if !removed[i] {
			kept = append(kept, i)
		}
	}
	isTwoWay := make([]bool, len(roads))
	perm = rng.Perm(len(kept))
	for i := 0; i < twoWay && i < len(kept); i++ {
		isTwoWay[kept[perm[i]]] = true
	}

	// Dense intersection ids let position lookup be a slice, which
	// matters at the XL tier's half-million intersections.
	px := make([]float64, ni)
	py := make([]float64, ni)
	for _, p := range net.Intersections {
		px[p.ID], py[p.ID] = p.X, p.Y
	}
	net.Segments = make([]roadnet.Segment, 0, keep+twoWay)
	addSeg := func(from, to int) {
		d := math.Hypot(px[from]-px[to], py[from]-py[to])
		if d < 1 {
			d = 1
		}
		net.Segments = append(net.Segments, roadnet.Segment{
			ID: len(net.Segments), From: from, To: to, Length: d,
		})
	}
	for i, rd := range roads {
		if removed[i] {
			continue
		}
		from, to := rd.a, rd.b
		if rd.horizontal {
			if rd.r%2 == 1 {
				from, to = to, from
			}
		} else if rd.c%2 == 1 {
			from, to = to, from
		}
		addSeg(from, to)
		if isTwoWay[i] {
			addSeg(to, from)
		}
	}

	if err := net.Validate(); err != nil {
		return nil, fmt.Errorf("gen: generated network invalid: %w", err)
	}
	return net, nil
}
