package gen

import (
	"sort"
	"testing"
)

func TestScaleTierS(t *testing.T) {
	net, err := ScaleTier(TierS, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := net.Stats()
	// Segment count tracks ~2.015 segments per intersection (keep=1.55·ni
	// roads, 30% two-way); the carve and spanning-tree clamp wiggle it a
	// little.
	if st.Intersections < 1000 || st.Intersections > 1500 {
		t.Errorf("TierS intersections = %d, want ~1250", st.Intersections)
	}
	if st.Segments < 2000 || st.Segments > 3000 {
		t.Errorf("TierS segments = %d, want ~2518", st.Segments)
	}

	// Mean intersection degree (unique unordered road pairs) should sit
	// in the Lämmer range ~3.1 rather than the full lattice's 4.
	type pair struct{ a, b int }
	pairs := make(map[pair]bool)
	deg := make(map[int]int)
	for _, seg := range net.Segments {
		a, b := seg.From, seg.To
		if a > b {
			a, b = b, a
		}
		if !pairs[pair{a, b}] {
			pairs[pair{a, b}] = true
			deg[a]++
			deg[b]++
		}
	}
	mean := 2 * float64(len(pairs)) / float64(st.Intersections)
	if mean < 2.7 || mean > 3.5 {
		t.Errorf("TierS mean degree = %.2f, want ~3.1", mean)
	}

	// Heavy-tailed segment lengths: the log-normal pitch distribution
	// should spread p99 well above the median.
	lengths := make([]float64, 0, len(net.Segments))
	for _, seg := range net.Segments {
		lengths = append(lengths, seg.Length)
	}
	sort.Float64s(lengths)
	p50 := lengths[len(lengths)/2]
	p99 := lengths[len(lengths)*99/100]
	if p99 < 3*p50 {
		t.Errorf("TierS length tail p99=%.1f p50=%.1f; want p99 >= 3*p50 for a heavy-tailed pitch distribution", p99, p50)
	}

	if err := net.Validate(); err != nil {
		t.Errorf("TierS network invalid: %v", err)
	}
}

func TestScaleTierDeterministic(t *testing.T) {
	a, err := ScaleTier(TierS, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ScaleTier(TierS, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Segments) != len(b.Segments) {
		t.Fatalf("segment counts differ: %d vs %d", len(a.Segments), len(b.Segments))
	}
	for i := range a.Segments {
		sa, sb := a.Segments[i], b.Segments[i]
		if sa.From != sb.From || sa.To != sb.To || sa.Length != sb.Length {
			t.Fatalf("segment %d differs across identical seeds", i)
		}
	}
	c, err := ScaleTier(TierS, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Segments) == len(a.Segments) {
		same := true
		for i := range a.Segments {
			if a.Segments[i].Length != c.Segments[i].Length {
				same = false
				break
			}
		}
		if same {
			t.Error("seeds 7 and 8 produced identical networks")
		}
	}
}

func TestScaleTierMGrows(t *testing.T) {
	if testing.Short() {
		t.Skip("TierM generation in -short mode")
	}
	net, err := ScaleTier(TierM, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := net.Stats()
	if st.Segments < 20000 || st.Segments > 31000 {
		t.Errorf("TierM segments = %d, want ~25187", st.Segments)
	}
}

func TestParseTier(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Tier
	}{
		{"S", TierS}, {"s", TierS}, {"M", TierM}, {"l", TierL}, {"XL", TierXL}, {"xl", TierXL},
	} {
		got, err := ParseTier(tc.in)
		if err != nil {
			t.Errorf("ParseTier(%q): %v", tc.in, err)
		} else if got != tc.want {
			t.Errorf("ParseTier(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	for _, bad := range []string{"", "XXL", "tiny"} {
		if _, err := ParseTier(bad); err == nil {
			t.Errorf("ParseTier(%q) accepted", bad)
		}
	}
}

func TestTierString(t *testing.T) {
	for _, tc := range []struct {
		tier Tier
		want string
	}{
		{TierS, "S"}, {TierM, "M"}, {TierL, "L"}, {TierXL, "XL"},
	} {
		if got := tc.tier.String(); got != tc.want {
			t.Errorf("%d.String() = %q, want %q", tc.tier, got, tc.want)
		}
		rt, err := ParseTier(tc.want)
		if err != nil || rt != tc.tier {
			t.Errorf("ParseTier(%q) round-trip = %v, %v", tc.want, rt, err)
		}
	}
}
