// Package graph provides the undirected weighted graph substrate shared by
// the road graph, the supergraph and the partitioning machinery: adjacency
// lists, FIFO (BFS) connected components — the component algorithm the
// paper names in Section 4.3.1 — induced subgraphs and conversion to sparse
// adjacency matrices.
package graph

import (
	"fmt"

	"roadpart/internal/linalg"
)

// Edge is one directed half of an undirected edge: a neighbor and the
// weight of the connection.
type Edge struct {
	To int
	W  float64
}

// Graph is an undirected weighted graph on nodes 0..N()-1. Parallel edges
// are permitted (each AddEdge call appends); self-loops are rejected.
type Graph struct {
	adj   [][]Edge
	edges int
}

// New returns an empty graph on n nodes. It panics if n is negative.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: New with negative size %d", n))
	}
	return &Graph{adj: make([][]Edge, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of undirected edges added.
func (g *Graph) M() int { return g.edges }

// Reserve preallocates adjacency capacity from exact per-node endpoint
// counts: deg[u] is the number of edge endpoints node u will receive
// (each AddEdge contributes one endpoint at each of its two nodes). All
// lists are carved from one flat backing array, so a counted build does
// one allocation instead of one growth chain per node. Adding more
// endpoints than reserved is permitted — that node's list falls back to
// append growth. It panics if edges were already added or the count
// vector has the wrong length.
func (g *Graph) Reserve(deg []int) {
	if g.edges != 0 {
		panic("graph: Reserve after AddEdge")
	}
	if len(deg) != len(g.adj) {
		panic(fmt.Sprintf("graph: Reserve with %d counts for %d nodes", len(deg), len(g.adj)))
	}
	total := 0
	for _, d := range deg {
		total += d
	}
	back := make([]Edge, total)
	off := 0
	for u, d := range deg {
		g.adj[u] = back[off : off : off+d]
		off += d
	}
}

// AddEdge connects u and v with weight w. It returns an error for
// out-of-range endpoints or self-loops.
func (g *Graph) AddEdge(u, v int, w float64) error {
	n := len(g.adj)
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("graph: edge (%d,%d) outside %d nodes", u, v, n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop on node %d", u)
	}
	g.adj[u] = append(g.adj[u], Edge{To: v, W: w})
	g.adj[v] = append(g.adj[v], Edge{To: u, W: w})
	g.edges++
	return nil
}

// Neighbors returns the adjacency list of node u. The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) Neighbors(u int) []Edge { return g.adj[u] }

// Degree returns the number of incident edge endpoints at u
// (parallel edges count separately).
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// WeightedDegree returns the sum of weights of edges incident to u.
func (g *Graph) WeightedDegree(u int) float64 {
	var s float64
	for _, e := range g.adj[u] {
		s += e.W
	}
	return s
}

// TotalWeight returns the sum of all edge weights (each undirected edge
// counted once).
func (g *Graph) TotalWeight() float64 {
	var s float64
	for u := range g.adj {
		for _, e := range g.adj[u] {
			s += e.W
		}
	}
	return s / 2
}

// HasEdge reports whether at least one edge connects u and v.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		return false
	}
	// Scan the shorter list.
	if len(g.adj[u]) > len(g.adj[v]) {
		u, v = v, u
	}
	for _, e := range g.adj[u] {
		if e.To == v {
			return true
		}
	}
	return false
}

// AdjacencyCSR builds the (symmetric) weighted adjacency matrix, summing
// parallel edges.
func (g *Graph) AdjacencyCSR() (*linalg.CSR, error) {
	b := linalg.NewBuilder(g.N(), g.N())
	for u := range g.adj {
		for _, e := range g.adj[u] {
			b.Add(u, e.To, e.W) // both directions present in adj
		}
	}
	return b.Build()
}

// Components labels every node with a component id in [0, count) using a
// FIFO breadth-first search, and returns the labels and the component
// count. Ids are assigned in order of the lowest-numbered node of each
// component, so the labeling is deterministic.
func (g *Graph) Components() ([]int, int) {
	return g.ComponentsFiltered(nil)
}

// ComponentsFiltered is Components restricted to the edges for which
// keep(u, v) is true (keep == nil keeps everything). It is the primitive
// behind supernode creation, where nodes are connected only if they are
// adjacent in the road graph and fall in the same density cluster.
func (g *Graph) ComponentsFiltered(keep func(u, v int) bool) ([]int, int) {
	comp := make([]int, g.N())
	count := g.ComponentsFilteredInto(keep, comp)
	return comp, count
}

// ComponentsFilteredInto is ComponentsFiltered writing the labels into the
// caller's comp slice (length N(); prior contents are ignored) and
// returning the component count. The BFS queue comes from the shared
// scratch pool, so sweeps that label components repeatedly allocate
// nothing. It panics if len(comp) != N().
func (g *Graph) ComponentsFilteredInto(keep func(u, v int) bool, comp []int) int {
	n := g.N()
	if len(comp) != n {
		panic(fmt.Sprintf("graph: component label length %d != %d nodes", len(comp), n))
	}
	for i := range comp {
		comp[i] = -1
	}
	count := 0
	qbuf := linalg.GetInts(n)
	defer linalg.PutInts(qbuf)
	queue := qbuf[:0]
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = count
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, e := range g.adj[u] {
				if comp[e.To] >= 0 {
					continue
				}
				if keep != nil && !keep(u, e.To) {
					continue
				}
				comp[e.To] = count
				queue = append(queue, e.To)
			}
		}
		count++
	}
	return count
}

// IsConnectedSubset reports whether the subgraph induced by the given node
// set is connected (an empty or singleton set counts as connected). It
// verifies condition C.2 of the problem definition for one partition.
func (g *Graph) IsConnectedSubset(nodes []int) bool {
	if len(nodes) <= 1 {
		return true
	}
	in := make(map[int]bool, len(nodes))
	for _, v := range nodes {
		in[v] = true
	}
	seen := map[int]bool{nodes[0]: true}
	queue := []int{nodes[0]}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[u] {
			if in[e.To] && !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	return len(seen) == len(nodes)
}

// Induced returns the subgraph induced by nodes, plus the mapping from new
// index to original node id. Duplicate entries in nodes are an error.
func (g *Graph) Induced(nodes []int) (*Graph, []int, error) {
	idx := make(map[int]int, len(nodes))
	for i, v := range nodes {
		if v < 0 || v >= g.N() {
			return nil, nil, fmt.Errorf("graph: induced node %d outside %d", v, g.N())
		}
		if _, dup := idx[v]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate node %d in induced set", v)
		}
		idx[v] = i
	}
	sub := New(len(nodes))
	for i, v := range nodes {
		for _, e := range g.adj[v] {
			j, ok := idx[e.To]
			if !ok || j <= i { // add each undirected edge once
				continue
			}
			if err := sub.AddEdge(i, j, e.W); err != nil {
				return nil, nil, err
			}
		}
	}
	orig := make([]int, len(nodes))
	copy(orig, nodes)
	return sub, orig, nil
}

// Reweighted returns a copy of g with every edge's weight replaced by
// fn(u, v, w). Useful for turning a topology-only adjacency into a
// congestion-affinity graph.
func (g *Graph) Reweighted(fn func(u, v int, w float64) float64) *Graph {
	out := New(g.N())
	for u := range g.adj {
		for _, e := range g.adj[u] {
			if e.To > u {
				// Errors are impossible: endpoints were validated on entry.
				_ = out.AddEdge(u, e.To, fn(u, e.To, e.W))
			}
		}
	}
	return out
}

// GroupComponents splits every group of the given labeling into its
// connected components within g and returns a refined labeling plus the
// refined group count. It is used both for supernode creation (Alg. 1
// lines 11–17) and for extracting disjoint partitions from spectral
// clusters (Alg. 3 line 11).
func (g *Graph) GroupComponents(group []int) ([]int, int) {
	comp := make([]int, g.N())
	count := g.GroupComponentsInto(group, comp)
	return comp, count
}

// GroupComponentsInto is GroupComponents writing the refined labels into
// the caller's comp slice, which may alias nothing in group. Like
// ComponentsFilteredInto it allocates nothing beyond pooled scratch.
func (g *Graph) GroupComponentsInto(group, comp []int) int {
	if len(group) != g.N() {
		panic(fmt.Sprintf("graph: GroupComponents labeling length %d != %d nodes", len(group), g.N()))
	}
	return g.ComponentsFilteredInto(func(u, v int) bool { return group[u] == group[v] }, comp)
}
