package graph

import (
	"testing"
	"testing/quick"
)

// path returns a path graph 0-1-2-...-n-1 with unit weights.
func path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(i, i+1, 1); err != nil {
			panic(err)
		}
	}
	return g
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 3, 1); err == nil {
		t.Fatal("out-of-range edge should error")
	}
	if err := g.AddEdge(1, 1, 1); err == nil {
		t.Fatal("self-loop should error")
	}
	if err := g.AddEdge(0, 1, 2.5); err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
}

func TestDegreesAndWeights(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(0, 2, 3)
	if g.Degree(0) != 2 || g.Degree(1) != 1 {
		t.Fatalf("degrees wrong: %d %d", g.Degree(0), g.Degree(1))
	}
	if g.WeightedDegree(0) != 5 {
		t.Fatalf("weighted degree = %v, want 5", g.WeightedDegree(0))
	}
	if g.TotalWeight() != 5 {
		t.Fatalf("total weight = %v, want 5", g.TotalWeight())
	}
}

func TestHasEdge(t *testing.T) {
	g := path(4)
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Fatal("existing edge not found")
	}
	if g.HasEdge(0, 3) {
		t.Fatal("phantom edge")
	}
	if g.HasEdge(-1, 0) || g.HasEdge(0, 99) {
		t.Fatal("out-of-range HasEdge should be false")
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(3, 4, 1)
	comp, count := g.Components()
	if count != 3 {
		t.Fatalf("count = %d, want 3 (two chains + isolated 5)", count)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatal("chain 0-1-2 split")
	}
	if comp[3] != comp[4] || comp[3] == comp[0] {
		t.Fatal("chain 3-4 mislabeled")
	}
	if comp[5] == comp[0] || comp[5] == comp[3] {
		t.Fatal("isolated node mislabeled")
	}
	// Deterministic id order: component of node 0 is 0.
	if comp[0] != 0 || comp[3] != 1 || comp[5] != 2 {
		t.Fatalf("ids not assigned in lowest-node order: %v", comp)
	}
}

func TestComponentsFiltered(t *testing.T) {
	g := path(4)
	group := []int{0, 0, 1, 1}
	comp, count := g.GroupComponents(group)
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[0] == comp[2] {
		t.Fatalf("filtered components wrong: %v", comp)
	}
}

func TestGroupComponentsSplitsDisconnectedGroup(t *testing.T) {
	// Nodes 0 and 3 share a group but are not adjacent within it.
	g := path(4)
	group := []int{0, 1, 1, 0}
	_, count := g.GroupComponents(group)
	if count != 3 {
		t.Fatalf("count = %d, want 3 ({0},{1,2},{3})", count)
	}
}

func TestIsConnectedSubset(t *testing.T) {
	g := path(5)
	if !g.IsConnectedSubset([]int{1, 2, 3}) {
		t.Fatal("contiguous path slice should be connected")
	}
	if g.IsConnectedSubset([]int{0, 2}) {
		t.Fatal("0 and 2 are not adjacent")
	}
	if !g.IsConnectedSubset(nil) || !g.IsConnectedSubset([]int{4}) {
		t.Fatal("empty and singleton sets are connected by definition")
	}
}

func TestInduced(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 3)
	g.AddEdge(3, 4, 4)
	sub, orig, err := g.Induced([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 3 || sub.M() != 2 {
		t.Fatalf("induced has %d nodes %d edges, want 3/2", sub.N(), sub.M())
	}
	if orig[0] != 1 || orig[2] != 3 {
		t.Fatalf("mapping wrong: %v", orig)
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) || sub.HasEdge(0, 2) {
		t.Fatal("induced edges wrong")
	}
	if _, _, err := g.Induced([]int{1, 1}); err == nil {
		t.Fatal("duplicate nodes should error")
	}
	if _, _, err := g.Induced([]int{99}); err == nil {
		t.Fatal("out-of-range node should error")
	}
}

func TestAdjacencyCSR(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(0, 1, 3) // parallel edges sum in the matrix
	m, err := g.AdjacencyCSR()
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 5 || m.At(1, 0) != 5 {
		t.Fatalf("adjacency = %v / %v, want 5", m.At(0, 1), m.At(1, 0))
	}
	if !m.IsSymmetric(0) {
		t.Fatal("adjacency must be symmetric")
	}
}

// Property: component count plus edge count is at least node count for
// forests, and component labels are always a valid partition.
func TestComponentsPartitionProperty(t *testing.T) {
	f := func(edges []uint16, nn uint8) bool {
		n := int(nn%50) + 1
		g := New(n)
		for i := 0; i+1 < len(edges); i += 2 {
			u, v := int(edges[i])%n, int(edges[i+1])%n
			if u != v {
				g.AddEdge(u, v, 1)
			}
		}
		comp, count := g.Components()
		if count < 1 || count > n {
			return false
		}
		seen := make([]bool, count)
		for _, c := range comp {
			if c < 0 || c >= count {
				return false
			}
			seen[c] = true
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		// Endpoint of every edge shares its component.
		for u := 0; u < n; u++ {
			for _, e := range g.Neighbors(u) {
				if comp[u] != comp[e.To] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReserveExactAndOverflow(t *testing.T) {
	// A counted build: 3 edges on 4 nodes, endpoint counts known exactly.
	g := New(4)
	g.Reserve([]int{2, 2, 1, 1})
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 3}} {
		if err := g.AddEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	if g.M() != 3 || g.Degree(0) != 2 || g.Degree(3) != 1 {
		t.Fatalf("reserved graph wrong: M=%d deg0=%d deg3=%d", g.M(), g.Degree(0), g.Degree(3))
	}
	// Adding beyond the reserved capacity must fall back to append growth
	// without corrupting other nodes' lists (they share one backing).
	if err := g.AddEdge(0, 3, 2); err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != 3 || g.Degree(1) != 2 || g.Degree(3) != 2 {
		t.Fatalf("overflow corrupted adjacency: deg=%d,%d,%d,%d",
			g.Degree(0), g.Degree(1), g.Degree(2), g.Degree(3))
	}
	if !g.HasEdge(0, 2) || !g.HasEdge(0, 3) {
		t.Fatal("edges lost after overflow growth")
	}

	// Guard rails.
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Reserve after AddEdge", func() { g.Reserve([]int{0, 0, 0, 0}) })
	mustPanic("Reserve wrong length", func() { New(2).Reserve([]int{1}) })
}
