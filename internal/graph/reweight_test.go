package graph

import "testing"

func TestReweighted(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 3)
	doubled := g.Reweighted(func(u, v int, w float64) float64 { return 2 * w })
	if doubled.TotalWeight() != 10 {
		t.Fatalf("total = %v, want 10", doubled.TotalWeight())
	}
	// Topology preserved.
	if doubled.N() != 3 || doubled.M() != 2 || !doubled.HasEdge(0, 1) {
		t.Fatal("reweighting changed topology")
	}
	// Original untouched.
	if g.TotalWeight() != 5 {
		t.Fatal("Reweighted mutated the source graph")
	}
}

func TestReweightedReceivesEndpoints(t *testing.T) {
	g := New(4)
	g.AddEdge(1, 3, 1)
	rw := g.Reweighted(func(u, v int, w float64) float64 { return float64(u + v) })
	for _, e := range rw.Neighbors(1) {
		if e.W != 4 {
			t.Fatalf("weight = %v, want u+v = 4", e.W)
		}
	}
}

func TestReweightedParallelEdges(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 1, 2)
	rw := g.Reweighted(func(u, v int, w float64) float64 { return w * 10 })
	if rw.M() != 2 {
		t.Fatalf("parallel edges lost: M = %d", rw.M())
	}
	if rw.TotalWeight() != 30 {
		t.Fatalf("total = %v, want 30", rw.TotalWeight())
	}
}
