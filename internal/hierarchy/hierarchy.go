// Package hierarchy builds multi-level congestion partitions: the whole
// network is partitioned into a few top-level regions, each region is
// recursively re-partitioned on its own densities, and the result is a
// region tree. Traffic management works at exactly these nested scales —
// city → district → corridor — and the paper's distributed regime
// (Section 6.4) is the two-level special case.
package hierarchy

import (
	"fmt"

	"roadpart/internal/core"
	"roadpart/internal/graph"
	"roadpart/internal/roadnet"
)

// Node is one region in the tree. Leaves carry no children; every node
// knows the road segments it spans.
type Node struct {
	// Members are the road-graph node ids (segment ids) in this region.
	Members []int
	// Depth is 0 for the root, 1 for top-level regions, and so on.
	Depth int
	// MeanDensity is the average density over Members at build time.
	MeanDensity float64
	// ANS is the quality of this node's own split (0 for leaves).
	ANS float64
	// Children are the sub-regions; nil for leaves.
	Children []*Node
}

// Config tunes tree construction.
type Config struct {
	// Scheme is the partitioning scheme at every level. ASG everywhere is
	// the scalable choice.
	Scheme core.Scheme
	// MaxDepth bounds recursion below the root. 0 selects 3; any
	// negative value means "root only" (no splitting at all) — the
	// meaningful zero that a literal 0 cannot express.
	MaxDepth int
	// MinSize stops splitting regions with fewer segments. 0 selects 32;
	// "no size floor" is expressed as 1 (every region has at least one
	// segment), so no sentinel is needed.
	MinSize int
	// KMax bounds the per-level ANS sweep. 0 selects 6; a bound below 2
	// is meaningless, so no sentinel exists.
	KMax int
	// KeepANS: a region whose best split scores worse than this stays a
	// leaf. 0 selects 0.8; any negative value means "never split" (ANS
	// is non-negative, so every candidate split is refused).
	KeepANS float64
	// Seed drives all randomized stages.
	Seed uint64
}

func (c *Config) defaults() {
	if c.MaxDepth == 0 {
		c.MaxDepth = 3
	}
	if c.MinSize == 0 {
		c.MinSize = 32
	}
	if c.KMax == 0 {
		c.KMax = 6
	}
	if c.KeepANS == 0 {
		c.KeepANS = 0.8
	}
}

// Build constructs the region tree for the network's current densities.
func Build(net *roadnet.Network, cfg Config) (*Node, error) {
	cfg.defaults()
	g, err := roadnet.DualGraph(net)
	if err != nil {
		return nil, err
	}
	f := net.Densities()
	all := make([]int, g.N())
	for i := range all {
		all[i] = i
	}
	root := &Node{Members: all, Depth: 0, MeanDensity: mean(f, all)}
	if err := split(g, f, root, cfg); err != nil {
		return nil, err
	}
	return root, nil
}

// split recursively partitions one node's induced subgraph.
func split(g *graph.Graph, f []float64, node *Node, cfg Config) error {
	if node.Depth >= cfg.MaxDepth || len(node.Members) < cfg.MinSize {
		return nil
	}
	sub, orig, err := g.Induced(node.Members)
	if err != nil {
		return err
	}
	subF := make([]float64, len(orig))
	for i, v := range orig {
		subF[i] = f[v]
	}
	p, err := core.NewPipelineFromGraph(sub, subF, core.Config{Scheme: cfg.Scheme, Seed: cfg.Seed})
	if err != nil {
		return err
	}
	kMax := cfg.KMax
	if p.SG != nil && len(p.SG.Nodes) < kMax {
		kMax = len(p.SG.Nodes)
	}
	if sub.N() < kMax {
		kMax = sub.N()
	}
	if kMax < 2 {
		return nil
	}
	bestK, sweep, err := p.BestKByANS(2, kMax)
	if err != nil {
		return err
	}
	var best *core.Result
	for _, pt := range sweep {
		if pt.K == bestK {
			best = pt.Result
		}
	}
	if best == nil || best.Report.ANS > cfg.KeepANS {
		return nil // no worthwhile split at this level
	}
	node.ANS = best.Report.ANS
	children := make([]*Node, best.K)
	for i := range children {
		children[i] = &Node{Depth: node.Depth + 1}
	}
	for local, part := range best.Assign {
		children[part].Members = append(children[part].Members, orig[local])
	}
	for _, child := range children {
		child.MeanDensity = mean(f, child.Members)
		if err := split(g, f, child, cfg); err != nil {
			return err
		}
	}
	node.Children = children
	return nil
}

// FlattenLevel returns the assignment induced by cutting the tree at the
// given depth: every segment gets the id of its deepest ancestor at depth
// ≤ level (leaves shallower than level keep their leaf region). Ids are
// dense in [0, K). Call it on the root node only — the result is indexed
// by segment id over the whole network.
func (n *Node) FlattenLevel(level int) ([]int, int) {
	// Count segments from the root.
	total := len(n.Members)
	out := make([]int, total)
	next := 0
	var walk func(node *Node)
	walk = func(node *Node) {
		if node.Depth >= level || node.Children == nil {
			for _, v := range node.Members {
				out[v] = next
			}
			next++
			return
		}
		for _, c := range node.Children {
			walk(c)
		}
	}
	walk(n)
	return out, next
}

// Leaves returns the tree's leaf nodes in depth-first order.
func (n *Node) Leaves() []*Node {
	if n.Children == nil {
		return []*Node{n}
	}
	var out []*Node
	for _, c := range n.Children {
		out = append(out, c.Leaves()...)
	}
	return out
}

// Validate checks the tree's structural invariants against the graph:
// children partition their parent's members and every node's member set
// is connected.
func (n *Node) Validate(g *graph.Graph) error {
	if !g.IsConnectedSubset(n.Members) {
		return fmt.Errorf("hierarchy: node at depth %d is not connected", n.Depth)
	}
	if n.Children == nil {
		return nil
	}
	seen := map[int]bool{}
	total := 0
	for _, c := range n.Children {
		if c.Depth != n.Depth+1 {
			return fmt.Errorf("hierarchy: child depth %d under parent depth %d", c.Depth, n.Depth)
		}
		for _, v := range c.Members {
			if seen[v] {
				return fmt.Errorf("hierarchy: segment %d in two children", v)
			}
			seen[v] = true
		}
		total += len(c.Members)
		if err := c.Validate(g); err != nil {
			return err
		}
	}
	if total != len(n.Members) {
		return fmt.Errorf("hierarchy: children cover %d of %d members", total, len(n.Members))
	}
	return nil
}

// Describe writes a short structural summary usable in logs.
func (n *Node) Describe() string {
	leaves := n.Leaves()
	maxDepth := 0
	for _, l := range leaves {
		if l.Depth > maxDepth {
			maxDepth = l.Depth
		}
	}
	return fmt.Sprintf("%d segments, %d leaf regions, depth %d", len(n.Members), len(leaves), maxDepth)
}

func mean(f []float64, members []int) float64 {
	if len(members) == 0 {
		return 0
	}
	var s float64
	for _, v := range members {
		s += f[v]
	}
	return s / float64(len(members))
}
