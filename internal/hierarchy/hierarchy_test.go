package hierarchy

import (
	"testing"

	"roadpart/internal/core"
	"roadpart/internal/gen"
	"roadpart/internal/metrics"
	"roadpart/internal/roadnet"
	"roadpart/internal/traffic"
)

func hierNet(t *testing.T) *roadnet.Network {
	t.Helper()
	net, err := gen.City(gen.CityConfig{TargetIntersections: 250, TargetSegments: 460, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	snaps, err := traffic.Simulate(net, traffic.SimConfig{Vehicles: 1400, Steps: 300, RecordEvery: 300, Hotspots: 5, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := traffic.ApplySnapshot(net, snaps[0]); err != nil {
		t.Fatal(err)
	}
	return net
}

func TestBuildTreeInvariants(t *testing.T) {
	net := hierNet(t)
	root, err := Build(net, Config{Scheme: core.ASG, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(root.Members) != len(net.Segments) {
		t.Fatalf("root spans %d of %d segments", len(root.Members), len(net.Segments))
	}
	g, err := roadnet.DualGraph(net)
	if err != nil {
		t.Fatal(err)
	}
	if err := root.Validate(g); err != nil {
		t.Fatal(err)
	}
	if root.Children == nil {
		t.Fatal("root did not split (hotspot data should support one split)")
	}
	if len(root.Leaves()) < 2 {
		t.Fatal("tree has fewer than 2 leaves")
	}
}

func TestFlattenLevels(t *testing.T) {
	net := hierNet(t)
	root, err := Build(net, Config{Scheme: core.ASG, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g, err := roadnet.DualGraph(net)
	if err != nil {
		t.Fatal(err)
	}
	prevK := 0
	for level := 0; level <= 3; level++ {
		assign, k := root.FlattenLevel(level)
		if level == 0 && k != 1 {
			t.Fatalf("level 0 should be a single region, got %d", k)
		}
		if k < prevK {
			t.Fatalf("region count decreased with depth: %d then %d", prevK, k)
		}
		prevK = k
		if err := metrics.ValidatePartition(g, assign); err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
	}
}

func TestMinSizeStopsSplitting(t *testing.T) {
	net := hierNet(t)
	root, err := Build(net, Config{Scheme: core.ASG, Seed: 1, MinSize: len(net.Segments) + 1})
	if err != nil {
		t.Fatal(err)
	}
	if root.Children != nil {
		t.Fatal("MinSize above network size should forbid any split")
	}
}

func TestDescribe(t *testing.T) {
	net := hierNet(t)
	root, err := Build(net, Config{Scheme: core.ASG, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s := root.Describe(); s == "" {
		t.Fatal("empty description")
	}
}
