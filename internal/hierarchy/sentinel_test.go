package hierarchy

import (
	"testing"

	"roadpart/internal/core"
)

// MaxDepth and KeepANS both have meaningful zeros that the zero value
// cannot express (0 selects the default); negatives are the sentinels.

func TestNegativeMaxDepthKeepsRootOnly(t *testing.T) {
	net := hierNet(t)
	root, err := Build(net, Config{Scheme: core.ASG, Seed: 1, MaxDepth: -1})
	if err != nil {
		t.Fatal(err)
	}
	if root.Children != nil {
		t.Fatal("MaxDepth < 0 must mean root only, but the root split")
	}
	if len(root.Members) != len(net.Segments) {
		t.Fatalf("root spans %d of %d segments", len(root.Members), len(net.Segments))
	}
}

func TestNegativeKeepANSNeverSplits(t *testing.T) {
	net := hierNet(t)
	root, err := Build(net, Config{Scheme: core.ASG, Seed: 1, KeepANS: -1})
	if err != nil {
		t.Fatal(err)
	}
	// ANS is non-negative, so every candidate split scores worse than a
	// negative threshold and is refused.
	if root.Children != nil {
		t.Fatal("KeepANS < 0 must refuse every split, but the root split")
	}
}
