// Package jiger reimplements the Ji & Geroliminis method [5], the existing
// technique the paper compares against (Section 7): normalized-cut
// over-partitioning, merging of small partitions, and boundary adjustment
// of segments whose density better matches a neighboring partition.
package jiger

import (
	"fmt"
	"math"

	"roadpart/internal/cut"
	"roadpart/internal/graph"
)

// Options tunes the baseline. Zero values select defaults.
type Options struct {
	// OverPartitionFactor multiplies k for the initial excessive
	// normalized-cut partitioning. 0 selects 3.
	OverPartitionFactor int
	// MaxAdjustPasses bounds the boundary-adjustment sweeps. 0 selects 10.
	MaxAdjustPasses int
	// Seed drives the spectral stage.
	Seed uint64
}

// Result of the baseline.
type Result struct {
	// Assign is the partition per node, dense in [0, K).
	Assign []int
	K      int
	// Moves counts boundary-adjustment relocations performed.
	Moves int
}

// Partition runs the three-step Ji–Geroliminis method on graph g with node
// densities f, producing k connected partitions.
func Partition(g *graph.Graph, f []float64, k int, opts Options) (*Result, error) {
	n := g.N()
	if len(f) != n {
		return nil, fmt.Errorf("jiger: %d features for %d nodes", len(f), n)
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("jiger: k=%d out of range [1,%d]", k, n)
	}
	factor := opts.OverPartitionFactor
	if factor <= 0 {
		factor = 3
	}
	passes := opts.MaxAdjustPasses
	if passes <= 0 {
		passes = 10
	}

	// Step 1: excessive partitioning with normalized cut.
	k0 := k * factor
	if k0 > n {
		k0 = n
	}
	initial, err := cut.Partition(g, k0, cut.MethodNCut, cut.Options{Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	assign := initial.Assign

	// Step 2: merge small partitions into the adjacent partition with the
	// closest mean density until k remain.
	assign, count, err := cut.RepairConnectivity(g, f, assign, k)
	if err != nil {
		return nil, err
	}

	// Step 3: boundary adjustment — move boundary segments to the
	// neighboring partition whose mean density matches them better.
	moves := 0
	for pass := 0; pass < passes; pass++ {
		sum := make([]float64, count)
		size := make([]int, count)
		for v, l := range assign {
			sum[l] += f[v]
			size[l]++
		}
		changed := 0
		for v := 0; v < n; v++ {
			own := assign[v]
			if size[own] <= 1 {
				continue // never empty a partition
			}
			bestT, bestD := -1, math.Abs(f[v]-sum[own]/float64(size[own]))
			for _, e := range g.Neighbors(v) {
				t := assign[e.To]
				if t == own {
					continue
				}
				if d := math.Abs(f[v] - sum[t]/float64(size[t])); d < bestD {
					bestT, bestD = t, d
				}
			}
			if bestT < 0 {
				continue
			}
			sum[own] -= f[v]
			size[own]--
			sum[bestT] += f[v]
			size[bestT]++
			assign[v] = bestT
			changed++
		}
		moves += changed
		if changed == 0 {
			break
		}
	}

	// Moves can disconnect partitions; repair restores C.2 and the exact
	// partition count.
	assign, count, err = cut.RepairConnectivity(g, f, assign, k)
	if err != nil {
		return nil, err
	}
	return &Result{Assign: assign, K: count, Moves: moves}, nil
}
