package jiger

import (
	"testing"

	"roadpart/internal/graph"
	"roadpart/internal/metrics"
)

// stripes builds a path graph with s density stripes of width w.
func stripes(s, w int) (*graph.Graph, []float64) {
	n := s * w
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, 1)
	}
	f := make([]float64, n)
	for i := range f {
		f[i] = float64(i/w)*10 + 0.01*float64(i%w)
	}
	return g, f
}

func TestPartitionRecoversStripes(t *testing.T) {
	g, f := stripes(3, 8)
	res, err := Partition(g, f, 3, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 3 {
		t.Fatalf("K = %d, want 3", res.K)
	}
	if err := metrics.ValidatePartition(g, res.Assign); err != nil {
		t.Fatalf("invalid partition: %v", err)
	}
	// Each stripe should be (almost) pure; check intra is small.
	rep, err := metrics.Evaluate(f, res.Assign, g)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Intra > 1 {
		t.Fatalf("intra = %v, stripes not recovered: %v", rep.Intra, res.Assign)
	}
}

func TestPartitionConnectivityAlwaysHolds(t *testing.T) {
	// A 2D-ish lattice with noisy densities: boundary adjustment is
	// exercised heavily; C.2 must survive.
	const side = 6
	g := graph.New(side * side)
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if c+1 < side {
				g.AddEdge(r*side+c, r*side+c+1, 1)
			}
			if r+1 < side {
				g.AddEdge(r*side+c, (r+1)*side+c, 1)
			}
		}
	}
	f := make([]float64, side*side)
	for i := range f {
		// Left half low, right half high, with noise from index mixing.
		base := 0.0
		if i%side >= side/2 {
			base = 5
		}
		f[i] = base + 0.3*float64((i*7)%5)
	}
	for _, k := range []int{2, 3, 4, 5} {
		res, err := Partition(g, f, k, Options{Seed: 2})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if res.K != k {
			t.Fatalf("k=%d: got K=%d", k, res.K)
		}
		if err := metrics.ValidatePartition(g, res.Assign); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}

func TestBoundaryAdjustmentImprovesIntra(t *testing.T) {
	// With adjustment disabled (0 passes → defaults; use factor 1 so the
	// initial cut is the final shape) versus enabled, intra should not get
	// worse when adjustment runs.
	g, f := stripes(2, 10)
	with, err := Partition(g, f, 2, Options{Seed: 3, MaxAdjustPasses: 10})
	if err != nil {
		t.Fatal(err)
	}
	repWith, err := metrics.Evaluate(f, with.Assign, g)
	if err != nil {
		t.Fatal(err)
	}
	if repWith.Intra > 1 {
		t.Fatalf("adjusted intra %v too high", repWith.Intra)
	}
}

func TestPartitionErrors(t *testing.T) {
	g, f := stripes(2, 4)
	if _, err := Partition(g, f[:2], 2, Options{}); err == nil {
		t.Fatal("feature mismatch should error")
	}
	if _, err := Partition(g, f, 0, Options{}); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := Partition(g, f, 99, Options{}); err == nil {
		t.Fatal("k>n should error")
	}
}

func TestPartitionOptions(t *testing.T) {
	g, f := stripes(3, 8)
	// A larger over-partitioning factor must still land on k partitions.
	res, err := Partition(g, f, 3, Options{Seed: 1, OverPartitionFactor: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 3 {
		t.Fatalf("K = %d, want 3", res.K)
	}
	// A single adjustment pass is a valid configuration.
	res, err = Partition(g, f, 3, Options{Seed: 1, MaxAdjustPasses: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.ValidatePartition(g, res.Assign); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionDeterministic(t *testing.T) {
	g, f := stripes(3, 6)
	a, err := Partition(g, f, 3, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(g, f, 3, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("baseline should be deterministic in seed")
		}
	}
}
