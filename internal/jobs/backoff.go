package jobs

import (
	"math"
	"time"
)

// Backoff is a capped exponential retry policy with deterministic
// seeded jitter. The schedule for a given (Seed, stream, attempt) is a
// pure function — no global RNG, no wall clock — so a retry schedule
// can be pinned in a test and reproduced exactly across restarts. The
// same policy paces job retries in the Manager and reconnects in the
// roadpart -watch SSE client.
//
// The zero value selects the defaults documented on each field.
type Backoff struct {
	// Base is the delay before the first retry. 0 selects 1s.
	Base time.Duration
	// Max caps the grown delay (applied before and after jitter so the
	// cap is hard). 0 selects 1m.
	Max time.Duration
	// Factor is the per-attempt growth multiplier. 0 selects 2.
	Factor float64
	// Jitter spreads each delay uniformly over [1-Jitter, 1+Jitter)
	// times its nominal value, decorrelating retry herds without
	// sacrificing reproducibility. 0 selects 0.2; negative disables
	// jitter entirely.
	Jitter float64
	// Seed selects the deterministic jitter stream. Two policies with
	// the same Seed produce identical schedules for the same stream ids.
	Seed uint64
}

// normalized fills in the documented defaults.
func (b Backoff) normalized() Backoff {
	if b.Base <= 0 {
		b.Base = time.Second
	}
	if b.Max <= 0 {
		b.Max = time.Minute
	}
	if b.Factor <= 0 {
		b.Factor = 2
	}
	if b.Jitter == 0 {
		b.Jitter = 0.2
	}
	if b.Jitter < 0 {
		b.Jitter = 0
	}
	return b
}

// Delay returns the pause before retry number attempt (1-based: the
// delay between the first failure and the second attempt is
// Delay(stream, 1)). stream distinguishes concurrent consumers of one
// policy — the Manager passes the job's fingerprint, so two jobs
// retrying in lockstep still spread out — while keeping each stream's
// schedule deterministic.
func (b Backoff) Delay(stream uint64, attempt int) time.Duration {
	b = b.normalized()
	if attempt < 1 {
		attempt = 1
	}
	d := float64(b.Base) * math.Pow(b.Factor, float64(attempt-1))
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	if b.Jitter > 0 {
		// splitmix64 over (seed, stream, attempt) → uniform in [0,1).
		u := float64(splitmix64(b.Seed^stream^(uint64(attempt)*0x9e3779b97f4a7c15))>>11) / (1 << 53)
		d *= 1 - b.Jitter + 2*b.Jitter*u
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	if d < 1 {
		d = 1
	}
	return time.Duration(d)
}

// splitmix64 is the standard 64-bit finalizer (Steele et al.), the same
// generator family the k-means seeder uses; one application is enough
// to decorrelate the structured (seed, stream, attempt) inputs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
