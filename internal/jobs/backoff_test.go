package jobs

import (
	"testing"
	"time"
)

// TestBackoffDeterministic pins the core contract: the schedule is a
// pure function of (Seed, stream, attempt). Two separately constructed
// policies with the same seed agree exactly; changing any input changes
// the schedule.
func TestBackoffDeterministic(t *testing.T) {
	a := Backoff{Base: 10 * time.Millisecond, Max: time.Second, Seed: 42}
	b := Backoff{Base: 10 * time.Millisecond, Max: time.Second, Seed: 42}
	for stream := uint64(0); stream < 4; stream++ {
		for attempt := 1; attempt <= 10; attempt++ {
			if got, want := a.Delay(stream, attempt), b.Delay(stream, attempt); got != want {
				t.Fatalf("Delay(%d,%d): %v vs %v from identical policies", stream, attempt, got, want)
			}
		}
	}
	if a.Delay(1, 1) == a.Delay(2, 1) && a.Delay(1, 2) == a.Delay(2, 2) && a.Delay(1, 3) == a.Delay(2, 3) {
		t.Fatal("streams 1 and 2 produced identical schedules; jitter is not stream-keyed")
	}
	c := Backoff{Base: 10 * time.Millisecond, Max: time.Second, Seed: 43}
	if a.Delay(1, 1) == c.Delay(1, 1) && a.Delay(1, 2) == c.Delay(1, 2) && a.Delay(1, 3) == c.Delay(1, 3) {
		t.Fatal("seeds 42 and 43 produced identical schedules; jitter is not seed-keyed")
	}
}

// TestBackoffBounds checks every delay stays inside the jitter envelope
// of the capped nominal value.
func TestBackoffBounds(t *testing.T) {
	b := Backoff{Base: 5 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, Jitter: 0.2, Seed: 7}
	for attempt := 1; attempt <= 20; attempt++ {
		nominal := float64(b.Base)
		for i := 1; i < attempt; i++ {
			nominal *= b.Factor
		}
		if nominal > float64(b.Max) {
			nominal = float64(b.Max)
		}
		d := b.Delay(99, attempt)
		if d > b.Max {
			t.Fatalf("attempt %d: delay %v exceeds hard cap %v", attempt, d, b.Max)
		}
		if float64(d) < nominal*(1-b.Jitter)-1 {
			t.Fatalf("attempt %d: delay %v below jitter floor of nominal %v", attempt, d, time.Duration(nominal))
		}
		if float64(d) > nominal*(1+b.Jitter)+1 {
			t.Fatalf("attempt %d: delay %v above jitter ceiling of nominal %v", attempt, d, time.Duration(nominal))
		}
	}
}

// TestBackoffGrowthUnjittered pins the exact capped-exponential
// schedule with jitter disabled.
func TestBackoffGrowthUnjittered(t *testing.T) {
	b := Backoff{Base: time.Second, Max: 10 * time.Second, Factor: 2, Jitter: -1}
	want := []time.Duration{time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second, 10 * time.Second, 10 * time.Second}
	for i, w := range want {
		if got := b.Delay(0, i+1); got != w {
			t.Fatalf("attempt %d: got %v, want %v", i+1, got, w)
		}
	}
}

// TestBackoffDefaults checks the zero value selects the documented
// policy (1s base, 1m cap, factor 2, 20% jitter) and never returns a
// non-positive delay.
func TestBackoffDefaults(t *testing.T) {
	var b Backoff
	d1 := b.Delay(0, 1)
	if d1 < 800*time.Millisecond || d1 > 1200*time.Millisecond {
		t.Fatalf("default first delay %v outside 1s ± 20%%", d1)
	}
	if d := b.Delay(0, 30); d > time.Minute {
		t.Fatalf("default delay %v exceeds the 1m cap", d)
	}
	if d := b.Delay(0, 0); d <= 0 {
		t.Fatalf("attempt 0 clamps to attempt 1, got %v", d)
	}
}
