package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"roadpart/internal/resultcache"
)

// chaosStore stands in for the content-addressed result cache: bodies
// persist across manager "restarts" (the store outlives each
// generation, like the cache directory outlives the daemon), and it
// counts how many times each fingerprint was computed to completion —
// the never-twice invariant is an assertion on that counter.
type chaosStore struct {
	mu          sync.Mutex
	bodies      map[resultcache.Key][]byte
	completions map[resultcache.Key]int
}

func newChaosStore() *chaosStore {
	return &chaosStore{bodies: make(map[resultcache.Key][]byte), completions: make(map[resultcache.Key]int)}
}

func (s *chaosStore) Run(ctx context.Context, spec Spec) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if body, ok := s.bodies[spec.Key]; ok {
		return body, nil // cache hit: the work is NOT redone
	}
	body := []byte(fmt.Sprintf("result-%016x", spec.Key.Sum))
	s.bodies[spec.Key] = body
	s.completions[spec.Key]++
	return body, nil
}

func (s *chaosStore) completed(key resultcache.Key) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.completions[key]
}

// chaosPlan is the deterministic compute-failure schedule shared by
// both generations: it depends only on (fingerprint, attempt), so a
// replayed attempt fails exactly like the interrupted one did.
func chaosPlan(spec Spec, attempt int) error {
	switch spec.Key.Sum {
	case 0xb: // flaky: first attempt fails, second succeeds
		if attempt == 1 {
			return errors.New("injected flaky solve")
		}
	case 0xc: // hopeless: every attempt fails → dead letter
		return errors.New("injected permanent failure")
	}
	return nil
}

var chaosSpecs = []Spec{
	{Op: "partition", Key: resultcache.Key{Op: "partition", Sum: 0xa}, Payload: []byte(`{"job":"clean"}`)},
	{Op: "partition", Key: resultcache.Key{Op: "partition", Sum: 0xb}, Payload: []byte(`{"job":"flaky"}`)},
	{Op: "sweep", Key: resultcache.Key{Op: "sweep", Sum: 0xc}, Payload: []byte(`{"job":"hopeless"}`)},
}

func chaosConfig(dir string, hooks *Hooks) Config {
	return Config{
		Workers:     2,
		Dir:         dir,
		NoSync:      true,
		Retry:       Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond, Jitter: -1, Seed: 1},
		MaxAttempts: 3,
		Hooks:       hooks,
	}
}

// quiesce waits until every acked job is terminal or the manager
// crashed (after a crash nothing more will happen, by design).
func quiesce(t *testing.T, m *Manager, acked []string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m.Crashed() {
			return
		}
		allDone := true
		for _, id := range acked {
			v, err := m.Get(id)
			if err != nil || !v.State.Terminal() {
				allDone = false
				break
			}
		}
		if allDone {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("workload did not quiesce")
}

// runChaosGeneration opens a manager on dir, submits the workload and
// runs it to quiescence (or injected crash), then kills the process
// abruptly. It returns the ids that were acknowledged.
func runChaosGeneration(t *testing.T, dir string, store *chaosStore, crashAt int) (acked map[resultcache.Key]string) {
	t.Helper()
	hooks := &Hooks{BeforeCompute: chaosPlan}
	if crashAt >= 0 {
		hooks.BeforeAppend = func(n int, rec *Record) error {
			if n >= crashAt {
				return ErrInjectedCrash
			}
			return nil
		}
	}
	m, err := Open(chaosConfig(dir, hooks), store)
	if err != nil {
		t.Fatalf("open (crashAt=%d): %v", crashAt, err)
	}
	acked = make(map[resultcache.Key]string)
	var ids []string
	for _, spec := range chaosSpecs {
		v, _, err := m.Submit(spec)
		if err != nil {
			// Not acknowledged: the caller got an error, so losing this
			// job is correct behavior, not data loss.
			continue
		}
		acked[spec.Key] = v.ID
		ids = append(ids, v.ID)
	}
	quiesce(t, m, ids)
	m.Kill()
	return acked
}

// TestChaosCrashAtEveryJournalBoundary is the tentpole invariant
// check. For a crash injected before EVERY journal record boundary
// (plus a no-crash control), a restarted manager must:
//
//   - know every job that was acknowledged before the crash (nothing
//     acked is ever lost),
//   - drive each one to its deterministic terminal state, and
//   - never compute any fingerprint to completion twice — re-runs that
//     lost only their trailing "done" record converge via the
//     content-addressed store.
func TestChaosCrashAtEveryJournalBoundary(t *testing.T) {
	// Measure the journal length of an undisturbed run to bound the
	// crash-point sweep.
	probeDir := t.TempDir()
	runChaosGeneration(t, probeDir, newChaosStore(), -1)
	recs, _, err := replayJournal(probeDir)
	if err != nil {
		t.Fatal(err)
	}
	total := len(recs)
	if total < 9 { // 3 submits + at least 2 transitions per job
		t.Fatalf("clean run journaled only %d records; workload too small to exercise boundaries", total)
	}

	for crashAt := 0; crashAt <= total; crashAt++ {
		crashAt := crashAt
		t.Run(fmt.Sprintf("crash_before_record_%02d", crashAt), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			store := newChaosStore()

			acked := runChaosGeneration(t, dir, store, crashAt)

			// Generation 2: same journal dir, same store, same failure
			// plan, no crash — the "restarted daemon".
			m, err := Open(chaosConfig(dir, &Hooks{BeforeCompute: chaosPlan}), store)
			if err != nil {
				t.Fatalf("restart: %v", err)
			}
			defer m.Kill()

			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			for key, id := range acked {
				v, err := m.Wait(ctx, id)
				if err != nil {
					t.Fatalf("acked job %s (key %016x) lost across restart: %v", id, key.Sum, err)
				}
				want := StateDone
				if key.Sum == 0xc {
					want = StateFailed
				}
				if v.State != want {
					t.Errorf("job %s: terminal state %s, want %s (attempt %d, err %q)", id, v.State, want, v.Attempt, v.Error)
				}
				if want == StateFailed && v.Attempt != 3 {
					t.Errorf("dead letter %s used %d attempts, want exactly 3", id, v.Attempt)
				}
			}
			for _, spec := range chaosSpecs {
				if n := store.completed(spec.Key); n > 1 {
					t.Errorf("fingerprint %016x computed to completion %d times; never-twice violated", spec.Key.Sum, n)
				}
				if _, ok := acked[spec.Key]; ok && spec.Key.Sum != 0xc {
					if n := store.completed(spec.Key); n != 1 {
						t.Errorf("acked fingerprint %016x completed %d times, want exactly 1", spec.Key.Sum, n)
					}
				}
			}
		})
	}
}

// TestChaosSubmitNeverAcksUnjournaled pins the ack contract from the
// other side: when the journal write fails, Submit must return an
// error (no ack), and the job must not be silently queued anyway.
func TestChaosSubmitNeverAcksUnjournaled(t *testing.T) {
	dir := t.TempDir()
	store := newChaosStore()
	m, err := Open(chaosConfig(dir, &Hooks{BeforeAppend: func(n int, rec *Record) error {
		return ErrInjectedCrash
	}}), store)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Kill()
	if _, _, err := m.Submit(chaosSpecs[0]); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("submit with dead journal: %v", err)
	}
	if !m.Crashed() {
		t.Fatal("manager should report the crash")
	}
	if m.Active() != 0 {
		t.Fatalf("unacked job leaked into the queue: %d active", m.Active())
	}
	if n := store.completed(chaosSpecs[0].Key); n != 0 {
		t.Fatalf("unacked job ran %d times", n)
	}
}

// TestChaosJournalFailureDoesNotWedgeRetries injects a transient
// journal write failure on a mid-life record and checks the job still
// reaches its terminal state: durability degrades, liveness does not.
func TestChaosJournalFailureDoesNotWedgeRetries(t *testing.T) {
	dir := t.TempDir()
	store := newChaosStore()
	var failed atomic.Bool
	m, err := Open(chaosConfig(dir, &Hooks{
		BeforeCompute: chaosPlan,
		BeforeAppend: func(n int, rec *Record) error {
			if rec.Type == "state" && rec.State == StateRetrying && failed.CompareAndSwap(false, true) {
				return errors.New("injected journal write failure")
			}
			return nil
		},
	}), store)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Kill()
	v, _, err := m.Submit(chaosSpecs[1]) // flaky: fails attempt 1
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	got, err := m.Wait(ctx, v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone || got.Attempt != 2 {
		t.Fatalf("final view: %+v", got)
	}
	if !failed.Load() {
		t.Fatal("injection never fired; test is vacuous")
	}
}
