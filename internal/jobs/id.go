package jobs

import (
	"strconv"
	"strings"
)

// FingerprintFromID recovers the content fingerprint a job id embeds.
// Ids are minted by Submit as "j<seq>-<fingerprint as %016x>", so any
// shard can route a poll for an unknown id to the shard that owns the
// fingerprint — the shard the submission itself was forwarded to —
// without a directory service. Returns false for ids that do not carry
// a parsable fingerprint (foreign or malformed ids), in which case the
// caller should fall back to local handling and its 404.
func FingerprintFromID(id string) (uint64, bool) {
	i := strings.LastIndexByte(id, '-')
	if i < 0 || len(id)-i-1 != 16 {
		return 0, false
	}
	sum, err := strconv.ParseUint(id[i+1:], 16, 64)
	if err != nil {
		return 0, false
	}
	return sum, true
}
