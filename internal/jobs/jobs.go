// Package jobs is the durable async job subsystem behind POST /v1/jobs:
// a bounded worker pool draining a queue of partition/sweep jobs, with
// per-attempt retry under capped exponential backoff (deterministic
// seeded jitter), a terminal dead-letter state after the attempt budget,
// and a write-ahead journal (roadpart-jobs/v1) that makes submissions
// and state transitions survive a daemon crash. Partitioning a real
// metro is minutes-long work — HOSER's Beijing run in SNIPPETS.md takes
// ~87 s on 1.24M segments even after its adjacency-list rewrite — so a
// restart or one flaky solve must not silently lose a submitted job.
//
// The contract with callers:
//
//   - Submit journals the job BEFORE acknowledging it. An acknowledged
//     job is therefore durable: on restart the Manager replays the
//     journal, re-enqueues every incomplete job, and keeps terminal
//     jobs queryable.
//   - Results are content-addressed. The Runner a Manager executes is
//     expected to route through internal/resultcache (the server's
//     does), so a job re-run after a crash that lost only its final
//     "done" record fetches the already-stored body instead of
//     computing it a second time — a job is never run twice to
//     completion.
//   - Within one fingerprint (resultcache.Key), active jobs are
//     deduplicated: submitting work that an incomplete job already
//     covers returns that job instead of queueing a twin.
//
// The state machine, exposed verbatim in the HTTP API:
//
//	queued → running → done
//	                 ↘ retrying → running (after backoff)
//	                 ↘ failed             (dead letter, attempts exhausted)
//	queued | retrying | running → cancelled
//
// Fault injection (Hooks) exists so the chaos suite can kill the
// journal between any two records, fail computes, slow solves and fail
// journal writes deterministically; production code never sets hooks.
package jobs

import (
	"context"
	"errors"
	"time"

	"roadpart/internal/resultcache"
)

// State is one node of the job state machine.
type State string

const (
	// StateQueued means the job waits for a worker (first attempt or
	// re-enqueued by replay/drain).
	StateQueued State = "queued"
	// StateRunning means a worker is executing an attempt right now.
	StateRunning State = "running"
	// StateRetrying means the last attempt failed and the next one is
	// scheduled after a backoff delay.
	StateRetrying State = "retrying"
	// StateDone is terminal success; the result landed in the result
	// cache under the job's key.
	StateDone State = "done"
	// StateFailed is the terminal dead-letter state: every attempt
	// failed. The last error is kept on the job.
	StateFailed State = "failed"
	// StateCancelled is terminal: the client withdrew the job before it
	// completed.
	StateCancelled State = "cancelled"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// valid reports whether s is a known state (journal records are
// untrusted input on replay).
func (s State) valid() bool {
	switch s {
	case StateQueued, StateRunning, StateRetrying, StateDone, StateFailed, StateCancelled:
		return true
	}
	return false
}

// Spec is everything needed to execute — and, after a restart, to
// re-execute — one job. It is journaled verbatim with the submission.
type Spec struct {
	// Op is the resultcache keyspace this job computes for ("partition",
	// "sweep").
	Op string
	// Key is the content fingerprint of the work; results land in the
	// result cache under it, and active jobs are deduplicated by it.
	Key resultcache.Key
	// Tag is the resultcache invalidation tag for the (structure,
	// density) generation the job computes from; 0 = untagged.
	Tag uint64
	// Payload is the original request document. The Runner decodes it
	// per Op; replay hands it back unchanged.
	Payload []byte
}

// View is the externally visible snapshot of one job, serialized on
// GET /v1/jobs/{id}.
type View struct {
	ID          string `json:"id"`
	Op          string `json:"op"`
	Key         string `json:"key"`
	State       State  `json:"state"`
	Attempt     int    `json:"attempt"`
	MaxAttempts int    `json:"max_attempts"`
	// Error is the most recent attempt failure (kept on retrying,
	// failed and cancelled jobs).
	Error string `json:"error,omitempty"`
	// RetryInMs is the remaining backoff delay before the next attempt,
	// present only while retrying.
	RetryInMs int64 `json:"retry_in_ms,omitempty"`
	// SubmittedAt is the submission wall-clock time (journaled, so it
	// survives restarts).
	SubmittedAt time.Time `json:"submitted_at"`
	UpdatedAt   time.Time `json:"updated_at"`
}

// Manager errors mapped to HTTP statuses by the serving layer.
var (
	// ErrQueueFull rejects a submission when the active-job bound is
	// reached (HTTP 429).
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrDraining rejects a submission while the manager checkpoints
	// for shutdown (HTTP 503).
	ErrDraining = errors.New("jobs: manager draining")
	// ErrUnknownJob reports a job id with no live or journaled record.
	ErrUnknownJob = errors.New("jobs: unknown job")
)

// ErrInjectedCrash is returned by fault-injection hooks to simulate the
// process dying at an exact point: the journal record it fails is never
// written, every later append fails the same way, and the manager stops
// making progress — exactly what a killed process would leave behind.
// The chaos suite then re-opens the journal directory as a "restarted"
// manager and asserts nothing acknowledged was lost.
var ErrInjectedCrash = errors.New("jobs: injected crash")

// Hooks are deterministic, test-only fault injectors. All fields are
// optional; a nil *Hooks (the production configuration) injects
// nothing. Hooks run synchronously on the worker/journal goroutines, so
// whatever they return happens at an exact, reproducible point.
type Hooks struct {
	// BeforeAppend runs before journal record n (0-based, counted over
	// the manager's lifetime, compaction excluded) is written. A non-nil
	// error fails that write; ErrInjectedCrash additionally kills the
	// journal for good.
	BeforeAppend func(n int, rec *Record) error
	// BeforeCompute runs at the start of attempt (1-based) of a job; a
	// non-nil error fails the attempt without calling the Runner.
	BeforeCompute func(spec Spec, attempt int) error
	// ComputeDelay, when non-nil, stalls the attempt for the returned
	// duration before the Runner is called (slow-solve injection). The
	// delay respects the attempt context, so deadlines and cancellation
	// still fire.
	ComputeDelay func(spec Spec, attempt int) time.Duration
}

// Runner executes one attempt of a job and returns the serialized
// result body. Implementations must be idempotent per Spec.Key —
// content-addressed, like the server's resultcache-backed runner — so a
// replayed job re-running after a crash converges on the same body
// without completing the work twice.
type Runner interface {
	Run(ctx context.Context, spec Spec) ([]byte, error)
}

// RunnerFunc adapts a function to the Runner interface.
type RunnerFunc func(ctx context.Context, spec Spec) ([]byte, error)

// Run implements Runner.
func (f RunnerFunc) Run(ctx context.Context, spec Spec) ([]byte, error) { return f(ctx, spec) }
