package jobs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"roadpart/internal/obs"
)

// Schema versions the journal format, following the roadpart-cache/v1
// convention: every record carries it, and replay skips records
// claiming any other schema (see docs/FORMATS.md § Job journal).
const Schema = "roadpart-jobs/v1"

// journalFile is the single append-only log inside the journal
// directory. Compaction replaces it atomically (temp + rename), so a
// crash mid-compaction leaves the previous journal intact.
const journalFile = "journal.jsonl"

// Record is one journal entry: a submission (type "submit", carrying
// the full Spec so replay can re-execute the job) or a state transition
// (type "state"). One JSON document per line; a torn final line — the
// signature of a crash mid-write — is skipped on replay, never fatal.
type Record struct {
	Schema string `json:"schema"`
	Type   string `json:"type"` // "submit" | "state"
	ID     string `json:"id"`

	// Submission fields (type "submit").
	Seq         int             `json:"seq,omitempty"`
	Op          string          `json:"op,omitempty"`
	Key         string          `json:"key,omitempty"` // %016x of Spec.Key.Sum
	Tag         string          `json:"tag,omitempty"` // %016x, omitted when 0
	Payload     json.RawMessage `json:"payload,omitempty"`
	MaxAttempts int             `json:"max_attempts,omitempty"`
	SubmittedMs int64           `json:"submitted_ms,omitempty"` // unix ms

	// Transition fields (type "state").
	State   State  `json:"state,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Error   string `json:"error,omitempty"`
}

// Journal metrics (see docs/API.md § Metrics).
var (
	journalRecordsHelp = "Job-journal records appended, by record type."
	journalErrors      = obs.Default().Counter("roadpart_jobs_journal_errors_total",
		"Job-journal appends that failed (durability degraded for the affected transition; submissions fail instead of acknowledging).")
	journalSkipped = obs.Default().Counter("roadpart_jobs_journal_skipped_total",
		"Journal records skipped during replay because they were truncated, corrupt, or carried an unknown schema.")
)

func countRecord(typ string) {
	obs.Default().Counter("roadpart_jobs_journal_records_total", journalRecordsHelp, "type", typ).Inc()
}

// journal is the write-ahead log. A nil *journal (Manager without a
// Dir) accepts every append as a no-op: the manager then runs
// memory-only, losing jobs on restart, which the daemon logs at start.
type journal struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	sync  bool
	hooks *Hooks
	n     int  // records appended this session (hook index)
	dead  bool // ErrInjectedCrash happened; all appends fail
}

// openJournal prepares dir and opens the log for appending.
func openJournal(dir string, syncEach bool, hooks *Hooks) (*journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: preparing journal dir: %w", err)
	}
	path := filepath.Join(dir, journalFile)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: opening journal: %w", err)
	}
	return &journal{f: f, path: path, sync: syncEach, hooks: hooks}, nil
}

// append writes one record durably. The record is stamped with the
// schema here so callers cannot forget it. On any error the record is
// not (observably) in the log; ErrInjectedCrash additionally kills the
// journal so every later append fails the same way — the simulated
// process is dead.
func (j *journal) append(rec Record) error {
	if j == nil {
		return nil
	}
	rec.Schema = Schema
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dead {
		return ErrInjectedCrash
	}
	if j.hooks != nil && j.hooks.BeforeAppend != nil {
		if err := j.hooks.BeforeAppend(j.n, &rec); err != nil {
			if err == ErrInjectedCrash {
				j.dead = true
			}
			journalErrors.Inc()
			return err
		}
	}
	doc, err := json.Marshal(rec)
	if err != nil {
		journalErrors.Inc()
		return fmt.Errorf("jobs: encoding journal record: %w", err)
	}
	if _, err := j.f.Write(append(doc, '\n')); err != nil {
		journalErrors.Inc()
		return fmt.Errorf("jobs: appending journal record: %w", err)
	}
	if j.sync {
		if err := j.f.Sync(); err != nil {
			journalErrors.Inc()
			return fmt.Errorf("jobs: syncing journal: %w", err)
		}
	}
	j.n++
	countRecord(rec.Type)
	return nil
}

// close releases the log file.
func (j *journal) close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// replayJournal reads every decodable record from dir's log in append
// order. Truncated or corrupt records — including a torn final line
// from a crash mid-write — are skipped and counted, never fatal: one
// bad record must not take down a restarting daemon. A missing journal
// reads as empty (a cold start).
func replayJournal(dir string) (recs []Record, skipped int, err error) {
	f, err := os.Open(filepath.Join(dir, journalFile))
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("jobs: opening journal for replay: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 256<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if json.Unmarshal(line, &rec) != nil || rec.Schema != Schema || rec.ID == "" {
			skipped++
			journalSkipped.Inc()
			continue
		}
		switch rec.Type {
		case "submit":
			if rec.Op == "" || len(rec.Key) != 16 {
				skipped++
				journalSkipped.Inc()
				continue
			}
		case "state":
			if !rec.State.valid() {
				skipped++
				journalSkipped.Inc()
				continue
			}
		default:
			skipped++
			journalSkipped.Inc()
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		// An unreadable tail (e.g. a line over the buffer cap) loses the
		// records after it but keeps everything already decoded.
		skipped++
		journalSkipped.Inc()
	}
	return recs, skipped, nil
}

// compact atomically replaces the log with recs (temp file + rename,
// the resultcache snapshot discipline): either the old journal or the
// compacted one exists, never a torn hybrid. The manager compacts once
// per startup, folding each job's record history into submit + current
// state so the log stays proportional to the number of retained jobs.
func (j *journal) compact(recs []Record) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dead {
		return ErrInjectedCrash
	}
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, ".journal-*.tmp")
	if err != nil {
		return fmt.Errorf("jobs: compacting journal: %w", err)
	}
	w := bufio.NewWriter(tmp)
	for _, rec := range recs {
		rec.Schema = Schema
		doc, err := json.Marshal(rec)
		if err == nil {
			_, err = w.Write(append(doc, '\n'))
		}
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("jobs: compacting journal: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("jobs: compacting journal: %w", err)
	}
	if j.sync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("jobs: compacting journal: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("jobs: compacting journal: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("jobs: compacting journal: %w", err)
	}
	// Reopen the append handle on the new file; the old descriptor
	// points at the unlinked pre-compaction log.
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("jobs: reopening compacted journal: %w", err)
	}
	j.f.Close()
	j.f = f
	return nil
}
