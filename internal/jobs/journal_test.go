package jobs

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeJournal(t *testing.T, dir, content string) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, journalFile), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func submitLine(id string, seq int) string {
	return fmt.Sprintf(`{"schema":%q,"type":"submit","id":%q,"seq":%d,"op":"partition","key":"00000000000000aa","max_attempts":3,"submitted_ms":1700000000000}`,
		Schema, id, seq)
}

func stateLine(id string, st State, attempt int) string {
	return fmt.Sprintf(`{"schema":%q,"type":"state","id":%q,"state":%q,"attempt":%d}`, Schema, id, st, attempt)
}

// TestJournalRoundTrip appends records through the journal and reads
// them back through replay.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := openJournal(dir, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	in := []Record{
		{Type: "submit", ID: "j1", Seq: 1, Op: "partition", Key: "00000000000000aa", MaxAttempts: 3, SubmittedMs: 1},
		{Type: "state", ID: "j1", State: StateRunning, Attempt: 1},
		{Type: "state", ID: "j1", State: StateDone, Attempt: 1},
	}
	for _, rec := range in {
		if err := j.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
	out, skipped, err := replayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("skipped %d records in a clean journal", skipped)
	}
	if len(out) != len(in) {
		t.Fatalf("replayed %d records, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Type != in[i].Type || out[i].ID != in[i].ID || out[i].State != in[i].State || out[i].Attempt != in[i].Attempt {
			t.Fatalf("record %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
}

// TestJournalReplaySkipsBadRecords is the table-driven corruption
// suite: damaged or foreign records — most importantly the torn final
// line a crash mid-write leaves — are skipped, never fatal, and every
// decodable record around them survives.
func TestJournalReplaySkipsBadRecords(t *testing.T) {
	good := submitLine("j1", 1)
	cases := []struct {
		name        string
		content     string
		wantRecs    int
		wantSkipped int
	}{
		{"missing file", "", 0, 0}, // sentinel: dir left empty below
		{"empty file", "\n", 0, 0},
		{"torn final line", good + "\n" + `{"schema":"roadpart-jobs/v1","type":"sub`, 1, 1},
		{"binary garbage line", good + "\n\x00\xff\x1bnot json\n" + stateLine("j1", StateRunning, 1) + "\n", 2, 1},
		{"wrong schema", good + "\n" + strings.Replace(stateLine("j1", StateRunning, 1), "roadpart-jobs/v1", "roadpart-jobs/v999", 1) + "\n", 1, 1},
		{"unknown record type", good + "\n" + `{"schema":"roadpart-jobs/v1","type":"mystery","id":"j1"}` + "\n", 1, 1},
		{"missing id", good + "\n" + `{"schema":"roadpart-jobs/v1","type":"state","state":"done"}` + "\n", 1, 1},
		{"invalid state value", good + "\n" + `{"schema":"roadpart-jobs/v1","type":"state","id":"j1","state":"exploded"}` + "\n", 1, 1},
		{"submit with short key", `{"schema":"roadpart-jobs/v1","type":"submit","id":"j2","op":"partition","key":"abc"}` + "\n" + good + "\n", 1, 1},
		{"corruption mid-file keeps later records", good + "\n{{{\n" + stateLine("j1", StateDone, 1) + "\n", 2, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if tc.content != "" {
				writeJournal(t, dir, tc.content)
			}
			recs, skipped, err := replayJournal(dir)
			if err != nil {
				t.Fatalf("replay must not fail on damaged journals: %v", err)
			}
			if len(recs) != tc.wantRecs || skipped != tc.wantSkipped {
				t.Fatalf("got %d records / %d skipped, want %d / %d", len(recs), skipped, tc.wantRecs, tc.wantSkipped)
			}
		})
	}
}

// TestJournalCompact checks compaction atomically replaces history and
// that the reopened handle keeps appending to the new file.
func TestJournalCompact(t *testing.T) {
	dir := t.TempDir()
	j, err := openJournal(dir, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := j.append(Record{Type: "state", ID: "j1", State: StateRunning, Attempt: i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	folded := []Record{
		{Type: "submit", ID: "j1", Seq: 1, Op: "partition", Key: "00000000000000aa", MaxAttempts: 3, SubmittedMs: 1},
		{Type: "state", ID: "j1", State: StateRetrying, Attempt: 5},
	}
	if err := j.compact(folded); err != nil {
		t.Fatal(err)
	}
	if err := j.append(Record{Type: "state", ID: "j1", State: StateDone, Attempt: 6}); err != nil {
		t.Fatal(err)
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
	recs, skipped, err := replayJournal(dir)
	if err != nil || skipped != 0 {
		t.Fatalf("replay after compact: err=%v skipped=%d", err, skipped)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records after compact+append, want 3", len(recs))
	}
	if recs[2].State != StateDone || recs[2].Attempt != 6 {
		t.Fatalf("post-compact append lost: %+v", recs[2])
	}
}

// TestJournalAppendHooks checks the two failure modes fault injection
// distinguishes: a plain write failure is transient (the next append
// succeeds), while ErrInjectedCrash kills the journal permanently.
func TestJournalAppendHooks(t *testing.T) {
	dir := t.TempDir()
	fail := errors.New("disk on fire")
	failedOnce := false
	hooks := &Hooks{BeforeAppend: func(n int, rec *Record) error {
		switch {
		case n == 1 && !failedOnce:
			failedOnce = true
			return fail
		case n == 3:
			return ErrInjectedCrash
		}
		return nil
	}}
	j, err := openJournal(dir, false, hooks)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{Type: "state", ID: "j1", State: StateRunning, Attempt: 1}
	if err := j.append(rec); err != nil { // n=0
		t.Fatalf("append 0: %v", err)
	}
	if err := j.append(rec); !errors.Is(err, fail) { // n=1: injected write failure
		t.Fatalf("append 1: got %v, want injected failure", err)
	}
	// A failed append does not consume a record index; n=1 retries.
	if err := j.append(rec); err != nil {
		t.Fatalf("append after transient failure: %v", err)
	}
	if err := j.append(rec); err != nil { // n=2
		t.Fatalf("append 2: %v", err)
	}
	if err := j.append(rec); !errors.Is(err, ErrInjectedCrash) { // n=3: crash
		t.Fatalf("append 3: got %v, want ErrInjectedCrash", err)
	}
	if err := j.append(rec); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("append after crash must keep failing, got %v", err)
	}
	j.close()
	recs, _, err := replayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("journal holds %d records, want exactly the 3 acknowledged appends", len(recs))
	}
}
