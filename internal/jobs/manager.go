package jobs

import (
	"context"
	"fmt"
	"log"
	"strconv"
	"sync"
	"time"

	"roadpart/internal/obs"
	"roadpart/internal/resultcache"
)

// Config tunes a Manager. The zero value of every field selects the
// documented default, so Config{} is a working (memory-only) setup.
type Config struct {
	// Workers bounds concurrently executing attempts. 0 selects 2.
	// Job concurrency is deliberately independent of the HTTP admission
	// controller: the pool is the async path's admission.
	Workers int
	// QueueDepth bounds active (non-terminal) jobs; submissions beyond
	// it fail with ErrQueueFull (HTTP 429). 0 selects 64.
	QueueDepth int
	// MaxAttempts is the per-job attempt budget before the dead-letter
	// state. 0 selects 3.
	MaxAttempts int
	// AttemptTimeout bounds each attempt's compute; an expired attempt
	// counts as a failed one (retryable). 0 imposes no deadline.
	AttemptTimeout time.Duration
	// Retry is the backoff policy between attempts.
	Retry Backoff
	// Dir is the journal directory. Empty runs memory-only: jobs work
	// but do not survive a restart (the daemon logs this at start).
	Dir string
	// NoSync skips the per-record fsync. Throughput over durability —
	// a power loss can lose the last records; tests use it for speed.
	NoSync bool
	// Retain bounds terminal (done/failed/cancelled) jobs kept
	// queryable; the oldest are evicted first. 0 selects 256.
	Retain int
	// Hooks inject faults for tests; nil in production.
	Hooks *Hooks
}

func (c Config) normalized() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.Retain <= 0 {
		c.Retain = 256
	}
	return c
}

// Manager metrics (see docs/API.md § Metrics).
var (
	transitionsHelp = "Job state-machine transitions, by state entered."
	jobsWaiting     = obs.Default().Gauge("roadpart_jobs_queue_depth",
		"Jobs waiting to run (queued or in retry backoff).")
	jobsRunning = obs.Default().Gauge("roadpart_jobs_running",
		"Job attempts executing right now.")
	jobsRetries = obs.Default().Counter("roadpart_jobs_retries_total",
		"Failed attempts that were rescheduled with backoff.")
	jobsDeduped = obs.Default().Counter("roadpart_jobs_deduplicated_total",
		"Submissions answered with an existing active job of the same fingerprint.")
	attemptTimer = obs.Default().Timer("roadpart_job_attempt_duration_seconds",
		"Wall-clock duration of job attempts (all outcomes).")
)

func countTransition(st State) {
	obs.Default().Counter("roadpart_jobs_transitions_total", transitionsHelp, "state", string(st)).Inc()
}

// job is the manager-internal record of one submission.
type job struct {
	id          string
	seq         int
	spec        Spec
	maxAttempts int

	state     State
	attempt   int // attempts started so far
	err       string
	result    []byte // body of a completion this process ran (cache holds the durable copy)
	submitted time.Time
	updated   time.Time

	retryAt         time.Time
	retryTimer      *time.Timer
	cancelAttempt   context.CancelFunc
	cancelRequested bool
	done            chan struct{} // closed on terminal transition
}

func (jb *job) view() View {
	v := View{
		ID:          jb.id,
		Op:          jb.spec.Op,
		Key:         jb.spec.Key.String(),
		State:       jb.state,
		Attempt:     jb.attempt,
		MaxAttempts: jb.maxAttempts,
		Error:       jb.err,
		SubmittedAt: jb.submitted,
		UpdatedAt:   jb.updated,
	}
	if jb.state == StateRetrying {
		if ms := time.Until(jb.retryAt).Milliseconds(); ms > 0 {
			v.RetryInMs = ms
		}
	}
	return v
}

// Manager owns the queue, the worker pool, the retry timers and the
// journal. All methods are safe for concurrent use.
type Manager struct {
	cfg    Config
	runner Runner
	j      *journal

	baseCtx    context.Context
	baseCancel context.CancelFunc
	stop       chan struct{}
	stopOnce   sync.Once
	wg         sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order, for terminal-retention trimming
	byKey    map[resultcache.Key]*job
	queue    chan *job
	seq      int
	active   int // non-terminal jobs
	counts   map[State]int
	draining bool
	crashed  bool
	closed   bool
}

// Open builds a Manager: it replays the journal (if any), compacts it,
// re-enqueues every incomplete job and starts the worker pool. The
// returned manager is serving immediately — replayed work may begin
// before Open returns.
func Open(cfg Config, runner Runner) (*Manager, error) {
	cfg = cfg.normalized()
	m := &Manager{
		cfg:    cfg,
		runner: runner,
		stop:   make(chan struct{}),
		jobs:   make(map[string]*job),
		byKey:  make(map[resultcache.Key]*job),
		counts: make(map[State]int),
	}
	m.baseCtx, m.baseCancel = context.WithCancel(context.Background())

	var incomplete []*job
	if cfg.Dir != "" {
		recs, skipped, err := replayJournal(cfg.Dir)
		if err != nil {
			return nil, err
		}
		if skipped > 0 {
			log.Printf("jobs: journal replay skipped %d unreadable record(s)", skipped)
		}
		incomplete = m.rebuild(recs)
		j, err := openJournal(cfg.Dir, !cfg.NoSync, cfg.Hooks)
		if err != nil {
			return nil, err
		}
		m.j = j
		if err := j.compact(m.snapshotRecords()); err != nil {
			return nil, err
		}
	}

	// Every active job holds at most one queue slot at a time; size for
	// the submission bound plus whatever replay brought back.
	m.queue = make(chan *job, cfg.QueueDepth+len(incomplete)+cfg.Workers+1)
	for _, jb := range incomplete {
		m.queue <- jb
	}
	m.refreshGauges()
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// rebuild reconstructs the job table from replayed records and returns
// the incomplete jobs in submission order, normalized for re-execution:
// a job caught mid-run by the crash repeats its interrupted attempt, a
// retrying job re-enters the queue immediately (the restart itself was
// the pause).
func (m *Manager) rebuild(recs []Record) []*job {
	for _, rec := range recs {
		switch rec.Type {
		case "submit":
			if _, ok := m.jobs[rec.ID]; ok {
				continue
			}
			sum, err := strconv.ParseUint(rec.Key, 16, 64)
			if err != nil {
				continue
			}
			var tag uint64
			if rec.Tag != "" {
				tag, _ = strconv.ParseUint(rec.Tag, 16, 64)
			}
			maxA := rec.MaxAttempts
			if maxA <= 0 {
				maxA = m.cfg.MaxAttempts
			}
			jb := &job{
				id:          rec.ID,
				seq:         rec.Seq,
				spec:        Spec{Op: rec.Op, Key: resultcache.Key{Op: rec.Op, Sum: sum}, Tag: tag, Payload: rec.Payload},
				maxAttempts: maxA,
				state:       StateQueued,
				submitted:   time.UnixMilli(rec.SubmittedMs),
				updated:     time.UnixMilli(rec.SubmittedMs),
				done:        make(chan struct{}),
			}
			m.jobs[rec.ID] = jb
			m.order = append(m.order, rec.ID)
			if rec.Seq > m.seq {
				m.seq = rec.Seq
			}
		case "state":
			jb := m.jobs[rec.ID]
			if jb == nil || jb.state.Terminal() {
				continue
			}
			jb.state = rec.State
			jb.attempt = rec.Attempt
			jb.err = rec.Error
		}
	}
	var incomplete []*job
	for _, id := range m.order {
		jb := m.jobs[id]
		switch jb.state {
		case StateDone, StateFailed, StateCancelled:
			close(jb.done)
			continue
		case StateRunning:
			// The interrupted attempt never finished; re-run it under the
			// same attempt number.
			jb.attempt--
		}
		jb.state = StateQueued
		m.active++
		if m.byKey[jb.spec.Key] == nil {
			m.byKey[jb.spec.Key] = jb
		}
		incomplete = append(incomplete, jb)
	}
	for _, jb := range m.jobs {
		m.counts[jb.state]++
	}
	m.trimLocked()
	return incomplete
}

// snapshotRecords folds the current job table into a minimal record
// list (submit + current state per job) for compaction.
func (m *Manager) snapshotRecords() []Record {
	recs := make([]Record, 0, 2*len(m.order))
	for _, id := range m.order {
		jb := m.jobs[id]
		recs = append(recs, jb.submitRecord())
		if jb.state != StateQueued || jb.attempt != 0 {
			recs = append(recs, jb.stateRecord())
		}
	}
	return recs
}

func (jb *job) submitRecord() Record {
	rec := Record{
		Type:        "submit",
		ID:          jb.id,
		Seq:         jb.seq,
		Op:          jb.spec.Op,
		Key:         fmt.Sprintf("%016x", jb.spec.Key.Sum),
		Payload:     jb.spec.Payload,
		MaxAttempts: jb.maxAttempts,
		SubmittedMs: jb.submitted.UnixMilli(),
	}
	if jb.spec.Tag != 0 {
		rec.Tag = fmt.Sprintf("%016x", jb.spec.Tag)
	}
	return rec
}

func (jb *job) stateRecord() Record {
	return Record{Type: "state", ID: jb.id, State: jb.state, Attempt: jb.attempt, Error: jb.err}
}

// Submit accepts one job: journal first, acknowledge second, so an
// acknowledged job is always recoverable. deduped reports that an
// active job with the same fingerprint already covers the work and was
// returned instead of queueing a twin.
func (m *Manager) Submit(spec Spec) (v View, deduped bool, err error) {
	m.mu.Lock()
	switch {
	case m.crashed:
		m.mu.Unlock()
		return View{}, false, ErrInjectedCrash
	case m.draining:
		m.mu.Unlock()
		return View{}, false, ErrDraining
	}
	if existing := m.byKey[spec.Key]; existing != nil {
		v := existing.view()
		m.mu.Unlock()
		jobsDeduped.Inc()
		return v, true, nil
	}
	if m.active >= m.cfg.QueueDepth {
		m.mu.Unlock()
		return View{}, false, fmt.Errorf("%w: %d active jobs", ErrQueueFull, m.cfg.QueueDepth)
	}
	m.seq++
	now := time.Now()
	jb := &job{
		id:          fmt.Sprintf("j%06d-%016x", m.seq, spec.Key.Sum),
		seq:         m.seq,
		spec:        spec,
		maxAttempts: m.cfg.MaxAttempts,
		state:       StateQueued,
		submitted:   now,
		updated:     now,
		done:        make(chan struct{}),
	}
	if err := m.j.append(jb.submitRecord()); err != nil {
		if err == ErrInjectedCrash {
			m.crashed = true
		}
		m.mu.Unlock()
		return View{}, false, fmt.Errorf("jobs: submission not journaled: %w", err)
	}
	m.jobs[jb.id] = jb
	m.order = append(m.order, jb.id)
	m.byKey[spec.Key] = jb
	m.active++
	m.counts[StateQueued]++
	v = jb.view()
	m.mu.Unlock()
	countTransition(StateQueued)
	m.refreshGauges()
	m.enqueue(jb)
	return v, false, nil
}

// enqueue hands a job to the worker pool without ever blocking a
// transition: the channel is sized for the invariants, and the rare
// overflow (config shrank between restarts) falls back to a goroutine.
func (m *Manager) enqueue(jb *job) {
	select {
	case m.queue <- jb:
	default:
		go func() {
			select {
			case m.queue <- jb:
			case <-m.stop:
			}
		}()
	}
}

// Get returns the job's current view.
func (m *Manager) Get(id string) (View, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	jb := m.jobs[id]
	if jb == nil {
		return View{}, ErrUnknownJob
	}
	return jb.view(), nil
}

// Result returns the in-memory result body of a job completed by this
// process. After a restart the journal knows the job is done but the
// body lives only in the result cache — callers fall back to it by the
// job's key.
func (m *Manager) Result(id string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	jb := m.jobs[id]
	if jb == nil || jb.state != StateDone || jb.result == nil {
		return nil, false
	}
	return jb.result, true
}

// Spec returns the journaled spec of a known job, so callers can reach
// the content-addressed result of a job completed before a restart.
func (m *Manager) Spec(id string) (Spec, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	jb := m.jobs[id]
	if jb == nil {
		return Spec{}, false
	}
	return jb.spec, true
}

// Cancel withdraws a job. Waiting jobs (queued/retrying) cancel
// immediately; a running job has its attempt context cancelled and
// reaches the cancelled state when the worker observes it; terminal
// jobs are returned unchanged.
func (m *Manager) Cancel(id string) (View, error) {
	m.mu.Lock()
	jb := m.jobs[id]
	if jb == nil {
		m.mu.Unlock()
		return View{}, ErrUnknownJob
	}
	switch jb.state {
	case StateQueued, StateRetrying:
		if jb.retryTimer != nil {
			jb.retryTimer.Stop()
			jb.retryTimer = nil
		}
		m.appendStateLocked(jb, StateCancelled, jb.attempt, "cancelled by client")
		m.setStateLocked(jb, StateCancelled, "cancelled by client")
	case StateRunning:
		jb.cancelRequested = true
		if jb.cancelAttempt != nil {
			jb.cancelAttempt()
		}
	}
	v := jb.view()
	m.mu.Unlock()
	m.refreshGauges()
	return v, nil
}

// Wait blocks until the job reaches a terminal state or ctx ends.
func (m *Manager) Wait(ctx context.Context, id string) (View, error) {
	m.mu.Lock()
	jb := m.jobs[id]
	m.mu.Unlock()
	if jb == nil {
		return View{}, ErrUnknownJob
	}
	select {
	case <-jb.done:
		return m.Get(id)
	case <-ctx.Done():
		return View{}, ctx.Err()
	}
}

// Active reports the number of non-terminal jobs — the queue-depth
// input to the serving layer's dynamic Retry-After.
func (m *Manager) Active() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.active
}

// Workers reports the configured pool size.
func (m *Manager) Workers() int { return m.cfg.Workers }

// Crashed reports whether an injected crash killed the journal (test
// observability; production managers never crash this way).
func (m *Manager) Crashed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashed
}

// worker drains the queue until the manager stops.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.stop:
			return
		case jb := <-m.queue:
			m.runJob(jb)
		}
	}
}

// runJob executes one attempt and applies the resulting transition.
func (m *Manager) runJob(jb *job) {
	m.mu.Lock()
	if m.crashed || m.draining || (jb.state != StateQueued && jb.state != StateRetrying) {
		m.mu.Unlock()
		return
	}
	attempt := jb.attempt + 1
	if attempt > jb.maxAttempts {
		// Defensive: a replayed journal claiming more attempts than the
		// budget dead-letters instead of over-running.
		m.appendStateLocked(jb, StateFailed, jb.attempt, jb.err)
		m.setStateLocked(jb, StateFailed, jb.err)
		m.mu.Unlock()
		m.refreshGauges()
		return
	}
	if !m.appendStateLocked(jb, StateRunning, attempt, "") {
		m.mu.Unlock()
		return // journal crashed; the simulated process is dead
	}
	jb.attempt = attempt
	m.setStateLocked(jb, StateRunning, "")
	ctx, cancel := context.WithCancel(m.baseCtx)
	if m.cfg.AttemptTimeout > 0 {
		cancel()
		ctx, cancel = context.WithTimeout(m.baseCtx, m.cfg.AttemptTimeout)
	}
	jb.cancelAttempt = cancel
	spec := jb.spec
	m.mu.Unlock()
	m.refreshGauges()

	sp := attemptTimer.Start()
	body, err := m.execute(ctx, spec, attempt)
	sp.End()
	cancel()

	m.mu.Lock()
	jb.cancelAttempt = nil
	if m.crashed {
		m.mu.Unlock()
		return
	}
	switch {
	case err == nil:
		if m.appendStateLocked(jb, StateDone, jb.attempt, "") {
			jb.result = body
			m.setStateLocked(jb, StateDone, "")
		}
	case jb.cancelRequested:
		if m.appendStateLocked(jb, StateCancelled, jb.attempt, err.Error()) {
			m.setStateLocked(jb, StateCancelled, err.Error())
		}
	case m.draining:
		// Checkpoint, don't abandon: the interrupted attempt is handed
		// back so the restarted daemon re-runs it without burning budget.
		if m.appendStateLocked(jb, StateQueued, jb.attempt-1, "") {
			jb.attempt--
			m.setStateLocked(jb, StateQueued, "")
		}
	case jb.attempt >= jb.maxAttempts:
		if m.appendStateLocked(jb, StateFailed, jb.attempt, err.Error()) {
			m.setStateLocked(jb, StateFailed, err.Error())
		}
	default:
		m.retryLocked(jb, err)
	}
	m.mu.Unlock()
	m.refreshGauges()
}

// execute runs the fault-injection hooks and then the Runner.
func (m *Manager) execute(ctx context.Context, spec Spec, attempt int) ([]byte, error) {
	if h := m.cfg.Hooks; h != nil {
		if h.ComputeDelay != nil {
			if d := h.ComputeDelay(spec, attempt); d > 0 {
				t := time.NewTimer(d)
				select {
				case <-ctx.Done():
					t.Stop()
					return nil, ctx.Err()
				case <-t.C:
				}
			}
		}
		if h.BeforeCompute != nil {
			if err := h.BeforeCompute(spec, attempt); err != nil {
				return nil, err
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return m.runner.Run(ctx, spec)
}

// retryLocked schedules the next attempt under the backoff policy.
func (m *Manager) retryLocked(jb *job, cause error) {
	delay := m.cfg.Retry.Delay(jb.spec.Key.Sum, jb.attempt)
	if !m.appendStateLocked(jb, StateRetrying, jb.attempt, cause.Error()) {
		return
	}
	m.setStateLocked(jb, StateRetrying, cause.Error())
	jb.retryAt = time.Now().Add(delay)
	jobsRetries.Inc()
	jb.retryTimer = time.AfterFunc(delay, func() {
		m.mu.Lock()
		ok := !m.crashed && !m.draining && jb.state == StateRetrying
		if ok {
			jb.retryTimer = nil
		}
		m.mu.Unlock()
		if ok {
			m.enqueue(jb)
		}
	})
}

// appendStateLocked journals one transition. It reports false only on
// an injected crash (the manager freezes); a genuine journal write
// failure is counted and the transition proceeds in memory — liveness
// over durability for mid-life records, the opposite of Submit.
func (m *Manager) appendStateLocked(jb *job, st State, attempt int, errMsg string) bool {
	err := m.j.append(Record{Type: "state", ID: jb.id, State: st, Attempt: attempt, Error: errMsg})
	if err == ErrInjectedCrash {
		m.crashed = true
		return false
	}
	return true
}

// setStateLocked applies one transition to the in-memory table,
// maintaining the per-state counts, the dedup index, retention and the
// terminal broadcast. Callers hold m.mu and journal first.
func (m *Manager) setStateLocked(jb *job, st State, errMsg string) {
	old := jb.state
	jb.state = st
	jb.err = errMsg
	jb.updated = time.Now()
	m.counts[old]--
	m.counts[st]++
	countTransition(st)
	if st.Terminal() && !old.Terminal() {
		close(jb.done)
		if m.byKey[jb.spec.Key] == jb {
			delete(m.byKey, jb.spec.Key)
		}
		m.active--
		m.trimLocked()
	}
}

// trimLocked evicts the oldest terminal jobs beyond the retention
// bound. Evicted jobs disappear from Get and from the next compaction.
func (m *Manager) trimLocked() {
	terminal := len(m.jobs) - m.active
	if terminal <= m.cfg.Retain {
		return
	}
	kept := m.order[:0]
	for _, id := range m.order {
		jb := m.jobs[id]
		if terminal > m.cfg.Retain && jb.state.Terminal() {
			m.counts[jb.state]--
			delete(m.jobs, id)
			terminal--
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

// refreshGauges publishes the waiting/running gauges from the counts.
func (m *Manager) refreshGauges() {
	m.mu.Lock()
	waiting := m.counts[StateQueued] + m.counts[StateRetrying]
	running := m.counts[StateRunning]
	m.mu.Unlock()
	jobsWaiting.Set(float64(waiting))
	jobsRunning.Set(float64(running))
}

// Close drains the manager: new submissions are refused, retry timers
// stop (retrying jobs stay journaled and replay on restart), in-flight
// attempts are interrupted and checkpointed back to queued, and the
// journal is closed. ctx bounds the wait for workers; on expiry the
// base context is cancelled so even a hung Runner unwinds.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.draining = true
	for _, jb := range m.jobs {
		if jb.retryTimer != nil {
			jb.retryTimer.Stop()
			jb.retryTimer = nil
		}
		if jb.cancelAttempt != nil {
			jb.cancelAttempt()
		}
	}
	m.mu.Unlock()
	m.stopOnce.Do(func() { close(m.stop) })

	finished := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
	case <-ctx.Done():
		m.baseCancel()
		<-finished
	}
	m.baseCancel()
	return m.j.close()
}

// Kill is the abrupt stop the chaos suite uses after an injected
// crash: no checkpointing, no draining — workers are cancelled and the
// journal handle closed, leaving the directory exactly as the "dead
// process" wrote it.
func (m *Manager) Kill() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.crashed = true
	for _, jb := range m.jobs {
		if jb.retryTimer != nil {
			jb.retryTimer.Stop()
			jb.retryTimer = nil
		}
	}
	m.mu.Unlock()
	m.baseCancel()
	m.stopOnce.Do(func() { close(m.stop) })
	m.wg.Wait()
	_ = m.j.close()
}
