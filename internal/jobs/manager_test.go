package jobs

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"roadpart/internal/resultcache"
)

// fastRetry keeps test backoff in the microsecond range while staying
// deterministic.
var fastRetry = Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond, Jitter: -1, Seed: 1}

func testSpec(op string, sum uint64) Spec {
	return Spec{Op: op, Key: resultcache.Key{Op: op, Sum: sum}, Payload: []byte(`{"k":4}`)}
}

func openTest(t *testing.T, cfg Config, runner Runner) *Manager {
	t.Helper()
	if cfg.Retry == (Backoff{}) {
		cfg.Retry = fastRetry
	}
	cfg.NoSync = true
	m, err := Open(cfg, runner)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Close(ctx)
	})
	return m
}

func waitTerminal(t *testing.T, m *Manager, id string) View {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	v, err := m.Wait(ctx, id)
	if err != nil {
		t.Fatalf("waiting for %s: %v", id, err)
	}
	return v
}

// TestJobLifecycleDone walks the happy path: submit → queued → done,
// with the result retained in memory.
func TestJobLifecycleDone(t *testing.T) {
	m := openTest(t, Config{}, RunnerFunc(func(ctx context.Context, spec Spec) ([]byte, error) {
		return []byte("body-" + spec.Op), nil
	}))
	v, deduped, err := m.Submit(testSpec("partition", 0xaa))
	if err != nil || deduped {
		t.Fatalf("submit: err=%v deduped=%v", err, deduped)
	}
	if v.State != StateQueued || v.Attempt != 0 || v.MaxAttempts != 3 {
		t.Fatalf("fresh view: %+v", v)
	}
	if !strings.Contains(v.ID, fmt.Sprintf("%016x", uint64(0xaa))) {
		t.Fatalf("job id %q does not embed the fingerprint", v.ID)
	}
	done := waitTerminal(t, m, v.ID)
	if done.State != StateDone || done.Attempt != 1 || done.Error != "" {
		t.Fatalf("final view: %+v", done)
	}
	body, ok := m.Result(v.ID)
	if !ok || string(body) != "body-partition" {
		t.Fatalf("result: %q ok=%v", body, ok)
	}
}

// TestJobRetryThenSucceed injects one compute failure and checks the
// job recovers on attempt 2.
func TestJobRetryThenSucceed(t *testing.T) {
	m := openTest(t, Config{
		Hooks: &Hooks{BeforeCompute: func(spec Spec, attempt int) error {
			if attempt == 1 {
				return errors.New("flaky solve")
			}
			return nil
		}},
	}, RunnerFunc(func(ctx context.Context, spec Spec) ([]byte, error) { return []byte("ok"), nil }))
	v, _, err := m.Submit(testSpec("partition", 0xb0))
	if err != nil {
		t.Fatal(err)
	}
	done := waitTerminal(t, m, v.ID)
	if done.State != StateDone || done.Attempt != 2 {
		t.Fatalf("final view: %+v", done)
	}
}

// TestJobDeadLetter exhausts the attempt budget and checks the
// terminal failed state keeps the last error.
func TestJobDeadLetter(t *testing.T) {
	var attempts atomic.Int64
	m := openTest(t, Config{MaxAttempts: 3}, RunnerFunc(func(ctx context.Context, spec Spec) ([]byte, error) {
		attempts.Add(1)
		return nil, fmt.Errorf("solver diverged on attempt %d", attempts.Load())
	}))
	v, _, err := m.Submit(testSpec("sweep", 0xdead))
	if err != nil {
		t.Fatal(err)
	}
	done := waitTerminal(t, m, v.ID)
	if done.State != StateFailed || done.Attempt != 3 {
		t.Fatalf("final view: %+v", done)
	}
	if !strings.Contains(done.Error, "attempt 3") {
		t.Fatalf("dead letter lost the last error: %q", done.Error)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("runner ran %d times, want 3", got)
	}
}

// TestSubmitDedup checks active jobs deduplicate by fingerprint while
// distinct fingerprints queue separately.
func TestSubmitDedup(t *testing.T) {
	release := make(chan struct{})
	m := openTest(t, Config{Workers: 1}, RunnerFunc(func(ctx context.Context, spec Spec) ([]byte, error) {
		select {
		case <-release:
			return []byte("ok"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}))
	first, _, err := m.Submit(testSpec("partition", 0x11))
	if err != nil {
		t.Fatal(err)
	}
	dup, deduped, err := m.Submit(testSpec("partition", 0x11))
	if err != nil || !deduped || dup.ID != first.ID {
		t.Fatalf("duplicate submit: id=%s deduped=%v err=%v (want %s)", dup.ID, deduped, err, first.ID)
	}
	other, deduped, err := m.Submit(testSpec("partition", 0x22))
	if err != nil || deduped || other.ID == first.ID {
		t.Fatalf("distinct submit: id=%s deduped=%v err=%v", other.ID, deduped, err)
	}
	close(release)
	if v := waitTerminal(t, m, first.ID); v.State != StateDone {
		t.Fatalf("first job: %+v", v)
	}
	// A terminal job no longer blocks its fingerprint.
	again, deduped, err := m.Submit(testSpec("partition", 0x11))
	if err != nil || deduped || again.ID == first.ID {
		t.Fatalf("resubmit after done: id=%s deduped=%v err=%v", again.ID, deduped, err)
	}
}

// TestQueueFull checks the active-job bound rejects with ErrQueueFull.
func TestQueueFull(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	m := openTest(t, Config{Workers: 1, QueueDepth: 2}, RunnerFunc(func(ctx context.Context, spec Spec) ([]byte, error) {
		select {
		case <-release:
			return []byte("ok"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}))
	for i := uint64(1); i <= 2; i++ {
		if _, _, err := m.Submit(testSpec("partition", i)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if _, _, err := m.Submit(testSpec("partition", 3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: got %v, want ErrQueueFull", err)
	}
	if m.Active() != 2 {
		t.Fatalf("Active() = %d, want 2", m.Active())
	}
}

// TestCancel covers both cancellation paths: a queued job cancels
// immediately, a running one when its attempt context unwinds.
func TestCancel(t *testing.T) {
	started := make(chan struct{}, 1)
	m := openTest(t, Config{Workers: 1}, RunnerFunc(func(ctx context.Context, spec Spec) ([]byte, error) {
		started <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	}))
	running, _, err := m.Submit(testSpec("partition", 0x1))
	if err != nil {
		t.Fatal(err)
	}
	queued, _, err := m.Submit(testSpec("partition", 0x2))
	if err != nil {
		t.Fatal(err)
	}
	<-started

	if v, err := m.Cancel(queued.ID); err != nil || v.State != StateCancelled {
		t.Fatalf("cancel queued: %+v err=%v", v, err)
	}
	if _, err := m.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	if v := waitTerminal(t, m, running.ID); v.State != StateCancelled {
		t.Fatalf("cancel running: %+v", v)
	}
	// Cancelling a terminal job is a no-op, not an error.
	if v, err := m.Cancel(running.ID); err != nil || v.State != StateCancelled {
		t.Fatalf("re-cancel: %+v err=%v", v, err)
	}
	if _, err := m.Cancel("j999999-0000000000000000"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("cancel unknown: %v", err)
	}
}

// TestAttemptTimeout checks a slow solve burns one attempt and the
// retry succeeds.
func TestAttemptTimeout(t *testing.T) {
	m := openTest(t, Config{
		AttemptTimeout: 20 * time.Millisecond,
		Hooks: &Hooks{ComputeDelay: func(spec Spec, attempt int) time.Duration {
			if attempt == 1 {
				return time.Minute // far beyond the deadline; injection respects ctx
			}
			return 0
		}},
	}, RunnerFunc(func(ctx context.Context, spec Spec) ([]byte, error) { return []byte("ok"), nil }))
	v, _, err := m.Submit(testSpec("sweep", 0x51))
	if err != nil {
		t.Fatal(err)
	}
	done := waitTerminal(t, m, v.ID)
	if done.State != StateDone || done.Attempt != 2 {
		t.Fatalf("final view: %+v", done)
	}
}

// TestDrainCheckpoint drains a manager mid-attempt and checks the
// restarted one finishes the job without a burned attempt.
func TestDrainCheckpoint(t *testing.T) {
	dir := t.TempDir()
	started := make(chan struct{}, 1)
	blocked, err := Open(Config{Dir: dir, NoSync: true, Retry: fastRetry}, RunnerFunc(func(ctx context.Context, spec Spec) ([]byte, error) {
		started <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	}))
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := blocked.Submit(testSpec("partition", 0x77))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := blocked.Close(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, _, err := blocked.Submit(testSpec("partition", 0x78)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while drained: %v", err)
	}

	restarted := openTest(t, Config{Dir: dir}, RunnerFunc(func(ctx context.Context, spec Spec) ([]byte, error) {
		return []byte("after restart"), nil
	}))
	done := waitTerminal(t, restarted, v.ID)
	if done.State != StateDone {
		t.Fatalf("replayed job: %+v", done)
	}
	if done.Attempt != 1 {
		t.Fatalf("drain checkpoint burned the attempt: attempt=%d, want 1", done.Attempt)
	}
	if body, ok := restarted.Result(v.ID); !ok || string(body) != "after restart" {
		t.Fatalf("result after restart: %q ok=%v", body, ok)
	}
}

// TestReplayAttemptSemantics hand-writes journals and checks the
// normalization rules: running(n) re-runs attempt n, retrying(n)
// proceeds to attempt n+1, terminal jobs replay queryable but inert.
func TestReplayAttemptSemantics(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir, strings.Join([]string{
		submitLine("j000001-00000000000000aa", 1),
		stateLine("j000001-00000000000000aa", StateRunning, 2),
		submitLine("j000002-00000000000000aa", 2), // same fingerprint; both replayed jobs still run
		stateLine("j000002-00000000000000aa", StateRetrying, 1),
		submitLine("j000003-00000000000000aa", 3),
		stateLine("j000003-00000000000000aa", StateDone, 1),
	}, "\n")+"\n")

	var ran atomic.Int64
	m := openTest(t, Config{Dir: dir}, RunnerFunc(func(ctx context.Context, spec Spec) ([]byte, error) {
		ran.Add(1)
		return []byte("ok"), nil
	}))
	interrupted := waitTerminal(t, m, "j000001-00000000000000aa")
	if interrupted.State != StateDone || interrupted.Attempt != 2 {
		t.Fatalf("interrupted-running job: %+v (want done at attempt 2)", interrupted)
	}
	retried := waitTerminal(t, m, "j000002-00000000000000aa")
	if retried.State != StateDone || retried.Attempt != 2 {
		t.Fatalf("retrying job: %+v (want done at attempt 2)", retried)
	}
	finished, err := m.Get("j000003-00000000000000aa")
	if err != nil || finished.State != StateDone {
		t.Fatalf("terminal job after replay: %+v err=%v", finished, err)
	}
	if got := ran.Load(); got != 2 {
		t.Fatalf("runner ran %d times, want 2 (terminal job must not re-run)", got)
	}
	// The replayed-done job's body lives only in the result cache; the
	// manager reports no in-memory copy rather than inventing one.
	if _, ok := m.Result("j000003-00000000000000aa"); ok {
		t.Fatal("replayed terminal job should have no in-memory result")
	}
}

// TestReplayCompaction checks startup folds journal history into one
// submit + state pair per job.
func TestReplayCompaction(t *testing.T) {
	dir := t.TempDir()
	var lines []string
	lines = append(lines, submitLine("j000001-00000000000000aa", 1))
	for i := 1; i <= 3; i++ {
		lines = append(lines, stateLine("j000001-00000000000000aa", StateRunning, i))
		lines = append(lines, stateLine("j000001-00000000000000aa", StateRetrying, i))
	}
	lines = append(lines, stateLine("j000001-00000000000000aa", StateFailed, 3))
	writeJournal(t, dir, strings.Join(lines, "\n")+"\n")

	m := openTest(t, Config{Dir: dir}, RunnerFunc(func(ctx context.Context, spec Spec) ([]byte, error) { return nil, nil }))
	if v, err := m.Get("j000001-00000000000000aa"); err != nil || v.State != StateFailed {
		t.Fatalf("replayed job: %+v err=%v", v, err)
	}
	data, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(strings.TrimSpace(string(data)), "\n") + 1; got != 2 {
		t.Fatalf("compacted journal holds %d records, want 2 (submit + terminal state)", got)
	}
}

// TestRetention checks the oldest terminal jobs are evicted beyond the
// Retain bound while active jobs are untouchable.
func TestRetention(t *testing.T) {
	m := openTest(t, Config{Retain: 2}, RunnerFunc(func(ctx context.Context, spec Spec) ([]byte, error) {
		return []byte("ok"), nil
	}))
	var ids []string
	for i := uint64(1); i <= 5; i++ {
		v, _, err := m.Submit(testSpec("partition", i))
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, m, v.ID)
		ids = append(ids, v.ID)
	}
	if _, err := m.Get(ids[0]); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("oldest terminal job should be evicted, got err=%v", err)
	}
	for _, id := range ids[3:] {
		if _, err := m.Get(id); err != nil {
			t.Fatalf("recent terminal job %s evicted: %v", id, err)
		}
	}
}

// TestMemoryOnlyManager checks Dir-less managers work (no durability,
// no crash).
func TestMemoryOnlyManager(t *testing.T) {
	m := openTest(t, Config{}, RunnerFunc(func(ctx context.Context, spec Spec) ([]byte, error) {
		return []byte("ok"), nil
	}))
	v, _, err := m.Submit(testSpec("sweep", 0x99))
	if err != nil {
		t.Fatal(err)
	}
	if done := waitTerminal(t, m, v.ID); done.State != StateDone {
		t.Fatalf("final view: %+v", done)
	}
}
