package kmeans

import "testing"

func BenchmarkOneD50k(b *testing.B) {
	data := make([]float64, 50000)
	rng := prng{state: 1}
	for i := range data {
		data[i] = rng.float64() * 100
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OneD(data, 5, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkND5kBy8(b *testing.B) {
	rng := prng{state: 2}
	pts := make([][]float64, 5000)
	for i := range pts {
		p := make([]float64, 8)
		for j := range p {
			p[j] = rng.float64()
		}
		pts[i] = p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ND(pts, 8, NDOptions{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
