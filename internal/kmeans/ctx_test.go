package kmeans

import (
	"context"
	"errors"
	"testing"
)

func ctxTestPoints() [][]float64 {
	pts := make([][]float64, 40)
	for i := range pts {
		pts[i] = []float64{float64(i % 4), float64(i / 4)}
	}
	return pts
}

// TestNDCtxPreCancelled asserts a done context stops NDCtx before any
// restart runs, with the context error wrapped in the kmeans error.
func TestNDCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NDCtx(ctx, ctxTestPoints(), 3, NDOptions{Restarts: 4, Seed: 9})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}

// TestNDCtxUncancelledMatchesND pins the compatibility guarantee: with a
// live context NDCtx is bit-identical to ND for serial and parallel
// restart execution.
func TestNDCtxUncancelledMatchesND(t *testing.T) {
	pts := ctxTestPoints()
	for _, workers := range []int{1, 4} {
		opts := NDOptions{Restarts: 6, Seed: 42, Workers: workers}
		want, err := ND(pts, 3, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := NDCtx(context.Background(), pts, 3, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got.WCSS != want.WCSS || got.Iterations != want.Iterations {
			t.Fatalf("workers=%d: NDCtx (WCSS=%v, iters=%d) differs from ND (WCSS=%v, iters=%d)",
				workers, got.WCSS, got.Iterations, want.WCSS, want.Iterations)
		}
		for i := range want.Assign {
			if got.Assign[i] != want.Assign[i] {
				t.Fatalf("workers=%d: assignment differs at point %d", workers, i)
			}
		}
	}
}
