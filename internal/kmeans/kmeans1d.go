// Package kmeans implements the two k-means variants the framework needs:
//
//   - OneD: Lloyd's algorithm on scalar data with the paper's deterministic
//     initialization — feature values are sorted and the j-th cluster mean
//     starts at the value at position n/κ·j — which sidesteps the usual
//     sensitivity to random initialization for 1-D data (Section 4.1).
//   - ND: Lloyd's algorithm on d-dimensional points with k-means++ or Forgy
//     seeding, used to cluster the row-normalized spectral embedding in
//     Algorithm 3.
//
// Both run to convergence or an iteration cap and report the within-cluster
// sum of squares so callers can compare runs.
package kmeans

import (
	"fmt"
	"math"
	"sort"
)

// DefaultMaxIterations caps Lloyd's iterations when the caller passes 0.
const DefaultMaxIterations = 200

// Result describes a clustering of n items into k clusters.
type Result struct {
	// Assign[i] is the cluster index of item i, in [0, K).
	Assign []int
	// Means holds the cluster centroids; for OneD each is a scalar,
	// packed as Means[c][0].
	Means [][]float64
	// Sizes[c] is the number of items in cluster c.
	Sizes []int
	// WCSS is the within-cluster sum of squared distances (the k-means
	// objective value at convergence).
	WCSS float64
	// Iterations is the number of Lloyd's iterations performed.
	Iterations int
	// K is the number of clusters requested (empty clusters can occur
	// on degenerate data and keep their slot with size 0).
	K int
}

// Mean1 returns the scalar centroid of cluster c, for 1-D results.
func (r *Result) Mean1(c int) float64 { return r.Means[c][0] }

// OneD clusters scalar data into k clusters using Lloyd's algorithm with
// the paper's sorted equal-interval initialization. maxIter <= 0 selects
// DefaultMaxIterations. The input slice is not modified.
//
// OneD is fully deterministic: identical inputs yield identical results.
func OneD(data []float64, k, maxIter int) (*Result, error) {
	return oneD(data, k, maxIter, nil)
}

// OneDRandomInit is OneD with classic random (Forgy) initialization —
// k data values drawn without replacement, deterministic in seed. It
// exists for the ablation against the paper's sorted-interval
// initialization (Section 4.1), which OneD uses.
func OneDRandomInit(data []float64, k, maxIter int, seed uint64) (*Result, error) {
	rng := prng{state: seed ^ 0xabcdef12345}
	return oneD(data, k, maxIter, &rng)
}

func oneD(data []float64, k, maxIter int, rng *prng) (*Result, error) {
	n := len(data)
	if k < 1 {
		return nil, fmt.Errorf("kmeans: OneD needs k >= 1, got %d", k)
	}
	if k > n {
		return nil, fmt.Errorf("kmeans: OneD k=%d exceeds %d items", k, n)
	}
	if maxIter <= 0 {
		maxIter = DefaultMaxIterations
	}

	means := make([]float64, k)
	if rng != nil {
		// Forgy: k distinct positions drawn at random.
		perm := rng.perm(n)
		for j := 0; j < k; j++ {
			means[j] = data[perm[j]]
		}
	} else {
		// Sorted equal-interval initialization (Section 4.1): with sorted
		// feature values, the j-th cluster mean starts at position
		// ⌊n/k·j⌋ (clamped), giving means spread across the empirical
		// distribution.
		sorted := make([]float64, n)
		copy(sorted, data)
		sort.Float64s(sorted)
		for j := 0; j < k; j++ {
			idx := (n * j) / k
			// Center each interval rather than taking its left edge so
			// k=1 starts at the median-ish value and extremes are not
			// wasted.
			idx += n / (2 * k)
			if idx >= n {
				idx = n - 1
			}
			means[j] = sorted[idx]
		}
	}
	sort.Float64s(means)

	assign := make([]int, n)
	sizes := make([]int, k)
	sums := make([]float64, k)
	var wcss float64
	iter := 0
	for ; iter < maxIter; iter++ {
		changed := false
		for c := range sums {
			sums[c] = 0
			sizes[c] = 0
		}
		wcss = 0
		for i, v := range data {
			best, bestD := 0, math.Inf(1)
			for c, m := range means {
				d := (v - m) * (v - m)
				if d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
			sums[best] += v
			sizes[best]++
			wcss += bestD
		}
		if iter > 0 && !changed {
			break
		}
		for c := range means {
			if sizes[c] > 0 {
				means[c] = sums[c] / float64(sizes[c])
			}
		}
	}

	res := &Result{
		Assign:     assign,
		Means:      make([][]float64, k),
		Sizes:      sizes,
		WCSS:       wcss,
		Iterations: iter,
		K:          k,
	}
	for c := range means {
		res.Means[c] = []float64{means[c]}
	}
	return res, nil
}
