// Package kmeans implements the two k-means variants the framework needs:
//
//   - OneD: Lloyd's algorithm on scalar data with the paper's deterministic
//     initialization — feature values are sorted and the j-th cluster mean
//     starts at the value at position n/κ·j — which sidesteps the usual
//     sensitivity to random initialization for 1-D data (Section 4.1).
//   - ND: Lloyd's algorithm on d-dimensional points with k-means++ or Forgy
//     seeding, used to cluster the row-normalized spectral embedding in
//     Algorithm 3.
//
// Both run to convergence or an iteration cap and report the within-cluster
// sum of squares so callers can compare runs.
package kmeans

import (
	"fmt"
	"math"
	"sort"
)

// DefaultMaxIterations caps Lloyd's iterations when the caller passes 0.
const DefaultMaxIterations = 200

// Result describes a clustering of n items into k clusters.
type Result struct {
	// Assign[i] is the cluster index of item i, in [0, K).
	Assign []int
	// Means holds the cluster centroids; for OneD each is a scalar,
	// packed as Means[c][0].
	Means [][]float64
	// Sizes[c] is the number of items in cluster c.
	Sizes []int
	// WCSS is the within-cluster sum of squared distances (the k-means
	// objective value at convergence).
	WCSS float64
	// Iterations is the number of Lloyd's iterations performed.
	Iterations int
	// K is the number of clusters requested (empty clusters can occur
	// on degenerate data and keep their slot with size 0).
	K int
}

// Mean1 returns the scalar centroid of cluster c, for 1-D results.
func (r *Result) Mean1(c int) float64 { return r.Means[c][0] }

// OneD clusters scalar data into k clusters using Lloyd's algorithm with
// the paper's sorted equal-interval initialization. maxIter <= 0 selects
// DefaultMaxIterations. The input slice is not modified.
//
// OneD is fully deterministic: identical inputs yield identical results.
// Every call allocates a fresh Result; loops that cluster many times
// (κ-sweeps) should reuse a Scratch instead.
func OneD(data []float64, k, maxIter int) (*Result, error) {
	return oneD(data, k, maxIter, nil, nil)
}

// OneDRandomInit is OneD with classic random (Forgy) initialization —
// k data values drawn without replacement, deterministic in seed. It
// exists for the ablation against the paper's sorted-interval
// initialization (Section 4.1), which OneD uses.
func OneDRandomInit(data []float64, k, maxIter int, seed uint64) (*Result, error) {
	rng := prng{state: seed ^ 0xabcdef12345}
	return oneD(data, k, maxIter, &rng, nil)
}

// Scratch holds the working buffers for repeated 1-D clusterings so a
// κ-sweep reuses memory instead of reallocating per candidate κ. The zero
// value is ready to use; buffers grow on demand and may be dirty between
// calls (every buffer read is first overwritten, so results are
// bit-identical to scratch-free OneD).
//
// A Scratch must not be shared by concurrent calls, and the Result
// returned by its OneD — including Assign, Means and Sizes — is owned by
// the scratch and valid only until the next call on it. Callers keeping a
// clustering must copy those slices out first.
type Scratch struct {
	sorted []float64
	means  []float64
	sums   []float64
	assign []int
	sizes  []int
	out    [][]float64
	res    Result
}

// OneD is the package-level OneD computing in s's buffers. See the
// Scratch ownership contract for the returned Result's lifetime.
func (s *Scratch) OneD(data []float64, k, maxIter int) (*Result, error) {
	return oneD(data, k, maxIter, nil, s)
}

// growFloats returns s resized to length n, reallocating only when the
// capacity is insufficient. Contents are unspecified.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// growInts is growFloats for int slices.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func oneD(data []float64, k, maxIter int, rng *prng, s *Scratch) (*Result, error) {
	n := len(data)
	if k < 1 {
		return nil, fmt.Errorf("kmeans: OneD needs k >= 1, got %d", k)
	}
	if k > n {
		return nil, fmt.Errorf("kmeans: OneD k=%d exceeds %d items", k, n)
	}
	if maxIter <= 0 {
		maxIter = DefaultMaxIterations
	}

	var means, sums []float64
	var assign, sizes []int
	if s != nil {
		s.means = growFloats(s.means, k)
		s.sums = growFloats(s.sums, k)
		s.assign = growInts(s.assign, n)
		s.sizes = growInts(s.sizes, k)
		means, sums, assign, sizes = s.means, s.sums, s.assign, s.sizes
	} else {
		means = make([]float64, k)
		sums = make([]float64, k)
		assign = make([]int, n)
		sizes = make([]int, k)
	}
	if rng != nil {
		// Forgy: k distinct positions drawn at random.
		perm := rng.perm(n)
		for j := 0; j < k; j++ {
			means[j] = data[perm[j]]
		}
	} else {
		// Sorted equal-interval initialization (Section 4.1): with sorted
		// feature values, the j-th cluster mean starts at position
		// ⌊n/k·j⌋ (clamped), giving means spread across the empirical
		// distribution.
		var sorted []float64
		if s != nil {
			s.sorted = growFloats(s.sorted, n)
			sorted = s.sorted
		} else {
			sorted = make([]float64, n)
		}
		copy(sorted, data)
		sort.Float64s(sorted)
		for j := 0; j < k; j++ {
			idx := (n * j) / k
			// Center each interval rather than taking its left edge so
			// k=1 starts at the median-ish value and extremes are not
			// wasted.
			idx += n / (2 * k)
			if idx >= n {
				idx = n - 1
			}
			means[j] = sorted[idx]
		}
	}
	sort.Float64s(means)

	// A dirty reused assign slice is safe: the first sweep stores every
	// item's true nearest cluster regardless of prior contents, and the
	// convergence check ignores the first sweep's changed flag.
	var wcss float64
	iter := 0
	for ; iter < maxIter; iter++ {
		changed := false
		for c := range sums {
			sums[c] = 0
			sizes[c] = 0
		}
		// In 1-D the means start sorted and Lloyd updates keep them sorted
		// (each new mean lies strictly between its cluster's boundary
		// midpoints) except when an empty cluster's stale mean is overtaken
		// by a moving neighbor. While sortedness holds, the nearest mean is
		// found by binary search in O(log k) instead of the O(k) scan; the
		// search reproduces the scan's result exactly — including its
		// first-index tie-breaking at midpoints and among duplicate means —
		// so pooled, scanned and searched runs are all bit-identical
		// (docs/NUMERICS.md § determinism).
		sortedMeans := true
		for c := 1; c < k; c++ {
			if means[c-1] > means[c] {
				sortedMeans = false
				break
			}
		}
		wcss = 0
		for i, v := range data {
			best := -1
			var bestD float64
			if sortedMeans && v == v {
				// Most points keep their cluster between Lloyd rounds.
				// The previous assignment is accepted without a search
				// when both neighbor distances are strictly larger: over
				// sorted means the squared distance is unimodal in the
				// index, so strictly-greater neighbors certify c as the
				// unique (hence leftmost) global minimizer. Any tie or
				// out-of-range/stale c falls through to the exact search,
				// keeping results bit-identical.
				if c := assign[i]; uint(c) < uint(k) {
					dc := (v - means[c]) * (v - means[c])
					if (c == 0 || (v-means[c-1])*(v-means[c-1]) > dc) &&
						(c == k-1 || (v-means[c+1])*(v-means[c+1]) > dc) {
						best, bestD = c, dc
					}
				}
				if best < 0 {
					best = nearestSorted(means, v)
					bestD = (v - means[best]) * (v - means[best])
				}
			} else {
				best, bestD = 0, math.Inf(1)
				for c, m := range means {
					d := (v - m) * (v - m)
					if d < bestD {
						best, bestD = c, d
					}
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
			sums[best] += v
			sizes[best]++
			wcss += bestD
		}
		if iter > 0 && !changed {
			break
		}
		for c := range means {
			if sizes[c] > 0 {
				means[c] = sums[c] / float64(sizes[c])
			}
		}
	}

	return packResult(k, iter, wcss, means, assign, sizes, s)
}

// nearestSorted returns the index the linear nearest-centroid scan would
// pick for value v given ascending means: the lowest index minimizing
// (v-m)². Ties — v exactly on a midpoint, or duplicate mean values —
// resolve to the lowest index, matching the scan's strict `d < bestD`
// update. means must be sorted ascending and v must not be NaN.
func nearestSorted(means []float64, v float64) int {
	// First index with means[j] >= v — sort.SearchFloat64s semantics,
	// hand-rolled because the per-point closure call dominates the Lloyd
	// loop otherwise.
	lo, hi := 0, len(means)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if means[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	j := lo
	switch {
	case j == 0:
		return 0
	case j == len(means):
		j = len(means) - 1
	default:
		dlo, dhi := v-means[j-1], means[j]-v
		if dlo*dlo <= dhi*dhi {
			j--
		}
	}
	// Duplicate means: the scan awards every member of an equal run to its
	// first index.
	for j > 0 && means[j-1] == means[j] {
		j--
	}
	return j
}

// packResult packages a converged Lloyd state into a Result, reusing the
// scratch's output buffers when present.
func packResult(k, iter int, wcss float64, means []float64, assign, sizes []int, s *Scratch) (*Result, error) {
	if s != nil {
		if cap(s.out) < k {
			s.out = make([][]float64, k)
		}
		s.out = s.out[:k]
		for c := range means {
			s.out[c] = means[c : c+1]
		}
		s.res = Result{
			Assign:     assign,
			Means:      s.out,
			Sizes:      sizes,
			WCSS:       wcss,
			Iterations: iter,
			K:          k,
		}
		return &s.res, nil
	}
	res := &Result{
		Assign:     assign,
		Means:      make([][]float64, k),
		Sizes:      sizes,
		WCSS:       wcss,
		Iterations: iter,
		K:          k,
	}
	for c := range means {
		res.Means[c] = []float64{means[c]}
	}
	return res, nil
}
