package kmeans

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOneDTwoObviousClusters(t *testing.T) {
	data := []float64{0.1, 0.2, 0.15, 10.1, 10.2, 10.3}
	res, err := OneD(data, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	low := res.Assign[0]
	for i := 0; i < 3; i++ {
		if res.Assign[i] != low {
			t.Fatalf("low cluster split: %v", res.Assign)
		}
	}
	for i := 3; i < 6; i++ {
		if res.Assign[i] == low {
			t.Fatalf("clusters not separated: %v", res.Assign)
		}
	}
	// Means should be close to the group averages.
	got := []float64{res.Mean1(0), res.Mean1(1)}
	if got[0] > got[1] {
		got[0], got[1] = got[1], got[0]
	}
	if math.Abs(got[0]-0.15) > 1e-9 || math.Abs(got[1]-10.2) > 1e-9 {
		t.Fatalf("means = %v", got)
	}
}

func TestOneDDeterministic(t *testing.T) {
	data := []float64{5, 3, 9, 1, 7, 2, 8, 4, 6, 0}
	a, err := OneD(data, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OneD(data, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("OneD should be deterministic")
		}
	}
}

func TestOneDKEqualsN(t *testing.T) {
	data := []float64{1, 2, 3}
	res, err := OneD(data, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.WCSS > 1e-12 {
		t.Fatalf("k=n should have zero WCSS, got %v", res.WCSS)
	}
}

func TestOneDKEqualsOne(t *testing.T) {
	data := []float64{1, 2, 3, 4}
	res, err := OneD(data, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Mean1(0)-2.5) > 1e-12 {
		t.Fatalf("k=1 mean = %v, want 2.5", res.Mean1(0))
	}
	if res.Sizes[0] != 4 {
		t.Fatalf("k=1 size = %d, want 4", res.Sizes[0])
	}
}

func TestOneDErrors(t *testing.T) {
	if _, err := OneD([]float64{1}, 0, 0); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := OneD([]float64{1}, 2, 0); err == nil {
		t.Fatal("k>n should error")
	}
}

func TestOneDIdenticalValues(t *testing.T) {
	data := []float64{7, 7, 7, 7}
	res, err := OneD(data, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.WCSS != 0 {
		t.Fatalf("identical data should cluster with zero WCSS, got %v", res.WCSS)
	}
}

func TestOneDDoesNotMutateInput(t *testing.T) {
	data := []float64{3, 1, 2}
	if _, err := OneD(data, 2, 0); err != nil {
		t.Fatal(err)
	}
	if data[0] != 3 || data[1] != 1 || data[2] != 2 {
		t.Fatalf("input mutated: %v", data)
	}
}

// Property: every item is assigned to its nearest mean at convergence.
func TestOneDNearestMeanInvariant(t *testing.T) {
	f := func(raw []float64) bool {
		data := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				data = append(data, math.Mod(v, 1000))
			}
		}
		if len(data) < 4 {
			return true
		}
		res, err := OneD(data, 3, 0)
		if err != nil {
			return false
		}
		for i, v := range data {
			have := (v - res.Mean1(res.Assign[i])) * (v - res.Mean1(res.Assign[i]))
			for c := 0; c < res.K; c++ {
				if res.Sizes[c] == 0 {
					continue
				}
				d := (v - res.Mean1(c)) * (v - res.Mean1(c))
				if d < have-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOneDRandomInitConvergesToo(t *testing.T) {
	data := []float64{0.1, 0.2, 0.15, 10.1, 10.2, 10.3}
	res, err := OneDRandomInit(data, 2, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assign[0] != res.Assign[1] || res.Assign[3] != res.Assign[4] || res.Assign[0] == res.Assign[3] {
		t.Fatalf("random init failed to separate: %v", res.Assign)
	}
	// Deterministic in seed.
	again, err := OneDRandomInit(data, 2, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Assign {
		if res.Assign[i] != again.Assign[i] {
			t.Fatal("same seed should give identical result")
		}
	}
	// Sorted init should never do worse on WCSS than a bad random start
	// is *capable* of doing (sorted ≤ worst random over seeds).
	sorted, err := OneD(data, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for seed := uint64(1); seed <= 10; seed++ {
		r, err := OneDRandomInit(data, 2, 0, seed)
		if err != nil {
			t.Fatal(err)
		}
		if r.WCSS > worst {
			worst = r.WCSS
		}
	}
	if sorted.WCSS > worst+1e-12 {
		t.Fatalf("sorted WCSS %v worse than the worst random start %v", sorted.WCSS, worst)
	}
}

func TestNDSeparatesGaussians(t *testing.T) {
	rng := prng{state: 42}
	var pts [][]float64
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	for c := 0; c < 3; c++ {
		for i := 0; i < 40; i++ {
			pts = append(pts, []float64{
				centers[c][0] + rng.float64() - 0.5,
				centers[c][1] + rng.float64() - 0.5,
			})
		}
	}
	res, err := ND(pts, 3, NDOptions{Seed: 1, Restarts: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Every ground-truth group should be pure.
	for c := 0; c < 3; c++ {
		want := res.Assign[c*40]
		for i := 0; i < 40; i++ {
			if res.Assign[c*40+i] != want {
				t.Fatalf("group %d split across clusters", c)
			}
		}
	}
	if res.WCSS > 100 {
		t.Fatalf("WCSS = %v unexpectedly high", res.WCSS)
	}
}

func TestNDDeterministicForSeed(t *testing.T) {
	pts := [][]float64{{1, 1}, {2, 2}, {9, 9}, {10, 10}, {1, 2}, {9, 10}}
	a, err := ND(pts, 2, NDOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ND(pts, 2, NDOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("ND with the same seed should be identical")
		}
	}
}

func TestNDForgySeeding(t *testing.T) {
	pts := [][]float64{{0}, {0.1}, {10}, {10.1}}
	res, err := ND(pts, 2, NDOptions{Seeding: SeedForgy, Seed: 3, Restarts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assign[0] != res.Assign[1] || res.Assign[2] != res.Assign[3] || res.Assign[0] == res.Assign[2] {
		t.Fatalf("Forgy run failed to separate: %v", res.Assign)
	}
}

func TestNDErrors(t *testing.T) {
	if _, err := ND(nil, 1, NDOptions{}); err == nil {
		t.Fatal("empty input should error")
	}
	if _, err := ND([][]float64{{1}, {1, 2}}, 1, NDOptions{}); err == nil {
		t.Fatal("ragged input should error")
	}
	if _, err := ND([][]float64{{1}}, 0, NDOptions{}); err == nil {
		t.Fatal("k=0 should error")
	}
}

func TestNDRestartsImproveOrEqual(t *testing.T) {
	rng := prng{state: 99}
	var pts [][]float64
	for i := 0; i < 50; i++ {
		pts = append(pts, []float64{rng.float64() * 100, rng.float64() * 100})
	}
	one, err := ND(pts, 5, NDOptions{Seed: 2, Restarts: 1})
	if err != nil {
		t.Fatal(err)
	}
	many, err := ND(pts, 5, NDOptions{Seed: 2, Restarts: 8})
	if err != nil {
		t.Fatal(err)
	}
	if many.WCSS > one.WCSS+1e-9 {
		t.Fatalf("more restarts worsened WCSS: %v > %v", many.WCSS, one.WCSS)
	}
}

func TestPermIsPermutation(t *testing.T) {
	p := prng{state: 11}
	perm := p.perm(20)
	seen := make([]bool, 20)
	for _, v := range perm {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", perm)
		}
		seen[v] = true
	}
}
