package kmeans

import (
	"context"
	"fmt"
	"math"

	"roadpart/internal/obs"
	"roadpart/internal/parallel"
)

// ND run accounting: restarts fanned out and Lloyd iterations consumed
// across them. Both totals are deterministic for a given input and seed
// (worker count never changes them).
var (
	ndRestarts = obs.Default().Counter("roadpart_kmeans_restarts_total",
		"k-means restarts executed on spectral embeddings.")
	ndIterations = obs.Default().Counter("roadpart_kmeans_iterations_total",
		"Lloyd iterations consumed across all k-means restarts.")
)

// Seeding selects the initialization strategy for ND.
type Seeding int

const (
	// SeedPlusPlus is k-means++: each new seed is drawn with probability
	// proportional to its squared distance from the nearest existing seed.
	SeedPlusPlus Seeding = iota
	// SeedForgy picks k distinct points uniformly at random.
	SeedForgy
)

// NDOptions configures the d-dimensional solver. The zero value selects
// k-means++ seeding, DefaultMaxIterations, a single restart and seed 0.
type NDOptions struct {
	Seeding  Seeding
	MaxIter  int
	Restarts int    // best-of-n restarts by WCSS; 0 means 1
	Seed     uint64 // deterministic RNG seed
	// Workers bounds the goroutines running restarts concurrently:
	// 0 selects GOMAXPROCS, 1 forces serial. Every restart draws its RNG
	// from a SplitMix64 stream derived from Seed before any restart runs,
	// so the result is bit-identical for every worker count.
	Workers int
}

// ND clusters d-dimensional points into k clusters with Lloyd's algorithm.
// points[i] must all have the same dimension. The best result (lowest WCSS)
// across opts.Restarts runs is returned, ties broken toward the lowest
// restart index. The input is not modified.
func ND(points [][]float64, k int, opts NDOptions) (*Result, error) {
	return NDCtx(context.Background(), points, k, opts)
}

// NDCtx is ND with cooperative cancellation: restarts observe ctx between
// runs (one restart — seeding plus its Lloyd iterations — is the
// cancellation grain) and NDCtx returns ctx's error once it is done.
// With an uncancelled ctx the result is bit-identical to ND.
func NDCtx(ctx context.Context, points [][]float64, k int, opts NDOptions) (*Result, error) {
	n := len(points)
	if k < 1 {
		return nil, fmt.Errorf("kmeans: ND needs k >= 1, got %d", k)
	}
	if k > n {
		return nil, fmt.Errorf("kmeans: ND k=%d exceeds %d points", k, n)
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("kmeans: ND point %d has dim %d, want %d", i, len(p), dim)
		}
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = DefaultMaxIterations
	}
	restarts := opts.Restarts
	if restarts <= 0 {
		restarts = 1
	}

	// Give each restart its own RNG up front, then run restarts
	// concurrently. Restart r's generator depends only on (Seed, r) —
	// never on which goroutine runs it — so serial and parallel execution
	// produce the same per-restart results, and the index-ordered
	// reduction below picks the same winner.
	//
	// The per-restart states reproduce the historical sequential stream
	// exactly: seeding consumes one splitmix64 draw per centroid pick —
	// k for k-means++, n−1 for a Forgy permutation — Lloyd iteration
	// consumes none, and each draw advances the state by the fixed
	// increment, so restart r of the old one-stream loop started at
	// base + r·draws·increment. Any future seeding strategy with
	// data-dependent draw counts must switch to split seeds instead.
	draws := uint64(k)
	if opts.Seeding == SeedForgy {
		draws = uint64(n - 1)
	}
	base := opts.Seed ^ 0x5851f42d4c957f2d
	runs := make([]ndRun, restarts)
	err := parallel.ForCtx(ctx, restarts, opts.Workers, func(r int) {
		rng := prng{state: base + uint64(r)*draws*prngIncrement}
		s := getNDScratch()
		s.reset(n, k, dim)
		seedInto(points, k, opts.Seeding, &rng, s)
		wcss, iters := lloydInto(points, s.means, maxIter, s.assign, s.sizes, s.sums)
		runs[r] = ndRun{s: s, wcss: wcss, iters: iters}
	})
	if err != nil {
		for _, run := range runs {
			if run.s != nil {
				putNDScratch(run.s)
			}
		}
		return nil, fmt.Errorf("kmeans: ND interrupted: %w", err)
	}
	// Index-ordered fold: restart 0 wins ties (and NaN WCSS never
	// displaces it), exactly as the historical sequential reduction did.
	bestIdx := 0
	var iters uint64
	for r := range runs {
		iters += uint64(runs[r].iters)
		if runs[r].wcss < runs[bestIdx].wcss {
			bestIdx = r
		}
	}
	// Materialize the winner into fresh slices — the Result outlives the
	// pooled scratches — then return every scratch for reuse.
	win := runs[bestIdx]
	out := &Result{
		Assign:     append([]int(nil), win.s.assign...),
		Means:      make([][]float64, k),
		Sizes:      append([]int(nil), win.s.sizes...),
		WCSS:       win.wcss,
		Iterations: win.iters,
		K:          k,
	}
	for c := 0; c < k; c++ {
		out.Means[c] = append([]float64(nil), win.s.means[c]...)
	}
	for _, run := range runs {
		putNDScratch(run.s)
	}
	ndRestarts.Add(uint64(restarts))
	ndIterations.Add(iters)
	return out, nil
}

// ndRun records one restart's outcome; its scratch holds the assignment,
// sizes and centroids until the winner is materialized.
type ndRun struct {
	s     *ndScratch
	wcss  float64
	iters int
}

// seedInto writes the initial centroids into sc.means, drawing exactly
// the same RNG stream as the historical allocating seeder (one draw per
// centroid pick) so pooling cannot change which points are chosen.
func seedInto(points [][]float64, k int, s Seeding, rng *prng, sc *ndScratch) {
	n := len(points)
	means := sc.means
	switch s {
	case SeedForgy:
		rng.permInto(sc.perm)
		for i := 0; i < k; i++ {
			copy(means[i], points[sc.perm[i]])
		}
	default: // SeedPlusPlus
		copy(means[0], points[rng.intn(n)])
		d2 := sc.d2
		for used := 1; used < k; used++ {
			var total float64
			for i, p := range points {
				d := math.Inf(1)
				for _, m := range means[:used] {
					if v := sqDist(p, m); v < d {
						d = v
					}
				}
				d2[i] = d
				total += d
			}
			var next int
			if total == 0 {
				next = rng.intn(n) // all points coincide with seeds
			} else {
				target := rng.float64() * total
				var cum float64
				next = n - 1
				for i, d := range d2 {
					cum += d
					if cum >= target {
						next = i
						break
					}
				}
			}
			copy(means[used], points[next])
		}
	}
}

// assignStep performs one Lloyd assignment sweep: it rebuilds sizes and
// per-cluster coordinate sums, updates assign, and returns the sweep's
// WCSS and whether any assignment moved. It allocates nothing — this is
// the k-means assignment allocation-free pin of docs/PERFORMANCE.md.
func assignStep(points, means [][]float64, assign, sizes []int, sums [][]float64) (wcss float64, changed bool) {
	for c := range sums {
		sizes[c] = 0
		for d := range sums[c] {
			sums[c][d] = 0
		}
	}
	for i, p := range points {
		best, bestD := 0, math.Inf(1)
		for c, m := range means {
			if d := sqDist(p, m); d < bestD {
				best, bestD = c, d
			}
		}
		if assign[i] != best {
			assign[i] = best
			changed = true
		}
		sizes[best]++
		for d, v := range p {
			sums[best][d] += v
		}
		wcss += bestD
	}
	return wcss, changed
}

// lloydInto runs the assignment/update loop to convergence in the
// caller's buffers. assign may be dirty: the first sweep stores every
// point's true nearest centroid regardless of prior contents, and the
// convergence check ignores the first sweep's changed flag.
func lloydInto(points, means [][]float64, maxIter int, assign, sizes []int, sums [][]float64) (wcss float64, iter int) {
	for ; iter < maxIter; iter++ {
		var changed bool
		wcss, changed = assignStep(points, means, assign, sizes, sums)
		if iter > 0 && !changed {
			break
		}
		for c := range means {
			if sizes[c] == 0 {
				continue // empty cluster keeps its previous centroid
			}
			for d := range means[c] {
				means[c][d] = sums[c][d] / float64(sizes[c])
			}
		}
	}
	return wcss, iter
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// prng is a small deterministic generator (splitmix64 core).
type prng struct{ state uint64 }

// prngIncrement is the fixed state advance per draw; ND relies on it to
// fast-forward the stream to each restart's starting point.
const prngIncrement = 0x9e3779b97f4a7c15

func (p *prng) next() uint64 {
	p.state += prngIncrement
	z := p.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (p *prng) float64() float64 { return float64(p.next()>>11) / (1 << 53) }

func (p *prng) intn(n int) int { return int(p.next() % uint64(n)) }

func (p *prng) perm(n int) []int {
	out := make([]int, n)
	p.permInto(out)
	return out
}

// permInto fills out with a Fisher–Yates shuffle of 0..len(out)-1,
// consuming exactly the draws perm would. It allocates nothing.
func (p *prng) permInto(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := p.intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}
