package kmeans

import (
	"context"
	"fmt"
	"math"

	"roadpart/internal/obs"
	"roadpart/internal/parallel"
)

// ND run accounting: restarts fanned out and Lloyd iterations consumed
// across them. Both totals are deterministic for a given input and seed
// (worker count never changes them).
var (
	ndRestarts = obs.Default().Counter("roadpart_kmeans_restarts_total",
		"k-means restarts executed on spectral embeddings.")
	ndIterations = obs.Default().Counter("roadpart_kmeans_iterations_total",
		"Lloyd iterations consumed across all k-means restarts.")
)

// Seeding selects the initialization strategy for ND.
type Seeding int

const (
	// SeedPlusPlus is k-means++: each new seed is drawn with probability
	// proportional to its squared distance from the nearest existing seed.
	SeedPlusPlus Seeding = iota
	// SeedForgy picks k distinct points uniformly at random.
	SeedForgy
)

// NDOptions configures the d-dimensional solver. The zero value selects
// k-means++ seeding, DefaultMaxIterations, a single restart and seed 0.
type NDOptions struct {
	Seeding  Seeding
	MaxIter  int
	Restarts int    // best-of-n restarts by WCSS; 0 means 1
	Seed     uint64 // deterministic RNG seed
	// Workers bounds the goroutines running restarts concurrently:
	// 0 selects GOMAXPROCS, 1 forces serial. Every restart draws its RNG
	// from a SplitMix64 stream derived from Seed before any restart runs,
	// so the result is bit-identical for every worker count.
	Workers int
}

// ND clusters d-dimensional points into k clusters with Lloyd's algorithm.
// points[i] must all have the same dimension. The best result (lowest WCSS)
// across opts.Restarts runs is returned, ties broken toward the lowest
// restart index. The input is not modified.
func ND(points [][]float64, k int, opts NDOptions) (*Result, error) {
	return NDCtx(context.Background(), points, k, opts)
}

// NDCtx is ND with cooperative cancellation: restarts observe ctx between
// runs (one restart — seeding plus its Lloyd iterations — is the
// cancellation grain) and NDCtx returns ctx's error once it is done.
// With an uncancelled ctx the result is bit-identical to ND.
func NDCtx(ctx context.Context, points [][]float64, k int, opts NDOptions) (*Result, error) {
	n := len(points)
	if k < 1 {
		return nil, fmt.Errorf("kmeans: ND needs k >= 1, got %d", k)
	}
	if k > n {
		return nil, fmt.Errorf("kmeans: ND k=%d exceeds %d points", k, n)
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("kmeans: ND point %d has dim %d, want %d", i, len(p), dim)
		}
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = DefaultMaxIterations
	}
	restarts := opts.Restarts
	if restarts <= 0 {
		restarts = 1
	}

	// Give each restart its own RNG up front, then run restarts
	// concurrently. Restart r's generator depends only on (Seed, r) —
	// never on which goroutine runs it — so serial and parallel execution
	// produce the same per-restart results, and the index-ordered
	// reduction below picks the same winner.
	//
	// The per-restart states reproduce the historical sequential stream
	// exactly: seeding consumes one splitmix64 draw per centroid pick —
	// k for k-means++, n−1 for a Forgy permutation — Lloyd iteration
	// consumes none, and each draw advances the state by the fixed
	// increment, so restart r of the old one-stream loop started at
	// base + r·draws·increment. Any future seeding strategy with
	// data-dependent draw counts must switch to split seeds instead.
	draws := uint64(k)
	if opts.Seeding == SeedForgy {
		draws = uint64(n - 1)
	}
	base := opts.Seed ^ 0x5851f42d4c957f2d
	results := make([]*Result, restarts)
	if err := parallel.ForCtx(ctx, restarts, opts.Workers, func(r int) {
		rng := prng{state: base + uint64(r)*draws*prngIncrement}
		means := seed(points, k, opts.Seeding, &rng)
		results[r] = lloyd(points, means, k, maxIter)
	}); err != nil {
		return nil, fmt.Errorf("kmeans: ND interrupted: %w", err)
	}
	best := results[0]
	var iters uint64
	for _, res := range results {
		iters += uint64(res.Iterations)
		if res.WCSS < best.WCSS {
			best = res
		}
	}
	ndRestarts.Add(uint64(restarts))
	ndIterations.Add(iters)
	return best, nil
}

// seed produces the initial centroids.
func seed(points [][]float64, k int, s Seeding, rng *prng) [][]float64 {
	n := len(points)
	dim := len(points[0])
	means := make([][]float64, 0, k)
	switch s {
	case SeedForgy:
		perm := rng.perm(n)
		for i := 0; i < k; i++ {
			means = append(means, dup(points[perm[i]]))
		}
	default: // SeedPlusPlus
		means = append(means, dup(points[rng.intn(n)]))
		d2 := make([]float64, n)
		for len(means) < k {
			var total float64
			for i, p := range points {
				d := math.Inf(1)
				for _, m := range means {
					if v := sqDist(p, m); v < d {
						d = v
					}
				}
				d2[i] = d
				total += d
			}
			var next int
			if total == 0 {
				next = rng.intn(n) // all points coincide with seeds
			} else {
				target := rng.float64() * total
				var cum float64
				next = n - 1
				for i, d := range d2 {
					cum += d
					if cum >= target {
						next = i
						break
					}
				}
			}
			means = append(means, dup(points[next]))
		}
	}
	_ = dim
	return means
}

// lloyd runs the assignment/update loop to convergence.
func lloyd(points [][]float64, means [][]float64, k, maxIter int) *Result {
	n := len(points)
	dim := len(points[0])
	assign := make([]int, n)
	sizes := make([]int, k)
	sums := make([][]float64, k)
	for c := range sums {
		sums[c] = make([]float64, dim)
	}
	var wcss float64
	iter := 0
	for ; iter < maxIter; iter++ {
		changed := false
		for c := 0; c < k; c++ {
			sizes[c] = 0
			for d := range sums[c] {
				sums[c][d] = 0
			}
		}
		wcss = 0
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, m := range means {
				if d := sqDist(p, m); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
			sizes[best]++
			for d, v := range p {
				sums[best][d] += v
			}
			wcss += bestD
		}
		if iter > 0 && !changed {
			break
		}
		for c := 0; c < k; c++ {
			if sizes[c] == 0 {
				continue // empty cluster keeps its previous centroid
			}
			for d := range means[c] {
				means[c][d] = sums[c][d] / float64(sizes[c])
			}
		}
	}
	return &Result{
		Assign:     assign,
		Means:      means,
		Sizes:      sizes,
		WCSS:       wcss,
		Iterations: iter,
		K:          k,
	}
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

func dup(p []float64) []float64 {
	c := make([]float64, len(p))
	copy(c, p)
	return c
}

// prng is a small deterministic generator (splitmix64 core).
type prng struct{ state uint64 }

// prngIncrement is the fixed state advance per draw; ND relies on it to
// fast-forward the stream to each restart's starting point.
const prngIncrement = 0x9e3779b97f4a7c15

func (p *prng) next() uint64 {
	p.state += prngIncrement
	z := p.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (p *prng) float64() float64 { return float64(p.next()>>11) / (1 << 53) }

func (p *prng) intn(n int) int { return int(p.next() % uint64(n)) }

func (p *prng) perm(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := p.intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}
