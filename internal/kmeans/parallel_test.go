package kmeans

import "testing"

// clusterPoints builds a deterministic point cloud with enough structure
// that different restarts genuinely converge to different optima.
func clusterPoints(n int) [][]float64 {
	rng := prng{state: 0xfeed}
	pts := make([][]float64, 0, n)
	for i := 0; i < n; i++ {
		c := float64(i % 5)
		pts = append(pts, []float64{
			c*4 + rng.float64(),
			c*3 - rng.float64(),
			rng.float64() * 2,
		})
	}
	return pts
}

// TestNDWorkersBitIdentical is the tentpole determinism guarantee at the
// kmeans layer: the same seed produces the same assignment, means, sizes
// and WCSS whether the restarts run serial or on 8 workers.
func TestNDWorkersBitIdentical(t *testing.T) {
	pts := clusterPoints(300)
	ref, err := ND(pts, 5, NDOptions{Seed: 17, Restarts: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 2, 8} {
		got, err := ND(pts, 5, NDOptions{Seed: 17, Restarts: 7, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if got.WCSS != ref.WCSS {
			t.Fatalf("workers=%d: WCSS %v != serial %v", w, got.WCSS, ref.WCSS)
		}
		if got.Iterations != ref.Iterations {
			t.Fatalf("workers=%d: iterations %d != serial %d", w, got.Iterations, ref.Iterations)
		}
		for i := range ref.Assign {
			if got.Assign[i] != ref.Assign[i] {
				t.Fatalf("workers=%d: assignment differs at point %d", w, i)
			}
		}
		for c := range ref.Means {
			if got.Sizes[c] != ref.Sizes[c] {
				t.Fatalf("workers=%d: size[%d] %d != %d", w, c, got.Sizes[c], ref.Sizes[c])
			}
			for d := range ref.Means[c] {
				if got.Means[c][d] != ref.Means[c][d] {
					t.Fatalf("workers=%d: mean[%d][%d] %v != %v", w, c, d, got.Means[c][d], ref.Means[c][d])
				}
			}
		}
	}
}

// TestNDRestartSeedsIndependent pins the split-seed property: the first
// restart of a Restarts=N run is the same as a Restarts=1 run, so more
// restarts can only improve WCSS (the reduction keeps restart 0 on ties).
func TestNDRestartSeedsIndependent(t *testing.T) {
	pts := clusterPoints(120)
	one, err := ND(pts, 4, NDOptions{Seed: 3, Restarts: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, restarts := range []int{2, 5, 9} {
		many, err := ND(pts, 4, NDOptions{Seed: 3, Restarts: restarts})
		if err != nil {
			t.Fatal(err)
		}
		if many.WCSS > one.WCSS {
			t.Fatalf("restarts=%d worsened WCSS: %v > %v (restart 0 must be shared)", restarts, many.WCSS, one.WCSS)
		}
	}
}

// TestNDForgyWorkersBitIdentical covers the Forgy seeding path too.
func TestNDForgyWorkersBitIdentical(t *testing.T) {
	pts := clusterPoints(90)
	a, err := ND(pts, 3, NDOptions{Seeding: SeedForgy, Seed: 11, Restarts: 6, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ND(pts, 3, NDOptions{Seeding: SeedForgy, Seed: 11, Restarts: 6, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.WCSS != b.WCSS {
		t.Fatalf("WCSS %v != %v", a.WCSS, b.WCSS)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("assignment differs at %d", i)
		}
	}
}
