package kmeans

import (
	"sync"

	"roadpart/internal/obs"
)

// ndScratch holds one restart's working set — centroids, per-cluster
// sums, squared distances, the Forgy permutation and the assignment —
// backed by flat arrays so repeated ND calls reuse memory instead of
// reallocating O(n + k·dim) per restart.
type ndScratch struct {
	meansBack []float64   // k×dim centroid backing store
	means     [][]float64 // row views into meansBack
	sumsBack  []float64   // k×dim per-cluster sum backing store
	sums      [][]float64 // row views into sumsBack
	d2        []float64   // k-means++ squared distances, length n
	perm      []int       // Forgy permutation, length n
	assign    []int       // point → cluster, length n
	sizes     []int       // cluster populations, length k
}

// reset sizes the scratch for n points, k clusters and dim dimensions,
// growing buffers as needed. Contents are unspecified after reset; the
// seeding and Lloyd passes overwrite everything they read.
func (s *ndScratch) reset(n, k, dim int) {
	s.meansBack = growFloats(s.meansBack, k*dim)
	s.sumsBack = growFloats(s.sumsBack, k*dim)
	if cap(s.means) < k {
		s.means = make([][]float64, k)
		s.sums = make([][]float64, k)
	}
	s.means = s.means[:k]
	s.sums = s.sums[:k]
	for c := 0; c < k; c++ {
		s.means[c] = s.meansBack[c*dim : (c+1)*dim]
		s.sums[c] = s.sumsBack[c*dim : (c+1)*dim]
	}
	s.d2 = growFloats(s.d2, n)
	s.perm = growInts(s.perm, n)
	s.assign = growInts(s.assign, n)
	s.sizes = growInts(s.sizes, k)
}

// footprint returns the scratch's buffer capacity in bytes, for the
// pool's bytes-reused accounting.
func (s *ndScratch) footprint() int {
	words := cap(s.meansBack) + cap(s.sumsBack) + cap(s.d2) +
		cap(s.perm) + cap(s.assign) + cap(s.sizes)
	return 8 * words
}

// Restart scratch pool: each concurrent restart borrows its own scratch,
// so the steady-state population is bounded by the worker count.
var (
	ndPool  sync.Pool
	ndTally = obs.NewPoolTally("kmeans_nd")
)

func getNDScratch() *ndScratch {
	if s, ok := ndPool.Get().(*ndScratch); ok {
		ndTally.Hit(s.footprint())
		return s
	}
	ndTally.Miss()
	return &ndScratch{}
}

func putNDScratch(s *ndScratch) {
	ndPool.Put(s)
}
