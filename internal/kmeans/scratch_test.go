package kmeans

import (
	"math"
	"testing"
)

func testPoints(n, dim int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		for d := range p {
			p[d] = math.Sin(float64(i*dim+d)) * float64(1+i%5)
		}
		pts[i] = p
	}
	return pts
}

// TestScratchOneDMatchesFresh pins the scratch path bit-for-bit against
// scratch-free OneD, including across reuse with mismatched sizes so a
// dirty scratch is exercised.
func TestScratchOneDMatchesFresh(t *testing.T) {
	var s Scratch
	data := make([]float64, 400)
	for i := range data {
		data[i] = math.Cos(float64(i)) * 10
	}
	// Larger first call leaves garbage behind for the smaller ones.
	for _, cfg := range []struct{ n, k int }{{400, 9}, {150, 4}, {400, 9}, {37, 2}} {
		want, err := OneD(data[:cfg.n], cfg.k, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.OneD(data[:cfg.n], cfg.k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got.WCSS != want.WCSS || got.Iterations != want.Iterations || got.K != want.K {
			t.Fatalf("n=%d k=%d: scalar mismatch: %+v vs %+v", cfg.n, cfg.k, got, want)
		}
		for i := range want.Assign {
			if got.Assign[i] != want.Assign[i] {
				t.Fatalf("n=%d k=%d: assign[%d] %d != %d", cfg.n, cfg.k, i, got.Assign[i], want.Assign[i])
			}
		}
		for c := range want.Means {
			if got.Mean1(c) != want.Mean1(c) || got.Sizes[c] != want.Sizes[c] {
				t.Fatalf("n=%d k=%d cluster %d: mean/size mismatch", cfg.n, cfg.k, c)
			}
		}
	}
}

// TestScratchOneDSteadyStateAllocFree pins a warmed-up scratch clustering
// at zero allocations per call (the Result is scratch-owned).
func TestScratchOneDSteadyStateAllocFree(t *testing.T) {
	var s Scratch
	data := make([]float64, 256)
	for i := range data {
		data[i] = float64(i%17) * 1.5
	}
	if _, err := s.OneD(data, 5, 0); err != nil { // warm up
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := s.OneD(data, 5, 0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Scratch.OneD allocates %v per call, want 0", allocs)
	}
}

// TestAssignStepAllocFree pins the ND assignment sweep — the inner loop
// of every Lloyd iteration — at zero allocations. This is one of the
// three allocation-free hot-path pins of docs/PERFORMANCE.md.
func TestAssignStepAllocFree(t *testing.T) {
	pts := testPoints(300, 4)
	var s ndScratch
	s.reset(len(pts), 6, 4)
	rng := prng{state: 1}
	seedInto(pts, 6, SeedPlusPlus, &rng, &s)
	allocs := testing.AllocsPerRun(50, func() {
		assignStep(pts, s.means, s.assign, s.sizes, s.sums)
	})
	if allocs != 0 {
		t.Fatalf("assignStep allocates %v per call, want 0", allocs)
	}
}

// TestNDPooledDeterministic runs the same pooled ND problem repeatedly
// (warming the restart-scratch pool) and across worker counts; every run
// must be bit-identical — pooled dirty scratches can never leak state
// into results.
func TestNDPooledDeterministic(t *testing.T) {
	pts := testPoints(120, 3)
	opts := NDOptions{Restarts: 6, Seed: 11, Workers: 1}
	want, err := ND(pts, 5, opts)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 4; trial++ {
		o := opts
		o.Workers = 1 + trial%3*3 // 1, 4, 7, 1
		got, err := ND(pts, 5, o)
		if err != nil {
			t.Fatal(err)
		}
		if got.WCSS != want.WCSS || got.Iterations != want.Iterations {
			t.Fatalf("trial %d (workers %d): WCSS/iters drifted", trial, o.Workers)
		}
		for i := range want.Assign {
			if got.Assign[i] != want.Assign[i] {
				t.Fatalf("trial %d: assign[%d] differs", trial, i)
			}
		}
		for c := range want.Means {
			for d := range want.Means[c] {
				if got.Means[c][d] != want.Means[c][d] {
					t.Fatalf("trial %d: mean (%d,%d) differs", trial, c, d)
				}
			}
		}
	}
}

// TestNDResultDetachedFromPool checks the returned Result never aliases
// pooled scratch memory: a second ND call reusing the scratches must not
// mutate the first call's result.
func TestNDResultDetachedFromPool(t *testing.T) {
	pts := testPoints(80, 2)
	first, err := ND(pts, 4, NDOptions{Restarts: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	snapAssign := append([]int(nil), first.Assign...)
	snapMean := first.Means[0][0]
	// Different data through the same pool.
	if _, err := ND(testPoints(80, 2)[:60], 3, NDOptions{Restarts: 4, Seed: 99}); err != nil {
		t.Fatal(err)
	}
	for i := range snapAssign {
		if first.Assign[i] != snapAssign[i] {
			t.Fatalf("Assign[%d] mutated by a later pooled run", i)
		}
	}
	if first.Means[0][0] != snapMean {
		t.Fatal("Means mutated by a later pooled run")
	}
}
