package linalg

import "testing"

func benchCSR(b *testing.B, n, deg int) *CSR {
	b.Helper()
	bld := NewBuilder(n, n)
	for i := 0; i < n; i++ {
		for d := 1; d <= deg; d++ {
			bld.AddSym(i, (i+d)%n, 1)
		}
	}
	m, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkCSRMulVec10k(b *testing.B) {
	m := benchCSR(b, 10000, 4)
	x := make([]float64, 10000)
	dst := make([]float64, 10000)
	for i := range x {
		x[i] = float64(i % 7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(dst, x)
	}
}

func BenchmarkCSRBuild10k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchCSR(b, 10000, 4)
	}
}

func BenchmarkDenseMulVec500(b *testing.B) {
	m := NewDense(500, 500)
	for i := 0; i < 500; i++ {
		for j := 0; j < 500; j++ {
			m.Set(i, j, float64((i*j)%13))
		}
	}
	x := make([]float64, 500)
	dst := make([]float64, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(dst, x)
	}
}

func BenchmarkNorm2(b *testing.B) {
	x := make([]float64, 100000)
	for i := range x {
		x[i] = float64(i%100) - 50
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Norm2(x)
	}
}
