package linalg

import (
	"fmt"

	"roadpart/internal/parallel"
)

// Dense is a row-major dense matrix of float64 values.
// The zero value is an empty 0×0 matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a zeroed r×c matrix.
// It panics if either dimension is negative.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: NewDense negative dimension %dx%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewDenseFrom builds an r×c matrix backed by a copy of data laid out in
// row-major order. It panics if len(data) != r*c.
func NewDenseFrom(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("linalg: NewDenseFrom needs %d values, got %d", r*c, len(data)))
	}
	m := NewDense(r, c)
	copy(m.data, data)
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set stores v at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add adds v to the element at row i, column j.
func (m *Dense) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns the i-th row as a slice sharing the matrix's storage.
// Mutating the returned slice mutates the matrix.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("linalg: row %d out of range %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// MulVec computes dst = m·x. dst and x must not alias.
// It panics on dimension mismatch.
//
// Large matrices compute row-parallel (see SetWorkers); each row's
// accumulation order is unchanged, so the result is bit-identical to the
// serial loop for any worker count. The serial path allocates nothing.
func (m *Dense) MulVec(dst, x []float64) {
	if len(x) != m.cols || len(dst) != m.rows {
		panic(fmt.Sprintf("linalg: MulVec dims %dx%d with x[%d] dst[%d]", m.rows, m.cols, len(x), len(dst)))
	}
	matvecDense.Inc()
	if span := mulVecSpan(m.rows, denseMulVecCutoff); span > 1 {
		parallel.Blocks(m.rows, span, func(lo, hi int) { m.mulVecRange(dst, x, lo, hi) })
		return
	}
	m.mulVecRange(dst, x, 0, m.rows)
}

// mulVecRange computes dst[lo:hi] of the product — the shared kernel of
// the serial and row-parallel paths.
func (m *Dense) mulVecRange(dst, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// IsSymmetric reports whether m is square and symmetric to within tol.
func (m *Dense) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			d := m.data[i*m.cols+j] - m.data[j*m.cols+i]
			if d < -tol || d > tol {
				return false
			}
		}
	}
	return true
}

// SymmetrizeInPlace replaces m with (m + mᵀ)/2. It panics if m is not square.
func (m *Dense) SymmetrizeInPlace() {
	if m.rows != m.cols {
		panic("linalg: SymmetrizeInPlace on non-square matrix")
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			v := (m.data[i*m.cols+j] + m.data[j*m.cols+i]) / 2
			m.data[i*m.cols+j] = v
			m.data[j*m.cols+i] = v
		}
	}
}

// Mul returns the matrix product m·b.
// It panics if the inner dimensions disagree.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.cols != b.rows {
		panic(fmt.Sprintf("linalg: Mul dims %dx%d by %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := NewDense(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		mrow := m.data[i*m.cols : (i+1)*m.cols]
		orow := out.data[i*b.cols : (i+1)*b.cols]
		for k, v := range mrow {
			if v == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += v * bv
			}
		}
	}
	return out
}

// Transpose returns mᵀ as a new matrix.
func (m *Dense) Transpose() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*m.rows+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Trace returns the sum of diagonal entries. It panics if m is not square.
func (m *Dense) Trace() float64 {
	if m.rows != m.cols {
		panic("linalg: Trace on non-square matrix")
	}
	var t float64
	for i := 0; i < m.rows; i++ {
		t += m.data[i*m.cols+i]
	}
	return t
}
