package linalg

import "testing"

func TestDenseBasics(t *testing.T) {
	m := NewDense(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("dims = %dx%d, want 2x3", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("At(1,2) = %v, want 7", m.At(1, 2))
	}
	m.Add(1, 2, 3)
	if m.At(1, 2) != 10 {
		t.Fatalf("Add failed: %v", m.At(1, 2))
	}
}

func TestDenseFromAndRow(t *testing.T) {
	m := NewDenseFrom(2, 2, []float64{1, 2, 3, 4})
	r := m.Row(1)
	if r[0] != 3 || r[1] != 4 {
		t.Fatalf("Row(1) = %v", r)
	}
	r[0] = 9 // row aliases storage
	if m.At(1, 0) != 9 {
		t.Fatal("Row should alias matrix storage")
	}
	c := m.Clone()
	c.Set(0, 0, 100)
	if m.At(0, 0) == 100 {
		t.Fatal("Clone should not alias storage")
	}
}

func TestDenseMulVec(t *testing.T) {
	m := NewDenseFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	dst := make([]float64, 2)
	m.MulVec(dst, []float64{1, 1, 1})
	if dst[0] != 6 || dst[1] != 15 {
		t.Fatalf("MulVec = %v, want [6 15]", dst)
	}
}

func TestDenseSymmetry(t *testing.T) {
	m := NewDenseFrom(2, 2, []float64{1, 2, 2.000001, 1})
	if m.IsSymmetric(1e-9) {
		t.Fatal("matrix should not pass tight symmetry check")
	}
	if !m.IsSymmetric(1e-3) {
		t.Fatal("matrix should pass loose symmetry check")
	}
	m.SymmetrizeInPlace()
	if !m.IsSymmetric(0) {
		t.Fatal("SymmetrizeInPlace did not produce an exactly symmetric matrix")
	}
}

func TestDenseTrace(t *testing.T) {
	m := NewDenseFrom(3, 3, []float64{1, 0, 0, 0, 2, 0, 0, 0, 3})
	if m.Trace() != 6 {
		t.Fatalf("Trace = %v, want 6", m.Trace())
	}
}

func TestDenseMulAndTranspose(t *testing.T) {
	a := NewDenseFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewDenseFrom(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := a.Mul(b)
	want := []float64{58, 64, 139, 154}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i*2+j] {
				t.Fatalf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i*2+j])
			}
		}
	}
	at := a.Transpose()
	if at.Rows() != 3 || at.Cols() != 2 || at.At(2, 1) != 6 {
		t.Fatalf("Transpose wrong: %dx%d", at.Rows(), at.Cols())
	}
	// (AB)ᵀ == Bᵀ Aᵀ.
	lhs := c.Transpose()
	rhs := b.Transpose().Mul(a.Transpose())
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if lhs.At(i, j) != rhs.At(i, j) {
				t.Fatal("(AB)ᵀ != BᵀAᵀ")
			}
		}
	}
}

func TestDensePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"negative dims":   func() { NewDense(-1, 2) },
		"bad data length": func() { NewDenseFrom(2, 2, []float64{1}) },
		"At out of range": func() { NewDense(2, 2).At(2, 0) },
		"trace nonsquare": func() { NewDense(2, 3).Trace() },
		"mulvec mismatch": func() { NewDense(2, 2).MulVec(make([]float64, 2), make([]float64, 3)) },
		"mul mismatch":    func() { NewDense(2, 3).Mul(NewDense(2, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
