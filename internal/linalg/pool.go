package linalg

import (
	"sync"

	"roadpart/internal/obs"
)

// Scratch-buffer pools for the allocation-free hot paths (see
// docs/PERFORMANCE.md). GetVec/GetInts hand out recycled slices so the
// steady-state pipeline — repeated Partition calls, sweep iterations,
// server requests — reuses memory instead of reallocating embeddings,
// component labelings and BFS queues on every call.
//
// Ownership contract: a Get* caller owns the buffer until it calls the
// matching Put*; a buffer must not be used after Put (the pool may hand
// it to a concurrent caller immediately). The pools are sync.Pool-backed
// and safe for concurrent use; their live population is naturally
// bounded by the number of concurrent workers (internal/parallel caps
// fan-out, and each worker holds at most one buffer per call site at a
// time). Pooling never changes results: buffers are either zeroed on Get
// (GetVec/GetInts) or fully overwritten by their consumer, so pooled and
// unpooled runs are bit-identical.
//
// Hit/miss/bytes-reused are surfaced on /v1/metrics via internal/obs as
// roadpart_pool_events_total{pool="linalg_vec"|"linalg_ints"} and
// roadpart_pool_bytes_reused_total.
var (
	vecTally = obs.NewPoolTally("linalg_vec")
	intTally = obs.NewPoolTally("linalg_ints")

	vecPool sync.Pool // of *[]float64
	intPool sync.Pool // of *[]int
)

// GetVec returns a zeroed float64 slice of length n, reusing pooled
// capacity when a large-enough buffer is available. Return it with
// PutVec when done.
func GetVec(n int) []float64 {
	if p, ok := vecPool.Get().(*[]float64); ok && cap(*p) >= n {
		v := (*p)[:n]
		for i := range v {
			v[i] = 0
		}
		vecTally.Hit(8 * n)
		return v
	}
	// Pool empty, or the pooled buffer was too small (it is dropped and
	// left to the GC — the pool re-fills at the larger size).
	vecTally.Miss()
	return make([]float64, n)
}

// PutVec returns a slice obtained from GetVec (or any slice the caller
// no longer needs) to the pool. The caller must not touch v afterwards.
func PutVec(v []float64) {
	if cap(v) == 0 {
		return
	}
	v = v[:0]
	vecPool.Put(&v)
}

// GetInts returns a zeroed int slice of length n from the pool. Return
// it with PutInts when done.
func GetInts(n int) []int {
	if p, ok := intPool.Get().(*[]int); ok && cap(*p) >= n {
		v := (*p)[:n]
		for i := range v {
			v[i] = 0
		}
		intTally.Hit(8 * n)
		return v
	}
	intTally.Miss()
	return make([]int, n)
}

// PutInts returns a slice obtained from GetInts to the pool. The caller
// must not touch v afterwards.
func PutInts(v []int) {
	if cap(v) == 0 {
		return
	}
	v = v[:0]
	intPool.Put(&v)
}
