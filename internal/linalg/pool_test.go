package linalg

import (
	"testing"
)

func TestGetVecZeroedAndReused(t *testing.T) {
	v := GetVec(64)
	if len(v) != 64 {
		t.Fatalf("GetVec(64) len = %d", len(v))
	}
	for i := range v {
		v[i] = float64(i) + 1
	}
	PutVec(v)
	// The next Get of an equal-or-smaller size must come back zeroed no
	// matter what the previous user left behind.
	w := GetVec(32)
	for i, x := range w {
		if x != 0 {
			t.Fatalf("GetVec reuse not zeroed at %d: %v", i, x)
		}
	}
	PutVec(w)
}

func TestGetIntsZeroedAndReused(t *testing.T) {
	v := GetInts(64)
	if len(v) != 64 {
		t.Fatalf("GetInts(64) len = %d", len(v))
	}
	for i := range v {
		v[i] = i + 1
	}
	PutInts(v)
	w := GetInts(64)
	for i, x := range w {
		if x != 0 {
			t.Fatalf("GetInts reuse not zeroed at %d: %v", i, x)
		}
	}
	PutInts(w)
}

func TestPutVecEmptyIsSafe(t *testing.T) {
	PutVec(nil)
	PutVec([]float64{})
	PutInts(nil)
	PutInts([]int{})
}

// TestCSRMulVecSerialAllocFree pins the CSR matvec — the inner kernel of
// every Lanczos step — at zero steady-state allocations on the serial
// path (rows below the parallel cutoff). This is one of the three
// allocation-free hot-path pins of docs/PERFORMANCE.md.
func TestCSRMulVecSerialAllocFree(t *testing.T) {
	n := 512 // below csrMulVecCutoff: serial path
	b := NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.AddSym(i, (i+1)%n, 1.5)
		b.AddSym(i, (i+7)%n, 0.5)
	}
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	dst := make([]float64, n)
	for i := range x {
		x[i] = float64(i%13) - 6
	}
	allocs := testing.AllocsPerRun(100, func() { m.MulVec(dst, x) })
	if allocs != 0 {
		t.Fatalf("serial CSR.MulVec allocates %v per call, want 0", allocs)
	}
}

// TestDenseMulVecSerialAllocFree pins the dense matvec serial path the
// same way.
func TestDenseMulVecSerialAllocFree(t *testing.T) {
	n := 128 // below denseMulVecCutoff: serial path
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, float64((i*j)%7))
		}
	}
	x := make([]float64, n)
	dst := make([]float64, n)
	allocs := testing.AllocsPerRun(100, func() { m.MulVec(dst, x) })
	if allocs != 0 {
		t.Fatalf("serial Dense.MulVec allocates %v per call, want 0", allocs)
	}
}

// TestMulVecParallelMatchesSerial guards the fast-path split: the
// parallel branch must stay bit-identical to the serial kernel.
func TestMulVecParallelMatchesSerial(t *testing.T) {
	n := 4096 // above csrMulVecCutoff
	b := NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.AddSym(i, (i+1)%n, float64(i%5)+0.25)
		b.AddSym(i, (i+13)%n, 1)
	}
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%31) - 15.5
	}
	serial := make([]float64, n)
	parallelDst := make([]float64, n)

	old := Workers()
	defer SetWorkers(old)
	SetWorkers(1)
	m.MulVec(serial, x)
	SetWorkers(4)
	m.MulVec(parallelDst, x)
	for i := range serial {
		if serial[i] != parallelDst[i] {
			t.Fatalf("row %d: serial %v != parallel %v", i, serial[i], parallelDst[i])
		}
	}
}
