package linalg

import (
	"fmt"
	"sort"

	"roadpart/internal/parallel"
)

// Coord is a single (row, column, value) triplet used to assemble sparse
// matrices.
type Coord struct {
	Row, Col int
	Val      float64
}

// CSR is a compressed-sparse-row matrix. It is immutable after construction;
// build one with NewCSR or through a Builder.
type CSR struct {
	rows, cols int
	rowPtr     []int     // len rows+1
	colIdx     []int     // len nnz, sorted within each row
	vals       []float64 // len nnz
}

// NewCSR assembles a CSR matrix from triplets. Duplicate (row, col) entries
// are summed, which makes assembling graph adjacency matrices from edge
// lists convenient. It returns an error if any coordinate is out of range.
func NewCSR(rows, cols int, entries []Coord) (*CSR, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("linalg: NewCSR negative dimension %dx%d", rows, cols)
	}
	for _, e := range entries {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			return nil, fmt.Errorf("linalg: entry (%d,%d) outside %dx%d", e.Row, e.Col, rows, cols)
		}
	}
	sorted := make([]Coord, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})

	m := &CSR{rows: rows, cols: cols, rowPtr: make([]int, rows+1)}
	for i := 0; i < len(sorted); {
		j := i
		v := 0.0
		for j < len(sorted) && sorted[j].Row == sorted[i].Row && sorted[j].Col == sorted[i].Col {
			v += sorted[j].Val
			j++
		}
		if v != 0 {
			m.colIdx = append(m.colIdx, sorted[i].Col)
			m.vals = append(m.vals, v)
			m.rowPtr[sorted[i].Row+1]++
		}
		i = j
	}
	for r := 0; r < rows; r++ {
		m.rowPtr[r+1] += m.rowPtr[r]
	}
	return m, nil
}

// Rows returns the number of rows.
func (m *CSR) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CSR) Cols() int { return m.cols }

// NNZ returns the number of stored non-zero entries.
func (m *CSR) NNZ() int { return len(m.vals) }

// At returns the element at row i, column j using binary search within the
// row; absent entries are zero.
func (m *CSR) At(i, j int) float64 {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	k := sort.SearchInts(m.colIdx[lo:hi], j) + lo
	if k < hi && m.colIdx[k] == j {
		return m.vals[k]
	}
	return 0
}

// Range calls fn for every stored entry of row i, in column order.
func (m *CSR) Range(i int, fn func(j int, v float64)) {
	for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
		fn(m.colIdx[k], m.vals[k])
	}
}

// MulVec computes dst = m·x. dst and x must not alias.
// It panics on dimension mismatch.
//
// Large matrices compute row-parallel (see SetWorkers); each row's
// accumulation order is unchanged, so the result is bit-identical to the
// serial loop for any worker count. The serial path (small matrices, or
// Workers=1) allocates nothing — it is one of the pinned
// allocation-free kernels of docs/PERFORMANCE.md.
func (m *CSR) MulVec(dst, x []float64) {
	if len(x) != m.cols || len(dst) != m.rows {
		panic(fmt.Sprintf("linalg: MulVec dims %dx%d with x[%d] dst[%d]", m.rows, m.cols, len(x), len(dst)))
	}
	matvecCSR.Inc()
	if span := mulVecSpan(m.rows, csrMulVecCutoff); span > 1 {
		parallel.Blocks(m.rows, span, func(lo, hi int) { m.mulVecRange(dst, x, lo, hi) })
		return
	}
	m.mulVecRange(dst, x, 0, m.rows)
}

// mulVecRange computes dst[lo:hi] of the product — the shared kernel of
// the serial and row-parallel paths.
func (m *CSR) mulVecRange(dst, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.vals[k] * x[m.colIdx[k]]
		}
		dst[i] = s
	}
}

// RowSums returns the vector of row sums (the weighted degree vector when
// the matrix is a graph adjacency matrix).
func (m *CSR) RowSums() []float64 {
	d := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.vals[k]
		}
		d[i] = s
	}
	return d
}

// Dense expands m into a dense matrix. Intended for small matrices and tests.
func (m *CSR) Dense() *Dense {
	d := NewDense(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			d.Set(i, m.colIdx[k], m.vals[k])
		}
	}
	return d
}

// IsSymmetric reports whether m is square and symmetric to within tol.
func (m *CSR) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			j := m.colIdx[k]
			d := m.vals[k] - m.At(j, i)
			if d < -tol || d > tol {
				return false
			}
		}
	}
	return true
}

// Builder accumulates triplets and assembles a CSR matrix. It exists so
// call sites can stream entries without managing a slice of Coord by hand.
type Builder struct {
	rows, cols int
	entries    []Coord
}

// NewBuilder returns a Builder for an r×c matrix.
func NewBuilder(r, c int) *Builder {
	return &Builder{rows: r, cols: c}
}

// Add records value v at (i, j). Duplicates are summed at Build time.
func (b *Builder) Add(i, j int, v float64) {
	b.entries = append(b.entries, Coord{Row: i, Col: j, Val: v})
}

// AddSym records v at both (i, j) and (j, i); the diagonal is recorded once.
func (b *Builder) AddSym(i, j int, v float64) {
	b.Add(i, j, v)
	if i != j {
		b.Add(j, i, v)
	}
}

// Build assembles the matrix.
func (b *Builder) Build() (*CSR, error) {
	return NewCSR(b.rows, b.cols, b.entries)
}
