package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCSRAssembly(t *testing.T) {
	m, err := NewCSR(3, 3, []Coord{
		{0, 1, 2}, {1, 0, 2}, {1, 2, 5}, {2, 1, 5}, {0, 1, 1}, // duplicate (0,1) sums
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 4 {
		t.Fatalf("NNZ = %d, want 4", m.NNZ())
	}
	if m.At(0, 1) != 3 {
		t.Fatalf("At(0,1) = %v, want 3 (duplicates summed)", m.At(0, 1))
	}
	if m.At(0, 0) != 0 || m.At(2, 2) != 0 {
		t.Fatal("absent entries should be zero")
	}
}

func TestCSRRejectsOutOfRange(t *testing.T) {
	if _, err := NewCSR(2, 2, []Coord{{2, 0, 1}}); err == nil {
		t.Fatal("expected error for out-of-range row")
	}
	if _, err := NewCSR(-1, 2, nil); err == nil {
		t.Fatal("expected error for negative dimension")
	}
}

func TestCSRDropsExplicitZeroSums(t *testing.T) {
	m, err := NewCSR(2, 2, []Coord{{0, 0, 1}, {0, 0, -1}})
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 0 {
		t.Fatalf("entries that cancel should be dropped, NNZ = %d", m.NNZ())
	}
}

func TestCSRMulVecMatchesDense(t *testing.T) {
	f := func(raw []float64) bool {
		const n = 7
		var entries []Coord
		for i, v := range raw {
			if i >= n*n {
				break
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			if math.Abs(v) > 0.5 { // sparsify
				entries = append(entries, Coord{i / n, i % n, math.Mod(v, 100)})
			}
		}
		m, err := NewCSR(n, n, entries)
		if err != nil {
			return false
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(i) - 3
		}
		got := make([]float64, n)
		want := make([]float64, n)
		m.MulVec(got, x)
		m.Dense().MulVec(want, x)
		for i := range got {
			if !almostEq(got[i], want[i], 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCSRRowSums(t *testing.T) {
	m, err := NewCSR(2, 3, []Coord{{0, 0, 1}, {0, 2, 2}, {1, 1, -4}})
	if err != nil {
		t.Fatal(err)
	}
	d := m.RowSums()
	if d[0] != 3 || d[1] != -4 {
		t.Fatalf("RowSums = %v, want [3 -4]", d)
	}
}

func TestCSRRange(t *testing.T) {
	m, err := NewCSR(2, 4, []Coord{{0, 3, 5}, {0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	var cols []int
	m.Range(0, func(j int, v float64) { cols = append(cols, j) })
	if len(cols) != 2 || cols[0] != 1 || cols[1] != 3 {
		t.Fatalf("Range order = %v, want [1 3]", cols)
	}
}

func TestCSRSymmetry(t *testing.T) {
	sym, _ := NewCSR(2, 2, []Coord{{0, 1, 3}, {1, 0, 3}})
	if !sym.IsSymmetric(0) {
		t.Fatal("symmetric matrix misreported")
	}
	asym, _ := NewCSR(2, 2, []Coord{{0, 1, 3}})
	if asym.IsSymmetric(1e-9) {
		t.Fatal("asymmetric matrix misreported")
	}
}

func TestBuilderAddSym(t *testing.T) {
	b := NewBuilder(3, 3)
	b.AddSym(0, 1, 2)
	b.AddSym(2, 2, 7) // diagonal recorded once
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 2 {
		t.Fatal("AddSym should mirror off-diagonal entries")
	}
	if m.At(2, 2) != 7 {
		t.Fatalf("diagonal = %v, want 7 (not doubled)", m.At(2, 2))
	}
}
