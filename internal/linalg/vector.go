// Package linalg provides the small dense and sparse linear-algebra
// substrate used by the spectral partitioning framework.
//
// The Go standard library carries no matrix code, so everything the
// paper's spectral partitioning stage (Section 5, Algorithm 3) relies
// on — dense symmetric matrices, CSR sparse matrices and the vector
// kernels underneath the eigensolvers — is implemented here from scratch.
// The package is deliberately minimal: it implements exactly the operations
// the framework needs, with predictable O(nnz) or O(n²) costs and no hidden
// allocation in the hot kernels.
package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product of x and y.
// It panics if the vectors have different lengths.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x, guarding against overflow for
// large components in the same way math.Hypot does.
func Norm2(x []float64) float64 {
	var scale, ssq float64
	ssq = 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	if scale == 0 {
		return 0
	}
	return scale * math.Sqrt(ssq)
}

// Scale multiplies every element of x by a in place.
func Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// Axpy computes y += a*x in place.
// It panics if the vectors have different lengths.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// Copy returns a newly allocated copy of x.
func Copy(x []float64) []float64 {
	c := make([]float64, len(x))
	copy(c, x)
	return c
}

// Zero sets every element of x to zero.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Sum returns the sum of the elements of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return Sum(x) / float64(len(x))
}

// Variance returns the population variance of x about its mean,
// or 0 for slices with fewer than one element.
func Variance(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x))
}

// Normalize scales x in place to unit Euclidean norm and returns the
// original norm. A zero vector is left unchanged and 0 is returned.
func Normalize(x []float64) float64 {
	n := Norm2(x)
	if n == 0 {
		return 0
	}
	Scale(1/n, x)
	return n
}

// Dist2 returns the Euclidean distance between x and y.
// It panics if the vectors have different lengths.
func Dist2(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Dist2 length mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		d := v - y[i]
		s += d * d
	}
	return math.Sqrt(s)
}
