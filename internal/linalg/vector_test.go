package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestDot(t *testing.T) {
	cases := []struct {
		x, y []float64
		want float64
	}{
		{nil, nil, 0},
		{[]float64{1}, []float64{2}, 2},
		{[]float64{1, 2, 3}, []float64{4, 5, 6}, 32},
		{[]float64{-1, 1}, []float64{1, 1}, 0},
	}
	for _, c := range cases {
		if got := Dot(c.x, c.y); got != c.want {
			t.Errorf("Dot(%v,%v) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched lengths did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorm2(t *testing.T) {
	cases := []struct {
		x    []float64
		want float64
	}{
		{nil, 0},
		{[]float64{0, 0}, 0},
		{[]float64{3, 4}, 5},
		{[]float64{-3, 4}, 5},
		{[]float64{1e200, 1e200}, math.Sqrt2 * 1e200}, // overflow guard
		{[]float64{1e-200, 1e-200}, math.Sqrt2 * 1e-200},
	}
	for _, c := range cases {
		if got := Norm2(c.x); !almostEq(got, c.want, 1e-14) {
			t.Errorf("Norm2(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNorm2MatchesNaive(t *testing.T) {
	f := func(x []float64) bool {
		// Clamp to a safe range for the naive reference.
		for i := range x {
			x[i] = math.Mod(x[i], 1e6)
			if math.IsNaN(x[i]) {
				x[i] = 0
			}
		}
		var ss float64
		for _, v := range x {
			ss += v * v
		}
		return almostEq(Norm2(x), math.Sqrt(ss), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAxpyAndScale(t *testing.T) {
	y := []float64{1, 2, 3}
	Axpy(2, []float64{10, 20, 30}, y)
	want := []float64{21, 42, 63}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy result %v, want %v", y, want)
		}
	}
	Scale(0.5, y)
	want = []float64{10.5, 21, 31.5}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Scale result %v, want %v", y, want)
		}
	}
}

func TestNormalize(t *testing.T) {
	v := []float64{3, 4}
	n := Normalize(v)
	if n != 5 {
		t.Fatalf("Normalize returned %v, want 5", n)
	}
	if !almostEq(Norm2(v), 1, 1e-15) {
		t.Fatalf("normalized vector has norm %v", Norm2(v))
	}
	z := []float64{0, 0}
	if Normalize(z) != 0 {
		t.Fatal("Normalize of zero vector should return 0")
	}
}

func TestMeanVariance(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(x); m != 5 {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if v := Variance(x); v != 4 {
		t.Fatalf("Variance = %v, want 4", v)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("Mean/Variance of empty slice should be 0")
	}
}

func TestDist2(t *testing.T) {
	if d := Dist2([]float64{0, 0}, []float64{3, 4}); d != 5 {
		t.Fatalf("Dist2 = %v, want 5", d)
	}
}

func TestCopyIsIndependent(t *testing.T) {
	x := []float64{1, 2}
	c := Copy(x)
	c[0] = 99
	if x[0] != 1 {
		t.Fatal("Copy shares storage with the original")
	}
}

func TestFillZeroSum(t *testing.T) {
	x := make([]float64, 4)
	Fill(x, 2.5)
	if Sum(x) != 10 {
		t.Fatalf("Sum after Fill = %v, want 10", Sum(x))
	}
	Zero(x)
	if Sum(x) != 0 {
		t.Fatal("Zero did not clear the slice")
	}
}
