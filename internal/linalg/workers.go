package linalg

import (
	"sync/atomic"

	"roadpart/internal/obs"
	"roadpart/internal/parallel"
)

// Matvec tallies: one increment per MulVec call (not per row), so the
// cost is a single atomic add against O(nnz) kernel work. The counts are
// deterministic for a given workload — the Lanczos iteration count per
// eigensolve is seed-fixed.
var (
	matvecHelp  = "Matrix-vector products computed, by matrix kind."
	matvecCSR   = obs.Default().Counter("roadpart_linalg_matvec_total", matvecHelp, "kind", "csr")
	matvecDense = obs.Default().Counter("roadpart_linalg_matvec_total", matvecHelp, "kind", "dense")
)

// Matrix–vector products are row-parallel above a size cutoff: each dst
// row is written by exactly one goroutine and the per-row accumulation
// order is unchanged, so the result is bit-identical to the serial loop
// for any worker count. The cutoffs keep small operators — the meta-graph
// bipartitions, the supergraph tail — on the serial path where goroutine
// fan-out would only add overhead.
const (
	// csrMulVecCutoff is the minimum row count for parallel CSR.MulVec.
	// Below it one Lanczos matvec is a few microseconds and spawn cost
	// dominates.
	csrMulVecCutoff = 2048
	// denseMulVecCutoff is the minimum row count for parallel
	// Dense.MulVec (each row is already O(cols) work).
	denseMulVecCutoff = 256
)

// mulVecWorkers is the package-wide worker cap for MulVec kernels:
// 0 selects GOMAXPROCS, 1 forces serial. Set once at startup via
// SetWorkers; the kernels read it atomically.
var mulVecWorkers atomic.Int32

// SetWorkers caps the goroutines used by the row-parallel MulVec kernels.
// 0 restores the default (GOMAXPROCS); 1 forces the serial path. Results
// are bit-identical for every setting — this is purely a resource knob.
func SetWorkers(w int) {
	if w < 0 {
		w = 1
	}
	mulVecWorkers.Store(int32(w))
}

// Workers reports the current MulVec worker cap (0 = GOMAXPROCS).
func Workers() int { return int(mulVecWorkers.Load()) }

// mulVecSpan picks the worker count for a kernel over n rows with the
// given cutoff, returning 1 whenever the parallel path isn't worthwhile.
func mulVecSpan(n, cutoff int) int {
	if n < cutoff {
		return 1
	}
	return parallel.Resolve(int(mulVecWorkers.Load()), n)
}
