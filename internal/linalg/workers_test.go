package linalg

import "testing"

// mulVecRef is the plain serial reference the kernels must match bit for
// bit at every worker setting.
func mulVecRefCSR(m *CSR, x []float64) []float64 {
	dst := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.vals[k] * x[m.colIdx[k]]
		}
		dst[i] = s
	}
	return dst
}

// bigCSR builds a sparse banded matrix above the parallel cutoff with a
// cheap deterministic value pattern.
func bigCSR(t *testing.T, n int) *CSR {
	t.Helper()
	var entries []Coord
	for i := 0; i < n; i++ {
		for off := -2; off <= 2; off++ {
			j := i + off
			if j < 0 || j >= n {
				continue
			}
			entries = append(entries, Coord{Row: i, Col: j, Val: float64((i*7+j*13)%101) / 17.0})
		}
	}
	m, err := NewCSR(n, n, entries)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCSRMulVecParallelBitIdentical(t *testing.T) {
	n := csrMulVecCutoff + 500 // force the parallel path
	m := bigCSR(t, n)
	x := make([]float64, n)
	for i := range x {
		x[i] = float64((i*31)%257)/97.0 - 1
	}
	want := mulVecRefCSR(m, x)

	defer SetWorkers(0)
	for _, w := range []int{0, 1, 2, 8, 33} {
		SetWorkers(w)
		dst := make([]float64, n)
		m.MulVec(dst, x)
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("workers=%d: dst[%d] = %v, want %v (must be bit-identical)", w, i, dst[i], want[i])
			}
		}
	}
}

func TestDenseMulVecParallelBitIdentical(t *testing.T) {
	n := denseMulVecCutoff + 64
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, float64((i*13+j*7)%89)/23.0-1)
		}
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = float64((i*5)%71)/31.0 - 0.5
	}
	want := make([]float64, n)
	for i := 0; i < n; i++ {
		row := m.data[i*n : (i+1)*n]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		want[i] = s
	}

	defer SetWorkers(0)
	for _, w := range []int{0, 1, 4, 16} {
		SetWorkers(w)
		dst := make([]float64, n)
		m.MulVec(dst, x)
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("workers=%d: dst[%d] = %v, want %v", w, i, dst[i], want[i])
			}
		}
	}
}

func TestSetWorkersClampsNegative(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(-5)
	if Workers() != 1 {
		t.Fatalf("Workers() = %d after SetWorkers(-5), want 1", Workers())
	}
	SetWorkers(0)
	if Workers() != 0 {
		t.Fatalf("Workers() = %d after SetWorkers(0), want 0", Workers())
	}
}
