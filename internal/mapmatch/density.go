package mapmatch

import (
	"fmt"

	"roadpart/internal/roadnet"
	"roadpart/internal/traffic"
)

// Point is one trajectory sample: a planar position at a timestamp — the
// same type the traffic simulator emits, so simulator output feeds in
// directly.
type Point = traffic.TrajPoint

// Trajectory is one vehicle's ordered position samples.
type Trajectory = traffic.Trajectory

// MatchTrajectory maps every sample of a trajectory to a segment,
// deriving the heading from consecutive samples so the correct direction
// of two-way roads is chosen. Unmatchable samples (farther than maxDist
// from any segment) get -1.
func (ix *Index) MatchTrajectory(traj Trajectory, maxDist float64) []int {
	out := make([]int, len(traj))
	for i, p := range traj {
		var hx, hy float64
		switch {
		case i+1 < len(traj):
			hx, hy = traj[i+1].X-p.X, traj[i+1].Y-p.Y
		case i > 0:
			hx, hy = p.X-traj[i-1].X, p.Y-traj[i-1].Y
		}
		m, ok := ix.Nearest(p.X, p.Y, hx, hy, maxDist)
		if !ok {
			out[i] = -1
			continue
		}
		out[i] = m.Segment
	}
	return out
}

// Densities reconstructs per-segment densities (vehicles/metre) at each
// timestamp from 0 to maxT from a fleet of trajectories: every matched
// sample contributes one vehicle to its segment at its timestamp. This is
// the paper's "self-designed program" step that turned MNTG trajectories
// into the M1–M3 density data.
func Densities(net *roadnet.Network, ix *Index, trajs []Trajectory, maxT int, maxDist float64) ([]traffic.Snapshot, error) {
	if maxT < 0 {
		return nil, fmt.Errorf("mapmatch: negative timestamp bound %d", maxT)
	}
	counts := make([][]int, maxT+1)
	for t := range counts {
		counts[t] = make([]int, len(net.Segments))
	}
	for _, traj := range trajs {
		matches := ix.MatchTrajectory(traj, maxDist)
		for i, seg := range matches {
			t := traj[i].T
			if seg < 0 || t < 0 || t > maxT {
				continue
			}
			counts[t][seg]++
		}
	}
	snaps := make([]traffic.Snapshot, maxT+1)
	for t := range snaps {
		snap := make(traffic.Snapshot, len(net.Segments))
		for i, c := range counts[t] {
			snap[i] = float64(c) / net.Segments[i].Length
		}
		snaps[t] = snap
	}
	return snaps, nil
}
