// Package mapmatch maps raw vehicle positions onto road segments and
// estimates per-segment traffic densities from trajectory data.
//
// The paper's large datasets were produced exactly this way: MNTG emitted
// vehicle trajectories, and "a self-designed program is used to map their
// positions to corresponding road segments, and compute the traffic
// density of road segments at each point of time" (Section 6.1). This
// package is that program: a uniform-grid spatial index over segments,
// point-to-segment matching with heading disambiguation (so the two
// directions of a two-way road are told apart), and a density estimator
// that buckets matched positions by timestamp.
package mapmatch

import (
	"fmt"
	"math"

	"roadpart/internal/roadnet"
)

// Index is a uniform-grid spatial index over a network's segments,
// supporting nearest-segment queries. Build one per network; queries are
// read-only and safe for concurrent use.
type Index struct {
	net      *roadnet.Network
	cellSize float64
	minX     float64
	minY     float64
	cols     int
	rows     int
	cells    [][]int32 // segment ids per cell, row-major
}

// NewIndex builds the index. cellSize <= 0 selects twice the mean segment
// length, which keeps the per-cell lists short on road networks.
func NewIndex(net *roadnet.Network, cellSize float64) (*Index, error) {
	if len(net.Segments) == 0 {
		return nil, fmt.Errorf("mapmatch: network has no segments")
	}
	if cellSize <= 0 {
		var mean float64
		for _, s := range net.Segments {
			mean += s.Length
		}
		cellSize = 2 * mean / float64(len(net.Segments))
		if cellSize <= 0 {
			cellSize = 1
		}
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range net.Intersections {
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	ix := &Index{
		net:      net,
		cellSize: cellSize,
		minX:     minX,
		minY:     minY,
		cols:     int((maxX-minX)/cellSize) + 1,
		rows:     int((maxY-minY)/cellSize) + 1,
	}
	ix.cells = make([][]int32, ix.cols*ix.rows)

	// Register each segment in every cell its bounding box touches;
	// segments are short relative to cells so the expansion is small.
	for i, s := range net.Segments {
		a, b := net.Intersections[s.From], net.Intersections[s.To]
		c0, r0 := ix.cellOf(math.Min(a.X, b.X), math.Min(a.Y, b.Y))
		c1, r1 := ix.cellOf(math.Max(a.X, b.X), math.Max(a.Y, b.Y))
		for r := r0; r <= r1; r++ {
			for c := c0; c <= c1; c++ {
				idx := r*ix.cols + c
				ix.cells[idx] = append(ix.cells[idx], int32(i))
			}
		}
	}
	return ix, nil
}

func (ix *Index) cellOf(x, y float64) (col, row int) {
	col = int((x - ix.minX) / ix.cellSize)
	row = int((y - ix.minY) / ix.cellSize)
	if col < 0 {
		col = 0
	}
	if col >= ix.cols {
		col = ix.cols - 1
	}
	if row < 0 {
		row = 0
	}
	if row >= ix.rows {
		row = ix.rows - 1
	}
	return col, row
}

// Match is one matched position.
type Match struct {
	// Segment is the matched segment id.
	Segment int
	// Dist is the perpendicular distance from the query point in metres.
	Dist float64
	// Along is the distance from the segment's start to the projection,
	// in [0, Length].
	Along float64
}

// Nearest returns the segment closest to (x, y) within maxDist metres.
// When hx, hy is a non-zero heading vector, segments pointing against the
// heading are penalized, which disambiguates the two directions of a
// two-way road. ok is false if nothing lies within maxDist.
func (ix *Index) Nearest(x, y, hx, hy, maxDist float64) (Match, bool) {
	best := Match{Segment: -1, Dist: math.Inf(1)}
	// Expand the search ring by ring until a hit closer than the next
	// ring's minimum possible distance is found.
	c0, r0 := ix.cellOf(x, y)
	maxRing := int(maxDist/ix.cellSize) + 1
	headed := hx != 0 || hy != 0
	hn := math.Hypot(hx, hy)
	for ring := 0; ring <= maxRing; ring++ {
		if best.Segment >= 0 && best.Dist <= float64(ring-1)*ix.cellSize {
			break // nothing in farther rings can beat the current hit
		}
		for r := r0 - ring; r <= r0+ring; r++ {
			if r < 0 || r >= ix.rows {
				continue
			}
			for c := c0 - ring; c <= c0+ring; c++ {
				if c < 0 || c >= ix.cols {
					continue
				}
				// Only the ring border (interior was scanned already).
				if ring > 0 && r != r0-ring && r != r0+ring && c != c0-ring && c != c0+ring {
					continue
				}
				for _, sid := range ix.cells[r*ix.cols+c] {
					s := ix.net.Segments[sid]
					a, b := ix.net.Intersections[s.From], ix.net.Intersections[s.To]
					d, along := pointToSegment(x, y, a.X, a.Y, b.X, b.Y)
					if d > maxDist {
						continue
					}
					score := d
					if headed {
						// Against-heading segments score as if farther.
						dirX, dirY := b.X-a.X, b.Y-a.Y
						dn := math.Hypot(dirX, dirY)
						if dn > 0 {
							cos := (dirX*hx + dirY*hy) / (dn * hn)
							score += (1 - cos) * ix.cellSize / 2
						}
					}
					if score < best.Dist {
						best = Match{Segment: int(sid), Dist: score, Along: along}
					}
				}
			}
		}
	}
	if best.Segment < 0 {
		return Match{Segment: -1}, false
	}
	// Report the true geometric distance, not the heading-biased score.
	s := ix.net.Segments[best.Segment]
	a, b := ix.net.Intersections[s.From], ix.net.Intersections[s.To]
	best.Dist, best.Along = pointToSegment(x, y, a.X, a.Y, b.X, b.Y)
	return best, true
}

// pointToSegment returns the distance from (px, py) to segment
// (ax,ay)-(bx,by) and the arc length from (ax, ay) to the projection.
func pointToSegment(px, py, ax, ay, bx, by float64) (dist, along float64) {
	dx, dy := bx-ax, by-ay
	l2 := dx*dx + dy*dy
	if l2 == 0 {
		return math.Hypot(px-ax, py-ay), 0
	}
	t := ((px-ax)*dx + (py-ay)*dy) / l2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	qx, qy := ax+t*dx, ay+t*dy
	return math.Hypot(px-qx, py-qy), t * math.Sqrt(l2)
}
