package mapmatch

import (
	"math"
	"testing"
	"testing/quick"

	"roadpart/internal/gen"
	"roadpart/internal/roadnet"
)

// hNet builds a horizontal two-way road pair from (0,0) to (1000,0) plus
// a vertical side street at x=500.
func hNet() *roadnet.Network {
	n := &roadnet.Network{
		Intersections: []roadnet.Intersection{
			{ID: 0, X: 0, Y: 0},
			{ID: 1, X: 1000, Y: 0},
			{ID: 2, X: 500, Y: 0},
			{ID: 3, X: 500, Y: 400},
		},
		Segments: []roadnet.Segment{
			{ID: 0, From: 0, To: 2, Length: 500}, // eastbound west half
			{ID: 1, From: 2, To: 1, Length: 500}, // eastbound east half
			{ID: 2, From: 1, To: 2, Length: 500}, // westbound east half
			{ID: 3, From: 2, To: 0, Length: 500}, // westbound west half
			{ID: 4, From: 2, To: 3, Length: 400}, // northbound side street
		},
	}
	return n
}

func TestNearestBasic(t *testing.T) {
	ix, err := NewIndex(hNet(), 100)
	if err != nil {
		t.Fatal(err)
	}
	// A point near the side street.
	m, ok := ix.Nearest(510, 200, 0, 0, 50)
	if !ok {
		t.Fatal("no match found")
	}
	if m.Segment != 4 {
		t.Fatalf("matched segment %d, want 4 (side street)", m.Segment)
	}
	if math.Abs(m.Dist-10) > 1e-9 {
		t.Fatalf("dist = %v, want 10", m.Dist)
	}
	if math.Abs(m.Along-200) > 1e-9 {
		t.Fatalf("along = %v, want 200", m.Along)
	}
}

func TestNearestHeadingDisambiguatesDirections(t *testing.T) {
	ix, err := NewIndex(hNet(), 100)
	if err != nil {
		t.Fatal(err)
	}
	// A point on the west half of the main road, heading east: must match
	// the eastbound segment 0, not the westbound 3.
	east, ok := ix.Nearest(250, 1, 1, 0, 50)
	if !ok || east.Segment != 0 {
		t.Fatalf("eastbound heading matched %v", east.Segment)
	}
	west, ok := ix.Nearest(250, 1, -1, 0, 50)
	if !ok || west.Segment != 3 {
		t.Fatalf("westbound heading matched %v", west.Segment)
	}
}

func TestNearestRespectsMaxDist(t *testing.T) {
	ix, err := NewIndex(hNet(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.Nearest(500, 5000, 0, 0, 100); ok {
		t.Fatal("point 4.6 km away should not match within 100 m")
	}
}

func TestNewIndexErrors(t *testing.T) {
	if _, err := NewIndex(&roadnet.Network{}, 0); err == nil {
		t.Fatal("empty network should error")
	}
}

// TestNearestMatchesBruteForce cross-checks the grid search against an
// exhaustive scan on a random city.
func TestNearestMatchesBruteForce(t *testing.T) {
	net, err := gen.City(gen.CityConfig{TargetIntersections: 100, TargetSegments: 180, Seed: 5, Jitter: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := NewIndex(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	brute := func(x, y float64) (int, float64) {
		best, bestD := -1, math.Inf(1)
		for i, s := range net.Segments {
			a, b := net.Intersections[s.From], net.Intersections[s.To]
			d, _ := pointToSegment(x, y, a.X, a.Y, b.X, b.Y)
			if d < bestD {
				best, bestD = i, d
			}
		}
		return best, bestD
	}
	f := func(rawX, rawY uint16) bool {
		x := float64(rawX%1200) - 100
		y := float64(rawY%1200) - 100
		m, ok := ix.Nearest(x, y, 0, 0, 500)
		bseg, bd := brute(x, y)
		if bd > 500 {
			return !ok
		}
		if !ok {
			return false
		}
		// Either the same segment, or a tie within float tolerance
		// (two-way pairs overlap exactly).
		return m.Segment == bseg || math.Abs(m.Dist-bd) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMatchTrajectory(t *testing.T) {
	ix, err := NewIndex(hNet(), 100)
	if err != nil {
		t.Fatal(err)
	}
	// A vehicle driving east along the main road then turning north.
	traj := Trajectory{
		{X: 100, Y: 2, T: 0},
		{X: 400, Y: 2, T: 1},
		{X: 510, Y: 50, T: 2},
		{X: 505, Y: 300, T: 3},
	}
	got := ix.MatchTrajectory(traj, 60)
	want := []int{0, 0, 4, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d matched %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestMatchTrajectoryUnmatched(t *testing.T) {
	ix, err := NewIndex(hNet(), 100)
	if err != nil {
		t.Fatal(err)
	}
	got := ix.MatchTrajectory(Trajectory{{X: 0, Y: 9999, T: 0}}, 50)
	if got[0] != -1 {
		t.Fatalf("far point matched %d, want -1", got[0])
	}
}

func TestDensitiesFromTrajectories(t *testing.T) {
	net := hNet()
	ix, err := NewIndex(net, 100)
	if err != nil {
		t.Fatal(err)
	}
	trajs := []Trajectory{
		{{X: 100, Y: 0, T: 0}, {X: 300, Y: 0, T: 1}},
		{{X: 200, Y: 0, T: 0}, {X: 400, Y: 0, T: 1}},
	}
	snaps, err := Densities(net, ix, trajs, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("snapshots = %d, want 2", len(snaps))
	}
	// Both vehicles sit on segment 0 (or its two-way twin 3) at t=0;
	// total matched mass must be 2 vehicles.
	var mass float64
	for i, d := range snaps[0] {
		mass += d * net.Segments[i].Length
	}
	if math.Abs(mass-2) > 1e-9 {
		t.Fatalf("t=0 mass = %v, want 2", mass)
	}
	if _, err := Densities(net, ix, trajs, -1, 50); err == nil {
		t.Fatal("negative maxT should error")
	}
}
