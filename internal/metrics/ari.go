package metrics

import "fmt"

// ARI returns the Adjusted Rand Index between two partitionings of the
// same node set: 1 for identical partitions, ≈0 for independent ones
// (it can go slightly negative for partitions more discordant than
// chance). Used to track how much a network's congestion regions drift
// between re-partitioning rounds.
func ARI(a, b []int) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("metrics: ARI lengths differ: %d vs %d", len(a), len(b))
	}
	n := len(a)
	if n == 0 {
		return 0, fmt.Errorf("metrics: ARI of empty partitions")
	}
	// Contingency table.
	type cell struct{ i, j int }
	cont := map[cell]int{}
	rows := map[int]int{}
	cols := map[int]int{}
	for t := 0; t < n; t++ {
		if a[t] < 0 || b[t] < 0 {
			return 0, fmt.Errorf("metrics: ARI with negative label at %d", t)
		}
		cont[cell{a[t], b[t]}]++
		rows[a[t]]++
		cols[b[t]]++
	}
	choose2 := func(m int) float64 { return float64(m) * float64(m-1) / 2 }
	var sumCells, sumRows, sumCols float64
	for _, c := range cont {
		sumCells += choose2(c)
	}
	for _, r := range rows {
		sumRows += choose2(r)
	}
	for _, c := range cols {
		sumCols += choose2(c)
	}
	total := choose2(n)
	expected := sumRows * sumCols / total
	maxIndex := (sumRows + sumCols) / 2
	if maxIndex == expected {
		return 1, nil // both partitions trivial (all singletons or all one)
	}
	return (sumCells - expected) / (maxIndex - expected), nil
}
