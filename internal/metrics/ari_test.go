package metrics

import (
	"math"
	"testing"
)

func TestARIIdentical(t *testing.T) {
	a := []int{0, 0, 1, 1, 2}
	v, err := ARI(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("ARI of identical partitions = %v, want 1", v)
	}
}

func TestARIRelabelingInvariant(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	b := []int{5, 5, 9, 9, 0, 0} // same structure, different labels
	v, err := ARI(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("ARI should be label-invariant, got %v", v)
	}
}

func TestARIIndependentNearZero(t *testing.T) {
	// Two orthogonal stripe patterns over 100 items.
	a := make([]int, 100)
	b := make([]int, 100)
	for i := range a {
		a[i] = i % 2
		b[i] = (i / 2) % 2
	}
	v, err := ARI(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v) > 0.1 {
		t.Fatalf("independent partitions should score near 0, got %v", v)
	}
}

func TestARIPartialAgreement(t *testing.T) {
	a := []int{0, 0, 0, 1, 1, 1}
	b := []int{0, 0, 1, 1, 1, 1} // one element moved
	v, err := ARI(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 || v >= 1 {
		t.Fatalf("partial agreement should be in (0,1), got %v", v)
	}
}

func TestARITrivialPartitions(t *testing.T) {
	// Both all-in-one: max index == expected index, defined as 1.
	v, err := ARI([]int{0, 0, 0}, []int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("identical trivial partitions = %v, want 1", v)
	}
}

func TestARIErrors(t *testing.T) {
	if _, err := ARI([]int{0}, []int{0, 1}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := ARI(nil, nil); err == nil {
		t.Fatal("empty input should error")
	}
	if _, err := ARI([]int{-1}, []int{0}); err == nil {
		t.Fatal("negative label should error")
	}
}
