package metrics

import (
	"testing"

	"roadpart/internal/graph"
)

// benchFixture builds a 20k-node ring with striped features and labels.
func benchFixture() (*graph.Graph, []float64, []int) {
	const n = 20000
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n, 1)
	}
	f := make([]float64, n)
	assign := make([]int, n)
	for i := range f {
		assign[i] = i / (n / 8)
		if assign[i] > 7 {
			assign[i] = 7
		}
		f[i] = float64(assign[i]) + float64(i%17)/100
	}
	return g, f, assign
}

func BenchmarkEvaluate20k(b *testing.B) {
	g, f, assign := benchFixture()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(f, assign, g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkARI20k(b *testing.B) {
	_, _, assign := benchFixture()
	other := make([]int, len(assign))
	for i := range other {
		other[i] = (assign[i] + i%2) % 8
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ARI(assign, other); err != nil {
			b.Fatal(err)
		}
	}
}
