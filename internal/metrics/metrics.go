// Package metrics implements the paper's four evaluation measures
// (Section 6.2) over density space, plus partition validation against
// conditions C.1–C.2 of the problem definition:
//
//   - Inter: average over spatially adjacent partition pairs of the mean
//     absolute density distance between their nodes. Higher is better
//     (inter-partition heterogeneity, condition C.3).
//   - Intra: average over partitions of the mean absolute pairwise density
//     distance inside. Lower is better (homogeneity, condition C.4).
//   - GDBI: the graph Davies–Bouldin index — classic DBI with the
//     comparison restricted to spatially adjacent partitions. Lower is
//     better.
//   - ANS: average NcutSilhouette (introduced by Ji & Geroliminis [5]):
//     per partition, the ratio of its mean within-partition dissimilarity
//     to its mean dissimilarity against spatially adjacent partitions,
//     averaged over partitions. Lower is better, and its minimum over k
//     selects the optimal partition count.
//
// All pairwise-mean computations run in O(n log n) using sorted prefix
// sums, so the metrics are usable on the largest networks.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"roadpart/internal/graph"
)

// Report bundles all four measures for one partitioning.
type Report struct {
	K     int
	Inter float64
	Intra float64
	GDBI  float64
	ANS   float64
}

// nsCap bounds a single node's NcutSilhouette ratio so that degenerate
// partitions (zero dissimilarity to a neighbor) cannot dominate the
// average; values at the cap only occur for pathological partitionings.
const nsCap = 10

// Evaluate computes all four measures for the assignment over graph g with
// node features f (densities). It returns an error for malformed input.
func Evaluate(f []float64, assign []int, g *graph.Graph) (Report, error) {
	k, err := checkInput(f, assign, g)
	if err != nil {
		return Report{}, err
	}
	parts := membership(assign, k)
	sp := make([]sortedPart, k)
	for i, members := range parts {
		sp[i] = newSortedPart(f, members)
	}
	adj := adjacency(g, assign, k)

	rep := Report{K: k}
	rep.Inter = inter(sp, adj)
	rep.Intra = intra(sp)
	rep.GDBI = gdbi(sp, adj)
	rep.ANS = ans(sp, adj)
	return rep, nil
}

// Inter computes only the inter-partition heterogeneity measure.
func Inter(f []float64, assign []int, g *graph.Graph) (float64, error) {
	rep, err := Evaluate(f, assign, g)
	return rep.Inter, err
}

// Intra computes only the intra-partition homogeneity measure.
func Intra(f []float64, assign []int) (float64, error) {
	k := 0
	for _, a := range assign {
		if a < 0 {
			return 0, fmt.Errorf("metrics: negative partition id")
		}
		if a+1 > k {
			k = a + 1
		}
	}
	if len(f) != len(assign) {
		return 0, fmt.Errorf("metrics: %d features for %d assignments", len(f), len(assign))
	}
	parts := membership(assign, k)
	sp := make([]sortedPart, k)
	for i, members := range parts {
		sp[i] = newSortedPart(f, members)
	}
	return intra(sp), nil
}

// GDBI computes only the graph Davies–Bouldin index.
func GDBI(f []float64, assign []int, g *graph.Graph) (float64, error) {
	rep, err := Evaluate(f, assign, g)
	return rep.GDBI, err
}

// ANS computes only the average NcutSilhouette.
func ANS(f []float64, assign []int, g *graph.Graph) (float64, error) {
	rep, err := Evaluate(f, assign, g)
	return rep.ANS, err
}

// ValidatePartition verifies conditions C.1 and C.2: labels form a dense
// non-empty cover of the node set and every partition is connected in g.
func ValidatePartition(g *graph.Graph, assign []int) error {
	if len(assign) != g.N() {
		return fmt.Errorf("metrics: assignment length %d != %d nodes", len(assign), g.N())
	}
	k := 0
	for i, a := range assign {
		if a < 0 {
			return fmt.Errorf("metrics: node %d has negative partition", i)
		}
		if a+1 > k {
			k = a + 1
		}
	}
	parts := membership(assign, k)
	for p, members := range parts {
		if len(members) == 0 {
			return fmt.Errorf("metrics: partition %d is empty (labels not dense)", p)
		}
		if !g.IsConnectedSubset(members) {
			return fmt.Errorf("metrics: partition %d is not connected (condition C.2)", p)
		}
	}
	return nil
}

// ---- internals ----

func checkInput(f []float64, assign []int, g *graph.Graph) (int, error) {
	if g.N() != len(assign) || len(f) != len(assign) {
		return 0, fmt.Errorf("metrics: sizes differ: %d nodes, %d assignments, %d features", g.N(), len(assign), len(f))
	}
	if len(assign) == 0 {
		return 0, fmt.Errorf("metrics: empty input")
	}
	k := 0
	for i, a := range assign {
		if a < 0 {
			return 0, fmt.Errorf("metrics: node %d has negative partition", i)
		}
		if a+1 > k {
			k = a + 1
		}
	}
	return k, nil
}

func membership(assign []int, k int) [][]int {
	parts := make([][]int, k)
	for v, a := range assign {
		parts[a] = append(parts[a], v)
	}
	return parts
}

// adjacency returns for each partition the sorted list of spatially
// adjacent partitions (those sharing at least one graph edge). Sorted
// slices, not maps: every later summation then accumulates in a fixed
// order, keeping the metrics bit-for-bit reproducible.
func adjacency(g *graph.Graph, assign []int, k int) [][]int {
	sets := make([]map[int]bool, k)
	for i := range sets {
		sets[i] = map[int]bool{}
	}
	for u := 0; u < g.N(); u++ {
		for _, e := range g.Neighbors(u) {
			a, b := assign[u], assign[e.To]
			if a != b {
				sets[a][b] = true
				sets[b][a] = true
			}
		}
	}
	adj := make([][]int, k)
	for i, s := range sets {
		for j := range s {
			adj[i] = append(adj[i], j)
		}
		sort.Ints(adj[i])
	}
	return adj
}

// sortedPart holds one partition's features sorted with prefix sums, the
// substrate for O(log n) mean-absolute-distance queries.
type sortedPart struct {
	vals   []float64 // ascending
	prefix []float64 // prefix[i] = sum of vals[:i]
	mean   float64
}

func newSortedPart(f []float64, members []int) sortedPart {
	vals := make([]float64, len(members))
	for i, v := range members {
		vals[i] = f[v]
	}
	sort.Float64s(vals)
	prefix := make([]float64, len(vals)+1)
	for i, v := range vals {
		prefix[i+1] = prefix[i] + v
	}
	var mean float64
	if len(vals) > 0 {
		mean = prefix[len(vals)] / float64(len(vals))
	}
	return sortedPart{vals: vals, prefix: prefix, mean: mean}
}

// sumAbsTo returns Σ_u |vals[u] − x|.
func (p *sortedPart) sumAbsTo(x float64) float64 {
	m := len(p.vals)
	i := sort.SearchFloat64s(p.vals, x)
	below := x*float64(i) - p.prefix[i]
	above := (p.prefix[m] - p.prefix[i]) - x*float64(m-i)
	return below + above
}

// meanAbsTo returns the mean |vals[u] − x| over the partition.
func (p *sortedPart) meanAbsTo(x float64) float64 {
	if len(p.vals) == 0 {
		return 0
	}
	return p.sumAbsTo(x) / float64(len(p.vals))
}

// meanPairwise returns the mean |a−b| over unordered pairs inside the
// partition (0 for fewer than 2 members), via the sorted identity
// Σ_{i<j}(v_j − v_i) = Σ_j (2j − m + 1)·v_j.
func (p *sortedPart) meanPairwise() float64 {
	m := len(p.vals)
	if m < 2 {
		return 0
	}
	var s float64
	for j, v := range p.vals {
		s += float64(2*j-m+1) * v
	}
	return s / (float64(m) * float64(m-1) / 2)
}

// meanCross returns the mean |a−b| over pairs with a in p and b in q.
func meanCross(p, q *sortedPart) float64 {
	if len(p.vals) == 0 || len(q.vals) == 0 {
		return 0
	}
	// Iterate the smaller side for O(min·log max).
	if len(p.vals) > len(q.vals) {
		p, q = q, p
	}
	var s float64
	for _, v := range p.vals {
		s += q.sumAbsTo(v)
	}
	return s / (float64(len(p.vals)) * float64(len(q.vals)))
}

// inter is the footnote-3 measure: the average InterDist over adjacent
// partition pairs.
func inter(sp []sortedPart, adj [][]int) float64 {
	var total float64
	pairs := 0
	for i := range sp {
		for _, j := range adj[i] {
			if j <= i {
				continue
			}
			total += meanCross(&sp[i], &sp[j])
			pairs++
		}
	}
	if pairs == 0 {
		return 0
	}
	return total / float64(pairs)
}

// intra is the footnote-4 measure: the average within-partition mean
// pairwise distance.
func intra(sp []sortedPart) float64 {
	if len(sp) == 0 {
		return 0
	}
	var total float64
	for i := range sp {
		total += sp[i].meanPairwise()
	}
	return total / float64(len(sp))
}

// gdbi is the footnote-5 measure: per partition, the worst
// (S_i + S_j)/d(μ_i, μ_j) over spatially adjacent partitions, averaged.
// S is the mean absolute distance of members from the partition mean.
func gdbi(sp []sortedPart, adj [][]int) float64 {
	k := len(sp)
	if k == 0 {
		return 0
	}
	scatter := make([]float64, k)
	for i := range sp {
		scatter[i] = sp[i].meanAbsTo(sp[i].mean)
	}
	var total float64
	counted := 0
	for i := range sp {
		worst := 0.0
		seen := false
		for _, j := range adj[i] {
			d := math.Abs(sp[i].mean - sp[j].mean)
			r := float64(nsCap)
			if d > 0 {
				r = math.Min(nsCap, (scatter[i]+scatter[j])/d)
			} else if scatter[i]+scatter[j] == 0 {
				r = 0 // identical degenerate partitions
			}
			if r > worst {
				worst = r
			}
			seen = true
		}
		if seen {
			total += worst
			counted++
		}
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}

// ans is the average NcutSilhouette, the partition-level silhouette ratio
// of [5]: for each partition i with spatially adjacent partitions, NS_i is
// its mean within-partition dissimilarity divided by its mean
// dissimilarity against adjacent partitions; ANS is the average NS over
// such partitions. A coherent partition scores well below 1; as k grows
// past the natural region count, adjacent partitions become similar, the
// denominator collapses and ANS rises again — which is why its minimum
// over k selects the optimal partition count. Ratios are capped and 0/0
// (no contrast either way) counts as 1.
func ans(sp []sortedPart, adj [][]int) float64 {
	var total float64
	counted := 0
	for i := range sp {
		if len(adj[i]) == 0 {
			continue
		}
		av := sp[i].meanPairwise()
		var bv float64
		for _, j := range adj[i] {
			bv += meanCross(&sp[i], &sp[j])
		}
		bv /= float64(len(adj[i]))
		var ns float64
		switch {
		case bv == 0 && av == 0:
			ns = 1
		case bv == 0:
			ns = nsCap
		default:
			ns = math.Min(nsCap, av/bv)
		}
		total += ns
		counted++
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}
