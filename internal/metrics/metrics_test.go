package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"roadpart/internal/graph"
)

// lineGraph returns a path graph on n nodes.
func lineGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, 1)
	}
	return g
}

// goodSplit returns a 6-node path, features in two obvious groups, plus
// the ideal and a deliberately bad assignment.
func goodSplit() (*graph.Graph, []float64, []int, []int) {
	g := lineGraph(6)
	f := []float64{1, 1.1, 0.9, 10, 10.1, 9.9}
	good := []int{0, 0, 0, 1, 1, 1}
	bad := []int{0, 0, 1, 1, 0, 0} // mixes the two density regimes
	return g, f, good, bad
}

func TestEvaluateOrdersGoodOverBad(t *testing.T) {
	g, f, good, bad := goodSplit()
	// bad is not connected per partition, so evaluate directly without
	// validation: metrics must still be computable.
	rg, err := Evaluate(f, good, g)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Evaluate(f, bad, g)
	if err != nil {
		t.Fatal(err)
	}
	if rg.Inter <= rb.Inter {
		t.Fatalf("good split inter %v should beat bad %v", rg.Inter, rb.Inter)
	}
	if rg.Intra >= rb.Intra {
		t.Fatalf("good split intra %v should beat bad %v", rg.Intra, rb.Intra)
	}
	if rg.GDBI >= rb.GDBI {
		t.Fatalf("good split GDBI %v should beat bad %v", rg.GDBI, rb.GDBI)
	}
	if rg.ANS >= rb.ANS {
		t.Fatalf("good split ANS %v should beat bad %v", rg.ANS, rb.ANS)
	}
}

func TestInterExactSmallCase(t *testing.T) {
	// Two partitions {0,1} and {2}: f = {0, 2, 5}.
	// InterDist = mean(|0-5|, |2-5|) = 4.
	g := lineGraph(3)
	f := []float64{0, 2, 5}
	v, err := Inter(f, []int{0, 0, 1}, g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-4) > 1e-12 {
		t.Fatalf("inter = %v, want 4", v)
	}
}

func TestIntraExactSmallCase(t *testing.T) {
	// Partition {0,1,2} with f={0,2,5}: pairs |0-2|,|0-5|,|2-5| → mean 10/3.
	// Partition {3} contributes 0. Average = 5/3.
	f := []float64{0, 2, 5, 9}
	v, err := Intra(f, []int{0, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-5.0/3) > 1e-12 {
		t.Fatalf("intra = %v, want 5/3", v)
	}
}

func TestMeanPairwiseMatchesNaive(t *testing.T) {
	fcheck := func(raw []float64) bool {
		var f []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				f = append(f, math.Mod(v, 1e6))
			}
		}
		if len(f) < 2 {
			return true
		}
		members := make([]int, len(f))
		for i := range members {
			members[i] = i
		}
		sp := newSortedPart(f, members)
		got := sp.meanPairwise()
		var s float64
		for i := range f {
			for j := i + 1; j < len(f); j++ {
				s += math.Abs(f[i] - f[j])
			}
		}
		want := s / (float64(len(f)) * float64(len(f)-1) / 2)
		return math.Abs(got-want) <= 1e-9*(1+math.Abs(want))
	}
	if err := quick.Check(fcheck, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanCrossMatchesNaive(t *testing.T) {
	f := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	a := newSortedPart(f, []int{0, 1, 2})
	b := newSortedPart(f, []int{3, 4, 5, 6, 7})
	got := meanCross(&a, &b)
	var s float64
	for _, i := range []int{0, 1, 2} {
		for _, j := range []int{3, 4, 5, 6, 7} {
			s += math.Abs(f[i] - f[j])
		}
	}
	want := s / 15
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("meanCross = %v, want %v", got, want)
	}
}

func TestGDBIPenalizesCloseMeans(t *testing.T) {
	g := lineGraph(6)
	farMeans := []float64{1, 1, 1, 50, 50, 50}
	closeMeans := []float64{1, 1.2, 1.1, 1.3, 1.25, 1.45}
	assign := []int{0, 0, 0, 1, 1, 1}
	far, err := GDBI(farMeans, assign, g)
	if err != nil {
		t.Fatal(err)
	}
	near, err := GDBI(closeMeans, assign, g)
	if err != nil {
		t.Fatal(err)
	}
	if far >= near {
		t.Fatalf("well-separated partitions should have lower GDBI: %v vs %v", far, near)
	}
}

func TestANSInteriorStructure(t *testing.T) {
	// ANS for the ideal split of clearly two-regime data should be well
	// below 1 (internal similarity ≫ similarity to the neighbor).
	g, f, good, _ := goodSplit()
	v, err := ANS(f, good, g)
	if err != nil {
		t.Fatal(err)
	}
	if v >= 1 {
		t.Fatalf("ANS = %v, want < 1 for the ideal split", v)
	}
}

func TestANSSinglePartitionIsZero(t *testing.T) {
	g := lineGraph(4)
	v, err := ANS([]float64{1, 2, 3, 4}, []int{0, 0, 0, 0}, g)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("ANS with one partition = %v, want 0 (no adjacent partitions)", v)
	}
}

func TestANSDegenerateCap(t *testing.T) {
	// Partition means identical (b ≈ 0 for boundary nodes) must not blow
	// up past the cap.
	g := lineGraph(4)
	v, err := ANS([]float64{5, 5, 5, 5}, []int{0, 0, 1, 1}, g)
	if err != nil {
		t.Fatal(err)
	}
	if v < 0 || v > nsCap {
		t.Fatalf("ANS = %v outside [0, %d]", v, nsCap)
	}
}

func TestValidatePartition(t *testing.T) {
	g := lineGraph(4)
	if err := ValidatePartition(g, []int{0, 0, 1, 1}); err != nil {
		t.Fatalf("valid partition rejected: %v", err)
	}
	if err := ValidatePartition(g, []int{0, 1, 0, 1}); err == nil {
		t.Fatal("disconnected partitions should fail C.2")
	}
	if err := ValidatePartition(g, []int{0, 0, 2, 2}); err == nil {
		t.Fatal("non-dense labels should fail C.1")
	}
	if err := ValidatePartition(g, []int{0, 0}); err == nil {
		t.Fatal("short assignment should fail")
	}
	if err := ValidatePartition(g, []int{0, 0, 0, -1}); err == nil {
		t.Fatal("negative labels should fail")
	}
}

func TestEvaluateErrors(t *testing.T) {
	g := lineGraph(3)
	if _, err := Evaluate([]float64{1, 2}, []int{0, 0, 0}, g); err == nil {
		t.Fatal("feature length mismatch should error")
	}
	if _, err := Evaluate(nil, nil, graph.New(0)); err == nil {
		t.Fatal("empty input should error")
	}
	if _, err := Evaluate([]float64{1, 2, 3}, []int{0, -1, 0}, g); err == nil {
		t.Fatal("negative label should error")
	}
}

func TestSumAbsToEdges(t *testing.T) {
	sp := newSortedPart([]float64{1, 3, 5}, []int{0, 1, 2})
	cases := []struct{ x, want float64 }{
		{0, 9}, // 1+3+5
		{3, 4}, // 2+0+2
		{6, 9}, // 5+3+1
		{1, 6}, // 0+2+4
	}
	for _, c := range cases {
		if got := sp.sumAbsTo(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("sumAbsTo(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}
