package metrics

import (
	"testing"
	"testing/quick"
)

// TestARISymmetryProperty: ARI(a, b) == ARI(b, a) for random labelings.
func TestARISymmetryProperty(t *testing.T) {
	f := func(rawA, rawB []uint8, nn uint8) bool {
		n := int(nn%30) + 2
		a := make([]int, n)
		b := make([]int, n)
		for i := 0; i < n; i++ {
			if i < len(rawA) {
				a[i] = int(rawA[i] % 4)
			}
			if i < len(rawB) {
				b[i] = int(rawB[i] % 4)
			}
		}
		ab, err1 := ARI(a, b)
		ba, err2 := ARI(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		d := ab - ba
		return d < 1e-12 && d > -1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestARISelfIdentityProperty: ARI(a, a) == 1 whenever a has at least two
// distinct labels (with a single label both indices coincide and the
// convention returns 1 as well).
func TestARISelfIdentityProperty(t *testing.T) {
	f := func(raw []uint8, nn uint8) bool {
		n := int(nn%30) + 2
		a := make([]int, n)
		for i := 0; i < n; i++ {
			if i < len(raw) {
				a[i] = int(raw[i] % 5)
			}
		}
		v, err := ARI(a, a)
		if err != nil {
			return false
		}
		return v > 1-1e-12 && v < 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMeanCrossSymmetryProperty: the cross-partition mean distance is
// symmetric in its arguments.
func TestMeanCrossSymmetryProperty(t *testing.T) {
	f := func(rawA, rawB []int8) bool {
		if len(rawA) == 0 || len(rawB) == 0 {
			return true
		}
		fa := make([]float64, len(rawA))
		idxA := make([]int, len(rawA))
		for i, v := range rawA {
			fa[i] = float64(v)
			idxA[i] = i
		}
		fb := make([]float64, len(rawB))
		idxB := make([]int, len(rawB))
		for i, v := range rawB {
			fb[i] = float64(v)
			idxB[i] = i
		}
		a := newSortedPart(fa, idxA)
		b := newSortedPart(fb, idxB)
		x, y := meanCross(&a, &b), meanCross(&b, &a)
		d := x - y
		return d < 1e-9 && d > -1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
