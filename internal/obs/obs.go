// Package obs is the process-wide observability layer: monotonic stage
// timers, counters and gauges registered in a registry that the HTTP
// service exposes as Prometheus text (GET /v1/metrics) and JSON
// (GET /v1/stats), and that the CLIs print as a stage-time breakdown
// table mirroring the paper's Table 3 (-timings).
//
// The paper's evaluation (Tables 3–4, Figures 6–7) is entirely about
// per-module timing and quality; this package makes the same accounting
// readable off a live process. Instrumented stages map onto the paper's
// modules: road-graph construction (module 1, Definition 2), supergraph
// mining (module 2, Algorithm 1–2), and spectral partitioning (module 3,
// Algorithm 3 / α-Cut).
//
// Everything is stdlib-only and race-clean: hot-path updates are single
// atomic operations, and the registry maps are guarded by mutexes only
// on series creation and exposition. Recording is gated by a global
// enabled flag (SetEnabled); when disabled, every update is a nil-or-flag
// check and no timestamps are taken. Instrumentation never feeds back
// into the computation, so partitioning output is bit-identical with
// observability on or off.
package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// enabled gates all recording. It defaults to on: updates are cheap
// (one atomic op) and the acceptance path expects a live /v1/metrics.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns recording on or off process-wide. Disabling makes
// every Counter/Gauge/Timer update a single atomic load and skips all
// clock reads.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether recording is on.
func Enabled() bool { return enabled.Load() }

// Kind is the metric family type.
type Kind int

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is a point-in-time float value.
	KindGauge
	// KindTimer accumulates durations (count, sum, max); it renders as a
	// Prometheus summary (_sum/_count).
	KindTimer
)

// String returns the Prometheus TYPE keyword for the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "summary"
	}
}

// Counter is a monotonically increasing counter. The zero value is ready
// to use; a nil *Counter is a no-op (so disabled call sites need no
// branches).
type Counter struct{ n atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d.
func (c *Counter) Add(d uint64) {
	if c == nil || !enabled.Load() {
		return
	}
	c.n.Add(d)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is a point-in-time float64 value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil || !enabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d to the gauge.
func (g *Gauge) Add(d float64) {
	if g == nil || !enabled.Load() {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Timer accumulates observed durations: count, total and maximum. It is
// the backing store for stage spans.
type Timer struct {
	count atomic.Uint64
	sum   atomic.Int64 // nanoseconds
	max   atomic.Int64 // nanoseconds
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	if t == nil || !enabled.Load() {
		return
	}
	t.count.Add(1)
	t.sum.Add(int64(d))
	for {
		cur := t.max.Load()
		if int64(d) <= cur || t.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Count returns the number of observations.
func (t *Timer) Count() uint64 {
	if t == nil {
		return 0
	}
	return t.count.Load()
}

// Total returns the accumulated duration.
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.sum.Load())
}

// Max returns the largest single observation.
func (t *Timer) Max() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.max.Load())
}

// Mean returns the average observation, zero when nothing was observed.
func (t *Timer) Mean() time.Duration {
	n := t.Count()
	if n == 0 {
		return 0
	}
	return t.Total() / time.Duration(n)
}

// Start opens a span against the timer. When recording is disabled (or
// the timer is nil) the returned span is inert and no clock is read.
func (t *Timer) Start() Span {
	if t == nil || !enabled.Load() {
		return Span{}
	}
	return Span{t: t, start: time.Now()}
}

// Span is one in-flight timed stage. End records the elapsed time; a
// zero Span's End is a no-op. Spans are values — passing them around
// never allocates.
type Span struct {
	t     *Timer
	start time.Time
}

// End closes the span, recording its duration.
func (s Span) End() {
	if s.t != nil {
		s.t.Observe(time.Since(s.start))
	}
}

// Label is one metric dimension (e.g. stage="spectral_cut").
type Label struct{ Name, Value string }

// series is one labeled instance inside a family; exactly one of the
// three value fields is non-nil, matching the family kind.
type series struct {
	labels  []Label // sorted by name
	key     string  // rendered label key, used for dedup and sorting
	counter *Counter
	gauge   *Gauge
	timer   *Timer
}

// family is one named metric with a help string and a fixed kind.
type family struct {
	name, help string
	kind       Kind

	mu     sync.Mutex
	series map[string]*series
}

// Registry holds metric families. The zero value is not usable; create
// one with NewRegistry or use Default. All methods are safe for
// concurrent use.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// std is the process-wide default registry; package-level helpers and
// the HTTP handlers read it.
var std = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return std }

// Counter returns (registering on first use) the counter for name with
// the given label pairs. labelPairs alternate name, value; it panics on
// an odd count or a kind conflict with an existing family — both
// programmer errors.
func (r *Registry) Counter(name, help string, labelPairs ...string) *Counter {
	return r.metric(name, help, KindCounter, labelPairs).counter
}

// Gauge returns (registering on first use) the gauge for name and labels.
func (r *Registry) Gauge(name, help string, labelPairs ...string) *Gauge {
	return r.metric(name, help, KindGauge, labelPairs).gauge
}

// Timer returns (registering on first use) the timer for name and labels.
func (r *Registry) Timer(name, help string, labelPairs ...string) *Timer {
	return r.metric(name, help, KindTimer, labelPairs).timer
}

// Reset zeroes every registered series in place. Series stay registered,
// so pointers handed out earlier keep working — tests and the CLIs use
// this to scope readings to one run.
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, f := range r.families {
		f.mu.Lock()
		for _, s := range f.series {
			switch {
			case s.counter != nil:
				s.counter.n.Store(0)
			case s.gauge != nil:
				s.gauge.bits.Store(0)
			case s.timer != nil:
				s.timer.count.Store(0)
				s.timer.sum.Store(0)
				s.timer.max.Store(0)
			}
		}
		f.mu.Unlock()
	}
}

// metric resolves (or creates) the series for (name, labels).
func (r *Registry) metric(name, help string, kind Kind, labelPairs []string) *series {
	if len(labelPairs)%2 != 0 {
		panic("obs: odd label pair count for " + name)
	}
	labels := make([]Label, 0, len(labelPairs)/2)
	for i := 0; i < len(labelPairs); i += 2 {
		labels = append(labels, Label{Name: labelPairs[i], Value: labelPairs[i+1]})
	}
	sortLabels(labels)
	key := labelKey(labels)

	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		f = r.families[name]
		if f == nil {
			f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != kind {
		panic("obs: " + name + " registered as " + f.kind.String() + ", requested as " + kind.String())
	}

	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.series[key]
	if s == nil {
		s = &series{labels: labels, key: key}
		switch kind {
		case KindCounter:
			s.counter = &Counter{}
		case KindGauge:
			s.gauge = &Gauge{}
		default:
			s.timer = &Timer{}
		}
		f.series[key] = s
	}
	return s
}

// sortLabels orders labels by name so the same label set always maps to
// the same series regardless of argument order.
func sortLabels(labels []Label) {
	for i := 1; i < len(labels); i++ {
		for j := i; j > 0 && labels[j].Name < labels[j-1].Name; j-- {
			labels[j], labels[j-1] = labels[j-1], labels[j]
		}
	}
}

// labelKey renders labels as they appear inside the exposition braces.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	out := ""
	for i, l := range labels {
		if i > 0 {
			out += ","
		}
		out += l.Name + `="` + escapeLabel(l.Value) + `"`
	}
	return out
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	out := make([]byte, 0, len(v))
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, v[i])
		}
	}
	return string(out)
}
