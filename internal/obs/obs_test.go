package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrency hammers one registry from many goroutines —
// creating series, updating them and rendering concurrently — and then
// checks the totals. Run under -race this is the registry's
// race-cleanliness proof.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 500

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("test_ops_total", "ops", "worker", string(rune('a'+g%4))).Inc()
				r.Gauge("test_level", "level").Set(float64(i))
				r.Timer("test_stage_seconds", "stages", "stage", "s").Observe(time.Microsecond)
				if i%100 == 0 {
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Errorf("WritePrometheus: %v", err)
					}
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()

	var sum uint64
	for _, lab := range []string{"a", "b", "c", "d"} {
		sum += r.Counter("test_ops_total", "ops", "worker", lab).Value()
	}
	if want := uint64(goroutines * perG); sum != want {
		t.Fatalf("counter sum = %d, want %d", sum, want)
	}
	tm := r.Timer("test_stage_seconds", "stages", "stage", "s")
	if tm.Count() != goroutines*perG {
		t.Fatalf("timer count = %d, want %d", tm.Count(), goroutines*perG)
	}
	if tm.Total() != goroutines*perG*time.Microsecond {
		t.Fatalf("timer total = %v", tm.Total())
	}
}

func TestDisabledRecordsNothing(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	g := r.Gauge("g", "g")
	tm := r.Timer("t_seconds", "t")

	SetEnabled(false)
	defer SetEnabled(true)
	c.Inc()
	c.Add(7)
	g.Set(3.5)
	g.Add(1)
	tm.Observe(time.Second)
	sp := tm.Start()
	sp.End()

	if c.Value() != 0 || g.Value() != 0 || tm.Count() != 0 || tm.Total() != 0 {
		t.Fatalf("disabled recording leaked: c=%d g=%v t=%d/%v",
			c.Value(), g.Value(), tm.Count(), tm.Total())
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var tm *Timer
	c.Inc()
	g.Set(1)
	tm.Observe(time.Second)
	tm.Start().End()
	if c.Value() != 0 || g.Value() != 0 || tm.Count() != 0 || tm.Mean() != 0 || tm.Max() != 0 {
		t.Fatal("nil metrics must read zero")
	}
	Span{}.End() // zero span is inert
}

func TestTimerStats(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("t_seconds", "t")
	tm.Observe(2 * time.Millisecond)
	tm.Observe(4 * time.Millisecond)
	if tm.Count() != 2 {
		t.Fatalf("count = %d", tm.Count())
	}
	if tm.Total() != 6*time.Millisecond {
		t.Fatalf("total = %v", tm.Total())
	}
	if tm.Mean() != 3*time.Millisecond {
		t.Fatalf("mean = %v", tm.Mean())
	}
	if tm.Max() != 4*time.Millisecond {
		t.Fatalf("max = %v", tm.Max())
	}
}

func TestLabelOrderIndependence(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x", "p", "1", "q", "2")
	b := r.Counter("x_total", "x", "q", "2", "p", "1")
	if a != b {
		t.Fatal("label order created distinct series")
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash", "c")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind conflict")
		}
	}()
	r.Gauge("clash", "g")
}

func TestReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	tm := r.Timer("t_seconds", "t")
	c.Add(5)
	tm.Observe(time.Second)
	r.Reset()
	if c.Value() != 0 || tm.Count() != 0 || tm.Total() != 0 || tm.Max() != 0 {
		t.Fatal("Reset left residue")
	}
	c.Inc() // pointers handed out earlier keep working
	if c.Value() != 1 {
		t.Fatal("counter dead after Reset")
	}
}

func TestWriteStageTable(t *testing.T) {
	// The default registry is process-global; scope this test's readings
	// by resetting it first.
	Default().Reset()
	StageTimer("road_graph_build").Observe(10 * time.Millisecond)
	StageTimer("spectral_cut").Observe(30 * time.Millisecond)
	StageTimer("eigendecompose").Observe(20 * time.Millisecond) // nested
	defer Default().Reset()

	var sb strings.Builder
	if err := WriteStageTable(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"road_graph_build", "spectral_cut", "eigendecompose", "pipeline total", "25.0%", "75.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("stage table missing %q:\n%s", want, out)
		}
	}
	// Nested stages carry no share.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "eigendecompose") && !strings.Contains(line, "-") {
			t.Errorf("nested stage got a share: %q", line)
		}
	}
}
