package obs

// Buffer-pool accounting. The allocation-free hot paths (see
// docs/PERFORMANCE.md) recycle scratch buffers through sync.Pool-backed
// pools; these two families make the recycling observable so a
// regression (a pool that stops hitting) shows up on /v1/metrics long
// before it shows up in GC pressure:
//
//	roadpart_pool_events_total{pool="...",result="hit"|"miss"}
//	roadpart_pool_bytes_reused_total{pool="..."}
//
// A hit means a pooled buffer with sufficient capacity was reused (its
// capacity in bytes accrues to the bytes-reused counter); a miss means
// the pool was empty or too small and a fresh buffer was allocated.
// Steady state is all hits: after warm-up the miss counters freeze while
// bytes-reused keeps growing.

// Family names for the pool metrics, exported so the exposition tests
// and the HTTP layer can reference them without string drift.
const (
	// PoolEventsFamily counts pool lookups by pool name and result.
	PoolEventsFamily = "roadpart_pool_events_total"
	// PoolBytesFamily accumulates the bytes served from pooled buffers.
	PoolBytesFamily = "roadpart_pool_bytes_reused_total"
)

const (
	poolEventsHelp = "Scratch-buffer pool lookups by pool and result (hit = reused, miss = freshly allocated)."
	poolBytesHelp  = "Bytes served from reused pooled buffers instead of fresh allocations."
)

// PoolTally is the counter triple describing one named buffer pool.
// Construct one per pool with NewPoolTally at package init; recording a
// hit or miss is then one or two atomic adds. The zero value is a no-op.
type PoolTally struct {
	hits, misses, bytes *Counter
}

// NewPoolTally registers (or resolves) the hit/miss/bytes-reused series
// for the named pool on the default registry.
func NewPoolTally(pool string) PoolTally {
	return PoolTally{
		hits:   Default().Counter(PoolEventsFamily, poolEventsHelp, "pool", pool, "result", "hit"),
		misses: Default().Counter(PoolEventsFamily, poolEventsHelp, "pool", pool, "result", "miss"),
		bytes:  Default().Counter(PoolBytesFamily, poolBytesHelp, "pool", pool),
	}
}

// Hit records a pool hit that reused a buffer of the given size in bytes.
func (t PoolTally) Hit(bytes int) {
	t.hits.Inc()
	if bytes > 0 {
		t.bytes.Add(uint64(bytes))
	}
}

// Miss records a pool miss (a fresh allocation took the buffer's place).
func (t PoolTally) Miss() {
	t.misses.Inc()
}
