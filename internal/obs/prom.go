package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4). Families are sorted by name and
// series by label key, so the output is deterministic for a given
// registry state. Timers render as summaries: <name>_sum in seconds and
// <name>_count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.sortedSeries() {
			braces := ""
			if s.key != "" {
				braces = "{" + s.key + "}"
			}
			var err error
			switch f.kind {
			case KindCounter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, braces, s.counter.Value())
			case KindGauge:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, braces, formatFloat(s.gauge.Value()))
			default:
				if _, err = fmt.Fprintf(w, "%s_sum%s %s\n", f.name, braces,
					formatFloat(s.timer.Total().Seconds())); err != nil {
					return err
				}
				_, err = fmt.Fprintf(w, "%s_count%s %d\n", f.name, braces, s.timer.Count())
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// Metric is one family in a Snapshot.
type Metric struct {
	Name   string   `json:"name"`
	Help   string   `json:"help,omitempty"`
	Kind   string   `json:"kind"`
	Series []Series `json:"series"`
}

// Series is one labeled instance in a Snapshot. Counters and gauges set
// Value; timers set Count/TotalMs/MeanMs/MaxMs.
type Series struct {
	Labels  map[string]string `json:"labels,omitempty"`
	Value   *float64          `json:"value,omitempty"`
	Count   uint64            `json:"count,omitempty"`
	TotalMs float64           `json:"total_ms,omitempty"`
	MeanMs  float64           `json:"mean_ms,omitempty"`
	MaxMs   float64           `json:"max_ms,omitempty"`
}

// Snapshot returns a point-in-time copy of every registered metric,
// ordered like the Prometheus exposition. It is what GET /v1/stats
// serves.
func (r *Registry) Snapshot() []Metric {
	fams := r.sortedFamilies()
	out := make([]Metric, 0, len(fams))
	for _, f := range fams {
		m := Metric{Name: f.name, Help: f.help, Kind: f.kind.String()}
		for _, s := range f.sortedSeries() {
			var labels map[string]string
			if len(s.labels) > 0 {
				labels = make(map[string]string, len(s.labels))
				for _, l := range s.labels {
					labels[l.Name] = l.Value
				}
			}
			ser := Series{Labels: labels}
			switch f.kind {
			case KindCounter:
				v := float64(s.counter.Value())
				ser.Value = &v
			case KindGauge:
				v := s.gauge.Value()
				ser.Value = &v
			default:
				ser.Count = s.timer.Count()
				ser.TotalMs = durMs(s.timer.Total())
				ser.MeanMs = durMs(s.timer.Mean())
				ser.MaxMs = durMs(s.timer.Max())
			}
			m.Series = append(m.Series, ser)
		}
		out = append(out, m)
	}
	return out
}

// sortedFamilies returns the families ordered by name.
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedSeries returns the family's series ordered by label key.
func (f *family) sortedSeries() []*series {
	f.mu.Lock()
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// formatFloat renders a float the shortest way that round-trips.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// escapeHelp escapes a help string per the exposition format.
func escapeHelp(h string) string {
	out := make([]byte, 0, len(h))
	for i := 0; i < len(h); i++ {
		switch h[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, h[i])
		}
	}
	return string(out)
}

// durMs converts a duration to milliseconds.
func durMs(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
