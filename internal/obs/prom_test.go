package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestPrometheusGolden pins the exact text exposition for a registry
// with all three kinds, multiple labeled series, and escaping.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("roadpart_http_requests_total", "Requests served.", "path", "/v1/sweep", "code", "200").Add(3)
	r.Counter("roadpart_http_requests_total", "Requests served.", "path", "/v1/sweep", "code", "400").Add(1)
	r.Gauge("roadpart_build_info", "Build info.").Set(1)
	r.Timer("roadpart_stage_duration_seconds", "Stage time.", "stage", "spectral_cut").Observe(1500 * time.Millisecond)
	r.Counter("weird_total", `quote " slash \ newline`+"\n", "k", `v"w\x`+"\n").Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP roadpart_build_info Build info.
# TYPE roadpart_build_info gauge
roadpart_build_info 1
# HELP roadpart_http_requests_total Requests served.
# TYPE roadpart_http_requests_total counter
roadpart_http_requests_total{code="200",path="/v1/sweep"} 3
roadpart_http_requests_total{code="400",path="/v1/sweep"} 1
# HELP roadpart_stage_duration_seconds Stage time.
# TYPE roadpart_stage_duration_seconds summary
roadpart_stage_duration_seconds_sum{stage="spectral_cut"} 1.5
roadpart_stage_duration_seconds_count{stage="spectral_cut"} 1
# HELP weird_total quote " slash \\ newline\n
# TYPE weird_total counter
weird_total{k="v\"w\\x\n"} 1
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestPrometheusPoolGolden pins the exposition of the buffer-pool
// families exactly as NewPoolTally registers them (same family names and
// help strings), so the /v1/metrics surface documented in docs/API.md
// cannot drift silently.
func TestPrometheusPoolGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter(PoolEventsFamily, poolEventsHelp, "pool", "eigen_workspace", "result", "hit").Add(41)
	r.Counter(PoolEventsFamily, poolEventsHelp, "pool", "eigen_workspace", "result", "miss").Add(1)
	r.Counter(PoolEventsFamily, poolEventsHelp, "pool", "kmeans_nd", "result", "hit").Add(7)
	r.Counter(PoolBytesFamily, poolBytesHelp, "pool", "eigen_workspace").Add(1 << 20)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP roadpart_pool_bytes_reused_total Bytes served from reused pooled buffers instead of fresh allocations.
# TYPE roadpart_pool_bytes_reused_total counter
roadpart_pool_bytes_reused_total{pool="eigen_workspace"} 1048576
# HELP roadpart_pool_events_total Scratch-buffer pool lookups by pool and result (hit = reused, miss = freshly allocated).
# TYPE roadpart_pool_events_total counter
roadpart_pool_events_total{pool="eigen_workspace",result="hit"} 41
roadpart_pool_events_total{pool="eigen_workspace",result="miss"} 1
roadpart_pool_events_total{pool="kmeans_nd",result="hit"} 7
`
	if got := sb.String(); got != want {
		t.Fatalf("pool exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestPoolTallyCounts exercises the PoolTally fast path against the
// default registry and checks the three series move as documented: a
// hit bumps events{result="hit"} and, for a nonzero size, bytes-reused;
// a miss bumps only events{result="miss"}.
func TestPoolTallyCounts(t *testing.T) {
	tally := NewPoolTally("obs_test_pool")
	tally.Miss()
	tally.Hit(256)
	tally.Hit(0) // zero-byte hit must not move the bytes counter

	find := func(family, result string) float64 {
		t.Helper()
		for _, fam := range Default().Snapshot() {
			if fam.Name != family {
				continue
			}
			for _, s := range fam.Series {
				if s.Labels["pool"] != "obs_test_pool" {
					continue
				}
				if result != "" && s.Labels["result"] != result {
					continue
				}
				if s.Value == nil {
					t.Fatalf("%s series has nil value", family)
				}
				return *s.Value
			}
		}
		t.Fatalf("no %s series for obs_test_pool (result=%q)", family, result)
		return 0
	}
	if got := find(PoolEventsFamily, "hit"); got != 2 {
		t.Fatalf("hit count = %v, want 2", got)
	}
	if got := find(PoolEventsFamily, "miss"); got != 1 {
		t.Fatalf("miss count = %v, want 1", got)
	}
	if got := find(PoolBytesFamily, ""); got != 256 {
		t.Fatalf("bytes reused = %v, want 256", got)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "count", "x", "1").Add(2)
	r.Timer("t_seconds", "timer").Observe(4 * time.Millisecond)

	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("got %d families, want 2", len(snap))
	}
	if snap[0].Name != "c_total" || snap[0].Kind != "counter" {
		t.Fatalf("family 0 = %+v", snap[0])
	}
	if v := snap[0].Series[0].Value; v == nil || *v != 2 {
		t.Fatalf("counter value = %v", v)
	}
	if snap[0].Series[0].Labels["x"] != "1" {
		t.Fatalf("labels = %v", snap[0].Series[0].Labels)
	}
	ts := snap[1].Series[0]
	if ts.Count != 1 || ts.TotalMs != 4 || ts.MeanMs != 4 || ts.MaxMs != 4 {
		t.Fatalf("timer series = %+v", ts)
	}

	// The snapshot must marshal cleanly — it is the /v1/stats body.
	if _, err := json.Marshal(snap); err != nil {
		t.Fatal(err)
	}
}
