package obs

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// StageFamily is the timer family holding per-stage pipeline durations,
// labeled stage=<name>. Stage names follow the paper's module structure;
// see Stages.
const StageFamily = "roadpart_stage_duration_seconds"

const stageHelp = "Wall-clock time spent in each partitioning pipeline stage."

// StageInfo describes one canonical pipeline stage for reporting.
type StageInfo struct {
	// Module is the paper module the stage belongs to: "1" (road graph
	// construction), "2" (supergraph mining), "3" (spectral partitioning),
	// or "-" for aggregates that overlap other stages.
	Module string
	// Name is the stage label value.
	Name string
	// Nested marks stages whose time is contained in (or overlaps) other
	// stages; they are excluded from share-of-total accounting.
	Nested bool
}

// Stages is the canonical stage order, mirroring the module rows of the
// paper's Table 3. Instrumentation elsewhere may add stages not listed
// here; WriteStageTable appends them at the end.
var Stages = []StageInfo{
	{Module: "1", Name: "road_graph_build"},
	{Module: "2", Name: "mcg_shortlist"},
	{Module: "2", Name: "full_kmeans"},
	{Module: "2", Name: "stability_split"},
	{Module: "2", Name: "supergraph_merge"},
	// coarsen runs during pipeline construction when the multilevel path
	// engages (docs/SCALING.md); it is a sibling of the module-3 stages,
	// not contained in any of them.
	{Module: "3", Name: "coarsen"},
	{Module: "3", Name: "spectral_cut"},
	{Module: "3", Name: "alpha_cut_refine"},
	// project/refine run once per uncoarsening step of the multilevel
	// path, inside spectral_cut's span.
	{Module: "3", Name: "project", Nested: true},
	{Module: "3", Name: "refine", Nested: true},
	// The eigendecomposition runs under the single-flight cache: inside
	// spectral_cut on a cold call, or under k_sweep warming. Its time is
	// therefore already counted above.
	{Module: "3", Name: "eigendecompose", Nested: true},
	// k_sweep spans a whole SweepK call, which contains many
	// spectral_cut/alpha_cut_refine stages.
	{Module: "-", Name: "k_sweep", Nested: true},
}

// StageTimer returns the default registry's timer for one pipeline
// stage. Hot call sites cache the returned *Timer in a package variable
// so recording is one map-free atomic update.
func StageTimer(stage string) *Timer {
	return std.Timer(StageFamily, stageHelp, "stage", stage)
}

// StartStage opens a span on the named stage's timer in the default
// registry.
func StartStage(stage string) Span { return StageTimer(stage).Start() }

// WriteStageTable prints the per-stage breakdown of the default registry
// as a table mirroring the paper's Table 3 layout: one row per stage
// grouped by module, with call counts, total/mean wall-clock time and
// the share of end-to-end pipeline time. Nested stages (whose time is
// contained in another row) are shown but excluded from the share
// denominator. Stages with no observations are omitted.
func WriteStageTable(w io.Writer) error {
	rows, total := stageRows()
	if len(rows) == 0 {
		_, err := fmt.Fprintln(w, "no stage timings recorded")
		return err
	}
	if _, err := fmt.Fprintf(w, "%-6s %-18s %8s %12s %12s %8s\n",
		"module", "stage", "calls", "total", "mean", "share"); err != nil {
		return err
	}
	for _, row := range rows {
		share := "-"
		if !row.info.Nested && total > 0 {
			share = fmt.Sprintf("%.1f%%", 100*float64(row.timer.Total())/float64(total))
		}
		if _, err := fmt.Fprintf(w, "%-6s %-18s %8d %12s %12s %8s\n",
			row.info.Module, row.info.Name, row.timer.Count(),
			roundDur(row.timer.Total()), roundDur(row.timer.Mean()), share); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-6s %-18s %8s %12s\n", "", "pipeline total", "", roundDur(total))
	return err
}

// stageRow pairs a canonical stage with its recorded timer.
type stageRow struct {
	info  StageInfo
	timer *Timer
}

// stageRows collects the non-empty stage timers in canonical order
// (unknown stages last) plus the non-nested total.
func stageRows() ([]stageRow, time.Duration) {
	std.mu.RLock()
	f := std.families[StageFamily]
	std.mu.RUnlock()
	if f == nil {
		return nil, 0
	}

	byName := make(map[string]*Timer)
	for _, s := range f.sortedSeries() {
		if s.timer.Count() == 0 {
			continue
		}
		for _, l := range s.labels {
			if l.Name == "stage" {
				byName[l.Value] = s.timer
			}
		}
	}

	var rows []stageRow
	var total time.Duration
	for _, info := range Stages {
		t, ok := byName[info.Name]
		if !ok {
			continue
		}
		delete(byName, info.Name)
		rows = append(rows, stageRow{info: info, timer: t})
		if !info.Nested {
			total += t.Total()
		}
	}
	// Unknown stages (not in the canonical list) follow, sorted by name.
	extra := make([]string, 0, len(byName))
	for name := range byName {
		extra = append(extra, name)
	}
	sort.Strings(extra)
	for _, name := range extra {
		rows = append(rows, stageRow{info: StageInfo{Module: "?", Name: name, Nested: true}, timer: byName[name]})
	}
	return rows, total
}

// roundDur trims a duration to a readable precision for tables.
func roundDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.String()
	}
}
