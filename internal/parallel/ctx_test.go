package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestForCtxPreCancelled pins the fast path: a context that is already
// done runs zero items, for every worker count.
func TestForCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := ForCtx(ctx, 100, workers, func(i int) { ran.Add(1) })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want Canceled", workers, err)
		}
		if n := ran.Load(); n != 0 {
			t.Fatalf("workers=%d: %d items ran under a pre-cancelled ctx", workers, n)
		}
	}
}

// TestForCtxStopsWithinOneItem cancels from inside item 10 and asserts
// the grain guarantee: each worker finishes at most the one item it had
// in hand when cancellation landed, so at most `workers` further items
// run after the cancel.
func TestForCtxStopsWithinOneItem(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var before, after atomic.Int64
		err := ForCtx(ctx, 10_000, workers, func(i int) {
			if before.Add(1) == 10 {
				cancel()
				return
			}
			select {
			case <-ctx.Done():
				after.Add(1)
			default:
			}
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want Canceled", workers, err)
		}
		if n := after.Load(); n > int64(workers) {
			t.Fatalf("workers=%d: %d items started after cancellation (grain is one item per worker)", workers, n)
		}
	}
}

// TestForCtxUncancelledMatchesFor asserts an uncancelled ForCtx runs
// exactly the indices For runs and returns nil.
func TestForCtxUncancelledMatchesFor(t *testing.T) {
	for _, workers := range []int{1, 3} {
		seen := make([]atomic.Int32, 50)
		if err := ForCtx(context.Background(), 50, workers, func(i int) { seen[i].Add(1) }); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range seen {
			if c := seen[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

// TestForErrCtxContextErrorWins pins the error-selection rule: on a
// cancelled run the context error is reported even when items also
// failed, because which items got to fail is timing-dependent.
func TestForErrCtxContextErrorWins(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	boom := fmt.Errorf("item failure")
	err := ForErrCtx(ctx, 100, 4, func(i int) error {
		if i == 0 {
			cancel()
		}
		return boom
	})
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want the context error to win over item errors", err)
	}
}

// TestForErrCtxUncancelledReportsLowestIndex matches ForErr's rule when
// no cancellation happens.
func TestForErrCtxUncancelledReportsLowestIndex(t *testing.T) {
	err := ForErrCtx(context.Background(), 20, 4, func(i int) error {
		if i == 7 || i == 13 {
			return fmt.Errorf("fail-%d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "fail-7" {
		t.Fatalf("err = %v, want fail-7 (lowest failing index)", err)
	}
}

// TestMapCtxUncancelledMatchesMap asserts MapCtx is byte-for-byte Map
// when never cancelled.
func TestMapCtxUncancelledMatchesMap(t *testing.T) {
	fn := func(i int) (int, error) { return i * i, nil }
	want, err := Map(30, 3, fn)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MapCtx(context.Background(), 30, 3, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("index %d: MapCtx=%d Map=%d", i, got[i], want[i])
		}
	}
}

// TestForCtxDrainsGoroutines asserts a cancelled parallel ForCtx leaves
// no workers behind: the goroutine count returns to its baseline.
func TestForCtxDrainsGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	for round := 0; round < 10; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		_ = ForCtx(ctx, 1000, 8, func(i int) {
			if i == 3 {
				cancel()
			}
		})
		cancel()
	}
	waitForGoroutines(t, base)
}

// waitForGoroutines polls until the goroutine count drops back to at
// most base+2 (the runtime may keep a couple of its own), failing after
// two seconds.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}
