// Package parallel provides the small, deterministic, bounded worker
// pools used by the partitioning hot paths: the k-sweep in core, the
// row-parallel matvec kernels in linalg, the k-means restarts and the
// experiments fan-out. It implements no paper section itself — it is the
// execution substrate under all three modules of the paper's framework
// (Figure 2), added for the production-scale goals in ROADMAP.md.
//
// Design rules, in priority order:
//
//  1. Determinism: every helper assigns work by index and collects
//     results by index, so the output (including which error is
//     reported) never depends on goroutine scheduling. Callers that keep
//     per-index work independent get byte-identical results for any
//     worker count.
//  2. Boundedness: at most `workers` goroutines run at once; a worker
//     count of 0 selects runtime.GOMAXPROCS(0) and negative counts
//     clamp to 1 (serial).
//  3. Zero overhead when serial: with one worker (or one item) the work
//     runs inline on the calling goroutine — no channels, no spawns —
//     so Workers=1 is exactly the serial program.
//  4. Cooperative cancellation: the Ctx variants observe ctx between
//     items (never mid-item — one work item is the cancellation grain),
//     always drain started work before returning, and never leak a
//     goroutine. Uncancelled, they behave exactly like their plain
//     counterparts.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve maps a Workers knob to a concrete worker count: 0 selects
// GOMAXPROCS, negative values clamp to 1, and the count is capped at n
// (the number of independent work items) when n is positive.
func Resolve(workers, n int) int {
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	if n > 0 && workers > n {
		workers = n
	}
	return workers
}

// For runs fn(i) for every i in [0, n) on up to `workers` goroutines
// (0 = GOMAXPROCS). Indices are handed out atomically, so each index runs
// exactly once; fn must treat distinct indices as independent. For blocks
// until all calls return.
func For(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Resolve(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForCtx is For with cooperative cancellation: workers observe ctx
// between items and stop pulling new indices once it is done. Items
// already started always run to completion (a work item is the
// cancellation grain), and ForCtx blocks until every started item has
// returned — workers fully drain, no goroutine outlives the call.
//
// The return value is ctx.Err() when cancellation stopped the loop
// before every index ran, nil otherwise. An uncancelled ForCtx runs
// exactly the indices For would, in the same per-worker pulling order,
// so it perturbs nothing about a deterministic caller.
func ForCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Resolve(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	done := ctx.Done()
	var next atomic.Int64
	next.Store(-1)
	var stopped atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					stopped.Store(true)
					return
				default:
				}
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if stopped.Load() || int(next.Load()) < n-1 {
		// Some indices never ran (or a worker saw cancellation). Report
		// the context error; partial results are the caller's to discard.
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// ForErr is For with error collection: every index runs (there is no
// early exit, so the set of attempted indices never depends on timing)
// and the error of the lowest failing index is returned — the same error
// a serial loop that kept going would report first.
func ForErr(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	For(n, workers, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ForErrCtx is ForErr with cooperative cancellation. When ctx is done
// before every index ran, the context error wins: the caller's results
// are incomplete regardless of which items succeeded, and reporting a
// per-item error from a partial run would depend on timing. For an
// uncancelled run the error of the lowest failing index is returned,
// exactly as ForErr reports it.
func ForErrCtx(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	errs := make([]error, n)
	if cerr := ForCtx(ctx, n, workers, func(i int) { errs[i] = fn(i) }); cerr != nil {
		return cerr
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn(i) for every i in [0, n) on up to `workers` goroutines and
// returns the results in index order. On failure it returns the error of
// the lowest failing index.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForErr(n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MapCtx is Map with cooperative cancellation: workers stop pulling new
// indices when ctx is done, drain, and the context error is returned.
// Uncancelled, it is byte-for-byte Map.
func MapCtx[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForErrCtx(ctx, n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Blocks splits [0, n) into at most `workers` contiguous spans and runs
// fn(lo, hi) for each, blocking until all return. It is the grain for
// row-parallel kernels: each row is written by exactly one goroutine and
// per-row arithmetic order is unchanged, so results are bit-identical to
// the serial loop for any worker count.
func Blocks(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = Resolve(workers, n)
	if workers == 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
