package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0, 0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(0,0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(-3, 10); got != 1 {
		t.Fatalf("Resolve(-3,10) = %d, want 1", got)
	}
	if got := Resolve(8, 3); got != 3 {
		t.Fatalf("Resolve(8,3) = %d, want 3 (capped at n)", got)
	}
	if got := Resolve(8, 0); got != 8 {
		t.Fatalf("Resolve(8,0) = %d, want 8 (n=0 means no cap)", got)
	}
	if got := Resolve(2, 100); got != 2 {
		t.Fatalf("Resolve(2,100) = %d, want 2", got)
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 237
		var hits [n]atomic.Int32
		For(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	ran := false
	For(0, 4, func(i int) { ran = true })
	For(-5, 4, func(i int) { ran = true })
	if ran {
		t.Fatal("fn ran for n <= 0")
	}
}

func TestForErrReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 7} {
		err := ForErr(50, workers, func(i int) error {
			if i == 3 || i == 40 {
				return fmt.Errorf("fail at %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail at 3" {
			t.Fatalf("workers=%d: err = %v, want fail at 3", workers, err)
		}
	}
	if err := ForErr(10, 4, func(int) error { return nil }); err != nil {
		t.Fatalf("clean run returned %v", err)
	}
}

func TestMapOrdersResults(t *testing.T) {
	for _, workers := range []int{1, 2, 16} {
		out, err := Map(100, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapError(t *testing.T) {
	want := errors.New("boom")
	_, err := Map(5, 3, func(i int) (int, error) {
		if i == 2 {
			return 0, want
		}
		return i, nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("err = %v", err)
	}
}

func TestBlocksCoverExactly(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		const n = 103
		var hits [n]atomic.Int32
		Blocks(n, workers, func(lo, hi int) {
			if lo >= hi {
				t.Errorf("empty block [%d,%d)", lo, hi)
			}
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
		})
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d covered %d times", workers, i, c)
			}
		}
	}
}

func TestBlocksSerialSingleSpan(t *testing.T) {
	calls := 0
	Blocks(10, 1, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("serial block [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("serial Blocks made %d calls", calls)
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []int {
		out, err := Map(64, workers, func(i int) (int, error) { return i*31 + 7, nil })
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(1), run(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("results differ at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
