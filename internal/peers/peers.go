// Package peers is the multi-daemon routing layer: a rendezvous (HRW)
// hash ring over the serving tier's FNV-64 content fingerprints
// (internal/resultcache Key.Sum) plus the bounded HTTP transport the
// forwarding layer in internal/server uses to proxy a request to the
// shard that owns its fingerprint. Ownership is a pure function of the
// peer set and the key — every shard configured with the same peer list
// computes the same owner — so cache affinity survives scale-out: each
// (structure, density, config) fingerprint is computed and cached on
// exactly one shard no matter which shard the client happened to hit,
// and the aggregate hit rate of N daemons matches one big daemon's
// instead of collapsing to N cold caches (docs/DISTRIBUTED.md).
//
// Rendezvous hashing is chosen over segment-based consistent hashing
// for its minimal-disruption property without virtual nodes: every peer
// scores every key and the highest score wins, so when a peer leaves
// only the keys it owned move (expected 1/N of the keyspace), when one
// joins only the keys it wins move (expected 1/(N+1)), and a key owned
// by a surviving peer never changes owner. peers_test.go pins both
// bounds on a 1k-key sample.
package peers

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"roadpart/internal/obs"
)

// Ring is an immutable rendezvous-hash view of the peer set. Membership
// is fixed at construction — a deploy-time property, like the rest of
// the daemon's flags — so ownership never flaps at runtime; a dead peer
// is handled by the forwarding layer's local-compute fallback, not by
// re-hashing.
type Ring struct {
	self  string
	peers []string // normalized base URLs, sorted for deterministic ties
}

// NewRing validates and normalizes the peer set. self is this daemon's
// own advertised base URL; it is added to the set if absent, so
// `-peers` may list either every daemon or only the others. Every
// address must be an absolute http:// or https:// URL; trailing slashes
// are stripped so equal peers compare equal.
func NewRing(self string, peers []string) (*Ring, error) {
	if self == "" {
		return nil, fmt.Errorf("peers: self address required (the daemon must know its own base URL to find itself on the ring)")
	}
	selfN, err := normalize(self)
	if err != nil {
		return nil, fmt.Errorf("peers: self: %w", err)
	}
	seen := map[string]bool{selfN: true}
	all := []string{selfN}
	for _, p := range peers {
		n, err := normalize(p)
		if err != nil {
			return nil, fmt.Errorf("peers: %w", err)
		}
		if !seen[n] {
			seen[n] = true
			all = append(all, n)
		}
	}
	sort.Strings(all)
	return &Ring{self: selfN, peers: all}, nil
}

// normalize canonicalizes one peer base URL.
func normalize(addr string) (string, error) {
	u, err := url.Parse(addr)
	if err != nil {
		return "", fmt.Errorf("peer address %q: %w", addr, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", fmt.Errorf("peer address %q: want an absolute http(s) base URL like http://host:port", addr)
	}
	return strings.TrimRight(u.String(), "/"), nil
}

// Self returns this daemon's normalized address.
func (r *Ring) Self() string { return r.self }

// Peers returns the full normalized membership (self included), sorted.
func (r *Ring) Peers() []string { return append([]string(nil), r.peers...) }

// Size returns the membership count (self included).
func (r *Ring) Size() int { return len(r.peers) }

// Owner returns the peer that owns the fingerprint: the member with the
// highest rendezvous score. Deterministic across every shard holding
// the same membership; the sorted iteration order breaks the
// (astronomically unlikely) score tie the same way everywhere.
func (r *Ring) Owner(sum uint64) string {
	best, bestScore := "", uint64(0)
	for _, p := range r.peers {
		if s := score(p, sum); best == "" || s > bestScore {
			best, bestScore = p, s
		}
	}
	return best
}

// OwnerString is Owner over the FNV-64a hash of a string key — used for
// singleton resources that have a name rather than a content
// fingerprint (the density stream's home shard).
func (r *Ring) OwnerString(key string) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return r.Owner(h.Sum64())
}

// score is the rendezvous weight of (peer, key): FNV-64a over the peer
// address followed by the key's little-endian bytes.
func score(peer string, sum uint64) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(peer))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], sum)
	_, _ = h.Write(b[:])
	return h.Sum64()
}

// Transport observability: one counter family for forward outcomes and
// a per-peer latency gauge fed by an EWMA (α = 0.2, same constant as
// the serving layer's compute-latency EWMA), so a dashboard shows both
// how often each peer is consulted and how fast it answers.
const (
	// EventsFamily counts peer round-trips, by peer and result
	// ("ok" = an HTTP response arrived, whatever its status;
	// "error" = the transport failed and the forwarding layer fell back).
	EventsFamily = "roadpart_peer_requests_total"
	eventsHelp   = "Requests forwarded to peer shards, by peer and result (ok = HTTP response received, error = transport failure, the caller fell back to local compute)."
	// LatencyFamily is the per-peer forward-latency EWMA in seconds.
	LatencyFamily = "roadpart_peer_forward_latency_seconds"
	latencyHelp   = "EWMA of successful peer round-trip latency, by peer (time to response headers for streams, full exchange otherwise)."
)

func countPeer(peer, result string) {
	obs.Default().Counter(EventsFamily, eventsHelp, "peer", peer, "result", result).Inc()
}

// Client is the bounded HTTP transport for peer forwarding. Two inner
// clients share one connection pool: the default one carries an overall
// exchange timeout (a wedged peer cannot pin the forwarding goroutine
// past it), the stream one bounds only dial and response headers so a
// proxied SSE subscription can live as long as the subscriber does.
type Client struct {
	hc  *http.Client
	sse *http.Client

	mu  sync.Mutex
	lat map[string]float64 // per-peer EWMA seconds
}

// NewClient builds the peer transport. timeout bounds a whole forwarded
// exchange (dial, write, compute on the owner, read); <= 0 selects
// DefaultTimeout. Callers size it at least as large as the owner's
// compute deadline — internal/server defaults it to MaxTimeout plus
// headroom — or forwarded requests die before the owner answers.
func NewClient(timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	tr := &http.Transport{
		MaxIdleConnsPerHost: 16,
		IdleConnTimeout:     90 * time.Second,
	}
	sseTr := tr.Clone()
	sseTr.ResponseHeaderTimeout = headerTimeout
	return &Client{
		hc:  &http.Client{Timeout: timeout, Transport: tr},
		sse: &http.Client{Transport: sseTr},
		lat: make(map[string]float64),
	}
}

const (
	// DefaultTimeout bounds a forwarded exchange when the caller gives
	// no bound.
	DefaultTimeout = 30 * time.Second
	// headerTimeout bounds the wait for a stream's response headers; the
	// body then flows unbounded (the subscription is long-lived by
	// design, ended by the client's context).
	headerTimeout = 30 * time.Second
)

// Do performs one bounded peer round-trip, counting the outcome and
// folding a success into the peer's latency EWMA. peer is the owner's
// base URL (the counter label); the request's URL must already point at
// it.
func (c *Client) Do(peer string, req *http.Request) (*http.Response, error) {
	return c.roundTrip(peer, c.hc, req)
}

// DoStream is Do over the streaming client: response headers are
// bounded, the body is not. The latency EWMA records time to headers.
func (c *Client) DoStream(peer string, req *http.Request) (*http.Response, error) {
	return c.roundTrip(peer, c.sse, req)
}

func (c *Client) roundTrip(peer string, hc *http.Client, req *http.Request) (*http.Response, error) {
	t0 := time.Now()
	resp, err := hc.Do(req)
	if err != nil {
		countPeer(peer, "error")
		return nil, err
	}
	countPeer(peer, "ok")
	c.observe(peer, time.Since(t0))
	return resp, nil
}

// observe folds one successful round-trip into the per-peer EWMA and
// publishes it. Mutex-guarded like the serving layer's latEWMA: Do and
// Latency race freely under the race detector.
func (c *Client) observe(peer string, d time.Duration) {
	sec := d.Seconds()
	c.mu.Lock()
	v, ok := c.lat[peer]
	if ok {
		v = 0.8*v + 0.2*sec
	} else {
		v = sec
	}
	c.lat[peer] = v
	c.mu.Unlock()
	obs.Default().Gauge(LatencyFamily, latencyHelp, "peer", peer).Set(v)
}

// Latency returns the peer's current EWMA (0 before any success).
func (c *Client) Latency(peer string) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Duration(c.lat[peer] * float64(time.Second))
}
