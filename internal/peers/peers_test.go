package peers

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

var threePeers = []string{"http://a:8080", "http://b:8080", "http://c:8080"}

func mustRing(t *testing.T, self string, peers []string) *Ring {
	t.Helper()
	r, err := NewRing(self, peers)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRingValidation(t *testing.T) {
	cases := []struct {
		name  string
		self  string
		peers []string
	}{
		{"empty self", "", threePeers},
		{"relative self", "a:8080", nil},
		{"bad scheme", "ftp://a:8080", nil},
		{"bad peer", "http://a:8080", []string{"not a url at all ://"}},
		{"relative peer", "http://a:8080", []string{"b:8080"}},
	}
	for _, tc := range cases {
		if _, err := NewRing(tc.self, tc.peers); err == nil {
			t.Errorf("%s: NewRing accepted self=%q peers=%v", tc.name, tc.self, tc.peers)
		}
	}
}

// TestRingNormalization pins that self is folded into the membership,
// duplicates collapse, and trailing slashes do not split a peer into
// two identities.
func TestRingNormalization(t *testing.T) {
	r := mustRing(t, "http://a:8080/", []string{"http://b:8080", "http://a:8080", "http://b:8080/"})
	if r.Self() != "http://a:8080" {
		t.Fatalf("Self = %q", r.Self())
	}
	if got := r.Peers(); len(got) != 2 || got[0] != "http://a:8080" || got[1] != "http://b:8080" {
		t.Fatalf("Peers = %v", got)
	}
	// Omitting self from the peer list is equivalent to including it.
	r2 := mustRing(t, "http://a:8080", []string{"http://b:8080"})
	if r2.Size() != 2 {
		t.Fatalf("Size = %d, want 2", r2.Size())
	}
}

// TestRingOwnerAgreement is the property the whole serving tier rests
// on: every shard, whatever its own identity and however its flag
// listed the peers, maps a fingerprint to the same owner.
func TestRingOwnerAgreement(t *testing.T) {
	rings := []*Ring{
		mustRing(t, "http://a:8080", threePeers),
		mustRing(t, "http://b:8080", []string{"http://c:8080", "http://a:8080/"}),
		mustRing(t, "http://c:8080/", []string{"http://b:8080", "http://a:8080", "http://c:8080"}),
	}
	for key := uint64(0); key < 1000; key++ {
		want := rings[0].Owner(key)
		for i, r := range rings[1:] {
			if got := r.Owner(key); got != want {
				t.Fatalf("key %d: ring %d says %q, ring 0 says %q", key, i+1, got, want)
			}
		}
	}
}

// TestRingBalance sanity-checks the load split: over 1k keys each of 3
// peers should own a non-degenerate share (the HRW scores are hashes,
// so the split concentrates around 1/3).
func TestRingBalance(t *testing.T) {
	r := mustRing(t, "http://a:8080", threePeers)
	counts := map[string]int{}
	for key := uint64(0); key < 1000; key++ {
		counts[r.Owner(key)]++
	}
	for _, p := range r.Peers() {
		if counts[p] < 150 {
			t.Errorf("peer %s owns only %d of 1000 keys — pathological imbalance", p, counts[p])
		}
	}
}

// TestRingRemapBoundOnLeave pins the rendezvous minimal-disruption
// bound the acceptance criteria name: removing one of 3 peers must
// remap fewer than 50% of a 1k-key sample (the expectation is its own
// ~1/3 share), and a key owned by a surviving peer must never move.
func TestRingRemapBoundOnLeave(t *testing.T) {
	before := mustRing(t, "http://a:8080", threePeers)
	after := mustRing(t, "http://a:8080", []string{"http://b:8080"}) // c left
	removed := "http://c:8080"
	moved := 0
	for key := uint64(0); key < 1000; key++ {
		was, is := before.Owner(key), after.Owner(key)
		if was != is {
			moved++
			if was != removed {
				t.Fatalf("key %d moved %s → %s although its owner survived", key, was, is)
			}
		}
	}
	if moved == 0 {
		t.Fatal("no key was owned by the removed peer — sample broken")
	}
	if moved >= 500 {
		t.Fatalf("%d of 1000 keys remapped on one departure; rendezvous bound is < 500", moved)
	}
}

// TestRingRemapBoundOnJoin is the same bound for a peer joining a
// 3-ring: only keys the newcomer wins may move (expected ~1/4).
func TestRingRemapBoundOnJoin(t *testing.T) {
	before := mustRing(t, "http://a:8080", threePeers)
	after := mustRing(t, "http://a:8080", append([]string{"http://d:8080"}, threePeers...))
	joined := "http://d:8080"
	moved := 0
	for key := uint64(0); key < 1000; key++ {
		was, is := before.Owner(key), after.Owner(key)
		if was != is {
			moved++
			if is != joined {
				t.Fatalf("key %d moved %s → %s although the newcomer did not win it", key, was, is)
			}
		}
	}
	if moved == 0 || moved >= 500 {
		t.Fatalf("%d of 1000 keys remapped on one join; want (0, 500)", moved)
	}
}

// TestOwnerStringDeterministic pins the named-singleton routing the
// density stream uses: the same name owns the same shard everywhere.
func TestOwnerStringDeterministic(t *testing.T) {
	a := mustRing(t, "http://a:8080", threePeers)
	b := mustRing(t, "http://b:8080", threePeers)
	if a.OwnerString("/v1/densities") != b.OwnerString("/v1/densities") {
		t.Fatal("stream home differs between shards")
	}
}

// TestClientCountsAndEWMA drives a round-trip through a live test
// server and a failed one through a dead address, checking the latency
// EWMA moves only on success.
func TestClientCountsAndEWMA(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	c := NewClient(5 * time.Second)

	req, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Do(srv.URL, req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if c.Latency(srv.URL) <= 0 {
		t.Fatal("success did not feed the latency EWMA")
	}

	dead := "http://127.0.0.1:1"
	req2, _ := http.NewRequest(http.MethodGet, dead+"/v1/healthz", nil)
	if _, err := c.Do(dead, req2); err == nil {
		t.Fatal("round-trip to a dead peer succeeded")
	}
	if c.Latency(dead) != 0 {
		t.Fatal("transport failure fed the latency EWMA")
	}
}

// TestClientConcurrent pins the EWMA bookkeeping under -race: Do and
// Latency from many goroutines at once.
func TestClientConcurrent(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	c := NewClient(5 * time.Second)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
				if resp, err := c.Do(srv.URL, req); err == nil {
					resp.Body.Close()
				}
				_ = c.Latency(srv.URL)
			}
		}()
	}
	wg.Wait()
}
