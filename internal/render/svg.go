// Package render draws road networks as SVG, coloring segments by
// partition or by congestion. Visual inspection is how partitionings of
// real city networks are sanity-checked (the paper's Figure 1 workflow),
// so the renderer is part of the library rather than an afterthought.
package render

import (
	"fmt"
	"html"
	"io"
	"math"

	"roadpart/internal/roadnet"
)

// palette provides visually distinct partition colors; partitions beyond
// its length cycle with varying stroke dashes.
var palette = []string{
	"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
	"#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#8c564b",
}

// Options tunes the rendering.
type Options struct {
	// Width is the SVG width in pixels; height follows the network's
	// aspect ratio. 0 selects 800.
	Width int
	// StrokeWidth is the segment line width in pixels. 0 selects 2.
	StrokeWidth float64
	// Title is an optional caption.
	Title string
}

// Partitions writes an SVG of the network with each road segment colored
// by its partition, with a color legend when the partition count is small
// enough to label. assign must cover every segment.
func Partitions(w io.Writer, net *roadnet.Network, assign []int, opts Options) error {
	if len(assign) != len(net.Segments) {
		return fmt.Errorf("render: %d assignments for %d segments", len(assign), len(net.Segments))
	}
	k := 0
	for _, p := range assign {
		if p+1 > k {
			k = p + 1
		}
	}
	legend := ""
	if k >= 2 && k <= len(palette) {
		legend = partitionLegend(k)
	}
	return drawWithExtra(w, net, opts, legend, func(i int) (string, float64) {
		p := assign[i]
		if p < 0 {
			return "#000000", 1
		}
		return palette[p%len(palette)], 1
	})
}

// partitionLegend emits one swatch + label per region, stacked at the
// top-right corner.
func partitionLegend(k int) string {
	var b []byte
	for p := 0; p < k; p++ {
		y := 24 + 16*p
		b = append(b, fmt.Sprintf(
			`<rect x="-64" y="%d" width="10" height="10" fill="%s"/><text x="-50" y="%d" font-family="sans-serif" font-size="10">region %d</text>`+"\n",
			y, palette[p%len(palette)], y+9, p)...)
	}
	return string(b)
}

// Densities writes an SVG of the network with each segment colored by its
// congestion on a white-to-red ramp (the maximum density saturates).
func Densities(w io.Writer, net *roadnet.Network, opts Options) error {
	var maxD float64
	for _, s := range net.Segments {
		if s.Density > maxD {
			maxD = s.Density
		}
	}
	return draw(w, net, opts, func(i int) (string, float64) {
		frac := 0.0
		if maxD > 0 {
			frac = net.Segments[i].Density / maxD
		}
		// Ramp from light gray to saturated red.
		r := 230 - int(60*frac)
		gb := 230 - int(200*frac)
		return fmt.Sprintf("#%02x%02x%02x", r+25*int(frac), gb, gb), 0.5 + 1.5*frac
	})
}

// draw emits the SVG skeleton and one line per segment, styled by the
// callback (color, relative width multiplier).
func draw(w io.Writer, net *roadnet.Network, opts Options, style func(i int) (string, float64)) error {
	return drawWithExtra(w, net, opts, "", style)
}

// drawWithExtra is draw plus extra SVG markup anchored at the top-right
// corner (x coordinates are relative to the right edge via a transform).
func drawWithExtra(w io.Writer, net *roadnet.Network, opts Options, extra string, style func(i int) (string, float64)) error {
	if len(net.Segments) == 0 {
		return fmt.Errorf("render: network has no segments")
	}
	if opts.Width == 0 {
		opts.Width = 800
	}
	if opts.StrokeWidth == 0 {
		opts.StrokeWidth = 2
	}

	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range net.Intersections {
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	spanX, spanY := maxX-minX, maxY-minY
	if spanX <= 0 {
		spanX = 1
	}
	if spanY <= 0 {
		spanY = 1
	}
	const margin = 20.0
	scale := (float64(opts.Width) - 2*margin) / spanX
	height := int(spanY*scale + 2*margin)
	tx := func(x float64) float64 { return margin + (x-minX)*scale }
	ty := func(y float64) float64 { return margin + (maxY-y)*scale } // flip y

	if _, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		opts.Width, height, opts.Width, height); err != nil {
		return err
	}
	fmt.Fprintf(w, `<rect width="100%%" height="100%%" fill="white"/>`+"\n")
	if opts.Title != "" {
		fmt.Fprintf(w, `<text x="%g" y="14" font-family="sans-serif" font-size="12">%s</text>`+"\n",
			margin, html.EscapeString(opts.Title))
	}
	for i, s := range net.Segments {
		a, b := net.Intersections[s.From], net.Intersections[s.To]
		color, wmul := style(i)
		fmt.Fprintf(w,
			`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.2f" stroke-linecap="round"/>`+"\n",
			tx(a.X), ty(a.Y), tx(b.X), ty(b.Y), color, opts.StrokeWidth*wmul)
	}
	if extra != "" {
		fmt.Fprintf(w, `<g transform="translate(%d 0)">`+"\n%s</g>\n", opts.Width, extra)
	}
	_, err := fmt.Fprintln(w, `</svg>`)
	return err
}
