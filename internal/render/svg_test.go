package render

import (
	"bytes"
	"encoding/xml"
	"io"
	"strings"
	"testing"

	"roadpart/internal/roadnet"
)

func tinyNet() *roadnet.Network {
	return &roadnet.Network{
		Intersections: []roadnet.Intersection{
			{ID: 0, X: 0, Y: 0}, {ID: 1, X: 100, Y: 0}, {ID: 2, X: 100, Y: 100},
		},
		Segments: []roadnet.Segment{
			{ID: 0, From: 0, To: 1, Length: 100, Density: 0.1},
			{ID: 1, From: 1, To: 2, Length: 100, Density: 0.9},
		},
	}
}

func TestPartitionsSVG(t *testing.T) {
	var buf bytes.Buffer
	if err := Partitions(&buf, tinyNet(), []int{0, 1}, Options{Title: "demo"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "<line", "demo", palette[0], palette[1]} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	if strings.Count(out, "<line") != 2 {
		t.Fatalf("want 2 lines, got %d", strings.Count(out, "<line"))
	}
}

func TestPartitionsLegend(t *testing.T) {
	var buf bytes.Buffer
	if err := Partitions(&buf, tinyNet(), []int{0, 1}, Options{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "region 0") || !strings.Contains(out, "region 1") {
		t.Fatal("legend labels missing for a 2-region map")
	}
	// Single region: no legend.
	buf.Reset()
	if err := Partitions(&buf, tinyNet(), []int{0, 0}, Options{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "region 0") {
		t.Fatal("single-region map should have no legend")
	}
}

func TestPartitionsPaletteCycles(t *testing.T) {
	net := tinyNet()
	var buf bytes.Buffer
	// Partition ids beyond the palette must not panic and must color.
	if err := Partitions(&buf, net, []int{len(palette), 2*len(palette) + 1}, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), palette[0]) {
		t.Fatal("palette cycling broken")
	}
}

func TestPartitionsValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := Partitions(&buf, tinyNet(), []int{0}, Options{}); err == nil {
		t.Fatal("short assignment should error")
	}
	if err := Partitions(&buf, &roadnet.Network{}, nil, Options{}); err == nil {
		t.Fatal("empty network should error")
	}
}

func TestDensitiesSVG(t *testing.T) {
	var buf bytes.Buffer
	if err := Densities(&buf, tinyNet(), Options{Width: 400}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `width="400"`) {
		t.Fatal("custom width ignored")
	}
	if strings.Count(out, "<line") != 2 {
		t.Fatal("segments missing")
	}
}

func TestSVGIsWellFormedXML(t *testing.T) {
	net := tinyNet()
	for name, drawFn := range map[string]func(*bytes.Buffer) error{
		"partitions": func(b *bytes.Buffer) error { return Partitions(b, net, []int{0, 1}, Options{Title: "a<b&c"}) },
		"densities":  func(b *bytes.Buffer) error { return Densities(b, net, Options{}) },
	} {
		var buf bytes.Buffer
		if err := drawFn(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		dec := xml.NewDecoder(&buf)
		for {
			_, err := dec.Token()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("%s: SVG is not well-formed XML: %v", name, err)
			}
		}
	}
}

func TestDensitiesZeroTraffic(t *testing.T) {
	net := tinyNet()
	net.Segments[0].Density = 0
	net.Segments[1].Density = 0
	var buf bytes.Buffer
	if err := Densities(&buf, net, Options{}); err != nil {
		t.Fatal(err)
	}
}
