package resultcache

import (
	"encoding/binary"
	"hash"
	"hash/fnv"
	"math"

	"roadpart/internal/core"
	"roadpart/internal/roadnet"
)

// Operation names — the Key.Op keyspaces shared by the HTTP handlers
// and the roadpart CLI, so both address the same snapshot files.
const (
	OpPartition = "partition"
	OpSweep     = "sweep"
)

// Tag fingerprints the (structure, density) generation a cached result
// was computed from. Unlike the Key — which addresses content and can
// never serve a stale body — the tag groups every entry derived from
// one network state so the streaming layer can drop the whole group in
// one InvalidateTag call when a density update supersedes that state.
// Zero is reserved to mean "untagged"; the fold can never produce it.
func Tag(structure, density uint64) uint64 {
	h := newHasher()
	h.u64(structure)
	h.u64(density)
	if s := h.sum64(); s != 0 {
		return s
	}
	return 1
}

// NetworkTag is the Tag of a network's current structure and densities.
func NetworkTag(net *roadnet.Network) uint64 {
	return Tag(net.StructureHash(), net.DensityHash())
}

// hasher is a convenience wrapper around FNV-64a for mixed-type input.
type hasher struct {
	h   hash.Hash64
	buf [8]byte
}

func newHasher() *hasher { return &hasher{h: fnv.New64a()} }

func (h *hasher) u64(v uint64) {
	binary.LittleEndian.PutUint64(h.buf[:], v)
	_, _ = h.h.Write(h.buf[:])
}

func (h *hasher) i64(v int64)   { h.u64(uint64(v)) }
func (h *hasher) f64(v float64) { h.u64(math.Float64bits(v)) }
func (h *hasher) sum64() uint64 { return h.h.Sum64() }

func (h *hasher) boolean(v bool) {
	if v {
		h.u64(1)
	} else {
		h.u64(0)
	}
}

// hashConfig folds the normalized config fields that determine the
// result into h. Workers and the dead mining fields are already
// canonicalized away by core.Config.Normalized.
func hashConfig(h *hasher, cfg core.Config) {
	cfg = cfg.Normalized()
	h.i64(int64(cfg.Scheme))
	h.f64(cfg.StabilityEps)
	h.f64(cfg.EpsTheta)
	h.f64(cfg.EpsThetaFrac)
	h.i64(int64(cfg.KappaMax))
	h.i64(int64(cfg.SampleSize))
	h.i64(int64(cfg.Restarts))
	h.i64(int64(cfg.DenseCutoff))
	h.i64(int64(cfg.Weighting))
	h.boolean(cfg.Refine)
	h.u64(cfg.Seed)
	// The multilevel path changes module-3 output, so both the mode and
	// the (normalized) auto-enable threshold are part of the identity.
	h.i64(int64(cfg.Multilevel))
	h.i64(int64(cfg.MultilevelThreshold))
}

// PartitionKey fingerprints one partition request: network structure,
// densities, the normalized config and its k. Workers and request
// timeouts are deliberately excluded — neither changes the result
// (worker-count determinism is the repo's standing guarantee).
func PartitionKey(net *roadnet.Network, cfg core.Config) Key {
	h := newHasher()
	h.u64(net.StructureHash())
	h.u64(net.DensityHash())
	hashConfig(h, cfg)
	h.i64(int64(cfg.K))
	return Key{Op: OpPartition, Sum: h.sum64()}
}

// SweepKey fingerprints one k-sweep request over [kMin, kMax]. cfg.K is
// ignored (a sweep has no single k); the bounds are hashed after the
// caller applies its own defaulting/clamping so that two requests
// resolving to the same effective range share an entry.
func SweepKey(net *roadnet.Network, cfg core.Config, kMin, kMax int) Key {
	h := newHasher()
	h.u64(net.StructureHash())
	h.u64(net.DensityHash())
	hashConfig(h, cfg)
	h.i64(int64(kMin))
	h.i64(int64(kMax))
	return Key{Op: OpSweep, Sum: h.sum64()}
}
