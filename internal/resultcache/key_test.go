package resultcache

import (
	"testing"

	"roadpart/internal/core"
	"roadpart/internal/roadnet"
)

func keyNet() *roadnet.Network {
	return &roadnet.Network{
		Intersections: []roadnet.Intersection{{ID: 0}, {ID: 1, X: 100}, {ID: 2, Y: 100}},
		Segments: []roadnet.Segment{
			{ID: 0, From: 0, To: 1, Length: 100, Density: 0.02},
			{ID: 1, From: 1, To: 2, Length: 141, Density: 0.05},
		},
	}
}

func TestPartitionKeyDeterministic(t *testing.T) {
	cfg := core.Config{Scheme: core.ASG, K: 4, Seed: 7}
	a := PartitionKey(keyNet(), cfg)
	b := PartitionKey(keyNet(), cfg)
	if a != b {
		t.Fatalf("identical inputs produced %v and %v", a, b)
	}
	if a.Op != OpPartition {
		t.Fatalf("op = %q", a.Op)
	}
}

func TestPartitionKeyIgnoresWorkers(t *testing.T) {
	// Worker count never changes output, so it must never split keys —
	// otherwise a client flipping workers would defeat the cache.
	a := PartitionKey(keyNet(), core.Config{Scheme: core.ASG, K: 4, Seed: 7, Workers: 1})
	b := PartitionKey(keyNet(), core.Config{Scheme: core.ASG, K: 4, Seed: 7, Workers: 8})
	if a != b {
		t.Fatal("worker count split partition keys")
	}
}

func TestPartitionKeySensitivity(t *testing.T) {
	base := PartitionKey(keyNet(), core.Config{Scheme: core.ASG, K: 4, Seed: 7})
	cases := map[string]Key{
		"k":      PartitionKey(keyNet(), core.Config{Scheme: core.ASG, K: 5, Seed: 7}),
		"seed":   PartitionKey(keyNet(), core.Config{Scheme: core.ASG, K: 4, Seed: 8}),
		"scheme": PartitionKey(keyNet(), core.Config{Scheme: core.AG, K: 4, Seed: 7}),
		"refine": PartitionKey(keyNet(), core.Config{Scheme: core.ASG, K: 4, Seed: 7, Refine: true}),
	}
	dens := keyNet()
	dens.Segments[0].Density = 0.021
	cases["density"] = PartitionKey(dens, core.Config{Scheme: core.ASG, K: 4, Seed: 7})
	topo := keyNet()
	topo.Segments[1].To = 0
	cases["topology"] = PartitionKey(topo, core.Config{Scheme: core.ASG, K: 4, Seed: 7})
	for name, k := range cases {
		if k == base {
			t.Errorf("changing %s did not move the key", name)
		}
	}
}

func TestPartitionKeyNormalizesDefaults(t *testing.T) {
	// A spelled-out default and the zero value are the same pipeline, so
	// they must share a key.
	a := PartitionKey(keyNet(), core.Config{Scheme: core.ASG, K: 4, Seed: 7})
	b := PartitionKey(keyNet(), core.Config{Scheme: core.ASG, K: 4, Seed: 7,
		EpsThetaFrac: 0.8, KappaMax: 25, SampleSize: 2000, Restarts: 5, DenseCutoff: 900})
	if a != b {
		t.Fatal("explicit defaults split keys from zero-value config")
	}
}

func TestSweepKeyIgnoresKButNotRange(t *testing.T) {
	cfg := core.Config{Scheme: core.ASG, Seed: 7}
	a := SweepKey(keyNet(), cfg, 2, 6)
	cfgK := cfg
	cfgK.K = 99
	if b := SweepKey(keyNet(), cfgK, 2, 6); a != b {
		t.Fatal("cfg.K split sweep keys")
	}
	if b := SweepKey(keyNet(), cfg, 2, 7); a == b {
		t.Fatal("kMax change did not move the sweep key")
	}
	if a.Op != OpSweep {
		t.Fatalf("op = %q", a.Op)
	}
}

func TestPartitionAndSweepKeyspacesDisjoint(t *testing.T) {
	cfg := core.Config{Scheme: core.ASG, Seed: 7}
	p := PartitionKey(keyNet(), cfg)
	s := SweepKey(keyNet(), cfg, 2, 6)
	if p == s {
		t.Fatal("partition and sweep keys collide")
	}
}
