// Package resultcache is a content-addressed, single-flight cache of
// partition and sweep results for the serving layer. Where cut.Spectral
// memoizes one eigendecomposition inside one pipeline, this cache spans
// requests: a result is keyed by a canonical FNV-64 fingerprint of
// everything that determines it — road-graph structure, node densities,
// the normalized core.Config, the operation and its k range — so a
// byte-identical request is answered without recomputing Modules 1–3.
// The paper's own workloads motivate this: Section 6.4 re-partitions the
// same network as densities evolve, and the MFD literature (PAPERS.md)
// re-runs partitioning on rolling traffic snapshots, both dominated by
// previously-seen inputs.
//
// Concurrency follows the non-poisoning single-flight rule established
// for the eigendecomposition cache: concurrent lookups of the same key
// coalesce onto one computing flight; a flight that fails with the
// owner's context error is never cached or propagated to waiters — a
// live waiter promotes a fresh flight instead; non-context errors
// propagate to every waiter but still leave the cache empty, so a later
// request retries.
//
// Capacity is a byte budget over the cached response bodies, evicted
// LRU. Everything is observable through internal/obs:
// roadpart_resultcache_events_total{op,result} plus bytes/entries
// gauges (see docs/API.md).
package resultcache

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"

	"roadpart/internal/obs"
)

// Key addresses one cached result: the operation name (its own keyspace,
// so a partition and a sweep of the same inputs never collide) and the
// canonical content fingerprint.
type Key struct {
	// Op is a short path-safe operation name ("partition", "sweep").
	Op string
	// Sum is the FNV-64a fingerprint of every input that determines the
	// result (see PartitionKey/SweepKey).
	Sum uint64
}

// String renders the key the way the disk store names files.
func (k Key) String() string { return fmt.Sprintf("%s-%016x", k.Op, k.Sum) }

// Metric families. The events counter follows the pool-tally convention:
// one family, (op, result) labels, result ∈ hit | miss | coalesced |
// evict | reject | store_error | warm | invalidate.
const (
	EventsFamily = "roadpart_resultcache_events_total"
	eventsHelp   = "Result-cache lookups and maintenance events, by operation and result (hit = served from memory, miss = computed, coalesced = waited on an identical in-flight compute, evict = LRU eviction, reject = body larger than the budget, store_error = best-effort disk persistence failed, warm = loaded from the snapshot store at startup, invalidate = dropped because its fingerprint tag was superseded by a density update)."
	bytesHelp    = "Bytes of cached response bodies currently resident."
	entriesHelp  = "Cached results currently resident."
)

var (
	cacheBytes   = obs.Default().Gauge("roadpart_resultcache_bytes", bytesHelp)
	cacheEntries = obs.Default().Gauge("roadpart_resultcache_entries", entriesHelp)
)

// event counts one cache event on the process-wide registry.
func event(op, result string) {
	obs.Default().Counter(EventsFamily, eventsHelp, "op", op, "result", result).Inc()
}

// entryOverhead approximates the per-entry bookkeeping (map cell, list
// element, key) charged against the byte budget so that many tiny
// entries cannot blow past it.
const entryOverhead = 128

// Config tunes a Cache.
type Config struct {
	// MaxBytes bounds the resident body bytes (plus a small per-entry
	// overhead). Must be positive: a cache that can hold nothing is a
	// configuration error, and callers that want caching off simply do
	// not construct a Cache.
	MaxBytes int64
	// Dir, when non-empty, persists every cached entry as a
	// roadpart-cache/v1 snapshot file and warms the cache from existing
	// snapshots at construction, so a restarted daemon keeps its hot
	// set. Persistence is best-effort: disk failures are counted
	// (result="store_error") but never fail the request.
	Dir string
}

// flight is one in-progress compute that concurrent identical requests
// coalesce onto.
type flight struct {
	done chan struct{} // closed when the owner finishes
	body []byte        // valid after done when err == nil
	err  error
}

// entry is one resident result. tag groups entries by the
// (structure, density) generation they were computed from; 0 = untagged
// (CLI Puts and store-warmed entries), which only ages out via LRU.
type entry struct {
	key  Key
	body []byte
	tag  uint64
	elem *list.Element
}

// Cache is the content-addressed result cache. Safe for concurrent use.
type Cache struct {
	cfg   Config
	store *Store // nil when Dir is empty

	mu      sync.Mutex
	entries map[Key]*entry
	lru     *list.List // front = most recent; values are *entry
	bytes   int64
	flights map[Key]*flight
	tags    map[uint64]map[Key]*entry // secondary index; 0 is never a key
}

// New constructs a Cache under cfg. It panics on a non-positive
// MaxBytes (a programmer error, mirrored after sync primitives that
// panic on misuse) and returns an error only when Dir is set but cannot
// be prepared.
func New(cfg Config) (*Cache, error) {
	if cfg.MaxBytes <= 0 {
		panic("resultcache: Config.MaxBytes must be positive")
	}
	c := &Cache{
		cfg:     cfg,
		entries: make(map[Key]*entry),
		lru:     list.New(),
		flights: make(map[Key]*flight),
		tags:    make(map[uint64]map[Key]*entry),
	}
	if cfg.Dir != "" {
		st, err := OpenStore(cfg.Dir)
		if err != nil {
			return nil, err
		}
		c.store = st
		c.warm()
	}
	return c, nil
}

// warm loads every valid snapshot from the store into memory, oldest
// first so that LRU order roughly mirrors file modification time and
// the newest snapshots survive an over-budget warm-up.
func (c *Cache) warm() {
	ents, err := c.store.LoadAll()
	if err != nil {
		event("store", "store_error")
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range ents {
		if _, ok := c.entries[e.Key]; ok {
			continue
		}
		if c.insertLocked(e.Key, e.Body, 0) {
			event(e.Key.Op, "warm")
		}
	}
}

// Get returns the cached body for key, or (nil, false).
func (c *Cache) Get(key Key) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.lru.MoveToFront(e.elem)
		event(key.Op, "hit")
		return e.body, true
	}
	return nil, false
}

// Put inserts body under key unconditionally (no single-flight), for
// callers that computed outside the cache — the CLI snapshot path.
func (c *Cache) Put(key Key, body []byte) {
	c.mu.Lock()
	inserted := c.insertLocked(key, body, 0)
	c.mu.Unlock()
	if inserted {
		c.persist(key, body)
	}
}

// Len reports the resident entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Bytes reports the resident body bytes including per-entry overhead.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// GetOrCompute returns the body cached under key, coalescing concurrent
// identical requests onto a single compute. cached reports whether the
// body came from memory (a hit or a coalesced wait on another request's
// flight) rather than from this call's own compute.
//
// compute runs outside the cache lock under the caller's ctx. Following
// the non-poisoning rule, a compute that fails with ctx's own
// cancellation or deadline is never cached and never propagated to
// waiters from other requests: each live waiter re-checks and the first
// one promotes a fresh flight. Non-context errors propagate to all
// current waiters but are not cached, so the next request retries.
func (c *Cache) GetOrCompute(ctx context.Context, key Key, compute func(context.Context) ([]byte, error)) (body []byte, cached bool, err error) {
	return c.GetOrComputeTagged(ctx, key, 0, compute)
}

// GetOrComputeTagged is GetOrCompute with a fingerprint tag (see Tag):
// a successfully computed body is indexed under tag so a later
// InvalidateTag(tag) drops it in O(group). Tag 0 means untagged.
func (c *Cache) GetOrComputeTagged(ctx context.Context, key Key, tag uint64, compute func(context.Context) ([]byte, error)) (body []byte, cached bool, err error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, false, fmt.Errorf("resultcache: %s lookup not started: %w", key.Op, err)
		}
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			c.lru.MoveToFront(e.elem)
			c.mu.Unlock()
			event(key.Op, "hit")
			return e.body, true, nil
		}
		if f, ok := c.flights[key]; ok {
			c.mu.Unlock()
			select {
			case <-ctx.Done():
				return nil, false, fmt.Errorf("resultcache: abandoned wait for in-flight %s: %w", key.Op, ctx.Err())
			case <-f.done:
			}
			if f.err == nil {
				event(key.Op, "coalesced")
				return f.body, true, nil
			}
			if ctxErr(f.err) {
				// The owner's request died, not ours: loop to promote a
				// fresh flight (or join one a faster waiter started).
				continue
			}
			return nil, false, f.err
		}
		// No entry, no flight: this request owns the compute.
		f := &flight{done: make(chan struct{})}
		c.flights[key] = f
		c.mu.Unlock()

		f.body, f.err = compute(ctx)

		c.mu.Lock()
		delete(c.flights, key)
		inserted := f.err == nil && c.insertLocked(key, f.body, tag)
		c.mu.Unlock()
		close(f.done)
		if f.err != nil {
			return nil, false, f.err
		}
		event(key.Op, "miss")
		if inserted {
			c.persist(key, f.body)
		}
		return f.body, false, nil
	}
}

// insertLocked adds body under key, evicting LRU entries until the
// budget holds. It reports whether the body was actually inserted — a
// body larger than the whole budget is rejected (and counted) rather
// than evicting everything for nothing. Callers hold the lock.
func (c *Cache) insertLocked(key Key, body []byte, tag uint64) bool {
	cost := int64(len(body)) + entryOverhead
	if cost > c.cfg.MaxBytes {
		event(key.Op, "reject")
		return false
	}
	if e, ok := c.entries[key]; ok {
		// Same content hash ⇒ same body; just refresh recency.
		c.lru.MoveToFront(e.elem)
		return false
	}
	for c.bytes+cost > c.cfg.MaxBytes {
		oldest := c.lru.Back()
		if oldest == nil {
			break
		}
		c.removeLocked(oldest.Value.(*entry), "evict")
	}
	e := &entry{key: key, body: body, tag: tag}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	if tag != 0 {
		group := c.tags[tag]
		if group == nil {
			group = make(map[Key]*entry)
			c.tags[tag] = group
		}
		group[key] = e
	}
	c.bytes += cost
	cacheBytes.Set(float64(c.bytes))
	cacheEntries.Set(float64(c.lru.Len()))
	return true
}

// removeLocked drops one entry, counting it under result. Callers hold
// the lock.
func (c *Cache) removeLocked(e *entry, result string) {
	c.lru.Remove(e.elem)
	delete(c.entries, e.key)
	if e.tag != 0 {
		if group := c.tags[e.tag]; group != nil {
			delete(group, e.key)
			if len(group) == 0 {
				delete(c.tags, e.tag)
			}
		}
	}
	c.bytes -= int64(len(e.body)) + entryOverhead
	cacheBytes.Set(float64(c.bytes))
	cacheEntries.Set(float64(c.lru.Len()))
	event(e.key.Op, result)
}

// InvalidateTag drops every resident entry carrying tag and, when a
// snapshot store is attached, best-effort removes their snapshot files.
// It returns the number of entries dropped. The streaming layer calls
// this when a density update supersedes the network state the tag
// fingerprints; content-addressed keys mean the dropped entries could
// never have served a wrong answer, but without invalidation a daemon
// cycling through density states would pin dead generations in the LRU
// budget until they aged out.
func (c *Cache) InvalidateTag(tag uint64) int {
	if tag == 0 {
		return 0
	}
	c.mu.Lock()
	group := c.tags[tag]
	dropped := make([]Key, 0, len(group))
	for key, e := range group {
		c.removeLocked(e, "invalidate")
		dropped = append(dropped, key)
	}
	c.mu.Unlock()
	if c.store != nil {
		for _, key := range dropped {
			if err := c.store.Remove(key); err != nil {
				event(key.Op, "store_error")
			}
		}
	}
	return len(dropped)
}

// persist writes one entry to the snapshot store, best-effort.
func (c *Cache) persist(key Key, body []byte) {
	if c.store == nil {
		return
	}
	if err := c.store.Write(key, body); err != nil {
		event(key.Op, "store_error")
	}
}

// ctxErr reports whether err is the context's own cancellation or
// deadline — the class of failures that must never poison the cache.
func ctxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
