package resultcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newCache builds an in-memory cache for tests.
func newCache(t *testing.T, maxBytes int64) *Cache {
	t.Helper()
	c, err := New(Config{MaxBytes: maxBytes})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func body(s string) func(context.Context) ([]byte, error) {
	return func(context.Context) ([]byte, error) { return []byte(s), nil }
}

func TestGetOrComputeMissThenHit(t *testing.T) {
	c := newCache(t, 1<<20)
	key := Key{Op: "partition", Sum: 1}
	got, cached, err := c.GetOrCompute(context.Background(), key, body("result"))
	if err != nil || cached || string(got) != "result" {
		t.Fatalf("first call = (%q, %v, %v), want fresh result", got, cached, err)
	}
	got, cached, err = c.GetOrCompute(context.Background(), key, func(context.Context) ([]byte, error) {
		t.Fatal("second call recomputed")
		return nil, nil
	})
	if err != nil || !cached || string(got) != "result" {
		t.Fatalf("second call = (%q, %v, %v), want cached result", got, cached, err)
	}
}

func TestGetOrComputeDoesNotCacheErrors(t *testing.T) {
	c := newCache(t, 1<<20)
	key := Key{Op: "partition", Sum: 2}
	boom := errors.New("boom")
	if _, _, err := c.GetOrCompute(context.Background(), key, func(context.Context) ([]byte, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failure must not be cached: the next call computes fresh.
	got, cached, err := c.GetOrCompute(context.Background(), key, body("retry"))
	if err != nil || cached || string(got) != "retry" {
		t.Fatalf("retry = (%q, %v, %v), want fresh compute", got, cached, err)
	}
}

func TestGetOrComputeRejectsDeadContext(t *testing.T) {
	c := newCache(t, 1<<20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.GetOrCompute(ctx, Key{Op: "partition", Sum: 3}, body("x"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if c.Len() != 0 {
		t.Fatal("dead-context lookup left an entry behind")
	}
}

// TestConcurrentIdenticalRequestsCoalesce is the single-flight pin: N
// concurrent lookups of one key must run exactly one compute, and every
// caller must see the same body.
func TestConcurrentIdenticalRequestsCoalesce(t *testing.T) {
	c := newCache(t, 1<<20)
	key := Key{Op: "sweep", Sum: 4}
	var computes atomic.Int64
	gate := make(chan struct{})
	compute := func(context.Context) ([]byte, error) {
		computes.Add(1)
		<-gate // hold the flight open until every goroutine has started
		return []byte("shared"), nil
	}
	const n = 16
	var wg sync.WaitGroup
	results := make([]string, n)
	fresh := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, cached, err := c.GetOrCompute(context.Background(), key, compute)
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			results[i] = string(got)
			fresh[i] = !cached
		}(i)
	}
	// Wait until the owner is computing, then release it. Remaining
	// goroutines either wait on the flight or hit the landed entry.
	for computes.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("%d computes for %d identical requests, want 1", got, n)
	}
	freshCount := 0
	for i := range results {
		if results[i] != "shared" {
			t.Fatalf("goroutine %d saw %q", i, results[i])
		}
		if fresh[i] {
			freshCount++
		}
	}
	if freshCount != 1 {
		t.Fatalf("%d goroutines report a fresh compute, want exactly the owner", freshCount)
	}
}

// TestCancelledFlightDoesNotPoison pins the non-poisoning rule: an owner
// cancelled mid-compute must not cache its context error, and a live
// waiter must promote a fresh flight and succeed.
func TestCancelledFlightDoesNotPoison(t *testing.T) {
	c := newCache(t, 1<<20)
	key := Key{Op: "partition", Sum: 5}

	ownerCtx, cancelOwner := context.WithCancel(context.Background())
	ownerStarted := make(chan struct{})
	ownerErr := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrCompute(ownerCtx, key, func(ctx context.Context) ([]byte, error) {
			close(ownerStarted)
			<-ctx.Done()
			return nil, fmt.Errorf("compute interrupted: %w", ctx.Err())
		})
		ownerErr <- err
	}()
	<-ownerStarted

	waiterDone := make(chan struct{})
	var waiterBody []byte
	var waiterCached bool
	var waiterErr error
	go func() {
		defer close(waiterDone)
		waiterBody, waiterCached, waiterErr = c.GetOrCompute(context.Background(), key,
			body("recovered"))
	}()
	// Give the waiter a moment to park on the flight, then kill the
	// owner. (If it instead arrives after the owner dies, it becomes the
	// owner directly — the same observable outcome.)
	time.Sleep(10 * time.Millisecond)
	cancelOwner()

	if err := <-ownerErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("owner err = %v, want context.Canceled", err)
	}
	<-waiterDone
	if waiterErr != nil {
		t.Fatalf("waiter err = %v — the owner's cancellation leaked", waiterErr)
	}
	if string(waiterBody) != "recovered" {
		t.Fatalf("waiter body = %q", waiterBody)
	}
	if waiterCached {
		t.Fatal("waiter reports cached — it must have promoted a fresh flight")
	}
	// And the successful promotion is what landed in the cache.
	got, ok := c.Get(key)
	if !ok || string(got) != "recovered" {
		t.Fatalf("cache holds (%q, %v), want promoted body", got, ok)
	}
}

// TestWaiterCancellationLeavesFlightAlone: a waiter abandoning its wait
// must get its own context error while the owner lands normally.
func TestWaiterCancellation(t *testing.T) {
	c := newCache(t, 1<<20)
	key := Key{Op: "partition", Sum: 6}
	gate := make(chan struct{})
	started := make(chan struct{})
	ownerDone := make(chan struct{})
	go func() {
		defer close(ownerDone)
		_, _, err := c.GetOrCompute(context.Background(), key, func(context.Context) ([]byte, error) {
			close(started)
			<-gate
			return []byte("landed"), nil
		})
		if err != nil {
			t.Errorf("owner: %v", err)
		}
	}()
	<-started

	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	waiterErr := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrCompute(waiterCtx, key, body("unused"))
		waiterErr <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancelWaiter()
	if err := <-waiterErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want its own cancellation", err)
	}
	close(gate)
	<-ownerDone
	if got, ok := c.Get(key); !ok || string(got) != "landed" {
		t.Fatalf("cache holds (%q, %v) after waiter abandoned", got, ok)
	}
}

func TestLRUEvictionByByteBudget(t *testing.T) {
	// Three ~100-byte bodies (plus overhead) in a budget that holds two.
	c := newCache(t, 2*(100+entryOverhead))
	put := func(sum uint64) { c.Put(Key{Op: "partition", Sum: sum}, make([]byte, 100)) }
	put(1)
	put(2)
	// Touch 1 so that 2 is the LRU victim.
	if _, ok := c.Get(Key{Op: "partition", Sum: 1}); !ok {
		t.Fatal("entry 1 missing before eviction")
	}
	put(3)
	if _, ok := c.Get(Key{Op: "partition", Sum: 2}); ok {
		t.Fatal("LRU entry 2 survived over-budget insert")
	}
	if _, ok := c.Get(Key{Op: "partition", Sum: 1}); !ok {
		t.Fatal("recently used entry 1 was evicted")
	}
	if _, ok := c.Get(Key{Op: "partition", Sum: 3}); !ok {
		t.Fatal("fresh entry 3 missing")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if c.Bytes() > 2*(100+entryOverhead) {
		t.Fatalf("Bytes = %d exceeds budget", c.Bytes())
	}
}

func TestOversizeBodyRejected(t *testing.T) {
	c := newCache(t, 256)
	c.Put(Key{Op: "partition", Sum: 1}, []byte("small"))
	if c.Len() != 1 {
		t.Fatal("small body not cached")
	}
	c.Put(Key{Op: "partition", Sum: 2}, make([]byte, 1024))
	if c.Len() != 1 {
		t.Fatal("oversize body evicted the resident set instead of being rejected")
	}
	if _, ok := c.Get(Key{Op: "partition", Sum: 2}); ok {
		t.Fatal("oversize body was cached")
	}
}

// TestConcurrentMixedKeysRaceClean drives lookups, evictions and
// single-flight promotion concurrently; its value is running under
// -race (the suite is part of `make race`).
func TestConcurrentMixedKeysRaceClean(t *testing.T) {
	c := newCache(t, 4*(64+entryOverhead)) // tiny budget forces constant eviction
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := Key{Op: "partition", Sum: uint64(i % 7)}
				_, _, err := c.GetOrCompute(context.Background(), key, func(context.Context) ([]byte, error) {
					return make([]byte, 64), nil
				})
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
