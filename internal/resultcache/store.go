package resultcache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// StoreSchema versions the on-disk snapshot format, following the
// roadpart-bench/v1 convention: readers reject anything else, so a
// future format change cannot be misread as today's (see
// docs/FORMATS.md § Result-cache snapshots).
const StoreSchema = "roadpart-cache/v1"

// storeEntry is the JSON document written per cached result.
type storeEntry struct {
	Schema string `json:"schema"`
	Op     string `json:"op"`
	// Key is the content fingerprint in %016x form; it must match the
	// filename, so a renamed or hand-edited snapshot is rejected instead
	// of served under the wrong key.
	Key string `json:"key"`
	// Body is the cached response exactly as served (a JSON document
	// itself, embedded raw so the file stays greppable).
	Body json.RawMessage `json:"body"`
}

// opPattern restricts operation names to path-safe lowercase words: the
// op is spliced into filenames.
var opPattern = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// Store persists cache entries as one JSON file per result in a flat
// directory. Unlike the in-memory Cache's best-effort persistence, Store
// methods return real errors — the CLI surfaces them to the operator.
type Store struct{ dir string }

// OpenStore creates dir if needed and returns a store over it.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultcache: preparing snapshot dir: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the directory backing the store.
func (s *Store) Dir() string { return s.dir }

// path names the snapshot file for key: <op>-<sum hex>.json.
func (s *Store) path(key Key) string {
	return filepath.Join(s.dir, key.String()+".json")
}

// Write persists body under key atomically (temp file + rename), so a
// crash mid-write leaves either the old snapshot or none — never a
// truncated one that Load would have to reject.
func (s *Store) Write(key Key, body []byte) error {
	if !opPattern.MatchString(key.Op) {
		return fmt.Errorf("resultcache: unsafe op name %q", key.Op)
	}
	doc, err := json.Marshal(storeEntry{
		Schema: StoreSchema,
		Op:     key.Op,
		Key:    fmt.Sprintf("%016x", key.Sum),
		Body:   json.RawMessage(body),
	})
	if err != nil {
		return fmt.Errorf("resultcache: encoding snapshot %s: %w", key, err)
	}
	tmp, err := os.CreateTemp(s.dir, "."+key.Op+"-*.tmp")
	if err != nil {
		return fmt.Errorf("resultcache: writing snapshot %s: %w", key, err)
	}
	if _, err := tmp.Write(append(doc, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("resultcache: writing snapshot %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultcache: writing snapshot %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultcache: writing snapshot %s: %w", key, err)
	}
	return nil
}

// Remove deletes the snapshot stored under key. A snapshot that does
// not exist is not an error — invalidation races harmlessly with
// eviction and with caches running without persistence for that entry.
func (s *Store) Remove(key Key) error {
	if err := os.Remove(s.path(key)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("resultcache: removing snapshot %s: %w", key, err)
	}
	return nil
}

// Read loads the body stored under key. The boolean reports whether a
// valid snapshot exists; schema or key mismatches read as absent-with-
// error so callers can distinguish "cold" from "corrupt".
func (s *Store) Read(key Key) ([]byte, bool, error) {
	data, err := os.ReadFile(s.path(key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("resultcache: reading snapshot %s: %w", key, err)
	}
	body, err := decodeEntry(data, key)
	if err != nil {
		return nil, false, err
	}
	return body, true, nil
}

// LoadAll reads every valid snapshot in the directory, oldest-modified
// first. Invalid files are skipped, not fatal: one corrupt snapshot must
// not take down a daemon warming its cache.
func (s *Store) LoadAll() ([]StoredEntry, error) {
	names, err := filepath.Glob(filepath.Join(s.dir, "*.json"))
	if err != nil {
		return nil, fmt.Errorf("resultcache: scanning snapshot dir: %w", err)
	}
	type candidate struct {
		name string
		mod  int64
	}
	cands := make([]candidate, 0, len(names))
	for _, name := range names {
		fi, err := os.Stat(name)
		if err != nil {
			continue
		}
		cands = append(cands, candidate{name, fi.ModTime().UnixNano()})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].mod < cands[j].mod })
	var out []StoredEntry
	for _, cand := range cands {
		key, ok := keyFromFilename(filepath.Base(cand.name))
		if !ok {
			continue
		}
		data, err := os.ReadFile(cand.name)
		if err != nil {
			continue
		}
		body, err := decodeEntry(data, key)
		if err != nil {
			continue
		}
		out = append(out, StoredEntry{Key: key, Body: body})
	}
	return out, nil
}

// StoredEntry is one snapshot loaded from disk.
type StoredEntry struct {
	Key  Key
	Body []byte
}

// decodeEntry validates one snapshot document against the key it claims
// to hold.
func decodeEntry(data []byte, key Key) ([]byte, error) {
	var e storeEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("resultcache: snapshot %s: %w", key, err)
	}
	if e.Schema != StoreSchema {
		return nil, fmt.Errorf("resultcache: snapshot %s has schema %q, want %q", key, e.Schema, StoreSchema)
	}
	if e.Op != key.Op || e.Key != fmt.Sprintf("%016x", key.Sum) {
		return nil, fmt.Errorf("resultcache: snapshot %s claims key %s-%s", key, e.Op, e.Key)
	}
	if len(e.Body) == 0 {
		return nil, fmt.Errorf("resultcache: snapshot %s has no body", key)
	}
	return []byte(e.Body), nil
}

// keyFromFilename parses <op>-<16 hex>.json back into a Key.
func keyFromFilename(name string) (Key, bool) {
	base := strings.TrimSuffix(name, ".json")
	if base == name {
		return Key{}, false
	}
	i := strings.LastIndexByte(base, '-')
	if i < 1 || len(base)-i-1 != 16 {
		return Key{}, false
	}
	op := base[:i]
	if !opPattern.MatchString(op) {
		return Key{}, false
	}
	sum, err := strconv.ParseUint(base[i+1:], 16, 64)
	if err != nil {
		return Key{}, false
	}
	return Key{Op: op, Sum: sum}, true
}
