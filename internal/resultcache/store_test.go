package resultcache

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestStoreRoundTrip(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key{Op: "partition", Sum: 0xdeadbeef}
	bodyJSON := []byte(`{"assign":[0,1],"k":2}`)
	if err := st.Write(key, bodyJSON); err != nil {
		t.Fatal(err)
	}
	got, ok, err := st.Read(key)
	if err != nil || !ok {
		t.Fatalf("Read = (%v, %v)", ok, err)
	}
	if string(got) != string(bodyJSON) {
		t.Fatalf("body = %s, want %s", got, bodyJSON)
	}
	// The file itself carries the versioned schema.
	data, err := os.ReadFile(filepath.Join(st.Dir(), "partition-00000000deadbeef.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if string(doc["schema"]) != `"roadpart-cache/v1"` {
		t.Fatalf("schema = %s", doc["schema"])
	}
}

func TestStoreReadMissing(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.Read(Key{Op: "sweep", Sum: 1}); ok || err != nil {
		t.Fatalf("missing snapshot read as (%v, %v), want cold", ok, err)
	}
}

func TestStoreRejectsWrongSchemaAndKey(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key{Op: "partition", Sum: 7}
	bad := `{"schema":"roadpart-cache/v2","op":"partition","key":"0000000000000007","body":{}}`
	if err := os.WriteFile(st.path(key), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Read(key); err == nil {
		t.Fatal("wrong-schema snapshot accepted")
	}
	// A renamed snapshot (file key ≠ document key) is rejected too.
	moved := Key{Op: "partition", Sum: 8}
	good := `{"schema":"roadpart-cache/v1","op":"partition","key":"0000000000000007","body":{"k":2}}`
	if err := os.WriteFile(st.path(moved), []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Read(moved); err == nil {
		t.Fatal("renamed snapshot accepted under the wrong key")
	}
}

func TestStoreRejectsUnsafeOp(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Write(Key{Op: "../escape", Sum: 1}, []byte(`{}`)); err == nil {
		t.Fatal("path-unsafe op accepted")
	}
}

func TestCacheWarmsFromDisk(t *testing.T) {
	dir := t.TempDir()
	first, err := New(Config{MaxBytes: 1 << 20, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	key := Key{Op: "sweep", Sum: 42}
	first.Put(key, []byte(`{"best_k":4}`))

	// A corrupt stray file must not break the warm-up.
	if err := os.WriteFile(filepath.Join(dir, "sweep-000000000000ffff.json"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	second, err := New(Config{MaxBytes: 1 << 20, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := second.Get(key)
	if !ok || string(got) != `{"best_k":4}` {
		t.Fatalf("restarted cache holds (%q, %v), want warmed entry", got, ok)
	}
	if second.Len() != 1 {
		t.Fatalf("Len = %d after warming past a corrupt file, want 1", second.Len())
	}
}

func TestLoadAllOrdersByModTime(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	older := Key{Op: "partition", Sum: 1}
	newer := Key{Op: "partition", Sum: 2}
	if err := st.Write(older, []byte(`{"k":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := st.Write(newer, []byte(`{"k":2}`)); err != nil {
		t.Fatal(err)
	}
	// Force distinct mtimes regardless of filesystem resolution.
	backdate(t, st.path(older), -2*time.Hour)
	ents, err := st.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("loaded %d entries, want 2", len(ents))
	}
	if ents[0].Key != older || ents[1].Key != newer {
		t.Fatalf("order = %v, %v; want oldest first", ents[0].Key, ents[1].Key)
	}
}

// backdate shifts a file's mtime by d.
func backdate(t *testing.T, path string, d time.Duration) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	mt := fi.ModTime().Add(d)
	if err := os.Chtimes(path, mt, mt); err != nil {
		t.Fatal(err)
	}
}
