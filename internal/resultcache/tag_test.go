package resultcache

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

func TestTagNeverZeroAndDistinct(t *testing.T) {
	if Tag(0, 0) == 0 || Tag(1, 2) == 0 {
		t.Fatal("Tag produced the reserved untagged value")
	}
	if Tag(1, 2) == Tag(2, 1) {
		t.Fatal("Tag is insensitive to argument order")
	}
	if Tag(1, 2) == Tag(1, 3) {
		t.Fatal("Tag ignores the density fingerprint")
	}
}

func TestInvalidateTagDropsOnlyItsGroup(t *testing.T) {
	c := newCache(t, 1<<20)
	ctx := context.Background()
	old, fresh := Tag(7, 100), Tag(7, 101)
	keys := []Key{{Op: "partition", Sum: 1}, {Op: "sweep", Sum: 2}}
	for _, k := range keys {
		if _, _, err := c.GetOrComputeTagged(ctx, k, old, body("old")); err != nil {
			t.Fatal(err)
		}
	}
	keep := Key{Op: "partition", Sum: 3}
	if _, _, err := c.GetOrComputeTagged(ctx, keep, fresh, body("fresh")); err != nil {
		t.Fatal(err)
	}

	if n := c.InvalidateTag(old); n != 2 {
		t.Fatalf("InvalidateTag dropped %d entries, want 2", n)
	}
	// A hit on an invalidated key after its density generation was
	// superseded is exactly the staleness bug the tags exist to prevent.
	for _, k := range keys {
		if _, ok := c.Get(k); ok {
			t.Fatalf("stale entry %s survived invalidation", k)
		}
	}
	if _, ok := c.Get(keep); !ok {
		t.Fatal("entry from the live generation was dropped")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after invalidation, want 1", c.Len())
	}
	if n := c.InvalidateTag(old); n != 0 {
		t.Fatalf("second InvalidateTag dropped %d entries, want 0", n)
	}
	if c.InvalidateTag(0) != 0 {
		t.Fatal("InvalidateTag(0) must be a no-op")
	}
}

func TestInvalidateTagRemovesSnapshots(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{MaxBytes: 1 << 20, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tag := Tag(3, 4)
	key := Key{Op: "partition", Sum: 42}
	if _, _, err := c.GetOrComputeTagged(context.Background(), key, tag, body(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(dir, key.String()+".json")
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("snapshot not persisted: %v", err)
	}
	if n := c.InvalidateTag(tag); n != 1 {
		t.Fatalf("dropped %d, want 1", n)
	}
	if _, err := os.Stat(snap); !os.IsNotExist(err) {
		t.Fatalf("snapshot survived invalidation: %v", err)
	}
}

func TestEvictionCleansTagIndex(t *testing.T) {
	// Budget fits one small entry (plus overhead); the second insert
	// evicts the first, which must also leave its tag group.
	c := newCache(t, entryOverhead+8)
	ctx := context.Background()
	tag := Tag(9, 9)
	a, b := Key{Op: "partition", Sum: 10}, Key{Op: "partition", Sum: 11}
	if _, _, err := c.GetOrComputeTagged(ctx, a, tag, body("aaaa")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.GetOrComputeTagged(ctx, b, tag, body("bbbb")); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(a); ok {
		t.Fatal("first entry should have been evicted")
	}
	// Only the resident entry counts toward the group now.
	if n := c.InvalidateTag(tag); n != 1 {
		t.Fatalf("InvalidateTag dropped %d entries, want 1 (evicted entry must leave the index)", n)
	}
}

func TestStoreRemoveMissingIsNoError(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Remove(Key{Op: "partition", Sum: 99}); err != nil {
		t.Fatalf("removing a missing snapshot errored: %v", err)
	}
}
