package roadnet

import (
	"fmt"
	"math"
)

// DensityUpdate changes one segment's traffic density. It is the unit of
// the streaming delta path: a congestion sensor reports a new density for
// one road segment, and the partitioner decides how much work that
// observation is worth.
type DensityUpdate struct {
	// Segment indexes into the network's segment slice.
	Segment int `json:"segment"`
	// Density is the new density in vehicles per metre.
	Density float64 `json:"density"`
}

// DensityDelta is a sparse batch of density updates applied atomically to
// one network. Order matters only when the same segment appears twice —
// the last write wins, exactly as if the updates were applied one by one.
type DensityDelta []DensityUpdate

// Validate checks every update against a network with nSegments segments,
// naming the offending field in the error so a server boundary can reject
// a bad delta with a precise 400 instead of surfacing a late failure from
// deep in the pipeline.
func (d DensityDelta) Validate(nSegments int) error {
	if len(d) == 0 {
		return fmt.Errorf("roadnet: empty density delta")
	}
	for i, u := range d {
		if u.Segment < 0 || u.Segment >= nSegments {
			return fmt.Errorf("roadnet: updates[%d].segment = %d outside %d segments", i, u.Segment, nSegments)
		}
		if u.Density < 0 || math.IsNaN(u.Density) || math.IsInf(u.Density, 0) {
			return fmt.Errorf("roadnet: updates[%d].density = %v is not a finite non-negative density", i, u.Density)
		}
	}
	return nil
}

// Apply writes the delta into net and returns the previous density of
// each updated segment (aligned with d), which is exactly what a caller
// needs to maintain the incremental DensityHash and to measure drift.
// The delta is validated first; on error the network is untouched.
func (d DensityDelta) Apply(net *Network) ([]float64, error) {
	if err := d.Validate(len(net.Segments)); err != nil {
		return nil, err
	}
	old := make([]float64, len(d))
	for i, u := range d {
		old[i] = net.Segments[u.Segment].Density
		net.Segments[u.Segment].Density = u.Density
	}
	return old, nil
}

// Segments returns the distinct segment indices the delta touches, in
// first-appearance order — the set of dual-graph nodes whose features
// changed, which the temporal tracker maps onto affected regions.
func (d DensityDelta) Segments() []int {
	seen := make(map[int]struct{}, len(d))
	out := make([]int, 0, len(d))
	for _, u := range d {
		if _, ok := seen[u.Segment]; ok {
			continue
		}
		seen[u.Segment] = struct{}{}
		out = append(out, u.Segment)
	}
	return out
}
