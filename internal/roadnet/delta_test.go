package roadnet

import (
	"math"
	"strings"
	"testing"
)

func deltaNet() *Network {
	return &Network{
		Intersections: []Intersection{{ID: 0}, {ID: 1, X: 100}, {ID: 2, X: 200}},
		Segments: []Segment{
			{ID: 0, From: 0, To: 1, Length: 100, Density: 0.10},
			{ID: 1, From: 1, To: 2, Length: 100, Density: 0.20},
			{ID: 2, From: 2, To: 0, Length: 150, Density: 0.30},
		},
	}
}

func TestDensityDeltaValidate(t *testing.T) {
	cases := []struct {
		name  string
		delta DensityDelta
		field string // substring the error must carry; empty = valid
	}{
		{"valid", DensityDelta{{Segment: 1, Density: 0.5}}, ""},
		{"empty", DensityDelta{}, "empty"},
		{"negative segment", DensityDelta{{Segment: -1, Density: 0.5}}, "updates[0].segment"},
		{"segment out of range", DensityDelta{{Segment: 0, Density: 1}, {Segment: 3, Density: 1}}, "updates[1].segment"},
		{"negative density", DensityDelta{{Segment: 0, Density: -0.1}}, "updates[0].density"},
		{"NaN density", DensityDelta{{Segment: 0, Density: math.NaN()}}, "updates[0].density"},
		{"Inf density", DensityDelta{{Segment: 0, Density: math.Inf(1)}}, "updates[0].density"},
	}
	for _, tc := range cases {
		err := tc.delta.Validate(3)
		if tc.field == "" {
			if err != nil {
				t.Fatalf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("%s: expected error naming %q", tc.name, tc.field)
		}
		if !strings.Contains(err.Error(), tc.field) {
			t.Fatalf("%s: error %q does not name %q", tc.name, err, tc.field)
		}
	}
}

func TestDensityDeltaApply(t *testing.T) {
	net := deltaNet()
	old, err := DensityDelta{{Segment: 0, Density: 0.7}, {Segment: 2, Density: 0.9}}.Apply(net)
	if err != nil {
		t.Fatal(err)
	}
	if old[0] != 0.10 || old[1] != 0.30 {
		t.Fatalf("old densities = %v, want [0.10 0.30]", old)
	}
	if net.Segments[0].Density != 0.7 || net.Segments[1].Density != 0.20 || net.Segments[2].Density != 0.9 {
		t.Fatalf("post-apply densities = %v", net.Densities())
	}
	// An invalid delta must leave the network untouched.
	before := net.Densities()
	if _, err := (DensityDelta{{Segment: 1, Density: 1}, {Segment: 9, Density: 1}}).Apply(net); err == nil {
		t.Fatal("out-of-range delta applied")
	}
	for i, d := range net.Densities() {
		if d != before[i] {
			t.Fatalf("failed Apply mutated segment %d", i)
		}
	}
}

func TestDensityDeltaLastWriteWins(t *testing.T) {
	net := deltaNet()
	if _, err := (DensityDelta{{Segment: 1, Density: 0.4}, {Segment: 1, Density: 0.6}}).Apply(net); err != nil {
		t.Fatal(err)
	}
	if net.Segments[1].Density != 0.6 {
		t.Fatalf("density = %v, want the last write 0.6", net.Segments[1].Density)
	}
}

func TestDensityDeltaSegments(t *testing.T) {
	d := DensityDelta{{Segment: 2}, {Segment: 0}, {Segment: 2}, {Segment: 1}}
	got := d.Segments()
	want := []int{2, 0, 1}
	if len(got) != len(want) {
		t.Fatalf("segments = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("segments = %v, want %v", got, want)
		}
	}
}

// TestUpdateDensityHashExact pins the tentpole property: maintaining the
// fingerprint through UpdateDensityHash per update is bit-identical to
// rehashing the whole vector from scratch.
func TestUpdateDensityHashExact(t *testing.T) {
	net := deltaNet()
	h := net.DensityHash()
	delta := DensityDelta{{Segment: 0, Density: 0.55}, {Segment: 2, Density: 0}, {Segment: 0, Density: 0.05}}
	old, err := delta.Apply(net)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range delta {
		h = UpdateDensityHash(h, u.Segment, old[i], u.Density)
	}
	if full := net.DensityHash(); h != full {
		t.Fatalf("incremental hash %016x != full rehash %016x", h, full)
	}
}

func TestUpdateDensityHashRoundTrip(t *testing.T) {
	net := deltaNet()
	h0 := net.DensityHash()
	h1 := UpdateDensityHash(h0, 1, 0.20, 0.95)
	if h1 == h0 {
		t.Fatal("update did not move the hash")
	}
	if back := UpdateDensityHash(h1, 1, 0.95, 0.20); back != h0 {
		t.Fatalf("reverting the update gives %016x, want %016x", back, h0)
	}
}

// TestDensityHashPositionSensitive ensures the commutative-sum form still
// distinguishes vectors that are permutations of each other.
func TestDensityHashPositionSensitive(t *testing.T) {
	a, b := deltaNet(), deltaNet()
	b.Segments[0].Density, b.Segments[1].Density = b.Segments[1].Density, b.Segments[0].Density
	if a.DensityHash() == b.DensityHash() {
		t.Fatal("swapping two densities did not move the hash")
	}
}
