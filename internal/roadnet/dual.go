package roadnet

import (
	"fmt"

	"roadpart/internal/graph"
)

// DualGraph constructs the road graph G = (V, E) of Definition 2: one node
// per road segment, and an undirected unit-weight link between every pair
// of segments that share at least one intersection point. Segments meeting
// in a star topology therefore form a clique, while linear chains stay
// linear. A pair sharing both endpoints (the two directions of a two-way
// road) still gets a single link.
//
// Node i of the returned graph corresponds to Segments[i].
func DualGraph(n *Network) (*graph.Graph, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	g := graph.New(len(n.Segments))

	// Incident segments (either direction) at every intersection.
	incident := make([][]int, len(n.Intersections))
	for i, s := range n.Segments {
		incident[s.From] = append(incident[s.From], i)
		incident[s.To] = append(incident[s.To], i)
	}

	// Clique per intersection, deduplicating pairs that share two
	// intersections. seen[v] holds the most recent u for which (u,v) was
	// added; since pairs are visited with u ascending within and across
	// cliques this gives exact deduplication per u.
	// Two passes over the same traversal: the first counts endpoints per
	// node so Reserve can lay every adjacency list in one flat backing,
	// the second adds the edges into the reserved capacity. The marker
	// scheme keeps the passes independent: pass one stamps seen[v] = u,
	// pass two stamps seen[v] = u + nSeg, so a leftover pass-one stamp
	// (always < nSeg) can never satisfy pass two's check.
	nSeg := len(n.Segments)
	seen := make([]int, nSeg)
	for i := range seen {
		seen[i] = -1
	}
	deg := make([]int, nSeg)
	for u := 0; u < nSeg; u++ {
		s := n.Segments[u]
		for _, ι := range [2]int{s.From, s.To} {
			for _, v := range incident[ι] {
				if v <= u || seen[v] == u {
					continue
				}
				seen[v] = u
				deg[u]++
				deg[v]++
			}
		}
	}
	g.Reserve(deg)
	for u := 0; u < nSeg; u++ {
		s := n.Segments[u]
		for _, ι := range [2]int{s.From, s.To} {
			for _, v := range incident[ι] {
				if v <= u || seen[v] == u+nSeg {
					continue
				}
				seen[v] = u + nSeg
				if err := g.AddEdge(u, v, 1); err != nil {
					return nil, fmt.Errorf("roadnet: dual edge (%d,%d): %w", u, v, err)
				}
			}
		}
	}
	return g, nil
}
