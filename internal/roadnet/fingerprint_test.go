package roadnet

import "testing"

// twoSegmentNet builds a minimal valid network for fingerprint tests.
func twoSegmentNet() *Network {
	return &Network{
		Intersections: []Intersection{{ID: 0}, {ID: 1, X: 100}, {ID: 2, Y: 100}},
		Segments: []Segment{
			{ID: 0, From: 0, To: 1, Length: 100, Density: 0.02},
			{ID: 1, From: 1, To: 2, Length: 141, Density: 0.05},
		},
	}
}

func TestStructureHashStable(t *testing.T) {
	a, b := twoSegmentNet(), twoSegmentNet()
	if a.StructureHash() != b.StructureHash() {
		t.Fatal("identical networks hash differently")
	}
	if a.DensityHash() != b.DensityHash() {
		t.Fatal("identical densities hash differently")
	}
}

func TestStructureHashSeparatesGeometryFromDensities(t *testing.T) {
	base := twoSegmentNet()
	// A density change must move DensityHash but not StructureHash.
	dens := twoSegmentNet()
	dens.Segments[1].Density = 0.051
	if dens.StructureHash() != base.StructureHash() {
		t.Fatal("density change moved StructureHash")
	}
	if dens.DensityHash() == base.DensityHash() {
		t.Fatal("density change did not move DensityHash")
	}
	// A topology change must move StructureHash.
	topo := twoSegmentNet()
	topo.Segments[1].To = 0
	if topo.StructureHash() == base.StructureHash() {
		t.Fatal("rewired segment did not move StructureHash")
	}
	// A length change is structural too (lengths weight the dual graph).
	long := twoSegmentNet()
	long.Segments[0].Length = 101
	if long.StructureHash() == base.StructureHash() {
		t.Fatal("length change did not move StructureHash")
	}
}

func TestStructureHashIgnoresCoordinates(t *testing.T) {
	base := twoSegmentNet()
	moved := twoSegmentNet()
	moved.Intersections[2].X = 42
	if moved.StructureHash() != base.StructureHash() {
		t.Fatal("coordinate change moved StructureHash")
	}
}

func TestHashesDistinguishCounts(t *testing.T) {
	// An empty network and a nil-segment network must not collide with a
	// populated one by accident of an empty byte stream.
	empty := &Network{}
	if empty.StructureHash() == twoSegmentNet().StructureHash() {
		t.Fatal("empty network collides with populated network")
	}
	if empty.DensityHash() == twoSegmentNet().DensityHash() {
		t.Fatal("empty density vector collides with populated one")
	}
}
