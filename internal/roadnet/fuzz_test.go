package roadnet

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadGeoJSON asserts the GeoJSON reader never panics and that every
// accepted network validates and survives a JSON round trip.
func FuzzReadGeoJSON(f *testing.F) {
	f.Add(`{"type":"FeatureCollection","features":[{"type":"Feature","geometry":{"type":"LineString","coordinates":[[0,0],[10,0]]},"properties":{"density":0.5}}]}`)
	f.Add(`{"type":"FeatureCollection","features":[]}`)
	f.Add(`{"type":"Point"}`)
	f.Add(`garbage`)
	f.Add(`{"type":"FeatureCollection","features":[{"type":"Feature","geometry":{"type":"LineString","coordinates":[[0,0],[0,0]]},"properties":{}}]}`)
	f.Fuzz(func(t *testing.T, src string) {
		net, err := ReadGeoJSON(strings.NewReader(src), 1)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := net.Validate(); err != nil {
			t.Fatalf("accepted network fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := net.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted network fails to serialize: %v", err)
		}
	})
}

// FuzzReadDensitiesCSV asserts the CSV reader never panics and never
// leaves the network with invalid densities.
func FuzzReadDensitiesCSV(f *testing.F) {
	f.Add("segment_id,density\n0,1\n1,2\n2,3\n3,4\n")
	f.Add("0,0.5\n1,0.5\n2,0.5\n3,0.5\n")
	f.Add("bogus")
	f.Add("0,-1\n")
	f.Fuzz(func(t *testing.T, src string) {
		n := crossNet()
		if err := n.ReadDensitiesCSV(strings.NewReader(src)); err != nil {
			return
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("accepted CSV left invalid network: %v", err)
		}
	})
}
