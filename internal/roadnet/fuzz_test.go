package roadnet

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// seedFromTestdata adds every file matching glob under testdata/ to the
// fuzz corpus, so the curated valid and hostile inputs checked into the
// repo anchor each fuzzing run (and run as plain subtests under go test).
func seedFromTestdata(f *testing.F, glob string) {
	paths, err := filepath.Glob(filepath.Join("testdata", glob))
	if err != nil {
		f.Fatal(err)
	}
	if len(paths) == 0 {
		f.Fatalf("no testdata seeds match %q", glob)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
}

// FuzzReadJSON asserts the network JSON reader never panics and that
// every accepted network validates and survives a serialize/parse round
// trip. Malformed, truncated or referentially broken inputs must come
// back as errors — a service decoding untrusted bodies sits directly on
// this path.
func FuzzReadJSON(f *testing.F) {
	seedFromTestdata(f, "*.json")
	f.Add(`{}`)
	f.Add(`[1,2,3]`)
	f.Add(`garbage`)
	f.Add(`{"Intersections":null,"Segments":null}`)
	f.Add(`{"Segments":[{"ID":0,"From":-1,"To":0,"Length":1,"Density":0}]}`)
	f.Add(`{"Intersections":[{"ID":0,"X":1e999,"Y":0}],"Segments":[]}`)
	f.Fuzz(func(t *testing.T, src string) {
		net, err := ReadJSON(strings.NewReader(src))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := net.Validate(); err != nil {
			t.Fatalf("accepted network fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := net.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted network fails to serialize: %v", err)
		}
		if _, err := ReadJSON(&buf); err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
	})
}

// FuzzReadGeoJSON asserts the GeoJSON reader never panics and that every
// accepted network validates and survives a JSON round trip.
func FuzzReadGeoJSON(f *testing.F) {
	seedFromTestdata(f, "*.geojson")
	f.Add(`{"type":"FeatureCollection","features":[{"type":"Feature","geometry":{"type":"LineString","coordinates":[[0,0],[10,0]]},"properties":{"density":0.5}}]}`)
	f.Add(`{"type":"FeatureCollection","features":[]}`)
	f.Add(`{"type":"Point"}`)
	f.Add(`garbage`)
	f.Add(`{"type":"FeatureCollection","features":[{"type":"Feature","geometry":{"type":"LineString","coordinates":[[0,0],[0,0]]},"properties":{}}]}`)
	f.Add(`{"type":"FeatureCollection","features":[{"type":"Feature","geometry":{"type":"LineString","coordinates":[[0,0],[0,0,0]]},"properties":{}}]}`)
	f.Fuzz(func(t *testing.T, src string) {
		net, err := ReadGeoJSON(strings.NewReader(src), 1)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := net.Validate(); err != nil {
			t.Fatalf("accepted network fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := net.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted network fails to serialize: %v", err)
		}
	})
}

// FuzzReadDensitiesCSV asserts the CSV reader never panics and never
// leaves the network with invalid densities.
func FuzzReadDensitiesCSV(f *testing.F) {
	f.Add("segment_id,density\n0,1\n1,2\n2,3\n3,4\n")
	f.Add("0,0.5\n1,0.5\n2,0.5\n3,0.5\n")
	f.Add("bogus")
	f.Add("0,-1\n")
	f.Add("0,NaN\n1,Inf\n2,1\n3,1\n")
	f.Fuzz(func(t *testing.T, src string) {
		n := crossNet()
		if err := n.ReadDensitiesCSV(strings.NewReader(src)); err != nil {
			return
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("accepted CSV left invalid network: %v", err)
		}
	})
}
