package roadnet

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// GeoJSON interchange: most city road-network exports arrive as a
// FeatureCollection of LineString features. WriteGeoJSON emits one
// LineString per directed segment with its id, length and density as
// properties (and the partition id when one is supplied); ReadGeoJSON
// reconstructs a Network from such a file, creating intersections at the
// endpoints of each LineString and merging endpoints that coincide within
// a tolerance.
//
// Coordinates are treated as planar (metres). Real longitude/latitude
// data should be projected before import; the reader only needs relative
// positions to be meaningful.

// geoFeatureCollection is the subset of the GeoJSON schema we exchange.
type geoFeatureCollection struct {
	Type     string       `json:"type"`
	Features []geoFeature `json:"features"`
}

type geoFeature struct {
	Type       string                 `json:"type"`
	Geometry   geoGeometry            `json:"geometry"`
	Properties map[string]interface{} `json:"properties,omitempty"`
}

type geoGeometry struct {
	Type        string       `json:"type"`
	Coordinates [][2]float64 `json:"coordinates"`
}

// WriteGeoJSON serializes the network as a GeoJSON FeatureCollection of
// LineStrings, one per directed segment. assign may be nil; when given it
// must cover every segment and adds a "partition" property.
func (n *Network) WriteGeoJSON(w io.Writer, assign []int) error {
	if assign != nil && len(assign) != len(n.Segments) {
		return fmt.Errorf("roadnet: %d partition labels for %d segments", len(assign), len(n.Segments))
	}
	fc := geoFeatureCollection{Type: "FeatureCollection"}
	for i, s := range n.Segments {
		a, b := n.Intersections[s.From], n.Intersections[s.To]
		props := map[string]interface{}{
			"segment_id": s.ID,
			"length_m":   s.Length,
			"density":    s.Density,
		}
		if assign != nil {
			props["partition"] = assign[i]
		}
		fc.Features = append(fc.Features, geoFeature{
			Type: "Feature",
			Geometry: geoGeometry{
				Type:        "LineString",
				Coordinates: [][2]float64{{a.X, a.Y}, {b.X, b.Y}},
			},
			Properties: props,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(fc)
}

// ReadGeoJSON parses a FeatureCollection of LineString features into a
// Network. Intersections are created at LineString endpoints, merging
// points closer than tol (pass 0 for exact matching). Multi-point
// LineStrings contribute one segment per consecutive coordinate pair.
// Properties "density" and "length_m" are honored when present; length
// defaults to the Euclidean distance.
func ReadGeoJSON(r io.Reader, tol float64) (*Network, error) {
	var fc geoFeatureCollection
	if err := json.NewDecoder(r).Decode(&fc); err != nil {
		return nil, fmt.Errorf("roadnet: decoding GeoJSON: %w", err)
	}
	if fc.Type != "FeatureCollection" {
		return nil, fmt.Errorf("roadnet: GeoJSON type %q, want FeatureCollection", fc.Type)
	}
	if tol < 0 {
		tol = 0
	}

	net := &Network{}
	// Snap endpoints onto a grid of cell size max(tol, tiny) for merging.
	cell := tol
	if cell == 0 {
		cell = 1e-9
	}
	type key struct{ gx, gy int64 }
	index := map[key]int{}
	intern := func(x, y float64) int {
		k := key{int64(math.Floor(x / cell)), int64(math.Floor(y / cell))}
		// Check the 3×3 neighborhood to be robust at cell borders.
		for dx := int64(-1); dx <= 1; dx++ {
			for dy := int64(-1); dy <= 1; dy++ {
				if id, ok := index[key{k.gx + dx, k.gy + dy}]; ok {
					p := net.Intersections[id]
					if math.Hypot(p.X-x, p.Y-y) <= tol {
						return id
					}
				}
			}
		}
		id := len(net.Intersections)
		net.Intersections = append(net.Intersections, Intersection{ID: id, X: x, Y: y})
		index[k] = id
		return id
	}

	for fi, f := range fc.Features {
		if f.Geometry.Type != "LineString" {
			continue // politely skip points/polygons in mixed files
		}
		coords := f.Geometry.Coordinates
		if len(coords) < 2 {
			return nil, fmt.Errorf("roadnet: feature %d has %d coordinates", fi, len(coords))
		}
		density := 0.0
		if v, ok := f.Properties["density"].(float64); ok && v >= 0 {
			density = v
		}
		explicitLen := 0.0
		if v, ok := f.Properties["length_m"].(float64); ok && v > 0 {
			explicitLen = v
		}
		for c := 0; c+1 < len(coords); c++ {
			from := intern(coords[c][0], coords[c][1])
			to := intern(coords[c+1][0], coords[c+1][1])
			if from == to {
				continue // degenerate hop collapsed by merging
			}
			length := explicitLen
			if length == 0 || len(coords) > 2 {
				length = math.Hypot(coords[c][0]-coords[c+1][0], coords[c][1]-coords[c+1][1])
				if length <= 0 {
					length = 1
				}
			}
			net.Segments = append(net.Segments, Segment{
				ID: len(net.Segments), From: from, To: to, Length: length, Density: density,
			})
		}
	}
	if len(net.Segments) == 0 {
		return nil, fmt.Errorf("roadnet: GeoJSON contains no usable LineStrings")
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}
