package roadnet

import (
	"bytes"
	"strings"
	"testing"
)

func TestGeoJSONRoundTrip(t *testing.T) {
	n := crossNet()
	var buf bytes.Buffer
	if err := n.WriteGeoJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGeoJSON(&buf, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Segments) != len(n.Segments) {
		t.Fatalf("segments = %d, want %d", len(back.Segments), len(n.Segments))
	}
	if len(back.Intersections) != len(n.Intersections) {
		t.Fatalf("intersections = %d, want %d", len(back.Intersections), len(n.Intersections))
	}
	// Densities survive the round trip.
	var sum float64
	for _, s := range back.Segments {
		sum += s.Density
	}
	if sum != 1+2+3+4 {
		t.Fatalf("density sum = %v, want 10", sum)
	}
	// Topology: the dual graphs match in size.
	g1, err := DualGraph(n)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := DualGraph(back)
	if err != nil {
		t.Fatal(err)
	}
	if g1.M() != g2.M() {
		t.Fatalf("dual edges %d vs %d", g1.M(), g2.M())
	}
}

func TestGeoJSONWithPartitions(t *testing.T) {
	n := crossNet()
	var buf bytes.Buffer
	if err := n.WriteGeoJSON(&buf, []int{0, 0, 1, 1}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"partition":1`) {
		t.Fatal("partition property missing")
	}
	if err := n.WriteGeoJSON(&buf, []int{0}); err == nil {
		t.Fatal("short assignment should error")
	}
}

func TestReadGeoJSONMergesEndpoints(t *testing.T) {
	// Two LineStrings sharing an endpoint up to 0.4 m: with tol=1 they
	// must share one intersection.
	src := `{"type":"FeatureCollection","features":[
		{"type":"Feature","geometry":{"type":"LineString","coordinates":[[0,0],[100,0]]},"properties":{"density":0.2}},
		{"type":"Feature","geometry":{"type":"LineString","coordinates":[[100.4,0],[200,0]]},"properties":{"density":0.3}}
	]}`
	net, err := ReadGeoJSON(strings.NewReader(src), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Intersections) != 3 {
		t.Fatalf("intersections = %d, want 3 (endpoints merged)", len(net.Intersections))
	}
	if len(net.Segments) != 2 {
		t.Fatalf("segments = %d, want 2", len(net.Segments))
	}
	g, err := DualGraph(net)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) {
		t.Fatal("merged endpoint should make the segments adjacent")
	}
}

func TestReadGeoJSONPolyline(t *testing.T) {
	// One 3-point LineString yields two segments.
	src := `{"type":"FeatureCollection","features":[
		{"type":"Feature","geometry":{"type":"LineString","coordinates":[[0,0],[100,0],[100,100]]},"properties":{}}
	]}`
	net, err := ReadGeoJSON(strings.NewReader(src), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Segments) != 2 {
		t.Fatalf("segments = %d, want 2", len(net.Segments))
	}
	if net.Segments[0].Length != 100 || net.Segments[1].Length != 100 {
		t.Fatalf("lengths = %v, %v", net.Segments[0].Length, net.Segments[1].Length)
	}
}

func TestReadGeoJSONSkipsNonLineStrings(t *testing.T) {
	src := `{"type":"FeatureCollection","features":[
		{"type":"Feature","geometry":{"type":"Point","coordinates":[[0,0]]},"properties":{}},
		{"type":"Feature","geometry":{"type":"LineString","coordinates":[[0,0],[50,0]]},"properties":{}}
	]}`
	net, err := ReadGeoJSON(strings.NewReader(src), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Segments) != 1 {
		t.Fatalf("segments = %d, want 1", len(net.Segments))
	}
}

func TestReadGeoJSONErrors(t *testing.T) {
	cases := map[string]string{
		"not geojson":    `{"type":"Topology"}`,
		"garbage":        `zzz`,
		"no linestrings": `{"type":"FeatureCollection","features":[]}`,
		"one coordinate": `{"type":"FeatureCollection","features":[{"type":"Feature","geometry":{"type":"LineString","coordinates":[[0,0]]},"properties":{}}]}`,
	}
	for name, src := range cases {
		if _, err := ReadGeoJSON(strings.NewReader(src), 0); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
