package roadnet

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
)

// WriteJSON serializes the network as JSON to w.
func (n *Network) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(n)
}

// ReadJSON parses a network from JSON and validates it.
func ReadJSON(r io.Reader) (*Network, error) {
	var n Network
	if err := json.NewDecoder(r).Decode(&n); err != nil {
		return nil, fmt.Errorf("roadnet: decoding network: %w", err)
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return &n, nil
}

// SaveJSON writes the network to the named file.
func (n *Network) SaveJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := n.WriteJSON(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadJSON reads a network from the named file.
func LoadJSON(path string) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(bufio.NewReader(f))
}

// WriteDensitiesCSV writes one "segment_id,density" row per segment,
// preceded by a header.
func (n *Network) WriteDensitiesCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"segment_id", "density"}); err != nil {
		return err
	}
	for _, s := range n.Segments {
		rec := []string{strconv.Itoa(s.ID), strconv.FormatFloat(s.Density, 'g', -1, 64)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadDensitiesCSV parses "segment_id,density" rows (with optional header)
// and applies them to the network. Every segment must receive exactly one
// density.
func (n *Network) ReadDensitiesCSV(r io.Reader) error {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	records, err := cr.ReadAll()
	if err != nil {
		return fmt.Errorf("roadnet: reading density CSV: %w", err)
	}
	seen := make([]bool, len(n.Segments))
	count := 0
	for i, rec := range records {
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			if i == 0 {
				continue // header row
			}
			return fmt.Errorf("roadnet: density CSV row %d: bad id %q", i+1, rec[0])
		}
		d, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return fmt.Errorf("roadnet: density CSV row %d: bad density %q", i+1, rec[1])
		}
		if id < 0 || id >= len(n.Segments) {
			return fmt.Errorf("roadnet: density CSV row %d: segment %d outside network", i+1, id)
		}
		if seen[id] {
			return fmt.Errorf("roadnet: density CSV: duplicate segment %d", id)
		}
		if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return fmt.Errorf("roadnet: density CSV: invalid density %v for segment %d", d, id)
		}
		seen[id] = true
		n.Segments[id].Density = d
		count++
	}
	if count != len(n.Segments) {
		return fmt.Errorf("roadnet: density CSV covers %d of %d segments", count, len(n.Segments))
	}
	return nil
}
