// Package roadnet models urban road networks and their dual road graphs.
//
// A Network follows Definition 1 of the paper: a set of intersection points
// connected by directed road segments, each segment carrying a traffic
// density (vehicles per metre). The DualGraph transformation (Definition 2)
// turns segments into nodes and adjacency-at-an-intersection into
// undirected links, which is the representation every later stage of the
// framework operates on.
package roadnet

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// Intersection is a node of the physical road network (Definition 1's ι).
type Intersection struct {
	ID   int
	X, Y float64 // planar coordinates in metres
}

// Segment is a directed road segment (Definition 1's r). From and To index
// into the network's intersection slice. Density is the segment's traffic
// density r.d in vehicles per metre.
type Segment struct {
	ID       int
	From, To int
	Length   float64
	Density  float64
}

// Network is a directed urban road network N = (I, R).
type Network struct {
	Intersections []Intersection
	Segments      []Segment
}

// Clone returns a deep copy of the network. Intersections and Segments
// are plain value slices, so copying them fully decouples the clone:
// SetDensities on either network never affects the other. Callers that
// hand out a shared network to mutating consumers (e.g. noise-injection
// experiments) should hand out clones.
func (n *Network) Clone() *Network {
	c := &Network{
		Intersections: make([]Intersection, len(n.Intersections)),
		Segments:      make([]Segment, len(n.Segments)),
	}
	copy(c.Intersections, n.Intersections)
	copy(c.Segments, n.Segments)
	return c
}

// Validate checks referential integrity: intersection IDs match their
// indices, segment endpoints are in range, lengths are positive and finite,
// and densities are non-negative and finite.
func (n *Network) Validate() error {
	for i, p := range n.Intersections {
		if p.ID != i {
			return fmt.Errorf("roadnet: intersection %d has ID %d", i, p.ID)
		}
		if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
			return fmt.Errorf("roadnet: intersection %d has non-finite coordinates", i)
		}
	}
	ni := len(n.Intersections)
	for i, s := range n.Segments {
		if s.ID != i {
			return fmt.Errorf("roadnet: segment %d has ID %d", i, s.ID)
		}
		if s.From < 0 || s.From >= ni || s.To < 0 || s.To >= ni {
			return fmt.Errorf("roadnet: segment %d endpoints (%d,%d) outside %d intersections", i, s.From, s.To, ni)
		}
		if s.From == s.To {
			return fmt.Errorf("roadnet: segment %d is a loop at intersection %d", i, s.From)
		}
		if !(s.Length > 0) || math.IsInf(s.Length, 0) {
			return fmt.Errorf("roadnet: segment %d has invalid length %v", i, s.Length)
		}
		if s.Density < 0 || math.IsNaN(s.Density) || math.IsInf(s.Density, 0) {
			return fmt.Errorf("roadnet: segment %d has invalid density %v", i, s.Density)
		}
	}
	return nil
}

// Densities returns a copy of the per-segment density vector, the feature
// values v.f carried into the road graph.
func (n *Network) Densities() []float64 {
	d := make([]float64, len(n.Segments))
	for i, s := range n.Segments {
		d[i] = s.Density
	}
	return d
}

// SetDensities overwrites all segment densities from d.
// It returns an error if the lengths differ.
func (n *Network) SetDensities(d []float64) error {
	if len(d) != len(n.Segments) {
		return fmt.Errorf("roadnet: %d densities for %d segments", len(d), len(n.Segments))
	}
	for i := range n.Segments {
		n.Segments[i].Density = d[i]
	}
	return nil
}

// StructureHash returns a canonical FNV-64a fingerprint of the network's
// road-graph structure: the intersection and segment counts plus every
// segment's (From, To, Length) triple — exactly the inputs DualGraph
// consumes. Two networks with equal hashes produce the same dual road
// graph (modulo hash collisions). Densities, coordinates and IDs are
// deliberately excluded: densities are hashed separately by DensityHash
// so a re-partition of unchanged geometry under fresh traffic shares the
// structural half of its cache key, and coordinates/IDs never influence
// the partition.
func (n *Network) StructureHash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		_, _ = h.Write(buf[:])
	}
	put(uint64(len(n.Intersections)))
	put(uint64(len(n.Segments)))
	for _, s := range n.Segments {
		put(uint64(s.From))
		put(uint64(s.To))
		put(math.Float64bits(s.Length))
	}
	return h.Sum64()
}

// densityHashSeed anchors the density fingerprint so an empty vector does
// not hash to zero and vectors of different lengths never collide on the
// per-term sum alone.
const densityHashSeed = 0x9e3779b97f4a7c15

// mix64 is the splitmix64 finalizer: a cheap full-avalanche bijection on
// 64-bit words.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// densityTerm is the fingerprint contribution of one (segment, density)
// pair. Position and value are folded together before the avalanche, so
// swapping two segments' densities moves the hash even though terms are
// summed commutatively.
func densityTerm(segment int, bits uint64) uint64 {
	return mix64(uint64(segment+1)*0x9e3779b97f4a7c15 ^ bits)
}

// DensityHash returns a canonical fingerprint of the per-segment density
// vector (the feature values v.f). Hashing the IEEE-754 bits keeps the
// fingerprint exact: any density change — however small — yields a
// different hash, which is what content-addressed result caching requires.
//
// Unlike StructureHash (a sequential FNV over immutable geometry), the
// density fingerprint is a sum of per-segment mixed terms, so a sparse
// update can maintain it in O(changed segments) through UpdateDensityHash
// instead of rehashing the whole vector — the property the streaming
// delta path depends on.
func (n *Network) DensityHash() uint64 {
	h := mix64(densityHashSeed ^ uint64(len(n.Segments)))
	for i, s := range n.Segments {
		h += densityTerm(i, math.Float64bits(s.Density))
	}
	return h
}

// DensityVectorHash returns the fingerprint a network carrying exactly
// these per-segment densities would report from DensityHash, so callers
// that track a bare density vector (the temporal tracker, the streaming
// server) stay fingerprint-compatible with network-level hashing.
func DensityVectorHash(d []float64) uint64 {
	h := mix64(densityHashSeed ^ uint64(len(d)))
	for i, v := range d {
		h += densityTerm(i, math.Float64bits(v))
	}
	return h
}

// UpdateDensityHash returns the density fingerprint after segment's
// density changes from old to new, given the fingerprint h before the
// change. It is exact, not approximate: applying it per update yields
// bit-identically the DensityHash of the updated vector.
func UpdateDensityHash(h uint64, segment int, old, new float64) uint64 {
	return h - densityTerm(segment, math.Float64bits(old)) + densityTerm(segment, math.Float64bits(new))
}

// SegmentMidpoint returns the planar midpoint of segment i, used by
// spatially aware evaluation and rendering.
func (n *Network) SegmentMidpoint(i int) (x, y float64) {
	s := n.Segments[i]
	a, b := n.Intersections[s.From], n.Intersections[s.To]
	return (a.X + b.X) / 2, (a.Y + b.Y) / 2
}

// OutSegments returns, for every intersection, the segments departing from
// it — the turn options a vehicle has when it reaches the intersection.
func (n *Network) OutSegments() [][]int {
	out := make([][]int, len(n.Intersections))
	for i, s := range n.Segments {
		out[s.From] = append(out[s.From], i)
	}
	return out
}

// Stats summarizes a network for reporting (Table 1 of the paper).
type Stats struct {
	Intersections int
	Segments      int
	TotalLengthKM float64
	MeanDensity   float64
	MaxDensity    float64
}

// Stats computes summary statistics.
func (n *Network) Stats() Stats {
	st := Stats{Intersections: len(n.Intersections), Segments: len(n.Segments)}
	for _, s := range n.Segments {
		st.TotalLengthKM += s.Length / 1000
		st.MeanDensity += s.Density
		if s.Density > st.MaxDensity {
			st.MaxDensity = s.Density
		}
	}
	if len(n.Segments) > 0 {
		st.MeanDensity /= float64(len(n.Segments))
	}
	return st
}
