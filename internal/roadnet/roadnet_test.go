package roadnet

import (
	"bytes"
	"strings"
	"testing"
)

// crossNet builds a 4-way crossroads: center intersection 0 with arms to
// 1..4, one directed segment per arm heading inward.
func crossNet() *Network {
	n := &Network{
		Intersections: []Intersection{
			{ID: 0, X: 0, Y: 0},
			{ID: 1, X: 100, Y: 0},
			{ID: 2, X: -100, Y: 0},
			{ID: 3, X: 0, Y: 100},
			{ID: 4, X: 0, Y: -100},
		},
	}
	for i := 1; i <= 4; i++ {
		n.Segments = append(n.Segments, Segment{ID: i - 1, From: i, To: 0, Length: 100, Density: float64(i)})
	}
	return n
}

func TestValidateAcceptsGood(t *testing.T) {
	if err := crossNet().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadInputs(t *testing.T) {
	cases := map[string]func(*Network){
		"bad intersection id": func(n *Network) { n.Intersections[1].ID = 7 },
		"bad segment id":      func(n *Network) { n.Segments[0].ID = 9 },
		"endpoint range":      func(n *Network) { n.Segments[0].To = 99 },
		"loop segment":        func(n *Network) { n.Segments[0].To = n.Segments[0].From },
		"zero length":         func(n *Network) { n.Segments[0].Length = 0 },
		"negative density":    func(n *Network) { n.Segments[0].Density = -1 },
	}
	for name, corrupt := range cases {
		n := crossNet()
		corrupt(n)
		if err := n.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestDualGraphStarFormsClique(t *testing.T) {
	// Four segments meeting at one intersection must form a 4-clique
	// (Definition 2: star topology → clique).
	g, err := DualGraph(crossNet())
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 {
		t.Fatalf("dual has %d nodes, want 4", g.N())
	}
	if g.M() != 6 {
		t.Fatalf("dual has %d edges, want 6 (4-clique)", g.M())
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if !g.HasEdge(i, j) {
				t.Fatalf("clique edge (%d,%d) missing", i, j)
			}
		}
	}
}

func TestDualGraphLinearStaysLinear(t *testing.T) {
	// A chain of 3 segments stays a path in the dual.
	n := &Network{
		Intersections: []Intersection{{0, 0, 0}, {1, 100, 0}, {2, 200, 0}, {3, 300, 0}},
		Segments: []Segment{
			{ID: 0, From: 0, To: 1, Length: 100},
			{ID: 1, From: 1, To: 2, Length: 100},
			{ID: 2, From: 2, To: 3, Length: 100},
		},
	}
	g, err := DualGraph(n)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 || !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || g.HasEdge(0, 2) {
		t.Fatalf("chain dual wrong: %d edges", g.M())
	}
}

func TestDualGraphTwoWayPairSingleLink(t *testing.T) {
	// The two directions of a two-way road share both intersections but
	// must be connected by exactly one dual link.
	n := &Network{
		Intersections: []Intersection{{0, 0, 0}, {1, 100, 0}},
		Segments: []Segment{
			{ID: 0, From: 0, To: 1, Length: 100},
			{ID: 1, From: 1, To: 0, Length: 100},
		},
	}
	g, err := DualGraph(n)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Fatalf("two-way pair should yield exactly 1 dual edge, got %d", g.M())
	}
}

func TestDualGraphRejectsInvalid(t *testing.T) {
	n := crossNet()
	n.Segments[0].Length = -5
	if _, err := DualGraph(n); err == nil {
		t.Fatal("invalid network should be rejected")
	}
}

func TestDensitiesRoundTrip(t *testing.T) {
	n := crossNet()
	d := n.Densities()
	if d[2] != 3 {
		t.Fatalf("density[2] = %v, want 3", d[2])
	}
	d[2] = 99 // copy, not alias
	if n.Segments[2].Density == 99 {
		t.Fatal("Densities should return a copy")
	}
	if err := n.SetDensities([]float64{9, 8, 7, 6}); err != nil {
		t.Fatal(err)
	}
	if n.Segments[0].Density != 9 {
		t.Fatal("SetDensities did not apply")
	}
	if err := n.SetDensities([]float64{1}); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestStats(t *testing.T) {
	st := crossNet().Stats()
	if st.Intersections != 5 || st.Segments != 4 {
		t.Fatalf("stats counts wrong: %+v", st)
	}
	if st.MeanDensity != 2.5 || st.MaxDensity != 4 {
		t.Fatalf("density stats wrong: %+v", st)
	}
}

func TestSegmentMidpoint(t *testing.T) {
	n := crossNet()
	x, y := n.SegmentMidpoint(0) // from (100,0) to (0,0)
	if x != 50 || y != 0 {
		t.Fatalf("midpoint = (%v,%v), want (50,0)", x, y)
	}
}

func TestOutSegments(t *testing.T) {
	n := crossNet()
	out := n.OutSegments()
	if len(out[0]) != 0 {
		t.Fatal("center has no outgoing segments in crossNet")
	}
	if len(out[1]) != 1 || out[1][0] != 0 {
		t.Fatalf("out[1] = %v", out[1])
	}
}

func TestJSONRoundTrip(t *testing.T) {
	n := crossNet()
	var buf bytes.Buffer
	if err := n.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Segments) != 4 || back.Segments[3].Density != 4 {
		t.Fatalf("round trip lost data: %+v", back.Segments)
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"Segments":[{"ID":0,"From":0,"To":9,"Length":1}]}`)); err == nil {
		t.Fatal("invalid JSON network should be rejected")
	}
	if _, err := ReadJSON(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage should be rejected")
	}
}

func TestDensityCSVRoundTrip(t *testing.T) {
	n := crossNet()
	var buf bytes.Buffer
	if err := n.WriteDensitiesCSV(&buf); err != nil {
		t.Fatal(err)
	}
	n2 := crossNet()
	n2.SetDensities([]float64{0, 0, 0, 0})
	if err := n2.ReadDensitiesCSV(&buf); err != nil {
		t.Fatal(err)
	}
	for i := range n.Segments {
		if n2.Segments[i].Density != n.Segments[i].Density {
			t.Fatalf("CSV round trip mismatch at %d", i)
		}
	}
}

func TestDensityCSVErrors(t *testing.T) {
	n := crossNet()
	cases := map[string]string{
		"partial coverage": "segment_id,density\n0,1\n",
		"duplicate":        "0,1\n0,2\n1,1\n2,1\n3,1\n",
		"bad density":      "0,x\n",
		"out of range":     "9,1\n",
		"negative":         "0,-3\n1,1\n2,1\n3,1\n",
	}
	for name, csvText := range cases {
		if err := n.ReadDensitiesCSV(strings.NewReader(csvText)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
