package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"roadpart/internal/experiments"
	"roadpart/internal/obs"
	"roadpart/internal/resultcache"
)

// cachedServer builds a handler with a generous in-memory result cache.
func cachedServer(t *testing.T) http.Handler {
	t.Helper()
	return NewWith(Config{Workers: 1, CacheMaxBytes: 32 << 20})
}

// cacheEvents reads the process-wide resultcache event counter.
func cacheEvents(op, result string) uint64 {
	return obs.Default().Counter(resultcache.EventsFamily, "", "op", op, "result", result).Value()
}

// TestPartitionCacheHitByteIdentical is the tentpole's acceptance pin:
// a repeated identical request is answered from cache with a
// byte-identical body and X-Roadpart-Cache: hit.
func TestPartitionCacheHitByteIdentical(t *testing.T) {
	srv := cachedServer(t)
	req := PartitionRequest{Network: testNet(t), K: 3, Scheme: "ASG", Seed: 7}

	first := post(t, srv, "/v1/partition", req)
	if first.Code != http.StatusOK {
		t.Fatalf("first status = %d (body: %s)", first.Code, first.Body.String())
	}
	if got := first.Header().Get(CacheHeader); got != "miss" {
		t.Fatalf("first %s = %q, want miss", CacheHeader, got)
	}

	second := post(t, srv, "/v1/partition", req)
	if second.Code != http.StatusOK {
		t.Fatalf("second status = %d (body: %s)", second.Code, second.Body.String())
	}
	if got := second.Header().Get(CacheHeader); got != "hit" {
		t.Fatalf("second %s = %q, want hit", CacheHeader, got)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatalf("cached body differs from original:\n%s\nvs\n%s", first.Body.String(), second.Body.String())
	}
	if first.Header().Get("Content-Type") != second.Header().Get("Content-Type") {
		t.Fatal("content type drifted between miss and hit")
	}
}

// TestCacheDisabledByDefault: the zero Config must serve exactly as
// before the cache existed — no header, fresh compute every time.
func TestCacheDisabledByDefault(t *testing.T) {
	srv := NewWith(Config{Workers: 1})
	req := PartitionRequest{Network: testNet(t), K: 3, Scheme: "AG"}
	for i := 0; i < 2; i++ {
		rec := post(t, srv, "/v1/partition", req)
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d", rec.Code)
		}
		if got := rec.Header().Get(CacheHeader); got != "" {
			t.Fatalf("%s = %q with caching disabled, want absent", CacheHeader, got)
		}
	}
}

// TestCacheKeySensitivity: any input that changes the result must miss.
func TestCacheKeySensitivity(t *testing.T) {
	srv := cachedServer(t)
	base := PartitionRequest{Network: testNet(t), K: 3, Scheme: "ASG", Seed: 7}
	if rec := post(t, srv, "/v1/partition", base); rec.Code != http.StatusOK {
		t.Fatalf("warm-up failed: %d", rec.Code)
	}
	for name, req := range map[string]PartitionRequest{
		"seed":   {Network: testNet(t), K: 3, Scheme: "ASG", Seed: 8},
		"k":      {Network: testNet(t), K: 2, Scheme: "ASG", Seed: 7},
		"scheme": {Network: testNet(t), K: 3, Scheme: "AG", Seed: 7},
	} {
		rec := post(t, srv, "/v1/partition", req)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status = %d", name, rec.Code)
		}
		if got := rec.Header().Get(CacheHeader); got != "miss" {
			t.Fatalf("changed %s but got %s = %q, want miss", name, CacheHeader, got)
		}
	}
}

// TestCacheSharedAcrossWorkerCounts: worker count never changes output
// (the repo's determinism guarantee), so it must share cache entries —
// and the cached body proves the guarantee at the HTTP layer.
func TestCacheSharedAcrossWorkerCounts(t *testing.T) {
	srv := cachedServer(t)
	serial := post(t, srv, "/v1/partition", PartitionRequest{
		Network: testNet(t), K: 3, Scheme: "ASG", Seed: 7, Workers: 1,
	})
	parallel := post(t, srv, "/v1/partition", PartitionRequest{
		Network: testNet(t), K: 3, Scheme: "ASG", Seed: 7, Workers: 4,
	})
	if got := parallel.Header().Get(CacheHeader); got != "hit" {
		t.Fatalf("workers=4 after workers=1 got %s = %q, want hit", CacheHeader, got)
	}
	if !bytes.Equal(serial.Body.Bytes(), parallel.Body.Bytes()) {
		t.Fatal("worker count changed the served body")
	}
}

// TestSweepCachedMatchesFreshD1M1 is the satellite's byte-identity
// matrix: for D1/M1 × AG/ASG, the cached sweep body must equal both the
// body that populated it and a fresh compute on a cache-less server.
// (Sweep responses carry no wall-clock fields, so even cross-server
// comparison is exact.)
func TestSweepCachedMatchesFreshD1M1(t *testing.T) {
	if testing.Short() {
		t.Skip("four small-scale sweeps, twice each")
	}
	cached := cachedServer(t)
	fresh := NewWith(Config{Workers: 1})
	for _, dsName := range []string{"D1", "M1"} {
		ds, err := experiments.BuildDataset(dsName, experiments.ScaleSmall)
		if err != nil {
			t.Fatal(err)
		}
		for _, scheme := range []string{"AG", "ASG"} {
			req := SweepRequest{Network: ds.Net, KMin: 2, KMax: 6, Scheme: scheme, Seed: 7}
			miss := post(t, cached, "/v1/sweep", req)
			hit := post(t, cached, "/v1/sweep", req)
			plain := post(t, fresh, "/v1/sweep", req)
			if miss.Code != http.StatusOK || hit.Code != http.StatusOK || plain.Code != http.StatusOK {
				t.Fatalf("%s/%s: status %d/%d/%d", dsName, scheme, miss.Code, hit.Code, plain.Code)
			}
			if got := hit.Header().Get(CacheHeader); got != "hit" {
				t.Fatalf("%s/%s: second sweep %s = %q", dsName, scheme, CacheHeader, got)
			}
			if !bytes.Equal(miss.Body.Bytes(), hit.Body.Bytes()) {
				t.Fatalf("%s/%s: hit body differs from miss body", dsName, scheme)
			}
			if !bytes.Equal(hit.Body.Bytes(), plain.Body.Bytes()) {
				t.Fatalf("%s/%s: cached body differs from a cache-less server's", dsName, scheme)
			}
		}
	}
}

// TestConcurrentIdenticalRequestsSingleCompute drives N identical
// requests concurrently and asserts exactly one compute happened (one
// miss event); everyone else was a hit or coalesced onto the flight.
func TestConcurrentIdenticalRequestsSingleCompute(t *testing.T) {
	srv := cachedServer(t)
	req := PartitionRequest{Network: testNet(t), K: 3, Scheme: "ASG", Seed: 1234}
	missBefore := cacheEvents("partition", "miss")

	const n = 8
	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := post(t, srv, "/v1/partition", req)
			if rec.Code != http.StatusOK {
				t.Errorf("request %d: status %d", i, rec.Code)
				return
			}
			bodies[i] = rec.Body.Bytes()
		}(i)
	}
	wg.Wait()
	if got := cacheEvents("partition", "miss") - missBefore; got != 1 {
		t.Fatalf("%v computes for %d identical concurrent requests, want 1", got, n)
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("request %d saw a different body", i)
		}
	}
}

// TestCancelledRequestDoesNotPoisonServerCache: a client abandoning its
// request mid-compute must not leave an error cached — the next
// identical request computes fresh and succeeds.
func TestCancelledRequestDoesNotPoisonServerCache(t *testing.T) {
	srv := cachedServer(t)
	req := PartitionRequest{Network: slowNet(t), K: 4, Scheme: "AG", Seed: 99}

	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	httpReq := httptest.NewRequest(http.MethodPost, "/v1/partition", bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	go func() {
		time.Sleep(20 * time.Millisecond) // let the compute start
		cancel()
	}()
	srv.ServeHTTP(rec, httpReq)
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("cancelled request = %d, want %d (body: %s)", rec.Code, StatusClientClosedRequest, rec.Body.String())
	}

	retry := post(t, srv, "/v1/partition", req)
	if retry.Code != http.StatusOK {
		t.Fatalf("retry after cancellation = %d, want 200 (body: %s)", retry.Code, retry.Body.String())
	}
	if got := retry.Header().Get(CacheHeader); got != "miss" {
		t.Fatalf("retry %s = %q, want miss (the cancelled flight must not have cached anything)", CacheHeader, got)
	}
}

// TestCacheMetricsVisible: the hit/miss/eviction counter family and the
// byte/entry gauges must appear on /v1/metrics after cache traffic.
func TestCacheMetricsVisible(t *testing.T) {
	srv := cachedServer(t)
	req := PartitionRequest{Network: testNet(t), K: 3, Scheme: "AG", Seed: 55}
	post(t, srv, "/v1/partition", req)
	post(t, srv, "/v1/partition", req)

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", rec.Code)
	}
	text := rec.Body.String()
	for _, want := range []string{
		`roadpart_resultcache_events_total{op="partition",result="hit"}`,
		`roadpart_resultcache_events_total{op="partition",result="miss"}`,
		"roadpart_resultcache_bytes",
		"roadpart_resultcache_entries",
	} {
		if !bytes.Contains([]byte(text), []byte(want)) {
			t.Errorf("metrics exposition lacks %s", want)
		}
	}
}

// TestCacheWarmsAcrossRestart: a second server over the same -cache-dir
// must answer the first server's request as a hit without recomputing.
func TestCacheWarmsAcrossRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	req := PartitionRequest{Network: testNet(t), K: 3, Scheme: "ASG", Seed: 7}

	first, err := NewChecked(Config{Workers: 1, CacheMaxBytes: 32 << 20, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	cold := post(t, first, "/v1/partition", req)
	if cold.Code != http.StatusOK {
		t.Fatalf("cold status = %d", cold.Code)
	}

	second, err := NewChecked(Config{Workers: 1, CacheMaxBytes: 32 << 20, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	warm := post(t, second, "/v1/partition", req)
	if warm.Code != http.StatusOK {
		t.Fatalf("warm status = %d", warm.Code)
	}
	if got := warm.Header().Get(CacheHeader); got != "hit" {
		t.Fatalf("restarted server %s = %q, want hit from disk snapshot", CacheHeader, got)
	}
	if !bytes.Equal(cold.Body.Bytes(), warm.Body.Bytes()) {
		t.Fatal("warmed body differs from the original compute")
	}
}

// TestCacheHitSkipsAdmission: with zero compute capacity, a warmed
// entry still serves — the cache sits in front of admission control.
func TestCacheHitSkipsAdmission(t *testing.T) {
	s, err := newService(Config{Workers: 1, CacheMaxBytes: 32 << 20, MaxInFlight: 1, MaxQueue: 0, QueueWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	h := s.handler()
	req := PartitionRequest{Network: testNet(t), K: 3, Scheme: "AG", Seed: 7}
	if rec := post(t, h, "/v1/partition", req); rec.Code != http.StatusOK {
		t.Fatalf("warm-up status = %d", rec.Code)
	}

	s.slots <- struct{}{} // saturate compute capacity
	hit := post(t, h, "/v1/partition", req)
	if hit.Code != http.StatusOK {
		t.Fatalf("cached request under saturation = %d, want 200 (body: %s)", hit.Code, hit.Body.String())
	}
	if got := hit.Header().Get(CacheHeader); got != "hit" {
		t.Fatalf("%s = %q, want hit", CacheHeader, got)
	}
	// An uncached request is still shed.
	miss := post(t, h, "/v1/partition", PartitionRequest{Network: testNet(t), K: 4, Scheme: "AG", Seed: 8})
	if miss.Code != http.StatusTooManyRequests {
		t.Fatalf("uncached request under saturation = %d, want 429", miss.Code)
	}
	if got := miss.Header().Get(CacheHeader); got != "" {
		t.Fatalf("shed response carries %s = %q, want absent", CacheHeader, got)
	}
}

// TestPartitionResponseStillDecodes guards the response schema the CLI
// and docs promise, including the new k_prime field.
func TestPartitionResponseStillDecodes(t *testing.T) {
	srv := cachedServer(t)
	rec := post(t, srv, "/v1/partition", PartitionRequest{Network: testNet(t), K: 3, Scheme: "ASG"})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var resp PartitionResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.K != 3 || len(resp.Assign) == 0 || resp.KPrime < resp.K {
		t.Fatalf("response = k=%d k'=%d assign=%d", resp.K, resp.KPrime, len(resp.Assign))
	}
	if resp.Elapsed == "" {
		t.Fatal("elapsed missing")
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["k_prime"]; !ok {
		t.Fatalf("body lacks k_prime: %s", rec.Body.String())
	}
}
