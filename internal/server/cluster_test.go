package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"roadpart/internal/jobs"
	"roadpart/internal/obs"
	"roadpart/internal/peers"
)

// This file is the multi-daemon integration suite (`make cluster-smoke`
// runs it under -race): it spins N real in-process daemons — separate
// Service instances behind separate TCP listeners, talking to each other
// over actual HTTP — and pins the docs/DISTRIBUTED.md contract: key
// affinity, byte-identical responses whatever the entry shard, peer-hit
// cache semantics, fingerprint-routed job polls, unbuffered SSE through
// the forwarding hop, and local-compute failover when an owner dies.

type clusterShard struct {
	url string
	hs  *http.Server
	sv  *Service
}

type cluster struct {
	t      *testing.T
	urls   []string
	shards []*clusterShard
	ring   *peers.Ring // the membership every shard was configured with
}

func startClusterShard(t *testing.T, ln net.Listener, self string, urls []string) *clusterShard {
	t.Helper()
	sv, err := NewService(Config{
		Self:          self,
		Peers:         urls,
		CacheMaxBytes: 32 << 20,
		PeerTimeout:   10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	sh := &clusterShard{url: self, hs: &http.Server{Handler: sv}, sv: sv}
	go func() { _ = sh.hs.Serve(ln) }()
	t.Cleanup(func() {
		_ = sh.hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = sh.sv.Close(ctx)
	})
	return sh
}

// startCluster binds n loopback listeners first (so every shard knows
// the full membership before any serves), then starts one daemon per
// listener with Self = its own URL and Peers = all URLs — exactly what
// `roadpartd -self ... -peers ...` does per process.
func startCluster(t *testing.T, n int) *cluster {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	c := &cluster{t: t, urls: urls}
	for i := range lns {
		c.shards = append(c.shards, startClusterShard(t, lns[i], urls[i], urls))
	}
	ring, err := peers.NewRing(urls[0], urls)
	if err != nil {
		t.Fatal(err)
	}
	c.ring = ring
	return c
}

// do sends one request into the cluster through shard via, over real
// HTTP, and returns the response with its fully read body.
func (c *cluster) do(via int, method, path string, body []byte) (*http.Response, []byte) {
	c.t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.urls[via]+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatalf("%s %s via shard %d: %v", method, path, via, err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		c.t.Fatal(err)
	}
	return resp, b
}

func marshalBody(t *testing.T, v interface{}) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func peerErrCount(peer string) uint64 {
	return obs.Default().Counter(peers.EventsFamily, "", "peer", peer, "result", "error").Value()
}

// stripTiming drops the wall-clock fields (timing, elapsed) from a
// partition body so two independent computes of the same fingerprint
// can be compared: the partitioning payload is deterministic, the
// stopwatch around it is not.
func stripTiming(t *testing.T, body []byte) []byte {
	t.Helper()
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	delete(doc, "timing")
	delete(doc, "elapsed")
	out, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestClusterByteIdentityAndRemoteHit is the acceptance criterion in
// one test: an identical request entering any of 3 shards returns a
// byte-identical body served by the same owning shard, and a request
// entering a non-owner after the owner has cached is a remote-hit — no
// recompute, no per-shard cold cache.
func TestClusterByteIdentityAndRemoteHit(t *testing.T) {
	c := startCluster(t, 3)
	nw := testNet(t)
	body := marshalBody(t, PartitionRequest{Network: nw, Scheme: "AG", K: 3, Seed: 7})

	resp0, b0 := c.do(0, http.MethodPost, "/v1/partition", body)
	if resp0.StatusCode != http.StatusOK {
		t.Fatalf("first request = %d body=%s", resp0.StatusCode, b0)
	}
	owner := resp0.Header.Get(ShardHeader)
	if owner == "" {
		t.Fatal("no " + ShardHeader + " on a cluster response")
	}
	wantState := "miss"
	if owner != c.urls[0] {
		wantState = "remote-miss"
	}
	if got := resp0.Header.Get(CacheHeader); got != wantState {
		t.Fatalf("first request %s = %q, want %q (owner %s, entry %s)",
			CacheHeader, got, wantState, owner, c.urls[0])
	}

	remoteHits := 0
	for via := 1; via < 3; via++ {
		resp, b := c.do(via, http.MethodPost, "/v1/partition", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("via shard %d: status %d", via, resp.StatusCode)
		}
		if !bytes.Equal(b, b0) {
			t.Fatalf("body via shard %d differs from shard 0's", via)
		}
		if got := resp.Header.Get(ShardHeader); got != owner {
			t.Fatalf("via shard %d served by %s; the fingerprint's owner is %s", via, got, owner)
		}
		want := "hit"
		if owner != c.urls[via] {
			want = "remote-hit"
			remoteHits++
		}
		if got := resp.Header.Get(CacheHeader); got != want {
			t.Fatalf("via shard %d: %s = %q, want %q", via, CacheHeader, got, want)
		}
	}
	if remoteHits == 0 {
		t.Fatal("all three entry shards were the owner — impossible on a 3-ring")
	}
}

// TestClusterRemapBound pins the rendezvous bound on the cluster's own
// membership: dropping one of the 3 live daemons' addresses remaps
// fewer than 50% of a 1k-key sample (expected: the departed shard's
// ~1/3 share), so a deploy that loses a shard reheats a third of the
// cache, not all of it.
func TestClusterRemapBound(t *testing.T) {
	c := startCluster(t, 3)
	before := c.ring
	after, err := peers.NewRing(c.urls[0], c.urls[:2])
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for key := uint64(0); key < 1000; key++ {
		if before.Owner(key) != after.Owner(key) {
			moved++
		}
	}
	if moved == 0 || moved >= 500 {
		t.Fatalf("%d of 1000 keys remapped when 1 of 3 shards left; want (0, 500)", moved)
	}
}

// TestClusterJobSubmitHerePollThere is the Location-header bugfix
// regression: a job submitted through shard A must be pollable through
// shard B — GET/DELETE/result route by the fingerprint embedded in the
// job id — and the result body must match the synchronous endpoint's
// bytes whatever shard serves either.
func TestClusterJobSubmitHerePollThere(t *testing.T) {
	c := startCluster(t, 3)
	nw := testNet(t)
	preq := PartitionRequest{Network: nw, Scheme: "AG", K: 3, Seed: 11}
	body := marshalBody(t, JobSubmitRequest{Op: "partition", Partition: &preq})

	resp, b := c.do(0, http.MethodPost, "/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d body=%s", resp.StatusCode, b)
	}
	owner := resp.Header.Get(ShardHeader)
	var sub JobSubmitResponse
	if err := json.Unmarshal(b, &sub); err != nil {
		t.Fatal(err)
	}
	id := sub.Job.ID
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+id {
		t.Fatalf("Location = %q, want %q", loc, "/v1/jobs/"+id)
	}
	if _, ok := jobs.FingerprintFromID(id); !ok {
		t.Fatalf("job id %q does not embed a routable fingerprint", id)
	}

	// Poll through the two shards the submission did NOT enter by.
	deadline := time.Now().Add(20 * time.Second)
	for via := 1; ; via = 1 + via%2 {
		resp, b := c.do(via, http.MethodGet, "/v1/jobs/"+id, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll via shard %d = %d body=%s", via, resp.StatusCode, b)
		}
		if got := resp.Header.Get(ShardHeader); got != owner {
			t.Fatalf("poll served by %s; job lives on %s", got, owner)
		}
		var st JobStatusResponse
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatal(err)
		}
		if st.Job.State == jobs.StateDone {
			break
		}
		if st.Job.State == jobs.StateFailed || st.Job.State == jobs.StateCancelled {
			t.Fatalf("job ended %s: %s", st.Job.State, b)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %s after 20s", st.Job.State)
		}
		time.Sleep(20 * time.Millisecond)
	}

	_, result := c.do(2, http.MethodGet, "/v1/jobs/"+id+"/result", nil)
	respS, syncBody := c.do(1, http.MethodPost, "/v1/partition", marshalBody(t, preq))
	if respS.StatusCode != http.StatusOK {
		t.Fatalf("sync compare request = %d", respS.StatusCode)
	}
	if !bytes.Equal(result, syncBody) {
		t.Fatal("job result bytes differ from the synchronous endpoint's")
	}
}

// TestClusterFailoverAndRejoin kills the shard that owns a fingerprint
// and asserts the receiving shard degrades to computing locally —
// correct body, counted transport failure, availability intact — then
// restarts the owner at the same address and asserts affinity recovers.
func TestClusterFailoverAndRejoin(t *testing.T) {
	c := startCluster(t, 3)
	nw := testNet(t)

	// Find a request shard 0 does not own, so entry 0 must forward.
	var body, b0 []byte
	var owner string
	for seed := uint64(1); ; seed++ {
		body = marshalBody(t, PartitionRequest{Network: nw, Scheme: "AG", K: 3, Seed: seed})
		resp, b := c.do(0, http.MethodPost, "/v1/partition", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("probe seed %d = %d", seed, resp.StatusCode)
		}
		if owner = resp.Header.Get(ShardHeader); owner != c.urls[0] {
			b0 = b
			break
		}
		if seed > 64 {
			t.Fatal("no remotely-owned fingerprint in 64 seeds")
		}
	}
	ownerIdx := -1
	for i, u := range c.urls {
		if u == owner {
			ownerIdx = i
		}
	}
	if ownerIdx < 0 {
		t.Fatalf("owner %s is not a cluster member", owner)
	}

	errsBefore := peerErrCount(owner)
	_ = c.shards[ownerIdx].hs.Close() // kill the owner

	resp, b := c.do(0, http.MethodPost, "/v1/partition", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dead owner took availability down: %d", resp.StatusCode)
	}
	if got := resp.Header.Get(ShardHeader); got != c.urls[0] {
		t.Fatalf("fallback served by %s, want local shard %s", got, c.urls[0])
	}
	if got := resp.Header.Get(CacheHeader); got != "miss" {
		t.Fatalf("fallback %s = %q, want miss (local compute)", CacheHeader, got)
	}
	if !bytes.Equal(stripTiming(t, b), stripTiming(t, b0)) {
		t.Fatal("degraded local compute disagrees with the owner's partition")
	}
	if peerErrCount(owner) <= errsBefore {
		t.Fatalf("transport failure to %s not counted in %s", owner, peers.EventsFamily)
	}

	// Rejoin: a fresh daemon at the same address (same ring position).
	ln, err := net.Listen("tcp", strings.TrimPrefix(owner, "http://"))
	if err != nil {
		t.Fatalf("rebinding the owner's address: %v", err)
	}
	c.shards[ownerIdx] = startClusterShard(t, ln, owner, c.urls)
	resp2, b2 := c.do(0, http.MethodPost, "/v1/partition", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-rejoin request = %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get(ShardHeader); got != owner {
		t.Fatalf("affinity did not recover: served by %s, want %s", got, owner)
	}
	if !bytes.Equal(stripTiming(t, b2), stripTiming(t, b0)) {
		t.Fatal("rejoined owner disagrees with its pre-crash partition")
	}
}

// TestClusterWatchViaNonOwner is the SSE bugfix regression: a
// subscriber connected to a non-owner shard must receive the home
// shard's keep-alives and repartition events promptly — the forwarding
// hop relays flush-per-chunk, it does not buffer.
func TestClusterWatchViaNonOwner(t *testing.T) {
	oldBeat := watchHeartbeat
	watchHeartbeat = 50 * time.Millisecond
	defer func() { watchHeartbeat = oldBeat }()

	c := startCluster(t, 3)
	home := c.ring.OwnerString(streamRouteKey)
	entry := -1
	for i, u := range c.urls {
		if u != home {
			entry = i
			break
		}
	}

	req, err := http.NewRequest(http.MethodGet, c.urls[entry]+"/v1/watch", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch via non-owner = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(ShardHeader); got != home {
		t.Fatalf("watch served by %s; stream home is %s", got, home)
	}

	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 256<<10), 256<<10)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	waitLine := func(prefix string, d time.Duration) {
		t.Helper()
		deadline := time.After(d)
		for {
			select {
			case ln, ok := <-lines:
				if !ok {
					t.Fatalf("stream closed before %q arrived", prefix)
				}
				if strings.HasPrefix(ln, prefix) {
					return
				}
			case <-deadline:
				t.Fatalf("no %q within %v — the hop is buffering", prefix, d)
			}
		}
	}

	waitLine(": subscribed", 5*time.Second)
	waitLine(": keep-alive", 5*time.Second) // heartbeats cross the hop

	// Establishing the stream through the same non-owner shard must land
	// on the home tracker and fan its event back out through the hop.
	nw := testNet(t)
	est := marshalBody(t, DensitiesRequest{
		Network: nw, Scheme: "ASG", K: 4, Seed: 9, Densities: nw.Densities(),
	})
	respD, bD := c.do(entry, http.MethodPost, "/v1/densities", est)
	if respD.StatusCode != http.StatusOK {
		t.Fatalf("densities via non-owner = %d body=%s", respD.StatusCode, bD)
	}
	if got := respD.Header.Get(ShardHeader); got != home {
		t.Fatalf("densities step served by %s, want stream home %s", got, home)
	}
	waitLine("event: repartition", 5*time.Second)
	waitLine("data: ", 5*time.Second)
}

// TestClusterRetryAfterVerbatim is the shed-hint bugfix regression: a
// proxied 429 must carry the origin shard's Retry-After untouched, not
// one re-derived from the (idle) forwarding shard's queue.
func TestClusterRetryAfterVerbatim(t *testing.T) {
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(ForwardedHeader) == "" {
			t.Errorf("proxied request lacks %s", ForwardedHeader)
		}
		w.Header().Set("Retry-After", "37")
		w.Header().Set(ShardHeader, "stub")
		http.Error(w, "busy", http.StatusTooManyRequests)
	}))
	defer stub.Close()

	self := "http://127.0.0.1:9" // never dialed: stub-owned keys forward, self-owned compute locally
	sv, err := NewService(Config{Self: self, Peers: []string{stub.URL}, CacheMaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	nw := testNet(t)
	for seed := uint64(1); seed <= 64; seed++ {
		rec := post(t, sv, "/v1/partition", PartitionRequest{Network: nw, Scheme: "AG", K: 3, Seed: seed})
		switch rec.Code {
		case http.StatusTooManyRequests:
			if got := rec.Header().Get("Retry-After"); got != "37" {
				t.Fatalf("Retry-After = %q, want the origin shard's %q verbatim", got, "37")
			}
			if got := rec.Header().Get(ShardHeader); got != "stub" {
				t.Fatalf("%s = %q, want the origin shard's", ShardHeader, got)
			}
			return
		case http.StatusOK: // self-owned fingerprint, computed locally
		default:
			t.Fatalf("seed %d: status %d body=%s", seed, rec.Code, rec.Body.String())
		}
	}
	t.Fatal("no fingerprint hashed to the stub peer in 64 seeds")
}

// TestClusterSingleHopGuard pins the loop guard: a request that already
// carries X-Roadpart-Forwarded is computed locally even when this
// shard's ring says another peer owns it.
func TestClusterSingleHopGuard(t *testing.T) {
	forwarded := 0
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		forwarded++
		http.Error(w, "busy", http.StatusTooManyRequests)
	}))
	defer stub.Close()
	self := "http://127.0.0.1:9"
	sv, err := NewService(Config{Self: self, Peers: []string{stub.URL}, CacheMaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	nw := testNet(t)

	// Find a stub-owned request, then replay it marked as already
	// forwarded: it must be served here, without another hop.
	for seed := uint64(1); seed <= 64; seed++ {
		doc := PartitionRequest{Network: nw, Scheme: "AG", K: 3, Seed: seed}
		rec := post(t, sv, "/v1/partition", doc)
		if rec.Code != http.StatusTooManyRequests {
			continue
		}
		hops := forwarded
		req := httptest.NewRequest(http.MethodPost, "/v1/partition", bytes.NewReader(marshalBody(t, doc)))
		req.Header.Set(ForwardedHeader, "http://elsewhere:1")
		rec2 := httptest.NewRecorder()
		sv.ServeHTTP(rec2, req)
		if rec2.Code != http.StatusOK {
			t.Fatalf("forwarded hop = %d, want local compute", rec2.Code)
		}
		if forwarded != hops {
			t.Fatal("a forwarded request was forwarded again — loop guard broken")
		}
		if got := rec2.Header().Get(ShardHeader); got != self {
			t.Fatalf("%s = %q, want %q (served locally)", ShardHeader, got, self)
		}
		if got := rec2.Header().Get(CacheHeader); got != "miss" {
			t.Fatalf("%s = %q, want miss", CacheHeader, got)
		}
		return
	}
	t.Fatal("no fingerprint hashed to the stub peer in 64 seeds")
}

// TestLatEWMAConcurrent pins (under -race) that the Retry-After latency
// EWMA tolerates concurrent observe/seconds — the audit the peer-hint
// bugfix asked for.
func TestLatEWMAConcurrent(t *testing.T) {
	var l latEWMA
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				if g%2 == 0 {
					l.observe(time.Duration(i) * time.Microsecond)
				} else {
					_ = l.seconds()
				}
			}
		}(g)
	}
	wg.Wait()
	if l.seconds() < 0 {
		t.Fatal("EWMA went negative")
	}
}
