package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"time"

	"roadpart/internal/jobs"
	"roadpart/internal/peers"
)

// This file is the serving tier's forwarding layer (docs/DISTRIBUTED.md):
// when the daemon runs with peers, every content-addressed request is
// routed to the shard whose rendezvous position owns its FNV-64
// fingerprint, so each (structure, density, config) lives in exactly
// one shard's cache and hit rates survive scale-out. Clients stay dumb —
// any shard answers any request correctly; ownership decides where the
// compute and the cache entry live, not who may be asked.
//
// The header contract:
//
//   - X-Roadpart-Forwarded (request): set to the forwarding shard's
//     address on the proxied hop. Its presence is the single-hop guard:
//     a shard that receives it never forwards again, even if its own
//     ring disagrees about ownership, so a misconfigured peer set
//     degrades to one extra hop instead of a forwarding loop.
//   - X-Roadpart-Shard (response): the shard that actually served the
//     body (set by the computing shard, passed through the hop).
//   - X-Roadpart-Cache (response): hit|miss when served locally; the
//     hop rewrites the owner's value to remote-hit|remote-miss so
//     clients and tests can see both where the body came from and
//     whether the owner recomputed.
//
// Failure policy: a transport error on the hop (owner unreachable,
// bounded peer timeout) falls back to computing locally for
// content-addressed work — a dead peer degrades the hit rate, never
// availability. Stateful resources cannot fall back: the density
// stream lives on one shard (the ring owner of streamRouteKey) and job
// state lives on the job's owner, so those routes answer 502 when the
// owner is unreachable.

const (
	// ForwardedHeader marks the proxied hop and carries the forwarding
	// shard's address. Single-hop guard: its presence disables further
	// forwarding.
	ForwardedHeader = "X-Roadpart-Forwarded"
	// ShardHeader reports which shard served the response body.
	ShardHeader = "X-Roadpart-Shard"
	// streamRouteKey names the cluster's single density stream; its ring
	// owner (Ring.OwnerString) is the stream's home shard, where
	// POST /v1/densities state and the /v1/watch hub live.
	streamRouteKey = "/v1/densities"
)

// forwardTarget resolves where a fingerprint-keyed request must run:
// the owning peer's address, or "" when it should be served locally
// (peering off, already-forwarded hop, or self-owned key).
func (s *service) forwardTarget(r *http.Request, sum uint64) string {
	if s.ring == nil || r.Header.Get(ForwardedHeader) != "" {
		return ""
	}
	if owner := s.ring.Owner(sum); owner != s.ring.Self() {
		return owner
	}
	return ""
}

// streamHome resolves the density stream's home shard the same way.
func (s *service) streamHome(r *http.Request) string {
	if s.ring == nil || r.Header.Get(ForwardedHeader) != "" {
		return ""
	}
	if home := s.ring.OwnerString(streamRouteKey); home != s.ring.Self() {
		return home
	}
	return ""
}

// markShard stamps locally served responses with this shard's identity
// so clients (and the integration tests) can observe which shard
// actually computed. No-op outside peer mode.
func (s *service) markShard(w http.ResponseWriter) {
	if s.ring != nil {
		w.Header().Set(ShardHeader, s.ring.Self())
	}
}

// forwardKeyed proxies a fingerprint-keyed request to its owning shard.
// It reports true when a response was written; false means the caller
// must serve locally — either the key is locally owned or the owner was
// unreachable (counted by the peer client) and local compute is the
// availability fallback.
func (s *service) forwardKeyed(w http.ResponseWriter, r *http.Request, sum uint64, body []byte) bool {
	target := s.forwardTarget(r, sum)
	if target == "" {
		return false
	}
	return s.proxy(w, r, target, body)
}

// proxy performs one forwarded exchange and relays the owner's response
// verbatim apart from the documented header rewrites. Returns false on
// a transport failure so the caller can fall back; once the owner has
// answered, its response — success or failure — is the response, so a
// proxied 429/503 carries the origin shard's Retry-After untouched
// rather than a hint re-derived from this shard's (idle) queue.
func (s *service) proxy(w http.ResponseWriter, r *http.Request, target string, body []byte) bool {
	var rd io.Reader = http.NoBody
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, target+r.URL.Path, rd)
	if err != nil {
		return false
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set(ForwardedHeader, s.ring.Self())
	resp, err := s.peerClient.Do(target, req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	relayHeaders(w, resp)
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	return true
}

// relayHeaders copies the owner's response headers onto the hop,
// rewriting the cache state to its remote-* form. Retry-After crosses
// verbatim: the origin shard derived it from its own backlog and
// latency EWMA, which is the queue the retrying client will actually
// join.
func relayHeaders(w http.ResponseWriter, resp *http.Response) {
	for _, h := range []string{"Content-Type", "Retry-After", "Location", ShardHeader} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	switch resp.Header.Get(CacheHeader) {
	case "hit":
		w.Header().Set(CacheHeader, "remote-hit")
	case "miss":
		w.Header().Set(CacheHeader, "remote-miss")
	case "":
	default:
		// Defensive: an unexpected value (a double hop cannot happen
		// under the single-hop guard) passes through unmodified.
		w.Header().Set(CacheHeader, resp.Header.Get(CacheHeader))
	}
}

// proxyStream forwards an SSE subscription to the stream's home shard
// and relays the event stream unbuffered: every chunk read from the
// owner is written and flushed immediately, so repartition events and
// keep-alive comments reach the subscriber with one hop of latency,
// not when some buffer fills. The subscriber's disconnect cancels the
// upstream request through the shared context.
func (s *service) proxyStream(w http.ResponseWriter, r *http.Request, target string) {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, target+r.URL.Path, http.NoBody)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	req.Header.Set(ForwardedHeader, s.ring.Self())
	resp, err := s.peerClient.DoStream(target, req)
	if err != nil {
		writeErr(w, http.StatusBadGateway,
			fmt.Errorf("density-stream home %s unreachable: %w", target, err))
		return
	}
	defer resp.Body.Close()
	relayHeaders(w, resp)
	if v := resp.Header.Get("Cache-Control"); v != "" {
		w.Header().Set("Cache-Control", v)
	}
	w.WriteHeader(resp.StatusCode)
	// ResponseController reaches the Flusher through the instrumentation
	// middleware's Unwrap, exactly as the local SSE handler does.
	rc := http.NewResponseController(w)
	buf := make([]byte, 4<<10)
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if rc.Flush() != nil {
				return
			}
		}
		if rerr != nil {
			return
		}
	}
}

// forwardJobItem routes a poll/cancel/result request for a job this
// shard does not know to the shard that owns the job's fingerprint —
// jobs are submitted to their fingerprint's owner, so that is where the
// state machine lives. Local knowledge wins first (a job accepted here
// as an unreachable-owner fallback stays pollable here); an unreachable
// owner is 502, not 404, because "not found" would tell the client to
// stop polling a job that still exists.
func (s *service) forwardJobItem(w http.ResponseWriter, r *http.Request, id string) bool {
	if s.ring == nil || r.Header.Get(ForwardedHeader) != "" {
		return false
	}
	if _, err := s.jobs.Get(id); err == nil {
		return false // known locally; serve locally
	}
	sum, ok := jobs.FingerprintFromID(id)
	if !ok {
		return false // malformed id; local handling produces the 404
	}
	target := s.forwardTarget(r, sum)
	if target == "" {
		return false
	}
	if !s.proxy(w, r, target, nil) {
		writeErr(w, http.StatusBadGateway,
			fmt.Errorf("job %s lives on shard %s, which is unreachable", id, target))
	}
	return true
}

// newPeering builds the ring and transport from the config, or returns
// (nil, nil, nil) when peering is off. PeerTimeout <= 0 defaults to the
// request deadline cap plus headroom: the hop must outlive the owner's
// compute budget or every long partition would "fail over" to a
// duplicate local compute at the deadline.
func newPeering(cfg Config, maxTimeout func() time.Duration) (*peers.Ring, *peers.Client, error) {
	if cfg.Self == "" && len(cfg.Peers) == 0 {
		return nil, nil, nil
	}
	ring, err := peers.NewRing(cfg.Self, cfg.Peers)
	if err != nil {
		return nil, nil, err
	}
	timeout := cfg.PeerTimeout
	if timeout <= 0 {
		timeout = maxTimeout() + 30*time.Second
	}
	return ring, peers.NewClient(timeout), nil
}
