package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"roadpart/internal/obs"
)

// This file is the service's failure-containment layer: panic recovery,
// admission control and per-request deadlines. The intent is that a
// saturated or misbehaving client degrades the service to fast, explicit
// error responses (408/429/499/503, each with its own counter) rather
// than to unbounded queueing, wedged goroutines or a crashed process.

// StatusClientClosedRequest reports that the client disconnected before
// the response was ready (nginx's conventional 499). The response itself
// is unreceivable; the status exists for the request log and metrics.
const StatusClientClosedRequest = 499

const (
	// defaultMaxTimeout caps client-supplied timeout_ms when Config
	// leaves MaxTimeout zero.
	defaultMaxTimeout = 10 * time.Minute
	// defaultQueueWait bounds a queued request's wait for an in-flight
	// slot when Config leaves QueueWait zero.
	defaultQueueWait = 5 * time.Second
)

// Failure-path accounting. Shed requests never reach a handler, so they
// appear only here (plus the generic per-status request counter).
var (
	shedHelp        = "Requests shed by the admission controller, by reason."
	reqShedFull     = obs.Default().Counter("roadpart_requests_shed_total", shedHelp, "reason", "queue_full")
	reqShedTimeout  = obs.Default().Counter("roadpart_requests_shed_total", shedHelp, "reason", "queue_timeout")
	reqCancelled    = obs.Default().Counter("roadpart_requests_cancelled_total", "Compute requests abandoned because the client disconnected.")
	reqTimedOut     = obs.Default().Counter("roadpart_requests_timed_out_total", "Compute requests stopped by their deadline (server default or timeout_ms).")
	panicsRecovered = obs.Default().Counter("roadpart_panics_recovered_total", "Handler panics converted to 500 responses.")
	inflightGauge   = obs.Default().Gauge("roadpart_inflight_requests", "Admission-controlled requests currently computing.")
	queueGauge      = obs.Default().Gauge("roadpart_queue_depth", "Admission-controlled requests waiting for an in-flight slot.")
)

// recoverPanics converts a handler panic into a 500 response and a
// counter increment instead of killing the connection's goroutine with a
// stack trace per request. http.ErrAbortHandler is re-raised: it is the
// sanctioned way to abort a response and must keep its net/http meaning.
func recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if v == http.ErrAbortHandler {
				panic(v)
			}
			panicsRecovered.Inc()
			writeErr(w, http.StatusInternalServerError, fmt.Errorf("internal error: %v", v))
		}()
		next.ServeHTTP(w, r)
	})
}

func (s *service) queueWait() time.Duration {
	if s.cfg.QueueWait > 0 {
		return s.cfg.QueueWait
	}
	return defaultQueueWait
}

func (s *service) maxTimeout() time.Duration {
	if s.cfg.MaxTimeout > 0 {
		return s.cfg.MaxTimeout
	}
	return defaultMaxTimeout
}

// latEWMA tracks observed compute latency as an exponentially weighted
// moving average (α = 0.2, so roughly the last five computes dominate).
// It feeds the dynamic Retry-After hints: a server doing minutes-long
// metro partitions should tell shed clients to come back later than one
// doing millisecond toy networks.
type latEWMA struct {
	mu   sync.Mutex
	v    float64 // seconds
	seen bool
}

func (l *latEWMA) observe(d time.Duration) {
	sec := d.Seconds()
	l.mu.Lock()
	if l.seen {
		l.v = 0.8*l.v + 0.2*sec
	} else {
		l.v = sec
		l.seen = true
	}
	l.mu.Unlock()
}

// seconds returns the current average, 0 before any observation.
func (l *latEWMA) seconds() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.v
}

// retryAfterSecs derives a Retry-After hint from the live backlog:
// with latency history, the expected wait is one average compute per
// backlog position spread over the slots draining it ("my spot in
// line"); without history the caller's static fallback applies. The
// result is clamped to [1, 600] — at least a second so clients cannot
// busy-loop on a zero, at most ten minutes so a latency spike cannot
// push clients away for hours. Pure function; the bounds are pinned in
// harden_test.go.
func retryAfterSecs(depth, slots int, latSecs, fallbackSecs float64) int {
	if slots < 1 {
		slots = 1
	}
	secs := fallbackSecs
	if latSecs > 0 {
		secs = latSecs * float64(depth+1) / float64(slots)
	}
	n := int(math.Ceil(secs))
	if n < 1 {
		n = 1
	}
	if n > 600 {
		n = 600
	}
	return n
}

// shed rejects a request with a Retry-After hint derived from the
// admission queue's depth and the observed compute latency; before any
// compute has been observed the hint falls back to the queue wait (by
// then at least one queued request has either started or been shed, so
// capacity may exist again).
func (s *service) shed(w http.ResponseWriter, status int, err error) {
	secs := retryAfterSecs(int(s.queued.Load()), s.cfg.MaxInFlight, s.lat.seconds(), s.queueWait().Seconds())
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeErr(w, status, err)
}

// admitError is an admission rejection carrying the HTTP status it maps
// to (429 queue-full, 503 queue-timeout). It is deliberately not a
// context error: the result cache treats it as an ordinary compute
// failure — never cached, propagated to coalesced waiters — while the
// ctx-done-while-queued path below returns a genuine context-wrapped
// error so cancelled flights keep their non-poisoning semantics.
type admitError struct {
	status int
	err    error
}

func (e *admitError) Error() string { return e.err.Error() }
func (e *admitError) Unwrap() error { return e.err }

// acquire claims an in-flight compute slot under the admission policy:
// at most MaxInFlight requests compute concurrently, at most MaxQueue
// more wait (up to QueueWait) for a slot, and everything beyond that is
// rejected — 429 when the queue is full, 503 when the wait expires, and
// the caller's own context error when the request dies while queued.
// MaxInFlight <= 0 disables the controller entirely (the zero Config
// serves exactly as before admission control existed). The returned
// release is idempotent and must be called when the compute finishes.
//
// Handlers call acquire inside the compute closure, after the result
// cache has missed: a cache hit or a coalesced wait on an identical
// in-flight request never consumes a slot, and the cheap endpoints
// (health, metrics, stats, render) never call it at all, so the service
// stays observable while saturated.
func (s *service) acquire(ctx context.Context) (release func(), err error) {
	if s.slots == nil {
		return func() {}, nil
	}
	select {
	case s.slots <- struct{}{}:
	default:
		// Saturated: try the wait queue.
		if int(s.queued.Add(1)) > s.cfg.MaxQueue {
			s.queued.Add(-1)
			reqShedFull.Inc()
			return nil, &admitError{http.StatusTooManyRequests,
				fmt.Errorf("server saturated: %d in flight and %d queued", s.cfg.MaxInFlight, s.cfg.MaxQueue)}
		}
		queueGauge.Add(1)
		wait := time.NewTimer(s.queueWait())
		select {
		case s.slots <- struct{}{}:
			wait.Stop()
			s.queued.Add(-1)
			queueGauge.Add(-1)
		case <-wait.C:
			s.queued.Add(-1)
			queueGauge.Add(-1)
			reqShedTimeout.Inc()
			return nil, &admitError{http.StatusServiceUnavailable,
				fmt.Errorf("server saturated: no capacity freed within %v", s.queueWait())}
		case <-ctx.Done():
			wait.Stop()
			s.queued.Add(-1)
			queueGauge.Add(-1)
			return nil, fmt.Errorf("request ended while queued for a compute slot: %w", ctx.Err())
		}
	}
	inflightGauge.Add(1)
	var released atomic.Bool
	return func() {
		if released.CompareAndSwap(false, true) {
			inflightGauge.Add(-1)
			<-s.slots
		}
	}, nil
}

// writeComputeFailure maps a failed compute to its response: admission
// rejections keep their status and Retry-After hint, everything else
// follows writeComputeErr's 408/499/422 mapping (a request cancelled or
// timed out while queued lands there via its wrapped context error).
func (s *service) writeComputeFailure(w http.ResponseWriter, budget time.Duration, err error) {
	var ae *admitError
	if errors.As(err, &ae) {
		s.shed(w, ae.status, ae.err)
		return
	}
	writeComputeErr(w, budget, err)
}

// requestContext derives the compute context for one request: the
// client's timeout_ms (capped at MaxTimeout) when given, else the server
// default; either way the context is cancelled when the client
// disconnects. The returned budget is 0 when no deadline applies.
func (s *service) requestContext(r *http.Request, timeoutMs int64) (context.Context, context.CancelFunc, time.Duration) {
	d := s.cfg.DefaultTimeout
	if timeoutMs > 0 {
		d = time.Duration(timeoutMs) * time.Millisecond
		if max := s.maxTimeout(); d > max {
			d = max
		}
	}
	if d <= 0 {
		ctx, cancel := context.WithCancel(r.Context())
		return ctx, cancel, 0
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, d
}

// writeComputeErr maps a pipeline error to its HTTP status: a deadline
// expiry is the request's fault or budget (408), a bare cancellation
// means the client went away (499, written into the void but counted),
// and anything else is a genuine compute rejection (422). Checked with
// errors.Is, so the wrapped stage errors from core/cut/eigen all map
// correctly.
func writeComputeErr(w http.ResponseWriter, budget time.Duration, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		reqTimedOut.Inc()
		writeErr(w, http.StatusRequestTimeout,
			fmt.Errorf("request deadline (%v) exceeded: %w", budget, err))
	case errors.Is(err, context.Canceled):
		reqCancelled.Inc()
		writeErr(w, StatusClientClosedRequest, err)
	default:
		writeErr(w, http.StatusUnprocessableEntity, err)
	}
}
