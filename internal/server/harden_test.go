package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"roadpart/internal/gen"
	"roadpart/internal/roadnet"
	"roadpart/internal/traffic"
)

// slowNet returns a network whose partition compute takes hundreds of
// milliseconds, so a 1ms compute budget cannot be beaten even when a
// loaded scheduler delivers the deadline timer tens of milliseconds
// late (the context's Err only flips after the timer fires). The
// matrix-free eigensolver made moderate networks fast, so the fixture
// has to be large; it is built once and shared read-only across tests.
var (
	slowNetOnce sync.Once
	slowNetVal  *roadnet.Network
	slowNetErr  error
)

func slowNet(t *testing.T) *roadnet.Network {
	t.Helper()
	slowNetOnce.Do(func() {
		net, err := gen.City(gen.CityConfig{TargetIntersections: 8000, TargetSegments: 14000, Seed: 3})
		if err != nil {
			slowNetErr = err
			return
		}
		snap, err := traffic.SyntheticField(net, traffic.FieldConfig{Seed: 4})
		if err != nil {
			slowNetErr = err
			return
		}
		if err := traffic.ApplySnapshot(net, snap); err != nil {
			slowNetErr = err
			return
		}
		slowNetVal = net
	})
	if slowNetErr != nil {
		t.Fatal(slowNetErr)
	}
	return slowNetVal
}

// TestRequestTimeoutReturns408 asserts an exceeded compute budget —
// client-requested via timeout_ms — maps to 408 with the deadline in
// the error body, and that the timed-out counter records it.
func TestRequestTimeoutReturns408(t *testing.T) {
	before := reqTimedOut.Value()
	h := NewWith(Config{Workers: 1})
	rec := post(t, h, "/v1/partition", PartitionRequest{
		Network: slowNet(t), K: 4, Scheme: "AG", TimeoutMs: 1,
	})
	if rec.Code != http.StatusRequestTimeout {
		t.Fatalf("status = %d, want 408 (body: %s)", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "deadline") {
		t.Fatalf("408 body %q does not mention the deadline", rec.Body.String())
	}
	if got := reqTimedOut.Value(); got <= before {
		t.Fatalf("roadpart_requests_timed_out_total stayed at %v across a 408", before)
	}
}

// TestServerDefaultTimeoutReturns408 asserts the server-wide default
// deadline applies when the client sends no timeout_ms.
func TestServerDefaultTimeoutReturns408(t *testing.T) {
	h := NewWith(Config{Workers: 1, DefaultTimeout: time.Millisecond})
	rec := post(t, h, "/v1/partition", PartitionRequest{
		Network: slowNet(t), K: 4, Scheme: "AG",
	})
	if rec.Code != http.StatusRequestTimeout {
		t.Fatalf("status = %d, want 408 (body: %s)", rec.Code, rec.Body.String())
	}
}

// TestTimeoutMsCappedByMaxTimeout asserts a huge client budget is capped
// at MaxTimeout: under a 1ms cap the request still times out.
func TestTimeoutMsCappedByMaxTimeout(t *testing.T) {
	h := NewWith(Config{Workers: 1, MaxTimeout: time.Millisecond})
	rec := post(t, h, "/v1/partition", PartitionRequest{
		Network: slowNet(t), K: 4, Scheme: "AG", TimeoutMs: 600_000,
	})
	if rec.Code != http.StatusRequestTimeout {
		t.Fatalf("status = %d, want 408 under the MaxTimeout cap (body: %s)", rec.Code, rec.Body.String())
	}
}

// TestSweepTimeoutReturns408 covers the sweep endpoint's deadline path.
func TestSweepTimeoutReturns408(t *testing.T) {
	h := NewWith(Config{Workers: 1})
	rec := post(t, h, "/v1/sweep", SweepRequest{
		Network: slowNet(t), KMin: 2, KMax: 8, Scheme: "AG", TimeoutMs: 1,
	})
	if rec.Code != http.StatusRequestTimeout {
		t.Fatalf("status = %d, want 408 (body: %s)", rec.Code, rec.Body.String())
	}
}

// admissionHarness drives s.acquire exactly the way the compute
// handlers do — acquire, block until released, release the slot — so
// tests control exactly how many requests are in flight. finish
// releases every blocked handler exactly once.
type admissionHarness struct {
	handler http.Handler
	release chan struct{}
	started chan struct{}
	once    sync.Once
}

func newAdmissionHarness(cfg Config) *admissionHarness {
	ah := &admissionHarness{
		release: make(chan struct{}),
		started: make(chan struct{}, 64),
	}
	s, err := newService(cfg)
	if err != nil {
		panic(err)
	}
	ah.handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		free, err := s.acquire(r.Context())
		if err != nil {
			s.writeComputeFailure(w, 0, err)
			return
		}
		defer free()
		ah.started <- struct{}{}
		<-ah.release
		w.WriteHeader(http.StatusOK)
	})
	return ah
}

func (ah *admissionHarness) do(req *http.Request) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	ah.handler.ServeHTTP(rec, req)
	return rec
}

func (ah *admissionHarness) finish() { ah.once.Do(func() { close(ah.release) }) }

func computeReq() *http.Request {
	return httptest.NewRequest(http.MethodPost, "/v1/partition", nil)
}

// waitGauge polls until the gauge reaches at least want, so admission
// tests can establish "a request is queued right now" deterministically.
func waitGauge(t *testing.T, want float64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for queueGauge.Value() < want {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached %v (at %v)", want, queueGauge.Value())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionQueueFullReturns429 fills the single slot and the single
// queue seat, then asserts the next request is shed immediately with 429
// and a Retry-After hint.
func TestAdmissionQueueFullReturns429(t *testing.T) {
	ah := newAdmissionHarness(Config{MaxInFlight: 1, MaxQueue: 1, QueueWait: 30 * time.Second})
	defer ah.finish()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // occupies the slot
		defer wg.Done()
		ah.do(computeReq())
	}()
	<-ah.started // the slot is now held
	qBase := queueGauge.Value()
	go func() { // occupies the queue seat
		defer wg.Done()
		ah.do(computeReq())
	}()
	waitGauge(t, qBase+1)

	rec := ah.do(computeReq())
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body: %s)", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	ah.finish()
	wg.Wait()
}

// TestAdmissionQueueWaitReturns503 holds the only slot past the queue
// wait and asserts the queued request is shed with 503 + Retry-After.
func TestAdmissionQueueWaitReturns503(t *testing.T) {
	ah := newAdmissionHarness(Config{MaxInFlight: 1, MaxQueue: 4, QueueWait: 20 * time.Millisecond})
	defer ah.finish()

	done := make(chan struct{})
	go func() {
		defer close(done)
		ah.do(computeReq())
	}()
	<-ah.started

	rec := ah.do(computeReq())
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (body: %s)", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	ah.finish()
	<-done
}

// TestAdmissionQueuedClientGoneReturns499 cancels a queued request's
// context and asserts it leaves the queue with the 499-style status.
func TestAdmissionQueuedClientGoneReturns499(t *testing.T) {
	ah := newAdmissionHarness(Config{MaxInFlight: 1, MaxQueue: 4, QueueWait: 30 * time.Second})
	defer ah.finish()

	done := make(chan struct{})
	go func() {
		defer close(done)
		ah.do(computeReq())
	}()
	<-ah.started

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	rec := ah.do(computeReq().WithContext(ctx))
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("status = %d, want %d (body: %s)", rec.Code, StatusClientClosedRequest, rec.Body.String())
	}
	ah.finish()
	<-done
}

// TestAdmissionBypassesCheapEndpoints asserts the non-compute endpoints
// never touch the slot channel: with the only slot held and a zero
// queue, health and metrics still answer 200 while a compute request is
// shed with 429.
func TestAdmissionBypassesCheapEndpoints(t *testing.T) {
	s, err := newService(Config{Workers: 1, MaxInFlight: 1, MaxQueue: 0, QueueWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	s.slots <- struct{}{} // saturate compute capacity directly
	h := s.handler()

	for _, path := range []string{"/v1/healthz", "/v1/metrics", "/v1/stats"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s = %d while saturated, want 200 (body: %s)", path, rec.Code, rec.Body.String())
		}
	}
	rec := post(t, h, "/v1/partition", PartitionRequest{Network: testNet(t), K: 3, Scheme: "AG"})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated partition = %d, want 429 (body: %s)", rec.Code, rec.Body.String())
	}
}

// TestRecoverPanicsReturns500 asserts a panicking handler becomes a 500
// JSON error and increments the recovery counter.
func TestRecoverPanicsReturns500(t *testing.T) {
	before := panicsRecovered.Value()
	h := recoverPanics(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "internal error") {
		t.Fatalf("500 body %q lacks the error envelope", rec.Body.String())
	}
	if got := panicsRecovered.Value(); got != before+1 {
		t.Fatalf("panicsRecovered went %v -> %v, want +1", before, got)
	}
}

// TestRecoverPanicsRethrowsAbortHandler asserts http.ErrAbortHandler
// keeps its net/http meaning: the middleware re-raises it untouched.
func TestRecoverPanicsRethrowsAbortHandler(t *testing.T) {
	h := recoverPanics(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer func() {
		if recover() != http.ErrAbortHandler {
			t.Fatal("ErrAbortHandler was swallowed")
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
	t.Fatal("unreachable: handler must panic through")
}

// TestPartitionStillServesUnderDefaults asserts the zero-value Config
// changes nothing: no admission, no deadline, a normal 200.
func TestPartitionStillServesUnderDefaults(t *testing.T) {
	h := NewWith(Config{Workers: 1})
	rec := post(t, h, "/v1/partition", PartitionRequest{Network: testNet(t), K: 3, Scheme: "AG"})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 (body: %s)", rec.Code, rec.Body.String())
	}
}

// TestRetryAfterSecs pins the dynamic Retry-After derivation: the
// fallback applies with no latency history, the backlog scales the
// hint linearly, and every output stays inside the documented [1,600]
// clamp no matter how extreme the inputs.
func TestRetryAfterSecs(t *testing.T) {
	cases := []struct {
		name                  string
		depth, slots          int
		latSecs, fallbackSecs float64
		want                  int
	}{
		{"no history uses fallback", 10, 4, 0, 5, 5},
		{"no history clamps low", 0, 4, 0, 0, 1},
		{"one ahead one slot", 0, 1, 2, 5, 2},
		{"deep backlog scales", 9, 1, 2, 5, 20},
		{"slots divide the wait", 9, 5, 2, 5, 4},
		{"sub-second rounds up to 1", 0, 8, 0.1, 5, 1},
		{"clamps high at 600", 1000, 1, 120, 5, 600},
		{"zero slots treated as one", 3, 0, 1, 5, 4},
	}
	for _, tc := range cases {
		if got := retryAfterSecs(tc.depth, tc.slots, tc.latSecs, tc.fallbackSecs); got != tc.want {
			t.Errorf("%s: retryAfterSecs(%d,%d,%g,%g) = %d, want %d",
				tc.name, tc.depth, tc.slots, tc.latSecs, tc.fallbackSecs, got, tc.want)
		}
	}
	// Monotone in depth: a longer line never yields a shorter hint.
	prev := 0
	for depth := 0; depth <= 64; depth++ {
		got := retryAfterSecs(depth, 4, 1.5, 5)
		if got < prev {
			t.Fatalf("hint shrank from %d to %d as depth grew to %d", prev, got, depth)
		}
		prev = got
	}
}
