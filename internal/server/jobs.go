package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"roadpart/internal/core"
	"roadpart/internal/jobs"
	"roadpart/internal/resultcache"
)

// This file is the HTTP face of internal/jobs: POST /v1/jobs accepts a
// partition or sweep request as a durable async job (202 + id), the
// /v1/jobs/{id} resource exposes the job state machine (GET polls,
// DELETE cancels), and /v1/jobs/{id}/result serves the finished body —
// byte-identical to what the synchronous endpoint would have written,
// because both paths serialize once and share the content-addressed
// result cache.

// testJobHooks lets in-package tests inject jobs faults through the
// normal construction path (the watchHeartbeat pattern); always nil in
// production — fault injection is deliberately absent from Config.
var testJobHooks *jobs.Hooks

// JobSubmitRequest is the body of POST /v1/jobs: the op selector plus
// exactly the matching synchronous request document. A job's
// timeout_ms is ignored — job attempts run under the server's
// JobAttemptTimeout instead, since the submitting connection is gone
// long before the deadline matters.
type JobSubmitRequest struct {
	// Op is "partition" or "sweep".
	Op        string            `json:"op"`
	Partition *PartitionRequest `json:"partition,omitempty"`
	Sweep     *SweepRequest     `json:"sweep,omitempty"`
}

// JobSubmitResponse is the 202 body: the accepted (or deduplicated)
// job's initial view. The Location header carries the poll URL.
type JobSubmitResponse struct {
	Job jobs.View `json:"job"`
	// Deduplicated reports that an active job with the same content
	// fingerprint already covers this work and was returned instead of
	// queueing a twin.
	Deduplicated bool `json:"deduplicated,omitempty"`
}

// JobStatusResponse is the body of GET/DELETE /v1/jobs/{id}.
type JobStatusResponse struct {
	Job jobs.View `json:"job"`
	// ResultURL is set once the job is done.
	ResultURL string `json:"result_url,omitempty"`
}

// handleJobSubmit serves POST /v1/jobs.
func (s *service) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobSubmitRequest
	raw, ok := s.readKeyed(w, r, &req)
	if !ok {
		return
	}
	spec, err := s.jobSpec(&req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	// A job is submitted to its fingerprint's owner so the job state
	// machine and the cached result live on the same shard; the minted
	// id embeds the fingerprint, which is how later polls find it
	// (jobs.FingerprintFromID). Unreachable owner → accept locally.
	if s.forwardKeyed(w, r, spec.Key.Sum, raw) {
		return
	}
	s.markShard(w)
	v, deduped, err := s.jobs.Submit(spec)
	if err != nil {
		s.writeJobSubmitErr(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+v.ID)
	writeJSON(w, http.StatusAccepted, JobSubmitResponse{Job: v, Deduplicated: deduped})
}

// jobSpec validates a submission exactly as the synchronous handler
// would — same buildConfig, same network validation, same k-range
// defaults — so a job can never fail later on input the API should
// have rejected at submit time, and its fingerprint matches the one
// the synchronous endpoint computes for the same document.
func (s *service) jobSpec(req *JobSubmitRequest) (jobs.Spec, error) {
	switch req.Op {
	case resultcache.OpPartition:
		p := req.Partition
		if p == nil {
			return jobs.Spec{}, fmt.Errorf("op %q needs a partition document", req.Op)
		}
		cfg, err := s.partitionConfig(p)
		if err != nil {
			return jobs.Spec{}, err
		}
		payload, err := json.Marshal(p)
		if err != nil {
			return jobs.Spec{}, err
		}
		return jobs.Spec{
			Op:      resultcache.OpPartition,
			Key:     resultcache.PartitionKey(p.Network, cfg),
			Tag:     resultcache.NetworkTag(p.Network),
			Payload: payload,
		}, nil
	case resultcache.OpSweep:
		sw := req.Sweep
		if sw == nil {
			return jobs.Spec{}, fmt.Errorf("op %q needs a sweep document", req.Op)
		}
		cfg, kMin, kMax, err := s.sweepConfig(sw)
		if err != nil {
			return jobs.Spec{}, err
		}
		payload, err := json.Marshal(sw)
		if err != nil {
			return jobs.Spec{}, err
		}
		return jobs.Spec{
			Op:      resultcache.OpSweep,
			Key:     resultcache.SweepKey(sw.Network, cfg, kMin, kMax),
			Tag:     resultcache.NetworkTag(sw.Network),
			Payload: payload,
		}, nil
	default:
		return jobs.Spec{}, fmt.Errorf("unknown op %q (want %q or %q)", req.Op, resultcache.OpPartition, resultcache.OpSweep)
	}
}

// partitionConfig resolves and validates a partition document into its
// core config, shared by the sync handler path and the job path.
func (s *service) partitionConfig(p *PartitionRequest) (core.Config, error) {
	cfg, err := buildConfig(p.Scheme, p.Seed)
	if err != nil {
		return cfg, err
	}
	cfg.K = p.K
	cfg.StabilityEps = p.StabilityEps
	cfg.Refine = p.Refine
	cfg.Workers = s.workers(p.Workers)
	cfg.Multilevel, err = s.multilevel(p.Multilevel)
	if err != nil {
		return cfg, err
	}
	if p.Network == nil {
		return cfg, fmt.Errorf("missing network")
	}
	return cfg, p.Network.Validate()
}

// multilevel resolves a request's multilevel field against the server
// default: the request wins when set, otherwise Config.Multilevel, and
// both spellings go through core.ParseMultilevelMode.
func (s *service) multilevel(req string) (core.MultilevelMode, error) {
	v := req
	if v == "" {
		v = s.cfg.Multilevel
	}
	return core.ParseMultilevelMode(v)
}

// sweepConfig resolves and validates a sweep document, applying the
// same k-range defaults as the synchronous handler so both paths hash
// the same cache identity.
func (s *service) sweepConfig(sw *SweepRequest) (core.Config, int, int, error) {
	cfg, err := buildConfig(sw.Scheme, sw.Seed)
	if err != nil {
		return cfg, 0, 0, err
	}
	cfg.Workers = s.workers(sw.Workers)
	cfg.Multilevel, err = s.multilevel(sw.Multilevel)
	if err != nil {
		return cfg, 0, 0, err
	}
	if sw.Network == nil {
		return cfg, 0, 0, fmt.Errorf("missing network")
	}
	if err := sw.Network.Validate(); err != nil {
		return cfg, 0, 0, err
	}
	kMin, kMax := sw.KMin, sw.KMax
	if kMin == 0 {
		kMin = 2
	}
	if kMax == 0 {
		kMax = 10
	}
	return cfg, kMin, kMax, nil
}

// runJob is the jobs.Runner: it decodes the journaled payload and runs
// the same compute closure the synchronous handler uses, through the
// same content-addressed cache. That shared path is what makes a job
// idempotent per fingerprint — a re-run after a crash that lost only
// the trailing "done" record finds the stored body and never computes
// to completion twice.
func (s *service) runJob(ctx context.Context, spec jobs.Spec) ([]byte, error) {
	compute, err := s.jobCompute(spec)
	if err != nil {
		return nil, err
	}
	if s.cache == nil {
		return compute(ctx)
	}
	body, _, err := s.cache.GetOrComputeTagged(ctx, spec.Key, spec.Tag, compute)
	return body, err
}

// jobCompute rebuilds the compute closure from a (possibly replayed)
// payload. Decode failures are terminal: the payload was validated at
// submit time, so damage here means journal corruption, not user error.
func (s *service) jobCompute(spec jobs.Spec) (func(context.Context) ([]byte, error), error) {
	switch spec.Op {
	case resultcache.OpPartition:
		var p PartitionRequest
		if err := json.Unmarshal(spec.Payload, &p); err != nil {
			return nil, fmt.Errorf("corrupt partition job payload: %w", err)
		}
		cfg, err := s.partitionConfig(&p)
		if err != nil {
			return nil, fmt.Errorf("replayed partition job no longer valid: %w", err)
		}
		return func(ctx context.Context) ([]byte, error) {
			return s.computePartition(ctx, p.Network, cfg)
		}, nil
	case resultcache.OpSweep:
		var sw SweepRequest
		if err := json.Unmarshal(spec.Payload, &sw); err != nil {
			return nil, fmt.Errorf("corrupt sweep job payload: %w", err)
		}
		cfg, kMin, kMax, err := s.sweepConfig(&sw)
		if err != nil {
			return nil, fmt.Errorf("replayed sweep job no longer valid: %w", err)
		}
		return func(ctx context.Context) ([]byte, error) {
			return s.computeSweep(ctx, &sw, cfg, kMin, kMax)
		}, nil
	default:
		return nil, fmt.Errorf("journaled job has unknown op %q", spec.Op)
	}
}

// writeJobSubmitErr maps Submit failures: a full queue is 429, a
// draining daemon 503 — both with a Retry-After derived from the
// actual backlog and observed compute latency, not a constant.
func (s *service) writeJobSubmitErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		status = http.StatusTooManyRequests
	case errors.Is(err, jobs.ErrDraining):
		status = http.StatusServiceUnavailable
	}
	if status != http.StatusInternalServerError {
		secs := retryAfterSecs(s.jobs.Active(), s.jobs.Workers(), s.lat.seconds(), s.queueWait().Seconds())
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeErr(w, status, err)
}

// handleJobItem serves the /v1/jobs/{id} resource and its /result
// sub-resource.
func (s *service) handleJobItem(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	if id != "" && (sub == "" || sub == "result") && s.forwardJobItem(w, r, id) {
		return
	}
	s.markShard(w)
	switch {
	case id == "":
		writeErr(w, http.StatusNotFound, fmt.Errorf("missing job id"))
	case sub == "result":
		if !allow(w, r, http.MethodGet) {
			return
		}
		s.serveJobResult(w, r, id)
	case sub != "":
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job sub-resource %q", sub))
	case r.Method == http.MethodGet:
		v, err := s.jobs.Get(id)
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, jobStatus(v))
	case r.Method == http.MethodDelete:
		v, err := s.jobs.Cancel(id)
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, jobStatus(v))
	default:
		w.Header().Set("Allow", "GET, DELETE")
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET or DELETE"))
	}
}

func jobStatus(v jobs.View) JobStatusResponse {
	resp := JobStatusResponse{Job: v}
	if v.State == jobs.StateDone {
		resp.ResultURL = "/v1/jobs/" + v.ID + "/result"
	}
	return resp
}

// serveJobResult writes a done job's body with the synchronous
// endpoint's exact framing. The body comes from (in order) the
// manager's in-memory copy, the content-addressed cache, or — for a
// job completed before a restart whose cache entry was since evicted —
// a recompute through the same content-addressed path, which is
// byte-identical by construction.
func (s *service) serveJobResult(w http.ResponseWriter, r *http.Request, id string) {
	v, err := s.jobs.Get(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	if v.State != jobs.StateDone {
		writeErr(w, http.StatusConflict, fmt.Errorf("job %s is %s, not done", id, v.State))
		return
	}
	if body, ok := s.jobs.Result(id); ok {
		writeJSONBody(w, body)
		return
	}
	spec, ok := s.jobs.Spec(id)
	if !ok {
		writeErr(w, http.StatusNotFound, jobs.ErrUnknownJob)
		return
	}
	if s.cache != nil {
		if body, ok := s.cache.Get(spec.Key); ok {
			w.Header().Set(CacheHeader, "hit")
			writeJSONBody(w, body)
			return
		}
	}
	body, err := s.runJob(r.Context(), spec)
	if err != nil {
		writeComputeErr(w, 0, err)
		return
	}
	writeJSONBody(w, body)
}
